// Tests for node-reordering utilities and their interaction with
// compression (CBM's ratio is permutation-invariant; the partitioned
// format's consecutive clustering is not).
#include <gtest/gtest.h>

#include <numeric>

#include "cbm/cbm_matrix.hpp"
#include "cbm/partitioned.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"

namespace cbm {
namespace {

Graph sample_graph() {
  return community_graph(
      {.num_nodes = 200, .team_min = 10, .team_max = 30, .size_exponent = 1.8,
       .intra_prob = 1.0, .cross_per_node = 2.0},
      900);
}

TEST(Reorder, AllOrdersArePermutations) {
  const Graph g = sample_graph();
  EXPECT_TRUE(is_permutation(bfs_order(g), g.num_nodes()));
  EXPECT_TRUE(is_permutation(degree_order(g), g.num_nodes()));
  EXPECT_TRUE(is_permutation(minhash_order(g), g.num_nodes()));
}

TEST(Reorder, IsPermutationRejectsBadInputs) {
  EXPECT_FALSE(is_permutation({0, 1, 1}, 3));   // duplicate
  EXPECT_FALSE(is_permutation({0, 3, 1}, 3));   // out of range
  EXPECT_FALSE(is_permutation({0, 1}, 3));      // wrong length
  EXPECT_TRUE(is_permutation({2, 0, 1}, 3));
}

TEST(Reorder, DegreeOrderIsMonotone) {
  const Graph g = sample_graph();
  const auto order = degree_order(g);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(g.degree(order[i - 1]), g.degree(order[i]));
  }
}

TEST(Reorder, BfsOrderVisitsComponentsContiguously) {
  // Two disjoint cliques: BFS order must not interleave them.
  std::vector<std::pair<index_t, index_t>> edges;
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = i + 1; j < 4; ++j) {
      edges.emplace_back(i, j);
      edges.emplace_back(4 + i, 4 + j);
    }
  }
  const Graph g = Graph::from_edges(8, edges);
  const auto order = bfs_order(g);
  ASSERT_TRUE(is_permutation(order, 8));
  // First four visited nodes all from one clique.
  const index_t first_clique = order[0] / 4;
  for (int i = 0; i < 4; ++i) EXPECT_EQ(order[i] / 4, first_clique);
}

TEST(Reorder, ApplyOrderPreservesStructure) {
  const Graph g = sample_graph();
  const auto perm = minhash_order(g);
  const Graph h = apply_order(g, perm);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  // Degrees carry over through the relabeling.
  for (index_t i = 0; i < h.num_nodes(); ++i) {
    EXPECT_EQ(h.degree(i), g.degree(perm[i]));
  }
}

TEST(Reorder, ApplyOrderRejectsNonPermutation) {
  const Graph g = Graph::from_edges(3, {{0, 1}});
  EXPECT_THROW(apply_order(g, {0, 0, 1}), CbmError);
}

TEST(Reorder, CbmRatioIsPermutationInvariant) {
  const Graph g = sample_graph();
  const auto perm = degree_order(g);
  const Graph h = apply_order(g, perm);
  CbmStats original, reordered;
  CbmMatrix<real_t>::compress(g.adjacency(), {.alpha = 0}, &original);
  CbmMatrix<real_t>::compress(h.adjacency(), {.alpha = 0}, &reordered);
  EXPECT_EQ(original.total_deltas, reordered.total_deltas);
}

TEST(Reorder, MinhashOrderRepairsConsecutiveClustering) {
  // Scatter the community graph with a random shuffle (interleaves teams),
  // then show minhash_order restores consecutive-clustering quality.
  const Graph g = community_graph(
      {.num_nodes = 400, .team_min = 25, .team_max = 50, .size_exponent = 1.8,
       .intra_prob = 1.0, .cross_per_node = 1.0},
      901);
  Rng rng(902);
  std::vector<index_t> shuffle(static_cast<std::size_t>(g.num_nodes()));
  std::iota(shuffle.begin(), shuffle.end(), index_t{0});
  for (std::size_t i = shuffle.size(); i > 1; --i) {
    std::swap(shuffle[i - 1], shuffle[rng.next_below(i)]);
  }
  const Graph scattered = apply_order(g, shuffle);
  const Graph repaired = apply_order(scattered, minhash_order(scattered));

  auto consecutive_ratio = [](const Graph& graph) {
    PartitionedOptions options;
    options.method = ClusterMethod::kConsecutive;
    options.num_clusters = 16;
    PartitionedStats stats;
    PartitionedCbmMatrix<real_t>::compress(graph.adjacency(), options,
                                           &stats);
    return static_cast<double>(graph.adjacency().bytes()) / stats.bytes;
  };
  EXPECT_GT(consecutive_ratio(repaired), consecutive_ratio(scattered) * 1.3);
}

}  // namespace
}  // namespace cbm
