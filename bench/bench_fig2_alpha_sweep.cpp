// Figure 2 — impact of α on matrix-matrix multiplication (AX) with the CBM
// format: for each dataset and α ∈ {0,1,2,4,8,16,32}, the sequential
// speedup, parallel speedup, and compression ratio relative to CSR.
#include "bench_common.hpp"

int main() {
  using namespace cbm;
  using namespace cbm::bench;
  const auto config = BenchConfig::from_env();
  print_bench_header(config, "Figure 2 — alpha sweep for AX");
  BenchReport report("fig2_alpha_sweep", config);

  const std::vector<int> alphas = {0, 1, 2, 4, 8, 16, 32};
  for (const auto& spec : dataset_registry()) {
    const Graph g = load_dataset(spec, config);
    const auto b =
        make_dense_operand<real_t>(g.num_nodes(), config.cols);

    std::cout << "\n## " << spec.name << " (n=" << g.num_nodes()
              << ", nnz=" << g.adjacency().nnz()
              << ", paper ratio(a=0)=" << spec.paper_ratio_alpha0 << ")\n";
    TablePrinter table({"Alpha", "SeqSpeedup", "ParSpeedup", "Ratio",
                        "RootFanout", "T_CSR seq [s]", "T_CBM seq [s]"});
    for (const int alpha : alphas) {
      const auto pair = make_operands<real_t>(g, Workload::kAX, alpha);
      const double ratio =
          static_cast<double>(pair.csr.bytes()) / pair.cbm.bytes();

      SpeedupResult<real_t> seq;
      {
        ThreadScope scope(1);
        seq = time_pair(pair, b, config, UpdateSchedule::kSequential);
      }
      SpeedupResult<real_t> par;
      {
        ThreadScope scope(config.threads);
        par = time_pair(pair, b, config, UpdateSchedule::kBranchDynamic);
      }
      const std::vector<std::pair<std::string, std::string>> labels = {
          {"graph", spec.name}, {"alpha", std::to_string(alpha)}};
      report.add("csr_seq_seconds", seq.csr, labels, seq.csr_hw);
      report.add("cbm_seq_seconds", seq.cbm, labels, seq.cbm_hw);
      report.add("csr_par_seconds", par.csr, labels, par.csr_hw);
      report.add("cbm_par_seconds", par.cbm, labels, par.cbm_hw);
      report.add_scalar("compression_ratio", ratio, labels);
      table.add_row({std::to_string(alpha), fmt_double(seq.speedup(), 2),
                     fmt_double(par.speedup(), 2), fmt_double(ratio, 2),
                     std::to_string(pair.cbm_stats.root_out_degree),
                     fmt_seconds(seq.csr.mean()), fmt_seconds(seq.cbm.mean())});
    }
    table.print();
  }
  return 0;
}
