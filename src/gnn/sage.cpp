#include "gnn/sage.hpp"

#include <cmath>

#include "common/vectorops.hpp"
#include "dense/gemm.hpp"
#include "dense/ops.hpp"
#include "obs/obs.hpp"

namespace cbm {

namespace {

template <typename T>
DenseMatrix<T> glorot(index_t rows, index_t cols, Rng& rng) {
  DenseMatrix<T> w(rows, cols);
  const double limit = std::sqrt(6.0 / (static_cast<double>(rows) + cols));
  w.fill_uniform(rng, static_cast<T>(-limit), static_cast<T>(limit));
  return w;
}

}  // namespace

template <typename T>
SageLayer<T>::SageLayer(index_t in_features, index_t out_features,
                        std::vector<T> inv_degree, Rng& rng)
    : inv_degree_(std::move(inv_degree)),
      w_self_(glorot<T>(in_features, out_features, rng)),
      w_neigh_(glorot<T>(in_features, out_features, rng)) {}

template <typename T>
void SageLayer<T>::forward(const AdjacencyOp<T>& adj, const DenseMatrix<T>& h,
                           Workspace& ws, DenseMatrix<T>& out) const {
  CBM_CHECK(inv_degree_.size() == static_cast<std::size_t>(h.rows()),
            "SageLayer: inv_degree length mismatch");
  CBM_CHECK(h.cols() == w_self_.rows(), "SageLayer: feature dim mismatch");
  CBM_SPAN("gnn.sage.layer");
  adj.multiply(h, ws.agg);  // A·H
  const index_t n = ws.agg.rows();
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) {
    vec_scale(inv_degree_[i], ws.agg.row(i));  // D⁻¹·(A·H)
  }
  gemm(h, w_self_, out);                       // H·W_self
  gemm(ws.agg, w_neigh_, out, T{1}, T{1});     // += (D⁻¹AH)·W_neigh
  relu_inplace(out);
}

template class SageLayer<float>;
template class SageLayer<double>;

}  // namespace cbm
