#include "cbm/deltas.hpp"

#include <numeric>

namespace cbm {

template <typename T>
CsrMatrix<T> build_delta_matrix(const CsrMatrix<T>& pattern,
                                const CompressionTree& tree,
                                std::span<const T> column_scale,
                                DeltaStats* stats) {
  const index_t n = pattern.rows();
  CBM_CHECK(tree.num_rows() == n, "tree size does not match matrix");
  CBM_CHECK(column_scale.empty() ||
                column_scale.size() == static_cast<std::size_t>(pattern.cols()),
            "column scale length mismatch");
  const index_t root = tree.virtual_root();

  // Pass 1: delta count per row (merge-count of the two sorted index lists).
  std::vector<offset_t> indptr(static_cast<std::size_t>(n) + 1, 0);
#pragma omp parallel for schedule(dynamic, 256)
  for (index_t x = 0; x < n; ++x) {
    const index_t p = tree.parent(x);
    if (p == root) {
      indptr[x + 1] = pattern.row_nnz(x);
      continue;
    }
    const auto rx = pattern.row_indices(x);
    const auto rp = pattern.row_indices(p);
    std::size_t i = 0, j = 0;
    offset_t deltas = 0;
    while (i < rx.size() && j < rp.size()) {
      if (rx[i] == rp[j]) {
        ++i;
        ++j;
      } else if (rx[i] < rp[j]) {
        ++deltas;  // Δ⁺
        ++i;
      } else {
        ++deltas;  // Δ⁻
        ++j;
      }
    }
    deltas += static_cast<offset_t>((rx.size() - i) + (rp.size() - j));
    indptr[x + 1] = deltas;
  }
  std::partial_sum(indptr.begin(), indptr.end(), indptr.begin());

  // Pass 2: fill, sorted by column (the merge is order-preserving).
  std::vector<index_t> indices(static_cast<std::size_t>(indptr.back()));
  std::vector<T> values(static_cast<std::size_t>(indptr.back()));
#pragma omp parallel for schedule(dynamic, 256)
  for (index_t x = 0; x < n; ++x) {
    offset_t out = indptr[x];
    const index_t p = tree.parent(x);
    const auto rx = pattern.row_indices(x);
    auto emit = [&](index_t col, T sign) {
      indices[out] = col;
      values[out] =
          column_scale.empty() ? sign : sign * column_scale[col];
      ++out;
    };
    if (p == root) {
      for (const index_t c : rx) emit(c, T{1});
      continue;
    }
    const auto rp = pattern.row_indices(p);
    std::size_t i = 0, j = 0;
    while (i < rx.size() && j < rp.size()) {
      if (rx[i] == rp[j]) {
        ++i;
        ++j;
      } else if (rx[i] < rp[j]) {
        emit(rx[i++], T{1});
      } else {
        emit(rp[j++], T{-1});
      }
    }
    while (i < rx.size()) emit(rx[i++], T{1});
    while (j < rp.size()) emit(rp[j++], T{-1});
  }

  if (stats != nullptr) {
    stats->total_deltas = indptr.back();
    stats->total_nnz = pattern.nnz();
    stats->saved = stats->total_nnz - stats->total_deltas;
  }
  return CsrMatrix<T>(n, pattern.cols(), std::move(indptr), std::move(indices),
                      std::move(values));
}

template CsrMatrix<float> build_delta_matrix<float>(const CsrMatrix<float>&,
                                                    const CompressionTree&,
                                                    std::span<const float>,
                                                    DeltaStats*);
template CsrMatrix<double> build_delta_matrix<double>(const CsrMatrix<double>&,
                                                      const CompressionTree&,
                                                      std::span<const double>,
                                                      DeltaStats*);

}  // namespace cbm
