#include "bench_util/report.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <thread>

#include "common/cache_info.hpp"
#include "common/vectorops.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace cbm {

namespace {

std::string detect_hostname() {
#ifndef _WIN32
  char buf[256] = {0};
  if (::gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') return buf;
#endif
  return "unknown";
}

std::string detect_compiler() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__);
#else
  return "unknown";
#endif
}

// Emits a measurement's "hw" object. Unavailable counters still write an
// explicit marker — a reader must be able to tell "not sampled" apart from
// "sampled and fine" without guessing from absent keys. Raw counters that
// stayed at their -1 "not opened" mark are skipped individually (HW and SW
// event families degrade independently).
void write_hw_block(obs::JsonWriter& w, const HwBlock& hw) {
  const obs::hw::HwSample& s = hw.sample;
  w.begin_object("hw");
  w.value("available", s.available);
  if (!s.available) {
    w.value("reason", s.reason);
    w.end_object();
    return;
  }
  if (s.cycles >= 0) w.value("cycles", static_cast<std::uint64_t>(s.cycles));
  if (s.instructions >= 0) {
    w.value("instructions", static_cast<std::uint64_t>(s.instructions));
  }
  if (s.cycles > 0 && s.instructions >= 0) w.value("ipc", s.ipc());
  if (s.llc_loads >= 0) {
    w.value("llc_loads", static_cast<std::uint64_t>(s.llc_loads));
  }
  if (s.llc_misses >= 0) {
    w.value("llc_misses", static_cast<std::uint64_t>(s.llc_misses));
  }
  if (s.llc_loads > 0 && s.llc_misses >= 0) {
    w.value("llc_miss_rate", s.llc_miss_rate());
  }
  if (s.stalled_cycles >= 0) {
    w.value("stalled_cycles", static_cast<std::uint64_t>(s.stalled_cycles));
  }
  if (s.cycles > 0 && s.stalled_cycles >= 0) {
    w.value("stall_fraction", s.stall_fraction());
  }
  if (s.task_clock_ns >= 0) {
    w.value("task_clock_ns", static_cast<std::uint64_t>(s.task_clock_ns));
  }
  if (s.page_faults >= 0) {
    w.value("page_faults", static_cast<std::uint64_t>(s.page_faults));
  }
  if (s.context_switches >= 0) {
    w.value("context_switches", static_cast<std::uint64_t>(s.context_switches));
  }
  // Kernel attribution: turn the known flop count / format footprint into
  // rates a reader can compare across configs and machines.
  if (hw.seconds > 0.0) w.value("seconds", hw.seconds);
  if (hw.flops > 0.0) {
    w.value("flops", hw.flops);
    if (hw.seconds > 0.0) w.value("gflops", hw.flops / hw.seconds / 1e9);
    if (s.instructions > 0) {
      w.value("flops_per_instruction",
              hw.flops / static_cast<double>(s.instructions));
    }
  }
  if (hw.format_bytes > 0.0) {
    w.value("format_bytes", hw.format_bytes);
    if (hw.nnz > 0.0) w.value("bytes_per_nnz", hw.format_bytes / hw.nnz);
  }
  w.end_object();
}

}  // namespace

HostInfo HostInfo::detect() {
  HostInfo info;
  info.hostname = detect_hostname();
  info.compiler = detect_compiler();
#ifdef NDEBUG
  info.build_type = "Release";
#else
  info.build_type = "Debug";
#endif
#ifdef _OPENMP
  info.openmp = true;
#endif
  info.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  return info;
}

BenchReport::BenchReport(std::string bench_name, const BenchConfig& config)
    : bench_name_(std::move(bench_name)), config_(config) {
  const char* path = std::getenv("CBM_BENCH_JSON");
  if (path != nullptr && *path != '\0') {
    path_ = path;
    // The document's "metrics" section should cover everything the bench
    // runs, so start collecting right away.
    obs::set_metrics_enabled(true);
  }
}

BenchReport::~BenchReport() {
  if (enabled() && !written_) write();
}

void BenchReport::add(
    std::string name, const RunStats& stats,
    std::vector<std::pair<std::string, std::string>> labels) {
  if (!enabled()) return;
  measurements_.push_back(
      {std::move(name), std::move(labels), stats, std::nullopt});
  written_ = false;
}

void BenchReport::add(std::string name, const RunStats& stats,
                      std::vector<std::pair<std::string, std::string>> labels,
                      HwBlock hw) {
  if (!enabled()) return;
  measurements_.push_back(
      {std::move(name), std::move(labels), stats, std::move(hw)});
  written_ = false;
}

void BenchReport::add_scalar(
    std::string name, double value,
    std::vector<std::pair<std::string, std::string>> labels) {
  RunStats stats;
  stats.add(value);
  add(std::move(name), stats, std::move(labels));
}

void BenchReport::write() {
  if (!enabled()) return;
  std::ofstream os(path_);
  if (!os) {
    std::cerr << "CBM_BENCH_JSON: cannot open " << path_ << '\n';
    return;
  }
  const HostInfo host = HostInfo::detect();

  obs::JsonWriter w(os);
  w.begin_object();
  w.value("schema", "cbm-bench-v1");
  w.value("bench", bench_name_);

  w.begin_object("config");
  w.value("cols", config_.cols);
  w.value("reps", config_.reps);
  w.value("warmup", config_.warmup);
  w.value("threads", config_.threads);
  w.value("scale", config_.scale);
  w.value("mtx_dir", config_.mtx_dir);
  w.end_object();

  w.begin_object("host");
  w.value("hostname", host.hostname);
  w.value("compiler", host.compiler);
  w.value("build_type", host.build_type);
  w.value("openmp", host.openmp);
  w.value("hardware_threads", host.hardware_threads);
  w.end_object();

  // SIMD tier + cache geometry, so a pasted report says which kernels ran
  // and what the tile policy saw (docs/tuning.md).
  const CacheInfo& cache = CacheInfo::host();
  w.begin_object("cpu");
  w.value("simd_active", simd_level_name(simd_level()));
  w.value("simd_max", simd_level_name(simd_max_supported()));
  w.value("avx2", simd_level_supported(SimdLevel::kAvx2));
  w.value("avx512", simd_level_supported(SimdLevel::kAvx512));
  w.value("l1d_bytes", static_cast<std::uint64_t>(cache.l1d_bytes));
  w.value("l2_bytes", static_cast<std::uint64_t>(cache.l2_bytes));
  w.value("llc_bytes", static_cast<std::uint64_t>(cache.llc_bytes));
  w.end_object();

  w.begin_array("measurements");
  for (const BenchMeasurement& m : measurements_) {
    w.begin_object();
    w.value("name", m.name);
    if (!m.labels.empty()) {
      w.begin_object("labels");
      for (const auto& [key, value] : m.labels) w.value(key, value);
      w.end_object();
    }
    w.value("count", static_cast<std::uint64_t>(m.stats.count()));
    w.value("mean", m.stats.mean());
    w.value("stddev", m.stats.stddev());
    w.value("min", m.stats.min());
    w.value("max", m.stats.max());
    w.value("median", m.stats.median());
    if (m.hw.has_value()) write_hw_block(w, *m.hw);
    w.end_object();
  }
  w.end_array();

  // Per-stage counters/gauges/timings collected while the bench ran.
  w.raw("metrics", obs::metrics_json(obs::metrics_snapshot()));
  if (obs::trace_enabled()) w.value("trace_path", obs::trace_path());
  w.end_object();
  os << '\n';
  written_ = true;
}

}  // namespace cbm
