// Tests for the Chu–Liu/Edmonds minimum-cost arborescence solver (the α>0
// compression-tree engine). Validated three ways: known cases, structural
// validity, and cost agreement with an independent reference implementation
// on random digraphs.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tree/arborescence.hpp"

namespace cbm {
namespace {

/// Checks that the result is a spanning arborescence rooted at `root` and
/// that its reported weight matches the chosen edges.
void expect_valid_arborescence(index_t n,
                               const std::vector<WeightedEdge>& edges,
                               index_t root, const ArborescenceResult& r) {
  ASSERT_EQ(r.parent.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(r.parent[root], -1);
  std::int64_t weight = 0;
  for (index_t v = 0; v < n; ++v) {
    if (v == root) continue;
    ASSERT_GE(r.parent[v], 0);
    const auto id = r.chosen_edge[v];
    ASSERT_LT(id, edges.size());
    EXPECT_EQ(edges[id].dst, v);
    EXPECT_EQ(edges[id].src, r.parent[v]);
    weight += edges[id].weight;
  }
  EXPECT_EQ(weight, r.total_weight);
  // Walking up from every node must reach the root (acyclicity).
  for (index_t v = 0; v < n; ++v) {
    index_t cur = v;
    for (index_t steps = 0; cur != root; ++steps) {
      ASSERT_LE(steps, n) << "cycle in parent array";
      cur = r.parent[cur];
    }
  }
}

TEST(Arborescence, TrivialSingleNode) {
  const auto r = chu_liu_edmonds(1, {}, 0);
  EXPECT_EQ(r.total_weight, 0);
  EXPECT_EQ(r.parent[0], -1);
}

TEST(Arborescence, SimpleChain) {
  const std::vector<WeightedEdge> edges = {{0, 1, 5}, {1, 2, 3}};
  const auto r = chu_liu_edmonds(3, edges, 0);
  expect_valid_arborescence(3, edges, 0, r);
  EXPECT_EQ(r.total_weight, 8);
}

TEST(Arborescence, PicksCheaperParent) {
  const std::vector<WeightedEdge> edges = {
      {0, 1, 10}, {0, 2, 1}, {2, 1, 2}};
  const auto r = chu_liu_edmonds(3, edges, 0);
  expect_valid_arborescence(3, edges, 0, r);
  EXPECT_EQ(r.total_weight, 3);  // 0→2 (1), 2→1 (2)
  EXPECT_EQ(r.parent[1], 2);
}

TEST(Arborescence, ResolvesTwoCycle) {
  // 1 and 2 prefer each other (mutual weight 1); the root can only enter at
  // cost 10. Optimal: one root edge + one cycle edge = 11.
  const std::vector<WeightedEdge> edges = {
      {0, 1, 10}, {0, 2, 10}, {1, 2, 1}, {2, 1, 1}};
  const auto r = chu_liu_edmonds(3, edges, 0);
  expect_valid_arborescence(3, edges, 0, r);
  EXPECT_EQ(r.total_weight, 11);
}

TEST(Arborescence, ResolvesNestedCycles) {
  // Two 2-cycles chained; forces at least two contraction rounds.
  const std::vector<WeightedEdge> edges = {
      {1, 2, 1}, {2, 1, 1},          // cycle A
      {3, 4, 1}, {4, 3, 1},          // cycle B
      {2, 3, 2},                     // A → B
      {0, 1, 8},                     // root → A
      {0, 3, 9},                     // root → B (worse)
  };
  const auto r = chu_liu_edmonds(5, edges, 0);
  expect_valid_arborescence(5, edges, 0, r);
  EXPECT_EQ(r.total_weight, 8 + 1 + 2 + 1);
}

TEST(Arborescence, UnreachableNodeThrows) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1}};
  EXPECT_THROW(chu_liu_edmonds(3, edges, 0), CbmError);
}

TEST(Arborescence, SelfLoopsIgnored) {
  const std::vector<WeightedEdge> edges = {{1, 1, 0}, {0, 1, 4}};
  const auto r = chu_liu_edmonds(2, edges, 0);
  EXPECT_EQ(r.total_weight, 4);
}

TEST(Arborescence, ParallelEdgesUseCheapest) {
  const std::vector<WeightedEdge> edges = {{0, 1, 9}, {0, 1, 2}, {0, 1, 5}};
  const auto r = chu_liu_edmonds(2, edges, 0);
  EXPECT_EQ(r.total_weight, 2);
  EXPECT_EQ(r.chosen_edge[1], 1u);
}

TEST(Arborescence, TieBreakPrefersEarlierEdge) {
  // Equal-cost parents: the first edge in the list must win (strict < in the
  // min scan). The CBM builder relies on this to prefer virtual-root edges.
  const std::vector<WeightedEdge> edges = {{0, 2, 3}, {1, 2, 3}, {0, 1, 1}};
  const auto r = chu_liu_edmonds(3, edges, 0);
  EXPECT_EQ(r.parent[2], 0);
}

TEST(Arborescence, MatchesReferenceOnRandomDigraphs) {
  Rng rng(2024);
  for (int trial = 0; trial < 120; ++trial) {
    const index_t n = 2 + static_cast<index_t>(rng.next_below(14));
    std::vector<WeightedEdge> edges;
    // Root reaches everything (mirrors the CBM virtual node), then noise.
    for (index_t v = 1; v < n; ++v) {
      edges.push_back({0, v, static_cast<std::int64_t>(rng.next_below(30))});
    }
    const auto extra = rng.next_below(static_cast<std::uint64_t>(4 * n));
    for (std::uint64_t e = 0; e < extra; ++e) {
      const auto u = static_cast<index_t>(rng.next_below(n));
      const auto v = static_cast<index_t>(rng.next_below(n));
      edges.push_back(
          {u, v, static_cast<std::int64_t>(rng.next_below(30))});
    }
    const auto r = chu_liu_edmonds(n, edges, 0);
    expect_valid_arborescence(n, edges, 0, r);
    EXPECT_EQ(r.total_weight, arborescence_cost_reference(n, edges, 0))
        << "trial " << trial << " n=" << n;
  }
}

TEST(Arborescence, LargeRandomStressStaysValid) {
  Rng rng(7);
  const index_t n = 500;
  std::vector<WeightedEdge> edges;
  for (index_t v = 1; v < n; ++v) {
    edges.push_back({0, v, static_cast<std::int64_t>(rng.next_below(100))});
  }
  for (int e = 0; e < 6000; ++e) {
    const auto u = static_cast<index_t>(rng.next_below(n));
    const auto v = static_cast<index_t>(rng.next_below(n));
    edges.push_back({u, v, static_cast<std::int64_t>(rng.next_below(100))});
  }
  const auto r = chu_liu_edmonds(n, edges, 0);
  expect_valid_arborescence(n, edges, 0, r);
  EXPECT_EQ(r.total_weight, arborescence_cost_reference(n, edges, 0));
}

}  // namespace
}  // namespace cbm
