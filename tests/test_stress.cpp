// Stress and adversarial-structure tests: deep trees, tie-heavy distance
// graphs, degenerate shapes, and large randomized sweeps that the focused
// unit tests do not reach. Also compiles the umbrella header.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "cbm4gnn.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

TEST(Stress, DeepChainTree) {
  // 4000 rows, each nearly identical to the previous one: the MCA naturally
  // produces a very deep chain; the update stage must handle depth without
  // recursion or stack growth.
  const index_t n = 4000;
  CooMatrix<float> coo;
  coo.rows = n;
  coo.cols = n;
  // Row i = the window {i, ..., i+19} mod n: consecutive rows are Hamming-2
  // apart, so the optimal tree is one long chain.
  for (index_t i = 0; i < n; ++i) {
    for (index_t k = 0; k < 20; ++k) {
      coo.push(i, (i + k) % n, 1.0f);
    }
  }
  const auto a = CsrMatrix<float>::from_coo(coo);
  CbmStats stats;
  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 0}, &stats);
  EXPECT_LE(stats.total_deltas, stats.source_nnz);
  EXPECT_GT(cbm.tree().max_depth(), n / 2) << "expected a deep chain";

  const auto b = test::random_dense<float>(n, 4, 1);
  DenseMatrix<float> c_cbm(n, 4), c_csr(n, 4);
  cbm.multiply(b, c_cbm);
  csr_spmm(a, b, c_csr);
  EXPECT_TRUE(allclose(c_cbm, c_csr, 1e-4, 1e-4));
}

TEST(Stress, ManyIdenticalRows) {
  // All rows identical: the tree collapses to one chain/star of zero-delta
  // edges; deltas = nnz of one row.
  const index_t n = 500;
  CooMatrix<float> coo;
  coo.rows = n;
  coo.cols = n;
  for (index_t i = 0; i < n; ++i) {
    for (const index_t j : {3, 77, 200, 431}) coo.push(i, j, 1.0f);
  }
  const auto a = CsrMatrix<float>::from_coo(coo);
  CbmStats stats;
  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 0}, &stats);
  EXPECT_EQ(stats.total_deltas, 4);  // one explicit row, all others free
  const auto b = test::random_dense<float>(n, 3, 2);
  DenseMatrix<float> c_cbm(n, 3), c_csr(n, 3);
  cbm.multiply(b, c_cbm);
  csr_spmm(a, b, c_csr);
  EXPECT_TRUE(allclose(c_cbm, c_csr, 1e-4, 1e-4));
}

TEST(Stress, DenseRowsAmongSparse) {
  // A few fully dense rows inside a sparse matrix: candidate enumeration
  // touches every row via the dense columns; correctness must survive.
  const index_t n = 120;
  CooMatrix<float> coo;
  coo.rows = n;
  coo.cols = n;
  Rng rng(3);
  for (index_t i = 0; i < n; ++i) {
    if (i % 40 == 0) {
      for (index_t j = 0; j < n; ++j) {
        if (i != j) coo.push(i, j, 1.0f);
      }
    } else {
      for (int k = 0; k < 4; ++k) {
        coo.push(i, static_cast<index_t>(rng.next_below(n)), 1.0f);
      }
    }
  }
  auto tmp = CsrMatrix<float>::from_coo(coo);
  std::vector<float> ones(tmp.values().size(), 1.0f);
  const CsrMatrix<float> a(n, n, {tmp.indptr().begin(), tmp.indptr().end()},
                           {tmp.indices().begin(), tmp.indices().end()},
                           std::move(ones));
  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 0});
  EXPECT_EQ(cbm.materialize(), a);
}

TEST(Stress, ZeroColumnOperand) {
  // p = 0: legal no-op multiply.
  const auto a = test::clustered_binary(20, 2, 5, 1, 4);
  const auto cbm = CbmMatrix<float>::compress(a);
  DenseMatrix<float> b(20, 0), c(20, 0);
  cbm.multiply(b, c);  // must not crash
  csr_spmm(a, b, c);
  SUCCEED();
}

TEST(Stress, TieHeavyDistanceGraph) {
  // Block-constant matrix: all within-block Hamming distances are 0 and all
  // cross distances equal — maximal ties everywhere. The solver must still
  // produce a valid tree with deltas == one template per block.
  const index_t n = 300, blocks = 10;
  CooMatrix<float> coo;
  coo.rows = n;
  coo.cols = n;
  for (index_t i = 0; i < n; ++i) {
    const index_t base = (i / (n / blocks)) * 7 % n;
    for (index_t k = 0; k < 5; ++k) coo.push(i, (base + k) % n, 1.0f);
  }
  const auto a = CsrMatrix<float>::from_coo(coo);
  CbmStats stats;
  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 0}, &stats);
  EXPECT_EQ(stats.total_deltas, 5 * blocks);
  EXPECT_EQ(cbm.materialize(), a);
}

TEST(Stress, RandomizedMultiplySweep) {
  // Wide randomized sweep: shapes × densities × alphas, CSR oracle.
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    const index_t n = 10 + static_cast<index_t>(rng.next_below(120));
    const double density = 0.02 + rng.next_double() * 0.2;
    const int alpha = static_cast<int>(rng.next_below(12));
    const index_t p = 1 + static_cast<index_t>(rng.next_below(9));
    const auto a = test::random_binary(n, density, 1000 + trial);
    const auto cbm = CbmMatrix<float>::compress(a, {.alpha = alpha});
    const auto b = test::random_dense<float>(n, p, 2000 + trial);
    DenseMatrix<float> c_cbm(n, p), c_csr(n, p);
    cbm.multiply(b, c_cbm);
    csr_spmm(a, b, c_csr);
    EXPECT_TRUE(allclose(c_cbm, c_csr, 1e-4, 1e-4))
        << "n=" << n << " density=" << density << " alpha=" << alpha;
  }
}

TEST(Stress, ArborescenceLadderOfCycles) {
  // k chained 2-cycles with expensive root entries: forces k contraction
  // rounds in sequence. Validity + optimality vs the reference oracle.
  const index_t k = 40;
  std::vector<WeightedEdge> edges;
  for (index_t i = 0; i < k; ++i) {
    const index_t a = 1 + 2 * i, b = 2 + 2 * i;
    edges.push_back({a, b, 1});
    edges.push_back({b, a, 1});
    if (i > 0) edges.push_back({static_cast<index_t>(2 * i), a, 2});
  }
  edges.push_back({0, 1, 10});
  for (index_t v = 1; v < 2 * k + 1; ++v) edges.push_back({0, v, 100});
  const auto r = chu_liu_edmonds(2 * k + 1, edges, 0);
  EXPECT_EQ(r.total_weight,
            arborescence_cost_reference(2 * k + 1, edges, 0));
}

TEST(Stress, CompressionTreeHugeFlat) {
  // 100k rows all at the root: branch decomposition must stay O(n).
  std::vector<index_t> parent(100000, 100000);
  const auto t = CompressionTree::from_parents(std::move(parent));
  EXPECT_EQ(t.root_out_degree(), 100000);
  EXPECT_EQ(t.branches().size(), 100000u);
  EXPECT_EQ(t.max_depth(), 1);
}

TEST(Stress, SpmmHugeColumnsSmallMatrix) {
  // p much larger than n exercises the row-kernel inner loop bounds.
  const auto a = test::random_binary(8, 0.4, 6);
  const auto b = test::random_dense<float>(8, 700, 7);
  DenseMatrix<float> c(8, 700);
  csr_spmm(a, b, c);
  const auto cbm = CbmMatrix<float>::compress(a);
  DenseMatrix<float> c2(8, 700);
  cbm.multiply(b, c2);
  EXPECT_TRUE(allclose(c2, c, 1e-4, 1e-5));
}

TEST(Stress, LongRunMutationUnderConcurrentMultiplies) {
  // The dynamic-graph soak (docs/dynamic_graphs.md): many mutation rounds —
  // including the degenerate shapes (duplicate inserts, no-op removes,
  // rows emptied completely and refilled) — interleaved with concurrent
  // multiplies via the clone-mutate-publish pattern. Mutations stay
  // externally serialized (the supported contract); multiplies race only
  // against each other on immutable snapshots, which the nightly TSan leg
  // verifies is clean. The pattern set is mirrored as ground truth and the
  // final matrix is differenced against a fresh compression of it.
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const index_t n = 600;
  const auto a = test::clustered_binary(n, 12, 16, 2, seed);
  std::set<std::pair<index_t, index_t>> truth;
  for (index_t r = 0; r < n; ++r) {
    for (const index_t c : a.row_indices(r)) truth.insert({r, c});
  }

  std::mutex publish_mutex;
  auto published =
      std::make_shared<const CbmMatrix<float>>(CbmMatrix<float>::compress(a));
  const auto snapshot = [&] {
    const std::lock_guard<std::mutex> lock(publish_mutex);
    return published;
  };

  std::atomic<bool> stop{false};
  const auto b = test::random_dense<float>(n, 8, seed ^ 3);
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng tr(seed ^ static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        const auto snap = snapshot();
        DenseMatrix<float> c(n, 8);
        const bool fused = tr.next_bool(0.5);
        snap->multiply(b, c,
                       fused ? MultiplySchedule::fused(0)
                             : MultiplySchedule::two_stage());
        // Spot-check one row against the snapshot's own pattern — cheap
        // enough to run every iteration, sharp enough to catch a torn
        // publish.
        const auto row = static_cast<index_t>(tr.next_below(n));
        const auto mat = snap->materialize();
        for (index_t j = 0; j < 8; ++j) {
          float acc = 0.0f;
          for (std::size_t k = 0; k < mat.row_indices(row).size(); ++k) {
            acc += mat.row_values(row)[k] * b(mat.row_indices(row)[k], j);
          }
          EXPECT_NEAR(c(row, j), acc, 1e-3f);
        }
      }
    });
  }

  Rng rng(seed ^ 0xB16);
  for (int round = 0; round < 60; ++round) {
    std::vector<EdgeUpdate> ins, rem;
    if (round % 10 == 7) {
      // Degenerate round: empty one row entirely, with duplicate removes
      // riding along.
      const auto victim = static_cast<index_t>(rng.next_below(n));
      for (const auto& [r, c] : truth) {
        if (r == victim) {
          rem.push_back({r, c});
          rem.push_back({r, c});  // duplicate remove of a present edge is
                                  // one removal + one no-op
        }
      }
      if (!truth.contains({victim, 0})) {
        rem.push_back({victim, 0});  // a pure no-op remove
      }
    } else {
      for (int k = 0; k < 30; ++k) {
        const auto r = static_cast<index_t>(rng.next_below(n));
        const auto c = static_cast<index_t>(rng.next_below(n));
        if (truth.contains({r, c})) {
          rem.push_back({r, c});
        } else {
          ins.push_back({r, c});
          if (rng.next_bool(0.1)) ins.push_back({r, c});  // duplicate insert
        }
      }
    }
    // An edge drawn twice lands in the same span twice (truth is stable
    // within the round), which the batch contract allows.
    auto clone = std::make_shared<CbmMatrix<float>>(*snapshot());
    clone->mutate_edges(ins, rem);
    for (const auto& e : ins) truth.insert({e.row, e.col});
    for (const auto& e : rem) truth.erase({e.row, e.col});
    {
      const std::lock_guard<std::mutex> lock(publish_mutex);
      published = std::move(clone);
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  // Final differential: the long-mutated matrix equals a fresh compression
  // of the ground-truth pattern, entry for entry.
  CooMatrix<float> coo;
  coo.rows = n;
  coo.cols = n;
  for (const auto& [r, c] : truth) coo.push(r, c, 1.0f);
  const auto expected = CsrMatrix<float>::from_coo(coo);
  const auto snap = snapshot();
  EXPECT_TRUE(snap->materialize() == expected);
  const auto fresh = CbmMatrix<float>::compress(expected);
  EXPECT_TRUE(snap->materialize() == fresh.materialize());
  EXPECT_LE(snap->delta_matrix().nnz(), expected.nnz());  // Property 1
  EXPECT_GT(snap->mutation_epoch(), 0u);
  EXPECT_GE(snap->staleness(), 0.0);
  EXPECT_LE(snap->staleness(), 1.0);
}

}  // namespace
}  // namespace cbm
