#include "common/parallel.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace cbm {

int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

int team_size() {
#ifdef _OPENMP
  return omp_get_num_threads();
#else
  return 1;
#endif
}

void set_threads(int n) {
#ifdef _OPENMP
  if (n > 0) omp_set_num_threads(n);
#else
  (void)n;
#endif
}

ThreadScope::ThreadScope(int n) : saved_(max_threads()) { set_threads(n); }

ThreadScope::~ThreadScope() { set_threads(saved_); }

}  // namespace cbm
