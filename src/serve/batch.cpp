#include "serve/batch.hpp"

#include <algorithm>
#include <string>

#include "obs/obs.hpp"

namespace cbm::serve {

template <typename T>
PackedBatch<T> pack_batch(std::span<const BatchItem<T>> items) {
  CBM_SPAN("cbm.serve.pack");
  CBM_CHECK(!items.empty(), "pack_batch: empty batch");

  // Validate up front and size the concatenated arrays.
  index_t total_rows = 0;
  index_t total_cols = 0;
  std::size_t total_nnz = 0;
  std::size_t total_diag = 0;
  const CbmKind kind = items[0].graph != nullptr ? items[0].graph->kind()
                                                 : CbmKind::kPlain;
  const index_t width =
      items[0].features != nullptr ? items[0].features->cols() : 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& item = items[i];
    CBM_CHECK(item.graph != nullptr && item.features != nullptr,
              "pack_batch: item " + std::to_string(i) + " has a null matrix");
    CBM_CHECK(item.graph->kind() == kind,
              "pack_batch: item " + std::to_string(i) +
                  " has a different CbmKind than item 0 (mixed compression "
                  "kinds cannot share one block-diagonal multiply)");
    CBM_CHECK(item.features->cols() == width,
              "pack_batch: mixed feature widths (item " + std::to_string(i) +
                  " has " + std::to_string(item.features->cols()) +
                  " columns, item 0 has " + std::to_string(width) + ")");
    CBM_CHECK(item.features->rows() == item.graph->cols(),
              "pack_batch: item " + std::to_string(i) + " features have " +
                  std::to_string(item.features->rows()) +
                  " rows but its graph has " +
                  std::to_string(item.graph->cols()) + " columns");
    total_rows += item.graph->rows();
    total_cols += item.graph->cols();
    total_nnz += static_cast<std::size_t>(item.graph->delta_matrix().nnz());
    total_diag += item.graph->diagonal().size();
  }

  PackedBatch<T> packed;
  packed.row_offsets.reserve(items.size() + 1);
  packed.row_offsets.push_back(0);

  // Concatenated compression tree: each part keeps its internal parent
  // edges (shifted by its row offset); rows whose parent was the part's
  // local virtual root (encoded as the part's row count) re-parent to the
  // global virtual root (encoded as total_rows).
  std::vector<index_t> parent(static_cast<std::size_t>(total_rows));
  // Block-diagonal delta CSR: row pointers accumulate, column indices shift
  // by each part's column offset.
  std::vector<offset_t> indptr(static_cast<std::size_t>(total_rows) + 1, 0);
  std::vector<index_t> indices;
  indices.reserve(total_nnz);
  std::vector<T> values;
  values.reserve(total_nnz);
  std::vector<T> diag;
  diag.reserve(total_diag);

  index_t row_off = 0;
  index_t col_off = 0;
  for (const auto& item : items) {
    const CbmMatrix<T>& g = *item.graph;
    const index_t n = g.rows();
    const auto& tree = g.tree();
    for (index_t x = 0; x < n; ++x) {
      const index_t p = tree.parent(x);
      parent[static_cast<std::size_t>(row_off + x)] =
          p == tree.virtual_root() ? total_rows : row_off + p;
    }
    const auto& delta = g.delta_matrix();
    const auto part_indptr = delta.indptr();
    const offset_t base = static_cast<offset_t>(indices.size());
    for (index_t x = 0; x < n; ++x) {
      indptr[static_cast<std::size_t>(row_off + x) + 1] =
          base + part_indptr[static_cast<std::size_t>(x) + 1];
    }
    const auto part_indices = delta.indices();
    for (const index_t j : part_indices) indices.push_back(col_off + j);
    const auto part_values = delta.values();
    values.insert(values.end(), part_values.begin(), part_values.end());
    diag.insert(diag.end(), g.diagonal().begin(), g.diagonal().end());

    row_off += n;
    col_off += g.cols();
    packed.row_offsets.push_back(row_off);
  }

  auto tree = CompressionTree::from_parents(std::move(parent));
  CsrMatrix<T> delta(total_rows, total_cols, std::move(indptr),
                     std::move(indices), std::move(values));
  packed.cbm = CbmMatrix<T>::from_parts(kind, std::move(tree),
                                        std::move(delta), std::move(diag));

  // Stack the feature operands: part i's features occupy the operand rows
  // matching its column block.
  packed.features = DenseMatrix<T>(total_cols, width);
  index_t feat_row = 0;
  for (const auto& item : items) {
    for (index_t r = 0; r < item.features->rows(); ++r, ++feat_row) {
      const auto src = item.features->row(r);
      std::copy(src.begin(), src.end(), packed.features.row(feat_row).begin());
    }
  }
  return packed;
}

template <typename T>
void scatter_batch(const DenseMatrix<T>& packed_output,
                   std::span<const index_t> row_offsets,
                   std::span<DenseMatrix<T>* const> outputs) {
  CBM_SPAN("cbm.serve.scatter");
  CBM_CHECK(row_offsets.size() == outputs.size() + 1,
            "scatter_batch: row_offsets must have outputs+1 entries");
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    DenseMatrix<T>& out = *outputs[i];
    const index_t begin = row_offsets[i];
    const index_t end = row_offsets[i + 1];
    CBM_CHECK(out.rows() == end - begin &&
                  out.cols() == packed_output.cols(),
              "scatter_batch: output " + std::to_string(i) +
                  " has the wrong shape");
    for (index_t r = begin; r < end; ++r) {
      const auto src = packed_output.row(r);
      std::copy(src.begin(), src.end(), out.row(r - begin).begin());
    }
  }
}

template PackedBatch<float> pack_batch<float>(
    std::span<const BatchItem<float>>);
template PackedBatch<double> pack_batch<double>(
    std::span<const BatchItem<double>>);
template void scatter_batch<float>(const DenseMatrix<float>&,
                                   std::span<const index_t>,
                                   std::span<DenseMatrix<float>* const>);
template void scatter_batch<double>(const DenseMatrix<double>&,
                                    std::span<const index_t>,
                                    std::span<DenseMatrix<double>* const>);

}  // namespace cbm::serve
