#include "common/rng.hpp"

#include <cmath>

namespace cbm {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  CBM_CHECK(bound > 0, "next_below requires a positive bound");
  // Lemire's multiply-shift rejection method: unbiased and fast.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  CBM_CHECK(lo <= hi, "next_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

float Rng::next_float() {
  return static_cast<float>((*this)() >> 40) * 0x1.0p-24f;
}

bool Rng::next_bool(double p) { return next_double() < p; }

double Rng::next_gaussian() {
  // Box–Muller without caching the second value, so the stream is a pure
  // function of the number of calls (simpler to reason about in tests).
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

Rng Rng::split() {
  // Use two draws to derive a decorrelated child seed.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 31));
}

}  // namespace cbm
