// Strict environment-knob parsing, shared by every CBM_* integer/double
// knob. The historical per-call-site atoi()/atof() parsing accepted garbage
// silently ("12abc" → 12, "fast" → 0), which for a benchmark harness means
// quietly measuring the wrong configuration. These parsers consume the whole
// string or throw a CbmError naming the offending variable.
#pragma once

#include <optional>
#include <string>

#include "common/types.hpp"

namespace cbm {

/// Integer knob: unset/empty → fallback; non-numeric, trailing garbage, or
/// out-of-range input throws CbmError naming `name`.
int env_int_strict(const char* name, int fallback);

/// Like env_int_strict, but additionally rejects values < 1.
int env_positive_int(const char* name, int fallback);

/// Double knob with the same whole-string contract.
double env_double_strict(const char* name, double fallback);

/// String knob: unset/empty → fallback.
std::string env_string_knob(const char* name, const std::string& fallback);

/// The CBM_TILE_COLS override, validated in one place: nullopt when unset,
/// the (positive) requested width otherwise. Zero, negative, and non-numeric
/// values throw.
std::optional<index_t> env_tile_cols();

}  // namespace cbm
