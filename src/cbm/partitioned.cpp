#include "cbm/partitioned.hpp"

#include <algorithm>
#include <numeric>

#include "common/timer.hpp"
#include "common/vectorops.hpp"

namespace cbm {

namespace {

/// Extracts the rectangular submatrix of the given (ascending) global rows;
/// columns keep their global ids.
template <typename T>
CsrMatrix<T> extract_rows(const CsrMatrix<T>& a,
                          const std::vector<index_t>& rows) {
  std::vector<offset_t> indptr;
  indptr.reserve(rows.size() + 1);
  indptr.push_back(0);
  offset_t nnz = 0;
  for (const index_t r : rows) nnz += a.row_nnz(r);
  std::vector<index_t> indices;
  std::vector<T> values;
  indices.reserve(static_cast<std::size_t>(nnz));
  values.reserve(static_cast<std::size_t>(nnz));
  for (const index_t r : rows) {
    const auto cols = a.row_indices(r);
    const auto vals = a.row_values(r);
    indices.insert(indices.end(), cols.begin(), cols.end());
    values.insert(values.end(), vals.begin(), vals.end());
    indptr.push_back(static_cast<offset_t>(indices.size()));
  }
  return CsrMatrix<T>(static_cast<index_t>(rows.size()), a.cols(),
                      std::move(indptr), std::move(indices),
                      std::move(values));
}

}  // namespace

template <typename T>
PartitionedCbmMatrix<T> PartitionedCbmMatrix<T>::compress(
    const CsrMatrix<T>& a, const PartitionedOptions& options,
    PartitionedStats* stats) {
  return compress_impl(a, {}, CbmKind::kPlain, options, stats);
}

template <typename T>
PartitionedCbmMatrix<T> PartitionedCbmMatrix<T>::compress_scaled(
    const CsrMatrix<T>& a, std::span<const T> diag, CbmKind kind,
    const PartitionedOptions& options, PartitionedStats* stats) {
  CBM_CHECK(kind == CbmKind::kColumnScaled || kind == CbmKind::kSymScaled,
            "partitioned compression supports AD and DAD scaling");
  CBM_CHECK(diag.size() == static_cast<std::size_t>(a.rows()) &&
                a.rows() == a.cols(),
            "diagonal length must match the (square) matrix");
  return compress_impl(a, diag, kind, options, stats);
}

template <typename T>
PartitionedCbmMatrix<T> PartitionedCbmMatrix<T>::compress_impl(
    const CsrMatrix<T>& a, std::span<const T> diag, CbmKind kind,
    const PartitionedOptions& options, PartitionedStats* stats) {
  Timer total;
  PartitionedCbmMatrix<T> m;
  m.rows_ = a.rows();
  m.cols_ = a.cols();

  Timer cluster_timer;
  const auto assignment =
      cluster_rows(a, options.method, options.num_clusters, options.seed);
  const index_t k = num_clusters(assignment);
  const double cluster_seconds = cluster_timer.seconds();

  // Bucket rows per cluster (ascending global order preserved).
  std::vector<std::vector<index_t>> buckets(static_cast<std::size_t>(k));
  for (index_t r = 0; r < a.rows(); ++r) {
    buckets[assignment[r]].push_back(r);
  }

  PartitionedStats local;
  local.cluster_seconds = cluster_seconds;
  m.parts_.reserve(static_cast<std::size_t>(k));
  for (auto& rows : buckets) {
    if (rows.empty()) continue;
    const CsrMatrix<T> sub = extract_rows(a, rows);
    CbmStats part_stats;
    Part part;
    switch (kind) {
      case CbmKind::kPlain:
        part.cbm = CbmMatrix<T>::compress(sub, options.base, &part_stats);
        break;
      case CbmKind::kColumnScaled:
        part.cbm = CbmMatrix<T>::compress_scaled(
            sub, diag, CbmKind::kColumnScaled, options.base, &part_stats);
        break;
      case CbmKind::kSymScaled: {
        // A DAD part is rectangular: D₂ is the full diagonal (columns), D₁
        // its restriction to the part's rows.
        std::vector<T> left(rows.size());
        for (std::size_t i = 0; i < rows.size(); ++i) left[i] = diag[rows[i]];
        part.cbm = CbmMatrix<T>::compress_two_sided(
            sub, std::span<const T>(left), diag, options.base, &part_stats);
        break;
      }
      default:
        throw CbmError("unsupported kind for partitioned compression");
    }
    local.largest_part =
        std::max(local.largest_part, static_cast<index_t>(rows.size()));
    local.total_deltas += part_stats.total_deltas;
    local.source_nnz += part_stats.source_nnz;
    local.peak_candidate_edges =
        std::max(local.peak_candidate_edges, part_stats.candidate_edges);
    local.total_candidate_edges += part_stats.candidate_edges;
    part.rows = std::move(rows);
    m.parts_.push_back(std::move(part));
  }
  local.num_parts = static_cast<index_t>(m.parts_.size());
  local.bytes = m.bytes();
  local.build_seconds = total.seconds();
  if (stats != nullptr) *stats = local;
  return m;
}

template <typename T>
void PartitionedCbmMatrix<T>::multiply(const DenseMatrix<T>& b,
                                       DenseMatrix<T>& c,
                                       UpdateSchedule schedule) {
  CBM_CHECK(b.rows() == cols_, "multiply: inner dimensions differ");
  CBM_CHECK(c.rows() == rows_ && c.cols() == b.cols(),
            "multiply: output shape mismatch");
  for (auto& part : parts_) {
    if (part.scratch.rows() != part.cbm.rows() ||
        part.scratch.cols() != b.cols()) {
      part.scratch = DenseMatrix<T>(part.cbm.rows(), b.cols());
    }
    part.cbm.multiply(b, part.scratch, schedule);
    // Scatter the part's rows back to their global positions.
    const auto nrows = static_cast<index_t>(part.rows.size());
#pragma omp parallel for schedule(static)
    for (index_t i = 0; i < nrows; ++i) {
      vec_copy(std::span<const T>(part.scratch.row(i)), c.row(part.rows[i]));
    }
  }
}

template <typename T>
std::size_t PartitionedCbmMatrix<T>::bytes() const {
  std::size_t total = 0;
  for (const auto& part : parts_) {
    total += part.cbm.bytes() + part.rows.size() * sizeof(index_t);
  }
  return total;
}

template class PartitionedCbmMatrix<float>;
template class PartitionedCbmMatrix<double>;

}  // namespace cbm
