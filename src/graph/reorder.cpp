#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace cbm {

namespace {

/// splitmix64 finaliser (shared hashing idiom with graph/clustering.cpp).
inline std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<index_t> bfs_order(const Graph& g) {
  const index_t n = g.num_nodes();
  std::vector<index_t> by_degree(static_cast<std::size_t>(n));
  std::iota(by_degree.begin(), by_degree.end(), index_t{0});
  std::sort(by_degree.begin(), by_degree.end(), [&](index_t a, index_t b) {
    return g.degree(a) != g.degree(b) ? g.degree(a) < g.degree(b) : a < b;
  });

  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> neighbors;
  for (const index_t seed : by_degree) {
    if (visited[seed]) continue;
    visited[seed] = true;
    order.push_back(seed);
    for (std::size_t head = order.size() - 1; head < order.size(); ++head) {
      const index_t v = order[head];
      neighbors.assign(g.neighbors(v).begin(), g.neighbors(v).end());
      std::sort(neighbors.begin(), neighbors.end(),
                [&](index_t a, index_t b) {
                  return g.degree(a) != g.degree(b)
                             ? g.degree(a) < g.degree(b)
                             : a < b;
                });
      for (const index_t u : neighbors) {
        if (!visited[u]) {
          visited[u] = true;
          order.push_back(u);
        }
      }
    }
  }
  return order;
}

std::vector<index_t> degree_order(const Graph& g) {
  std::vector<index_t> order(static_cast<std::size_t>(g.num_nodes()));
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return g.degree(a) != g.degree(b) ? g.degree(a) > g.degree(b) : a < b;
  });
  return order;
}

std::vector<index_t> minhash_order(const Graph& g, std::uint64_t seed) {
  const index_t n = g.num_nodes();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sig(
      static_cast<std::size_t>(n), {~std::uint64_t{0}, ~std::uint64_t{0}});
#pragma omp parallel for schedule(static)
  for (index_t v = 0; v < n; ++v) {
    for (const index_t u : g.neighbors(v)) {
      const auto uu = static_cast<std::uint64_t>(u);
      sig[v].first = std::min(sig[v].first, mix(uu ^ seed));
      sig[v].second = std::min(sig[v].second, mix(uu ^ (seed * 0x9e37ull)));
    }
  }
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return sig[a] != sig[b] ? sig[a] < sig[b] : a < b;
  });
  return order;
}

bool is_permutation(const std::vector<index_t>& perm, index_t n) {
  if (perm.size() != static_cast<std::size_t>(n)) return false;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (const index_t v : perm) {
    if (v < 0 || v >= n || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

Graph apply_order(const Graph& g, const std::vector<index_t>& perm) {
  const index_t n = g.num_nodes();
  CBM_CHECK(is_permutation(perm, n), "apply_order: not a permutation");
  // inverse: old id -> new id
  std::vector<index_t> inv(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) inv[perm[i]] = i;

  std::vector<std::pair<index_t, index_t>> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (index_t v = 0; v < n; ++v) {
    for (const index_t u : g.neighbors(v)) {
      if (v < u) edges.emplace_back(inv[v], inv[u]);
    }
  }
  return Graph::from_edges(n, edges);
}

}  // namespace cbm
