#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/rng.hpp"

namespace cbm {

namespace {

using EdgeList = std::vector<std::pair<index_t, index_t>>;

/// Packs an undirected pair into one 64-bit key for dedup sets.
inline std::uint64_t edge_key(index_t u, index_t v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
         static_cast<std::uint32_t>(v);
}

/// Samples a power-law distributed integer in [lo, hi] with exponent gamma.
index_t power_law_int(Rng& rng, index_t lo, index_t hi, double gamma) {
  // Inverse transform on the continuous Pareto, clamped to the range.
  const double u = rng.next_double();
  const double lo_pow = std::pow(static_cast<double>(lo), 1.0 - gamma);
  const double hi_pow = std::pow(static_cast<double>(hi) + 1.0, 1.0 - gamma);
  const double x = std::pow(lo_pow + u * (hi_pow - lo_pow), 1.0 / (1.0 - gamma));
  return std::clamp(static_cast<index_t>(x), lo, hi);
}

}  // namespace

Graph erdos_renyi(index_t n, offset_t m, std::uint64_t seed) {
  CBM_CHECK(n >= 2, "erdos_renyi needs at least 2 nodes");
  const offset_t max_edges = static_cast<offset_t>(n) * (n - 1) / 2;
  CBM_CHECK(m >= 0 && m <= max_edges, "edge count out of range");
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(m) * 2);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(m));
  while (static_cast<offset_t>(edges.size()) < m) {
    const auto u = static_cast<index_t>(rng.next_below(n));
    const auto v = static_cast<index_t>(rng.next_below(n));
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, edges);
}

Graph barabasi_albert(index_t n, index_t m_per_node, std::uint64_t seed) {
  CBM_CHECK(m_per_node >= 1, "barabasi_albert needs m >= 1");
  CBM_CHECK(n > m_per_node, "barabasi_albert needs n > m");
  Rng rng(seed);
  EdgeList edges;
  // `targets` holds one entry per half-edge endpoint, so uniform sampling
  // from it is sampling proportional to degree (the classic BA trick).
  std::vector<index_t> targets;
  targets.reserve(static_cast<std::size_t>(n) * m_per_node * 2);

  // Seed clique over the first m+1 nodes.
  for (index_t u = 0; u <= m_per_node; ++u) {
    for (index_t v = u + 1; v <= m_per_node; ++v) {
      edges.emplace_back(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  std::unordered_set<index_t> picked;
  for (index_t u = m_per_node + 1; u < n; ++u) {
    picked.clear();
    while (static_cast<index_t>(picked.size()) < m_per_node) {
      const index_t v = targets[rng.next_below(targets.size())];
      picked.insert(v);
    }
    for (const index_t v : picked) {
      edges.emplace_back(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph watts_strogatz(index_t n, index_t k, double beta, std::uint64_t seed) {
  CBM_CHECK(k >= 1 && 2 * k < n, "watts_strogatz needs 1 <= k < n/2");
  CBM_CHECK(beta >= 0.0 && beta <= 1.0, "beta must be a probability");
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(n) * k);
  for (index_t u = 0; u < n; ++u) {
    for (index_t d = 1; d <= k; ++d) {
      index_t v = static_cast<index_t>((u + d) % n);
      if (rng.next_bool(beta)) {
        // Rewire the far endpoint uniformly, avoiding loops and duplicates.
        for (int attempt = 0; attempt < 32; ++attempt) {
          const auto w = static_cast<index_t>(rng.next_below(n));
          if (w != u && !seen.contains(edge_key(u, w))) {
            v = w;
            break;
          }
        }
      }
      if (seen.insert(edge_key(u, v)).second) edges.emplace_back(u, v);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph clique_union(const CliqueUnionParams& p, std::uint64_t seed) {
  CBM_CHECK(p.num_nodes >= 2, "clique_union needs nodes");
  CBM_CHECK(p.clique_min >= 2 && p.clique_max >= p.clique_min,
            "invalid clique size range");
  CBM_CHECK(p.reuse_prob >= 0.0 && p.reuse_prob <= 1.0,
            "reuse_prob must be a probability");
  Rng rng(seed);
  EdgeList edges;
  // Collaborator history per node; reuse draws come from here so that a
  // node's successive groups overlap (and rows of A become near-duplicates).
  std::vector<std::vector<index_t>> collaborators(
      static_cast<std::size_t>(p.num_nodes));

  std::vector<index_t> members;
  for (index_t paper = 0; paper < p.num_cliques; ++paper) {
    const index_t size =
        power_law_int(rng, p.clique_min, p.clique_max, p.size_exponent);
    members.clear();
    const auto anchor = static_cast<index_t>(rng.next_below(p.num_nodes));
    members.push_back(anchor);
    const auto& history = collaborators[anchor];
    while (static_cast<index_t>(members.size()) < size) {
      index_t candidate;
      if (!history.empty() && rng.next_bool(p.reuse_prob)) {
        candidate = history[rng.next_below(history.size())];
      } else {
        candidate = static_cast<index_t>(rng.next_below(p.num_nodes));
      }
      if (std::find(members.begin(), members.end(), candidate) ==
          members.end()) {
        members.push_back(candidate);
      }
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        edges.emplace_back(members[i], members[j]);
      }
    }
    for (const index_t m : members) {
      for (const index_t other : members) {
        if (other != m) collaborators[m].push_back(other);
      }
    }
  }
  return Graph::from_edges(p.num_nodes, edges);
}

Graph stochastic_block_model(const SbmParams& p, std::uint64_t seed) {
  CBM_CHECK(p.num_nodes >= 2 && p.num_blocks >= 1, "invalid SBM parameters");
  Rng rng(seed);
  const index_t block_size = (p.num_nodes + p.num_blocks - 1) / p.num_blocks;
  std::unordered_set<std::uint64_t> seen;
  EdgeList edges;

  // Sample each block pair in G(n, m) form: expected degree × nodes / 2
  // within-block edges, spread cross-block mass uniformly over other blocks.
  for (index_t b = 0; b < p.num_blocks; ++b) {
    const index_t lo = b * block_size;
    const index_t hi = std::min<index_t>(lo + block_size, p.num_nodes);
    const index_t nb = hi - lo;
    if (nb < 2) continue;
    const auto m_in = static_cast<offset_t>(p.expected_degree_in * nb / 2.0);
    offset_t placed = 0;
    std::size_t attempts = 0;
    const std::size_t max_attempts = static_cast<std::size_t>(m_in) * 20 + 64;
    while (placed < m_in && attempts++ < max_attempts) {
      const auto u = static_cast<index_t>(lo + rng.next_below(nb));
      const auto v = static_cast<index_t>(lo + rng.next_below(nb));
      if (u == v) continue;
      if (seen.insert(edge_key(u, v)).second) {
        edges.emplace_back(u, v);
        ++placed;
      }
    }
  }
  const auto m_out =
      static_cast<offset_t>(p.expected_degree_out * p.num_nodes / 2.0);
  offset_t placed = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = static_cast<std::size_t>(m_out) * 20 + 64;
  while (placed < m_out && attempts++ < max_attempts) {
    const auto u = static_cast<index_t>(rng.next_below(p.num_nodes));
    const auto v = static_cast<index_t>(rng.next_below(p.num_nodes));
    if (u == v || u / block_size == v / block_size) continue;
    if (seen.insert(edge_key(u, v)).second) {
      edges.emplace_back(u, v);
      ++placed;
    }
  }
  return Graph::from_edges(p.num_nodes, edges);
}

Graph rmat(const RmatParams& p, std::uint64_t seed) {
  CBM_CHECK(p.scale >= 1 && p.scale <= 30, "rmat scale out of range");
  CBM_CHECK(p.a > 0 && p.b >= 0 && p.c >= 0 && p.a + p.b + p.c < 1.0,
            "rmat quadrant probabilities must sum below 1");
  CBM_CHECK(p.edges_per_node > 0, "rmat needs positive edge density");
  Rng rng(seed);
  const index_t n = index_t{1} << p.scale;
  const auto m = static_cast<offset_t>(p.edges_per_node * n / 2.0);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (offset_t e = 0; e < m; ++e) {
    index_t u = 0, v = 0;
    for (int level = 0; level < p.scale; ++level) {
      const double r = rng.next_double();
      const int quadrant = r < p.a                 ? 0
                           : r < p.a + p.b         ? 1
                           : r < p.a + p.b + p.c   ? 2
                                                   : 3;
      u = (u << 1) | (quadrant >> 1);
      v = (v << 1) | (quadrant & 1);
    }
    if (u != v) edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, edges);
}

Graph community_graph(const CommunityParams& p, std::uint64_t seed) {
  CBM_CHECK(p.num_nodes >= 2, "community_graph needs nodes");
  CBM_CHECK(p.team_min >= 2 && p.team_max >= p.team_min,
            "invalid team size range");
  CBM_CHECK(p.intra_prob > 0.0 && p.intra_prob <= 1.0,
            "intra_prob must be in (0, 1]");
  CBM_CHECK(p.cross_per_node >= 0.0, "cross_per_node must be nonnegative");
  Rng rng(seed);
  EdgeList edges;

  // Partition nodes into consecutive teams with power-law sizes.
  index_t next = 0;
  while (next < p.num_nodes) {
    const index_t size = std::min<index_t>(
        power_law_int(rng, p.team_min, p.team_max, p.size_exponent),
        p.num_nodes - next);
    for (index_t i = 0; i < size; ++i) {
      for (index_t j = i + 1; j < size; ++j) {
        if (p.intra_prob >= 1.0 || rng.next_bool(p.intra_prob)) {
          edges.emplace_back(next + i, next + j);
        }
      }
    }
    next += size;
  }

  // Uniform cross noise (duplicates/self-loops are cleaned by from_edges).
  const auto cross =
      static_cast<offset_t>(p.cross_per_node * p.num_nodes / 2.0);
  for (offset_t e = 0; e < cross; ++e) {
    const auto u = static_cast<index_t>(rng.next_below(p.num_nodes));
    const auto v = static_cast<index_t>(rng.next_below(p.num_nodes));
    if (u != v) edges.emplace_back(u, v);
  }
  return Graph::from_edges(p.num_nodes, edges);
}

Graph near_duplicate_rows(index_t n, index_t groups, index_t base_degree,
                          index_t flips, std::uint64_t seed) {
  CBM_CHECK(groups >= 1 && groups <= n, "invalid group count");
  CBM_CHECK(base_degree >= 1 && base_degree < n, "invalid base degree");
  Rng rng(seed);
  EdgeList edges;
  for (index_t g = 0; g < groups; ++g) {
    // One random neighborhood template per group...
    std::unordered_set<index_t> base;
    while (static_cast<index_t>(base.size()) < base_degree) {
      base.insert(static_cast<index_t>(rng.next_below(n)));
    }
    // ...shared by all group members, each with `flips` private extras.
    for (index_t u = g; u < n; u += groups) {
      for (const index_t v : base) {
        if (u != v) edges.emplace_back(u, v);
      }
      for (index_t f = 0; f < flips; ++f) {
        const auto v = static_cast<index_t>(rng.next_below(n));
        if (u != v) edges.emplace_back(u, v);
      }
    }
  }
  return Graph::from_edges(n, edges);
}

}  // namespace cbm
