// Tests for diagonal scaling (AD / DA / DAD) and A+I, the building blocks of
// the paper's normalised-adjacency workloads.
#include <gtest/gtest.h>

#include "sparse/scale.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

TEST(Scale, ColumnsScaleByDiagonal) {
  const auto a = test::random_binary(20, 0.2, 1);
  const auto d = test::random_diagonal<float>(20, 2);
  const auto ad = scale_columns(a, std::span<const float>(d));
  for (index_t i = 0; i < 20; ++i) {
    for (const index_t j : a.row_indices(i)) {
      EXPECT_FLOAT_EQ(ad.at(i, j), d[j]);
    }
  }
  EXPECT_EQ(ad.nnz(), a.nnz());
}

TEST(Scale, RowsScaleByDiagonal) {
  const auto a = test::random_binary(20, 0.2, 3);
  const auto d = test::random_diagonal<float>(20, 4);
  const auto da = scale_rows(a, std::span<const float>(d));
  for (index_t i = 0; i < 20; ++i) {
    for (const index_t j : a.row_indices(i)) {
      EXPECT_FLOAT_EQ(da.at(i, j), d[i]);
    }
  }
}

TEST(Scale, BothEqualsComposition) {
  const auto a = test::random_binary(25, 0.15, 5);
  const auto dl = test::random_diagonal<float>(25, 6);
  const auto dr = test::random_diagonal<float>(25, 7);
  const auto dad = scale_both(a, std::span<const float>(dl),
                              std::span<const float>(dr));
  const auto composed =
      scale_rows(scale_columns(a, std::span<const float>(dr)),
                 std::span<const float>(dl));
  EXPECT_EQ(dad, composed);
}

TEST(Scale, LengthValidation) {
  const auto a = test::random_binary(10, 0.2, 8);
  const std::vector<float> bad(9, 1.0f);
  EXPECT_THROW(scale_columns(a, std::span<const float>(bad)), CbmError);
  EXPECT_THROW(scale_rows(a, std::span<const float>(bad)), CbmError);
}

TEST(AddIdentity, InsertsDiagonalWhenAbsent) {
  // Row 0: {1}; row 1: {} — no diagonal entries anywhere.
  CooMatrix<float> coo;
  coo.rows = 2;
  coo.cols = 2;
  coo.push(0, 1, 1.0f);
  const auto a = CsrMatrix<float>::from_coo(coo);
  const auto ai = add_identity(a);
  EXPECT_EQ(ai.nnz(), 3);
  EXPECT_FLOAT_EQ(ai.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(ai.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(ai.at(1, 1), 1.0f);
  EXPECT_TRUE(ai.has_sorted_unique_rows());
}

TEST(AddIdentity, IncrementsExistingDiagonal) {
  CooMatrix<float> coo;
  coo.rows = 2;
  coo.cols = 2;
  coo.push(0, 0, 2.0f);
  coo.push(1, 0, 1.0f);
  const auto ai = add_identity(CsrMatrix<float>::from_coo(coo));
  EXPECT_FLOAT_EQ(ai.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(ai.at(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(ai.at(1, 0), 1.0f);
}

TEST(AddIdentity, DiagonalLastColumn) {
  // Regression guard for the insert-at-end path.
  CooMatrix<float> coo;
  coo.rows = 3;
  coo.cols = 3;
  coo.push(2, 0, 1.0f);
  coo.push(2, 1, 1.0f);
  const auto ai = add_identity(CsrMatrix<float>::from_coo(coo));
  EXPECT_FLOAT_EQ(ai.at(2, 2), 1.0f);
  EXPECT_EQ(ai.row_nnz(2), 3);
  EXPECT_TRUE(ai.has_sorted_unique_rows());
}

TEST(AddIdentity, RandomMatchesElementwise) {
  const auto a = test::random_binary(30, 0.15, 9);
  const auto ai = add_identity(a);
  for (index_t i = 0; i < 30; ++i) {
    for (index_t j = 0; j < 30; ++j) {
      const float expect = a.at(i, j) + (i == j ? 1.0f : 0.0f);
      EXPECT_FLOAT_EQ(ai.at(i, j), expect);
    }
  }
}

TEST(AddIdentity, RequiresSquare) {
  CooMatrix<float> coo;
  coo.rows = 2;
  coo.cols = 3;
  EXPECT_THROW(add_identity(CsrMatrix<float>::from_coo(coo)), CbmError);
}

}  // namespace
}  // namespace cbm
