// Minimal streaming JSON writer shared by the observability exporters
// (Chrome trace files, metrics snapshots, bench telemetry documents).
//
// Deliberately tiny: objects/arrays as an explicit open/close stack with
// automatic comma placement, string escaping per RFC 8259, and numbers
// printed so the output always reparses (no NaN/Inf literals).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace cbm::obs {

/// Escapes `s` as a JSON string literal (including the quotes).
std::string json_escape(std::string_view s);

/// Streaming writer; every value/begin call may take a key (required inside
/// objects, forbidden inside arrays — checked with assertions in debug).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  void begin_object(std::string_view key = {});
  void end_object();
  void begin_array(std::string_view key = {});
  void end_array();

  void value(std::string_view key, std::string_view s);
  void value(std::string_view key, const char* s);
  void value(std::string_view key, double v);
  void value(std::string_view key, std::int64_t v);
  void value(std::string_view key, std::uint64_t v);
  void value(std::string_view key, int v);
  void value(std::string_view key, bool v);

  /// Array-element overloads (no key).
  void element(std::string_view s);
  void element(double v);
  void element(std::int64_t v);

  /// Splices pre-serialised JSON as the value for `key` (caller guarantees
  /// validity — used to embed one exporter's document in another's).
  void raw(std::string_view key, std::string_view json);

 private:
  void comma_and_key(std::string_view key);

  std::ostream& os_;
  std::vector<bool> needs_comma_;  // one entry per open container
};

}  // namespace cbm::obs
