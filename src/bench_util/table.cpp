#include "bench_util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cbm {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  CBM_CHECK(cells.size() == headers_.size(),
            "row width does not match header");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::cout << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::cout << row[c] << std::string(width[c] - row[c].size(), ' ')
                << " | ";
    }
    std::cout << '\n';
  };
  print_row(headers_);
  std::cout << "|";
  for (const std::size_t w : width) std::cout << std::string(w + 2, '-') << "|";
  std::cout << '\n';
  for (const auto& row : rows_) print_row(row);
  std::cout.flush();
}

std::string fmt_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", s);
  return buf;
}

std::string fmt_double(double v, int digits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmt_mean_std(double mean, double stddev) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f (±%.4f)", mean, stddev);
  return buf;
}

std::string fmt_stats(const RunStats& stats) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.4f (%.4f ±%.4f)", stats.median(),
                stats.mean(), stats.stddev());
  return buf;
}

std::string fmt_mib(std::size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", static_cast<double>(bytes) / kMiB);
  return buf;
}

}  // namespace cbm
