// Kernel-table conformance tests for the runtime-dispatched SIMD layer
// (common/vectorops.hpp): every operation, at every level this host/build
// supports, must match a plain double-accumulated reference on sizes that
// exercise full vectors, partial tails, and the empty case. The dispatch
// plumbing itself (parse, scope, env knob) is covered at the bottom.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/vectorops.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

using test::EnvGuard;

// Sizes around each vector width: 8/16 floats and 4/8 doubles per register,
// the 4-register panel (64/32), and odd tails on both sides of each.
const std::size_t kSizes[] = {0,  1,  7,  8,  9,  15, 16,
                              17, 31, 33, 63, 64, 65, 128};

std::vector<SimdLevel> supported_levels() {
  std::vector<SimdLevel> levels;
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (simd_level_supported(level)) levels.push_back(level);
  }
  return levels;
}

template <typename T>
std::vector<T> random_vec(std::size_t n, Rng& rng) {
  std::vector<T> v(n);
  for (auto& x : v) x = static_cast<T>(rng.next_double() * 2 - 1);
  return v;
}

/// Elementwise tolerance: the kernels keep scalar accumulation order per
/// element, so everything except dot should be bit-near; a few ULP covers
/// FMA contraction differences between levels.
template <typename T>
void expect_near_vec(const std::vector<T>& actual,
                     const std::vector<T>& expect, const char* what,
                     double tol = 1e-5) {
  ASSERT_EQ(actual.size(), expect.size()) << what;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double scale = std::max(1.0, std::abs(static_cast<double>(expect[i])));
    EXPECT_NEAR(static_cast<double>(actual[i]),
                static_cast<double>(expect[i]), tol * scale)
        << what << " at i=" << i << " n=" << actual.size();
  }
}

template <typename T>
void run_elementwise_suite(SimdLevel level) {
  SimdScope scope(level);
  const auto& kern = simd::kernels<T>();
  Rng rng(test::auto_seed());
  const T a = static_cast<T>(1.25), b2 = static_cast<T>(-0.75);
  for (const std::size_t n : kSizes) {
    const auto x = random_vec<T>(n, rng);
    const auto y0 = random_vec<T>(n, rng);
    const std::string what =
        std::string(simd_level_name(level)) + " n=" + std::to_string(n);

    auto y = y0;
    kern.add(x.data(), y.data(), n);
    std::vector<T> expect = y0;
    for (std::size_t i = 0; i < n; ++i) expect[i] += x[i];
    expect_near_vec(y, expect, ("add " + what).c_str());

    y = y0;
    kern.axpy(a, x.data(), y.data(), n);
    expect = y0;
    for (std::size_t i = 0; i < n; ++i) expect[i] += a * x[i];
    expect_near_vec(y, expect, ("axpy " + what).c_str());

    y = y0;
    kern.scale(a, y.data(), n);
    expect = y0;
    for (std::size_t i = 0; i < n; ++i) expect[i] *= a;
    expect_near_vec(y, expect, ("scale " + what).c_str());

    y = y0;
    kern.fused_scale_add(a, b2, x.data(), y.data(), n);
    expect = y0;
    for (std::size_t i = 0; i < n; ++i) expect[i] = a * (b2 * x[i] + expect[i]);
    expect_near_vec(y, expect, ("fused_scale_add " + what).c_str());

    const T dot = kern.dot(x.data(), y0.data(), n);
    double ref = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      ref += static_cast<double>(x[i]) * static_cast<double>(y0[i]);
    }
    // dot is the documented reassociation exception: lane-parallel partial
    // sums, so tolerance scales with n.
    EXPECT_NEAR(static_cast<double>(dot), ref,
                1e-4 * std::max(1.0, std::abs(ref)))
        << "dot " << what;
  }
}

TEST(VectorOpsKernels, ElementwiseEveryLevelFloat) {
  for (const SimdLevel level : supported_levels()) {
    run_elementwise_suite<float>(level);
  }
}

TEST(VectorOpsKernels, ElementwiseEveryLevelDouble) {
  for (const SimdLevel level : supported_levels()) {
    run_elementwise_suite<double>(level);
  }
}

template <typename T>
void run_spmm_row_suite(SimdLevel level) {
  SimdScope scope(level);
  const auto& kern = simd::kernels<T>();
  Rng rng(test::auto_seed(1));
  const std::size_t brows = 24;
  for (const std::size_t width : kSizes) {
    const std::size_t ldb = width;
    const auto bmat = random_vec<T>(brows * ldb, rng);
    const auto seed_row = random_vec<T>(width, rng);
    // Nonzeros with repeated column indices (a row may reference the same
    // B row twice after scaling folds).
    const std::vector<index_t> indices = {3, 0, 17, 3, 9, 23, 11};
    auto values = random_vec<T>(indices.size(), rng);
    const T seed_scale = static_cast<T>(0.5), av_scale = static_cast<T>(-1.5);

    for (const bool with_seed : {false, true}) {
      for (const offset_t k1 :
           {offset_t{0}, offset_t{2}, offset_t{5},
            static_cast<offset_t>(indices.size())}) {
        std::vector<T> crow(width, static_cast<T>(-3));  // must be overwritten
        kern.spmm_row(bmat.data(), ldb, indices.data(), values.data(), 0, k1,
                      crow.data(), static_cast<index_t>(width),
                      with_seed ? seed_row.data() : nullptr, seed_scale,
                      av_scale);
        std::vector<T> expect(width, T{0});
        if (with_seed) {
          for (std::size_t j = 0; j < width; ++j) {
            expect[j] = seed_scale * seed_row[j];
          }
        }
        for (offset_t k = 0; k < k1; ++k) {
          const T av = av_scale * values[k];
          const T* brow = bmat.data() + indices[k] * ldb;
          for (std::size_t j = 0; j < width; ++j) expect[j] += av * brow[j];
        }
        expect_near_vec(crow, expect,
                        (std::string("spmm_row ") + simd_level_name(level) +
                         " width=" + std::to_string(width) +
                         " k1=" + std::to_string(k1) +
                         (with_seed ? " seeded" : " unseeded"))
                            .c_str());
      }
    }
  }
}

TEST(VectorOpsKernels, SpmmRowEveryLevelFloat) {
  for (const SimdLevel level : supported_levels()) {
    run_spmm_row_suite<float>(level);
  }
}

TEST(VectorOpsKernels, SpmmRowEveryLevelDouble) {
  for (const SimdLevel level : supported_levels()) {
    run_spmm_row_suite<double>(level);
  }
}

TEST(VectorOpsKernels, LevelsAgreeOnElementwiseOps) {
  // Per-element accumulation order is part of the contract for everything
  // except dot, so levels may differ only by FMA contraction — at most an
  // ULP or two per element, never a reassociated sum.
  const auto levels = supported_levels();
  if (levels.size() < 2) GTEST_SKIP() << "single-level host";
  Rng rng(test::auto_seed());
  const std::size_t n = 65;
  const auto x = random_vec<float>(n, rng);
  const auto y0 = random_vec<float>(n, rng);

  std::vector<std::vector<float>> per_level;
  for (const SimdLevel level : levels) {
    SimdScope scope(level);
    auto y = y0;
    simd::kernels<float>().axpy(1.3f, x.data(), y.data(), n);
    per_level.push_back(std::move(y));
  }
  for (std::size_t l = 1; l < per_level.size(); ++l) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(per_level[l][i], per_level[0][i],
                  2e-6f * std::max(1.0f, std::abs(per_level[0][i])))
          << "axpy differs between " << simd_level_name(levels[0]) << " and "
          << simd_level_name(levels[l]) << " at i=" << i;
    }
  }
}

// ------------------------------------------------------ dispatch plumbing --

TEST(SimdDispatch, ParseAcceptsKnownNames) {
  EXPECT_EQ(parse_simd_level("auto"), simd_max_supported());
  EXPECT_EQ(parse_simd_level("scalar"), SimdLevel::kScalar);
  if (simd_level_supported(SimdLevel::kAvx2)) {
    EXPECT_EQ(parse_simd_level("avx2"), SimdLevel::kAvx2);
  }
  if (simd_level_supported(SimdLevel::kAvx512)) {
    EXPECT_EQ(parse_simd_level("avx512"), SimdLevel::kAvx512);
  }
}

TEST(SimdDispatch, ParseRejectsGarbage) {
  EXPECT_THROW(parse_simd_level("sse9"), CbmError);
  EXPECT_THROW(parse_simd_level(""), CbmError);
  EXPECT_THROW(parse_simd_level("AVX2"), CbmError);  // names are lower-case
}

TEST(SimdDispatch, NamesRoundTrip) {
  EXPECT_STREQ(simd_level_name(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx2), "avx2");
  EXPECT_STREQ(simd_level_name(SimdLevel::kAvx512), "avx512");
}

TEST(SimdDispatch, ScalarAlwaysSupported) {
  EXPECT_TRUE(simd_level_supported(SimdLevel::kScalar));
  EXPECT_TRUE(simd_level_supported(simd_max_supported()));
}

TEST(SimdDispatch, ScopeRestoresLevel) {
  const SimdLevel before = simd_level();
  {
    SimdScope scope(SimdLevel::kScalar);
    EXPECT_EQ(simd_level(), SimdLevel::kScalar);
  }
  EXPECT_EQ(simd_level(), before);
}

TEST(SimdDispatch, SetLevelSwapsKernelTable) {
  const auto* scalar_table = [] {
    SimdScope scope(SimdLevel::kScalar);
    return &simd::kernels<float>();
  }();
  const SimdLevel max = simd_max_supported();
  if (max == SimdLevel::kScalar) GTEST_SKIP() << "scalar-only host";
  SimdScope scope(max);
  EXPECT_NE(&simd::kernels<float>(), scalar_table);
}

}  // namespace
}  // namespace cbm
