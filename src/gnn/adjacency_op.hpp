// Pluggable adjacency operand for GNN layers.
//
// The paper swaps the Â operand of a GCN between MKL-CSR and CBM while
// keeping the rest of the network identical; AdjacencyOp is that seam.
#pragma once

#include <memory>
#include <string>

#include "cbm/cbm_matrix.hpp"
#include "dense/dense_matrix.hpp"
#include "sparse/csr.hpp"

namespace cbm {

/// A fixed sparse operand S with the single capability C = S·B.
template <typename T>
class AdjacencyOp {
 public:
  virtual ~AdjacencyOp() = default;

  /// C = S · B; C must be pre-shaped, contents overwritten.
  virtual void multiply(const DenseMatrix<T>& b, DenseMatrix<T>& c) const = 0;

  [[nodiscard]] virtual index_t rows() const = 0;
  [[nodiscard]] virtual index_t cols() const = 0;
  [[nodiscard]] virtual std::size_t bytes() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// CSR-backed operand (the paper's baseline).
template <typename T>
class CsrAdjacency final : public AdjacencyOp<T> {
 public:
  explicit CsrAdjacency(CsrMatrix<T> m) : m_(std::move(m)) {}

  void multiply(const DenseMatrix<T>& b, DenseMatrix<T>& c) const override;
  [[nodiscard]] index_t rows() const override { return m_.rows(); }
  [[nodiscard]] index_t cols() const override { return m_.cols(); }
  [[nodiscard]] std::size_t bytes() const override { return m_.bytes(); }
  [[nodiscard]] std::string name() const override { return "csr"; }

  [[nodiscard]] const CsrMatrix<T>& matrix() const { return m_; }

 private:
  CsrMatrix<T> m_;
};

/// CBM-backed operand. The execution plan is fixed at construction: layers
/// call the capability interface, so this is where a GNN opts into the fused
/// column-tiled engine (e.g. via
/// MultiplySchedule::from_config(RuntimeConfig::from_env())). Construction
/// honours CBM_VALIDATE (cbm::check) — an adjacency assembled from a stale
/// or corrupted CBM must fail here, not after an epoch of wrong products.
template <typename T>
class CbmAdjacency final : public AdjacencyOp<T> {
 public:
  explicit CbmAdjacency(
      CbmMatrix<T> m,
      UpdateSchedule schedule = UpdateSchedule::kBranchDynamic)
      : m_(std::move(m)), schedule_(MultiplySchedule::two_stage(schedule)) {
    validate_env();
  }

  CbmAdjacency(CbmMatrix<T> m, const MultiplySchedule& schedule)
      : m_(std::move(m)), schedule_(schedule) {
    validate_env();
  }

  void multiply(const DenseMatrix<T>& b, DenseMatrix<T>& c) const override;
  [[nodiscard]] index_t rows() const override { return m_.rows(); }
  [[nodiscard]] index_t cols() const override { return m_.cols(); }
  [[nodiscard]] std::size_t bytes() const override { return m_.bytes(); }
  [[nodiscard]] std::string name() const override { return "cbm"; }

  [[nodiscard]] const CbmMatrix<T>& matrix() const { return m_; }
  [[nodiscard]] const MultiplySchedule& schedule() const { return schedule_; }

 private:
  /// Runs cbm::check at the CBM_VALIDATE level; throws CbmError on failure.
  void validate_env() const;

  CbmMatrix<T> m_;
  MultiplySchedule schedule_;
};

extern template class CsrAdjacency<float>;
extern template class CsrAdjacency<double>;
extern template class CbmAdjacency<float>;
extern template class CbmAdjacency<double>;

}  // namespace cbm
