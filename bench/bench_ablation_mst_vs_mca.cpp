// Ablation — compression-tree solver (§III vs §V-C): Kruskal MST on the full
// undirected distance graph vs Chu–Liu/Edmonds MCA on the α-pruned directed
// graph. At α = 0 both must reach the same delta count; the MCA path is the
// production default because it handles every α.
#include "bench_common.hpp"

int main() {
  using namespace cbm;
  using namespace cbm::bench;
  const auto config = BenchConfig::from_env();
  print_bench_header(config, "Ablation — MST vs MCA tree solver");
  set_threads(config.threads);
  BenchReport report("ablation_mst_vs_mca", config);

  TablePrinter table({"Graph", "Solver", "Build [s]", "Deltas", "Ratio",
                      "RootFanout"});
  for (const std::string name : {"pubmed", "ca-hepph", "collab"}) {
    const auto& spec = dataset_spec(name);
    const Graph g = load_dataset(spec, config);
    for (const TreeAlgorithm algo :
         {TreeAlgorithm::kMca, TreeAlgorithm::kMst}) {
      RunStats build;
      CbmStats stats;
      for (int rep = 0; rep < std::max(1, config.reps - 1); ++rep) {
        CbmMatrix<real_t>::compress(g.adjacency(),
                                    {.alpha = 0, .algorithm = algo}, &stats);
        build.add(stats.build_seconds);
      }
      const std::vector<std::pair<std::string, std::string>> labels = {
          {"graph", name},
          {"solver", algo == TreeAlgorithm::kMca ? "mca" : "mst"}};
      report.add("build_seconds", build, labels);
      report.add_scalar("total_deltas",
                        static_cast<double>(stats.total_deltas), labels);
      table.add_row({name, algo == TreeAlgorithm::kMca ? "MCA" : "MST",
                     fmt_stats(build),
                     std::to_string(stats.total_deltas),
                     fmt_double(static_cast<double>(g.adjacency().bytes()) /
                                    stats.bytes,
                                2),
                     std::to_string(stats.root_out_degree)});
    }
  }
  table.print();
  return 0;
}
