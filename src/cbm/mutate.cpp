// Incremental CBM maintenance (see mutate.hpp for the algorithm overview).
//
// Terminology used throughout:
//  - "mutated row": a row named by the batch with at least one effective
//    toggle (duplicate inserts / no-op removes do not count);
//  - "patched child": an unmutated direct child of a mutated row — the only
//    other rows whose delta storage the batch can change;
//  - "applied change list": a mutated row's effective toggles, sorted by
//    column, +1 for a gained column and −1 for a lost one.
#include "cbm/mutate.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cbm/spmm_cbm_fused.hpp"
#include "check/check.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/obs.hpp"

namespace cbm {

namespace {

/// Signed delta row under construction: (column, ±1). The ±scale value is
/// materialised only when the CSR is rebuilt, with the same expression
/// build_delta_matrix used — so patched rows are bitwise identical to what a
/// fresh compression of the same tree would emit.
using SignedRow = std::vector<std::pair<index_t, int>>;

/// Applied change list: (column, +1 gained / −1 lost), sorted by column.
using ChangeList = std::vector<std::pair<index_t, int>>;

/// Applies a delta row to a parent pattern (Eq. 2): positive values insert
/// their column, negative values delete the inherited one.
template <typename T>
std::vector<index_t> merge_delta(const std::vector<index_t>& parent,
                                 std::span<const index_t> cols,
                                 [[maybe_unused]] std::span<const T> vals) {
  std::vector<index_t> out;
  out.reserve(parent.size() + cols.size());
  std::size_t i = 0;
  std::size_t k = 0;
  while (i < parent.size() || k < cols.size()) {
    if (k == cols.size() || (i < parent.size() && parent[i] < cols[k])) {
      out.push_back(parent[i++]);
    } else if (i == parent.size() || cols[k] < parent[i]) {
      CBM_DCHECK(vals[k] > T{0}, "insertion delta must be positive");
      out.push_back(cols[k]);
      ++k;
    } else {
      CBM_DCHECK(vals[k] < T{0}, "matching delta must be a removal");
      ++i;
      ++k;
    }
  }
  return out;
}

/// Reconstructs pre-mutation row patterns on demand, caching every row it
/// touches so shared ancestor chains are decompressed once per batch.
template <typename T>
class PatternCache {
 public:
  PatternCache(const CompressionTree& tree, const CsrMatrix<T>& delta)
      : tree_(tree), delta_(delta) {}

  const std::vector<index_t>& pattern(index_t x) {
    if (const auto it = cache_.find(x); it != cache_.end()) return it->second;
    // Walk towards the root until a cached ancestor (or the root itself),
    // then materialise the chain top-down.
    std::vector<index_t> chain;
    index_t v = x;
    while (v != tree_.virtual_root() && !cache_.contains(v)) {
      chain.push_back(v);
      v = tree_.parent(v);
    }
    const std::vector<index_t>* parent =
        v == tree_.virtual_root() ? nullptr : &cache_.at(v);
    for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
      const index_t r = *rit;
      const auto cols = delta_.row_indices(r);
      std::vector<index_t> pat =
          parent == nullptr
              ? std::vector<index_t>(cols.begin(), cols.end())
              : merge_delta(*parent, cols, delta_.row_values(r));
      parent = &(cache_[r] = std::move(pat));
    }
    return cache_.at(x);
  }

 private:
  const CompressionTree& tree_;
  const CsrMatrix<T>& delta_;
  std::unordered_map<index_t, std::vector<index_t>> cache_;
};

/// old pattern + applied change list → new pattern (both sorted).
std::vector<index_t> apply_changes(const std::vector<index_t>& oldp,
                                   const ChangeList& changes) {
  std::vector<index_t> out;
  out.reserve(oldp.size() + changes.size());
  std::size_t i = 0;
  std::size_t k = 0;
  while (i < oldp.size() || k < changes.size()) {
    if (k == changes.size() ||
        (i < oldp.size() && oldp[i] < changes[k].first)) {
      out.push_back(oldp[i++]);
    } else if (i == oldp.size() || changes[k].first < oldp[i]) {
      CBM_DCHECK(changes[k].second > 0, "losing a column that is absent");
      out.push_back(changes[k].first);
      ++k;
    } else {
      CBM_DCHECK(changes[k].second < 0, "gaining a column already present");
      ++i;  // column lost
      ++k;
    }
  }
  return out;
}

/// Signed difference of two patterns: +1 for columns only the child has,
/// −1 for columns only the parent has — a compressed row's delta (Eq. 2).
SignedRow diff_patterns(const std::vector<index_t>& child,
                        const std::vector<index_t>& parent) {
  SignedRow out;
  std::size_t i = 0;
  std::size_t k = 0;
  while (i < child.size() || k < parent.size()) {
    if (k == parent.size() || (i < child.size() && child[i] < parent[k])) {
      out.emplace_back(child[i++], +1);
    } else if (i == child.size() || parent[k] < child[i]) {
      out.emplace_back(parent[k++], -1);
    } else {
      ++i;
      ++k;
    }
  }
  return out;
}

/// Full pattern as a root-attached delta row (all insertions).
SignedRow root_row(const std::vector<index_t>& pattern) {
  SignedRow out;
  out.reserve(pattern.size());
  for (const index_t c : pattern) out.emplace_back(c, +1);
  return out;
}

/// Patches an unmutated child's delta row from its parent's applied change
/// list alone. The child's own pattern is untouched — only the diff against
/// the parent moves:
///  - parent gained a column the child's delta inserted → the insertion is
///    now inheritance: drop the entry;
///  - parent gained a column the child has no entry for → the child must not
///    inherit it: add a removal;
///  - parent lost a column the child's delta removed → nothing left to
///    cancel: drop the entry;
///  - parent lost a column the child has no entry for → the child was
///    inheriting it: add an insertion.
template <typename T>
SignedRow patch_child(std::span<const index_t> cols, std::span<const T> vals,
                      const ChangeList& applied) {
  SignedRow out;
  out.reserve(cols.size() + applied.size());
  std::size_t i = 0;
  std::size_t k = 0;
  while (i < cols.size() || k < applied.size()) {
    if (k == applied.size() ||
        (i < cols.size() && cols[i] < applied[k].first)) {
      out.emplace_back(cols[i], vals[i] > T{0} ? +1 : -1);
      ++i;
    } else if (i == cols.size() || applied[k].first < cols[i]) {
      out.emplace_back(applied[k].first, applied[k].second > 0 ? -1 : +1);
      ++k;
    } else {
      // Same column: the existing entry's sign must match the parent's old
      // state (an insertion implies the parent lacked the column, a removal
      // implies it had it), so the toggle always cancels the entry.
      CBM_DCHECK((applied[k].second > 0) == (vals[i] > T{0}),
                 "delta entry inconsistent with parent mutation");
      ++i;
      ++k;
    }
  }
  return out;
}

}  // namespace

template <typename T>
void CbmMatrix<T>::ensure_mutation_state() {
  const index_t n = rows();
  if (static_cast<index_t>(row_nnz_.size()) == n) return;
  // One topological sweep: a root row owns row_nnz(x) = nnz of its delta
  // row; a compressed row adds its insertions and subtracts its removals
  // from the parent's count.
  row_nnz_.assign(static_cast<std::size_t>(n), 0);
  for (const index_t x : tree_.topological_order()) {
    if (tree_.is_root_child(x)) {
      row_nnz_[x] = delta_.row_nnz(x);
      continue;
    }
    index_t count = row_nnz_[tree_.parent(x)];
    for (const T v : delta_.row_values(x)) count += v > T{0} ? 1 : -1;
    CBM_DCHECK(count >= 0, "negative reconstructed row nnz");
    row_nnz_[x] = count;
  }
  if (mutation_.epoch == 0 && mutation_.baseline_nnz == 0 &&
      mutation_.baseline_deltas == 0) {
    // Born via from_parts: adopt the current state as the staleness baseline
    // (compress_impl fills these from its DeltaStats instead).
    const std::int64_t total =
        std::accumulate(row_nnz_.begin(), row_nnz_.end(), std::int64_t{0});
    mutation_.baseline_nnz = total;
    mutation_.baseline_deltas = delta_.nnz();
    mutation_.source_nnz = total;
  }
}

template <typename T>
MutationResult CbmMatrix<T>::insert_edges(std::span<const EdgeUpdate> edges) {
  return mutate_edges(edges, {});
}

template <typename T>
MutationResult CbmMatrix<T>::remove_edges(std::span<const EdgeUpdate> edges) {
  return mutate_edges({}, edges);
}

template <typename T>
MutationResult CbmMatrix<T>::mutate_edges(std::span<const EdgeUpdate> inserts,
                                          std::span<const EdgeUpdate> removes) {
  CBM_SPAN("cbm.mutate");
  Timer timer;
  CBM_CHECK(cbm_kind_mutable(kind_),
            "edge mutation requires kPlain or kSymScaled (other kinds fold a "
            "column scale the matrix no longer stores — recompress instead)");
  const index_t n = rows();
  const index_t m = cols();
  for (const auto& span : {inserts, removes}) {
    for (const EdgeUpdate& e : span) {
      CBM_CHECK(e.row >= 0 && e.row < n && e.col >= 0 && e.col < m,
                "mutation edge out of range");
    }
  }
  ensure_mutation_state();

  // Gather both spans as (row, col, dir) and sort so each row's requested
  // toggles come out grouped and column-ordered.
  struct Op {
    index_t row;
    index_t col;
    int dir;  // +1 insert request, −1 remove request
  };
  std::vector<Op> ops;
  ops.reserve(inserts.size() + removes.size());
  for (const EdgeUpdate& e : inserts) ops.push_back({e.row, e.col, +1});
  for (const EdgeUpdate& e : removes) ops.push_back({e.row, e.col, -1});
  std::sort(ops.begin(), ops.end(), [](const Op& a, const Op& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  MutationResult result;
  PatternCache<T> old_patterns(tree_, delta_);
  // Mutated rows with their applied change lists and new patterns.
  std::unordered_map<index_t, ChangeList> applied;
  std::unordered_map<index_t, std::vector<index_t>> new_pattern;
  std::vector<index_t> mutated_rows;  // sorted (ops are row-sorted)

  for (std::size_t s = 0; s < ops.size();) {
    const index_t row = ops[s].row;
    std::size_t e = s;
    while (e < ops.size() && ops[e].row == row) ++e;
    const std::vector<index_t>& oldp = old_patterns.pattern(row);
    ChangeList changes;
    for (std::size_t k = s; k < e;) {
      const index_t col = ops[k].col;
      std::int64_t n_ins = 0;
      std::int64_t n_rem = 0;
      while (k < e && ops[k].col == col) {
        (ops[k].dir > 0 ? n_ins : n_rem) += 1;
        ++k;
      }
      CBM_CHECK(n_ins == 0 || n_rem == 0,
                "edge appears in both the insert and the remove span");
      const bool present = std::binary_search(oldp.begin(), oldp.end(), col);
      if (n_ins > 0) {
        if (present) {
          result.duplicate_inserts += n_ins;
        } else {
          result.inserted += 1;
          result.duplicate_inserts += n_ins - 1;
          changes.emplace_back(col, +1);
        }
      } else {
        if (!present) {
          result.noop_removes += n_rem;
        } else {
          result.removed += 1;
          result.noop_removes += n_rem - 1;
          changes.emplace_back(col, -1);
        }
      }
    }
    if (!changes.empty()) {
      new_pattern.emplace(row, apply_changes(oldp, changes));
      applied.emplace(row, std::move(changes));
      mutated_rows.push_back(row);
    }
    s = e;
  }

  // New delta rows (signs only) for every affected row.
  std::unordered_map<index_t, SignedRow> pending;
  for (const index_t x : mutated_rows) {
    const index_t p = tree_.parent(x);
    if (p == tree_.virtual_root()) {
      pending.emplace(x, root_row(new_pattern.at(x)));
    } else {
      const std::vector<index_t>& pp = new_pattern.contains(p)
                                           ? new_pattern.at(p)
                                           : old_patterns.pattern(p);
      pending.emplace(x, diff_patterns(new_pattern.at(x), pp));
    }
  }
  for (const index_t x : mutated_rows) {
    for (const index_t c : tree_.children(x)) {
      if (new_pattern.contains(c)) continue;  // re-diffed above
      pending.emplace(c, patch_child(delta_.row_indices(c),
                                     delta_.row_values(c), applied.at(x)));
    }
  }

  // Admissibility repair (§V-C, sign-corrected): a compressed row whose
  // delta no longer beats storing the pattern outright — |Δ(x)| < nnz(A_x) −
  // α — is cut loose and re-attached to the virtual root. No parent search:
  // staleness() accounts for the lost gain and the background recompression
  // restores optimality.
  std::vector<index_t> reparented;
  for (auto& [r, row] : pending) {
    if (tree_.parent(r) == tree_.virtual_root()) continue;
    const bool is_mutated = new_pattern.contains(r);
    const index_t rn = is_mutated ? static_cast<index_t>(new_pattern.at(r).size())
                                  : row_nnz_[r];
    if (static_cast<index_t>(row.size()) + alpha_ < rn) continue;
    // A patched child's pattern is unchanged; rebuild it from the parent's
    // old pattern only now that the re-attachment actually needs it.
    const std::vector<index_t> pattern =
        is_mutated ? new_pattern.at(r)
                   : merge_delta(old_patterns.pattern(tree_.parent(r)),
                                 delta_.row_indices(r), delta_.row_values(r));
    row = root_row(pattern);
    reparented.push_back(r);
  }
  std::sort(reparented.begin(), reparented.end());

  // Rebuild the delta CSR in one O(nnz) pass, splicing the rewritten rows in.
  const std::int64_t old_delta_nnz = delta_.nnz();
  if (!pending.empty()) {
    std::vector<offset_t> indptr(static_cast<std::size_t>(n) + 1, 0);
    for (index_t x = 0; x < n; ++x) {
      const auto it = pending.find(x);
      const auto count = it != pending.end()
                             ? static_cast<offset_t>(it->second.size())
                             : static_cast<offset_t>(delta_.row_nnz(x));
      indptr[x + 1] = indptr[x] + count;
    }
    std::vector<index_t> indices(static_cast<std::size_t>(indptr.back()));
    std::vector<T> values(static_cast<std::size_t>(indptr.back()));
    for (index_t x = 0; x < n; ++x) {
      offset_t out = indptr[x];
      if (const auto it = pending.find(x); it != pending.end()) {
        for (const auto& [col, sign] : it->second) {
          indices[out] = col;
          // Same value expression as build_delta_matrix: the folded column
          // scale is 1 for kPlain and the diagonal for kSymScaled, so the
          // rewritten rows are bitwise identical to a fresh extraction.
          const T scale = kind_ == CbmKind::kPlain ? T{1} : diag_[col];
          values[out] = sign > 0 ? scale : -scale;
          ++out;
        }
      } else {
        const auto cols = delta_.row_indices(x);
        const auto vals = delta_.row_values(x);
        std::copy(cols.begin(), cols.end(), indices.begin() + out);
        std::copy(vals.begin(), vals.end(), values.begin() + out);
      }
    }
    delta_ = CsrMatrix<T>(n, m, std::move(indptr), std::move(indices),
                          std::move(values));
  }

  // Tree repair + schedule maintenance, only when an edge was actually cut.
  // The swap publishes a fresh FusedRowSchedule; copies of this matrix keep
  // sharing the old one (copy-on-write at the schedule level).
  if (!reparented.empty()) {
    tree_ = tree_.with_reparented_to_root(reparented);
    fused_schedule_ = std::make_shared<const FusedRowSchedule<T>>(
        build_fused_row_schedule(tree_, kind_, std::span<const T>(diag_)));
  }

  // Bookkeeping: per-row nnz for mutated rows, then the staleness state.
  for (const index_t x : mutated_rows) {
    row_nnz_[x] = static_cast<index_t>(new_pattern.at(x).size());
  }
  mutation_.epoch += 1;
  mutation_.reparented_rows += static_cast<index_t>(reparented.size());
  mutation_.source_nnz += result.inserted - result.removed;

  result.touched_rows = static_cast<index_t>(pending.size());
  result.reparented_rows = static_cast<index_t>(reparented.size());
  result.delta_nnz_change = delta_.nnz() - old_delta_nnz;
  result.tree_changed = !reparented.empty();

  CBM_COUNTER_ADD("cbm.mutate.calls", 1);
  CBM_COUNTER_ADD("cbm.mutate.inserted_edges", result.inserted);
  CBM_COUNTER_ADD("cbm.mutate.removed_edges", result.removed);
  CBM_COUNTER_ADD("cbm.mutate.touched_rows",
                  static_cast<std::int64_t>(result.touched_rows));
  CBM_COUNTER_ADD("cbm.mutate.reparented_rows",
                  static_cast<std::int64_t>(result.reparented_rows));
  if (result.tree_changed) CBM_COUNTER_ADD("cbm.mutate.tree_rebuilds", 1);
  CBM_GAUGE_SET("cbm.mutate.staleness", staleness());
  CBM_GAUGE_SET("cbm.mutate.epoch", static_cast<double>(mutation_.epoch));
  CBM_TIMING_RECORD("cbm.mutate", timer.seconds());

  // CBM_VALIDATE=build|full re-audits the patched format the same way
  // compression and from_parts do theirs.
  if (const auto level = check::validate_level_from_env();
      level != check::ValidateLevel::kOff) {
    CBM_SPAN("cbm.validate");
    check::enforce(check::validate(*this, {.level = level}));
    CBM_COUNTER_ADD("cbm.validate.calls", 1);
  }
  return result;
}

template <typename T>
double CbmMatrix<T>::staleness() const {
  return mutation_staleness(mutation_, rows(), delta_.nnz());
}

// Member definitions live in this TU, so the class-level explicit
// instantiations in cbm_matrix.cpp cannot see them — instantiate here.
template void CbmMatrix<float>::ensure_mutation_state();
template void CbmMatrix<double>::ensure_mutation_state();
template MutationResult CbmMatrix<float>::insert_edges(
    std::span<const EdgeUpdate>);
template MutationResult CbmMatrix<double>::insert_edges(
    std::span<const EdgeUpdate>);
template MutationResult CbmMatrix<float>::remove_edges(
    std::span<const EdgeUpdate>);
template MutationResult CbmMatrix<double>::remove_edges(
    std::span<const EdgeUpdate>);
template MutationResult CbmMatrix<float>::mutate_edges(
    std::span<const EdgeUpdate>, std::span<const EdgeUpdate>);
template MutationResult CbmMatrix<double>::mutate_edges(
    std::span<const EdgeUpdate>, std::span<const EdgeUpdate>);
template double CbmMatrix<float>::staleness() const;
template double CbmMatrix<double>::staleness() const;

}  // namespace cbm
