// Unit tests for the dense substrate: container, GEMM, elementwise ops.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dense/dense_matrix.hpp"
#include "dense/gemm.hpp"
#include "dense/ops.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

TEST(DenseMatrix, ZeroInitialised) {
  DenseMatrix<float> m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0f);
  }
}

TEST(DenseMatrix, RowSpanAliasesStorage) {
  DenseMatrix<float> m(2, 3);
  m.row(1)[2] = 7.0f;
  EXPECT_EQ(m(1, 2), 7.0f);
}

TEST(DenseMatrix, FromDataValidatesSize) {
  EXPECT_THROW(DenseMatrix<float>(2, 2, {1.0f, 2.0f, 3.0f}), CbmError);
  DenseMatrix<float> ok(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(ok(1, 0), 3.0f);
}

TEST(DenseMatrix, FillUniformInRange) {
  Rng rng(5);
  DenseMatrix<float> m(10, 10);
  m.fill_uniform(rng, -2.0f, 2.0f);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], -2.0f);
    EXPECT_LT(m.data()[i], 2.0f);
  }
}

TEST(DenseMatrix, BytesReflectsStorage) {
  DenseMatrix<double> m(4, 5);
  EXPECT_EQ(m.bytes(), 4u * 5u * sizeof(double));
}

struct GemmShape {
  index_t m, k, n;
};

class GemmParam : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmParam, BlockedMatchesNaive) {
  const auto [m, k, n] = GetParam();
  const auto a = test::random_dense<float>(m, k, 1);
  const auto b = test::random_dense<float>(k, n, 2);
  DenseMatrix<float> c_fast(m, n), c_ref(m, n);
  gemm(a, b, c_fast);
  gemm_naive(a, b, c_ref);
  EXPECT_TRUE(allclose(c_fast, c_ref, 1e-4, 1e-5));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmParam,
                         ::testing::Values(GemmShape{1, 1, 1},
                                           GemmShape{3, 5, 2},
                                           GemmShape{17, 9, 33},
                                           GemmShape{64, 64, 64},
                                           GemmShape{70, 300, 65},
                                           GemmShape{130, 257, 3}));

TEST(Gemm, AlphaBetaSemantics) {
  const auto a = test::random_dense<double>(8, 8, 3);
  const auto b = test::random_dense<double>(8, 8, 4);
  auto c = test::random_dense<double>(8, 8, 5);
  auto c_ref = c;
  gemm(a, b, c, 2.0, 3.0);
  gemm_naive(a, b, c_ref, 2.0, 3.0);
  EXPECT_TRUE(allclose(c, c_ref, 1e-10, 1e-12));
}

TEST(Gemm, BetaOneAccumulates) {
  const auto a = test::random_dense<float>(6, 7, 8);
  const auto b = test::random_dense<float>(7, 5, 9);
  DenseMatrix<float> c(6, 5);
  gemm(a, b, c);           // c = ab
  gemm(a, b, c, 1.0f, 1.0f);  // c = ab + ab
  DenseMatrix<float> twice(6, 5);
  gemm(a, b, twice, 2.0f, 0.0f);
  EXPECT_TRUE(allclose(c, twice, 1e-4, 1e-6));
}

TEST(Gemm, ShapeMismatchThrows) {
  DenseMatrix<float> a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(gemm(a, b, c), CbmError);
  DenseMatrix<float> b_ok(3, 2), c_bad(3, 2);
  EXPECT_THROW(gemm(a, b_ok, c_bad), CbmError);
}

TEST(Ops, ReluClampsNegatives) {
  DenseMatrix<float> m(1, 4, {-1.0f, 0.0f, 2.0f, -0.5f});
  relu_inplace(m);
  EXPECT_EQ(m(0, 0), 0.0f);
  EXPECT_EQ(m(0, 1), 0.0f);
  EXPECT_EQ(m(0, 2), 2.0f);
  EXPECT_EQ(m(0, 3), 0.0f);
}

TEST(Ops, AddBiasBroadcastsRows) {
  DenseMatrix<float> m(2, 3, {1, 2, 3, 4, 5, 6});
  const std::vector<float> bias = {10, 20, 30};
  add_bias_inplace(m, std::span<const float>(bias));
  EXPECT_EQ(m(0, 0), 11.0f);
  EXPECT_EQ(m(1, 2), 36.0f);
}

TEST(Ops, AddBiasLengthChecked) {
  DenseMatrix<float> m(2, 3);
  const std::vector<float> bad = {1, 2};
  EXPECT_THROW(add_bias_inplace(m, std::span<const float>(bad)), CbmError);
}

TEST(Ops, TransposeRoundTrip) {
  const auto m = test::random_dense<float>(37, 53, 6);
  const auto tt = transpose(transpose(m));
  EXPECT_TRUE(allclose(tt, m, 0.0, 0.0));
}

TEST(Ops, TransposeElementMapping) {
  DenseMatrix<float> m(2, 3, {1, 2, 3, 4, 5, 6});
  const auto t = transpose(m);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t(0, 1), 4.0f);
  EXPECT_EQ(t(2, 0), 3.0f);
}

TEST(Ops, AllcloseRespectsRtol) {
  DenseMatrix<float> a(1, 1, {100.0f});
  DenseMatrix<float> b(1, 1, {100.001f});
  EXPECT_TRUE(allclose(a, b, 1e-4, 0.0));
  EXPECT_FALSE(allclose(a, b, 1e-7, 0.0));
}

TEST(Ops, MaxAbsDiffAndNorm) {
  DenseMatrix<float> a(1, 3, {3, 0, 4});
  DenseMatrix<float> b(1, 3, {3, 2, 4});
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 2.0);
  EXPECT_DOUBLE_EQ(frobenius_norm(a), 5.0);
}

}  // namespace
}  // namespace cbm
