// Compressed-adjacency cache — the serving layer's reason to exist.
//
// Compression is the expensive step of the CBM pipeline (distance graph +
// MCA solve), and production inference sees the same graphs over and over;
// the cache makes every request after the first pay only the multiply. It
// is an LRU over GraphKey with a byte budget, an optional on-disk
// persistence tier (serialize.hpp — entries survive process restarts), and
// per-entry memoised execution plans so a cached graph skips re-planning as
// well as recompression.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>

#include "cbm/cbm_matrix.hpp"
#include "serve/fingerprint.hpp"

namespace cbm::serve {

/// One cached compressed adjacency.
template <typename T>
class CacheEntry {
 public:
  CacheEntry(GraphKey key, CbmMatrix<T> cbm)
      : key_(key), cbm_(std::move(cbm)), bytes_(cbm_.bytes()) {}

  [[nodiscard]] const GraphKey& key() const { return key_; }
  [[nodiscard]] const CbmMatrix<T>& cbm() const { return cbm_; }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }

  /// The resolved MultiplySchedule for operands of width `bcols`, memoised
  /// per entry: the first request of a given width pays plan resolution
  /// (tuning-cache lookup / probe / analytic policy via `resolve`), every
  /// later one reuses the decision — cached graphs skip re-planning exactly
  /// as they skip recompression. Thread-safe.
  ///
  /// Memoisation is epoch-guarded: a plan was resolved against a specific
  /// delta structure, and incremental mutation (cbm/mutate.hpp) changes
  /// that structure without changing the entry's identity. Every call
  /// compares the matrix's mutation_epoch() with the epoch the memo was
  /// built at and drops stale plans wholesale, so a mutated entry re-plans
  /// on its next request instead of running a plan tuned for a shape that
  /// no longer exists.
  MultiplySchedule plan_for(
      index_t bcols,
      const std::function<MultiplySchedule(const CbmMatrix<T>&)>& resolve) {
    const std::lock_guard<std::mutex> lock(plan_mutex_);
    const std::uint64_t epoch = cbm_.mutation_epoch();
    if (epoch != plans_epoch_) {
      plans_.clear();
      plans_epoch_ = epoch;
    }
    const auto it = plans_.find(bcols);
    if (it != plans_.end()) return it->second;
    const MultiplySchedule plan = resolve(cbm_);
    plans_.emplace(bcols, plan);
    return plan;
  }

  /// Number of widths with a memoised plan (tests / stats). Counts only
  /// plans still valid for the current mutation epoch.
  [[nodiscard]] std::size_t plans_resolved() {
    const std::lock_guard<std::mutex> lock(plan_mutex_);
    if (cbm_.mutation_epoch() != plans_epoch_) return 0;
    return plans_.size();
  }

  /// Applies an in-place mutation to the cached matrix (`fn` receives the
  /// matrix mutably and its return value is passed through — typically a
  /// MutationResult from insert_edges/remove_edges) and refreshes the
  /// entry's byte accounting. The epoch guard in plan_for() then retires
  /// every memoised plan automatically.
  ///
  /// Same thread-safety contract as CbmMatrix mutation: NOT safe against
  /// concurrent multiplies on this entry's matrix. Cache-resident entries
  /// should be mutated through AdjacencyCache::mutate_or_invalidate, which
  /// clones instead (in-flight multiplies keep the old snapshot) and keeps
  /// the cache's byte budget accounting coherent.
  template <typename Fn>
  auto mutate_cbm(Fn&& fn) {
    const std::lock_guard<std::mutex> lock(plan_mutex_);
    auto result = std::forward<Fn>(fn)(cbm_);
    bytes_ = cbm_.bytes();
    return result;
  }

 private:
  GraphKey key_;
  CbmMatrix<T> cbm_;
  std::size_t bytes_ = 0;
  std::mutex plan_mutex_;
  std::unordered_map<index_t, MultiplySchedule> plans_;
  /// mutation_epoch() the memoised plans were resolved at.
  std::uint64_t plans_epoch_ = 0;
};

/// LRU cache of compressed adjacencies with a byte budget and an optional
/// disk tier. Thread-safe; entries are handed out as shared_ptr so an
/// eviction never invalidates a multiply in flight.
///
/// Byte accounting covers the CBM payloads (CbmMatrix::bytes()). Inserting
/// over budget evicts least-recently-used entries until the new entry fits;
/// a single entry larger than the whole budget is still admitted (a cache
/// that cannot hold its only working graph would be useless) and simply
/// evicts everything else.
///
/// When `persist_dir` is set, inserts write the entry through to
/// `<dir>/<fingerprint>-<kind>-<alpha>.cbmf` and lookups that miss in
/// memory try that file before reporting a miss — the persistence tier
/// outlives the process. Disk entries are verified against the key's shape
/// on load; unreadable or mismatched files degrade to a miss (and the
/// cbm.serve.cache.disk_errors counter), never to an exception.
template <typename T>
class AdjacencyCache {
 public:
  using EntryPtr = std::shared_ptr<CacheEntry<T>>;

  struct Stats {
    std::uint64_t hits = 0;        ///< in-memory lookup hits
    std::uint64_t misses = 0;      ///< full misses (caller must compress)
    std::uint64_t evictions = 0;   ///< entries dropped for the byte budget
    std::uint64_t disk_hits = 0;   ///< misses satisfied by the disk tier
    std::uint64_t disk_errors = 0; ///< unreadable/mismatched disk entries
    std::uint64_t mutations = 0;       ///< mutate_or_invalidate patches
    std::uint64_t recompressions = 0;  ///< stale entries fully recompressed
    std::uint64_t invalidations = 0;   ///< entries dropped by invalidate()
    std::size_t entries = 0;       ///< current resident entry count
    std::size_t bytes = 0;         ///< current resident payload bytes
  };

  /// What mutate_or_invalidate did for one edge batch.
  struct MutationOutcome {
    enum class Action {
      kMiss,          ///< `key` not cached — nothing to maintain
      kPatched,       ///< incremental patch applied (cbm/mutate.hpp)
      kRecompressed,  ///< staleness crossed the threshold: fresh compress()
      kInvalidated,   ///< non-mutable kind — entry dropped, caller rebuilds
    };
    Action action = Action::kMiss;
    /// The post-mutation resident entry (kPatched/kRecompressed), else null.
    EntryPtr entry;
    /// Cache key of the mutated graph — the canonical make_graph_key of its
    /// post-mutation binary pattern, so a later request arriving with the
    /// mutated adjacency CSR hits this entry directly.
    GraphKey new_key;
    /// Edge accounting from the underlying CbmMatrix::mutate_edges.
    MutationResult mutation;
    /// staleness() of the resident entry after the call (0 after a
    /// recompression — the baseline resets).
    double staleness = 0.0;
  };

  explicit AdjacencyCache(std::size_t byte_budget,
                          std::string persist_dir = "");

  /// Finds the entry for `key`, consulting the disk tier on an in-memory
  /// miss. Returns nullptr on a full miss. Hits move the entry to the MRU
  /// position.
  EntryPtr lookup(const GraphKey& key);

  /// Inserts a freshly compressed adjacency (write-through to the disk tier
  /// when configured), evicting LRU entries as needed. If the key is
  /// already resident the existing entry is returned instead (first writer
  /// wins — concurrent compressions of the same graph converge).
  EntryPtr insert(const GraphKey& key, CbmMatrix<T> cbm);

  /// Applies an edge batch to the cached graph `key` without taking the
  /// old entry away from in-flight multiplies: the resident matrix is
  /// cloned, the clone patched incrementally (CbmMatrix::mutate_edges),
  /// and the result re-inserted under the mutated graph's canonical key;
  /// the pre-mutation entry is then invalidated. When the patched clone's
  /// staleness() reaches `stale_threshold` the clone is thrown away and the
  /// mutated pattern fully recompressed instead (the "background
  /// recompression" the staleness gauge exists to trigger — this call never
  /// sits on the request path). Non-mutable kinds (kColumnScaled,
  /// kTwoSided) cannot be patched; their entry is invalidated so the next
  /// request recompresses.
  ///
  /// `stale_threshold` < 0 reads RuntimeConfig::from_env().stale_threshold
  /// (the CBM_STALE_THRESHOLD knob). A key with no resident or disk entry
  /// returns Action::kMiss.
  MutationOutcome mutate_or_invalidate(const GraphKey& key,
                                       std::span<const EdgeUpdate> inserts,
                                       std::span<const EdgeUpdate> removes,
                                       double stale_threshold = -1.0);

  /// Drops the in-memory entry for `key` (the disk tier is left alone — its
  /// file still describes the graph that key names). Returns whether an
  /// entry was resident. In-flight multiplies keep their shared_ptr.
  bool invalidate(const GraphKey& key);

  /// Drops every in-memory entry (the disk tier is left alone).
  void clear();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t byte_budget() const { return byte_budget_; }

  /// Disk-tier file for a key (empty when persistence is off) — exposed for
  /// tests and cbmprof-style tooling.
  [[nodiscard]] std::string entry_path(const GraphKey& key) const;

 private:
  void evict_over_budget_locked();

  const std::size_t byte_budget_;
  const std::string persist_dir_;

  mutable std::mutex mutex_;
  /// MRU at the front. The list owns the entry handles; the map indexes it.
  std::list<EntryPtr> lru_;
  std::unordered_map<GraphKey, typename std::list<EntryPtr>::iterator,
                     GraphKeyHash>
      index_;
  std::size_t bytes_ = 0;
  Stats stats_;
};

extern template class CacheEntry<float>;
extern template class CacheEntry<double>;
extern template class AdjacencyCache<float>;
extern template class AdjacencyCache<double>;

}  // namespace cbm::serve
