// Unit and property tests for the sparse-dense multiplication kernels (the
// baseline of every paper comparison).
#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "dense/gemm.hpp"
#include "dense/ops.hpp"
#include "sparse/spmm.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

/// Oracle: densify and run the reference GEMM.
DenseMatrix<float> dense_product(const CsrMatrix<float>& a,
                                 const DenseMatrix<float>& b) {
  const auto ad = test::to_dense(a);
  DenseMatrix<float> c(a.rows(), b.cols());
  gemm_naive(ad, b, c);
  return c;
}

struct SpmmCase {
  index_t n;
  double density;
  index_t cols;
  SpmmSchedule schedule;
};

class SpmmParam : public ::testing::TestWithParam<SpmmCase> {};

TEST_P(SpmmParam, MatchesDenseOracle) {
  const auto p = GetParam();
  const auto a = test::random_binary(p.n, p.density, 42 + p.n);
  const auto b = test::random_dense<float>(p.n, p.cols, 7);
  DenseMatrix<float> c(p.n, p.cols);
  csr_spmm(a, b, c, p.schedule);
  EXPECT_TRUE(allclose(c, dense_product(a, b), 1e-4, 1e-5));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SpmmParam,
    ::testing::Values(
        SpmmCase{1, 1.0, 1, SpmmSchedule::kRowStatic},
        SpmmCase{16, 0.3, 5, SpmmSchedule::kRowStatic},
        SpmmCase{16, 0.3, 5, SpmmSchedule::kRowDynamic},
        SpmmCase{16, 0.3, 5, SpmmSchedule::kNnzBalanced},
        SpmmCase{83, 0.05, 17, SpmmSchedule::kRowStatic},
        SpmmCase{83, 0.05, 17, SpmmSchedule::kRowDynamic},
        SpmmCase{83, 0.05, 17, SpmmSchedule::kNnzBalanced},
        SpmmCase{200, 0.02, 33, SpmmSchedule::kNnzBalanced},
        SpmmCase{64, 0.0, 8, SpmmSchedule::kNnzBalanced}));

TEST(Spmm, WeightedValuesHonoured) {
  CooMatrix<float> coo;
  coo.rows = 2;
  coo.cols = 2;
  coo.push(0, 0, 2.0f);
  coo.push(1, 0, -1.0f);
  coo.push(1, 1, 0.5f);
  const auto a = CsrMatrix<float>::from_coo(coo);
  DenseMatrix<float> b(2, 1, {3.0f, 4.0f});
  DenseMatrix<float> c(2, 1);
  csr_spmm(a, b, c);
  EXPECT_FLOAT_EQ(c(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(c(1, 0), -1.0f);
}

TEST(Spmm, OverwritesPreviousOutput) {
  const auto a = test::random_binary(10, 0.3, 1);
  const auto b = test::random_dense<float>(10, 4, 2);
  DenseMatrix<float> c(10, 4);
  c.fill(99.0f);
  csr_spmm(a, b, c);
  EXPECT_TRUE(allclose(c, dense_product(a, b), 1e-4, 1e-5));
}

TEST(Spmm, SequentialVsParallelIdenticalResult) {
  const auto a = test::random_binary(120, 0.05, 9);
  const auto b = test::random_dense<float>(120, 9, 10);
  DenseMatrix<float> c_seq(120, 9), c_par(120, 9);
  {
    ThreadScope scope(1);
    csr_spmm(a, b, c_seq);
  }
  csr_spmm(a, b, c_par);
  // Same summation order per row -> bitwise equality expected.
  EXPECT_EQ(max_abs_diff(c_seq, c_par), 0.0);
}

TEST(Spmm, ShapeMismatchThrows) {
  const auto a = test::random_binary(4, 0.5, 3);
  DenseMatrix<float> b(5, 2), c(4, 2);
  EXPECT_THROW(csr_spmm(a, b, c), CbmError);
  DenseMatrix<float> b_ok(4, 2), c_bad(4, 3);
  EXPECT_THROW(csr_spmm(a, b_ok, c_bad), CbmError);
}

TEST(Spmv, MatchesSpmmSingleColumn) {
  const auto a = test::random_binary(50, 0.1, 11);
  const auto bvec = test::random_dense<float>(50, 1, 12);
  std::vector<float> x(50), y(50);
  for (index_t i = 0; i < 50; ++i) x[i] = bvec(i, 0);
  csr_spmv(a, std::span<const float>(x), std::span<float>(y));
  DenseMatrix<float> c(50, 1);
  csr_spmm(a, bvec, c);
  for (index_t i = 0; i < 50; ++i) EXPECT_FLOAT_EQ(y[i], c(i, 0));
}

TEST(CooSpmm, MatchesCsr) {
  const auto a = test::random_binary(60, 0.08, 13);
  const auto b = test::random_dense<float>(60, 7, 14);
  DenseMatrix<float> c_coo(60, 7), c_csr(60, 7);
  coo_spmm(a.to_coo(), b, c_coo);
  csr_spmm(a, b, c_csr);
  EXPECT_TRUE(allclose(c_coo, c_csr, 1e-4, 1e-5));
}

TEST(Spmm, FlopsAccounting) {
  const auto a = test::random_binary(30, 0.2, 15);
  EXPECT_EQ(csr_spmm_flops(a, 10),
            2ull * static_cast<std::size_t>(a.nnz()) * 10ull);
}

TEST(SpmmRange, AssemblesFullProduct) {
  const auto a = test::random_binary(90, 0.06, 21);
  const auto b = test::random_dense<float>(90, 37, 22);
  DenseMatrix<float> c_full(90, 37), c_tiled(90, 37);
  csr_spmm(a, b, c_full, SpmmSchedule::kRowStatic);
  // Cover C with an uneven grid of row × column ranges, including width-1
  // and non-multiple-of-block tiles.
  const index_t row_cuts[] = {0, 1, 40, 90};
  const index_t col_cuts[] = {0, 1, 16, 30, 37};
  for (int ri = 0; ri + 1 < 4; ++ri) {
    for (int ci = 0; ci + 1 < 5; ++ci) {
      csr_spmm_range(a, b, c_tiled, row_cuts[ri], row_cuts[ri + 1],
                     col_cuts[ci], col_cuts[ci + 1]);
    }
  }
  // Same per-element summation order -> bitwise equality expected.
  EXPECT_EQ(max_abs_diff(c_tiled, c_full), 0.0);
}

TEST(SpmmRange, EmptyRangesAreNoOps) {
  const auto a = test::random_binary(12, 0.3, 23);
  const auto b = test::random_dense<float>(12, 6, 24);
  DenseMatrix<float> c(12, 6);
  c.fill(5.0f);
  csr_spmm_range(a, b, c, 3, 3, 0, 6);  // empty row range
  csr_spmm_range(a, b, c, 0, 12, 4, 4);  // empty column range
  for (index_t i = 0; i < 12; ++i) {
    for (index_t j = 0; j < 6; ++j) EXPECT_EQ(c(i, j), 5.0f);
  }
}

TEST(SpmmRange, InvalidRangesThrow) {
  const auto a = test::random_binary(8, 0.3, 25);
  const auto b = test::random_dense<float>(8, 4, 26);
  DenseMatrix<float> c(8, 4);
  EXPECT_THROW(csr_spmm_range(a, b, c, 5, 3, 0, 4), CbmError);
  EXPECT_THROW(csr_spmm_range(a, b, c, 0, 9, 0, 4), CbmError);
  EXPECT_THROW(csr_spmm_range(a, b, c, 0, 8, 2, 5), CbmError);
}

TEST(NnzBalancedBounds, CoversRowsMonotonically) {
  const auto a = test::random_binary(100, 0.05, 27);
  const auto bounds = nnz_balanced_bounds(a, 4);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), 100);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LE(bounds[i - 1], bounds[i]);
  }
}

TEST(NnzBalancedBounds, PartsClampedToRows) {
  // More parts than rows used to manufacture empty duplicate ranges; the
  // request is clamped to the row count instead.
  const auto a = test::random_binary(3, 1.0, 28);
  const auto bounds = nnz_balanced_bounds(a, 16);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), 3);
}

TEST(NnzBalancedBounds, NonPositivePartsClampedToOne) {
  const auto a = test::random_binary(10, 0.3, 29);
  for (const int parts : {0, -4}) {
    const auto bounds = nnz_balanced_bounds(a, parts);
    ASSERT_EQ(bounds.size(), 2u);
    EXPECT_EQ(bounds.front(), 0);
    EXPECT_EQ(bounds.back(), 10);
  }
}

TEST(NnzBalancedBounds, EmptyMatrixYieldsSinglePart) {
  const CsrMatrix<float> a(0, 0, {0}, {}, {});
  const auto bounds = nnz_balanced_bounds(a, 8);
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), 0);
}

}  // namespace
}  // namespace cbm
