// Strict environment-knob parsing, shared by every CBM_* integer/double
// knob. The historical per-call-site atoi()/atof() parsing accepted garbage
// silently ("12abc" → 12, "fast" → 0), which for a benchmark harness means
// quietly measuring the wrong configuration. These parsers consume the whole
// string or throw a CbmError naming the offending variable.
#pragma once

#include <optional>
#include <string>

#include "common/types.hpp"

namespace cbm {

/// Integer knob: unset/empty → fallback; non-numeric, trailing garbage, or
/// out-of-range input throws CbmError naming `name`.
int env_int_strict(const char* name, int fallback);

/// Like env_int_strict, but additionally rejects values < 1.
int env_positive_int(const char* name, int fallback);

/// Double knob with the same whole-string contract.
double env_double_strict(const char* name, double fallback);

/// String knob: unset/empty → fallback.
std::string env_string_knob(const char* name, const std::string& fallback);

/// The CBM_TILE_COLS override, validated in one place: nullopt when unset,
/// the (positive) requested width otherwise. Zero, negative, and non-numeric
/// values throw.
std::optional<index_t> env_tile_cols();

/// Hardware performance-counter sampling policy (obs/hw.hpp).
enum class PerfMode {
  kOff,    ///< never open counters; sampling points cost one atomic load
  kOn,     ///< sample; degrade to "unavailable" reports when the kernel or
           ///< container refuses perf_event_open
  kForce,  ///< sample; refusing every counter is an error, not a silent
           ///< absence (use where unattributed numbers must not pass as real)
};

/// Reads CBM_PERF (off | on | force; unset/empty = off). Unknown values
/// throw — a mistyped knob must not silently drop counter attribution.
PerfMode perf_mode_from_env();

/// Stable lower-case name of a PerfMode (telemetry / error messages).
const char* perf_mode_name(PerfMode mode);

/// NUMA placement policy for the partitioned task-graph executor
/// (exec/numa.hpp). Every mode degrades to a no-op on single-node hosts.
enum class NumaMode {
  kOff,         ///< no placement: scratch and tasks go wherever the OS puts
                ///< them (the default — correct everywhere)
  kInterleave,  ///< spread part scratch round-robin across nodes via
                ///< first-touch; execution is not pinned
  kBind,        ///< interleave placement plus pinning each part's tasks to
                ///< its scratch's node for the task's duration
};

/// Reads CBM_NUMA (off | interleave | bind; unset/empty = off). Unknown
/// values throw — a mistyped knob must not silently change placement.
NumaMode numa_mode_from_env();

/// Stable lower-case name of a NumaMode (telemetry / error messages).
const char* numa_mode_name(NumaMode mode);

/// How PartitionedCbmMatrix::multiply executes its parts.
enum class PartExec {
  kSerial,     ///< historical part-at-a-time loop (fork/join per part) —
               ///< kept as the measurable baseline for the task graph
  kTaskGraph,  ///< one task graph of part×column-panel tasks with the row
               ///< scatter fused in: a single parallel region, no inter-part
               ///< barriers (the default)
};

/// Reads CBM_PART_EXEC (serial | taskgraph; unset/empty = taskgraph).
/// Unknown values throw.
PartExec part_exec_from_env();

/// Stable lower-case name of a PartExec (telemetry / error messages).
const char* part_exec_name(PartExec exec);

/// CBM_EXEC_GRAIN: rows per task in the kTaskGraph update schedule's subtree
/// blocks. Unset/empty = 64; zero, negative, and non-numeric values throw.
/// Small values stress dependency edges (the sanitizer jobs set 1–4); large
/// values amortise spawn overhead.
index_t env_exec_grain();

/// The full runtime configuration that historically lived in per-call-site
/// CBM_* environment reads, as one explicitly-constructible value.
///
/// `from_env()` is the single point that reads the CBM_* execution knobs;
/// everything downstream (`MultiplySchedule::from_config`,
/// `tune::tune_mode_from_config`, `PartitionedCbmMatrix`, `cbm::serve`)
/// consumes a RuntimeConfig instead of the process environment, so a
/// programmatic caller — a serving context resolving its configuration once
/// at construction, a test pinning a plan — builds the struct directly and
/// never depends on ambient state.
///
/// Plan-vocabulary fields (multiply_path, spmm_schedule, update_schedule,
/// tune_mode) are carried as strings: their vocabularies belong to the cbm
/// and tune layers, which `common` cannot depend on. They are validated by
/// those layers' parsers at use (unknown values still throw, exactly as the
/// historical from_env readers did); the integer and common-enum knobs are
/// validated eagerly here.
struct RuntimeConfig {
  /// CBM_MULTIPLY_PATH (two_stage | fused); nullopt = engine default.
  std::optional<std::string> multiply_path;
  /// CBM_SPMM_SCHEDULE (row_static | row_dynamic | nnz_balanced).
  std::optional<std::string> spmm_schedule;
  /// CBM_UPDATE_SCHEDULE (sequential | branch_dynamic | branch_static |
  /// column_split | task_graph).
  std::optional<std::string> update_schedule;
  /// CBM_TILE_COLS; nullopt = auto (cache geometry).
  std::optional<index_t> tile_cols;
  /// CBM_TUNE (off | on | force) — parsed by tune::tune_mode_from_config.
  std::string tune_mode = "off";
  /// CBM_TUNE_CACHE; nullopt = the tuner's default path, "" = no persistence.
  std::optional<std::string> tune_cache;
  /// CBM_PART_EXEC — partitioned executor choice.
  PartExec part_exec = PartExec::kTaskGraph;
  /// CBM_NUMA — partitioned scratch/task placement.
  NumaMode numa = NumaMode::kOff;
  /// CBM_EXEC_GRAIN — task-graph update-schedule block rows.
  index_t exec_grain = 64;
  /// CBM_PERF — hardware-counter sampling policy.
  PerfMode perf = PerfMode::kOff;
  /// CBM_STALE_THRESHOLD — CbmMatrix::staleness() level at which holders of
  /// a mutated matrix (serve's AdjacencyCache, the streaming bench) schedule
  /// a full background recompression. In [0, 1]; 1 disables the trigger.
  double stale_threshold = 0.5;

  /// Reads every knob above from the environment, with the same strict
  /// validation the historical per-site readers applied (garbage throws).
  /// This is the one supported path from process environment to config.
  static RuntimeConfig from_env();
};

}  // namespace cbm
