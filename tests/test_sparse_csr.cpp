// Unit tests for the CSR/COO containers and conversions.
#include <gtest/gtest.h>

#include "sparse/csr.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

CsrMatrix<float> small_matrix() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 3 4 0 ]
  CooMatrix<float> coo;
  coo.rows = 3;
  coo.cols = 3;
  coo.push(2, 1, 4.0f);
  coo.push(0, 2, 2.0f);
  coo.push(0, 0, 1.0f);
  coo.push(2, 0, 3.0f);
  return CsrMatrix<float>::from_coo(coo);
}

TEST(Coo, PushBoundsChecked) {
  CooMatrix<float> coo;
  coo.rows = 2;
  coo.cols = 2;
  EXPECT_THROW(coo.push(2, 0, 1.0f), CbmError);
  EXPECT_THROW(coo.push(0, -1, 1.0f), CbmError);
}

TEST(Csr, FromCooSortsRows) {
  const auto m = small_matrix();
  EXPECT_EQ(m.nnz(), 4);
  EXPECT_TRUE(m.has_sorted_unique_rows());
  const auto r0 = m.row_indices(0);
  ASSERT_EQ(r0.size(), 2u);
  EXPECT_EQ(r0[0], 0);
  EXPECT_EQ(r0[1], 2);
  EXPECT_EQ(m.row_nnz(1), 0);
}

TEST(Csr, FromCooAccumulatesDuplicates) {
  CooMatrix<float> coo;
  coo.rows = 2;
  coo.cols = 2;
  coo.push(0, 1, 1.0f);
  coo.push(0, 1, 2.5f);
  const auto m = CsrMatrix<float>::from_coo(coo);
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_FLOAT_EQ(m.at(0, 1), 3.5f);
}

TEST(Csr, AtReturnsZeroForMissing) {
  const auto m = small_matrix();
  EXPECT_FLOAT_EQ(m.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(m.at(1, 1), 0.0f);
  EXPECT_FLOAT_EQ(m.at(2, 1), 4.0f);
}

TEST(Csr, TransposeIsExact) {
  const auto m = small_matrix();
  const auto t = m.transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.nnz(), m.nnz());
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 3; ++j) EXPECT_EQ(t.at(j, i), m.at(i, j));
  }
  EXPECT_TRUE(t.has_sorted_unique_rows());
}

TEST(Csr, TransposeRoundTripRandom) {
  const auto m = test::random_binary(40, 0.1, 17);
  const auto tt = m.transpose().transpose();
  EXPECT_EQ(tt, m);
}

TEST(Csr, ToCooRoundTrip) {
  const auto m = small_matrix();
  const auto back = CsrMatrix<float>::from_coo(m.to_coo());
  EXPECT_EQ(back, m);
}

TEST(Csr, IdentityStructure) {
  const auto eye = CsrMatrix<float>::identity(4);
  EXPECT_EQ(eye.nnz(), 4);
  for (index_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(eye.at(i, i), 1.0f);
    EXPECT_EQ(eye.row_nnz(i), 1);
  }
  EXPECT_TRUE(eye.is_binary());
}

TEST(Csr, IsBinaryDetectsNonUnitValues) {
  EXPECT_FALSE(small_matrix().is_binary());
  EXPECT_TRUE(test::random_binary(20, 0.2, 3).is_binary());
}

TEST(Csr, ValidationRejectsBadStructure) {
  // indptr not starting at zero.
  EXPECT_THROW(CsrMatrix<float>(1, 1, {1, 1}, {}, {}), CbmError);
  // indptr length mismatch.
  EXPECT_THROW(CsrMatrix<float>(2, 2, {0, 1}, {0}, {1.0f}), CbmError);
  // column out of bounds.
  EXPECT_THROW(CsrMatrix<float>(1, 2, {0, 1}, {5}, {1.0f}), CbmError);
  // nnz mismatch between indptr and arrays.
  EXPECT_THROW(CsrMatrix<float>(1, 2, {0, 2}, {0}, {1.0f}), CbmError);
  // decreasing indptr.
  EXPECT_THROW(CsrMatrix<float>(2, 2, {0, 1, 0}, {0}, {1.0f}), CbmError);
}

TEST(Csr, BytesCountsAllArrays) {
  const auto m = small_matrix();
  const std::size_t expect = 4 * sizeof(offset_t) + 4 * sizeof(index_t) +
                             4 * sizeof(float);
  EXPECT_EQ(m.bytes(), expect);
}

TEST(Csr, EmptyMatrix) {
  CooMatrix<float> coo;
  coo.rows = 3;
  coo.cols = 3;
  const auto m = CsrMatrix<float>::from_coo(coo);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_EQ(m.row_nnz(1), 0);
  const auto t = m.transpose();
  EXPECT_EQ(t.nnz(), 0);
}

TEST(Csr, SortedUniqueDetection) {
  // Build a technically valid CSR with unsorted row content via raw arrays.
  CsrMatrix<float> unsorted(1, 3, {0, 2}, {2, 0}, {1.0f, 1.0f});
  EXPECT_FALSE(unsorted.has_sorted_unique_rows());
}

}  // namespace
}  // namespace cbm
