// Internal: ISA-generic kernel bodies for the explicit SIMD backends.
//
// Each backend TU (vectorops_avx2.cpp, vectorops_avx512.cpp) is compiled
// with its own -m flags, defines a Traits type wrapping the ISA's
// load/store/fma primitives, and instantiates these templates. The bodies
// never name an intrinsic directly, so the ISA-specific surface stays in
// one Traits struct per backend.
//
// Numerical contract: vectorisation is across vector lanes (columns) only —
// every output element accumulates its terms in the same order as the
// portable scalar bodies in vectorops.hpp (dot is the one documented
// exception: its lane-wise partial sums reassociate the reduction).
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace cbm::simd::backend {

// Traits requirements (V = vector register, M = lane mask):
//   kLanes, kHasMasks
//   V load(const T*), void store(T*, V), V set1(T), V zero()
//   V add(V,V), V mul(V,V), V fmadd(V,V,V)   // fmadd(a,b,c) = a*b + c
//   T reduce_add(V)
//   void prefetch(const void*)
//   with kHasMasks: M tail_mask(size_t rem), V maskz_load(M, const T*),
//                   void mask_store(T*, M, V)

template <typename T, typename Tr>
void add_k(const T* x, T* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + Tr::kLanes <= n; i += Tr::kLanes) {
    Tr::store(y + i, Tr::add(Tr::load(y + i), Tr::load(x + i)));
  }
  if (i < n) {
    if constexpr (Tr::kHasMasks) {
      const auto m = Tr::tail_mask(n - i);
      Tr::mask_store(y + i, m,
                     Tr::add(Tr::maskz_load(m, y + i), Tr::maskz_load(m, x + i)));
    } else {
      for (; i < n; ++i) y[i] += x[i];
    }
  }
}

template <typename T, typename Tr>
void axpy_k(T a, const T* x, T* y, std::size_t n) {
  const auto va = Tr::set1(a);
  std::size_t i = 0;
  for (; i + Tr::kLanes <= n; i += Tr::kLanes) {
    Tr::store(y + i, Tr::fmadd(va, Tr::load(x + i), Tr::load(y + i)));
  }
  if (i < n) {
    if constexpr (Tr::kHasMasks) {
      const auto m = Tr::tail_mask(n - i);
      Tr::mask_store(
          y + i, m,
          Tr::fmadd(va, Tr::maskz_load(m, x + i), Tr::maskz_load(m, y + i)));
    } else {
      for (; i < n; ++i) y[i] += a * x[i];
    }
  }
}

template <typename T, typename Tr>
void scale_k(T a, T* y, std::size_t n) {
  const auto va = Tr::set1(a);
  std::size_t i = 0;
  for (; i + Tr::kLanes <= n; i += Tr::kLanes) {
    Tr::store(y + i, Tr::mul(va, Tr::load(y + i)));
  }
  if (i < n) {
    if constexpr (Tr::kHasMasks) {
      const auto m = Tr::tail_mask(n - i);
      Tr::mask_store(y + i, m, Tr::mul(va, Tr::maskz_load(m, y + i)));
    } else {
      for (; i < n; ++i) y[i] *= a;
    }
  }
}

template <typename T, typename Tr>
void fused_scale_add_k(T a, T b, const T* x, T* y, std::size_t n) {
  const auto va = Tr::set1(a);
  const auto vb = Tr::set1(b);
  std::size_t i = 0;
  for (; i + Tr::kLanes <= n; i += Tr::kLanes) {
    Tr::store(y + i,
              Tr::mul(va, Tr::fmadd(vb, Tr::load(x + i), Tr::load(y + i))));
  }
  if (i < n) {
    if constexpr (Tr::kHasMasks) {
      const auto m = Tr::tail_mask(n - i);
      Tr::mask_store(y + i, m,
                     Tr::mul(va, Tr::fmadd(vb, Tr::maskz_load(m, x + i),
                                           Tr::maskz_load(m, y + i))));
    } else {
      for (; i < n; ++i) y[i] = a * (b * x[i] + y[i]);
    }
  }
}

template <typename T, typename Tr>
T dot_k(const T* x, const T* y, std::size_t n) {
  auto acc = Tr::zero();
  std::size_t i = 0;
  for (; i + Tr::kLanes <= n; i += Tr::kLanes) {
    acc = Tr::fmadd(Tr::load(x + i), Tr::load(y + i), acc);
  }
  T tail{0};
  if (i < n) {
    if constexpr (Tr::kHasMasks) {
      const auto m = Tr::tail_mask(n - i);
      acc = Tr::fmadd(Tr::maskz_load(m, x + i), Tr::maskz_load(m, y + i), acc);
    } else {
      for (; i < n; ++i) tail += x[i] * y[i];
    }
  }
  return Tr::reduce_add(acc) + tail;
}

/// Register-blocked SpMM row kernel (see KernelTable::spmm_row). Column
/// panels of up to eight vectors stay in registers across the whole nonzero
/// sweep: each element of crow is written exactly once, while B rows are
/// streamed with a software prefetch one nonzero ahead. The widest panel
/// matters most: every extra pass over [k0,k1) re-reads all of the row's B
/// operand rows, so at the common p = 128 one AVX-512 float panel
/// (8 × 16 lanes) covers the row in a single sweep.
///
/// kUnitScales specializes the common unscaled kinds (seed_scale == 1 and
/// av_scale == 1): the seed loads straight into the accumulators and the
/// per-nonzero coefficient is values[k] alone — on short delta rows the
/// skipped multiplies are a measurable share of the row's work. Callers
/// must only select it when both scales are exactly 1.
template <typename T, typename Tr, bool kUnitScales = false>
void spmm_row_k(const T* b, std::size_t ldb, const index_t* indices,
                const T* values, offset_t k0, offset_t k1, T* crow,
                index_t width, const T* seed_row, T seed_scale, T av_scale) {
  using V = typename Tr::V;
  const auto w = static_cast<std::size_t>(width);
  constexpr std::size_t kL = Tr::kLanes;
  std::size_t j = 0;
  // 8-vector register panels. Eight accumulators plus the splatted
  // coefficient fit the 16-register AVX2 file without spilling; AVX-512's
  // 32 registers have room to spare.
  for (; j + 8 * kL <= w; j += 8 * kL) {
    V a0, a1, a2, a3, a4, a5, a6, a7;
    if (seed_row != nullptr) {
      if constexpr (kUnitScales) {
        a0 = Tr::load(seed_row + j + 0 * kL);
        a1 = Tr::load(seed_row + j + 1 * kL);
        a2 = Tr::load(seed_row + j + 2 * kL);
        a3 = Tr::load(seed_row + j + 3 * kL);
        a4 = Tr::load(seed_row + j + 4 * kL);
        a5 = Tr::load(seed_row + j + 5 * kL);
        a6 = Tr::load(seed_row + j + 6 * kL);
        a7 = Tr::load(seed_row + j + 7 * kL);
      } else {
        const V s = Tr::set1(seed_scale);
        a0 = Tr::mul(s, Tr::load(seed_row + j + 0 * kL));
        a1 = Tr::mul(s, Tr::load(seed_row + j + 1 * kL));
        a2 = Tr::mul(s, Tr::load(seed_row + j + 2 * kL));
        a3 = Tr::mul(s, Tr::load(seed_row + j + 3 * kL));
        a4 = Tr::mul(s, Tr::load(seed_row + j + 4 * kL));
        a5 = Tr::mul(s, Tr::load(seed_row + j + 5 * kL));
        a6 = Tr::mul(s, Tr::load(seed_row + j + 6 * kL));
        a7 = Tr::mul(s, Tr::load(seed_row + j + 7 * kL));
      }
    } else {
      a0 = a1 = a2 = a3 = a4 = a5 = a6 = a7 = Tr::zero();
    }
    for (offset_t k = k0; k < k1; ++k) {
      const T* brow = b + static_cast<std::size_t>(indices[k]) * ldb + j;
      if (k + 1 < k1) {
        Tr::prefetch(b + static_cast<std::size_t>(indices[k + 1]) * ldb + j);
      }
      const V av = Tr::set1(kUnitScales ? values[k] : av_scale * values[k]);
      a0 = Tr::fmadd(av, Tr::load(brow + 0 * kL), a0);
      a1 = Tr::fmadd(av, Tr::load(brow + 1 * kL), a1);
      a2 = Tr::fmadd(av, Tr::load(brow + 2 * kL), a2);
      a3 = Tr::fmadd(av, Tr::load(brow + 3 * kL), a3);
      a4 = Tr::fmadd(av, Tr::load(brow + 4 * kL), a4);
      a5 = Tr::fmadd(av, Tr::load(brow + 5 * kL), a5);
      a6 = Tr::fmadd(av, Tr::load(brow + 6 * kL), a6);
      a7 = Tr::fmadd(av, Tr::load(brow + 7 * kL), a7);
    }
    Tr::store(crow + j + 0 * kL, a0);
    Tr::store(crow + j + 1 * kL, a1);
    Tr::store(crow + j + 2 * kL, a2);
    Tr::store(crow + j + 3 * kL, a3);
    Tr::store(crow + j + 4 * kL, a4);
    Tr::store(crow + j + 5 * kL, a5);
    Tr::store(crow + j + 6 * kL, a6);
    Tr::store(crow + j + 7 * kL, a7);
  }
  // 4-vector register panels.
  for (; j + 4 * kL <= w; j += 4 * kL) {
    V a0, a1, a2, a3;
    if (seed_row != nullptr) {
      if constexpr (kUnitScales) {
        a0 = Tr::load(seed_row + j + 0 * kL);
        a1 = Tr::load(seed_row + j + 1 * kL);
        a2 = Tr::load(seed_row + j + 2 * kL);
        a3 = Tr::load(seed_row + j + 3 * kL);
      } else {
        const V s = Tr::set1(seed_scale);
        a0 = Tr::mul(s, Tr::load(seed_row + j + 0 * kL));
        a1 = Tr::mul(s, Tr::load(seed_row + j + 1 * kL));
        a2 = Tr::mul(s, Tr::load(seed_row + j + 2 * kL));
        a3 = Tr::mul(s, Tr::load(seed_row + j + 3 * kL));
      }
    } else {
      a0 = a1 = a2 = a3 = Tr::zero();
    }
    for (offset_t k = k0; k < k1; ++k) {
      const T* brow = b + static_cast<std::size_t>(indices[k]) * ldb + j;
      if (k + 1 < k1) {
        Tr::prefetch(b + static_cast<std::size_t>(indices[k + 1]) * ldb + j);
      }
      const V av = Tr::set1(kUnitScales ? values[k] : av_scale * values[k]);
      a0 = Tr::fmadd(av, Tr::load(brow + 0 * kL), a0);
      a1 = Tr::fmadd(av, Tr::load(brow + 1 * kL), a1);
      a2 = Tr::fmadd(av, Tr::load(brow + 2 * kL), a2);
      a3 = Tr::fmadd(av, Tr::load(brow + 3 * kL), a3);
    }
    Tr::store(crow + j + 0 * kL, a0);
    Tr::store(crow + j + 1 * kL, a1);
    Tr::store(crow + j + 2 * kL, a2);
    Tr::store(crow + j + 3 * kL, a3);
  }
  // Single-vector panels.
  for (; j + kL <= w; j += kL) {
    V acc = seed_row != nullptr
                ? (kUnitScales
                       ? Tr::load(seed_row + j)
                       : Tr::mul(Tr::set1(seed_scale), Tr::load(seed_row + j)))
                : Tr::zero();
    for (offset_t k = k0; k < k1; ++k) {
      const V av = Tr::set1(kUnitScales ? values[k] : av_scale * values[k]);
      acc = Tr::fmadd(
          av, Tr::load(b + static_cast<std::size_t>(indices[k]) * ldb + j),
          acc);
    }
    Tr::store(crow + j, acc);
  }
  if (j >= w) return;
  // Tail narrower than one vector.
  if constexpr (Tr::kHasMasks) {
    const auto m = Tr::tail_mask(w - j);
    V acc = seed_row != nullptr
                ? (kUnitScales ? Tr::maskz_load(m, seed_row + j)
                               : Tr::mul(Tr::set1(seed_scale),
                                         Tr::maskz_load(m, seed_row + j)))
                : Tr::zero();
    for (offset_t k = k0; k < k1; ++k) {
      const V av = Tr::set1(kUnitScales ? values[k] : av_scale * values[k]);
      acc = Tr::fmadd(
          av,
          Tr::maskz_load(m, b + static_cast<std::size_t>(indices[k]) * ldb + j),
          acc);
    }
    Tr::mask_store(crow + j, m, acc);
  } else {
    // Stack accumulator: crow is still written exactly once per element.
    T acc[kL];
    const std::size_t rem = w - j;
    for (std::size_t jj = 0; jj < rem; ++jj) {
      acc[jj] = seed_row != nullptr
                    ? (kUnitScales ? seed_row[j + jj]
                                   : seed_scale * seed_row[j + jj])
                    : T{0};
    }
    for (offset_t k = k0; k < k1; ++k) {
      const T av = kUnitScales ? values[k] : av_scale * values[k];
      const T* brow = b + static_cast<std::size_t>(indices[k]) * ldb + j;
      for (std::size_t jj = 0; jj < rem; ++jj) acc[jj] += av * brow[jj];
    }
    for (std::size_t jj = 0; jj < rem; ++jj) crow[j + jj] = acc[jj];
  }
}

/// Builds a kernel table from one Traits instantiation.
/// Batched spmm_row over a precomputed schedule (see KernelTable::fused_rows).
/// Living in the same translation unit as spmm_row_k, the per-row call
/// inlines: the compiler hoists b/ldb/width across the whole tile and the
/// fused engine pays one indirect call per tile instead of one per row.
template <typename T, typename Tr>
void fused_rows_k(const T* b, std::size_t ldb, const index_t* indices,
                  const T* values, const offset_t* indptr,
                  const index_t* order, const index_t* parents,
                  const T* seed_scales, const T* av_scales,
                  std::size_t nitems, T* ctile, std::size_t ldc,
                  index_t width) {
  for (std::size_t i = 0; i < nitems; ++i) {
    const index_t x = order[i];
    // Pull the next item's parent row toward the core while this product
    // runs — parent rows are scattered across C, the one access pattern the
    // hardware prefetcher cannot predict.
    if (i + 1 < nitems && parents[i + 1] >= 0) {
      Tr::prefetch(ctile + static_cast<std::size_t>(parents[i + 1]) * ldc);
    }
    const index_t par = parents[i];
    const T* seed =
        par >= 0 ? ctile + static_cast<std::size_t>(par) * ldc : nullptr;
    // The unscaled kinds carry unit scales on every row, so this branch is
    // constant across the whole schedule and predicts perfectly; the
    // specialized instantiation drops the Eq. 6 multiplies entirely.
    if (av_scales[i] == T{1} && (seed == nullptr || seed_scales[i] == T{1})) {
      spmm_row_k<T, Tr, /*kUnitScales=*/true>(
          b, ldb, indices, values, indptr[x], indptr[x + 1],
          ctile + static_cast<std::size_t>(x) * ldc, width, seed, T{1}, T{1});
    } else {
      spmm_row_k<T, Tr>(b, ldb, indices, values, indptr[x], indptr[x + 1],
                        ctile + static_cast<std::size_t>(x) * ldc, width, seed,
                        seed_scales[i], av_scales[i]);
    }
  }
}

template <typename T, typename Tr, template <typename> class Table>
constexpr Table<T> make_table() {
  Table<T> t{};
  t.add = &add_k<T, Tr>;
  t.axpy = &axpy_k<T, Tr>;
  t.scale = &scale_k<T, Tr>;
  t.fused_scale_add = &fused_scale_add_k<T, Tr>;
  t.dot = &dot_k<T, Tr>;
  t.spmm_row = &spmm_row_k<T, Tr>;
  t.fused_rows = &fused_rows_k<T, Tr>;
  return t;
}

}  // namespace cbm::simd::backend
