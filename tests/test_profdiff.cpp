// Tests for cbm::profdiff — the cbmprof diff engine behind the CI perf
// gate. Reports are synthesised inline so every verdict path is exercised
// deterministically, and diff documents are re-parsed with microjson to keep
// the cbmprof-diff-v1 output well-formed.
#include <gtest/gtest.h>

#include <string>

#include "bench_util/profdiff.hpp"
#include "common/error.hpp"
#include "tune/microjson.hpp"

namespace cbm {
namespace {

/// One measurement entry; value is used for min/mean/median alike.
std::string measurement(const std::string& name, double value,
                        const std::string& labels_json = "") {
  std::string m = "{\"name\": \"" + name + "\"";
  if (!labels_json.empty()) m += ", \"labels\": " + labels_json;
  const std::string v = std::to_string(value);
  m += ", \"count\": 3, \"mean\": " + v + ", \"stddev\": 0.0, \"min\": " + v +
       ", \"max\": " + v + ", \"median\": " + v + "}";
  return m;
}

std::string report_json(const std::string& measurements,
                        const std::string& schema = "cbm-bench-v1") {
  return "{\"schema\": \"" + schema +
         "\", \"bench\": \"synthetic\", \"measurements\": [" + measurements +
         "]}";
}

TEST(ProfDiff, RejectsSchemaMismatchAndGarbage) {
  EXPECT_THROW(profdiff::parse_report("not json"), CbmError);
  EXPECT_THROW(profdiff::parse_report("{\"bench\": \"x\"}"), CbmError);
  EXPECT_THROW(
      profdiff::parse_report(report_json(measurement("a", 1.0), "cbm-bench-v2")),
      CbmError);
  EXPECT_THROW(profdiff::parse_report("{\"schema\": \"cbm-bench-v1\"}"),
               CbmError);
}

TEST(ProfDiff, IdenticalReportsPass) {
  const auto base = profdiff::parse_report(report_json(
      measurement("csr_seconds", 0.5) + "," + measurement("cbm_seconds", 0.2)));
  const auto result = profdiff::diff(base, base, {});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.compared, 2);
  EXPECT_EQ(result.regressions, 0);
  EXPECT_EQ(result.improvements, 0);
  for (const auto& e : result.entries) {
    EXPECT_EQ(e.verdict, profdiff::Verdict::kPass);
    EXPECT_DOUBLE_EQ(e.ratio, 1.0);
  }
}

TEST(ProfDiff, TimeRegressionBeyondToleranceFails) {
  const auto base =
      profdiff::parse_report(report_json(measurement("cbm_seconds", 0.100)));
  const auto current =
      profdiff::parse_report(report_json(measurement("cbm_seconds", 0.115)));
  profdiff::DiffOptions options;
  options.tolerance = 0.10;
  const auto result = profdiff::diff(base, current, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.regressions, 1);
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].verdict, profdiff::Verdict::kRegression);
  EXPECT_NEAR(result.entries[0].ratio, 1.15, 1e-9);

  // The same 15% move downward is an improvement for a time series.
  const auto inverse = profdiff::diff(current, base, options);
  EXPECT_TRUE(inverse.ok());
  EXPECT_EQ(inverse.improvements, 1);
}

TEST(ProfDiff, SpeedupDirectionIsInverted) {
  const auto base = profdiff::parse_report(
      report_json(measurement("fused_geomean_speedup", 2.0)));
  const auto slower = profdiff::parse_report(
      report_json(measurement("fused_geomean_speedup", 1.5)));
  profdiff::DiffOptions options;
  options.tolerance = 0.10;
  // A *drop* in speedup is the regression...
  const auto result = profdiff::diff(base, slower, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.entries[0].verdict, profdiff::Verdict::kRegression);
  // ...and a rise is an improvement, not a regression.
  const auto inverse = profdiff::diff(slower, base, options);
  EXPECT_TRUE(inverse.ok());
  EXPECT_EQ(inverse.improvements, 1);
}

TEST(ProfDiff, WithinToleranceIsQuiet) {
  const auto base =
      profdiff::parse_report(report_json(measurement("cbm_seconds", 0.100)));
  const auto current =
      profdiff::parse_report(report_json(measurement("cbm_seconds", 0.107)));
  profdiff::DiffOptions options;
  options.tolerance = 0.10;
  const auto result = profdiff::diff(base, current, options);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.entries[0].verdict, profdiff::Verdict::kPass);
}

TEST(ProfDiff, LabelsDistinguishSeriesButPlanProvenanceDoesNot) {
  const std::string labels_a = "{\"graph\": \"ca-HepPh\", \"op\": \"AX\"}";
  const std::string labels_b = "{\"graph\": \"ca-HepPh\", \"op\": \"ADX\"}";
  const auto base = profdiff::parse_report(
      report_json(measurement("cbm_seconds", 0.1, labels_a) + "," +
                  measurement("cbm_seconds", 0.2, labels_b)));
  const auto self = profdiff::diff(base, base, {});
  EXPECT_EQ(self.compared, 2);  // distinct label sets stay distinct series

  // Plan provenance flips between runs (cache vs probe) and must not break
  // the pairing: a base labelled plan_source=probe matches a current
  // labelled plan_source=cache.
  const std::string probe_run =
      "{\"graph\": \"g\", \"plan\": \"tuned\", \"plan_source\": \"probe\"}";
  const std::string cache_run =
      "{\"graph\": \"g\", \"plan\": \"tuned\", \"plan_source\": \"cache\"}";
  const auto b2 = profdiff::parse_report(
      report_json(measurement("cbm_tuned_seconds", 0.1, probe_run)));
  const auto c2 = profdiff::parse_report(
      report_json(measurement("cbm_tuned_seconds", 0.1, cache_run)));
  const auto result = profdiff::diff(b2, c2, {});
  EXPECT_EQ(result.compared, 1);
  EXPECT_EQ(result.base_only, 0);
  EXPECT_EQ(result.current_only, 0);
}

TEST(ProfDiff, UnpairedSeriesAreCountedNotCompared) {
  const auto base = profdiff::parse_report(report_json(
      measurement("vanished", 1.0) + "," + measurement("stable", 1.0)));
  const auto current = profdiff::parse_report(report_json(
      measurement("stable", 1.0) + "," + measurement("brand_new", 1.0)));
  const auto result = profdiff::diff(base, current, {});
  EXPECT_TRUE(result.ok());  // missing series are informational, not gating
  EXPECT_EQ(result.compared, 1);
  EXPECT_EQ(result.base_only, 1);
  EXPECT_EQ(result.current_only, 1);
}

TEST(ProfDiff, FilterRestrictsComparison) {
  const auto base = profdiff::parse_report(report_json(
      measurement("cbm_seconds", 0.1) + "," +
      measurement("fused_geomean_speedup", 2.0)));
  const auto current = profdiff::parse_report(report_json(
      measurement("cbm_seconds", 99.0) + "," +  // would regress unfiltered
      measurement("fused_geomean_speedup", 2.0)));
  profdiff::DiffOptions options;
  options.filter = "geomean_speedup";
  const auto result = profdiff::diff(base, current, options);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.compared, 1);
  EXPECT_EQ(result.entries.size(), 1u);
}

TEST(ProfDiff, NonPositiveValuesAreSkipped) {
  const auto base =
      profdiff::parse_report(report_json(measurement("maybe_empty", 0.0)));
  const auto current =
      profdiff::parse_report(report_json(measurement("maybe_empty", 1.0)));
  const auto result = profdiff::diff(base, current, {});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.compared, 0);
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].verdict, profdiff::Verdict::kSkipped);
}

TEST(ProfDiff, StatSelectionUsesTheRequestedStatistic) {
  // min identical, mean regressed: the default (min) gate passes, a mean
  // gate fails.
  const std::string base_m =
      "{\"name\": \"t\", \"count\": 3, \"mean\": 0.10, \"stddev\": 0, "
      "\"min\": 0.05, \"max\": 0.2, \"median\": 0.1}";
  const std::string cur_m =
      "{\"name\": \"t\", \"count\": 3, \"mean\": 0.20, \"stddev\": 0, "
      "\"min\": 0.05, \"max\": 0.4, \"median\": 0.1}";
  const auto base = profdiff::parse_report(report_json(base_m));
  const auto current = profdiff::parse_report(report_json(cur_m));
  EXPECT_TRUE(profdiff::diff(base, current, {}).ok());
  profdiff::DiffOptions mean_gate;
  mean_gate.stat = profdiff::Stat::kMean;
  EXPECT_FALSE(profdiff::diff(base, current, mean_gate).ok());
}

TEST(ProfDiff, DiffJsonIsWellFormedAndSummarises) {
  const auto base = profdiff::parse_report(report_json(
      measurement("cbm_seconds", 0.1) + "," + measurement("gone", 1.0)));
  const auto current =
      profdiff::parse_report(report_json(measurement("cbm_seconds", 0.2)));
  const auto result = profdiff::diff(base, current, {});
  const std::string json =
      profdiff::diff_json(result, {}, "base.json", "cur.json");

  const auto doc = microjson::parse(json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("schema").value_or(""), "cbmprof-diff-v1");
  const microjson::Value* summary = doc->find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_DOUBLE_EQ(summary->get_number("compared").value_or(-1), 1.0);
  EXPECT_DOUBLE_EQ(summary->get_number("regressions").value_or(-1), 1.0);
  EXPECT_DOUBLE_EQ(summary->get_number("base_only").value_or(-1), 1.0);
  const microjson::Value* ok = summary->find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_FALSE(ok->as_bool());
  const microjson::Value* entries = doc->find("entries");
  ASSERT_NE(entries, nullptr);
  EXPECT_EQ(entries->as_array().size(), 2u);
}

}  // namespace
}  // namespace cbm
