#include "serve/serve.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <map>
#include <utility>

#include "obs/obs.hpp"
#include "serve/batch.hpp"
#include "sparse/scale.hpp"

namespace cbm::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

/// A submitted request in flight through the pipeline.
struct ServeContext::Pending {
  Request request;
  std::promise<Response> promise;
  Clock::time_point submitted;
  Clock::time_point picked_up;
  // Filled by the worker:
  typename AdjacencyCache<real_t>::EntryPtr entry;
  bool cache_hit = false;
  bool failed = false;
};

ServeContext::ServeContext(ServeOptions options)
    : options_(std::move(options)),
      runtime_(options_.runtime ? *options_.runtime : RuntimeConfig::from_env()),
      cache_(options_.cache_bytes, options_.cache_dir),
      ring_(options_.queue_capacity) {
  CBM_CHECK(options_.max_batch >= 1, "ServeContext: max_batch must be >= 1");
  worker_ = std::thread([this] { worker_loop(); });
}

ServeContext::~ServeContext() {
  stop_.store(true, std::memory_order_release);
  // Wake the worker even if the ring is empty so it can observe stop_.
  items_.release();
  if (worker_.joinable()) worker_.join();
}

std::future<Response> ServeContext::submit(Request request) {
  auto pending = std::make_unique<Pending>();
  pending->request = std::move(request);
  pending->submitted = Clock::now();
  std::future<Response> future = pending->promise.get_future();

  Pending* raw = pending.release();  // ownership passes through the ring
  {
    const std::lock_guard<std::mutex> lock(submit_mutex_);
    while (!ring_.try_push(raw)) {
      // Backpressure: the bounded ring is the admission control. Yield to
      // the worker rather than growing an unbounded queue.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  submitted_.fetch_add(1, std::memory_order_release);
  CBM_COUNTER_ADD("cbm.serve.requests", 1);
  CBM_GAUGE_SET("cbm.serve.queue_depth",
                static_cast<std::int64_t>(ring_.size_approx()));
  items_.release();
  return future;
}

Response ServeContext::infer(Request request) {
  return submit(std::move(request)).get();
}

void ServeContext::flush() {
  const std::uint64_t target = submitted_.load(std::memory_order_acquire);
  while (completed_.load(std::memory_order_acquire) < target) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

ServeStats ServeContext::stats() const {
  const auto cache = cache_.stats();
  ServeStats s;
  s.requests = completed_.load(std::memory_order_acquire);
  s.batches = batches_.load(std::memory_order_acquire);
  s.cache_hits = cache.hits;
  s.cache_misses = cache.misses;
  s.cache_evictions = cache.evictions;
  s.cache_disk_hits = cache.disk_hits;
  return s;
}

void ServeContext::worker_loop() {
  std::vector<Pending*> batch;
  while (true) {
    // Block for the first item (or the stop signal) …
    items_.acquire();
    batch.clear();
    Pending* p = nullptr;
    if (ring_.try_pop(p)) batch.push_back(p);
    // … then drain whatever else is already queued, up to max_batch. Each
    // successful pop consumes the matching semaphore token.
    while (static_cast<int>(batch.size()) < options_.max_batch &&
           items_.try_acquire()) {
      if (!ring_.try_pop(p)) {
        // Token without an item: this was the destructor's wake-up token.
        items_.release();
        break;
      }
      batch.push_back(p);
    }
    if (!batch.empty()) process_batch(batch);
    if (stop_.load(std::memory_order_acquire) && ring_.empty_approx() &&
        completed_.load(std::memory_order_acquire) >=
            submitted_.load(std::memory_order_acquire)) {
      return;
    }
  }
}

void ServeContext::process_batch(std::vector<Pending*>& batch) {
  CBM_SPAN("cbm.serve.batch");
  CBM_COUNTER_ADD("cbm.serve.batches", 1);
  CBM_TIMING_RECORD("cbm.serve.batch_size",
                    static_cast<double>(batch.size()));
  batches_.fetch_add(1, std::memory_order_release);
  const auto now = Clock::now();
  for (Pending* p : batch) p->picked_up = now;

  // Requests only fuse when their operands stack: group by feature width,
  // preserving arrival order within each group.
  std::map<index_t, std::vector<Pending*>> groups;
  for (Pending* p : batch) groups[p->request.features.cols()].push_back(p);
  for (auto& [width, group] : groups) process_group(group);
}

void ServeContext::process_group(std::vector<Pending*>& group) {
  const std::uint32_t kind = static_cast<std::uint32_t>(
      options_.gcn_normalize ? CbmKind::kSymScaled : CbmKind::kPlain);

  // Stage 1 — resolve every adjacency to a cache entry, compressing on
  // miss. Failures here are per-request: a bad adjacency fails its own
  // future and drops out of the batch.
  for (Pending* p : group) {
    try {
      const Request& req = p->request;
      CBM_CHECK(req.features.rows() == req.adjacency.cols(),
                "serve: features have " + std::to_string(req.features.rows()) +
                    " rows but the adjacency has " +
                    std::to_string(req.adjacency.cols()) + " columns");
      const GraphKey key =
          make_graph_key(req.adjacency, kind, options_.compress.alpha);
      p->entry = cache_.lookup(key);
      p->cache_hit = p->entry != nullptr;
      if (!p->entry) {
        CBM_SPAN("cbm.serve.compress");
        CbmMatrix<real_t> cbm;
        if (options_.gcn_normalize) {
          // GCN propagation: compress D^-1/2 (A+I) D^-1/2 from the raw
          // binary adjacency (degrees of A+I are >= 1, so the inverse
          // square roots are finite).
          const CsrMatrix<real_t> a_hat = add_identity(req.adjacency);
          const index_t n = a_hat.rows();
          std::vector<real_t> dinv(static_cast<std::size_t>(n));
          const auto indptr = a_hat.indptr();
          for (index_t v = 0; v < n; ++v) {
            const auto deg = indptr[static_cast<std::size_t>(v) + 1] -
                             indptr[static_cast<std::size_t>(v)];
            dinv[static_cast<std::size_t>(v)] =
                real_t{1} / std::sqrt(static_cast<real_t>(deg));
          }
          cbm = CbmMatrix<real_t>::compress_scaled(
              a_hat, dinv, CbmKind::kSymScaled, options_.compress);
        } else {
          cbm = CbmMatrix<real_t>::compress(req.adjacency, options_.compress);
        }
        p->entry = cache_.insert(key, std::move(cbm));
      }
    } catch (...) {
      p->failed = true;
      p->promise.set_exception(std::current_exception());
      completed_.fetch_add(1, std::memory_order_release);
    }
  }
  std::vector<Pending*> live;
  live.reserve(group.size());
  for (Pending* p : group) {
    if (!p->failed) live.push_back(p);
  }
  if (live.empty()) {
    for (Pending* p : group) delete p;
    return;
  }

  // Stage 2 — one fused multiply for the group.
  try {
    std::vector<DenseMatrix<real_t>> outputs(live.size());
    if (live.size() == 1) {
      // Single request: use the entry's memoised plan so warm traffic skips
      // plan resolution along with compression.
      Pending* p = live.front();
      const CbmMatrix<real_t>& cbm = p->entry->cbm();
      outputs[0] = DenseMatrix<real_t>(cbm.rows(), p->request.features.cols());
      const MultiplySchedule plan = p->entry->plan_for(
          p->request.features.cols(),
          [&](const CbmMatrix<real_t>& m) {
            return m.resolve_plan(p->request.features, outputs[0], runtime_)
                .plan.schedule;
          });
      CBM_SPAN("cbm.serve.multiply");
      MultiplyOptions mopts = MultiplyOptions::with_plan(plan);
      mopts.runtime = &runtime_;
      cbm.multiply(p->request.features, outputs[0], mopts);
    } else {
      std::vector<BatchItem<real_t>> items;
      items.reserve(live.size());
      for (Pending* p : live) {
        items.push_back({&p->entry->cbm(), &p->request.features});
      }
      PackedBatch<real_t> packed =
          pack_batch(std::span<const BatchItem<real_t>>(items));
      DenseMatrix<real_t> packed_out(packed.cbm.rows(),
                                     packed.features.cols());
      {
        CBM_SPAN("cbm.serve.multiply");
        // Batch shapes vary call to call; the analytic plan from the
        // context's config (fused engine unless a path is forced) avoids
        // re-probing the tuner per batch.
        MultiplySchedule plan = MultiplySchedule::from_config(runtime_);
        if (!runtime_.multiply_path || runtime_.multiply_path->empty()) {
          plan.path = MultiplyPath::kFusedTiled;
        }
        MultiplyOptions mopts = MultiplyOptions::with_plan(plan);
        mopts.runtime = &runtime_;
        packed.cbm.multiply(packed.features, packed_out, mopts);
      }
      for (std::size_t i = 0; i < live.size(); ++i) {
        outputs[i] = DenseMatrix<real_t>(
            packed.row_offsets[i + 1] - packed.row_offsets[i],
            packed_out.cols());
      }
      std::vector<DenseMatrix<real_t>*> out_ptrs(outputs.size());
      for (std::size_t i = 0; i < outputs.size(); ++i) {
        out_ptrs[i] = &outputs[i];
      }
      scatter_batch(packed_out,
                    std::span<const index_t>(packed.row_offsets),
                    std::span<DenseMatrix<real_t>* const>(out_ptrs));
      CBM_COUNTER_ADD("cbm.serve.batched_requests",
                      static_cast<std::int64_t>(live.size()));
    }

    const auto done = Clock::now();
    for (std::size_t i = 0; i < live.size(); ++i) {
      Pending* p = live[i];
      Response resp;
      resp.id = p->request.id;
      resp.output = std::move(outputs[i]);
      resp.cache_hit = p->cache_hit;
      resp.batch_size = static_cast<int>(live.size());
      resp.queue_seconds = seconds_between(p->submitted, p->picked_up);
      resp.total_seconds = seconds_between(p->submitted, done);
      CBM_TIMING_RECORD("cbm.serve.latency", resp.total_seconds);
      p->promise.set_value(std::move(resp));
      completed_.fetch_add(1, std::memory_order_release);
    }
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (Pending* p : live) {
      p->promise.set_exception(error);
      completed_.fetch_add(1, std::memory_order_release);
    }
  }

  for (Pending* p : group) delete p;
}

}  // namespace cbm::serve
