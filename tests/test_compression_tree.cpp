// Tests for the CompressionTree structure (topological order + branch
// decomposition used by the CBM update stage).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "tree/compression_tree.hpp"

namespace cbm {
namespace {

TEST(CompressionTree, AllRootChildren) {
  // parent[x] = 3 (virtual root) for all 3 rows.
  const auto t = CompressionTree::from_parents({3, 3, 3});
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.virtual_root(), 3);
  EXPECT_EQ(t.root_out_degree(), 3);
  EXPECT_EQ(t.num_compressed_rows(), 0);
  EXPECT_EQ(t.max_depth(), 1);
  EXPECT_EQ(t.branches().size(), 3u);  // singletons kept
  for (index_t x = 0; x < 3; ++x) EXPECT_TRUE(t.is_root_child(x));
}

TEST(CompressionTree, ChainTree) {
  // 0 ← 1 ← 2 ← 3, with 0 hanging off the root (= 4).
  const auto t = CompressionTree::from_parents({4, 0, 1, 2});
  EXPECT_EQ(t.root_out_degree(), 1);
  EXPECT_EQ(t.num_compressed_rows(), 3);
  EXPECT_EQ(t.max_depth(), 4);
  ASSERT_EQ(t.branches().size(), 1u);
  EXPECT_EQ(t.branches()[0], (std::vector<index_t>{0, 1, 2, 3}));
}

TEST(CompressionTree, TopologicalOrderProperty) {
  const std::vector<index_t> parent = {6, 0, 0, 1, 6, 4};
  const auto t = CompressionTree::from_parents(parent);
  const auto topo = t.topological_order();
  ASSERT_EQ(topo.size(), 6u);
  std::vector<index_t> position(6);
  for (std::size_t i = 0; i < topo.size(); ++i) position[topo[i]] = i;
  for (index_t x = 0; x < 6; ++x) {
    if (parent[x] != t.virtual_root()) {
      EXPECT_LT(position[parent[x]], position[x])
          << "parent must precede child";
    }
  }
}

TEST(CompressionTree, BranchesPartitionRows) {
  const std::vector<index_t> parent = {6, 0, 0, 1, 6, 4};
  const auto t = CompressionTree::from_parents(parent);
  EXPECT_EQ(t.branches().size(), 2u);
  std::set<index_t> seen;
  for (const auto& branch : t.branches()) {
    // Within a branch, parents precede children too.
    std::vector<index_t> pos(7, -1);
    for (std::size_t i = 0; i < branch.size(); ++i) pos[branch[i]] = i;
    for (const index_t x : branch) {
      EXPECT_TRUE(seen.insert(x).second) << "row in two branches";
      if (parent[x] != t.virtual_root()) {
        EXPECT_GE(pos[parent[x]], 0);
        EXPECT_LT(pos[parent[x]], pos[x]);
      }
    }
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(CompressionTree, CycleDetected) {
  // 0 ← 1 and 1 ← 0: unreachable from the root.
  EXPECT_THROW(CompressionTree::from_parents({1, 0, 2}), CbmError);
}

TEST(CompressionTree, SelfParentDetected) {
  EXPECT_THROW(CompressionTree::from_parents({0, 2}), CbmError);
}

TEST(CompressionTree, OutOfRangeParentRejected) {
  EXPECT_THROW(CompressionTree::from_parents({5, 2}), CbmError);
  EXPECT_THROW(CompressionTree::from_parents({-1, 2}), CbmError);
}

TEST(CompressionTree, EmptyTree) {
  const auto t = CompressionTree::from_parents({});
  EXPECT_EQ(t.num_rows(), 0);
  EXPECT_TRUE(t.branches().empty());
  EXPECT_EQ(t.max_depth(), 0);
}

TEST(CompressionTree, BytesAccountsParentAndBranches) {
  const auto t = CompressionTree::from_parents({3, 0, 1});
  // parent: 3 indices; one branch of 3 rows.
  EXPECT_EQ(t.bytes(), 6 * sizeof(index_t));
}

}  // namespace
}  // namespace cbm
