// Repetition-timing helper: warmup runs, then `reps` timed runs, collecting
// mean ± std exactly as the paper reports (§VI-B: averages over 250 runs).
#pragma once

#include <utility>

#include "common/stats.hpp"
#include "common/timer.hpp"
#include "obs/hw.hpp"

namespace cbm {

/// Times fn() `reps` times after `warmup` untimed calls; returns seconds
/// statistics.
template <typename Fn>
RunStats time_repetitions(Fn&& fn, int reps, int warmup) {
  for (int i = 0; i < warmup; ++i) fn();
  RunStats stats;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    stats.add(t.seconds());
  }
  return stats;
}

/// time_repetitions plus hardware-counter attribution (obs/hw.hpp): every
/// timed rep runs inside an HwRegion and the deltas of the *fastest* rep are
/// kept — timing jitter is additive, so the minimum-wall-time rep is the one
/// whose counters describe the kernel rather than the noise. When CBM_PERF
/// is off the sample carries available=false with the reason, so reports
/// always have an explicit marker.
struct HwTimedStats {
  RunStats stats;
  obs::hw::HwSample sample;    ///< counter deltas of the fastest rep
  double sample_seconds = 0.0; ///< wall time of that rep (the stats min)
};

template <typename Fn>
HwTimedStats time_repetitions_hw(Fn&& fn, int reps, int warmup) {
  for (int i = 0; i < warmup; ++i) fn();
  HwTimedStats out;
  double best = -1.0;
  for (int i = 0; i < reps; ++i) {
    obs::hw::HwRegion region;
    Timer t;
    fn();
    const double seconds = t.seconds();
    obs::hw::HwSample sample = region.stop();
    out.stats.add(seconds);
    if (best < 0.0 || seconds < best) {
      best = seconds;
      out.sample = std::move(sample);
      out.sample_seconds = seconds;
    }
  }
  return out;
}

}  // namespace cbm
