// GCN training with a CBM adjacency (the paper's §VIII future-work item):
// node classification on a community graph where the label is the node's
// community. Every forward AND backward pass routes its Â-products through
// the pluggable adjacency operand, so CBM accelerates four SpMMs per step.
//
//   ./gcn_training [epochs]
#include <cstdio>

#include "common/timer.hpp"
#include "gnn/train.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"

int main(int argc, char** argv) {
  using namespace cbm;
  const int epochs = argc > 1 ? std::atoi(argv[1]) : 40;

  // Community graph; labels = community id hashed into 4 classes. Since
  // communities are consecutive node ranges, labels are piecewise constant
  // and strongly homophilous — a realistic easy node-classification task.
  const index_t n = 4000;
  const Graph g = community_graph(
      {.num_nodes = n, .team_min = 16, .team_max = 64, .size_exponent = 1.8,
       .intra_prob = 1.0, .cross_per_node = 2.0},
      11);
  std::vector<index_t> labels(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) labels[i] = (i / 32) % 4;

  const auto norm = gcn_normalization<real_t>(g);
  const CbmAdjacency<real_t> adj(
      CbmMatrix<real_t>::compress_scaled(
          norm.a_plus_i, std::span<const real_t>(norm.dinv_sqrt),
          CbmKind::kSymScaled, {.alpha = 4}),
      MultiplySchedule::from_config(RuntimeConfig::from_env()));

  Rng rng(5);
  DenseMatrix<real_t> x(n, 32);
  x.fill_uniform(rng);

  Gcn2<real_t> model(32, 24, 4, /*seed=*/9);
  GcnTrainer<real_t> trainer(model, n);

  Timer total;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const double loss =
        trainer.step(adj, x, std::span<const index_t>(labels), 1.0f);
    if (epoch % 5 == 0 || epoch == epochs - 1) {
      // Training accuracy from the cached logits.
      index_t correct = 0;
      const auto& logits = trainer.logits();
      for (index_t i = 0; i < n; ++i) {
        index_t best = 0;
        for (index_t c = 1; c < 4; ++c) {
          if (logits(i, c) > logits(i, best)) best = c;
        }
        correct += best == labels[i];
      }
      std::printf("epoch %3d  loss %.4f  train-acc %.1f%%\n", epoch, loss,
                  100.0 * correct / n);
    }
  }
  std::printf("trained %d epochs in %.2f s with a %s adjacency operand\n",
              epochs, total.seconds(), adj.name().c_str());
  return 0;
}
