// Table III — performance of AX, ADX, and DADX with CSR vs CBM at each
// graph's best α, for 1 core and all cores.
#include "bench_common.hpp"

int main() {
  using namespace cbm;
  using namespace cbm::bench;
  const auto config = BenchConfig::from_env();
  print_bench_header(config, "Table III — AX / ADX / DADX performance");
  BenchReport report("table3_matmul", config);

  TablePrinter table({"Graph", "Alpha(Cores)", "Op", "T_CSR [s]", "T_CBM [s]",
                      "Speedup"});
  for (const auto& spec : dataset_registry()) {
    const Graph g = load_dataset(spec, config);
    const auto b = make_dense_operand<real_t>(g.num_nodes(), config.cols);

    struct Mode {
      int alpha;
      int threads;
      UpdateSchedule schedule;
    };
    const Mode modes[] = {
        {spec.paper_best_alpha_seq, 1, UpdateSchedule::kSequential},
        {spec.paper_best_alpha_par, config.threads,
         UpdateSchedule::kBranchDynamic},
    };
    for (const auto& mode : modes) {
      for (const Workload w :
           {Workload::kAX, Workload::kADX, Workload::kDADX}) {
        const auto pair = make_operands<real_t>(g, w, mode.alpha);
        ThreadScope scope(mode.threads);
        const auto r = time_pair(pair, b, config, mode.schedule);
        const std::vector<std::pair<std::string, std::string>> labels = {
            {"graph", spec.name},
            {"op", workload_name(w)},
            {"alpha", std::to_string(mode.alpha)},
            {"threads", std::to_string(mode.threads)}};
        report.add("csr_seconds", r.csr, labels);
        report.add("cbm_seconds", r.cbm, labels);
        table.add_row({spec.name,
                       "a=" + std::to_string(mode.alpha) + " (" +
                           std::to_string(mode.threads) + ")",
                       workload_name(w), fmt_stats(r.csr), fmt_stats(r.cbm),
                       fmt_double(r.speedup(), 3)});
      }
    }
  }
  table.print();
  return 0;
}
