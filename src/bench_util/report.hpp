// Machine-readable bench telemetry (the CBM_BENCH_JSON side channel).
//
// Every bench binary constructs one BenchReport next to its TablePrinter and
// records each measurement it prints. When CBM_BENCH_JSON=<path> is set the
// report writes a single JSON document on destruction — config, host info,
// per-measurement statistics (count/mean/std/min/max/median), and a snapshot
// of the cbm::obs metrics registry (metrics recording is switched on
// automatically so per-stage counters land in the document). Without the
// env var every call is a no-op, so benches pay nothing by default.
//
// The document layout is stable on purpose: BENCH_*.json trajectories diff
// it across PRs. See docs/observability.md.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_util/env.hpp"
#include "bench_util/runner.hpp"
#include "common/stats.hpp"
#include "obs/hw.hpp"

namespace cbm {

/// Build/host facts that make pasted bench numbers self-describing.
struct HostInfo {
  std::string hostname;
  std::string compiler;    ///< e.g. "gcc 13.2"
  std::string build_type;  ///< "Release" (NDEBUG) or "Debug"
  bool openmp = false;
  int hardware_threads = 0;

  static HostInfo detect();
};

/// Hardware-counter attribution for one measurement: the fastest rep's
/// counter deltas plus the kernel facts (flop count, operand format bytes,
/// source nnz) that turn raw counters into IPC / GFLOP/s / bytes-per-nnz in
/// the written document. Zero-valued facts are simply omitted from the JSON.
struct HwBlock {
  obs::hw::HwSample sample;
  double seconds = 0.0;  ///< wall time of the attributed rep
  double flops = 0.0;    ///< known scalar-op count of the kernel (0 = n/a)
  double format_bytes = 0.0;  ///< operand format footprint (0 = n/a)
  double nnz = 0.0;           ///< source nonzeros (0 = n/a)

  /// Pairs a time_repetitions_hw result with the kernel facts.
  static HwBlock from(const HwTimedStats& timed, double flops,
                      double format_bytes, double nnz) {
    return HwBlock{timed.sample, timed.sample_seconds, flops, format_bytes,
                   nnz};
  }
};

/// One named measurement with optional string labels (graph, alpha, ...).
struct BenchMeasurement {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  RunStats stats;
  std::optional<HwBlock> hw;  ///< per-config counter block when sampled
};

class BenchReport {
 public:
  /// Reads CBM_BENCH_JSON; when set, enables cbm::obs metrics so the final
  /// document carries the per-stage counters of everything the bench ran.
  BenchReport(std::string bench_name, const BenchConfig& config);

  /// Writes the document (if enabled and not yet written).
  ~BenchReport();

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Records one measurement series. No-op when disabled.
  void add(std::string name, const RunStats& stats,
           std::vector<std::pair<std::string, std::string>> labels = {});

  /// Records a measurement series together with its hardware-counter block
  /// (written as the measurement's "hw" object — or an explicit
  /// {"available": false, "reason": ...} marker when counters were off or
  /// refused). No-op when disabled.
  void add(std::string name, const RunStats& stats,
           std::vector<std::pair<std::string, std::string>> labels,
           HwBlock hw);

  /// Records a single scalar (ratios, byte counts, ...). No-op when disabled.
  void add_scalar(std::string name, double value,
                  std::vector<std::pair<std::string, std::string>> labels = {});

  /// Writes the JSON document now; later add() calls start a new pending
  /// document (normally the destructor is the only writer).
  void write();

 private:
  std::string bench_name_;
  BenchConfig config_;
  std::string path_;
  std::vector<BenchMeasurement> measurements_;
  bool written_ = false;
};

}  // namespace cbm
