#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace cbm {

void RunStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunStats::mean() const { return n_ ? mean_ : 0.0; }

double RunStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double RunStats::min() const { return min_; }
double RunStats::max() const { return max_; }

void RunStats::merge(const RunStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ += delta * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

}  // namespace cbm
