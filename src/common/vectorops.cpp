// Runtime SIMD dispatch: CPU feature detection, the CBM_SIMD knob, and the
// active-kernel-table atomics read by the inline wrappers in vectorops.hpp.
#include "common/vectorops.hpp"

#include <cstdlib>
#include <mutex>
#include <string>

#include "common/vectorops_backends.hpp"

namespace cbm {

namespace simd::detail {

namespace {

template <typename T>
constexpr KernelTable<T> make_scalar_table() {
  KernelTable<T> t{};
  t.add = &generic_add<T>;
  t.axpy = &generic_axpy<T>;
  t.scale = &generic_scale<T>;
  t.fused_scale_add = &generic_fused_scale_add<T>;
  t.dot = &generic_dot<T>;
  t.spmm_row = &generic_spmm_row<T>;
  t.fused_rows = &generic_fused_rows<T>;
  return t;
}

const KernelTable<float> kScalarF32 = make_scalar_table<float>();
const KernelTable<double> kScalarF64 = make_scalar_table<double>();

std::atomic<SimdLevel> g_level{SimdLevel::kScalar};
std::mutex g_init_mutex;

bool cpu_has_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_has_avx512f() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

/// Installs the tables for `level`; caller has validated support.
void install_tables(SimdLevel level) {
  const KernelTable<float>* f32 = &kScalarF32;
  const KernelTable<double>* f64 = &kScalarF64;
#ifdef CBM_HAVE_AVX2_KERNELS
  if (level == SimdLevel::kAvx2) {
    f32 = &backend::avx2_f32();
    f64 = &backend::avx2_f64();
  }
#endif
#ifdef CBM_HAVE_AVX512_KERNELS
  if (level == SimdLevel::kAvx512) {
    f32 = &backend::avx512_f32();
    f64 = &backend::avx512_f64();
  }
#endif
  g_table_f32.store(f32, std::memory_order_relaxed);
  g_table_f64.store(f64, std::memory_order_relaxed);
  g_level.store(level, std::memory_order_relaxed);
}

}  // namespace

std::atomic<const KernelTable<float>*> g_table_f32{&kScalarF32};
std::atomic<const KernelTable<double>*> g_table_f64{&kScalarF64};
std::atomic<bool> g_initialized{false};

void init_from_env() {
  const std::lock_guard<std::mutex> lock(g_init_mutex);
  if (g_initialized.load(std::memory_order_relaxed)) return;
  const char* env = std::getenv("CBM_SIMD");
  const std::string_view text =
      (env == nullptr || *env == '\0') ? std::string_view("auto") : env;
  install_tables(parse_simd_level(text));
  g_initialized.store(true, std::memory_order_release);
}

}  // namespace simd::detail

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
    case SimdLevel::kAvx512: return "avx512";
  }
  return "unknown";
}

bool simd_level_supported(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return true;
    case SimdLevel::kAvx2:
#ifdef CBM_HAVE_AVX2_KERNELS
      return simd::detail::cpu_has_avx2();
#else
      return false;
#endif
    case SimdLevel::kAvx512:
#ifdef CBM_HAVE_AVX512_KERNELS
      return simd::detail::cpu_has_avx512f();
#else
      return false;
#endif
  }
  return false;
}

SimdLevel simd_max_supported() {
  if (simd_level_supported(SimdLevel::kAvx512)) return SimdLevel::kAvx512;
  if (simd_level_supported(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
  return SimdLevel::kScalar;
}

SimdLevel parse_simd_level(std::string_view text) {
  if (text == "auto") return simd_max_supported();
  SimdLevel level;
  if (text == "scalar") {
    level = SimdLevel::kScalar;
  } else if (text == "avx2") {
    level = SimdLevel::kAvx2;
  } else if (text == "avx512") {
    level = SimdLevel::kAvx512;
  } else {
    throw CbmError("CBM_SIMD: unknown value '" + std::string(text) +
                   "' (expected auto | avx512 | avx2 | scalar)");
  }
  CBM_CHECK(simd_level_supported(level),
            std::string("CBM_SIMD: level '") + simd_level_name(level) +
                "' is not available on this host/build");
  return level;
}

SimdLevel simd_level() {
  if (!simd::detail::g_initialized.load(std::memory_order_acquire)) {
    simd::detail::init_from_env();
  }
  return simd::detail::g_level.load(std::memory_order_relaxed);
}

void set_simd_level(SimdLevel level) {
  CBM_CHECK(simd_level_supported(level),
            std::string("set_simd_level: level '") + simd_level_name(level) +
                "' is not available on this host/build");
  const std::lock_guard<std::mutex> lock(simd::detail::g_init_mutex);
  simd::detail::install_tables(level);
  simd::detail::g_initialized.store(true, std::memory_order_release);
}

}  // namespace cbm
