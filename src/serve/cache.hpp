// Compressed-adjacency cache — the serving layer's reason to exist.
//
// Compression is the expensive step of the CBM pipeline (distance graph +
// MCA solve), and production inference sees the same graphs over and over;
// the cache makes every request after the first pay only the multiply. It
// is an LRU over GraphKey with a byte budget, an optional on-disk
// persistence tier (serialize.hpp — entries survive process restarts), and
// per-entry memoised execution plans so a cached graph skips re-planning as
// well as recompression.
#pragma once

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cbm/cbm_matrix.hpp"
#include "serve/fingerprint.hpp"

namespace cbm::serve {

/// One cached compressed adjacency.
template <typename T>
class CacheEntry {
 public:
  CacheEntry(GraphKey key, CbmMatrix<T> cbm)
      : key_(key), cbm_(std::move(cbm)), bytes_(cbm_.bytes()) {}

  [[nodiscard]] const GraphKey& key() const { return key_; }
  [[nodiscard]] const CbmMatrix<T>& cbm() const { return cbm_; }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }

  /// The resolved MultiplySchedule for operands of width `bcols`, memoised
  /// per entry: the first request of a given width pays plan resolution
  /// (tuning-cache lookup / probe / analytic policy via `resolve`), every
  /// later one reuses the decision — cached graphs skip re-planning exactly
  /// as they skip recompression. Thread-safe.
  MultiplySchedule plan_for(
      index_t bcols,
      const std::function<MultiplySchedule(const CbmMatrix<T>&)>& resolve) {
    const std::lock_guard<std::mutex> lock(plan_mutex_);
    const auto it = plans_.find(bcols);
    if (it != plans_.end()) return it->second;
    const MultiplySchedule plan = resolve(cbm_);
    plans_.emplace(bcols, plan);
    return plan;
  }

  /// Number of widths with a memoised plan (tests / stats).
  [[nodiscard]] std::size_t plans_resolved() {
    const std::lock_guard<std::mutex> lock(plan_mutex_);
    return plans_.size();
  }

 private:
  GraphKey key_;
  CbmMatrix<T> cbm_;
  std::size_t bytes_ = 0;
  std::mutex plan_mutex_;
  std::unordered_map<index_t, MultiplySchedule> plans_;
};

/// LRU cache of compressed adjacencies with a byte budget and an optional
/// disk tier. Thread-safe; entries are handed out as shared_ptr so an
/// eviction never invalidates a multiply in flight.
///
/// Byte accounting covers the CBM payloads (CbmMatrix::bytes()). Inserting
/// over budget evicts least-recently-used entries until the new entry fits;
/// a single entry larger than the whole budget is still admitted (a cache
/// that cannot hold its only working graph would be useless) and simply
/// evicts everything else.
///
/// When `persist_dir` is set, inserts write the entry through to
/// `<dir>/<fingerprint>-<kind>-<alpha>.cbmf` and lookups that miss in
/// memory try that file before reporting a miss — the persistence tier
/// outlives the process. Disk entries are verified against the key's shape
/// on load; unreadable or mismatched files degrade to a miss (and the
/// cbm.serve.cache.disk_errors counter), never to an exception.
template <typename T>
class AdjacencyCache {
 public:
  using EntryPtr = std::shared_ptr<CacheEntry<T>>;

  struct Stats {
    std::uint64_t hits = 0;        ///< in-memory lookup hits
    std::uint64_t misses = 0;      ///< full misses (caller must compress)
    std::uint64_t evictions = 0;   ///< entries dropped for the byte budget
    std::uint64_t disk_hits = 0;   ///< misses satisfied by the disk tier
    std::uint64_t disk_errors = 0; ///< unreadable/mismatched disk entries
    std::size_t entries = 0;       ///< current resident entry count
    std::size_t bytes = 0;         ///< current resident payload bytes
  };

  explicit AdjacencyCache(std::size_t byte_budget,
                          std::string persist_dir = "");

  /// Finds the entry for `key`, consulting the disk tier on an in-memory
  /// miss. Returns nullptr on a full miss. Hits move the entry to the MRU
  /// position.
  EntryPtr lookup(const GraphKey& key);

  /// Inserts a freshly compressed adjacency (write-through to the disk tier
  /// when configured), evicting LRU entries as needed. If the key is
  /// already resident the existing entry is returned instead (first writer
  /// wins — concurrent compressions of the same graph converge).
  EntryPtr insert(const GraphKey& key, CbmMatrix<T> cbm);

  /// Drops every in-memory entry (the disk tier is left alone).
  void clear();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t byte_budget() const { return byte_budget_; }

  /// Disk-tier file for a key (empty when persistence is off) — exposed for
  /// tests and cbmprof-style tooling.
  [[nodiscard]] std::string entry_path(const GraphKey& key) const;

 private:
  void evict_over_budget_locked();

  const std::size_t byte_budget_;
  const std::string persist_dir_;

  mutable std::mutex mutex_;
  /// MRU at the front. The list owns the entry handles; the map indexes it.
  std::list<EntryPtr> lru_;
  std::unordered_map<GraphKey, typename std::list<EntryPtr>::iterator,
                     GraphKeyHash>
      index_;
  std::size_t bytes_ = 0;
  Stats stats_;
};

extern template class CacheEntry<float>;
extern template class CacheEntry<double>;
extern template class AdjacencyCache<float>;
extern template class AdjacencyCache<double>;

}  // namespace cbm::serve
