// SNAP-style edge-list I/O ("u<TAB>v" per line, '#' comments) — the format
// the paper's ca-AstroPh/ca-HepPh datasets ship in.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"

namespace cbm {

/// Reads an edge list into a square COO pattern (all values 1). Node count
/// is max id + 1 unless `num_nodes` > 0 forces a dimension. Accepts
/// whitespace-separated pairs; lines starting with '#' or '%' are comments.
CooMatrix<real_t> read_edge_list(std::istream& in, index_t num_nodes = 0);

/// File-path convenience; throws CbmError on missing files.
CooMatrix<real_t> read_edge_list_file(const std::string& path,
                                      index_t num_nodes = 0);

/// Writes one "u v" line per stored entry.
void write_edge_list(std::ostream& out, const CooMatrix<real_t>& coo);

}  // namespace cbm
