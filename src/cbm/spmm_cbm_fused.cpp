#include "cbm/spmm_cbm_fused.hpp"

#include <algorithm>
#include <cstdlib>

#include "cbm/update_kernels.hpp"
#include "common/cache_info.hpp"
#include "common/parallel.hpp"
#include "obs/obs.hpp"
#include "sparse/spmm.hpp"

namespace cbm {

namespace {

/// Traffic-reduction estimate for the metrics registry: the unfused update
/// stage re-reads and re-writes all of C; fusion keeps each tile resident,
/// so that second pass is served from cache. Attributed to DRAM when C
/// exceeds the LLC (the paper's large-graph regime) and to the LLC when C
/// only exceeds one core's L2.
void record_fused_metrics(std::size_t c_bytes, index_t tiles,
                          index_t tile_cols) {
  if (!obs::metrics_enabled()) return;
  const CacheInfo& cache = CacheInfo::host();
  obs::counter_add("cbm.fused.calls", 1);
  obs::counter_add("cbm.fused.tiles", tiles);
  obs::gauge_set("cbm.fused.tile_cols", static_cast<double>(tile_cols));
  const auto restream = static_cast<std::int64_t>(2 * c_bytes);
  if (c_bytes > cache.llc_bytes) {
    obs::counter_add("cbm.fused.est_dram_bytes_saved", restream);
  } else if (c_bytes > cache.l2_bytes) {
    obs::counter_add("cbm.fused.est_llc_bytes_saved", restream);
  }
}

}  // namespace

index_t cbm_fused_resolve_tile_cols(index_t rows, index_t bcols,
                                    std::size_t elem_bytes) {
  if (bcols <= 0) return 1;
  if (const char* env = std::getenv("CBM_TILE_COLS");
      env != nullptr && *env != '\0') {
    const int requested = std::atoi(env);
    CBM_CHECK(requested > 0, "CBM_TILE_COLS must be a positive integer");
    return std::min<index_t>(requested, bcols);
  }
  return fused_tile_cols(rows, bcols, elem_bytes, max_threads());
}

template <typename T>
void cbm_multiply_fused(const CompressionTree& tree, CbmKind kind,
                        std::span<const T> diag, const CsrMatrix<T>& delta,
                        const DenseMatrix<T>& b, DenseMatrix<T>& c,
                        index_t tile_cols) {
  CBM_CHECK(delta.cols() == b.rows(), "fused multiply: inner dims differ");
  CBM_CHECK(c.rows() == delta.rows() && c.cols() == b.cols(),
            "fused multiply: output shape mismatch");
  CBM_CHECK(c.rows() == tree.num_rows(), "fused multiply: tree row mismatch");
  CBM_CHECK(!cbm_kind_row_scaled(kind) ||
                diag.size() == static_cast<std::size_t>(tree.num_rows()),
            "fused multiply: missing diagonal for row-scaled kind");
  const index_t n = delta.rows();
  const index_t p = b.cols();
  if (n == 0 || p == 0) return;

  const index_t w =
      tile_cols > 0 ? std::min(tile_cols, p)
                    : cbm_fused_resolve_tile_cols(n, p, sizeof(T));
  const index_t ntiles = (p + w - 1) / w;
  CBM_SPAN("cbm.fused_stage");
  record_fused_metrics(static_cast<std::size_t>(n) *
                           static_cast<std::size_t>(p) * sizeof(T),
                       ntiles, w);

  const bool row_scaled = cbm_kind_row_scaled(kind);
  const int nth = max_threads();
  const auto& branches = tree.branches();

  if (ntiles >= static_cast<index_t>(nth) || nth == 1) {
    // Tile-per-thread mode: each tile is one sequential unit with the two
    // stages fused down to row granularity. Directly-stored rows (virtual
    // parent) have no dependencies, so they run first in ascending row
    // order — a sequential stream over the delta CSR, exactly like the
    // unfused kernel. Compressed rows follow in topological order, when
    // their parents are final. For the unscaled kinds the tree update then
    // vanishes into the accumulator seed: C_x starts from C_parent instead
    // of zero, so each row of C is touched in exactly one pass (the
    // two-stage engine re-reads and re-writes all of C in its update
    // stage). Row-scaled kinds keep the Eq. 6 fix-up, still applied while
    // the row is hot. No barriers anywhere; dynamic scheduling absorbs nnz
    // skew across tiles.
    const auto topo = tree.topological_order();
    const auto indptr = delta.indptr();
    const auto indices = delta.indices();
    const auto values = delta.values();
    const index_t vroot = tree.virtual_root();
#pragma omp parallel for schedule(dynamic)
    for (index_t t = 0; t < ntiles; ++t) {
      const index_t c0 = t * w;
      const index_t c1 = std::min<index_t>(c0 + w, p);
      const index_t width = c1 - c0;
      // Computes C_x = seed_scale·C_parent + av_scale·(Δ_x · B) over the
      // tile in a single pass. Eq. 6 folds in exactly: av_scale = d_x
      // distributes over the delta sum (one scalar multiply per nonzero,
      // hoisted out of the SIMD loop) and seed_scale = d_x/d_p covers the
      // parent term, so even the row-scaled kinds need no fix-up pass.
      const auto product_row = [&](index_t x, const T* __restrict__ prow,
                                   T seed_scale, T av_scale) {
        T* __restrict__ crow = c.row(x).data() + c0;
        offset_t k = indptr[x];
        const offset_t k_end = indptr[x + 1];
        // The seed is folded into the first delta nonzero so every pass over
        // the C row does real work: compressed rows typically hold only a
        // couple of delta nonzeros, so a dedicated seed pass would be a
        // sizeable share of their C-row traffic.
        if (k < k_end) {
          const T av = av_scale * values[k];
          const T* __restrict__ brow = b.row(indices[k]).data() + c0;
          if (prow != nullptr) {
#pragma omp simd
            for (index_t jj = 0; jj < width; ++jj) {
              crow[jj] = seed_scale * prow[jj] + av * brow[jj];
            }
          } else {
#pragma omp simd
            for (index_t jj = 0; jj < width; ++jj) crow[jj] = av * brow[jj];
          }
          ++k;
        } else if (prow != nullptr) {
          for (index_t jj = 0; jj < width; ++jj) {
            crow[jj] = seed_scale * prow[jj];
          }
        } else {
          for (index_t jj = 0; jj < width; ++jj) crow[jj] = T{0};
        }
        for (; k < k_end; ++k) {
          const T av = av_scale * values[k];
          const T* __restrict__ brow = b.row(indices[k]).data() + c0;
#pragma omp simd
          for (index_t jj = 0; jj < width; ++jj) crow[jj] += av * brow[jj];
        }
      };
      for (index_t x = 0; x < n; ++x) {
        if (tree.parent(x) != vroot) continue;
        product_row(x, nullptr, T{0}, row_scaled ? diag[x] : T{1});
      }
      for (const index_t x : topo) {
        const index_t par = tree.parent(x);
        if (par == vroot) continue;
        const T* prow = c.row(par).data() + c0;
        if (row_scaled) {
          product_row(x, prow, diag[x] / diag[par], diag[x]);
        } else {
          product_row(x, prow, T{1}, T{1});
        }
      }
    }
    return;
  }

  // Fewer tiles than threads (wide tiles): parallelize inside each tile —
  // nnz-balanced row ranges for the multiply, branches for the update. The
  // barrier between the two worksharing loops is tile-local, so the tile of
  // C never leaves cache between the stages.
  const auto bounds = nnz_balanced_bounds(delta, nth);
  const auto nparts = static_cast<std::int64_t>(bounds.size()) - 1;
  const auto nb = static_cast<std::int64_t>(branches.size());
#pragma omp parallel
  for (index_t t = 0; t < ntiles; ++t) {
    const index_t c0 = t * w;
    const index_t c1 = std::min<index_t>(c0 + w, p);
#pragma omp for schedule(static, 1)
    for (std::int64_t part = 0; part < nparts; ++part) {
      csr_spmm_range(delta, b, c, bounds[part], bounds[part + 1], c0, c1);
    }
    // Implicit barrier: the tile's multiply stage is complete here.
#pragma omp for schedule(dynamic)
    for (std::int64_t bi = 0; bi < nb; ++bi) {
      if (!row_scaled && branches[bi].size() == 1) continue;
      for (const index_t x : branches[bi]) {
        detail::update_row(tree, kind, diag, c, x,
                           static_cast<std::size_t>(c0),
                           static_cast<std::size_t>(c1 - c0));
      }
    }
  }
}

template void cbm_multiply_fused<float>(const CompressionTree&, CbmKind,
                                        std::span<const float>,
                                        const CsrMatrix<float>&,
                                        const DenseMatrix<float>&,
                                        DenseMatrix<float>&, index_t);
template void cbm_multiply_fused<double>(const CompressionTree&, CbmKind,
                                         std::span<const double>,
                                         const CsrMatrix<double>&,
                                         const DenseMatrix<double>&,
                                         DenseMatrix<double>&, index_t);

}  // namespace cbm
