// Tests for delta-matrix construction: worked example, reconstruction
// property (applying deltas down the tree reproduces every row), and the
// scaled (AD)' variant.
#include <gtest/gtest.h>

#include <vector>

#include "cbm/deltas.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

CsrMatrix<float> example_matrix() {
  // row0: {0,1}  row1: {0,1,2}  row2: {0,1,3}  row3: {2}
  CooMatrix<float> coo;
  coo.rows = 4;
  coo.cols = 4;
  for (const auto [i, j] :
       std::vector<std::pair<index_t, index_t>>{
           {0, 0}, {0, 1}, {1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 1}, {2, 3},
           {3, 2}}) {
    coo.push(i, j, 1.0f);
  }
  return CsrMatrix<float>::from_coo(coo);
}

TEST(Deltas, WorkedExample) {
  const auto a = example_matrix();
  // Tree: 0 and 3 attach to the virtual root (4); 1 and 2 compress against 0.
  const auto tree = CompressionTree::from_parents({4, 0, 0, 4});
  DeltaStats stats;
  const auto d = build_delta_matrix<float>(a, tree, {}, &stats);

  EXPECT_EQ(stats.total_nnz, 9);
  EXPECT_EQ(stats.total_deltas, 5);
  EXPECT_EQ(stats.saved, 4);

  // Row 0 copied verbatim (+1 at {0,1}).
  EXPECT_FLOAT_EQ(d.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(d.at(0, 1), 1.0f);
  EXPECT_EQ(d.row_nnz(0), 2);
  // Row 1 vs row 0: Δ⁺ = {2}.
  EXPECT_EQ(d.row_nnz(1), 1);
  EXPECT_FLOAT_EQ(d.at(1, 2), 1.0f);
  // Row 2 vs row 0: Δ⁺ = {3}.
  EXPECT_EQ(d.row_nnz(2), 1);
  EXPECT_FLOAT_EQ(d.at(2, 3), 1.0f);
  // Row 3 verbatim.
  EXPECT_EQ(d.row_nnz(3), 1);
  EXPECT_FLOAT_EQ(d.at(3, 2), 1.0f);
}

TEST(Deltas, NegativeDeltasEmitted) {
  // row1 = {0}; compressing against row0 = {0,1} needs Δ⁻ = {1}.
  CooMatrix<float> coo;
  coo.rows = 2;
  coo.cols = 2;
  coo.push(0, 0, 1.0f);
  coo.push(0, 1, 1.0f);
  coo.push(1, 0, 1.0f);
  const auto a = CsrMatrix<float>::from_coo(coo);
  const auto tree = CompressionTree::from_parents({2, 0});
  const auto d = build_delta_matrix<float>(a, tree, {});
  EXPECT_FLOAT_EQ(d.at(1, 1), -1.0f);
  EXPECT_EQ(d.row_nnz(1), 1);
}

/// Reconstructs every row by applying deltas along the tree in topological
/// order and compares with the original matrix — the defining Equation 2.
void expect_reconstruction(const CsrMatrix<float>& a,
                           const CompressionTree& tree) {
  const auto d = build_delta_matrix<float>(a, tree, {});
  const index_t n = a.rows();
  std::vector<std::vector<bool>> rows(
      n, std::vector<bool>(static_cast<std::size_t>(a.cols()), false));
  for (const index_t x : tree.topological_order()) {
    if (tree.parent(x) != tree.virtual_root()) {
      rows[x] = rows[tree.parent(x)];  // start from the reference row
    }
    const auto cols = d.row_indices(x);
    const auto vals = d.row_values(x);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      rows[x][cols[k]] = vals[k] > 0.0f;  // +1 sets, −1 clears
    }
  }
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(rows[i][j], a.at(i, j) != 0.0f) << "(" << i << "," << j << ")";
    }
  }
}

TEST(Deltas, ReconstructionOnChainTree) {
  const auto a = test::clustered_binary(30, 3, 8, 2, 11);
  // Chain: every row compresses against the previous one.
  std::vector<index_t> parent(30);
  parent[0] = 30;
  for (index_t x = 1; x < 30; ++x) parent[x] = x - 1;
  expect_reconstruction(a, CompressionTree::from_parents(parent));
}

TEST(Deltas, ReconstructionOnBushyTree) {
  const auto a = test::clustered_binary(40, 4, 10, 2, 13);
  // Group leaders attach to the root, members to their leader.
  std::vector<index_t> parent(40);
  for (index_t x = 0; x < 40; ++x) {
    parent[x] = x < 4 ? 40 : x % 4;
  }
  expect_reconstruction(a, CompressionTree::from_parents(parent));
}

TEST(Deltas, IdenticalRowsYieldZeroDeltas) {
  // Two identical rows: compressing one against the other stores nothing.
  CooMatrix<float> coo;
  coo.rows = 2;
  coo.cols = 4;
  for (const index_t j : {0, 2, 3}) {
    coo.push(0, j, 1.0f);
    coo.push(1, j, 1.0f);
  }
  CooMatrix<float> sq;
  sq.rows = 4;
  sq.cols = 4;
  for (std::size_t k = 0; k < coo.nnz(); ++k) {
    sq.push(coo.row_idx[k], coo.col_idx[k], 1.0f);
  }
  const auto a = CsrMatrix<float>::from_coo(sq);
  const auto tree = CompressionTree::from_parents({4, 0, 4, 4});
  DeltaStats stats;
  const auto d = build_delta_matrix<float>(a, tree, {}, &stats);
  EXPECT_EQ(d.row_nnz(1), 0);
  EXPECT_EQ(stats.total_deltas, stats.total_nnz - 3);
}

TEST(Deltas, ColumnScaledVariant) {
  const auto a = example_matrix();
  const auto tree = CompressionTree::from_parents({4, 0, 0, 4});
  const std::vector<float> d = {2.0f, 3.0f, 4.0f, 5.0f};
  const auto scaled =
      build_delta_matrix<float>(a, tree, std::span<const float>(d));
  const auto plain = build_delta_matrix<float>(a, tree, {});
  ASSERT_EQ(scaled.nnz(), plain.nnz());
  for (index_t i = 0; i < 4; ++i) {
    const auto cols = plain.row_indices(i);
    const auto pv = plain.row_values(i);
    const auto sv = scaled.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      EXPECT_FLOAT_EQ(sv[k], pv[k] * d[cols[k]]);
    }
  }
}

TEST(Deltas, ScaleLengthValidated) {
  const auto a = example_matrix();
  const auto tree = CompressionTree::from_parents({4, 0, 0, 4});
  const std::vector<float> bad = {1.0f, 2.0f};
  EXPECT_THROW(
      build_delta_matrix<float>(a, tree, std::span<const float>(bad)),
      CbmError);
}

TEST(Deltas, TreeSizeValidated) {
  const auto a = example_matrix();
  const auto tree = CompressionTree::from_parents({3, 0, 0});
  EXPECT_THROW(build_delta_matrix<float>(a, tree, {}), CbmError);
}

}  // namespace
}  // namespace cbm
