#include "cbm/spmm_cbm_fused.hpp"

#include <algorithm>

#include "cbm/update_kernels.hpp"
#include "common/cache_info.hpp"
#include "common/envknobs.hpp"
#include "common/parallel.hpp"
#include "common/vectorops.hpp"
#include "obs/obs.hpp"
#include "sparse/spmm.hpp"

namespace cbm {

namespace {

/// Traffic-reduction estimate for the metrics registry: the unfused update
/// stage re-reads and re-writes all of C; fusion keeps each tile resident,
/// so that second pass is served from cache. Attributed to DRAM when C
/// exceeds the LLC (the paper's large-graph regime) and to the LLC when C
/// only exceeds one core's L2.
void record_fused_metrics(std::size_t c_bytes, index_t tiles,
                          index_t tile_cols) {
  if (!obs::metrics_enabled()) return;
  const CacheInfo& cache = CacheInfo::host();
  obs::counter_add("cbm.fused.calls", 1);
  obs::counter_add("cbm.fused.tiles", tiles);
  obs::gauge_set("cbm.fused.tile_cols", static_cast<double>(tile_cols));
  const auto restream = static_cast<std::int64_t>(2 * c_bytes);
  if (c_bytes > cache.llc_bytes) {
    obs::counter_add("cbm.fused.est_dram_bytes_saved", restream);
  } else if (c_bytes > cache.l2_bytes) {
    obs::counter_add("cbm.fused.est_llc_bytes_saved", restream);
  }
}

}  // namespace

template <typename T>
FusedRowSchedule<T> build_fused_row_schedule(const CompressionTree& tree,
                                             CbmKind kind,
                                             std::span<const T> diag) {
  const bool row_scaled = cbm_kind_row_scaled(kind);
  const index_t n = tree.num_rows();
  const index_t vroot = tree.virtual_root();
  FusedRowSchedule<T> schedule;
  schedule.order.reserve(static_cast<std::size_t>(n));
  schedule.parents.reserve(static_cast<std::size_t>(n));
  schedule.seed_scales.reserve(static_cast<std::size_t>(n));
  schedule.av_scales.reserve(static_cast<std::size_t>(n));
  // Directly-stored rows first (no dependencies — a sequential stream over
  // the delta CSR), then compressed rows in topological order so every
  // parent row is final before a child seeds from it.
  for (index_t x = 0; x < n; ++x) {
    if (tree.parent(x) != vroot) continue;
    schedule.order.push_back(x);
    schedule.parents.push_back(index_t{-1});
    schedule.seed_scales.push_back(T{0});
    schedule.av_scales.push_back(row_scaled ? diag[x] : T{1});
  }
  for (const index_t x : tree.topological_order()) {
    const index_t par = tree.parent(x);
    if (par == vroot) continue;
    schedule.order.push_back(x);
    schedule.parents.push_back(par);
    schedule.seed_scales.push_back(row_scaled ? diag[x] / diag[par] : T{1});
    schedule.av_scales.push_back(row_scaled ? diag[x] : T{1});
  }
  return schedule;
}

index_t cbm_fused_resolve_tile_cols(index_t rows, index_t bcols,
                                    std::size_t elem_bytes) {
  if (bcols <= 0) return 1;
  if (const auto requested = env_tile_cols()) {
    return std::min<index_t>(*requested, bcols);
  }
  return fused_tile_cols(rows, bcols, elem_bytes, max_threads());
}

template <typename T>
void cbm_multiply_fused(const CompressionTree& tree, CbmKind kind,
                        std::span<const T> diag, const CsrMatrix<T>& delta,
                        const DenseMatrix<T>& b, DenseMatrix<T>& c,
                        index_t tile_cols, const FusedRowSchedule<T>* schedule) {
  CBM_CHECK(delta.cols() == b.rows(), "fused multiply: inner dims differ");
  CBM_CHECK(c.rows() == delta.rows() && c.cols() == b.cols(),
            "fused multiply: output shape mismatch");
  CBM_CHECK(c.rows() == tree.num_rows(), "fused multiply: tree row mismatch");
  CBM_CHECK(!cbm_kind_row_scaled(kind) ||
                diag.size() == static_cast<std::size_t>(tree.num_rows()),
            "fused multiply: missing diagonal for row-scaled kind");
  const index_t n = delta.rows();
  const index_t p = b.cols();
  if (n == 0 || p == 0) return;

  const index_t w =
      tile_cols > 0 ? std::min(tile_cols, p)
                    : cbm_fused_resolve_tile_cols(n, p, sizeof(T));
  const index_t ntiles = (p + w - 1) / w;
  CBM_SPAN("cbm.fused_stage");
  record_fused_metrics(static_cast<std::size_t>(n) *
                           static_cast<std::size_t>(p) * sizeof(T),
                       ntiles, w);

  const bool row_scaled = cbm_kind_row_scaled(kind);
  const int nth = max_threads();
  const auto& branches = tree.branches();

  if (ntiles >= static_cast<index_t>(nth) || nth == 1) {
    // Tile-per-thread mode: each tile is one sequential unit with the two
    // stages fused down to row granularity. Directly-stored rows (virtual
    // parent) have no dependencies, so they run first in ascending row
    // order — a sequential stream over the delta CSR, exactly like the
    // unfused kernel. Compressed rows follow in topological order, when
    // their parents are final. For the unscaled kinds the tree update then
    // vanishes into the accumulator seed: C_x starts from C_parent instead
    // of zero, so each row of C is touched in exactly one pass (the
    // two-stage engine re-reads and re-writes all of C in its update
    // stage). Row-scaled kinds keep the Eq. 6 fix-up, still applied while
    // the row is hot. No barriers anywhere; dynamic scheduling absorbs nnz
    // skew across tiles.
    const auto indptr = delta.indptr();
    const auto indices = delta.indices();
    const auto values = delta.values();
    const auto& kern = simd::kernels<T>();
    const auto ldb = static_cast<std::size_t>(b.cols());
    const auto ldc = static_cast<std::size_t>(c.cols());
    // The batched kernel computes, per scheduled row,
    //   C_x = seed_scale·C_parent + av_scale·(Δ_x · B)
    // over the tile in a single pass, with the row panel held in registers:
    // each element of C_x is written exactly once. Eq. 6 folds in exactly:
    // av_scale = d_x distributes over the delta sum (one scalar multiply per
    // nonzero, hoisted into the broadcast) and seed_scale = d_x/d_p covers
    // the parent term, so even the row-scaled kinds need no fix-up pass.
    // The whole per-tile loop runs inside the dispatched translation unit —
    // one indirect call per tile, not one per row.
    FusedRowSchedule<T> local;
    if (schedule == nullptr) {
      local = build_fused_row_schedule(tree, kind, diag);
      schedule = &local;
    }
#pragma omp parallel for schedule(dynamic)
    for (index_t t = 0; t < ntiles; ++t) {
      const index_t c0 = t * w;
      const index_t c1 = std::min<index_t>(c0 + w, p);
      const index_t width = c1 - c0;
      kern.fused_rows(b.data() + c0, ldb, indices.data(), values.data(),
                      indptr.data(), schedule->order.data(),
                      schedule->parents.data(), schedule->seed_scales.data(),
                      schedule->av_scales.data(), schedule->order.size(),
                      c.data() + c0, ldc, width);
    }
    return;
  }

  // Fewer tiles than threads (wide tiles): parallelize inside each tile —
  // nnz-balanced row ranges for the multiply, branches for the update. The
  // barrier between the two worksharing loops is tile-local, so the tile of
  // C never leaves cache between the stages.
  const auto bounds = nnz_balanced_bounds(delta, nth);
  const auto nparts = static_cast<std::int64_t>(bounds.size()) - 1;
  const auto nb = static_cast<std::int64_t>(branches.size());
#pragma omp parallel
  for (index_t t = 0; t < ntiles; ++t) {
    const index_t c0 = t * w;
    const index_t c1 = std::min<index_t>(c0 + w, p);
#pragma omp for schedule(static, 1)
    for (std::int64_t part = 0; part < nparts; ++part) {
      csr_spmm_range(delta, b, c, bounds[part], bounds[part + 1], c0, c1);
    }
    // Implicit barrier: the tile's multiply stage is complete here.
#pragma omp for schedule(dynamic)
    for (std::int64_t bi = 0; bi < nb; ++bi) {
      if (!row_scaled && branches[bi].size() == 1) continue;
      for (const index_t x : branches[bi]) {
        detail::update_row(tree, kind, diag, c, x,
                           static_cast<std::size_t>(c0),
                           static_cast<std::size_t>(c1 - c0));
      }
    }
  }
}

template <typename T>
void cbm_multiply_fused_columns(const CompressionTree& tree, CbmKind kind,
                                std::span<const T> diag,
                                const CsrMatrix<T>& delta,
                                const DenseMatrix<T>& b, DenseMatrix<T>& c,
                                index_t col0, index_t col1,
                                const FusedRowSchedule<T>* schedule) {
  CBM_CHECK(delta.cols() == b.rows(), "fused panel: inner dims differ");
  CBM_CHECK(c.rows() == delta.rows() && c.cols() == b.cols(),
            "fused panel: output shape mismatch");
  CBM_CHECK(c.rows() == tree.num_rows(), "fused panel: tree row mismatch");
  CBM_CHECK(col0 >= 0 && col0 <= col1 && col1 <= b.cols(),
            "fused panel: column range out of bounds");
  CBM_CHECK(!cbm_kind_row_scaled(kind) ||
                diag.size() == static_cast<std::size_t>(tree.num_rows()),
            "fused panel: missing diagonal for row-scaled kind");
  if (delta.rows() == 0 || col1 == col0) return;
  FusedRowSchedule<T> local;
  if (schedule == nullptr) {
    local = build_fused_row_schedule(tree, kind, diag);
    schedule = &local;
  }
  const auto& kern = simd::kernels<T>();
  kern.fused_rows(b.data() + col0, static_cast<std::size_t>(b.cols()),
                  delta.indices().data(), delta.values().data(),
                  delta.indptr().data(), schedule->order.data(),
                  schedule->parents.data(), schedule->seed_scales.data(),
                  schedule->av_scales.data(), schedule->order.size(),
                  c.data() + col0, static_cast<std::size_t>(c.cols()),
                  col1 - col0);
}

template struct FusedRowSchedule<float>;
template struct FusedRowSchedule<double>;
template FusedRowSchedule<float> build_fused_row_schedule<float>(
    const CompressionTree&, CbmKind, std::span<const float>);
template FusedRowSchedule<double> build_fused_row_schedule<double>(
    const CompressionTree&, CbmKind, std::span<const double>);
template void cbm_multiply_fused<float>(
    const CompressionTree&, CbmKind, std::span<const float>,
    const CsrMatrix<float>&, const DenseMatrix<float>&, DenseMatrix<float>&,
    index_t, const FusedRowSchedule<float>*);
template void cbm_multiply_fused<double>(
    const CompressionTree&, CbmKind, std::span<const double>,
    const CsrMatrix<double>&, const DenseMatrix<double>&, DenseMatrix<double>&,
    index_t, const FusedRowSchedule<double>*);
template void cbm_multiply_fused_columns<float>(
    const CompressionTree&, CbmKind, std::span<const float>,
    const CsrMatrix<float>&, const DenseMatrix<float>&, DenseMatrix<float>&,
    index_t, index_t, const FusedRowSchedule<float>*);
template void cbm_multiply_fused_columns<double>(
    const CompressionTree&, CbmKind, std::span<const double>,
    const CsrMatrix<double>&, const DenseMatrix<double>&, DenseMatrix<double>&,
    index_t, index_t, const FusedRowSchedule<double>*);

}  // namespace cbm
