// Kernel-level micro-benchmarks (google-benchmark): CSR SpMM scheduling
// strategies, COO vs CSR, dense GEMM, and the CBM multiply/update split.
// These expose where the CBM speedup comes from (less multiply-stage work)
// and what it costs (the update-stage sweep).
#include <benchmark/benchmark.h>

#include "bench_util/datasets.hpp"
#include "bench_util/env.hpp"
#include "bench_util/report.hpp"
#include "cbm/cbm_matrix.hpp"
#include "cbm/spmm_cbm.hpp"
#include "common/rng.hpp"
#include "dense/gemm.hpp"
#include "graph/generators.hpp"
#include "sparse/spmm.hpp"

namespace {

using namespace cbm;

constexpr index_t kCols = 64;

/// Shared fixtures, built once.
struct Fixture {
  Graph graph;
  DenseMatrix<real_t> b;
  DenseMatrix<real_t> c;
  CbmMatrix<real_t> cbm;

  Fixture()
      : graph(community_graph(
            {.num_nodes = 8000, .team_min = 24, .team_max = 120,
             .size_exponent = 1.8, .intra_prob = 1.0, .cross_per_node = 2.0},
            0xF17ull)),
        b(graph.num_nodes(), kCols),
        c(graph.num_nodes(), kCols),
        cbm(CbmMatrix<real_t>::compress(graph.adjacency(), {.alpha = 8})) {
    Rng rng(1);
    b.fill_uniform(rng);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_CsrSpmm_RowStatic(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    csr_spmm(f.graph.adjacency(), f.b, f.c, SpmmSchedule::kRowStatic);
    benchmark::DoNotOptimize(f.c.data());
  }
  state.SetItemsProcessed(state.iterations() * f.graph.adjacency().nnz());
}
BENCHMARK(BM_CsrSpmm_RowStatic);

void BM_CsrSpmm_RowDynamic(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    csr_spmm(f.graph.adjacency(), f.b, f.c, SpmmSchedule::kRowDynamic);
    benchmark::DoNotOptimize(f.c.data());
  }
  state.SetItemsProcessed(state.iterations() * f.graph.adjacency().nnz());
}
BENCHMARK(BM_CsrSpmm_RowDynamic);

void BM_CsrSpmm_NnzBalanced(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    csr_spmm(f.graph.adjacency(), f.b, f.c, SpmmSchedule::kNnzBalanced);
    benchmark::DoNotOptimize(f.c.data());
  }
  state.SetItemsProcessed(state.iterations() * f.graph.adjacency().nnz());
}
BENCHMARK(BM_CsrSpmm_NnzBalanced);

void BM_CooSpmm(benchmark::State& state) {
  auto& f = fixture();
  const auto coo = f.graph.adjacency().to_coo();
  for (auto _ : state) {
    coo_spmm(coo, f.b, f.c);
    benchmark::DoNotOptimize(f.c.data());
  }
}
BENCHMARK(BM_CooSpmm);

void BM_CbmMultiplyTotal(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    f.cbm.multiply(f.b, f.c);
    benchmark::DoNotOptimize(f.c.data());
  }
  state.SetItemsProcessed(state.iterations() * f.cbm.delta_matrix().nnz());
}
BENCHMARK(BM_CbmMultiplyTotal);

void BM_CbmMultiplyStageOnly(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    csr_spmm(f.cbm.delta_matrix(), f.b, f.c);
    benchmark::DoNotOptimize(f.c.data());
  }
  state.SetItemsProcessed(state.iterations() * f.cbm.delta_matrix().nnz());
}
BENCHMARK(BM_CbmMultiplyStageOnly);

void BM_CbmUpdateStageOnly(benchmark::State& state) {
  auto& f = fixture();
  csr_spmm(f.cbm.delta_matrix(), f.b, f.c);
  for (auto _ : state) {
    cbm_update_stage<real_t>(f.cbm.tree(), f.cbm.kind(), {}, f.c,
                             UpdateSchedule::kBranchDynamic);
    benchmark::DoNotOptimize(f.c.data());
  }
}
BENCHMARK(BM_CbmUpdateStageOnly);

void BM_DenseGemm(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  DenseMatrix<real_t> a(n, n), b(n, n), c(n, n);
  Rng rng(2);
  a.fill_uniform(rng);
  b.fill_uniform(rng);
  for (auto _ : state) {
    gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2ull * n * n * n);
}
BENCHMARK(BM_DenseGemm)->Arg(128)->Arg(256);

void BM_CbmCompression(benchmark::State& state) {
  auto& f = fixture();
  const int alpha = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto m = CbmMatrix<real_t>::compress(f.graph.adjacency(), {.alpha = alpha});
    benchmark::DoNotOptimize(m.bytes());
  }
}
BENCHMARK(BM_CbmCompression)->Arg(0)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

/// Console reporter that also mirrors per-run real time (seconds/iteration)
/// into a BenchReport, so CBM_BENCH_JSON works here like in the table benches.
class ReportingReporter : public benchmark::ConsoleReporter {
 public:
  explicit ReportingReporter(BenchReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration ||
          run.iterations <= 0) {
        continue;
      }
      report_.add_scalar(
          run.benchmark_name(),
          run.real_accumulated_time / static_cast<double>(run.iterations),
          {{"iterations", std::to_string(run.iterations)}});
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReport& report_;
};

}  // namespace

// Custom main (instead of BENCHMARK_MAIN) so the binary can emit the shared
// CBM_BENCH_JSON document alongside google-benchmark's own console output.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  cbm::BenchReport report("ablation_spmm", cbm::BenchConfig::from_env());
  ReportingReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
