// Graph Convolutional Network (Kipf & Welling) — the paper's motivating
// application (§II, Eq. 1):
//     out = Â · σ(Â · X · W⁰) · W¹,  Â = D^{-1/2}(A+I)D^{-1/2}.
//
// The adjacency operand is abstracted so the same model runs with Â in CSR
// (baseline) or CBM form (the Table IV experiment).
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "gnn/adjacency_op.hpp"

namespace cbm {

/// One GCN layer: H' = Â · (H · W) [+ bias].
template <typename T>
class GcnLayer {
 public:
  /// Glorot/Xavier-uniform initialised weights in_features × out_features.
  GcnLayer(index_t in_features, index_t out_features, Rng& rng,
           bool with_bias = false);

  /// Explicit weights (tests).
  GcnLayer(DenseMatrix<T> weight, std::vector<T> bias);

  /// Forward: writes Â·(H·W)+b into `out` (pre-shaped n × out_features).
  /// `scratch` must be n × out_features as well; reused across calls so the
  /// layer itself performs no allocation in steady state.
  void forward(const AdjacencyOp<T>& adj, const DenseMatrix<T>& h,
               DenseMatrix<T>& scratch, DenseMatrix<T>& out) const;

  [[nodiscard]] index_t in_features() const { return weight_.rows(); }
  [[nodiscard]] index_t out_features() const { return weight_.cols(); }
  [[nodiscard]] const DenseMatrix<T>& weight() const { return weight_; }
  [[nodiscard]] DenseMatrix<T>& weight_mut() { return weight_; }

 private:
  DenseMatrix<T> weight_;
  std::vector<T> bias_;  // empty = no bias
};

/// The paper's two-layer GCN (Eq. 1): layer → ReLU → layer.
template <typename T>
class Gcn2 {
 public:
  /// feature_dim → hidden_dim → out_dim. The paper's Table IV configuration
  /// is 500 → 500 → 500.
  Gcn2(index_t feature_dim, index_t hidden_dim, index_t out_dim,
       std::uint64_t seed);

  /// Inference. `x` is n × feature_dim; result is n × out_dim. Scratch
  /// buffers live in the caller-provided workspace to keep the hot path
  /// allocation-free across repetitions (benchmark protocol).
  struct Workspace {
    DenseMatrix<T> xw;      ///< n × hidden: X·W⁰
    DenseMatrix<T> h1;      ///< n × hidden: Â·(X·W⁰), then σ in place
    DenseMatrix<T> hw;      ///< n × out: H1·W¹
    Workspace(index_t n, index_t hidden, index_t out)
        : xw(n, hidden), h1(n, hidden), hw(n, out) {}
  };

  void forward(const AdjacencyOp<T>& adj, const DenseMatrix<T>& x,
               Workspace& ws, DenseMatrix<T>& out) const;

  [[nodiscard]] const GcnLayer<T>& layer0() const { return l0_; }
  [[nodiscard]] const GcnLayer<T>& layer1() const { return l1_; }
  [[nodiscard]] GcnLayer<T>& layer0_mut() { return l0_; }
  [[nodiscard]] GcnLayer<T>& layer1_mut() { return l1_; }

 private:
  GcnLayer<T> l0_;
  GcnLayer<T> l1_;
};

/// Deep GCN: an arbitrary stack of GCN layers with ReLU between them (none
/// after the last). Generalises Gcn2 to the multi-layer architectures the
/// paper's §II motivates — every layer contributes one Â·(H·W) product that
/// the CBM operand accelerates.
template <typename T>
class GcnStack {
 public:
  /// dims = {feature_dim, hidden_1, ..., out_dim}; at least 2 entries.
  GcnStack(const std::vector<index_t>& dims, std::uint64_t seed);

  /// Per-layer activation/scratch buffers (allocated once, reused).
  struct Workspace {
    std::vector<DenseMatrix<T>> scratch;  ///< H·Wᵢ per layer
    std::vector<DenseMatrix<T>> act;      ///< Â·(H·Wᵢ) for layers 0..L-2
    Workspace(index_t n, const std::vector<index_t>& dims);
  };

  /// Inference: x is n × dims.front(); out is n × dims.back().
  void forward(const AdjacencyOp<T>& adj, const DenseMatrix<T>& x,
               Workspace& ws, DenseMatrix<T>& out) const;

  [[nodiscard]] std::size_t num_layers() const { return layers_.size(); }
  [[nodiscard]] const GcnLayer<T>& layer(std::size_t i) const {
    return layers_[i];
  }

 private:
  std::vector<GcnLayer<T>> layers_;
};

extern template class GcnLayer<float>;
extern template class GcnLayer<double>;
extern template class Gcn2<float>;
extern template class Gcn2<double>;
extern template class GcnStack<float>;
extern template class GcnStack<double>;

}  // namespace cbm
