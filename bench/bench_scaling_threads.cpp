// Thread-scaling study backing the §VI-E cache discussion: CSR vs CBM AX
// across thread counts, on one well-compressed and one poorly-compressed
// graph. A second series times the partitioned format under both part
// executors (CBM_PART_EXEC=serial | taskgraph) so the cross-part task-graph
// fan-out's scaling shows up next to the monolithic engines.
#include <cstdlib>

#include "bench_common.hpp"
#include "cbm/partitioned.hpp"

int main() {
  using namespace cbm;
  using namespace cbm::bench;
  const auto config = BenchConfig::from_env();
  print_bench_header(config, "Thread scaling — CSR vs CBM (AX)");
  BenchReport report("scaling_threads", config);

  TablePrinter table({"Graph", "Threads", "T_CSR [s]", "T_CBM [s]", "Speedup",
                      "CSR scaling", "CBM scaling"});
  TablePrinter part_table({"Graph", "Threads", "T_serial [s]",
                           "T_taskgraph [s]", "TG speedup", "TG scaling"});
  for (const std::string name : {"pubmed", "collab"}) {
    const auto& spec = dataset_spec(name);
    const Graph g = load_dataset(spec, config);
    const auto b = make_dense_operand<real_t>(g.num_nodes(), config.cols);
    const auto pair =
        make_operands<real_t>(g, Workload::kAX, spec.paper_best_alpha_par);

    double csr_base = 0.0, cbm_base = 0.0;
    for (int threads = 1; threads <= config.threads; ++threads) {
      ThreadScope scope(threads);
      const auto r = time_pair(pair, b, config,
                               threads == 1 ? UpdateSchedule::kSequential
                                            : UpdateSchedule::kBranchDynamic);
      if (threads == 1) {
        csr_base = r.csr.mean();
        cbm_base = r.cbm.mean();
      }
      const std::vector<std::pair<std::string, std::string>> labels = {
          {"graph", name}, {"threads", std::to_string(threads)}};
      report.add("csr_seconds", r.csr, labels, r.csr_hw);
      report.add("cbm_seconds", r.cbm, labels, r.cbm_hw);
      table.add_row({name, std::to_string(threads), fmt_seconds(r.csr.mean()),
                     fmt_seconds(r.cbm.mean()), fmt_double(r.speedup(), 2),
                     fmt_double(csr_base / r.csr.mean(), 2),
                     fmt_double(cbm_base / r.cbm.mean(), 2)});
    }

    // Partitioned series: same graph, both executors, same thread ladder.
    PartitionedOptions options;
    options.base.alpha = spec.paper_best_alpha_par;
    options.num_clusters = 8;
    auto part = PartitionedCbmMatrix<real_t>::compress(g.adjacency(), options);
    DenseMatrix<real_t> c(g.num_nodes(), config.cols);
    double tg_base = 0.0;
    for (int threads = 1; threads <= config.threads; ++threads) {
      ThreadScope scope(threads);
      const std::vector<std::pair<std::string, std::string>> labels = {
          {"graph", name}, {"threads", std::to_string(threads)}};
      HwBlock hw[2];
      RunStats stats[2];
      int slot = 0;
      for (const char* exec_mode : {"serial", "taskgraph"}) {
        setenv("CBM_PART_EXEC", exec_mode, 1);
        const auto timed = time_repetitions_hw(
            [&] { part.multiply(b, c); }, config.reps, config.warmup);
        stats[slot] = timed.stats;
        hw[slot] = HwBlock::from(
            timed, 0.0, 0.0, static_cast<double>(g.adjacency().nnz()));
        auto tagged = labels;
        tagged.emplace_back("part_exec", exec_mode);
        report.add("partitioned_seconds", timed.stats, tagged, hw[slot]);
        ++slot;
      }
      unsetenv("CBM_PART_EXEC");
      if (threads == 1) tg_base = stats[1].mean();
      part_table.add_row(
          {name, std::to_string(threads), fmt_seconds(stats[0].mean()),
           fmt_seconds(stats[1].mean()),
           fmt_double(stats[0].mean() / std::max(stats[1].mean(), 1e-12), 2),
           fmt_double(tg_base / std::max(stats[1].mean(), 1e-12), 2)});
    }
  }
  table.print();
  std::cout << "\nPartitioned (8 parts) — serial vs task-graph executor\n";
  part_table.print();
  return 0;
}
