// Serving-layer tests: graph fingerprints, the adjacency cache (LRU /
// byte-budget / persistence / collision safety), the block-diagonal batch
// packer against per-graph oracles, the SPSC ring, and the end-to-end
// ServeContext pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <future>
#include <vector>

#include "obs/obs.hpp"
#include "dense/ops.hpp"
#include "serve/batch.hpp"
#include "serve/cache.hpp"
#include "serve/fingerprint.hpp"
#include "serve/serve.hpp"
#include "serve/spsc_queue.hpp"
#include "sparse/scale.hpp"
#include "sparse/spmm.hpp"
#include "test_util.hpp"

namespace cbm::serve {
namespace {

using test::auto_seed;
using test::seed_trace;

/// Undirected ring: node i <-> i±1 (mod n), no self-loops, binary, sorted.
CsrMatrix<float> ring_graph(index_t n) {
  std::vector<offset_t> indptr{0};
  std::vector<index_t> indices;
  std::vector<float> values;
  for (index_t i = 0; i < n; ++i) {
    std::vector<index_t> nbrs{static_cast<index_t>((i + n - 1) % n),
                              static_cast<index_t>((i + 1) % n)};
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    for (index_t j : nbrs) {
      if (j == i) continue;
      indices.push_back(j);
      values.push_back(1.0f);
    }
    indptr.push_back(static_cast<offset_t>(indices.size()));
  }
  return {n, n, std::move(indptr), std::move(indices), std::move(values)};
}

/// Scratch directory for persistence tests, unique per test case.
std::string scratch_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "cbm_serve_" + info->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------- fingerprint

TEST(Fingerprint, DistinguishesContentAndMatchesItself) {
  const auto a = test::clustered_binary(64, 4, 6, 2, auto_seed());
  const auto b = test::clustered_binary(64, 4, 6, 2, auto_seed(1));
  EXPECT_EQ(graph_fingerprint(a), graph_fingerprint(a));
  EXPECT_NE(graph_fingerprint(a), graph_fingerprint(b));
}

TEST(Fingerprint, KeyEqualityCoversRecipe) {
  const auto a = test::clustered_binary(32, 4, 5, 1, auto_seed());
  const GraphKey plain = make_graph_key(a, 0, 0);
  GraphKey scaled = make_graph_key(a, 2, 0);
  GraphKey pruned = make_graph_key(a, 0, 2);
  EXPECT_EQ(plain.fingerprint, scaled.fingerprint);
  EXPECT_FALSE(plain == scaled);  // kind differs
  EXPECT_FALSE(plain == pruned);  // alpha differs
}

// ---------------------------------------------------------------------- ring

TEST(SpscRing, FifoAndCapacity) {
  SpscRing<int> ring(3);  // rounds up to 4
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));  // empty
  // Wrap-around keeps working after the cursors pass the capacity.
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(ring.try_push(round));
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, round);
  }
}

// --------------------------------------------------------------------- cache

TEST(AdjacencyCache, HitReturnsSharedEntry) {
  const auto a = test::clustered_binary(64, 4, 6, 2, auto_seed());
  const GraphKey key = make_graph_key(a, 0, 0);
  AdjacencyCache<float> cache(std::size_t{64} << 20);
  EXPECT_EQ(cache.lookup(key), nullptr);
  auto inserted = cache.insert(key, CbmMatrix<float>::compress(a));
  ASSERT_NE(inserted, nullptr);
  EXPECT_EQ(cache.lookup(key).get(), inserted.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(AdjacencyCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  const auto a = test::clustered_binary(128, 4, 8, 2, auto_seed());
  const auto b = test::clustered_binary(128, 4, 8, 2, auto_seed(1));
  const auto c = test::clustered_binary(128, 4, 8, 2, auto_seed(2));
  auto cbm_a = CbmMatrix<float>::compress(a);
  auto cbm_b = CbmMatrix<float>::compress(b);
  auto cbm_c = CbmMatrix<float>::compress(c);
  // Budget fits two of the three entries.
  const std::size_t budget =
      cbm_a.bytes() + cbm_b.bytes() + cbm_c.bytes() / 2;
  AdjacencyCache<float> cache(budget);
  const GraphKey ka = make_graph_key(a, 0, 0);
  const GraphKey kb = make_graph_key(b, 0, 0);
  const GraphKey kc = make_graph_key(c, 0, 0);
  cache.insert(ka, std::move(cbm_a));
  cache.insert(kb, std::move(cbm_b));
  EXPECT_NE(cache.lookup(ka), nullptr);  // touch A: B becomes LRU
  cache.insert(kc, std::move(cbm_c));    // over budget: evicts B
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_NE(cache.lookup(ka), nullptr);
  EXPECT_NE(cache.lookup(kc), nullptr);
  EXPECT_EQ(cache.lookup(kb), nullptr);
  EXPECT_LE(cache.stats().bytes, budget);
}

TEST(AdjacencyCache, FingerprintCollisionResolvesToMiss) {
  const auto a = test::clustered_binary(64, 4, 6, 2, auto_seed());
  const GraphKey key = make_graph_key(a, 0, 0);
  AdjacencyCache<float> cache(std::size_t{64} << 20);
  cache.insert(key, CbmMatrix<float>::compress(a));
  // A hostile twin: same 64-bit fingerprint, different structure. Full-field
  // equality must refuse to serve the resident entry for it.
  GraphKey collider = key;
  collider.nnz = key.nnz + 1;
  EXPECT_EQ(cache.lookup(collider), nullptr);
  GraphKey reshaped = key;
  reshaped.rows = key.rows + 1;
  EXPECT_EQ(cache.lookup(reshaped), nullptr);
  EXPECT_NE(cache.lookup(key), nullptr);
}

TEST(AdjacencyCache, PersistsAcrossInstances) {
  const std::string dir = scratch_dir();
  const auto a = test::clustered_binary(96, 4, 7, 2, auto_seed());
  const GraphKey key = make_graph_key(a, 0, 0);
  {
    AdjacencyCache<float> warm(std::size_t{64} << 20, dir);
    warm.insert(key, CbmMatrix<float>::compress(a));
    EXPECT_TRUE(std::filesystem::exists(warm.entry_path(key)));
  }
  // A fresh cache (fresh process, conceptually) finds the entry on disk and
  // the loaded matrix still multiplies correctly.
  AdjacencyCache<float> cold(std::size_t{64} << 20, dir);
  auto entry = cold.lookup(key);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(cold.stats().disk_hits, 1u);
  EXPECT_EQ(cold.stats().misses, 0u);
  const auto b = test::random_dense<float>(96, 8, auto_seed(1));
  DenseMatrix<float> got(96, 8), want(96, 8);
  entry->cbm().multiply(b, got);
  csr_spmm(a, b, want);
  EXPECT_TRUE(allclose(got, want, 1e-4f, 1e-5f));
  std::filesystem::remove_all(dir);
}

TEST(AdjacencyCache, PlanMemoisationResolvesOnce) {
  const auto a = test::clustered_binary(64, 4, 6, 2, auto_seed());
  CacheEntry<float> entry(make_graph_key(a, 0, 0),
                          CbmMatrix<float>::compress(a));
  int resolves = 0;
  const auto resolve = [&](const CbmMatrix<float>&) {
    ++resolves;
    return MultiplySchedule{};
  };
  entry.plan_for(8, resolve);
  entry.plan_for(8, resolve);
  entry.plan_for(16, resolve);
  EXPECT_EQ(resolves, 2);  // one per distinct operand width
  EXPECT_EQ(entry.plans_resolved(), 2u);
}

// -------------------------------------------------------------------- packer

TEST(BatchPacker, RejectsEmptyBatch) {
  EXPECT_THROW(pack_batch(std::span<const BatchItem<float>>{}), CbmError);
}

TEST(BatchPacker, RejectsMixedFeatureWidths) {
  const auto a = test::clustered_binary(32, 4, 5, 1, auto_seed());
  const auto cbm = CbmMatrix<float>::compress(a);
  const auto b8 = test::random_dense<float>(32, 8, auto_seed(1));
  const auto b16 = test::random_dense<float>(32, 16, auto_seed(2));
  const std::vector<BatchItem<float>> items{{&cbm, &b8}, {&cbm, &b16}};
  try {
    pack_batch(std::span<const BatchItem<float>>(items));
    FAIL() << "expected CbmError";
  } catch (const CbmError& e) {
    EXPECT_NE(std::string(e.what()).find("mixed feature widths"),
              std::string::npos)
        << e.what();
  }
}

TEST(BatchPacker, RejectsMixedKinds) {
  const auto a = test::clustered_binary(32, 4, 5, 1, auto_seed());
  const auto diag = test::random_diagonal<float>(32, auto_seed(1));
  const auto plain = CbmMatrix<float>::compress(a);
  const auto scaled = CbmMatrix<float>::compress_scaled(
      a, diag, CbmKind::kSymScaled);
  const auto b = test::random_dense<float>(32, 8, auto_seed(2));
  const std::vector<BatchItem<float>> items{{&plain, &b}, {&scaled, &b}};
  EXPECT_THROW(pack_batch(std::span<const BatchItem<float>>(items)), CbmError);
}

TEST(BatchPacker, PacksSingleNodeGraph) {
  // A 1x1 adjacency [[1]]: the smallest legal graph must pack (its one row
  // parents to the global virtual root).
  CsrMatrix<float> one(1, 1, {0, 1}, {0}, {1.0f});
  const auto cbm = CbmMatrix<float>::compress(one);
  const auto b = test::random_dense<float>(1, 4, auto_seed());
  const std::vector<BatchItem<float>> items{{&cbm, &b}, {&cbm, &b}};
  const auto packed = pack_batch(std::span<const BatchItem<float>>(items));
  EXPECT_EQ(packed.cbm.rows(), 2);
  EXPECT_EQ(packed.features.rows(), 2);
  DenseMatrix<float> out(2, 4);
  packed.cbm.multiply(packed.features, out);
  for (index_t j = 0; j < 4; ++j) {
    EXPECT_FLOAT_EQ(out(0, j), b(0, j));
    EXPECT_FLOAT_EQ(out(1, j), b(0, j));
  }
}

TEST(BatchPacker, BlockDiagonalMatchesPerGraphMultiplies) {
  const std::uint64_t seed = auto_seed();
  SCOPED_TRACE(seed_trace(seed));
  const index_t sizes[] = {48, 1, 96, 17};
  std::vector<CsrMatrix<float>> graphs;
  std::vector<CbmMatrix<float>> cbms;
  std::vector<DenseMatrix<float>> feats;
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    const index_t n = sizes[i];
    graphs.push_back(n == 1 ? CsrMatrix<float>(1, 1, {0, 1}, {0}, {1.0f})
                            : test::clustered_binary(n, 4, 6, 2, seed + i));
    cbms.push_back(CbmMatrix<float>::compress(graphs.back()));
    feats.push_back(test::random_dense<float>(n, 8, seed + 100 + i));
  }
  std::vector<BatchItem<float>> items;
  for (std::size_t i = 0; i < cbms.size(); ++i) {
    items.push_back({&cbms[i], &feats[i]});
  }
  const auto packed = pack_batch(std::span<const BatchItem<float>>(items));
  DenseMatrix<float> fused(packed.cbm.rows(), 8);
  packed.cbm.multiply(packed.features, fused);

  // Scatter back and compare each slice against that graph's own multiply.
  std::vector<DenseMatrix<float>> outs;
  std::vector<DenseMatrix<float>*> out_ptrs;
  for (std::size_t i = 0; i < cbms.size(); ++i) {
    outs.emplace_back(sizes[i], 8);
  }
  for (auto& o : outs) out_ptrs.push_back(&o);
  scatter_batch(fused, std::span<const index_t>(packed.row_offsets),
                std::span<DenseMatrix<float>* const>(out_ptrs));
  for (std::size_t i = 0; i < cbms.size(); ++i) {
    DenseMatrix<float> want(sizes[i], 8);
    csr_spmm(graphs[i], feats[i], want);
    EXPECT_TRUE(allclose(outs[i], want, 1e-4f, 1e-5f))
        << "graph " << i << " max diff " << max_abs_diff(outs[i], want);
  }
}

TEST(BatchPacker, BlockDiagonalMatchesOracleForScaledKind) {
  const std::uint64_t seed = auto_seed();
  SCOPED_TRACE(seed_trace(seed));
  std::vector<CsrMatrix<float>> graphs;
  std::vector<std::vector<float>> diags;
  std::vector<CbmMatrix<float>> cbms;
  std::vector<DenseMatrix<float>> feats;
  for (std::size_t i = 0; i < 3; ++i) {
    const index_t n = 32 + static_cast<index_t>(16 * i);
    graphs.push_back(test::clustered_binary(n, 4, 6, 2, seed + i));
    diags.push_back(test::random_diagonal<float>(n, seed + 50 + i));
    cbms.push_back(CbmMatrix<float>::compress_scaled(
        graphs.back(), diags.back(), CbmKind::kSymScaled));
    feats.push_back(test::random_dense<float>(n, 8, seed + 100 + i));
  }
  std::vector<BatchItem<float>> items;
  for (std::size_t i = 0; i < cbms.size(); ++i) {
    items.push_back({&cbms[i], &feats[i]});
  }
  const auto packed = pack_batch(std::span<const BatchItem<float>>(items));
  DenseMatrix<float> fused(packed.cbm.rows(), 8);
  packed.cbm.multiply(packed.features, fused);
  index_t off = 0;
  for (std::size_t i = 0; i < cbms.size(); ++i) {
    const index_t n = graphs[i].rows();
    const auto dad =
        scale_both(graphs[i], std::span<const float>(diags[i]),
                   std::span<const float>(diags[i]));
    DenseMatrix<float> want(n, 8);
    csr_spmm(dad, feats[i], want);
    for (index_t r = 0; r < n; ++r) {
      for (index_t j = 0; j < 8; ++j) {
        EXPECT_NEAR(fused(off + r, j), want(r, j),
                    1e-3f + 1e-3f * std::abs(want(r, j)))
            << "graph " << i << " row " << r;
      }
    }
    off += n;
  }
}

// ------------------------------------------------------------- serve context

TEST(ServeContext, EndToEndMatchesOracleAndCaches) {
  const std::uint64_t seed = auto_seed();
  SCOPED_TRACE(seed_trace(seed));
  const auto a = test::clustered_binary(64, 4, 6, 2, seed);
  const auto b = test::clustered_binary(96, 4, 6, 2, seed + 1);

  ServeOptions options;
  options.max_batch = 8;
  ServeContext ctx(options);

  auto make_request = [&](std::uint64_t id, const CsrMatrix<float>& adj) {
    Request req;
    req.id = id;
    req.adjacency = adj;
    req.features =
        test::random_dense<float>(adj.cols(), 8, seed + 200 + id);
    return req;
  };

  std::vector<Request> requests;
  for (std::uint64_t id = 0; id < 6; ++id) {
    requests.push_back(make_request(id, id % 2 == 0 ? a : b));
  }
  std::vector<DenseMatrix<float>> oracles;
  for (const auto& req : requests) {
    DenseMatrix<float> want(req.adjacency.rows(), 8);
    csr_spmm(req.adjacency, req.features, want);
    oracles.push_back(std::move(want));
  }

  std::vector<std::future<Response>> futures;
  for (auto& req : requests) futures.push_back(ctx.submit(std::move(req)));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    Response resp = futures[i].get();
    EXPECT_EQ(resp.id, i);
    EXPECT_GE(resp.batch_size, 1);
    EXPECT_GE(resp.total_seconds, 0.0);
    EXPECT_TRUE(allclose(resp.output, oracles[i], 1e-4f, 1e-5f))
        << "request " << i;
  }
  ctx.flush();
  const auto stats = ctx.stats();
  EXPECT_EQ(stats.requests, 6u);
  // Only two distinct graphs were ever compressed; the other four requests
  // must have hit the cache.
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_EQ(stats.cache_hits, 4u);
}

TEST(ServeContext, WarmRequestsSkipCompression) {
  const auto a = test::clustered_binary(64, 4, 6, 2, auto_seed());
  ServeContext ctx;
  Request req;
  req.adjacency = a;
  req.features = test::random_dense<float>(64, 8, auto_seed(1));
  ctx.infer(std::move(req));  // cold: compresses

  // Telemetry proof: with metrics on, a warm request of the same graph must
  // record zero compression calls.
  obs::set_metrics_enabled(true);
  obs::metrics_reset();
  Request warm;
  warm.adjacency = a;
  warm.features = test::random_dense<float>(64, 8, auto_seed(2));
  const Response resp = ctx.infer(std::move(warm));
  const auto snap = obs::metrics_snapshot();
  obs::set_metrics_enabled(false);
  EXPECT_TRUE(resp.cache_hit);
  const auto compress = snap.counters.find("cbm.compress.calls");
  EXPECT_TRUE(compress == snap.counters.end() || compress->second == 0)
      << "warm request recompressed the adjacency";
  const auto hits = snap.counters.find("cbm.serve.cache.hits");
  ASSERT_NE(hits, snap.counters.end());
  EXPECT_GE(hits->second, 1);
}

TEST(ServeContext, BadRequestFailsAloneGoodOnesSurvive) {
  const auto good_adj = test::clustered_binary(48, 4, 6, 2, auto_seed());
  ServeContext ctx;

  // Non-binary adjacency: violates the compression contract.
  CsrMatrix<float> weighted(2, 2, {0, 1, 2}, {1, 0}, {0.5f, 2.0f});
  Request bad;
  bad.id = 1;
  bad.adjacency = weighted;
  bad.features = test::random_dense<float>(2, 8, auto_seed(1));

  Request good;
  good.id = 2;
  good.adjacency = good_adj;
  good.features = test::random_dense<float>(48, 8, auto_seed(2));
  const DenseMatrix<float> good_features = good.features;

  auto bad_future = ctx.submit(std::move(bad));
  auto good_future = ctx.submit(std::move(good));
  EXPECT_THROW(bad_future.get(), CbmError);
  const Response resp = good_future.get();
  DenseMatrix<float> want(48, 8);
  csr_spmm(good_adj, good_features, want);
  EXPECT_TRUE(allclose(resp.output, want, 1e-4f, 1e-5f));

  // Shape mismatch fails its own future too.
  Request misshapen;
  misshapen.adjacency = good_adj;
  misshapen.features = test::random_dense<float>(47, 8, auto_seed(3));
  EXPECT_THROW(ctx.infer(std::move(misshapen)), CbmError);
}

TEST(ServeContext, GcnNormalizeMatchesExplicitDadOracle) {
  const index_t n = 48;
  const auto a = ring_graph(n);
  ServeOptions options;
  options.gcn_normalize = true;
  ServeContext ctx(options);

  Request req;
  req.adjacency = a;
  req.features = test::random_dense<float>(n, 8, auto_seed());
  DenseMatrix<float> features_copy = req.features;
  const Response resp = ctx.infer(std::move(req));

  // Oracle: explicitly materialised D^-1/2 (A+I) D^-1/2.
  const auto a_hat = add_identity(a);
  std::vector<float> dinv(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    const auto deg = a_hat.indptr()[static_cast<std::size_t>(v) + 1] -
                     a_hat.indptr()[static_cast<std::size_t>(v)];
    dinv[static_cast<std::size_t>(v)] =
        1.0f / std::sqrt(static_cast<float>(deg));
  }
  const auto dad = scale_both(a_hat, std::span<const float>(dinv),
                              std::span<const float>(dinv));
  DenseMatrix<float> want(n, 8);
  csr_spmm(dad, features_copy, want);
  EXPECT_TRUE(allclose(resp.output, want, 1e-4f, 1e-5f))
      << "max diff " << max_abs_diff(resp.output, want);
}

TEST(ServeContext, BatchedAndSequentialAgree) {
  // The same workload served through a wide batch window and one request at
  // a time must produce identical results (block-diagonal fusion is exact).
  const std::uint64_t seed = auto_seed();
  SCOPED_TRACE(seed_trace(seed));
  std::vector<CsrMatrix<float>> graphs;
  std::vector<DenseMatrix<float>> feats;
  for (std::size_t i = 0; i < 5; ++i) {
    const index_t n = 24 + static_cast<index_t>(8 * i);
    graphs.push_back(test::clustered_binary(n, 3, 5, 2, seed + i));
    feats.push_back(test::random_dense<float>(n, 8, seed + 60 + i));
  }

  auto run = [&](int max_batch) {
    ServeOptions options;
    options.max_batch = max_batch;
    ServeContext ctx(options);
    std::vector<std::future<Response>> futures;
    for (std::size_t i = 0; i < graphs.size(); ++i) {
      Request req;
      req.id = i;
      req.adjacency = graphs[i];
      req.features = feats[i];
      futures.push_back(ctx.submit(std::move(req)));
    }
    std::vector<DenseMatrix<float>> outs;
    for (auto& f : futures) outs.push_back(f.get().output);
    return outs;
  };

  const auto batched = run(8);
  const auto sequential = run(1);
  ASSERT_EQ(batched.size(), sequential.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_TRUE(allclose(batched[i], sequential[i], 1e-4f, 1e-5f))
        << "request " << i;
  }
}

}  // namespace
}  // namespace cbm::serve
