// Stress and adversarial-structure tests: deep trees, tie-heavy distance
// graphs, degenerate shapes, and large randomized sweeps that the focused
// unit tests do not reach. Also compiles the umbrella header.
#include <gtest/gtest.h>

#include "cbm4gnn.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

TEST(Stress, DeepChainTree) {
  // 4000 rows, each nearly identical to the previous one: the MCA naturally
  // produces a very deep chain; the update stage must handle depth without
  // recursion or stack growth.
  const index_t n = 4000;
  CooMatrix<float> coo;
  coo.rows = n;
  coo.cols = n;
  // Row i = the window {i, ..., i+19} mod n: consecutive rows are Hamming-2
  // apart, so the optimal tree is one long chain.
  for (index_t i = 0; i < n; ++i) {
    for (index_t k = 0; k < 20; ++k) {
      coo.push(i, (i + k) % n, 1.0f);
    }
  }
  const auto a = CsrMatrix<float>::from_coo(coo);
  CbmStats stats;
  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 0}, &stats);
  EXPECT_LE(stats.total_deltas, stats.source_nnz);
  EXPECT_GT(cbm.tree().max_depth(), n / 2) << "expected a deep chain";

  const auto b = test::random_dense<float>(n, 4, 1);
  DenseMatrix<float> c_cbm(n, 4), c_csr(n, 4);
  cbm.multiply(b, c_cbm);
  csr_spmm(a, b, c_csr);
  EXPECT_TRUE(allclose(c_cbm, c_csr, 1e-4, 1e-4));
}

TEST(Stress, ManyIdenticalRows) {
  // All rows identical: the tree collapses to one chain/star of zero-delta
  // edges; deltas = nnz of one row.
  const index_t n = 500;
  CooMatrix<float> coo;
  coo.rows = n;
  coo.cols = n;
  for (index_t i = 0; i < n; ++i) {
    for (const index_t j : {3, 77, 200, 431}) coo.push(i, j, 1.0f);
  }
  const auto a = CsrMatrix<float>::from_coo(coo);
  CbmStats stats;
  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 0}, &stats);
  EXPECT_EQ(stats.total_deltas, 4);  // one explicit row, all others free
  const auto b = test::random_dense<float>(n, 3, 2);
  DenseMatrix<float> c_cbm(n, 3), c_csr(n, 3);
  cbm.multiply(b, c_cbm);
  csr_spmm(a, b, c_csr);
  EXPECT_TRUE(allclose(c_cbm, c_csr, 1e-4, 1e-4));
}

TEST(Stress, DenseRowsAmongSparse) {
  // A few fully dense rows inside a sparse matrix: candidate enumeration
  // touches every row via the dense columns; correctness must survive.
  const index_t n = 120;
  CooMatrix<float> coo;
  coo.rows = n;
  coo.cols = n;
  Rng rng(3);
  for (index_t i = 0; i < n; ++i) {
    if (i % 40 == 0) {
      for (index_t j = 0; j < n; ++j) {
        if (i != j) coo.push(i, j, 1.0f);
      }
    } else {
      for (int k = 0; k < 4; ++k) {
        coo.push(i, static_cast<index_t>(rng.next_below(n)), 1.0f);
      }
    }
  }
  auto tmp = CsrMatrix<float>::from_coo(coo);
  std::vector<float> ones(tmp.values().size(), 1.0f);
  const CsrMatrix<float> a(n, n, {tmp.indptr().begin(), tmp.indptr().end()},
                           {tmp.indices().begin(), tmp.indices().end()},
                           std::move(ones));
  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 0});
  EXPECT_EQ(cbm.materialize(), a);
}

TEST(Stress, ZeroColumnOperand) {
  // p = 0: legal no-op multiply.
  const auto a = test::clustered_binary(20, 2, 5, 1, 4);
  const auto cbm = CbmMatrix<float>::compress(a);
  DenseMatrix<float> b(20, 0), c(20, 0);
  cbm.multiply(b, c);  // must not crash
  csr_spmm(a, b, c);
  SUCCEED();
}

TEST(Stress, TieHeavyDistanceGraph) {
  // Block-constant matrix: all within-block Hamming distances are 0 and all
  // cross distances equal — maximal ties everywhere. The solver must still
  // produce a valid tree with deltas == one template per block.
  const index_t n = 300, blocks = 10;
  CooMatrix<float> coo;
  coo.rows = n;
  coo.cols = n;
  for (index_t i = 0; i < n; ++i) {
    const index_t base = (i / (n / blocks)) * 7 % n;
    for (index_t k = 0; k < 5; ++k) coo.push(i, (base + k) % n, 1.0f);
  }
  const auto a = CsrMatrix<float>::from_coo(coo);
  CbmStats stats;
  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 0}, &stats);
  EXPECT_EQ(stats.total_deltas, 5 * blocks);
  EXPECT_EQ(cbm.materialize(), a);
}

TEST(Stress, RandomizedMultiplySweep) {
  // Wide randomized sweep: shapes × densities × alphas, CSR oracle.
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    const index_t n = 10 + static_cast<index_t>(rng.next_below(120));
    const double density = 0.02 + rng.next_double() * 0.2;
    const int alpha = static_cast<int>(rng.next_below(12));
    const index_t p = 1 + static_cast<index_t>(rng.next_below(9));
    const auto a = test::random_binary(n, density, 1000 + trial);
    const auto cbm = CbmMatrix<float>::compress(a, {.alpha = alpha});
    const auto b = test::random_dense<float>(n, p, 2000 + trial);
    DenseMatrix<float> c_cbm(n, p), c_csr(n, p);
    cbm.multiply(b, c_cbm);
    csr_spmm(a, b, c_csr);
    EXPECT_TRUE(allclose(c_cbm, c_csr, 1e-4, 1e-4))
        << "n=" << n << " density=" << density << " alpha=" << alpha;
  }
}

TEST(Stress, ArborescenceLadderOfCycles) {
  // k chained 2-cycles with expensive root entries: forces k contraction
  // rounds in sequence. Validity + optimality vs the reference oracle.
  const index_t k = 40;
  std::vector<WeightedEdge> edges;
  for (index_t i = 0; i < k; ++i) {
    const index_t a = 1 + 2 * i, b = 2 + 2 * i;
    edges.push_back({a, b, 1});
    edges.push_back({b, a, 1});
    if (i > 0) edges.push_back({static_cast<index_t>(2 * i), a, 2});
  }
  edges.push_back({0, 1, 10});
  for (index_t v = 1; v < 2 * k + 1; ++v) edges.push_back({0, v, 100});
  const auto r = chu_liu_edmonds(2 * k + 1, edges, 0);
  EXPECT_EQ(r.total_weight,
            arborescence_cost_reference(2 * k + 1, edges, 0));
}

TEST(Stress, CompressionTreeHugeFlat) {
  // 100k rows all at the root: branch decomposition must stay O(n).
  std::vector<index_t> parent(100000, 100000);
  const auto t = CompressionTree::from_parents(std::move(parent));
  EXPECT_EQ(t.root_out_degree(), 100000);
  EXPECT_EQ(t.branches().size(), 100000u);
  EXPECT_EQ(t.max_depth(), 1);
}

TEST(Stress, SpmmHugeColumnsSmallMatrix) {
  // p much larger than n exercises the row-kernel inner loop bounds.
  const auto a = test::random_binary(8, 0.4, 6);
  const auto b = test::random_dense<float>(8, 700, 7);
  DenseMatrix<float> c(8, 700);
  csr_spmm(a, b, c);
  const auto cbm = CbmMatrix<float>::compress(a);
  DenseMatrix<float> c2(8, 700);
  cbm.multiply(b, c2);
  EXPECT_TRUE(allclose(c2, c, 1e-4, 1e-5));
}

}  // namespace
}  // namespace cbm
