// GCN inference with a CBM-compressed normalised adjacency (the paper's §II
// motivating workload, Eq. 1):
//
//   out = Â · ReLU(Â · X · W0) · W1,   Â = D^{-1/2}(A+I)D^{-1/2}
//
//   ./gcn_inference [dataset] [feature_dim]
//
// Runs the same two-layer GCN with Â in CSR and in CBM (DAD) form, verifies
// the outputs agree, and reports per-format inference time.
#include <cstdio>
#include <string>

#include "bench_util/datasets.hpp"
#include "common/timer.hpp"
#include "dense/ops.hpp"
#include "gnn/gcn.hpp"
#include "graph/laplacian.hpp"
#include "sparse/scale.hpp"

int main(int argc, char** argv) {
  using namespace cbm;
  const std::string name = argc > 1 ? argv[1] : "copapersdblp";
  const index_t dim = argc > 2 ? std::atoi(argv[2]) : 128;

  BenchConfig config = BenchConfig::from_env();
  const Graph graph = load_dataset(dataset_spec(name), config);
  const index_t n = graph.num_nodes();
  std::printf("dataset %s: %d nodes, %.1f avg degree, feature dim %d\n",
              name.c_str(), n, graph.average_degree(), dim);

  // Factor Â once; build both operand forms.
  const auto norm = gcn_normalization<real_t>(graph);
  const CsrAdjacency<real_t> csr_adj(
      scale_both<real_t>(norm.a_plus_i, norm.dinv_sqrt, norm.dinv_sqrt));
  Timer build;
  // CBM_MULTIPLY_PATH=fused (plus CBM_TILE_COLS etc.) switches the engine
  // without recompiling.
  const CbmAdjacency<real_t> cbm_adj(
      CbmMatrix<real_t>::compress_scaled(
          norm.a_plus_i, std::span<const real_t>(norm.dinv_sqrt),
          CbmKind::kSymScaled, {.alpha = 8}),
      MultiplySchedule::from_config(RuntimeConfig::from_env()));
  std::printf("CBM build: %.3f s; footprint %.2f MiB vs CSR %.2f MiB\n",
              build.seconds(), cbm_adj.bytes() / kMiB,
              csr_adj.bytes() / kMiB);

  // One random feature matrix, shared weights.
  const Gcn2<real_t> model(dim, dim, dim, /*seed=*/1);
  Rng rng(2);
  DenseMatrix<real_t> x(n, dim);
  x.fill_uniform(rng);
  Gcn2<real_t>::Workspace ws(n, dim, dim);
  DenseMatrix<real_t> out_csr(n, dim), out_cbm(n, dim);

  auto time_inference = [&](const AdjacencyOp<real_t>& adj,
                            DenseMatrix<real_t>& out) {
    model.forward(adj, x, ws, out);  // warmup
    Timer t;
    for (int rep = 0; rep < 3; ++rep) model.forward(adj, x, ws, out);
    return t.seconds() / 3;
  };
  const double t_csr = time_inference(csr_adj, out_csr);
  const double t_cbm = time_inference(cbm_adj, out_cbm);

  std::printf("inference: CSR %.4f s | CBM %.4f s | speedup %.2fx\n", t_csr,
              t_cbm, t_csr / t_cbm);
  std::printf("outputs agree (rtol 1e-5): %s\n",
              allclose(out_cbm, out_csr, 1e-5, 1e-5) ? "yes" : "NO");
  return 0;
}
