// Quickstart: compress a graph's adjacency matrix into the CBM format,
// multiply it with a dense matrix, and verify against the CSR baseline.
//
//   ./quickstart
//
// This walks the library's three core steps:
//   1. obtain a binary matrix (here: a synthetic collaboration graph),
//   2. CbmMatrix::compress(...)  — build the compression tree + delta matrix,
//   3. cbm.multiply(B, C)        — the two-stage CBM SpMM.
#include <cstdio>

#include "cbm/cbm_matrix.hpp"
#include "common/rng.hpp"
#include "dense/ops.hpp"
#include "graph/generators.hpp"
#include "sparse/spmm.hpp"

int main() {
  using namespace cbm;

  // 1. A collaboration-style graph: dense communities + sparse noise. Its
  //    adjacency rows are near-duplicates, the regime CBM is built for.
  const Graph graph = community_graph(
      {.num_nodes = 5000, .team_min = 16, .team_max = 96,
       .size_exponent = 1.8, .intra_prob = 1.0, .cross_per_node = 2.0},
      /*seed=*/7);
  const CsrMatrix<real_t>& a = graph.adjacency();
  std::printf("graph: %d nodes, %lld undirected edges, %.1f avg degree\n",
              graph.num_nodes(), static_cast<long long>(graph.num_edges()),
              graph.average_degree());

  // 2. Compress. CbmStats reports what the format achieved.
  CbmStats stats;
  const auto cbm = CbmMatrix<real_t>::compress(a, {.alpha = 0}, &stats);
  std::printf("CBM build: %.3f s\n", stats.build_seconds);
  std::printf("  deltas stored : %lld (of %lld nonzeros)\n",
              static_cast<long long>(stats.total_deltas),
              static_cast<long long>(stats.source_nnz));
  std::printf("  memory        : %.2f MiB CSR -> %.2f MiB CBM (%.2fx)\n",
              a.bytes() / kMiB, cbm.bytes() / kMiB,
              static_cast<double>(a.bytes()) / cbm.bytes());

  // 3. Multiply with a random dense matrix and check the result.
  Rng rng(42);
  DenseMatrix<real_t> b(graph.num_nodes(), 64);
  b.fill_uniform(rng);
  DenseMatrix<real_t> c_cbm(graph.num_nodes(), 64);
  DenseMatrix<real_t> c_csr(graph.num_nodes(), 64);
  cbm.multiply(b, c_cbm);
  csr_spmm(a, b, c_csr);
  std::printf("CBM result matches CSR baseline (rtol 1e-5): %s\n",
              allclose(c_cbm, c_csr, 1e-5, 1e-5) ? "yes" : "NO");
  std::printf("scalar ops: CBM %zu vs CSR %zu (%.2fx fewer)\n",
              cbm.scalar_ops(64), csr_spmm_flops(a, 64),
              static_cast<double>(csr_spmm_flops(a, 64)) /
                  static_cast<double>(cbm.scalar_ops(64)));
  return 0;
}
