// GraphSAGE layer with mean aggregation (Hamilton et al., cited in §II):
//     H' = σ( H·W_self + mean_neigh(H)·W_neigh ),
// where mean_neigh(H) = D⁻¹·A·H. The A·H product goes through the pluggable
// adjacency operand (CSR or CBM); the 1/deg row scaling is applied after.
#pragma once

#include "common/rng.hpp"
#include "gnn/adjacency_op.hpp"

namespace cbm {

template <typename T>
class SageLayer {
 public:
  /// `inv_degree[i]` = 1/deg(i) (0 allowed for isolated nodes: their mean
  /// aggregate is zero).
  SageLayer(index_t in_features, index_t out_features,
            std::vector<T> inv_degree, Rng& rng);

  struct Workspace {
    DenseMatrix<T> agg;  ///< n × in: D⁻¹AH
    Workspace(index_t n, index_t in) : agg(n, in) {}
  };

  /// Forward with ReLU activation into `out` (n × out_features).
  void forward(const AdjacencyOp<T>& adj, const DenseMatrix<T>& h,
               Workspace& ws, DenseMatrix<T>& out) const;

  [[nodiscard]] const DenseMatrix<T>& w_self() const { return w_self_; }
  [[nodiscard]] const DenseMatrix<T>& w_neigh() const { return w_neigh_; }

 private:
  std::vector<T> inv_degree_;
  DenseMatrix<T> w_self_;
  DenseMatrix<T> w_neigh_;
};

extern template class SageLayer<float>;
extern template class SageLayer<double>;

}  // namespace cbm
