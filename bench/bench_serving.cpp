// Serving throughput/latency bench: a pool of small query graphs streamed
// through cbm::serve::ServeContext.
//
// Two phases. The cold phase submits every distinct graph once, so the
// adjacency cache compresses each exactly once. The steady phase then
// streams CBM_SERVE_REQUESTS requests round-robin over the pool, all cache
// hits; per-request latency (p50/p99, sorted exactly — not estimated) and
// sustained QPS go into the cbm-bench-v1 report, together with the
// telemetry proof that warm traffic never recompresses: the steady-phase
// delta of cbm.compress.calls, reported as warm_compress_calls, must be 0.
//
// Knobs: CBM_SERVE_REQUESTS (default 200), CBM_SERVE_GRAPHS (pool size,
// default 8), CBM_SERVE_NODES (nodes per graph, default 256),
// CBM_SERVE_MAX_BATCH (default 8), plus the usual CBM_BENCH_* family
// (cols caps at 32 here: serving features are embeddings, not paper-width
// operands).
#include <algorithm>
#include <future>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "graph/generators.hpp"
#include "obs/obs.hpp"
#include "serve/serve.hpp"

int main() {
  using namespace cbm;
  using namespace cbm::bench;
  const auto config = BenchConfig::from_env();
  print_bench_header(config, "Serving — batched GNN inference over cbm::serve");
  set_threads(config.threads);
  BenchReport report("serving", config);

  const int num_requests = env_int("CBM_SERVE_REQUESTS", 200);
  const int pool_size = env_int("CBM_SERVE_GRAPHS", 8);
  const index_t nodes = env_int("CBM_SERVE_NODES", 256);
  const index_t feat_cols = std::min(config.cols, 32);

  // Query-graph pool: clustered small graphs (the regime CBM compresses).
  std::vector<CsrMatrix<real_t>> adjacencies;
  std::vector<DenseMatrix<real_t>> features;
  Rng rng(0x5EBEull);
  for (int i = 0; i < pool_size; ++i) {
    const index_t n = nodes + static_cast<index_t>(16 * i);
    const Graph g = barabasi_albert(n, 4, 0xC0FFEEull + i);
    adjacencies.push_back(g.adjacency());
    DenseMatrix<real_t> x(n, feat_cols);
    x.fill_uniform(rng);
    features.push_back(std::move(x));
  }

  serve::ServeOptions options;
  options.max_batch = env_int("CBM_SERVE_MAX_BATCH", 8);
  serve::ServeContext ctx(options);

  auto make_request = [&](std::uint64_t id) {
    serve::Request req;
    req.id = id;
    req.adjacency = adjacencies[id % adjacencies.size()];
    req.features = features[id % features.size()];
    return req;
  };

  // Cold phase: one pass over the pool populates the cache (each graph
  // compresses exactly once).
  Timer cold_timer;
  {
    std::vector<std::future<serve::Response>> futures;
    for (std::uint64_t id = 0; id < adjacencies.size(); ++id) {
      futures.push_back(ctx.submit(make_request(id)));
    }
    for (auto& f : futures) f.get();
  }
  const double cold_seconds = cold_timer.seconds();

  // Steady phase: warm traffic only. Snapshot the metrics registry around
  // it so the report can prove the cache path skipped recompression.
  const auto before = obs::metrics_snapshot();
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(num_requests));
  std::uint64_t warm_hits = 0;
  Timer steady_timer;
  {
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(static_cast<std::size_t>(num_requests));
    for (int i = 0; i < num_requests; ++i) {
      futures.push_back(ctx.submit(make_request(static_cast<std::uint64_t>(i))));
    }
    for (auto& f : futures) {
      const serve::Response resp = f.get();
      latencies.push_back(resp.total_seconds);
      if (resp.cache_hit) ++warm_hits;
    }
  }
  const double steady_seconds = steady_timer.seconds();
  const auto after = obs::metrics_snapshot();

  auto counter_delta = [&](const char* name) {
    const auto b = before.counters.find(name);
    const auto a = after.counters.find(name);
    const std::int64_t vb = b == before.counters.end() ? 0 : b->second;
    const std::int64_t va = a == after.counters.end() ? 0 : a->second;
    return va - vb;
  };
  const auto warm_compress_calls =
      static_cast<double>(counter_delta("cbm.compress.calls"));

  // Exact quantiles from the sorted latency vector.
  std::sort(latencies.begin(), latencies.end());
  auto quantile = [&](double q) {
    if (latencies.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(latencies.size() - 1));
    return latencies[idx];
  };
  const double p50 = quantile(0.50);
  const double p99 = quantile(0.99);
  const double qps =
      steady_seconds > 0.0 ? num_requests / steady_seconds : 0.0;
  const double hit_rate =
      num_requests > 0 ? static_cast<double>(warm_hits) / num_requests : 0.0;

  RunStats latency_stats;
  for (const double s : latencies) latency_stats.add(s);

  const std::vector<std::pair<std::string, std::string>> labels = {
      {"pool", std::to_string(pool_size)},
      {"max_batch", std::to_string(options.max_batch)},
      {"cols", std::to_string(feat_cols)}};
  report.add("serve_latency_seconds", latency_stats, labels);
  report.add_scalar("serve_p50_seconds", p50, labels);
  report.add_scalar("serve_p99_seconds", p99, labels);
  report.add_scalar("serve_qps", qps, labels);
  report.add_scalar("serve_cache_hit_rate", hit_rate, labels);
  report.add_scalar("serve_cold_seconds", cold_seconds, labels);
  report.add_scalar("warm_compress_calls", warm_compress_calls, labels);

  const auto stats = ctx.stats();
  TablePrinter table({"Requests", "QPS", "p50 [s]", "p99 [s]", "Hit rate",
                      "Batches", "Cold [s]", "Warm compress"});
  table.add_row({std::to_string(num_requests), fmt_double(qps, 1),
                 fmt_seconds(p50), fmt_seconds(p99), fmt_double(hit_rate, 3),
                 std::to_string(stats.batches), fmt_seconds(cold_seconds),
                 fmt_double(warm_compress_calls, 0)});
  table.print();
  return warm_compress_calls == 0.0 ? 0 : 1;
}
