// Tests for the partitioned CBM format (§VIII future work): correctness
// against CSR for every clustering method and kind, plus the memory-scaling
// property that motivates it.
#include <gtest/gtest.h>

#include <numeric>

#include "cbm/partitioned.hpp"
#include "common/rng.hpp"
#include "dense/ops.hpp"
#include "graph/generators.hpp"
#include "sparse/scale.hpp"
#include "sparse/spmm.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

struct PartCase {
  ClusterMethod method;
  index_t clusters;
  int alpha;
};

class PartitionedParam : public ::testing::TestWithParam<PartCase> {};

TEST_P(PartitionedParam, MultiplyMatchesCsr) {
  const auto p = GetParam();
  const Graph g = community_graph(
      {.num_nodes = 300, .team_min = 10, .team_max = 40, .size_exponent = 1.8,
       .intra_prob = 1.0, .cross_per_node = 2.0},
      800);
  const auto& a = g.adjacency();

  PartitionedOptions options;
  options.base.alpha = p.alpha;
  options.method = p.method;
  options.num_clusters = p.clusters;
  PartitionedStats stats;
  auto part = PartitionedCbmMatrix<real_t>::compress(a, options, &stats);
  EXPECT_EQ(stats.num_parts, part.num_parts());
  EXPECT_GE(part.num_parts(), 1);
  EXPECT_LE(part.num_parts(), p.clusters);

  const auto b = test::random_dense<real_t>(g.num_nodes(), 8, 801);
  DenseMatrix<real_t> c_part(g.num_nodes(), 8), c_csr(g.num_nodes(), 8);
  part.multiply(b, c_part);
  csr_spmm(a, b, c_csr);
  EXPECT_TRUE(allclose(c_part, c_csr, 1e-4, 1e-5));
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndAlphas, PartitionedParam,
    ::testing::Values(PartCase{ClusterMethod::kConsecutive, 8, 0},
                      PartCase{ClusterMethod::kConsecutive, 3, 4},
                      PartCase{ClusterMethod::kMinHash, 8, 0},
                      PartCase{ClusterMethod::kMinHash, 16, 8},
                      PartCase{ClusterMethod::kLabelPropagation, 12, 0},
                      PartCase{ClusterMethod::kLabelPropagation, 6, 2}));

TEST(Partitioned, ScaledKindsMatchCsr) {
  const Graph g = community_graph(
      {.num_nodes = 200, .team_min = 10, .team_max = 30, .size_exponent = 1.8,
       .intra_prob = 1.0, .cross_per_node = 2.0},
      810);
  const auto& a = g.adjacency();
  const auto d = test::random_diagonal<real_t>(g.num_nodes(), 811);
  const auto b = test::random_dense<real_t>(g.num_nodes(), 7, 812);

  PartitionedOptions options;
  options.num_clusters = 6;
  {
    auto part = PartitionedCbmMatrix<real_t>::compress_scaled(
        a, std::span<const real_t>(d), CbmKind::kColumnScaled, options);
    DenseMatrix<real_t> c_part(g.num_nodes(), 7), c_csr(g.num_nodes(), 7);
    part.multiply(b, c_part);
    csr_spmm(scale_columns(a, std::span<const real_t>(d)), b, c_csr);
    EXPECT_TRUE(allclose(c_part, c_csr, 1e-4, 1e-5)) << "AD";
  }
  {
    auto part = PartitionedCbmMatrix<real_t>::compress_scaled(
        a, std::span<const real_t>(d), CbmKind::kSymScaled, options);
    DenseMatrix<real_t> c_part(g.num_nodes(), 7), c_csr(g.num_nodes(), 7);
    part.multiply(b, c_part);
    csr_spmm(scale_both(a, std::span<const real_t>(d),
                        std::span<const real_t>(d)),
             b, c_csr);
    EXPECT_TRUE(allclose(c_part, c_csr, 1e-4, 1e-5)) << "DAD";
  }
}

TEST(Partitioned, PeakCandidateMemoryDropsVsMonolithic) {
  // The §VIII motivation: per-cluster construction bounds the candidate-pair
  // working set by the largest cluster instead of the whole matrix.
  const Graph g = community_graph(
      {.num_nodes = 600, .team_min = 20, .team_max = 60, .size_exponent = 1.8,
       .intra_prob = 1.0, .cross_per_node = 1.0},
      820);
  CbmStats mono_stats;
  CbmMatrix<real_t>::compress(g.adjacency(), {.alpha = 0}, &mono_stats);

  PartitionedOptions options;
  options.method = ClusterMethod::kMinHash;
  options.num_clusters = 12;
  PartitionedStats part_stats;
  PartitionedCbmMatrix<real_t>::compress(g.adjacency(), options, &part_stats);
  EXPECT_LT(part_stats.peak_candidate_edges, mono_stats.candidate_edges);
  EXPECT_LE(part_stats.total_candidate_edges, mono_stats.candidate_edges);
}

TEST(Partitioned, MinHashRecoversShuffledCommunities) {
  // Shuffle the rows of a community graph. Consecutive chunking then cuts
  // communities apart (poor compression); MinHash regroups similar rows and
  // must compress substantially better.
  const Graph g = community_graph(
      {.num_nodes = 400, .team_min = 25, .team_max = 50, .size_exponent = 1.8,
       .intra_prob = 1.0, .cross_per_node = 1.0},
      830);
  // Random symmetric permutation of the adjacency.
  Rng rng(831);
  std::vector<index_t> perm(static_cast<std::size_t>(g.num_nodes()));
  std::iota(perm.begin(), perm.end(), index_t{0});
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  CooMatrix<real_t> shuffled;
  shuffled.rows = g.num_nodes();
  shuffled.cols = g.num_nodes();
  for (index_t i = 0; i < g.num_nodes(); ++i) {
    for (const index_t j : g.neighbors(i)) {
      shuffled.push(perm[i], perm[j], 1.0f);
    }
  }
  const auto a = CsrMatrix<real_t>::from_coo(shuffled);

  auto ratio_with = [&](ClusterMethod method) {
    PartitionedOptions options;
    options.method = method;
    options.num_clusters = 16;
    PartitionedStats stats;
    PartitionedCbmMatrix<real_t>::compress(a, options, &stats);
    return static_cast<double>(a.bytes()) / stats.bytes;
  };
  const double consecutive = ratio_with(ClusterMethod::kConsecutive);
  const double minhash = ratio_with(ClusterMethod::kMinHash);
  EXPECT_GT(minhash, consecutive * 1.5)
      << "minhash " << minhash << " vs consecutive " << consecutive;
}

TEST(Partitioned, SinglePartEqualsMonolithic) {
  const auto a = test::clustered_binary(80, 5, 10, 2, 840);
  PartitionedOptions options;
  options.num_clusters = 1;
  PartitionedStats stats;
  auto part = PartitionedCbmMatrix<real_t>::compress(a, options, &stats);
  ASSERT_EQ(part.num_parts(), 1);
  CbmStats mono;
  const auto cbm = CbmMatrix<real_t>::compress(a, {}, &mono);
  EXPECT_EQ(stats.total_deltas, mono.total_deltas);
}

TEST(Partitioned, ShapeAndKindValidation) {
  const auto a = test::clustered_binary(20, 2, 5, 1, 850);
  PartitionedOptions options;
  auto part = PartitionedCbmMatrix<real_t>::compress(a, options);
  DenseMatrix<real_t> b(19, 4), c(20, 4);
  EXPECT_THROW(part.multiply(b, c), CbmError);

  const std::vector<real_t> d(20, 1.0f);
  EXPECT_THROW(PartitionedCbmMatrix<real_t>::compress_scaled(
                   a, std::span<const real_t>(d), CbmKind::kPlain, options),
               CbmError);
}

TEST(Partitioned, StatsAreCoherent) {
  const auto a = test::clustered_binary(120, 6, 9, 2, 860);
  PartitionedOptions options;
  options.num_clusters = 5;
  PartitionedStats stats;
  auto part = PartitionedCbmMatrix<real_t>::compress(a, options, &stats);
  EXPECT_EQ(stats.source_nnz, a.nnz());
  EXPECT_LE(stats.total_deltas, stats.source_nnz);  // Property 1, partitioned
  EXPECT_EQ(stats.bytes, part.bytes());
  EXPECT_GT(stats.build_seconds, 0.0);
  EXPECT_GE(stats.build_seconds, stats.cluster_seconds);
  index_t covered = 0;
  for (const auto& p : part.parts()) {
    covered += static_cast<index_t>(p.rows.size());
    EXPECT_TRUE(std::is_sorted(p.rows.begin(), p.rows.end()));
  }
  EXPECT_EQ(covered, a.rows());
}

}  // namespace
}  // namespace cbm
