// Compressibility analysis (paper §VI-H: "Identifying Compressible Graphs").
//
// The paper proposes the average clustering coefficient as an indicator but
// notes it costs about as much as compressing. This module provides a
// cheaper, direct probe: sample rows, compute each sampled row's true best
// delta count over all candidate reference rows (one CSC overlap scan per
// sample, exact for that row), and extrapolate the delta fraction
// nnz(A')/nnz(A). Unlike the clustering coefficient this measures the
// quantity that actually drives CBM's speedup.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace cbm {

/// Result of a sampled compressibility probe.
struct CompressibilityEstimate {
  double delta_fraction = 1.0;  ///< estimated nnz(A')/nnz(A) ∈ (0, 1]
  double est_ratio = 1.0;       ///< rough S_CSR/S_CBM implied by it
  index_t samples = 0;
};

/// Probes `samples` uniformly random rows (without replacement when
/// possible). Cost: O(sum over sampled rows of Σ_j |col_j|) — the same scan
/// the full builder performs, restricted to the sample.
template <typename T>
CompressibilityEstimate estimate_compressibility(const CsrMatrix<T>& pattern,
                                                 index_t samples,
                                                 std::uint64_t seed = 0xE57ull);

extern template CompressibilityEstimate estimate_compressibility<float>(
    const CsrMatrix<float>&, index_t, std::uint64_t);
extern template CompressibilityEstimate estimate_compressibility<double>(
    const CsrMatrix<double>&, index_t, std::uint64_t);

}  // namespace cbm
