// α-tuning demo (§V-C, Figure 2): shows how the pruning threshold trades
// compression quality against update-stage parallelism on one dataset.
//
//   ./alpha_tuning [dataset]
#include <cstdio>
#include <string>

#include "bench_util/datasets.hpp"
#include "cbm/cbm_matrix.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "sparse/spmm.hpp"

int main(int argc, char** argv) {
  using namespace cbm;
  const std::string name = argc > 1 ? argv[1] : "collab";
  const BenchConfig config = BenchConfig::from_env();
  const Graph g = load_dataset(dataset_spec(name), config);
  const auto& a = g.adjacency();

  Rng rng(3);
  DenseMatrix<real_t> b(g.num_nodes(), 64);
  b.fill_uniform(rng);
  DenseMatrix<real_t> c(g.num_nodes(), 64);

  // CSR reference time (parallel).
  csr_spmm(a, b, c);
  Timer t_ref;
  for (int rep = 0; rep < 3; ++rep) csr_spmm(a, b, c);
  const double t_csr = t_ref.seconds() / 3;

  std::printf("dataset %s (n=%d, nnz=%lld), CSR AX: %.4f s, %d threads\n\n",
              name.c_str(), g.num_nodes(), static_cast<long long>(a.nnz()),
              t_csr, max_threads());
  std::printf("%6s %9s %9s %9s %9s %9s\n", "alpha", "ratio", "fanout",
              "depth", "T_CBM[s]", "speedup");
  for (const int alpha : {0, 1, 2, 4, 8, 16, 32}) {
    CbmStats stats;
    const auto cbm =
        CbmMatrix<real_t>::compress(a, {.alpha = alpha}, &stats);
    cbm.multiply(b, c);  // warmup
    Timer t;
    for (int rep = 0; rep < 3; ++rep) cbm.multiply(b, c);
    const double t_cbm = t.seconds() / 3;
    std::printf("%6d %8.2fx %9d %9d %9.4f %8.2fx\n", alpha,
                static_cast<double>(a.bytes()) / stats.bytes,
                stats.root_out_degree, stats.max_depth, t_cbm, t_csr / t_cbm);
  }
  std::printf(
      "\nAs alpha grows the virtual root's fan-out (parallelism) rises and\n"
      "compression decays — pick alpha by whether the workload is bound by\n"
      "memory (small alpha) or by update-stage parallelism (larger alpha).\n");
  return 0;
}
