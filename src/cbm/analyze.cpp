#include "cbm/analyze.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.hpp"

namespace cbm {

template <typename T>
CompressibilityEstimate estimate_compressibility(const CsrMatrix<T>& pattern,
                                                 index_t samples,
                                                 std::uint64_t seed) {
  CBM_CHECK(samples > 0, "need at least one sample");
  const index_t n = pattern.rows();
  CompressibilityEstimate out;
  if (n == 0 || pattern.nnz() == 0) {
    out.samples = 0;
    return out;
  }
  const CsrMatrix<T> at = pattern.transpose();

  // Sample rows: a shuffled prefix when the matrix is small, independent
  // draws otherwise (collisions negligible for samples << n).
  Rng rng(seed);
  std::vector<index_t> picks;
  if (samples >= n) {
    picks.resize(static_cast<std::size_t>(n));
    std::iota(picks.begin(), picks.end(), index_t{0});
  } else {
    picks.reserve(static_cast<std::size_t>(samples));
    for (index_t s = 0; s < samples; ++s) {
      picks.push_back(static_cast<index_t>(rng.next_below(n)));
    }
  }

  // For each sampled row, the exact minimum delta count over all reference
  // rows (identical to one iteration of the builder's overlap scan).
  std::vector<index_t> count(static_cast<std::size_t>(n), 0);
  std::vector<index_t> touched;
  std::int64_t sampled_nnz = 0;
  std::int64_t sampled_deltas = 0;
  for (const index_t x : picks) {
    const std::int64_t nnz_x = pattern.row_nnz(x);
    std::int64_t best = nnz_x;  // the virtual-root option
    for (const index_t j : pattern.row_indices(x)) {
      for (const index_t y : at.row_indices(j)) {
        if (y == x) continue;
        if (count[y]++ == 0) touched.push_back(y);
      }
    }
    for (const index_t y : touched) {
      const std::int64_t h =
          nnz_x + pattern.row_nnz(y) - 2 * static_cast<std::int64_t>(count[y]);
      best = std::min(best, h);
      count[y] = 0;
    }
    touched.clear();
    sampled_nnz += nnz_x;
    sampled_deltas += best;
  }

  out.samples = static_cast<index_t>(picks.size());
  out.delta_fraction =
      sampled_nnz > 0
          ? static_cast<double>(sampled_deltas) / static_cast<double>(sampled_nnz)
          : 1.0;
  // The implied ratio ignores tree overhead (small for the graphs that
  // matter) and simply inverts the delta fraction; 1/fraction is a good
  // predictor above ~1.5 (see tests against the real builder).
  out.est_ratio = out.delta_fraction > 0.0 ? 1.0 / out.delta_fraction : 1.0;
  return out;
}

template CompressibilityEstimate estimate_compressibility<float>(
    const CsrMatrix<float>&, index_t, std::uint64_t);
template CompressibilityEstimate estimate_compressibility<double>(
    const CsrMatrix<double>&, index_t, std::uint64_t);

}  // namespace cbm
