// Ablation — monolithic vs partitioned CBM (§VIII future work): build time,
// peak candidate-edge working set (the §VIII memory proxy), compression
// ratio and AX multiply time, across clustering methods.
#include "cbm/partitioned.hpp"

#include "bench_common.hpp"

int main() {
  using namespace cbm;
  using namespace cbm::bench;
  const auto config = BenchConfig::from_env();
  print_bench_header(config, "Ablation — monolithic vs partitioned CBM");
  set_threads(config.threads);
  BenchReport report("ablation_partitioned", config);

  TablePrinter table({"Graph", "Variant", "Build [s]", "PeakCand", "Ratio",
                      "Parts", "T_AX [s]"});
  for (const std::string name : {"ca-hepph", "collab", "copapersdblp"}) {
    const auto& spec = dataset_spec(name);
    const Graph g = load_dataset(spec, config);
    const auto& a = g.adjacency();
    const auto b = make_dense_operand<real_t>(g.num_nodes(), config.cols);
    DenseMatrix<real_t> c(g.num_nodes(), config.cols);

    {
      CbmStats stats;
      const auto cbm = CbmMatrix<real_t>::compress(a, {.alpha = 0}, &stats);
      const auto t = time_repetitions([&] { cbm.multiply(b, c); },
                                      config.reps, config.warmup);
      report.add("ax_seconds", t,
                 {{"graph", name}, {"variant", "monolithic"}});
      report.add_scalar("build_seconds", stats.build_seconds,
                        {{"graph", name}, {"variant", "monolithic"}});
      table.add_row({name, "monolithic", fmt_seconds(stats.build_seconds),
                     std::to_string(stats.candidate_edges),
                     fmt_double(static_cast<double>(a.bytes()) / stats.bytes,
                                2),
                     "1", fmt_seconds(t.mean())});
    }
    for (const auto& [method, label] :
         {std::pair{ClusterMethod::kConsecutive, "part/consecutive"},
          std::pair{ClusterMethod::kMinHash, "part/minhash"},
          std::pair{ClusterMethod::kLabelPropagation, "part/labelprop"}}) {
      PartitionedOptions options;
      options.method = method;
      options.num_clusters = 16;
      PartitionedStats stats;
      auto part = PartitionedCbmMatrix<real_t>::compress(a, options, &stats);
      const auto t = time_repetitions([&] { part.multiply(b, c); },
                                      config.reps, config.warmup);
      report.add("ax_seconds", t, {{"graph", name}, {"variant", label}});
      report.add_scalar("build_seconds", stats.build_seconds,
                        {{"graph", name}, {"variant", label}});
      table.add_row({name, label, fmt_seconds(stats.build_seconds),
                     std::to_string(stats.peak_candidate_edges),
                     fmt_double(static_cast<double>(a.bytes()) / stats.bytes,
                                2),
                     std::to_string(stats.num_parts), fmt_seconds(t.mean())});
    }
  }
  table.print();
  return 0;
}
