// Tests for the benchmark-harness utilities: env parsing, table formatting,
// repetition timing, and the dataset registry's paper constants.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "bench_util/datasets.hpp"
#include "bench_util/env.hpp"
#include "bench_util/report.hpp"
#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "obs/metrics.hpp"

namespace cbm {
namespace {

TEST(Env, IntDoubleStringWithDefaults) {
  ::unsetenv("CBM_TEST_ENV_X");
  EXPECT_EQ(env_int("CBM_TEST_ENV_X", 7), 7);
  EXPECT_DOUBLE_EQ(env_double("CBM_TEST_ENV_X", 1.5), 1.5);
  EXPECT_EQ(env_string("CBM_TEST_ENV_X", "dflt"), "dflt");
  ::setenv("CBM_TEST_ENV_X", "42", 1);
  EXPECT_EQ(env_int("CBM_TEST_ENV_X", 7), 42);
  EXPECT_DOUBLE_EQ(env_double("CBM_TEST_ENV_X", 1.5), 42.0);
  EXPECT_EQ(env_string("CBM_TEST_ENV_X", "dflt"), "42");
  ::unsetenv("CBM_TEST_ENV_X");
}

TEST(Env, BenchConfigReadsOverrides) {
  ::setenv("CBM_BENCH_COLS", "99", 1);
  ::setenv("CBM_BENCH_SCALE", "0.25", 1);
  const auto config = BenchConfig::from_env();
  EXPECT_EQ(config.cols, 99);
  EXPECT_DOUBLE_EQ(config.scale, 0.25);
  EXPECT_GE(config.threads, 1);
  ::unsetenv("CBM_BENCH_COLS");
  ::unsetenv("CBM_BENCH_SCALE");
}

TEST(Env, BenchConfigRejectsInvalidValues) {
  const auto with_env = [](const char* name, const char* value) {
    ::setenv(name, value, 1);
    EXPECT_THROW(BenchConfig::from_env(), CbmError) << name << "=" << value;
    ::unsetenv(name);
  };
  with_env("CBM_BENCH_COLS", "0");
  with_env("CBM_BENCH_COLS", "-4");
  with_env("CBM_BENCH_REPS", "0");
  with_env("CBM_BENCH_WARMUP", "-1");
  with_env("CBM_BENCH_SCALE", "0");
  with_env("CBM_BENCH_SCALE", "1.5");
  with_env("CBM_BENCH_SCALE", "-0.1");
}

TEST(Table, RowWidthValidated) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CbmError);
  t.add_row({"x", "y"});  // fine
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_seconds(0.12345), "0.1235");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.14159, 0), "3");
  EXPECT_EQ(fmt_mib(1024 * 1024), "1.00");
  EXPECT_EQ(fmt_mib(3 * 1024 * 1024 / 2), "1.50");
  const auto ms = fmt_mean_std(0.5, 0.01);
  EXPECT_NE(ms.find("0.5000"), std::string::npos);
  EXPECT_NE(ms.find("0.0100"), std::string::npos);
}

TEST(Table, FmtStatsReportsMedianMeanStd) {
  RunStats s;
  for (const double x : {1.0, 1.0, 10.0}) s.add(x);
  const auto text = fmt_stats(s);
  EXPECT_NE(text.find("1.0000"), std::string::npos);  // median
  EXPECT_NE(text.find("4.0000"), std::string::npos);  // mean
}

TEST(BenchReport, DisabledWithoutEnvVar) {
  ::unsetenv("CBM_BENCH_JSON");
  BenchConfig config;
  BenchReport report("unit_test", config);
  EXPECT_FALSE(report.enabled());
  report.add_scalar("ignored", 1.0);  // must be a no-op
}

TEST(BenchReport, WritesParseableDocument) {
  const std::string path = ::testing::TempDir() + "cbm_bench_report_test.json";
  ::setenv("CBM_BENCH_JSON", path.c_str(), 1);
  {
    BenchConfig config;
    config.cols = 12;
    config.reps = 2;
    BenchReport report("unit_test", config);
    ASSERT_TRUE(report.enabled());
    EXPECT_TRUE(obs::metrics_enabled());  // switched on by the report
    RunStats s;
    s.add(0.5);
    s.add(1.5);
    report.add("series", s, {{"graph", "toy"}});
    report.add_scalar("ratio", 3.0);
  }  // destructor writes
  ::unsetenv("CBM_BENCH_JSON");
  obs::set_metrics_enabled(false);
  obs::metrics_reset();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  // Structural spot-checks; test_obs.cpp holds the full JSON parser.
  EXPECT_NE(doc.find("\"schema\":\"cbm-bench-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"bench\":\"unit_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"cols\":12"), std::string::npos);
  EXPECT_NE(doc.find("\"series\""), std::string::npos);
  EXPECT_NE(doc.find("\"graph\":\"toy\""), std::string::npos);
  EXPECT_NE(doc.find("\"median\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"metrics\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Runner, CountsRepsNotWarmup) {
  int calls = 0;
  const auto stats = time_repetitions([&] { ++calls; }, 5, 2);
  EXPECT_EQ(calls, 7);
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_GE(stats.mean(), 0.0);
}

TEST(Datasets, RegistryMatchesPaperTableI) {
  // Spot-check the recorded paper constants against Table I/II/V.
  const auto& cora = dataset_spec("cora");
  EXPECT_EQ(cora.paper_nodes, 2708);
  EXPECT_EQ(cora.paper_edges, 10556);
  EXPECT_DOUBLE_EQ(cora.paper_clustering, 0.24);

  const auto& collab = dataset_spec("collab");
  EXPECT_EQ(collab.paper_nodes, 372474);
  EXPECT_DOUBLE_EQ(collab.paper_ratio_alpha0, 11.0);
  EXPECT_EQ(collab.paper_best_alpha_seq, 4);
  EXPECT_EQ(collab.paper_best_alpha_par, 16);

  const auto& proteins = dataset_spec("ogbn-proteins");
  EXPECT_DOUBLE_EQ(proteins.paper_avg_degree, 298.5);
  EXPECT_EQ(proteins.paper_best_alpha_seq, 8);
}

TEST(Datasets, StandinsAreDeterministic) {
  const Graph a = make_standin("ca-hepph", 0.05);
  const Graph b = make_standin("ca-hepph", 0.05);
  EXPECT_EQ(a.adjacency(), b.adjacency());
}

TEST(Datasets, ScaleShrinksGraphs) {
  const Graph small = make_standin("pubmed", 0.05);
  const Graph large = make_standin("pubmed", 0.2);
  EXPECT_LT(small.num_nodes(), large.num_nodes());
}

TEST(Datasets, InvalidScaleRejected) {
  EXPECT_THROW(make_standin("cora", 0.0), CbmError);
  EXPECT_THROW(make_standin("cora", 1.5), CbmError);
}

}  // namespace
}  // namespace cbm
