// Element-wise and structural dense operations used by the GNN layers and by
// tests (allclose comparisons mirroring the paper's 1e-5 rtol protocol).
#pragma once

#include "dense/dense_matrix.hpp"

namespace cbm {

/// In-place ReLU: x = max(x, 0). The paper's GCN activation.
template <typename T>
void relu_inplace(DenseMatrix<T>& x);

/// Adds a row-broadcast bias vector: x(i, :) += bias.
template <typename T>
void add_bias_inplace(DenseMatrix<T>& x, std::span<const T> bias);

/// Returns Bᵀ (row-major).
template <typename T>
DenseMatrix<T> transpose(const DenseMatrix<T>& x);

/// Elementwise maximum absolute difference.
template <typename T>
double max_abs_diff(const DenseMatrix<T>& a, const DenseMatrix<T>& b);

/// True when |a-b| <= atol + rtol*|b| holds element-wise (numpy semantics).
/// The paper validates kernels with rtol = 1e-5.
template <typename T>
bool allclose(const DenseMatrix<T>& a, const DenseMatrix<T>& b,
              double rtol = 1e-5, double atol = 1e-6);

/// Frobenius norm.
template <typename T>
double frobenius_norm(const DenseMatrix<T>& a);

extern template void relu_inplace<float>(DenseMatrix<float>&);
extern template void relu_inplace<double>(DenseMatrix<double>&);
extern template void add_bias_inplace<float>(DenseMatrix<float>&,
                                             std::span<const float>);
extern template void add_bias_inplace<double>(DenseMatrix<double>&,
                                              std::span<const double>);
extern template DenseMatrix<float> transpose<float>(const DenseMatrix<float>&);
extern template DenseMatrix<double> transpose<double>(
    const DenseMatrix<double>&);
extern template double max_abs_diff<float>(const DenseMatrix<float>&,
                                           const DenseMatrix<float>&);
extern template double max_abs_diff<double>(const DenseMatrix<double>&,
                                            const DenseMatrix<double>&);
extern template bool allclose<float>(const DenseMatrix<float>&,
                                     const DenseMatrix<float>&, double, double);
extern template bool allclose<double>(const DenseMatrix<double>&,
                                      const DenseMatrix<double>&, double,
                                      double);
extern template double frobenius_norm<float>(const DenseMatrix<float>&);
extern template double frobenius_norm<double>(const DenseMatrix<double>&);

}  // namespace cbm
