// Online running statistics (Welford) for benchmark repetitions.
//
// The paper reports "average time ± std over 250 runs"; RunStats accumulates
// exactly those quantities without storing samples.
#pragma once

#include <cstddef>

namespace cbm {

/// Accumulates count/mean/variance/min/max of a stream of doubles.
class RunStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace cbm
