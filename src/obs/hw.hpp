// Hardware performance-counter sampling (cbm::obs::hw).
//
// Wraps perf_event_open into per-thread counter sets that can be read around
// any region of code: bench repetitions, autotuner probes, or any CBM_SPAN
// via the CBM_SPAN_HW macro (obs.hpp). Counters measure the *calling thread*
// (pid = 0, cpu = any), so a sample around an OpenMP product attributes the
// orchestrating thread's work — pin to one thread for whole-kernel numbers.
//
// Sampling is off unless CBM_PERF=on|force (common/envknobs.hpp); when off,
// a sampling point costs one relaxed atomic load and a branch, and no perf
// fd is ever opened. When on, unavailable counters (perf_event_paranoid,
// seccomp'd containers, VMs without a PMU) degrade per event: hardware
// counters may be absent while the software fallbacks (task clock, page
// faults, context switches) still deliver, and a sample says which — or
// reports available=false with the reason when nothing opened at all.
// CBM_PERF=force escalates "nothing opened" to a CbmError so a run that was
// supposed to be attributed cannot silently produce bare wall times.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/envknobs.hpp"

namespace cbm::obs::hw {

namespace detail {
/// PerfMode as int; -1 = CBM_PERF not parsed yet.
extern std::atomic<int> g_mode;
int init_mode();  // parses CBM_PERF (throws on garbage), stores, returns
}  // namespace detail

/// Active sampling mode. First call parses CBM_PERF (and may throw on an
/// invalid value); later calls are one relaxed atomic load.
inline PerfMode sampling_mode() {
  int m = detail::g_mode.load(std::memory_order_relaxed);
  if (m < 0) m = detail::init_mode();
  return static_cast<PerfMode>(m);
}

/// True when counter sampling is requested (CBM_PERF=on|force).
inline bool sampling_enabled() { return sampling_mode() != PerfMode::kOff; }

/// Overrides the CBM_PERF decision (tests, programmatic enablement).
void set_sampling_mode(PerfMode mode);

/// Counter deltas over one sampled region. Raw fields are multiplex-scaled
/// (value × time_enabled ÷ time_running); −1 means that counter was not
/// available on this host. `available` is true when at least one counter
/// delivered — hardware and software families degrade independently.
struct HwSample {
  bool available = false;
  std::string reason;  ///< when !available: why nothing opened

  // Hardware events.
  std::int64_t cycles = -1;
  std::int64_t instructions = -1;
  std::int64_t llc_loads = -1;
  std::int64_t llc_misses = -1;
  std::int64_t stalled_cycles = -1;  ///< backend when supported, else frontend

  // Software events (available wherever perf_event_open works at all).
  std::int64_t task_clock_ns = -1;
  std::int64_t page_faults = -1;
  std::int64_t context_switches = -1;

  /// Instructions per cycle; −1 when either counter is missing.
  [[nodiscard]] double ipc() const;
  /// LLC misses ÷ LLC loads in [0, 1]; −1 when either counter is missing.
  [[nodiscard]] double llc_miss_rate() const;
  /// Stalled ÷ total cycles; −1 when either counter is missing.
  [[nodiscard]] double stall_fraction() const;

  /// Field-wise sum (missing fields stay missing on either side).
  void accumulate(const HwSample& other);
};

/// True when the calling thread managed to open at least one counter (opens
/// lazily on first use; always false while sampling is disabled).
bool thread_counters_available();

/// Why the calling thread's counters are unavailable ("" when available or
/// when sampling is disabled and nothing was ever attempted).
std::string thread_counters_reason();

/// Samples the region between construction and stop() on the calling
/// thread. Cheap no-op construction when sampling is disabled; stop() then
/// returns an unavailable sample whose reason names CBM_PERF. Under
/// CBM_PERF=force, stop() throws CbmError if no counter at all opened.
class HwRegion {
 public:
  /// `request = false` builds an inert region whose stop() reports
  /// unavailability without ever touching a counter (conditional sampling).
  explicit HwRegion(bool request = true);
  HwRegion(const HwRegion&) = delete;
  HwRegion& operator=(const HwRegion&) = delete;

  /// Ends the region and returns the counter deltas. Call once.
  HwSample stop();

 private:
  bool active_ = false;
  // Scaled absolute readings at construction, indexed like the event table
  // in hw.cpp; large enough for every event this module opens.
  double start_[8] = {};
};

/// RAII companion to CBM_SPAN: samples the scope and records the deltas into
/// the metrics registry as `hw.<name>.<counter>` counters plus an
/// `hw.<name>.ipc` gauge. Active only when both sampling (CBM_PERF) and
/// metrics recording are on; otherwise construction is two atomic loads.
class ScopedHwSample {
 public:
  explicit ScopedHwSample(const char* name);
  ~ScopedHwSample();
  ScopedHwSample(const ScopedHwSample&) = delete;
  ScopedHwSample& operator=(const ScopedHwSample&) = delete;

 private:
  const char* name_;  ///< nullptr = inactive
  HwRegion region_;
};

}  // namespace cbm::obs::hw
