#include "gnn/gin.hpp"

#include <cmath>

#include "dense/gemm.hpp"
#include "dense/ops.hpp"
#include "obs/obs.hpp"

namespace cbm {

namespace {

template <typename T>
DenseMatrix<T> glorot(index_t rows, index_t cols, Rng& rng) {
  DenseMatrix<T> w(rows, cols);
  const double limit = std::sqrt(6.0 / (static_cast<double>(rows) + cols));
  w.fill_uniform(rng, static_cast<T>(-limit), static_cast<T>(limit));
  return w;
}

}  // namespace

template <typename T>
GinLayer<T>::GinLayer(index_t in_features, index_t hidden,
                      index_t out_features, T epsilon, Rng& rng)
    : epsilon_(epsilon),
      w0_(glorot<T>(in_features, hidden, rng)),
      w1_(glorot<T>(hidden, out_features, rng)) {}

template <typename T>
void GinLayer<T>::forward(const AdjacencyOp<T>& adj, const DenseMatrix<T>& h,
                          Workspace& ws, DenseMatrix<T>& out) const {
  CBM_CHECK(h.cols() == w0_.rows(), "GinLayer: feature dim mismatch");
  CBM_CHECK(ws.agg.rows() == h.rows() && ws.agg.cols() == h.cols(),
            "GinLayer: bad workspace");
  CBM_SPAN("gnn.gin.layer");
  adj.multiply(h, ws.agg);  // A·H
  // agg += (1+ε)·H, fused over the buffer.
  const T scale = T{1} + epsilon_;
  const T* __restrict__ hp = h.data();
  T* __restrict__ ap = ws.agg.data();
  const std::size_t total = ws.agg.size();
#pragma omp parallel for simd schedule(static)
  for (std::size_t i = 0; i < total; ++i) ap[i] += scale * hp[i];
  // MLP with ReLU between the two dense layers.
  gemm(ws.agg, w0_, ws.mid);
  relu_inplace(ws.mid);
  gemm(ws.mid, w1_, out);
}

template class GinLayer<float>;
template class GinLayer<double>;

}  // namespace cbm
