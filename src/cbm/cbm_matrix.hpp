// CbmMatrix — the Compressed Binary Matrix format (the paper's primary
// contribution).
//
// A CbmMatrix represents one of
//   A        (kPlain):        a binary matrix,
//   A·D      (kColumnScaled): columns scaled by a diagonal, and
//   D·A·D    (kSymScaled):    the GCN-normalised form,
// as a compression tree plus a CSR delta matrix (§III, §V-A). multiply()
// computes C = op(A)·B in the two-stage multiply+update scheme of §IV/§V.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cbm/distance_graph.hpp"
#include "dense/dense_matrix.hpp"
#include "sparse/csr.hpp"
#include "sparse/spmm.hpp"
#include "tree/compression_tree.hpp"

namespace cbm {

/// Which factorisation this CBM matrix represents.
enum class CbmKind {
  kPlain,         ///< A
  kColumnScaled,  ///< A·D  (D folded into the delta values; D not stored)
  kSymScaled,     ///< D·A·D (D folded into values + kept for the update)
  kTwoSided,      ///< D₁·A·D₂ (D₂ folded into values, D₁ kept — the §V-A
                  ///< "easily extended" generalisation)
};

/// Compression-tree solver choice.
enum class TreeAlgorithm {
  kMca,  ///< Chu–Liu/Edmonds on the α-pruned directed graph (default; for
         ///< α = 0 it matches the MST cost — see tests)
  kMst,  ///< Kruskal on the full undirected distance graph, the verbatim
         ///< §III construction; ignores alpha
};

/// Update-stage execution policy (§V-B).
enum class UpdateSchedule {
  kSequential,     ///< single-threaded topological sweep
  kBranchDynamic,  ///< OpenMP dynamic over branches (the paper's choice)
  kBranchStatic,   ///< OpenMP static over branches (ablation)
  kColumnSplit,    ///< every thread sweeps the whole tree over its own slice
                   ///< of B's columns — parallelism independent of the
                   ///< virtual root's fan-out (wins when the tree has few
                   ///< branches, where the paper's scheme has no work units)
};

/// How multiply() executes the two-stage product.
enum class MultiplyPath {
  kTwoStage,    ///< delta SpMM over all of C, then the tree update (§IV)
  kFusedTiled,  ///< column-tiled: both stages per tile while it is hot
};

/// Full execution plan for one C = op(A)·B product: which engine runs, and
/// the per-stage schedules the two-stage engine uses. The fused engine takes
/// only the tile width (its stage interleaving replaces both schedules).
struct MultiplySchedule {
  MultiplyPath path = MultiplyPath::kTwoStage;
  SpmmSchedule spmm = SpmmSchedule::kNnzBalanced;
  UpdateSchedule update = UpdateSchedule::kBranchDynamic;
  index_t tile_cols = 0;  ///< fused tile width; 0 = auto (CBM_TILE_COLS env
                          ///< override, else detected cache geometry)

  /// Two-stage plan with the given stage schedules (the historical default).
  static MultiplySchedule two_stage(
      UpdateSchedule update = UpdateSchedule::kBranchDynamic,
      SpmmSchedule spmm = SpmmSchedule::kNnzBalanced);

  /// Fused column-tiled plan; tile_cols 0 = auto.
  static MultiplySchedule fused(index_t tile_cols = 0);

  /// Reads CBM_MULTIPLY_PATH (two_stage | fused), CBM_SPMM_SCHEDULE
  /// (row_static | row_dynamic | nnz_balanced), CBM_UPDATE_SCHEDULE
  /// (sequential | branch_dynamic | branch_static | column_split) and
  /// CBM_TILE_COLS. Unset variables keep the defaults above; unknown values
  /// throw (a mistyped knob must not silently benchmark the wrong engine).
  static MultiplySchedule from_env();
};

/// Options controlling compression.
struct CbmOptions {
  int alpha = 0;                       ///< §V-C pruning threshold
  TreeAlgorithm algorithm = TreeAlgorithm::kMca;
  index_t max_candidates_per_row = 0;  ///< 0 = unlimited (see DistanceGraph)
};

/// Construction statistics (the paper's Table II columns, plus the
/// per-phase split that the stage-level profiling exposes).
struct CbmStats {
  double build_seconds = 0.0;
  double distance_graph_seconds = 0.0;  ///< candidate-edge enumeration
  double tree_solve_seconds = 0.0;      ///< MST/MCA solve + rooting
  double delta_seconds = 0.0;           ///< delta-matrix extraction
  std::size_t candidate_edges = 0;   ///< admitted distance-graph edges
  std::int64_t tree_weight = 0;      ///< MST/MCA cost = total delta count
  std::int64_t total_deltas = 0;     ///< nnz(A')
  std::int64_t source_nnz = 0;       ///< nnz(A)
  index_t root_out_degree = 0;       ///< update-stage parallelism
  index_t max_depth = 0;
  std::size_t bytes = 0;             ///< S_CBM
};

template <typename T>
class CbmMatrix {
 public:
  CbmMatrix() = default;

  /// Compresses a binary matrix A (kPlain).
  static CbmMatrix compress(const CsrMatrix<T>& a,
                            const CbmOptions& options = {},
                            CbmStats* stats = nullptr);

  /// Compresses A·D or D·A·D: `a` must be binary, `diag` holds the diagonal
  /// of D. `kind` selects kColumnScaled or kSymScaled.
  static CbmMatrix compress_scaled(const CsrMatrix<T>& a,
                                   std::span<const T> diag, CbmKind kind,
                                   const CbmOptions& options = {},
                                   CbmStats* stats = nullptr);

  /// Compresses D₁·A·D₂ with distinct diagonals (kTwoSided). D₂ is folded
  /// into the delta values; D₁ must stay resident for the update stage and
  /// must be free of zeros (Eq. 6 divides by it).
  static CbmMatrix compress_two_sided(const CsrMatrix<T>& a,
                                      std::span<const T> left_diag,
                                      std::span<const T> right_diag,
                                      const CbmOptions& options = {},
                                      CbmStats* stats = nullptr);

  /// Reassembles a CbmMatrix from its stored parts (deserialisation,
  /// partitioned construction). Validates the same invariants compression
  /// guarantees.
  static CbmMatrix from_parts(CbmKind kind, CompressionTree tree,
                              CsrMatrix<T> delta, std::vector<T> diag);

  /// C = op(A) · B. C must be pre-shaped (rows() × B.cols()); its previous
  /// content is overwritten. No allocations happen here (Property 3): the
  /// multiply stage writes C directly and the update stage fixes it up
  /// in place.
  void multiply(const DenseMatrix<T>& b, DenseMatrix<T>& c,
                UpdateSchedule schedule = UpdateSchedule::kBranchDynamic) const;

  /// C = op(A) · B under an explicit execution plan (engine + per-stage
  /// schedules). The UpdateSchedule overload above is shorthand for the
  /// two-stage plan; MultiplySchedule::fused() selects the column-tiled
  /// engine. Every plan produces identical results.
  void multiply(const DenseMatrix<T>& b, DenseMatrix<T>& c,
                const MultiplySchedule& schedule) const;

  /// y = op(A) · x — the matrix-vector product of §IV (Eqs. 4–6). Same
  /// two-stage structure with p = 1; y is overwritten.
  void multiply_vector(
      std::span<const T> x, std::span<T> y,
      UpdateSchedule schedule = UpdateSchedule::kBranchDynamic) const;

  /// Decompresses back to an explicit CSR matrix equal to op(A) — the exact
  /// inverse of compression (Equation 2 applied down the tree). Useful for
  /// interop and as a self-check; O(nnz(op(A))) time and memory.
  [[nodiscard]] CsrMatrix<T> materialize() const;

  [[nodiscard]] index_t rows() const { return delta_.rows(); }
  [[nodiscard]] index_t cols() const { return delta_.cols(); }
  [[nodiscard]] CbmKind kind() const { return kind_; }

  [[nodiscard]] const CompressionTree& tree() const { return tree_; }
  [[nodiscard]] const CsrMatrix<T>& delta_matrix() const { return delta_; }

  /// Left/update-stage diagonal, kept for kSymScaled and kTwoSided (empty
  /// otherwise).
  [[nodiscard]] std::span<const T> diagonal() const { return diag_; }

  /// Heap bytes of everything multiply() needs: delta CSR + tree (+ diagonal
  /// for kSymScaled). The paper's S_CBM.
  [[nodiscard]] std::size_t bytes() const;

  /// Scalar multiply/add operations one multiply() against a p-column dense
  /// matrix performs (Property-2 accounting; compare csr_spmm_flops).
  [[nodiscard]] std::size_t scalar_ops(index_t bcols) const;

 private:
  static CbmMatrix compress_impl(const CsrMatrix<T>& a,
                                 std::span<const T> column_scale,
                                 std::span<const T> update_diag, CbmKind kind,
                                 const CbmOptions& options, CbmStats* stats);

  CbmKind kind_ = CbmKind::kPlain;
  CompressionTree tree_;
  CsrMatrix<T> delta_;   ///< A' or (AD)'
  std::vector<T> diag_;  ///< update-stage diagonal (kSymScaled / kTwoSided)
};

extern template class CbmMatrix<float>;
extern template class CbmMatrix<double>;

}  // namespace cbm
