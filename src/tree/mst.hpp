// Kruskal minimum spanning tree — the α = 0 (symmetric) compression-tree
// solver of the paper's Section III.
#pragma once

#include <vector>

#include "tree/edge.hpp"

namespace cbm {

/// Result of an MST computation on n nodes.
struct MstResult {
  std::int64_t total_weight = 0;
  /// Indices into the input edge list of the n-1 chosen edges.
  std::vector<std::size_t> edge_ids;
};

/// Kruskal over an undirected edge list. Requires the edges to connect all
/// n nodes (the CBM distance graph always is, thanks to the virtual node).
/// Throws CbmError when the graph is disconnected.
MstResult kruskal_mst(index_t num_nodes, std::vector<WeightedEdge> edges);

/// Converts an undirected spanning forest into a parent array rooted at
/// `root` (parent[root] = -1) via BFS over the chosen edges.
std::vector<index_t> root_tree(index_t num_nodes,
                               const std::vector<WeightedEdge>& edges,
                               const std::vector<std::size_t>& edge_ids,
                               index_t root);

}  // namespace cbm
