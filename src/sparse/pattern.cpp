#include "sparse/pattern.hpp"

#include <vector>

namespace cbm {

template <typename T>
CsrMatrix<T> binarize(const CsrMatrix<T>& a) {
  std::vector<offset_t> indptr(a.indptr().begin(), a.indptr().end());
  std::vector<index_t> indices(a.indices().begin(), a.indices().end());
  std::vector<T> values(a.values().size(), T{1});
  return CsrMatrix<T>(a.rows(), a.cols(), std::move(indptr),
                      std::move(indices), std::move(values));
}

template <typename T>
CsrMatrix<T> symmetrize_pattern(const CsrMatrix<T>& a) {
  CBM_CHECK(a.rows() == a.cols(), "symmetrize requires a square matrix");
  CooMatrix<T> coo;
  coo.rows = a.rows();
  coo.cols = a.cols();
  coo.reserve(static_cast<std::size_t>(a.nnz()) * 2);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (const index_t j : a.row_indices(i)) {
      if (i == j) continue;
      coo.push(i, j, T{1});
      coo.push(j, i, T{1});
    }
  }
  // from_coo sums duplicates; re-binarise afterwards.
  return binarize(CsrMatrix<T>::from_coo(coo));
}

template <typename T>
CsrMatrix<T> prune_zeros(const CsrMatrix<T>& a) {
  std::vector<offset_t> indptr;
  std::vector<index_t> indices;
  std::vector<T> values;
  indptr.reserve(static_cast<std::size_t>(a.rows()) + 1);
  indptr.push_back(0);
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_indices(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (vals[k] != T{0}) {
        indices.push_back(cols[k]);
        values.push_back(vals[k]);
      }
    }
    indptr.push_back(static_cast<offset_t>(indices.size()));
  }
  return CsrMatrix<T>(a.rows(), a.cols(), std::move(indptr),
                      std::move(indices), std::move(values));
}

template CsrMatrix<float> binarize<float>(const CsrMatrix<float>&);
template CsrMatrix<double> binarize<double>(const CsrMatrix<double>&);
template CsrMatrix<float> symmetrize_pattern<float>(const CsrMatrix<float>&);
template CsrMatrix<double> symmetrize_pattern<double>(
    const CsrMatrix<double>&);
template CsrMatrix<float> prune_zeros<float>(const CsrMatrix<float>&);
template CsrMatrix<double> prune_zeros<double>(const CsrMatrix<double>&);

}  // namespace cbm
