// Partitioned CBM demo (§VIII of the paper, implemented): shows that
// clustering rows before compression bounds the construction working set and
// that MinHash clustering survives a hostile row ordering.
//
//   ./partitioned_compression [nodes]
#include <cstdio>
#include <numeric>

#include "cbm/partitioned.hpp"
#include "common/rng.hpp"
#include "dense/ops.hpp"
#include "graph/generators.hpp"
#include "sparse/spmm.hpp"

namespace {

using namespace cbm;

/// Applies a random symmetric permutation: destroys row locality, the way a
/// real crawl ordering would.
CsrMatrix<real_t> shuffle_rows(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<index_t> perm(static_cast<std::size_t>(g.num_nodes()));
  std::iota(perm.begin(), perm.end(), index_t{0});
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  CooMatrix<real_t> coo;
  coo.rows = g.num_nodes();
  coo.cols = g.num_nodes();
  for (index_t i = 0; i < g.num_nodes(); ++i) {
    for (const index_t j : g.neighbors(i)) coo.push(perm[i], perm[j], 1.0f);
  }
  return CsrMatrix<real_t>::from_coo(coo);
}

void report(const char* label, double build, std::size_t peak_cand,
            double ratio, index_t parts) {
  std::printf("%-20s build %6.2fs  peak-candidates %9zu  ratio %5.2fx"
              "  parts %d\n",
              label, build, peak_cand, ratio, parts);
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoi(argv[1]) : 8000;
  const Graph g = community_graph(
      {.num_nodes = n, .team_min = 24, .team_max = 96, .size_exponent = 1.8,
       .intra_prob = 1.0, .cross_per_node = 2.0},
      21);
  const auto a = shuffle_rows(g, 22);
  std::printf("community graph, %d nodes, %.1f avg degree, rows shuffled\n\n",
              n, g.average_degree());

  // Monolithic baseline.
  CbmStats mono;
  const auto cbm = CbmMatrix<real_t>::compress(a, {.alpha = 0}, &mono);
  report("monolithic", mono.build_seconds, mono.candidate_edges,
         static_cast<double>(a.bytes()) / mono.bytes, 1);

  // Partitioned, three clustering strategies.
  for (const auto& [method, label] :
       {std::pair{ClusterMethod::kConsecutive, "consecutive"},
        std::pair{ClusterMethod::kMinHash, "minhash"},
        std::pair{ClusterMethod::kLabelPropagation, "labelprop"}}) {
    PartitionedOptions options;
    options.method = method;
    options.num_clusters = 32;
    PartitionedStats stats;
    auto part = PartitionedCbmMatrix<real_t>::compress(a, options, &stats);
    report(label, stats.build_seconds, stats.peak_candidate_edges,
           static_cast<double>(a.bytes()) / stats.bytes, stats.num_parts);

    // Spot-check correctness.
    Rng rng(23);
    DenseMatrix<real_t> b(n, 16);
    b.fill_uniform(rng);
    DenseMatrix<real_t> c_part(n, 16), c_csr(n, 16);
    part.multiply(b, c_part);
    csr_spmm(a, b, c_csr);
    if (!allclose(c_part, c_csr, 1e-5, 1e-5)) {
      std::printf("  !! result mismatch\n");
      return 1;
    }
  }
  std::printf(
      "\nMinHash regroups the shuffled near-duplicate rows, recovering most\n"
      "of the monolithic ratio while bounding the per-part candidate set —\n"
      "the scaling strategy the paper sketches for Reddit-sized graphs.\n");
  return 0;
}
