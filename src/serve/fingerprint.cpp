#include "serve/fingerprint.hpp"

namespace cbm::serve {

std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed) {
  constexpr std::uint64_t kPrime = 0x100000001B3ull;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

template <typename T>
std::uint64_t graph_fingerprint(const CsrMatrix<T>& a) {
  const std::int64_t header[2] = {a.rows(), a.cols()};
  std::uint64_t h = fnv1a64(header, sizeof(header));
  const auto indptr = a.indptr();
  h = fnv1a64(indptr.data(), indptr.size_bytes(), h);
  const auto indices = a.indices();
  h = fnv1a64(indices.data(), indices.size_bytes(), h);
  const auto values = a.values();
  h = fnv1a64(values.data(), values.size_bytes(), h);
  return h;
}

template std::uint64_t graph_fingerprint<float>(const CsrMatrix<float>&);
template std::uint64_t graph_fingerprint<double>(const CsrMatrix<double>&);

}  // namespace cbm::serve
