// Differential-oracle tests (cbm::check harness): every multiply path the
// library offers — two-stage under every SpMM × update schedule, the fused
// column-tiled engine across tile widths, the partitioned format, the
// transpose operator, and the vector product — must agree with the naive
// dense reference kernel on the same inputs, across input regimes from
// empty through power-law to fully dense, at 1 and several threads.
//
// All randomized inputs draw per-test seeds (test::auto_seed); a failure
// logs the seed and CBM_TEST_SEED=<seed> reruns the exact case
// (docs/testing.md). The validator tests at the bottom are the negative
// side: CBM_VALIDATE=full must reject deliberately corrupted trees.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "cbm/cbm_matrix.hpp"
#include "cbm/partitioned.hpp"
#include "cbm/transpose.hpp"
#include "check/check.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/vectorops.hpp"
#include "gnn/adjacency_op.hpp"
#include "sparse/scale.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

using test::EnvGuard;

// ------------------------------------------------------- input fixtures --

/// Named input regime; `make` draws the matrix from a seed so that every
/// test using the fixture gets an independent instance.
struct GenCase {
  const char* name;
  CsrMatrix<float> (*make)(std::uint64_t seed);
};

CsrMatrix<float> gen_random(std::uint64_t s) {
  return check::random_binary<float>(48, 0.07, s);
}
CsrMatrix<float> gen_clustered(std::uint64_t s) {
  return check::clustered_binary<float>(64, 5, 10, 2, s);
}
CsrMatrix<float> gen_banded(std::uint64_t s) {
  return check::banded_binary<float>(56, 4, 0.6, s);
}
CsrMatrix<float> gen_power_law(std::uint64_t s) {
  return check::power_law_binary<float>(64, 4, s);
}
// Degenerate regimes (the named edge-case fixtures): empty, identity, a
// single nonzero row, all rows identical (maximum compression), one fully
// dense row in a sparse matrix, and the all-ones matrix.
CsrMatrix<float> gen_empty(std::uint64_t) {
  return check::empty_binary<float>(40, 40);
}
CsrMatrix<float> gen_identity(std::uint64_t) {
  return CsrMatrix<float>::identity(32);
}
CsrMatrix<float> gen_single_row(std::uint64_t s) {
  Rng rng(s);
  CooMatrix<float> coo;
  coo.rows = 36;
  coo.cols = 36;
  coo.push(11, 0, 1.0f);  // keep the row nonempty for any draw
  for (index_t j = 1; j < 36; ++j) {
    if (rng.next_bool(0.4)) coo.push(11, j, 1.0f);
  }
  return CsrMatrix<float>::from_coo(coo);
}
CsrMatrix<float> gen_identical_rows(std::uint64_t s) {
  return check::identical_rows_binary<float>(48, 9, s);
}
CsrMatrix<float> gen_dense_row(std::uint64_t s) {
  return check::single_dense_row_binary<float>(40, 7, 0.05, s);
}
CsrMatrix<float> gen_dense(std::uint64_t) {
  return check::dense_binary<float>(24, 24);
}

const GenCase kGenCases[] = {
    {"random", gen_random},         {"clustered", gen_clustered},
    {"banded", gen_banded},         {"power_law", gen_power_law},
    {"empty", gen_empty},           {"identity", gen_identity},
    {"single_row", gen_single_row}, {"identical_rows", gen_identical_rows},
    {"dense_row", gen_dense_row},   {"dense", gen_dense},
};

class DifferentialPaths : public ::testing::TestWithParam<GenCase> {};

/// Oracle-vs-path tolerance: reassociation across schedules/engines moves
/// float sums a few ULP; the dense oracle accumulates in double.
constexpr double kRtol = 1e-4;
constexpr double kAtol = 1e-5;
constexpr std::int64_t kMaxUlps = 32;

#define EXPECT_MATCHES_ORACLE(actual, oracle, what)                      \
  do {                                                                   \
    const auto cmp_ = check::compare_allclose((actual), (oracle), kRtol, \
                                              kAtol, kMaxUlps);          \
    EXPECT_TRUE(cmp_.ok) << what << ": " << cmp_.to_string();            \
  } while (0)

TEST_P(DifferentialPaths, TwoStageEverySchedulePair) {
  const auto gen = GetParam();
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = gen.make(seed);
  const index_t n = a.rows();
  const auto b = check::random_dense<float>(a.cols(), 13, test::auto_seed(1));
  const auto oracle = check::dense_reference_multiply(a, b);
  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 2});

  for (const SpmmSchedule spmm :
       {SpmmSchedule::kRowStatic, SpmmSchedule::kRowDynamic,
        SpmmSchedule::kNnzBalanced}) {
    for (const UpdateSchedule update :
         {UpdateSchedule::kSequential, UpdateSchedule::kBranchDynamic,
          UpdateSchedule::kBranchStatic, UpdateSchedule::kColumnSplit,
          UpdateSchedule::kTaskGraph}) {
      for (const int threads : {1, 4}) {
        ThreadScope scope(threads);
        DenseMatrix<float> c(n, 13);
        c.fill(-3.0f);  // the product must fully overwrite C
        cbm.multiply(b, c, MultiplySchedule::two_stage(update, spmm));
        EXPECT_MATCHES_ORACLE(
            c, oracle,
            "spmm=" << static_cast<int>(spmm)
                    << " update=" << static_cast<int>(update)
                    << " threads=" << threads);
      }
    }
  }
}

TEST_P(DifferentialPaths, FusedEveryTileWidth) {
  const auto gen = GetParam();
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = gen.make(seed);
  const index_t n = a.rows();
  const auto b = check::random_dense<float>(a.cols(), 33, test::auto_seed(1));
  const auto oracle = check::dense_reference_multiply(a, b);
  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 2});

  for (const index_t tile : {index_t{0}, index_t{1}, index_t{3}, index_t{8},
                             index_t{64}}) {
    for (const int threads : {1, 4}) {
      ThreadScope scope(threads);
      DenseMatrix<float> c(n, 33);
      c.fill(-3.0f);
      cbm.multiply(b, c, MultiplySchedule::fused(tile));
      EXPECT_MATCHES_ORACLE(c, oracle,
                            "tile=" << tile << " threads=" << threads);
    }
  }
}

TEST_P(DifferentialPaths, EverySimdLevelEveryWidth) {
  // The dispatched kernels (CBM_SIMD sweep): every level this host/build
  // supports must match the dense oracle on both engines, at operand widths
  // straddling the vector registers (1 through 63 columns — full panels,
  // single vectors, masked/stack tails).
  const auto gen = GetParam();
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = gen.make(seed);
  const index_t n = a.rows();
  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 2});

  for (const index_t p : {index_t{1}, index_t{3}, index_t{7}, index_t{15},
                          index_t{63}}) {
    const auto b = check::random_dense<float>(
        a.cols(), p, test::auto_seed(static_cast<std::uint64_t>(p)));
    const auto oracle = check::dense_reference_multiply(a, b);
    for (const SimdLevel level :
         {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
      if (!simd_level_supported(level)) continue;
      SimdScope scope(level);
      DenseMatrix<float> c(n, p);
      c.fill(-3.0f);
      cbm.multiply(b, c, MultiplySchedule::two_stage());
      EXPECT_MATCHES_ORACLE(
          c, oracle, "two-stage simd=" << simd_level_name(level) << " p=" << p);
      c.fill(-3.0f);
      cbm.multiply(b, c, MultiplySchedule::fused(0));
      EXPECT_MATCHES_ORACLE(
          c, oracle, "fused simd=" << simd_level_name(level) << " p=" << p);
      if (p > 8) {
        c.fill(-3.0f);
        cbm.multiply(b, c, MultiplySchedule::fused(8));
        EXPECT_MATCHES_ORACLE(c, oracle,
                              "fused tile=8 simd=" << simd_level_name(level)
                                                   << " p=" << p);
      }
    }
  }
}

TEST_P(DifferentialPaths, PartitionedMatchesOracle) {
  const auto gen = GetParam();
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = gen.make(seed);
  const index_t n = a.rows();
  const auto b = check::random_dense<float>(a.cols(), 7, test::auto_seed(1));
  const auto oracle = check::dense_reference_multiply(a, b);

  PartitionedOptions options;
  options.base.alpha = 2;
  options.num_clusters = 4;
  auto part = PartitionedCbmMatrix<float>::compress(a, options);
  for (const int threads : {1, 4}) {
    ThreadScope scope(threads);
    DenseMatrix<float> c(n, 7);
    c.fill(-3.0f);
    part.multiply(b, c);
    EXPECT_MATCHES_ORACLE(c, oracle, "partitioned threads=" << threads);
  }
}

TEST_P(DifferentialPaths, PartitionedEveryExecPartsAndPlan) {
  // The partitioned format across the full execution cross product: part
  // counts × thread counts × per-part plans (two-stage incl. the task-graph
  // update sweep, fused at several tile widths) × both executors
  // (CBM_PART_EXEC=serial | taskgraph). Every combination must reproduce the
  // dense oracle bit-for-bit within tolerance — in particular the task-graph
  // path, whose fused row-scatter and column panels are new failure surface.
  const auto gen = GetParam();
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = gen.make(seed);
  const index_t n = a.rows();
  const auto b = check::random_dense<float>(a.cols(), 19, test::auto_seed(1));
  const auto oracle = check::dense_reference_multiply(a, b);

  const MultiplySchedule plans[] = {
      MultiplySchedule::two_stage(),
      MultiplySchedule::two_stage(UpdateSchedule::kTaskGraph),
      MultiplySchedule::fused(0),
      MultiplySchedule::fused(5),
  };
  for (const index_t clusters : {index_t{1}, index_t{3}, index_t{8}}) {
    PartitionedOptions options;
    options.base.alpha = 2;
    options.num_clusters = clusters;
    auto part = PartitionedCbmMatrix<float>::compress(a, options);
    for (const char* exec_mode : {"serial", "taskgraph"}) {
      const EnvGuard env("CBM_PART_EXEC", exec_mode);
      for (const auto& plan : plans) {
        for (const int threads : {1, 4}) {
          ThreadScope scope(threads);
          DenseMatrix<float> c(n, 19);
          c.fill(-3.0f);
          part.multiply(b, c, plan);
          EXPECT_MATCHES_ORACLE(
              c, oracle,
              "clusters=" << clusters << " exec=" << exec_mode << " path="
                          << multiply_path_name(plan.path)
                          << " tile=" << plan.tile_cols
                          << " threads=" << threads);
        }
      }
      // multiply_auto resolves a per-part plan; it must agree regardless of
      // what each part picks.
      ThreadScope scope(4);
      DenseMatrix<float> c(n, 19);
      c.fill(-3.0f);
      part.multiply_auto(b, c);
      EXPECT_MATCHES_ORACLE(c, oracle, "clusters=" << clusters << " exec="
                                                   << exec_mode << " auto");
    }
  }
}

// Dependency-shape generators for the task-graph stress test: a staircase
// (row i ⊇ row i-1 — one maximal parent chain) and a star (every row a
// one-column variation of row 0 — maximal fan-out from a single parent).
CsrMatrix<float> gen_staircase(index_t n) {
  CooMatrix<float> coo;
  coo.rows = n;
  coo.cols = n;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) coo.push(i, j, 1.0f);
  }
  return CsrMatrix<float>::from_coo(coo);
}

CsrMatrix<float> gen_star(index_t n) {
  CooMatrix<float> coo;
  coo.rows = n;
  coo.cols = n;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < 8; ++j) coo.push(i, j, 1.0f);
    if (i >= 8) coo.push(i, i, 1.0f);  // one private column per row
  }
  return CsrMatrix<float>::from_coo(coo);
}

TEST(TaskGraphStress, DeepAndBushyTreesUnderTinyGrain) {
  // CBM_EXEC_GRAIN=1 puts every compressed row in its own task block, so the
  // task graph mirrors the full compression tree: the staircase becomes one
  // long dependency chain, the star one huge fan-out. Run at 4 threads with
  // randomized operands; any missed parent→child ordering corrupts C (and
  // trips TSan in the sanitizer CI job).
  const EnvGuard grain("CBM_EXEC_GRAIN", "1");
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  struct Shape {
    const char* name;
    CsrMatrix<float> a;
  };
  const Shape shapes[] = {
      {"staircase", gen_staircase(96)},
      {"star", gen_star(96)},
  };
  for (const auto& shape : shapes) {
    const auto b =
        check::random_dense<float>(shape.a.cols(), 21, test::auto_seed(1));
    const auto oracle = check::dense_reference_multiply(shape.a, b);
    const auto cbm = CbmMatrix<float>::compress(shape.a, {.alpha = 0});
    ThreadScope scope(4);
    for (int rep = 0; rep < 8; ++rep) {
      DenseMatrix<float> c(shape.a.rows(), 21);
      c.fill(-3.0f);
      cbm.multiply(b, c,
                   MultiplySchedule::two_stage(UpdateSchedule::kTaskGraph));
      EXPECT_MATCHES_ORACLE(c, oracle, shape.name << " rep=" << rep);
    }
    // Row-scaled kinds exercise the Eq. 6 update variant under the same
    // dependency shapes.
    const auto diag =
        check::random_diagonal<float>(shape.a.rows(), test::auto_seed(2));
    const auto scaled = CbmMatrix<float>::compress_scaled(
        shape.a, std::span<const float>(diag), CbmKind::kSymScaled,
        {.alpha = 0});
    const auto scaled_oracle = check::dense_reference_multiply(
        scale_both(shape.a, std::span<const float>(diag),
                   std::span<const float>(diag)),
        b);
    DenseMatrix<float> c(shape.a.rows(), 21);
    c.fill(-3.0f);
    scaled.multiply(b, c,
                    MultiplySchedule::two_stage(UpdateSchedule::kTaskGraph));
    EXPECT_MATCHES_ORACLE(c, scaled_oracle, shape.name << " sym-scaled");
  }
}

TEST(TaskGraphStress, PartitionedTaskGraphUnderTinyGrainAndOversubscription) {
  // Parts × panels with more tasks than threads, tiny grain, repeated runs:
  // the cross-part fan-out must stay race-free and deterministic up to
  // floating-point reassociation (each output row is written by exactly one
  // task, so results must be bitwise-stable across reps).
  const EnvGuard grain("CBM_EXEC_GRAIN", "2");
  const EnvGuard exec("CBM_PART_EXEC", "taskgraph");
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = check::clustered_binary<float>(128, 8, 12, 3, seed);
  const auto b = check::random_dense<float>(a.cols(), 17, test::auto_seed(1));
  const auto oracle = check::dense_reference_multiply(a, b);

  PartitionedOptions options;
  options.base.alpha = 2;
  options.num_clusters = 6;
  auto part = PartitionedCbmMatrix<float>::compress(a, options);
  ThreadScope scope(4);
  DenseMatrix<float> first(a.rows(), 17);
  for (int rep = 0; rep < 8; ++rep) {
    DenseMatrix<float> c(a.rows(), 17);
    c.fill(-3.0f);
    part.multiply(b, c,
                  MultiplySchedule::two_stage(UpdateSchedule::kTaskGraph));
    EXPECT_MATCHES_ORACLE(c, oracle, "rep=" << rep);
    if (rep == 0) {
      first = c;
    } else {
      // Bitwise determinism: no task touches another task's rows, so the
      // result may not drift across reps.
      ASSERT_EQ(std::memcmp(first.data(), c.data(),
                            sizeof(float) * static_cast<std::size_t>(
                                                a.rows()) * 17),
                0)
          << "rep " << rep << " differs bitwise from rep 0";
    }
  }
}

TEST_P(DifferentialPaths, TransposeMatchesOracle) {
  const auto gen = GetParam();
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = gen.make(seed);
  const auto b = check::random_dense<float>(a.rows(), 9, test::auto_seed(1));
  const auto oracle = check::dense_reference_multiply_transposed(a, b);

  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 2});
  CbmTranspose<float> at(cbm);
  for (const int threads : {1, 4}) {
    ThreadScope scope(threads);
    DenseMatrix<float> c(a.cols(), 9);
    c.fill(-3.0f);
    at.multiply(b, c);
    EXPECT_MATCHES_ORACLE(c, oracle, "transpose threads=" << threads);
  }
}

TEST_P(DifferentialPaths, VectorPathMatchesOracle) {
  const auto gen = GetParam();
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = gen.make(seed);
  const auto xm = check::random_dense<float>(a.cols(), 1, test::auto_seed(1));
  const std::vector<float> x(xm.data(), xm.data() + a.cols());
  const auto oracle =
      check::dense_reference_multiply_vector(a, std::span<const float>(x));

  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 2});
  std::vector<float> y(static_cast<std::size_t>(a.rows()), -3.0f);
  cbm.multiply_vector(x, y);
  const auto cmp = check::compare_allclose(
      std::span<const float>(y), std::span<const float>(oracle), kRtol, kAtol,
      kMaxUlps);
  EXPECT_TRUE(cmp.ok) << cmp.to_string();
}

TEST_P(DifferentialPaths, ScaledKindsAcrossEngines) {
  const auto gen = GetParam();
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = gen.make(seed);
  const index_t n = a.rows();
  if (n != a.cols()) GTEST_SKIP() << "scaled kinds need a square matrix";
  const auto d1 = check::random_diagonal<float>(n, test::auto_seed(1));
  const auto d2 = check::random_diagonal<float>(n, test::auto_seed(2));
  const std::span<const float> s1(d1), s2(d2);
  const auto b = check::random_dense<float>(n, 11, test::auto_seed(3));

  struct ScaledCase {
    const char* name;
    CsrMatrix<float> baseline;
    CbmMatrix<float> cbm;
  };
  const ScaledCase cases[] = {
      {"AD", scale_columns(a, s1),
       CbmMatrix<float>::compress_scaled(a, s1, CbmKind::kColumnScaled,
                                         {.alpha = 2})},
      {"DAD", scale_both(a, s1, s1),
       CbmMatrix<float>::compress_scaled(a, s1, CbmKind::kSymScaled,
                                         {.alpha = 2})},
      {"D1AD2", scale_both(a, s1, s2),
       CbmMatrix<float>::compress_two_sided(a, s1, s2, {.alpha = 2})},
  };
  for (const auto& sc : cases) {
    const auto oracle = check::dense_reference_multiply(sc.baseline, b);
    DenseMatrix<float> c_two(n, 11), c_fused(n, 11);
    sc.cbm.multiply(b, c_two, MultiplySchedule::two_stage());
    sc.cbm.multiply(b, c_fused, MultiplySchedule::fused(5));
    EXPECT_MATCHES_ORACLE(c_two, oracle, sc.name << " two-stage");
    EXPECT_MATCHES_ORACLE(c_fused, oracle, sc.name << " fused");
  }
}

INSTANTIATE_TEST_SUITE_P(Regimes, DifferentialPaths,
                         ::testing::ValuesIn(kGenCases),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ------------------------------------------------------ validator: positive

TEST(Validator, EveryBuildPassesFullValidation) {
  // CBM_VALIDATE=full re-checks each compression in-line; a throw fails.
  const EnvGuard env("CBM_VALIDATE", "full");
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  for (const auto& gen : kGenCases) {
    SCOPED_TRACE(gen.name);
    const auto a = gen.make(seed);
    for (const int alpha : {0, 2}) {
      const auto cbm = CbmMatrix<float>::compress(a, {.alpha = alpha});
      const auto report = check::validate(cbm);
      EXPECT_TRUE(report.ok()) << report.summary();
      EXPECT_GE(report.rules_checked, 8);
    }
    // The MST path prunes nothing by α; it must validate as well.
    (void)CbmMatrix<float>::compress(a,
                                     {.algorithm = TreeAlgorithm::kMst});
  }
}

TEST(Validator, ReportCarriesAccountingAndJson) {
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = check::clustered_binary<float>(40, 4, 8, 2, seed);
  const auto cbm = CbmMatrix<float>::compress(a);
  const auto report = check::validate(cbm);
  ASSERT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.total_deltas, cbm.delta_matrix().nnz());
  EXPECT_EQ(report.reconstructed_nnz, a.nnz());
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"cbm-check-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"rules_checked\""), std::string::npos);
  // kBuild skips the reconstruction sweep and says so.
  const auto build =
      check::validate(cbm, {.level = check::ValidateLevel::kBuild});
  EXPECT_TRUE(build.ok());
  EXPECT_EQ(build.reconstructed_nnz, -1);
  EXPECT_LT(build.rules_checked, report.rules_checked);
}

TEST(Validator, LevelFromEnvParsesAndRejects) {
  {
    const EnvGuard env("CBM_VALIDATE", "build");
    EXPECT_EQ(check::validate_level_from_env(), check::ValidateLevel::kBuild);
  }
  {
    const EnvGuard env("CBM_VALIDATE", "full");
    EXPECT_EQ(check::validate_level_from_env(), check::ValidateLevel::kFull);
  }
  {
    const EnvGuard env("CBM_VALIDATE", "off");
    EXPECT_EQ(check::validate_level_from_env(), check::ValidateLevel::kOff);
  }
  {
    const EnvGuard env("CBM_VALIDATE", "paranoid");
    EXPECT_THROW(check::validate_level_from_env(), CbmError);
  }
}

// ------------------------------------------------------ validator: negative

/// A tiny handcrafted CBM whose corruptions are deterministic:
///   row 0 = {0,1} (root child), row 1 = {0,2} (parent row 0), row 2 = {0}.
struct TinyParts {
  std::vector<index_t> parent{3, 0, 3};
  CsrMatrix<float> delta{
      3, 3,
      {0, 2, 4, 5},
      {0, 1, /*row1:*/ 1, 2, /*row2:*/ 0},
      {1.0f, 1.0f, /*row1:*/ -1.0f, 1.0f, /*row2:*/ 1.0f}};
};

TEST(Validator, AcceptsTheTinyHandcraftedParts) {
  TinyParts t;
  const auto tree = CompressionTree::from_parents(t.parent);
  const auto report = check::validate_parts<float>(tree, CbmKind::kPlain, {},
                                                   t.delta);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.reconstructed_nnz, 5);  // {0,1}, {0,2}, {0}
}

TEST(Validator, FullDetectsRewiredParent) {
  // Point row 1 at row 2 ({0}) instead of row 0 ({0,1}): its −1 delta at
  // column 1 no longer matches anything the parent holds.
  TinyParts t;
  t.parent[1] = 2;
  const auto tree = CompressionTree::from_parents(t.parent);
  const auto report = check::validate_parts<float>(tree, CbmKind::kPlain, {},
                                                   t.delta);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues.front().rule, "reconstruction");

  // kBuild is structural only and cannot see this corruption; kFull must.
  const auto build = check::validate_parts<float>(
      tree, CbmKind::kPlain, {}, t.delta,
      {.level = check::ValidateLevel::kBuild});
  EXPECT_TRUE(build.ok());

  // End to end: from_parts under CBM_VALIDATE=full refuses the parts...
  {
    const EnvGuard env("CBM_VALIDATE", "full");
    EXPECT_THROW(CbmMatrix<float>::from_parts(
                     CbmKind::kPlain, CompressionTree::from_parents(t.parent),
                     t.delta, {}),
                 CbmError);
  }
  // ...and with validation off construction still succeeds, preserving the
  // zero-overhead default (pinned: CI exports CBM_VALIDATE=full ambiently).
  {
    const EnvGuard env("CBM_VALIDATE", "off");
    (void)CbmMatrix<float>::from_parts(CbmKind::kPlain,
                                       CompressionTree::from_parents(t.parent),
                                       t.delta, {});
  }
}

TEST(Validator, FullDetectsCorruptedDeltaValue) {
  TinyParts t;
  t.delta.values_mut()[0] = 5.0f;  // root row must carry +1 deltas
  const auto tree = CompressionTree::from_parents(t.parent);
  const auto report = check::validate_parts<float>(tree, CbmKind::kPlain, {},
                                                   t.delta);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues.front().rule, "reconstruction");
}

TEST(Validator, DetectsPropertyOneViolation) {
  // Deltas that remove everything they inherit: nnz(A') exceeds nnz(A).
  const std::vector<index_t> parent{2, 0};
  const CsrMatrix<float> delta{2, 2,
                               {0, 2, 4},
                               {0, 1, 0, 1},
                               {1.0f, 1.0f, -1.0f, -1.0f}};
  const auto tree = CompressionTree::from_parents(parent);
  const auto report =
      check::validate_parts<float>(tree, CbmKind::kPlain, {}, delta);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& issue : report.issues) found |= issue.rule == "property-1";
  EXPECT_TRUE(found) << report.summary();
}

TEST(Validator, DetectsDiagonalViolations) {
  TinyParts t;
  const auto tree = CompressionTree::from_parents(t.parent);
  // Row-scaled kind with a zero diagonal entry (Eq. 6 divides by it).
  const std::vector<float> bad_diag{1.0f, 0.0f, 1.0f};
  const auto zero = check::validate_parts<float>(
      tree, CbmKind::kSymScaled, std::span<const float>(bad_diag), t.delta);
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.issues.front().rule, "diagonal");
  // Plain kind must not carry a diagonal at all.
  const std::vector<float> stray{1.0f, 1.0f, 1.0f};
  const auto extra = check::validate_parts<float>(
      tree, CbmKind::kPlain, std::span<const float>(stray), t.delta);
  ASSERT_FALSE(extra.ok());
  EXPECT_EQ(extra.issues.front().rule, "diagonal");
}

TEST(Validator, AlphaAdmissibilityChecksAgainstSource) {
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = check::clustered_binary<float>(50, 4, 9, 2, seed);
  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 3});
  // The builder's own edges satisfy the (sign-corrected) admission strictly.
  const auto ok_report = check::validate_against<float>(
      cbm.tree(), cbm.kind(), cbm.diagonal(), cbm.delta_matrix(), a, {},
      {.alpha = 3});
  EXPECT_TRUE(ok_report.ok()) << ok_report.summary();
  // Demanding a larger α than the tree was built with must flag rows whose
  // savings fall in between (skip silently when the tree compresses nothing).
  const auto strict = check::validate_against<float>(
      cbm.tree(), cbm.kind(), cbm.diagonal(), cbm.delta_matrix(), a, {},
      {.alpha = 1 << 20});
  if (cbm.tree().num_compressed_rows() > 0) {
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.issues.front().rule, "alpha-admissible");
  }
}

TEST(Validator, TruncatesRepeatedIssues) {
  // A corruption that breaks every row reports only the first few per rule.
  const index_t n = 64;
  std::vector<index_t> parent(static_cast<std::size_t>(n), n);
  std::vector<offset_t> indptr(static_cast<std::size_t>(n) + 1);
  std::vector<index_t> indices(static_cast<std::size_t>(n));
  std::vector<float> values(static_cast<std::size_t>(n), -2.0f);  // bad
  for (index_t i = 0; i < n; ++i) {
    indptr[i + 1] = i + 1;
    indices[i] = 0;
  }
  const CsrMatrix<float> delta(n, n, std::move(indptr), std::move(indices),
                               std::move(values));
  const auto tree = CompressionTree::from_parents(parent);
  const auto report = check::validate_parts<float>(
      tree, CbmKind::kPlain, {}, delta, {.max_issues_per_rule = 4});
  ASSERT_FALSE(report.ok());
  EXPECT_LE(report.issues.size(), 5u);  // 4 + the truncation marker
}

// ---------------------------------------- CbmAdjacency validation wiring --

TEST(Validator, CbmAdjacencyHonoursTheKnob) {
  TinyParts t;
  t.parent[1] = 2;  // the rewired-parent corruption from above
  auto corrupt = [&] {
    const EnvGuard off("CBM_VALIDATE", "off");  // get the parts assembled
    return CbmMatrix<float>::from_parts(
        CbmKind::kPlain, CompressionTree::from_parents(t.parent), t.delta,
        {});
  };
  {
    const EnvGuard env("CBM_VALIDATE", "full");
    EXPECT_THROW(CbmAdjacency<float>{corrupt()}, CbmError);
  }
  {
    const EnvGuard env("CBM_VALIDATE", "off");
    (void)CbmAdjacency<float>{corrupt()};  // validation off: accepted
  }
}

}  // namespace
}  // namespace cbm
