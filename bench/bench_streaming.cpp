// Streaming-mutation bench: sustained edge-absorption rate while serving
// multiplies (docs/dynamic_graphs.md).
//
// Phase 1 (absorb-and-serve): a compressed adjacency lives in a
// serve::AdjacencyCache; every round applies one random edge batch through
// mutate_or_invalidate (threshold pinned to 1.0 so no recompression
// interferes with the rate measurement) and then serves one multiply
// through the mutated entry's memoised plan — the steady-state mix of a
// dynamic-graph service. Reported: sustained edges/sec absorbed (mutation
// wall time only), the per-round staleness series, per-round mutation
// latency, and served-multiply latency.
//
// Phase 2 (forced threshold): a fresh cache runs the same batches with the
// threshold pinned to 0.0, so the FIRST mutation crosses it and triggers
// exactly one full background recompression — then the recompressed entry's
// staleness is back to 0 and stays under the threshold's reach until
// mutations degrade it again. The cbm.serve.cache.recompressions delta is
// reported (forced_recompressions) and the bench exits nonzero unless it is
// exactly 1 for the first batch, making the trigger CI-assertable.
//
// Knobs: CBM_STREAM_ROUNDS (default 40), CBM_STREAM_BATCH (edges per batch,
// default 256), CBM_STREAM_NODES (default 2048), plus the usual CBM_BENCH_*
// family. cbm-bench-v1 JSON via CBM_BENCH_JSON.
#include <set>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "cbm/mutate.hpp"
#include "common/timer.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "serve/cache.hpp"
#include "serve/fingerprint.hpp"

int main() {
  using namespace cbm;
  using namespace cbm::bench;
  const auto config = BenchConfig::from_env();
  print_bench_header(config,
                     "Streaming — edge absorption while serving multiplies");
  set_threads(config.threads);
  BenchReport report("streaming", config);
  // The exit status asserts the forced recompression through its counter
  // delta, so recording must be on even without CBM_METRICS/CBM_BENCH_JSON.
  obs::set_metrics_enabled(true);

  const int rounds = env_int("CBM_STREAM_ROUNDS", 40);
  const int batch_edges = env_int("CBM_STREAM_BATCH", 256);
  const index_t nodes =
      static_cast<index_t>(env_int("CBM_STREAM_NODES", 2048));
  const index_t feat_cols = std::min(config.cols, 64);

  const Graph g = barabasi_albert(nodes, 8, 0xD15C0ull);
  const CsrMatrix<real_t> a = g.adjacency();
  std::set<std::pair<index_t, index_t>> pattern;
  for (index_t r = 0; r < a.rows(); ++r) {
    for (const index_t c : a.row_indices(r)) pattern.insert({r, c});
  }

  Rng rng(0x57E4Aull);
  const auto draw_batch = [&] {
    std::vector<EdgeUpdate> ins, rem;
    for (int k = 0; k < batch_edges; ++k) {
      const auto r = static_cast<index_t>(rng.next_below(nodes));
      const auto c = static_cast<index_t>(rng.next_below(nodes));
      if (pattern.contains({r, c})) {
        rem.push_back({r, c});
      } else {
        ins.push_back({r, c});
      }
    }
    return std::make_pair(std::move(ins), std::move(rem));
  };
  const auto apply_to_pattern = [&](const std::vector<EdgeUpdate>& ins,
                                    const std::vector<EdgeUpdate>& rem) {
    for (const auto& e : ins) pattern.insert({e.row, e.col});
    for (const auto& e : rem) pattern.erase({e.row, e.col});
  };

  DenseMatrix<real_t> b(nodes, feat_cols);
  b.fill_uniform(rng);
  DenseMatrix<real_t> c(nodes, feat_cols);

  // ------------------------------------------------ phase 1: absorb+serve
  serve::AdjacencyCache<real_t> cache(std::size_t{512} << 20);
  serve::GraphKey key = serve::make_graph_key(a, 0, 0);
  cache.insert(key, CbmMatrix<real_t>::compress(a));

  RunStats staleness_series;
  RunStats mutate_seconds;
  RunStats serve_seconds;
  std::int64_t edges_absorbed = 0;
  double absorb_wall = 0.0;
  for (int round = 0; round < rounds; ++round) {
    const auto [ins, rem] = draw_batch();
    Timer mutate_timer;
    const auto out =
        cache.mutate_or_invalidate(key, ins, rem, /*stale_threshold=*/1.0);
    const double mt = mutate_timer.seconds();
    if (out.entry == nullptr) {
      std::fprintf(stderr, "streaming: mutation lost the entry at round %d\n",
                   round);
      return 1;
    }
    apply_to_pattern(ins, rem);
    key = out.new_key;
    edges_absorbed += out.mutation.inserted + out.mutation.removed;
    absorb_wall += mt;
    mutate_seconds.add(mt);
    staleness_series.add(out.staleness);

    // Serve one multiply through the (epoch-guarded) memoised plan.
    Timer serve_timer;
    const auto entry = cache.lookup(key);
    const MultiplySchedule plan = entry->plan_for(
        feat_cols,
        [](const CbmMatrix<real_t>&) { return MultiplySchedule::fused(0); });
    entry->cbm().multiply(b, c, plan);
    serve_seconds.add(serve_timer.seconds());
  }
  const double edges_per_second =
      absorb_wall > 0.0 ? static_cast<double>(edges_absorbed) / absorb_wall
                        : 0.0;

  // ------------------------------------------- phase 2: forced threshold
  // Threshold 0 means the very first mutation is "too stale": exactly one
  // recompression must fire for that batch, observable in the
  // cbm.serve.cache.recompressions counter delta.
  const auto before = obs::metrics_snapshot();
  serve::AdjacencyCache<real_t> forced(std::size_t{512} << 20);
  const CsrMatrix<real_t> current = [&] {
    CooMatrix<real_t> coo;
    coo.rows = nodes;
    coo.cols = nodes;
    for (const auto& [r, cc] : pattern) coo.push(r, cc, real_t{1});
    return CsrMatrix<real_t>::from_coo(coo);
  }();
  serve::GraphKey forced_key = serve::make_graph_key(current, 0, 0);
  forced.insert(forced_key, CbmMatrix<real_t>::compress(current));
  const auto [fins, frem] = draw_batch();
  const auto forced_out =
      forced.mutate_or_invalidate(forced_key, fins, frem,
                                  /*stale_threshold=*/0.0);
  apply_to_pattern(fins, frem);
  const auto after = obs::metrics_snapshot();
  const auto counter_delta = [&](const char* name) {
    const auto ib = before.counters.find(name);
    const auto ia = after.counters.find(name);
    const std::int64_t vb = ib == before.counters.end() ? 0 : ib->second;
    const std::int64_t va = ia == after.counters.end() ? 0 : ia->second;
    return va - vb;
  };
  const auto forced_recompressions =
      static_cast<double>(counter_delta("cbm.serve.cache.recompressions"));
  const bool forced_ok =
      forced_recompressions == 1.0 &&
      forced_out.action ==
          serve::AdjacencyCache<real_t>::MutationOutcome::Action::kRecompressed;

  const std::vector<std::pair<std::string, std::string>> labels = {
      {"nodes", std::to_string(nodes)},
      {"batch_edges", std::to_string(batch_edges)},
      {"rounds", std::to_string(rounds)},
      {"cols", std::to_string(feat_cols)}};
  report.add("streaming_staleness", staleness_series, labels);
  report.add("streaming_mutate_seconds", mutate_seconds, labels);
  report.add("streaming_serve_seconds", serve_seconds, labels);
  report.add_scalar("streaming_edges_per_second", edges_per_second, labels);
  report.add_scalar("streaming_edges_absorbed",
                    static_cast<double>(edges_absorbed), labels);
  report.add_scalar("forced_recompressions", forced_recompressions, labels);

  TablePrinter table({"Rounds", "Edges/s", "Absorbed", "Staleness (last)",
                      "Mutate p50 [s]", "Serve p50 [s]", "Forced recompress"});
  table.add_row({std::to_string(rounds), fmt_double(edges_per_second, 0),
                 std::to_string(edges_absorbed),
                 fmt_double(staleness_series.max(), 4),
                 fmt_seconds(mutate_seconds.median()),
                 fmt_seconds(serve_seconds.median()),
                 fmt_double(forced_recompressions, 0)});
  table.print();
  return forced_ok ? 0 : 1;
}
