// Matrix Market (.mtx) I/O.
//
// The paper's datasets (SNAP / DIMACS / OGB exports) are commonly distributed
// in this format; benches accept --mtx <file> to run on the real graphs when
// they are available locally, falling back to synthetic stand-ins otherwise.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace cbm {

/// Reads a "matrix coordinate (real|integer|pattern) (general|symmetric)"
/// Matrix Market stream into COO. Pattern entries get value 1; symmetric
/// storage is expanded to both triangles (diagonal entries once).
template <typename T>
CooMatrix<T> read_matrix_market(std::istream& in);

/// Reads from a file path. Throws CbmError on missing/invalid files.
template <typename T>
CooMatrix<T> read_matrix_market_file(const std::string& path);

/// Writes COO as "coordinate real general".
template <typename T>
void write_matrix_market(std::ostream& out, const CooMatrix<T>& coo);

/// Writes to a file path.
template <typename T>
void write_matrix_market_file(const std::string& path,
                              const CooMatrix<T>& coo);

extern template CooMatrix<float> read_matrix_market<float>(std::istream&);
extern template CooMatrix<double> read_matrix_market<double>(std::istream&);
extern template CooMatrix<float> read_matrix_market_file<float>(
    const std::string&);
extern template CooMatrix<double> read_matrix_market_file<double>(
    const std::string&);
extern template void write_matrix_market<float>(std::ostream&,
                                                const CooMatrix<float>&);
extern template void write_matrix_market<double>(std::ostream&,
                                                 const CooMatrix<double>&);
extern template void write_matrix_market_file<float>(const std::string&,
                                                     const CooMatrix<float>&);
extern template void write_matrix_market_file<double>(
    const std::string&, const CooMatrix<double>&);

}  // namespace cbm
