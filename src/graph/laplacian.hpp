// GCN normalisation Â = D^{-1/2} (A + I) D^{-1/2} (Kipf & Welling), in the
// factored form the CBM format consumes: a binary matrix (A + I) plus the
// diagonal scaling vector d = deg^{-1/2}.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "sparse/csr.hpp"

namespace cbm {

/// The factorisation Â = diag(d) · B · diag(d) with B = A + I binary.
template <typename T>
struct GcnNormalization {
  CsrMatrix<T> a_plus_i;     ///< binary (A + I); the CBM-compressible part
  std::vector<T> dinv_sqrt;  ///< d_i = (deg_i + 1)^{-1/2}
};

/// Computes the factored normalisation from a graph.
template <typename T>
GcnNormalization<T> gcn_normalization(const Graph& g);

/// Materialises Â as an explicitly scaled CSR matrix (the baseline operand).
template <typename T>
CsrMatrix<T> gcn_normalized_adjacency(const Graph& g);

extern template struct GcnNormalization<float>;
extern template struct GcnNormalization<double>;
extern template GcnNormalization<float> gcn_normalization<float>(const Graph&);
extern template GcnNormalization<double> gcn_normalization<double>(
    const Graph&);
extern template CsrMatrix<float> gcn_normalized_adjacency<float>(const Graph&);
extern template CsrMatrix<double> gcn_normalized_adjacency<double>(
    const Graph&);

}  // namespace cbm
