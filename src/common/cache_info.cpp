#include "common/cache_info.hpp"

#include <algorithm>
#include <fstream>
#include <string>

namespace cbm {

namespace {

/// Reads one sysfs cache attribute ("level", "type", "size"); empty string
/// when the file does not exist.
std::string read_attr(const std::string& dir, const char* name) {
  std::ifstream in(dir + "/" + name);
  if (!in) return {};
  std::string value;
  std::getline(in, value);
  return value;
}

/// Parses "48K" / "2048K" / "12M" into bytes; 0 on anything unparsable.
std::size_t parse_size(const std::string& text) {
  if (text.empty()) return 0;
  std::size_t value = 0;
  std::size_t i = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + static_cast<std::size_t>(text[i] - '0');
    ++i;
  }
  if (i == 0) return 0;  // no leading digits at all
  if (i < text.size()) {
    if (text[i] == 'K' || text[i] == 'k') value *= 1024;
    if (text[i] == 'M' || text[i] == 'm') value *= 1024 * 1024;
    if (text[i] == 'G' || text[i] == 'g') value *= 1024ull * 1024 * 1024;
  }
  return value;
}

/// Parses a cache "level" attribute; 0 on garbage (std::stoi would throw,
/// and detect() promises it never does).
int parse_level(const std::string& text) {
  int level = 0;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') return 0;
    level = level * 10 + (ch - '0');
    if (level > 8) return 0;  // sysfs levels are single digits
  }
  return level;
}

}  // namespace

CacheInfo CacheInfo::detect(const std::string& sysfs_cpu_dir) {
  CacheInfo info;  // defaults survive wherever sysfs is absent or partial
  // cpu0's cache hierarchy stands in for every core (true on the homogeneous
  // parts this targets). The highest unified level observed becomes the LLC.
  int llc_level = 0;
  bool saw_llc = false;
  for (int idx = 0; idx < 8; ++idx) {
    const std::string dir = sysfs_cpu_dir + "/cache/index" +
                            std::to_string(idx);
    const std::string type = read_attr(dir, "type");
    if (type.empty()) break;
    // Partial trees (containers, old kernels) may expose an index directory
    // without a readable size or level; skip the entry, keep the defaults.
    const std::size_t size = parse_size(read_attr(dir, "size"));
    const int level = parse_level(read_attr(dir, "level"));
    if (size == 0 || level == 0) continue;
    if (level == 1 && type == "Data") info.l1d_bytes = size;
    if (level == 2 && (type == "Unified" || type == "Data")) {
      info.l2_bytes = size;
    }
    if (type == "Unified" && level >= llc_level && level >= 2) {
      llc_level = level;
      info.llc_bytes = size;
      saw_llc = true;
    }
  }
  // A two-level hierarchy reports no L3: the L2 is the LLC. The same floor
  // guards against a detected L3 smaller than the detected L2 (inconsistent
  // partial trees): callers divide by llc_bytes and size tiles from it, so
  // the invariant 0 < l2 <= llc must hold no matter what sysfs served.
  if (llc_level == 0 || !saw_llc || info.llc_bytes < info.l2_bytes) {
    info.llc_bytes = std::max(info.llc_bytes, info.l2_bytes);
  }
  const CacheInfo defaults;
  if (info.l1d_bytes == 0) info.l1d_bytes = defaults.l1d_bytes;
  if (info.l2_bytes == 0) info.l2_bytes = defaults.l2_bytes;
  if (info.llc_bytes == 0) {
    info.llc_bytes = std::max(defaults.llc_bytes, info.l2_bytes);
  }
  return info;
}

CacheInfo CacheInfo::detect() {
  return detect("/sys/devices/system/cpu/cpu0");
}

const CacheInfo& CacheInfo::host() {
  static const CacheInfo info = detect();
  return info;
}

index_t fused_tile_cols(index_t rows, index_t total_cols,
                        std::size_t elem_bytes, int threads,
                        const CacheInfo& cache) {
  if (total_cols <= 0) return 1;
  // Tiling pays one re-stream of the delta CSR per tile, so it is only
  // worth doing when it buys residency the untiled pass cannot have: when
  // B + C exceed this thread's share of the LLC and would stream from DRAM.
  // Anything already LLC-resident runs as a single full-width tile — the
  // engine then keeps only the row-level fusion benefit. (Measured on a
  // 2 MB-L2 host: L2-sized tiles never win, because whenever a >=32-column
  // tile fits the L2 the whole operand very nearly does too, and the tile
  // overhead costs ~20-35%.)
  const auto nth = static_cast<std::size_t>(std::max(threads, 1));
  // CacheInfo::detect() never reports a zero LLC, but callers can pass a
  // hand-built CacheInfo; a zero share would tile everything to the minimum.
  const auto llc_share =
      std::max<std::size_t>(cache.llc_bytes, 64 * 1024) / nth;
  const auto per_col =
      2 * static_cast<std::size_t>(std::max<index_t>(rows, 1)) * elem_bytes;
  const auto untiled = per_col * static_cast<std::size_t>(total_cols);
  if (untiled <= llc_share) return total_cols;
  // Half the share for the resident tile, the rest for the delta stream.
  auto w = static_cast<index_t>(
      std::min<std::size_t>((llc_share / 2) / std::max<std::size_t>(per_col, 1),
                            static_cast<std::size_t>(kMaxFusedTileCols)));
  w -= w % kTileColsQuantum;
  if (w < kMinFusedTileCols) return total_cols;  // no worthwhile tile exists
  return std::min(w, total_cols);
}

}  // namespace cbm
