// Tests for distance-graph construction (Hamming weights, α pruning,
// virtual-root edges).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "cbm/distance_graph.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

/// 4×4 worked example used across the CBM tests:
///   row0: {0,1}    row1: {0,1,2}    row2: {0,1,3}    row3: {2}
CsrMatrix<float> example_matrix() {
  CooMatrix<float> coo;
  coo.rows = 4;
  coo.cols = 4;
  for (const auto [i, j] :
       std::vector<std::pair<index_t, index_t>>{
           {0, 0}, {0, 1}, {1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 1}, {2, 3},
           {3, 2}}) {
    coo.push(i, j, 1.0f);
  }
  return CsrMatrix<float>::from_coo(coo);
}

/// Brute-force Hamming distance between two rows.
std::int64_t hamming(const CsrMatrix<float>& a, index_t x, index_t y) {
  std::int64_t h = 0;
  for (index_t j = 0; j < a.cols(); ++j) {
    h += (a.at(x, j) != 0.0f) != (a.at(y, j) != 0.0f);
  }
  return h;
}

TEST(DistanceGraph, VirtualEdgesAlwaysPresentAndFirst) {
  const auto a = example_matrix();
  const auto g = build_distance_graph(a, {.alpha = 0});
  EXPECT_EQ(g.num_nodes, 5);
  EXPECT_EQ(g.root, 4);
  ASSERT_GE(g.edges.size(), 4u);
  for (index_t x = 0; x < 4; ++x) {
    EXPECT_EQ(g.edges[x].src, 4);
    EXPECT_EQ(g.edges[x].dst, x);
    EXPECT_EQ(g.edges[x].weight, a.row_nnz(x));
  }
}

TEST(DistanceGraph, WeightsAreHammingDistances) {
  const auto a = example_matrix();
  const auto g = build_distance_graph(a, {.alpha = 100});
  for (std::size_t k = 4; k < g.edges.size(); ++k) {
    const auto& e = g.edges[k];
    EXPECT_EQ(e.weight, hamming(a, e.src, e.dst))
        << e.src << "→" << e.dst;
  }
}

TEST(DistanceGraph, AlphaZeroAdmitsOnlyStrictImprovements) {
  const auto a = example_matrix();
  const auto g = build_distance_graph(a, {.alpha = 0});
  // Expected admitted edges (y→x with nnz_y − 2·ov < 0):
  // 0→1(1), 1→0(1), 0→2(1), 2→0(1), 1→2(2), 2→1(2), 3→1(2).
  EXPECT_EQ(g.candidate_edges, 7u);
  std::map<std::pair<index_t, index_t>, std::int64_t> found;
  for (std::size_t k = 4; k < g.edges.size(); ++k) {
    found[{g.edges[k].src, g.edges[k].dst}] = g.edges[k].weight;
  }
  EXPECT_EQ(found.at({0, 1}), 1);
  EXPECT_EQ(found.at({1, 0}), 1);
  EXPECT_EQ(found.at({0, 2}), 1);
  EXPECT_EQ(found.at({2, 0}), 1);
  EXPECT_EQ(found.at({1, 2}), 2);
  EXPECT_EQ(found.at({2, 1}), 2);
  EXPECT_EQ(found.at({3, 1}), 2);
  // 1→3 must be pruned: deltas(3 wrt 1) = 2 ≥ nnz(row3) = 1.
  EXPECT_FALSE(found.contains({1, 3}));
}

TEST(DistanceGraph, AlphaMonotonicity) {
  // Larger α prunes harder: candidate edges are non-increasing in α (§V-C:
  // "the MCA algorithm considers a smaller amount of candidate edges").
  const auto a = test::clustered_binary(60, 5, 10, 3, 3);
  std::size_t prev = std::size_t(-1);
  for (const int alpha : {0, 1, 2, 4, 8, 16}) {
    const auto g = build_distance_graph(a, {.alpha = alpha});
    EXPECT_LE(g.candidate_edges, prev) << "alpha=" << alpha;
    prev = g.candidate_edges;
  }
}

TEST(DistanceGraph, PruningRuleExact) {
  const auto a = test::clustered_binary(40, 4, 8, 2, 5);
  const int alpha = 3;
  const auto g = build_distance_graph(a, {.alpha = alpha});
  for (std::size_t k = static_cast<std::size_t>(a.rows());
       k < g.edges.size(); ++k) {
    const auto& e = g.edges[k];
    // Admission inequality: h − nnz(dst) < −α (saves more than α deltas).
    EXPECT_LT(e.weight - a.row_nnz(e.dst), -alpha);
  }
}

TEST(DistanceGraph, CandidateCapKeepsBestEdges) {
  const auto a = test::clustered_binary(50, 2, 12, 1, 7);
  const auto full = build_distance_graph(a, {.alpha = 8});
  const auto capped = build_distance_graph(
      a, {.alpha = 8, .max_candidates_per_row = 2});
  EXPECT_LE(capped.candidate_edges, 2u * 50u);
  EXPECT_LE(capped.candidate_edges, full.candidate_edges);
  // Virtual edges untouched.
  for (index_t x = 0; x < 50; ++x) EXPECT_EQ(capped.edges[x].src, 50);
}

TEST(DistanceGraph, FullGraphUndirectedPairsOnce) {
  const auto a = example_matrix();
  const auto g = build_full_distance_graph(a);
  // Pairs with positive overlap: (0,1), (0,2), (1,2), (1,3) → 4 edges.
  EXPECT_EQ(g.candidate_edges, 4u);
  for (std::size_t k = 4; k < g.edges.size(); ++k) {
    const auto& e = g.edges[k];
    EXPECT_EQ(e.weight, hamming(a, e.src, e.dst));
  }
}

TEST(DistanceGraph, EmptyMatrix) {
  CooMatrix<float> coo;
  coo.rows = 3;
  coo.cols = 3;
  const auto a = CsrMatrix<float>::from_coo(coo);
  const auto g = build_distance_graph(a, {.alpha = 0});
  EXPECT_EQ(g.candidate_edges, 0u);
  EXPECT_EQ(g.edges.size(), 3u);  // just the virtual edges (weight 0)
  for (const auto& e : g.edges) EXPECT_EQ(e.weight, 0);
}

TEST(DistanceGraph, RectangularMatricesSupported) {
  // Row compression never needed squareness; rectangular inputs power the
  // partitioned format's per-cluster parts.
  CooMatrix<float> coo;
  coo.rows = 2;
  coo.cols = 3;
  coo.push(0, 2, 1.0f);
  coo.push(1, 2, 1.0f);
  const auto a = CsrMatrix<float>::from_coo(coo);
  const auto g = build_distance_graph(a, {.alpha = 0});
  EXPECT_EQ(g.num_nodes, 3);  // 2 rows + virtual root
  EXPECT_EQ(g.candidate_edges, 2u);  // identical rows admit both directions
}

}  // namespace
}  // namespace cbm
