#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace cbm::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonWriter::comma_and_key(std::string_view key) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) os_ << ',';
    needs_comma_.back() = true;
  }
  if (!key.empty()) os_ << json_escape(key) << ':';
}

void JsonWriter::begin_object(std::string_view key) {
  comma_and_key(key);
  os_ << '{';
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  os_ << '}';
  needs_comma_.pop_back();
}

void JsonWriter::begin_array(std::string_view key) {
  comma_and_key(key);
  os_ << '[';
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  os_ << ']';
  needs_comma_.pop_back();
}

void JsonWriter::value(std::string_view key, std::string_view s) {
  comma_and_key(key);
  os_ << json_escape(s);
}

void JsonWriter::value(std::string_view key, const char* s) {
  value(key, std::string_view(s));
}

void JsonWriter::value(std::string_view key, double v) {
  comma_and_key(key);
  if (!std::isfinite(v)) {
    os_ << "null";  // NaN/Inf are not valid JSON
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os_ << buf;
}

void JsonWriter::value(std::string_view key, std::int64_t v) {
  comma_and_key(key);
  os_ << v;
}

void JsonWriter::value(std::string_view key, std::uint64_t v) {
  comma_and_key(key);
  os_ << v;
}

void JsonWriter::value(std::string_view key, int v) {
  value(key, static_cast<std::int64_t>(v));
}

void JsonWriter::value(std::string_view key, bool v) {
  comma_and_key(key);
  os_ << (v ? "true" : "false");
}

void JsonWriter::raw(std::string_view key, std::string_view json) {
  comma_and_key(key);
  os_ << json;
}

void JsonWriter::element(std::string_view s) { value({}, s); }
void JsonWriter::element(double v) { value({}, v); }
void JsonWriter::element(std::int64_t v) { value({}, v); }

}  // namespace cbm::obs
