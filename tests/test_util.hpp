// Shared helpers for the test suite.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "dense/dense_matrix.hpp"
#include "sparse/csr.hpp"

namespace cbm::test {

/// Random binary n×n matrix with expected `density` fraction of ones.
inline CsrMatrix<float> random_binary(index_t n, double density,
                                      std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix<float> coo;
  coo.rows = n;
  coo.cols = n;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (rng.next_bool(density)) coo.push(i, j, 1.0f);
    }
  }
  return CsrMatrix<float>::from_coo(coo);
}

/// Random binary matrix with groups of near-duplicate rows (the regime CBM
/// compresses): `groups` templates, each row = its group's template with
/// `flips` random toggles.
inline CsrMatrix<float> clustered_binary(index_t n, index_t groups,
                                         index_t base_nnz, index_t flips,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<bool>> templates(
      groups, std::vector<bool>(static_cast<std::size_t>(n), false));
  for (auto& t : templates) {
    for (index_t k = 0; k < base_nnz; ++k) {
      t[rng.next_below(static_cast<std::uint64_t>(n))] = true;
    }
  }
  CooMatrix<float> coo;
  coo.rows = n;
  coo.cols = n;
  for (index_t i = 0; i < n; ++i) {
    auto row = templates[static_cast<std::size_t>(i) % groups];
    for (index_t f = 0; f < flips; ++f) {
      const auto j = rng.next_below(static_cast<std::uint64_t>(n));
      row[j] = !row[j];
    }
    for (index_t j = 0; j < n; ++j) {
      if (row[j]) coo.push(i, j, 1.0f);
    }
  }
  return CsrMatrix<float>::from_coo(coo);
}

/// Densifies a CSR matrix (test oracle input).
template <typename T>
DenseMatrix<T> to_dense(const CsrMatrix<T>& a) {
  DenseMatrix<T> out(a.rows(), a.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_indices(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) out(i, cols[k]) = vals[k];
  }
  return out;
}

/// Random dense matrix in [0, 1).
template <typename T>
DenseMatrix<T> random_dense(index_t rows, index_t cols, std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix<T> m(rows, cols);
  m.fill_uniform(rng);
  return m;
}

/// Random positive diagonal in [0.5, 1.5).
template <typename T>
std::vector<T> random_diagonal(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> d(static_cast<std::size_t>(n));
  for (auto& v : d) v = static_cast<T>(0.5 + rng.next_double());
  return d;
}

}  // namespace cbm::test
