// GCN training throughput (the paper's §VIII future-work target): time per
// full forward+backward+SGD epoch with Â in CSR vs CBM form. Training runs
// four Â-products per step (two forward, two gradient pullbacks), so CBM's
// SpMM advantage compounds relative to inference.
#include "bench_common.hpp"
#include "gnn/train.hpp"

int main() {
  using namespace cbm;
  using namespace cbm::bench;
  const auto config = BenchConfig::from_env();
  print_bench_header(config, "GCN training — seconds per epoch");
  set_threads(config.threads);
  BenchReport report("training", config);

  const index_t dim = config.cols;
  TablePrinter table({"Graph", "Alpha", "T_CSR/epoch [s]", "T_CBM/epoch [s]",
                      "Speedup"});
  for (const std::string name :
       {"pubmed", "ca-hepph", "collab", "copapersciteseer"}) {
    const auto& spec = dataset_spec(name);
    const Graph g = load_dataset(spec, config);
    const index_t n = g.num_nodes();

    const auto norm = gcn_normalization<real_t>(g);
    const CsrAdjacency<real_t> csr_adj(
        scale_both<real_t>(norm.a_plus_i, norm.dinv_sqrt, norm.dinv_sqrt));
    const CbmAdjacency<real_t> cbm_adj(CbmMatrix<real_t>::compress_scaled(
        norm.a_plus_i, std::span<const real_t>(norm.dinv_sqrt),
        CbmKind::kSymScaled, {.alpha = spec.paper_best_alpha_par}));

    const auto x = make_dense_operand<real_t>(n, dim, 0x7124ull);
    std::vector<index_t> labels(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) labels[i] = (i / 16) % 8;

    auto time_training = [&](const AdjacencyOp<real_t>& adj) {
      Gcn2<real_t> model(dim, dim, 8, /*seed=*/3);
      GcnTrainer<real_t> trainer(model, n);
      return time_repetitions(
          [&] {
            trainer.step(adj, x, std::span<const index_t>(labels), 0.1f);
          },
          config.reps, config.warmup);
    };
    const auto t_csr = time_training(csr_adj);
    const auto t_cbm = time_training(cbm_adj);
    const std::vector<std::pair<std::string, std::string>> report_labels = {
        {"graph", name},
        {"alpha", std::to_string(spec.paper_best_alpha_par)}};
    report.add("csr_epoch_seconds", t_csr, report_labels);
    report.add("cbm_epoch_seconds", t_cbm, report_labels);
    table.add_row({name, std::to_string(spec.paper_best_alpha_par),
                   fmt_stats(t_csr), fmt_stats(t_cbm),
                   fmt_double(t_csr.mean() / t_cbm.mean(), 3)});
  }
  table.print();
  return 0;
}
