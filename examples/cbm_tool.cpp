// cbm_tool — command-line utility over the library.
//
//   cbm_tool compress <file.mtx> [--alpha N]      compression report
//   cbm_tool bench    <file.mtx> [--alpha N] [--cols N]
//                                                 AX timing CSR vs CBM
//   cbm_tool info     <file.mtx>                  graph statistics
//   cbm_tool convert  <file.mtx> --out <file.cbmf> [--alpha N]
//                                                 persist the CBM format (the
//                                                 paper's pre-processing step)
//   cbm_tool probe    <file.mtx>                  sampled compressibility
//                                                 estimate without building
//
// Accepts Matrix Market (.mtx) and SNAP edge-list (.txt/.edges) files;
// weights are ignored and the pattern is symmetrised (as the paper does for
// ogbn-proteins).
#include <cstdio>
#include <cstring>
#include <string>

#include "cbm/analyze.hpp"
#include "cbm/cbm_matrix.hpp"
#include "cbm/serialize.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "dense/ops.hpp"
#include "graph/graph.hpp"
#include "graph/metrics.hpp"
#include "sparse/io_edgelist.hpp"
#include "sparse/io_mm.hpp"
#include "sparse/spmm.hpp"

namespace {

using namespace cbm;

int usage() {
  std::fprintf(stderr,
               "usage: cbm_tool <compress|bench|info|convert> <graph file>"
               " [--alpha N] [--cols N] [--out file.cbmf]\n");
  return 2;
}

Graph load(const std::string& path) {
  const bool is_mtx = path.size() > 4 && path.ends_with(".mtx");
  return Graph::from_coo_pattern(is_mtx ? read_matrix_market_file<real_t>(path)
                                        : read_edge_list_file(path));
}

int cmd_info(const Graph& g) {
  const auto stats = degree_stats(g);
  std::printf("nodes              %d\n", g.num_nodes());
  std::printf("edges (undirected) %lld\n",
              static_cast<long long>(g.num_edges()));
  std::printf("degree min/mean/max %d / %.1f / %d\n", stats.min, stats.mean,
              stats.max);
  std::printf("avg clustering     %.3f\n", average_clustering(g));
  std::printf("components         %d\n", connected_components(g));
  std::printf("CSR footprint      %.2f MiB\n", g.adjacency().bytes() / kMiB);
  return 0;
}

int cmd_compress(const Graph& g, int alpha) {
  CbmStats stats;
  CbmMatrix<real_t>::compress(g.adjacency(), {.alpha = alpha}, &stats);
  std::printf("alpha              %d\n", alpha);
  std::printf("build time         %.3f s\n", stats.build_seconds);
  std::printf("candidate edges    %zu\n", stats.candidate_edges);
  std::printf("deltas / nnz       %lld / %lld (%.1f%%)\n",
              static_cast<long long>(stats.total_deltas),
              static_cast<long long>(stats.source_nnz),
              100.0 * stats.total_deltas / std::max<std::int64_t>(1, stats.source_nnz));
  std::printf("S_CSR              %.2f MiB\n", g.adjacency().bytes() / kMiB);
  std::printf("S_CBM              %.2f MiB\n", stats.bytes / kMiB);
  std::printf("compression ratio  %.2fx\n",
              static_cast<double>(g.adjacency().bytes()) / stats.bytes);
  std::printf("root fan-out       %d\n", stats.root_out_degree);
  std::printf("tree depth         %d\n", stats.max_depth);
  return 0;
}

int cmd_bench(const Graph& g, int alpha, index_t cols) {
  const auto& a = g.adjacency();
  const auto cbm = CbmMatrix<real_t>::compress(a, {.alpha = alpha});
  Rng rng(1);
  DenseMatrix<real_t> b(g.num_nodes(), cols);
  b.fill_uniform(rng);
  DenseMatrix<real_t> c_csr(g.num_nodes(), cols), c_cbm(g.num_nodes(), cols);

  csr_spmm(a, b, c_csr);
  Timer t1;
  for (int rep = 0; rep < 5; ++rep) csr_spmm(a, b, c_csr);
  const double t_csr = t1.seconds() / 5;

  cbm.multiply(b, c_cbm);
  Timer t2;
  for (int rep = 0; rep < 5; ++rep) cbm.multiply(b, c_cbm);
  const double t_cbm = t2.seconds() / 5;

  std::printf("AX with %d columns, alpha=%d\n", cols, alpha);
  std::printf("  CSR  %.4f s\n  CBM  %.4f s\n  speedup %.2fx\n", t_csr, t_cbm,
              t_csr / t_cbm);
  std::printf("  results agree: %s\n",
              allclose(c_cbm, c_csr, 1e-5, 1e-5) ? "yes" : "NO");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  int alpha = 0;
  cbm::index_t cols = 64;
  std::string out;
  for (int i = 3; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--alpha") == 0) alpha = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--cols") == 0) cols = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--out") == 0) out = argv[i + 1];
  }
  try {
    const Graph g = load(path);
    if (cmd == "info") return cmd_info(g);
    if (cmd == "compress") return cmd_compress(g, alpha);
    if (cmd == "bench") return cmd_bench(g, alpha, cols);
    if (cmd == "probe") {
      const auto est = estimate_compressibility(
          g.adjacency(), std::min<index_t>(g.num_nodes(), 1000));
      std::printf("sampled rows        %d\n", est.samples);
      std::printf("delta fraction      %.3f (nnz(A')/nnz(A), lower = better)\n",
                  est.delta_fraction);
      std::printf("estimated ratio     %.2fx\n", est.est_ratio);
      std::printf("recommendation      %s\n",
                  est.est_ratio >= 1.5 ? "compress (CBM should win)"
                                       : "stay with CSR");
      return 0;
    }
    if (cmd == "convert") {
      if (out.empty()) return usage();
      const auto cbm =
          CbmMatrix<real_t>::compress(g.adjacency(), {.alpha = alpha});
      save_cbm_file(out, cbm);
      std::printf("wrote %s (%.2f MiB, vs %.2f MiB CSR)\n", out.c_str(),
                  cbm.bytes() / kMiB, g.adjacency().bytes() / kMiB);
      return 0;
    }
    return usage();
  } catch (const cbm::CbmError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
