// GCN training (the paper's §VIII future work: "targeting the training stage
// of these networks").
//
// Manual reverse-mode pass for the two-layer GCN with softmax cross-entropy.
// Because Â is symmetric (D^{-1/2}(A+I)D^{-1/2} with symmetric A), the
// backward pass multiplies by the same operand — so every gradient SpMM also
// benefits from the CBM format, doubling the number of accelerable products
// per training step relative to inference.
#pragma once

#include <vector>

#include "gnn/gcn.hpp"

namespace cbm {

/// Softmax + cross-entropy over rows. Writes the gradient w.r.t. logits
/// (softmax − onehot, scaled by 1/n) into `dlogits` and returns the mean
/// loss. `labels[i]` ∈ [0, classes).
template <typename T>
double softmax_cross_entropy(const DenseMatrix<T>& logits,
                             std::span<const index_t> labels,
                             DenseMatrix<T>& dlogits);

/// One full forward/backward/SGD step of a two-layer GCN.
template <typename T>
class GcnTrainer {
 public:
  /// n = number of nodes; dims taken from the model.
  GcnTrainer(Gcn2<T>& model, index_t n);

  /// Runs forward + backward + SGD update; returns the loss. The adjacency
  /// must be symmetric (checked structurally for CSR operands in tests).
  double step(const AdjacencyOp<T>& adj, const DenseMatrix<T>& x,
              std::span<const index_t> labels, T learning_rate);

  /// Read-only access to the last forward output (post-step logits of the
  /// step's input).
  [[nodiscard]] const DenseMatrix<T>& logits() const { return out_; }

  /// Gradients of the last step (tests validate them numerically).
  [[nodiscard]] const DenseMatrix<T>& grad_w0() const { return dw0_; }
  [[nodiscard]] const DenseMatrix<T>& grad_w1() const { return dw1_; }

 private:
  Gcn2<T>& model_;
  // Forward caches.
  DenseMatrix<T> xw_, h1pre_, h1_, hw_, out_;
  // Backward buffers.
  DenseMatrix<T> dout_, dz1_, dh1_, dz0_, dw0_, dw1_;
};

extern template double softmax_cross_entropy<float>(const DenseMatrix<float>&,
                                                    std::span<const index_t>,
                                                    DenseMatrix<float>&);
extern template double softmax_cross_entropy<double>(
    const DenseMatrix<double>&, std::span<const index_t>,
    DenseMatrix<double>&);
extern template class GcnTrainer<float>;
extern template class GcnTrainer<double>;

}  // namespace cbm
