// Online running statistics (Welford) for benchmark repetitions.
//
// The paper reports "average time ± std over 250 runs"; RunStats accumulates
// exactly those quantities without storing samples, plus a bounded-memory
// median: the default 3-rep protocol is noise-dominated, and the median is
// what the machine-readable bench trajectories track.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cbm {

/// Accumulates count/mean/variance/min/max/median of a stream of doubles.
class RunStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Median of the stream: exact up to kReservoirCap samples, after that a
  /// deterministic-reservoir estimate (even counts average the two middles).
  [[nodiscard]] double median() const;

  /// Merge another accumulator into this one (parallel reduction).
  /// Mean/variance/min/max merge exactly; the median reservoirs concatenate
  /// and are down-sampled deterministically past kReservoirCap.
  void merge(const RunStats& other);

  /// Samples the median reservoir holds exactly before estimating.
  static constexpr std::size_t kReservoirCap = 1024;

 private:
  std::uint64_t next_u64();

  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> samples_;  ///< median reservoir (≤ kReservoirCap)
  std::uint64_t lcg_ = 0x9E3779B97F4A7C15ull;  ///< deterministic eviction
};

}  // namespace cbm
