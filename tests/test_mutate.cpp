// Mutation-differential harness for incremental CBM maintenance
// (cbm/mutate.cpp): every mutated matrix must be indistinguishable — in
// materialized form and through every multiply path — from a fresh
// compression of the post-mutation graph, which itself is differenced
// against the naive dense oracle. Randomized batches draw per-test seeds
// (test::auto_seed); failures log the seed and CBM_TEST_SEED=<seed> reruns
// the exact case (docs/testing.md).
//
// Coverage map:
//  - basics + degenerate batches (duplicate inserts, no-op removes,
//    delete-every-edge rows, empty batches), error contracts;
//  - seeded insert/remove/mixed batches over the ten oracle input regimes,
//    checked exactly (materialize) and through two-stage × fused × vector
//    paths at 1 and 4 threads, with CBM_VALIDATE=full active;
//  - D·A·D mutation, partitioned routing (including a batch that empties a
//    partition's rows), staleness/epoch bookkeeping, validate_mutation
//    positive + corrupted-patch negative cases;
//  - serve-layer integration: epoch-guarded plan memoisation and
//    mutate_or_invalidate (cache clone-patch-reinsert).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cbm/cbm_matrix.hpp"
#include "cbm/mutate.hpp"
#include "cbm/partitioned.hpp"
#include "check/check.hpp"
#include "common/envknobs.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "serve/cache.hpp"
#include "serve/fingerprint.hpp"
#include "sparse/scale.hpp"
#include "test_util.hpp"
#include "tune/tune.hpp"

namespace cbm {
namespace {

using test::EnvGuard;

// ------------------------------------------------------- input fixtures --

/// The same ten input regimes the multiply differential sweeps.
struct GenCase {
  const char* name;
  CsrMatrix<float> (*make)(std::uint64_t seed);
};

CsrMatrix<float> gen_random(std::uint64_t s) {
  return check::random_binary<float>(48, 0.07, s);
}
CsrMatrix<float> gen_clustered(std::uint64_t s) {
  return check::clustered_binary<float>(64, 5, 10, 2, s);
}
CsrMatrix<float> gen_banded(std::uint64_t s) {
  return check::banded_binary<float>(56, 4, 0.6, s);
}
CsrMatrix<float> gen_power_law(std::uint64_t s) {
  return check::power_law_binary<float>(64, 4, s);
}
CsrMatrix<float> gen_empty(std::uint64_t) {
  return check::empty_binary<float>(40, 40);
}
CsrMatrix<float> gen_identity(std::uint64_t) {
  return CsrMatrix<float>::identity(32);
}
CsrMatrix<float> gen_single_row(std::uint64_t s) {
  Rng rng(s);
  CooMatrix<float> coo;
  coo.rows = 36;
  coo.cols = 36;
  coo.push(11, 0, 1.0f);
  for (index_t j = 1; j < 36; ++j) {
    if (rng.next_bool(0.4)) coo.push(11, j, 1.0f);
  }
  return CsrMatrix<float>::from_coo(coo);
}
CsrMatrix<float> gen_identical_rows(std::uint64_t s) {
  return check::identical_rows_binary<float>(48, 9, s);
}
CsrMatrix<float> gen_dense_row(std::uint64_t s) {
  return check::single_dense_row_binary<float>(40, 7, 0.05, s);
}
CsrMatrix<float> gen_dense(std::uint64_t) {
  return check::dense_binary<float>(24, 24);
}

const GenCase kGenCases[] = {
    {"random", gen_random},         {"clustered", gen_clustered},
    {"banded", gen_banded},         {"power_law", gen_power_law},
    {"empty", gen_empty},           {"identity", gen_identity},
    {"single_row", gen_single_row}, {"identical_rows", gen_identical_rows},
    {"dense_row", gen_dense_row},   {"dense", gen_dense},
};

constexpr double kRtol = 1e-4;
constexpr double kAtol = 1e-5;
constexpr std::int64_t kMaxUlps = 32;

#define EXPECT_MATCHES_ORACLE(actual, oracle, what)                      \
  do {                                                                   \
    const auto cmp_ = check::compare_allclose((actual), (oracle), kRtol, \
                                              kAtol, kMaxUlps);          \
    EXPECT_TRUE(cmp_.ok) << what << ": " << cmp_.to_string();            \
  } while (0)

// ------------------------------------------------- reference bookkeeping --

/// The binary pattern as a sorted edge set — the mutable ground truth the
/// CBM mutation is differenced against.
class RefPattern {
 public:
  RefPattern(const CsrMatrix<float>& a) : rows_(a.rows()), cols_(a.cols()) {
    for (index_t r = 0; r < a.rows(); ++r) {
      for (const index_t c : a.row_indices(r)) edges_.insert({r, c});
    }
  }

  [[nodiscard]] bool has(index_t r, index_t c) const {
    return edges_.contains({r, c});
  }
  void insert(index_t r, index_t c) { edges_.insert({r, c}); }
  void remove(index_t r, index_t c) { edges_.erase({r, c}); }
  [[nodiscard]] std::size_t nnz() const { return edges_.size(); }
  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }

  [[nodiscard]] CsrMatrix<float> to_csr() const {
    CooMatrix<float> coo;
    coo.rows = rows_;
    coo.cols = cols_;
    for (const auto& [r, c] : edges_) coo.push(r, c, 1.0f);
    return CsrMatrix<float>::from_coo(coo);
  }

 private:
  index_t rows_;
  index_t cols_;
  std::set<std::pair<index_t, index_t>> edges_;
};

/// Draws one mixed batch against `ref`: `flips` random cells are toggled
/// (present → remove span, absent → insert span), and with the given
/// probabilities extra duplicate inserts / no-op removes ride along so the
/// degenerate accounting paths run constantly, not just in dedicated tests.
struct Batch {
  std::vector<EdgeUpdate> inserts;
  std::vector<EdgeUpdate> removes;
};

Batch draw_batch(const RefPattern& ref, index_t flips, Rng& rng) {
  Batch b;
  std::set<std::pair<index_t, index_t>> chosen;
  for (index_t k = 0; k < flips; ++k) {
    const auto r = static_cast<index_t>(
        rng.next_below(static_cast<std::uint64_t>(ref.rows())));
    const auto c = static_cast<index_t>(
        rng.next_below(static_cast<std::uint64_t>(ref.cols())));
    if (!chosen.insert({r, c}).second) continue;  // one span per edge
    if (ref.has(r, c)) {
      b.removes.push_back({r, c});
      if (rng.next_bool(0.15)) b.removes.push_back({r, c});  // duplicate op
    } else {
      b.inserts.push_back({r, c});
      if (rng.next_bool(0.15)) b.inserts.push_back({r, c});
    }
  }
  return b;
}

void apply_batch(RefPattern& ref, const Batch& b) {
  for (const auto& e : b.inserts) ref.insert(e.row, e.col);
  for (const auto& e : b.removes) ref.remove(e.row, e.col);
}

/// Full agreement sweep for one mutated matrix: exact materialization, the
/// two-stage engine under representative schedules, the fused engine under
/// several tile widths, and the vector path — each against the dense oracle
/// of the reference pattern, at 1 and 4 threads.
void expect_matches_reference(const CbmMatrix<float>& cbm,
                              const RefPattern& ref, const std::string& what) {
  const CsrMatrix<float> expected = ref.to_csr();
  EXPECT_TRUE(cbm.materialize() == expected) << what << ": materialize";

  const auto b =
      check::random_dense<float>(ref.cols(), 9, test::auto_seed(777));
  const auto oracle = check::dense_reference_multiply(expected, b);
  for (const int threads : {1, 4}) {
    ThreadScope scope(threads);
    for (const UpdateSchedule update :
         {UpdateSchedule::kSequential, UpdateSchedule::kBranchDynamic,
          UpdateSchedule::kTaskGraph}) {
      DenseMatrix<float> c(ref.rows(), 9);
      c.fill(-3.0f);
      cbm.multiply(b, c, MultiplySchedule::two_stage(update));
      EXPECT_MATCHES_ORACLE(c, oracle,
                            what << " two_stage update="
                                 << static_cast<int>(update)
                                 << " threads=" << threads);
    }
    for (const index_t tile : {index_t{0}, index_t{3}, index_t{64}}) {
      DenseMatrix<float> c(ref.rows(), 9);
      c.fill(-3.0f);
      cbm.multiply(b, c, MultiplySchedule::fused(tile));
      EXPECT_MATCHES_ORACLE(
          c, oracle, what << " fused tile=" << tile << " threads=" << threads);
    }
  }
  std::vector<float> x(static_cast<std::size_t>(ref.cols()));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.25f + 0.5f * static_cast<float>(i % 7);
  }
  const auto y_oracle = check::dense_reference_multiply_vector(
      expected, std::span<const float>(x));
  std::vector<float> y(static_cast<std::size_t>(ref.rows()), -3.0f);
  cbm.multiply_vector(x, y);
  const auto cmp = check::compare_allclose(
      std::span<const float>(y), std::span<const float>(y_oracle), kRtol,
      kAtol, kMaxUlps);
  EXPECT_TRUE(cmp.ok) << what << " vector: " << cmp.to_string();
}

// ----------------------------------------------------------- basic cases --

TEST(Mutate, InsertThenRemoveRoundTripsExactly) {
  const auto a = test::clustered_binary(24, 3, 6, 1, 42);
  auto cbm = CbmMatrix<float>::compress(a);
  RefPattern ref(a);

  const std::vector<EdgeUpdate> edges = {{0, 5}, {3, 7}, {11, 1}, {23, 23}};
  std::vector<EdgeUpdate> fresh;  // the subset actually absent before
  for (const auto& e : edges) {
    if (!ref.has(e.row, e.col)) fresh.push_back(e);
  }
  ASSERT_FALSE(fresh.empty());

  const MutationResult ins = cbm.insert_edges(fresh);
  EXPECT_EQ(ins.inserted, static_cast<std::int64_t>(fresh.size()));
  EXPECT_EQ(ins.duplicate_inserts, 0);
  EXPECT_EQ(cbm.mutation_epoch(), 1u);
  for (const auto& e : fresh) ref.insert(e.row, e.col);
  expect_matches_reference(cbm, ref, "after insert");

  const MutationResult rem = cbm.remove_edges(fresh);
  EXPECT_EQ(rem.removed, static_cast<std::int64_t>(fresh.size()));
  EXPECT_EQ(rem.noop_removes, 0);
  EXPECT_EQ(cbm.mutation_epoch(), 2u);
  for (const auto& e : fresh) ref.remove(e.row, e.col);
  expect_matches_reference(cbm, ref, "after remove");
  EXPECT_TRUE(cbm.materialize() == a);  // exact round trip
}

TEST(Mutate, DuplicateInsertsAndNoopRemovesAreCountedNotApplied) {
  const auto a = test::clustered_binary(20, 2, 5, 1, 7);
  auto cbm = CbmMatrix<float>::compress(a);
  const RefPattern ref(a);

  // An edge that exists and one that does not.
  ASSERT_GT(a.nnz(), 0);
  const index_t er = [&] {
    for (index_t r = 0; r < a.rows(); ++r) {
      if (a.row_nnz(r) > 0) return r;
    }
    return index_t{0};
  }();
  const index_t ec = a.row_indices(er)[0];

  const std::vector<EdgeUpdate> dup_ins = {{er, ec}, {er, ec}};
  const MutationResult ins = cbm.insert_edges(dup_ins);
  EXPECT_EQ(ins.inserted, 0);
  EXPECT_EQ(ins.duplicate_inserts, 2);
  EXPECT_EQ(ins.touched_rows, 0);
  EXPECT_EQ(ins.delta_nnz_change, 0);

  index_t ar = 0, ac = 0;  // an absent edge
  [&] {
    for (index_t r = 0; r < a.rows(); ++r) {
      for (index_t c = 0; c < a.cols(); ++c) {
        if (!ref.has(r, c)) {
          ar = r;
          ac = c;
          return;
        }
      }
    }
  }();
  const std::vector<EdgeUpdate> noop_rem = {{ar, ac}, {ar, ac}, {ar, ac}};
  const MutationResult rem = cbm.remove_edges(noop_rem);
  EXPECT_EQ(rem.removed, 0);
  EXPECT_EQ(rem.noop_removes, 3);
  EXPECT_EQ(rem.touched_rows, 0);

  // No-op batches still advance the epoch (memoisation must revalidate) but
  // leave the matrix bit-identical.
  EXPECT_EQ(cbm.mutation_epoch(), 2u);
  EXPECT_TRUE(cbm.materialize() == a);
  EXPECT_EQ(cbm.staleness(), 0.0);
}

TEST(Mutate, DeleteEveryEdgeOfARowAndOfTheMatrix) {
  const auto a = test::clustered_binary(18, 2, 6, 1, 99);
  auto cbm = CbmMatrix<float>::compress(a);
  RefPattern ref(a);

  // Empty one row completely (a row that other rows may compress against).
  index_t victim = 0;
  for (index_t r = 0; r < a.rows(); ++r) {
    if (a.row_nnz(r) > 0) {
      victim = r;
      break;
    }
  }
  std::vector<EdgeUpdate> row_edges;
  for (const index_t c : a.row_indices(victim)) row_edges.push_back({victim, c});
  cbm.remove_edges(row_edges);
  for (const auto& e : row_edges) ref.remove(e.row, e.col);
  expect_matches_reference(cbm, ref, "one row emptied");
  check::enforce(check::validate_mutation(cbm));

  // Now delete every remaining edge — the all-empty matrix must still
  // compress, multiply (to zero), and validate.
  std::vector<EdgeUpdate> rest;
  const auto current = ref.to_csr();
  for (index_t r = 0; r < current.rows(); ++r) {
    for (const index_t c : current.row_indices(r)) rest.push_back({r, c});
  }
  cbm.remove_edges(rest);
  for (const auto& e : rest) ref.remove(e.row, e.col);
  EXPECT_EQ(ref.nnz(), 0u);
  expect_matches_reference(cbm, ref, "all edges deleted");
  check::enforce(check::validate_mutation(cbm));
}

TEST(Mutate, ErrorContracts) {
  const auto a = test::random_binary(16, 0.2, 5);
  auto cbm = CbmMatrix<float>::compress(a);

  const std::vector<EdgeUpdate> bad_row = {{16, 0}};
  EXPECT_THROW(cbm.insert_edges(bad_row), CbmError);
  const std::vector<EdgeUpdate> bad_col = {{0, -1}};
  EXPECT_THROW(cbm.remove_edges(bad_col), CbmError);

  // The same edge in both spans of one batch is a contract violation.
  const std::vector<EdgeUpdate> both = {{2, 3}};
  EXPECT_THROW(cbm.mutate_edges(both, both), CbmError);

  // Column-scaled kinds fold a diagonal the matrix no longer stores.
  const auto diag = test::random_diagonal<float>(16, 11);
  auto ad = CbmMatrix<float>::compress_scaled(a, diag, CbmKind::kColumnScaled);
  EXPECT_THROW(ad.insert_edges(both), CbmError);
  auto dad2 = CbmMatrix<float>::compress_two_sided(a, diag, diag);
  EXPECT_THROW(dad2.remove_edges(both), CbmError);

  // A failed batch must not have half-applied anything.
  EXPECT_TRUE(cbm.materialize() == a);
  EXPECT_EQ(cbm.mutation_epoch(), 0u);
}

// ---------------------------------------------- randomized differentials --

class MutateDifferential : public ::testing::TestWithParam<GenCase> {};

TEST_P(MutateDifferential, BatchesMatchFreshCompressAndOracle) {
  const auto gen = GetParam();
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  // Post-mutation validation runs inside every batch (the same audit a
  // fresh compression gets).
  const EnvGuard validate("CBM_VALIDATE", "full");

  const auto a = gen.make(seed);
  auto cbm = CbmMatrix<float>::compress(a, {.alpha = 2});
  RefPattern ref(a);
  Rng rng(seed ^ 0xA1u);

  for (int round = 0; round < 4; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const Batch batch = draw_batch(ref, /*flips=*/12, rng);
    const MutationResult res = cbm.mutate_edges(batch.inserts, batch.removes);
    apply_batch(ref, batch);
    EXPECT_EQ(cbm.mutation_epoch(), static_cast<std::uint64_t>(round + 1));

    // Exact agreement with the reference pattern and with a fresh
    // compression of it (materialized forms are canonical CSR, so
    // patched-vs-fresh equality is bitwise).
    const CsrMatrix<float> expected = ref.to_csr();
    const auto fresh = CbmMatrix<float>::compress(expected, {.alpha = 2});
    EXPECT_TRUE(cbm.materialize() == fresh.materialize());
    EXPECT_EQ(static_cast<std::int64_t>(ref.nnz()),
              cbm.mutation_state().source_nnz);
    // Property 1 must survive patching.
    EXPECT_LE(cbm.delta_matrix().nnz(), expected.nnz());
    EXPECT_GE(res.touched_rows, 0);

    check::enforce(check::validate_mutation(cbm, &expected));
    expect_matches_reference(cbm, ref, std::string(gen.name));
  }
}

TEST_P(MutateDifferential, InsertOnlyAndRemoveOnlyBatches) {
  const auto gen = GetParam();
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = gen.make(seed);
  auto cbm = CbmMatrix<float>::compress(a);
  RefPattern ref(a);
  Rng rng(seed ^ 0x5EEDu);

  // Insert-only: densify a stripe of absent cells.
  std::vector<EdgeUpdate> ins;
  for (index_t k = 0; k < 20; ++k) {
    const auto r = static_cast<index_t>(
        rng.next_below(static_cast<std::uint64_t>(a.rows())));
    const auto c = static_cast<index_t>(
        rng.next_below(static_cast<std::uint64_t>(a.cols())));
    if (!ref.has(r, c)) {
      ins.push_back({r, c});
      ref.insert(r, c);
    }
  }
  cbm.insert_edges(ins);
  expect_matches_reference(cbm, ref, std::string(gen.name) + " insert-only");
  check::enforce(check::validate_mutation(cbm));

  // Remove-only: delete a sample of present edges.
  const auto current = ref.to_csr();
  std::vector<EdgeUpdate> rem;
  for (index_t r = 0; r < current.rows(); ++r) {
    for (const index_t c : current.row_indices(r)) {
      if (rng.next_bool(0.25)) {
        rem.push_back({r, c});
        ref.remove(r, c);
      }
    }
  }
  cbm.remove_edges(rem);
  expect_matches_reference(cbm, ref, std::string(gen.name) + " remove-only");
  check::enforce(check::validate_mutation(cbm));
}

INSTANTIATE_TEST_SUITE_P(AllRegimes, MutateDifferential,
                         ::testing::ValuesIn(kGenCases),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(Mutate, SymScaledDadMutationMatchesScaledOracle) {
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const EnvGuard validate("CBM_VALIDATE", "full");
  const auto a = test::clustered_binary(40, 4, 8, 2, seed);
  const auto diag = test::random_diagonal<float>(40, seed ^ 1);
  auto cbm = CbmMatrix<float>::compress_scaled(a, diag, CbmKind::kSymScaled);
  RefPattern ref(a);
  Rng rng(seed ^ 0xDAD);

  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const Batch batch = draw_batch(ref, /*flips=*/10, rng);
    cbm.mutate_edges(batch.inserts, batch.removes);
    apply_batch(ref, batch);

    // Oracle: densify D·A·D of the reference pattern explicitly.
    const auto pattern = ref.to_csr();
    const auto dad = scale_both(pattern, std::span<const float>(diag),
                                std::span<const float>(diag));
    const auto b = check::random_dense<float>(40, 11, test::auto_seed(2));
    const auto oracle = check::dense_reference_multiply(dad, b);
    for (const int threads : {1, 4}) {
      ThreadScope scope(threads);
      DenseMatrix<float> c(40, 11);
      c.fill(-3.0f);
      cbm.multiply(b, c, MultiplySchedule::two_stage(UpdateSchedule::kBranchDynamic));
      EXPECT_MATCHES_ORACLE(c, oracle, "dad two_stage threads=" << threads);
      c.fill(-3.0f);
      cbm.multiply(b, c, MultiplySchedule::fused(0));
      EXPECT_MATCHES_ORACLE(c, oracle, "dad fused threads=" << threads);
    }
    EXPECT_TRUE(cbm.materialize() == dad);
    check::enforce(check::validate_mutation(cbm, &pattern));
  }
}

// ------------------------------------------------------------ partitioned --

TEST(MutatePartitioned, RoutedBatchesMatchOracle) {
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = test::clustered_binary(64, 6, 9, 2, seed);
  PartitionedOptions opts;
  opts.num_clusters = 4;
  auto part = PartitionedCbmMatrix<float>::compress(a, opts);
  RefPattern ref(a);
  Rng rng(seed ^ 0xAA);

  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const Batch batch = draw_batch(ref, /*flips=*/16, rng);
    const MutationResult res = part.mutate_edges(batch.inserts, batch.removes);
    apply_batch(ref, batch);
    EXPECT_GE(res.inserted, 0);
    EXPECT_GE(res.removed, 0);

    const auto expected = ref.to_csr();
    const auto b = check::random_dense<float>(64, 10, test::auto_seed(3));
    const auto oracle = check::dense_reference_multiply(expected, b);
    DenseMatrix<float> c(64, 10);
    c.fill(-3.0f);
    part.multiply(b, c, MultiplySchedule::two_stage(UpdateSchedule::kBranchDynamic));
    EXPECT_MATCHES_ORACLE(c, oracle, "partitioned two_stage");
    c.fill(-3.0f);
    part.multiply(b, c, MultiplySchedule::fused(0));
    EXPECT_MATCHES_ORACLE(c, oracle, "partitioned fused");
    for (const auto& p : part.parts()) {
      check::enforce(check::validate_mutation(p.cbm));
    }
  }
  EXPECT_GT(part.mutation_epoch(), 0u);
  EXPECT_GE(part.staleness(), 0.0);
  EXPECT_LE(part.staleness(), 1.0);
}

TEST(MutatePartitioned, EmptyingAPartitionKeepsMultiplyCorrect) {
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = test::clustered_binary(48, 4, 8, 1, seed);
  PartitionedOptions opts;
  opts.num_clusters = 4;
  auto part = PartitionedCbmMatrix<float>::compress(a, opts);
  ASSERT_GT(part.num_parts(), 1);
  RefPattern ref(a);

  // Remove every edge owned by part 0 — the part survives with empty rows.
  std::vector<EdgeUpdate> batch;
  for (const index_t gr : part.parts()[0].rows) {
    for (const index_t c : a.row_indices(gr)) batch.push_back({gr, c});
  }
  part.remove_edges(batch);
  for (const auto& e : batch) ref.remove(e.row, e.col);

  const auto expected = ref.to_csr();
  const auto b = check::random_dense<float>(48, 7, test::auto_seed(4));
  const auto oracle = check::dense_reference_multiply(expected, b);
  DenseMatrix<float> c(48, 7);
  c.fill(-3.0f);
  part.multiply(b, c, MultiplySchedule::fused(0));
  EXPECT_MATCHES_ORACLE(c, oracle, "emptied partition");
  EXPECT_EQ(part.parts()[0].cbm.delta_matrix().nnz(), 0);
}

// ------------------------------------------------ staleness & validation --

TEST(Mutate, StalenessGrowsWithDegradationAndEpochIsMonotonic) {
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  // Identical rows: maximal compression gain, so scattering random edges
  // over the rows steadily destroys admissibility and forces re-parents.
  const auto a = check::identical_rows_binary<float>(32, 8, seed);
  auto cbm = CbmMatrix<float>::compress(a);
  EXPECT_EQ(cbm.staleness(), 0.0);
  EXPECT_EQ(cbm.mutation_epoch(), 0u);

  RefPattern ref(a);
  Rng rng(seed ^ 0x57A1E);
  double last = 0.0;
  std::uint64_t last_epoch = 0;
  index_t reparented = 0;
  for (int round = 0; round < 6; ++round) {
    const Batch batch = draw_batch(ref, /*flips=*/24, rng);
    const MutationResult res = cbm.mutate_edges(batch.inserts, batch.removes);
    apply_batch(ref, batch);
    reparented += res.reparented_rows;
    EXPECT_GT(cbm.mutation_epoch(), last_epoch);
    last_epoch = cbm.mutation_epoch();
    const double s = cbm.staleness();
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
    last = s;
    check::enforce(check::validate_mutation(cbm));
  }
  // Six rounds of 24 toggles over 32 near-identical rows must have cut at
  // least one tree edge and registered as staleness.
  EXPECT_GT(reparented, 0);
  EXPECT_GT(last, 0.0);
  EXPECT_EQ(cbm.mutation_state().reparented_rows, reparented);
  expect_matches_reference(cbm, ref, "staleness scenario");
}

TEST(Mutate, ValidateMutationAcceptsFreshAndMutatedMatrices) {
  const auto a = test::clustered_binary(24, 3, 6, 1, 17);
  auto cbm = CbmMatrix<float>::compress(a, {.alpha = 1});
  check::enforce(check::validate_mutation(cbm));  // epoch 0: trivially sane

  const std::vector<EdgeUpdate> ins = {{0, 20}, {5, 3}};
  cbm.insert_edges(ins);
  const auto report = check::validate_mutation(cbm);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GE(report.rules_checked, 5);  // at least the five mutation rules
}

TEST(Mutate, ValidateMutationRejectsCorruptedPatches) {
  // from_parts must not pre-reject the corrupted fixtures below — their
  // detection is this test's business, not the constructor's.
  const EnvGuard off("CBM_VALIDATE");
  const auto a = test::clustered_binary(24, 3, 6, 1, 23);
  auto cbm = CbmMatrix<float>::compress(a);
  const std::vector<EdgeUpdate> ins = {{1, 19}};
  cbm.insert_edges(ins);

  // Corrupted delta value: a kPlain insertion delta must be exactly +1.
  {
    CsrMatrix<float> delta = cbm.delta_matrix();
    ASSERT_GT(delta.nnz(), 0);
    delta.values_mut()[0] *= 2.0f;
    const auto bad = CbmMatrix<float>::from_parts(
        CbmKind::kPlain, cbm.tree(), std::move(delta), {});
    const auto report = check::validate_mutation(bad);
    EXPECT_FALSE(report.ok());
  }

  // Inadmissible tree edge: child and parent patterns are disjoint, so the
  // delta row is as large as storing the child directly — mutation repair
  // must never leave such an edge behind, and the validator must flag it.
  {
    // Delta rows: row 0 = {+1@0} (root child), row 1 = {−1@0, +1@1} hung
    // off row 0 — the child's pattern {1} shares nothing with the parent's
    // {0}, so |Δ| = 2 ≥ nnz(A_x) = 1 and the edge never compresses.
    std::vector<offset_t> indptr = {0, 1, 3};
    std::vector<index_t> indices = {0, 0, 1};
    std::vector<float> values = {1.0f, -1.0f, 1.0f};
    CsrMatrix<float> delta(2, 4, std::move(indptr), std::move(indices),
                           std::move(values));
    auto tree = CompressionTree::from_parents({2, 0});
    const auto bad = CbmMatrix<float>::from_parts(
        CbmKind::kPlain, std::move(tree), std::move(delta), {});
    const auto report = check::validate_mutation(bad);
    EXPECT_FALSE(report.ok());
    bool found = false;
    for (const auto& issue : report.issues) {
      found = found || issue.rule == "mutation-alpha-admissible";
    }
    EXPECT_TRUE(found) << report.summary();
  }

  // Wrong expected pattern: the matrix is fine, the caller's belief is not.
  {
    RefPattern wrong(a);  // pre-mutation pattern, missing the inserted edge
    const auto expected = wrong.to_csr();
    const auto report = check::validate_mutation(cbm, &expected);
    EXPECT_FALSE(report.ok());
    bool found = false;
    for (const auto& issue : report.issues) {
      found = found || issue.rule == "mutation-expected";
    }
    EXPECT_TRUE(found) << report.summary();
  }
}

// ------------------------------------------------- latent-immutability fixes

TEST(MutateServe, MemoisedPlansAreRetiredWhenTheEpochMoves) {
  const auto a = test::clustered_binary(24, 3, 6, 1, 31);
  const auto key = serve::make_graph_key(a, 0, 0);
  serve::CacheEntry<float> entry(key, CbmMatrix<float>::compress(a));

  int resolutions = 0;
  const auto resolve = [&](const CbmMatrix<float>&) {
    ++resolutions;
    return MultiplySchedule::fused(8);
  };
  (void)entry.plan_for(16, resolve);
  (void)entry.plan_for(16, resolve);
  EXPECT_EQ(resolutions, 1);  // second call memoised
  EXPECT_EQ(entry.plans_resolved(), 1u);

  // In-place mutation through the entry's hook: the epoch moves, so the
  // memoised plan — resolved against the old delta structure — must die.
  index_t free_col = 0;  // a column row 0 does not populate
  while (a.at(0, free_col) != 0.0f) ++free_col;
  const std::vector<EdgeUpdate> ins = {{0, free_col}};
  const MutationResult res =
      entry.mutate_cbm([&](CbmMatrix<float>& m) { return m.insert_edges(ins); });
  EXPECT_EQ(res.inserted, 1);
  EXPECT_EQ(entry.plans_resolved(), 0u);  // stale memo already invisible
  (void)entry.plan_for(16, resolve);
  EXPECT_EQ(resolutions, 2);  // re-resolved against the mutated matrix
  (void)entry.plan_for(16, resolve);
  EXPECT_EQ(resolutions, 2);  // and memoised again at the new epoch
}

TEST(MutateTune, ShapeFingerprintTracksTheDeltaStructure) {
  // The autotuner keys its cached winners by ShapeKey, which includes
  // delta_nnz — so a mutation that changes the delta count re-probes
  // instead of replaying a plan tuned for the old structure. Mirror
  // resolve_plan's key construction before and after a mutation.
  const auto a = test::clustered_binary(32, 4, 7, 1, 13);
  auto cbm = CbmMatrix<float>::compress(a);
  const auto shape_of = [](const CbmMatrix<float>& m) {
    tune::ShapeKey k;
    k.rows = m.rows();
    k.cols = m.cols();
    k.bcols = 16;
    k.delta_nnz = static_cast<std::int64_t>(m.delta_matrix().nnz());
    k.threads = 1;
    k.elem_bytes = sizeof(float);
    return k;
  };
  const std::string before = shape_of(cbm).fingerprint();
  const std::vector<EdgeUpdate> ins = {{0, 30}, {1, 29}, {2, 28}};
  const MutationResult res = cbm.insert_edges(ins);
  ASSERT_NE(res.delta_nnz_change, 0);
  const std::string after = shape_of(cbm).fingerprint();
  EXPECT_NE(before, after);
}

// ---------------------------------------------------- serve cache mutation

TEST(MutateServe, MutateOrInvalidatePatchesAndRehomesTheEntry) {
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = test::clustered_binary(32, 4, 7, 1, seed);
  serve::AdjacencyCache<float> cache(std::size_t{64} << 20);
  const auto key = serve::make_graph_key(a, 0, 0);
  cache.insert(key, CbmMatrix<float>::compress(a));

  RefPattern ref(a);
  std::vector<EdgeUpdate> ins;
  for (index_t r = 0; r < 6; ++r) {
    if (!ref.has(r, 31 - r)) {
      ins.push_back({r, 31 - r});
      ref.insert(r, 31 - r);
    }
  }
  ASSERT_FALSE(ins.empty());
  const auto out =
      cache.mutate_or_invalidate(key, ins, {}, /*stale_threshold=*/1.0);
  using Action = serve::AdjacencyCache<float>::MutationOutcome::Action;
  ASSERT_EQ(out.action, Action::kPatched);
  ASSERT_NE(out.entry, nullptr);
  EXPECT_EQ(out.mutation.inserted, static_cast<std::int64_t>(ins.size()));

  // The entry now lives under the mutated graph's canonical key: a request
  // arriving with the post-mutation adjacency hits it, the old key misses.
  const auto expected = ref.to_csr();
  EXPECT_EQ(out.new_key, serve::make_graph_key(expected, 0, 0));
  EXPECT_EQ(cache.lookup(out.new_key), out.entry);
  EXPECT_EQ(cache.lookup(key), nullptr);
  EXPECT_TRUE(out.entry->cbm().materialize() == expected);
  EXPECT_EQ(cache.stats().mutations, 1u);
  EXPECT_EQ(cache.stats().recompressions, 0u);
}

TEST(MutateServe, StaleThresholdForcesRecompression) {
  const auto a = test::clustered_binary(24, 3, 6, 1, 3);
  serve::AdjacencyCache<float> cache(std::size_t{64} << 20);
  const auto key = serve::make_graph_key(a, 0, 0);
  cache.insert(key, CbmMatrix<float>::compress(a));

  const std::vector<EdgeUpdate> ins = {{0, 23}, {5, 22}};
  // Threshold 0: every mutation is "too stale" — the patched clone is
  // discarded and the mutated pattern recompressed from scratch.
  const auto out = cache.mutate_or_invalidate(key, ins, {},
                                              /*stale_threshold=*/0.0);
  using Action = serve::AdjacencyCache<float>::MutationOutcome::Action;
  ASSERT_EQ(out.action, Action::kRecompressed);
  ASSERT_NE(out.entry, nullptr);
  EXPECT_EQ(out.entry->cbm().mutation_epoch(), 0u);  // fresh baseline
  EXPECT_EQ(out.staleness, 0.0);
  EXPECT_EQ(cache.stats().recompressions, 1u);
  check::enforce(check::validate_mutation(out.entry->cbm()));
}

TEST(MutateServe, DefaultThresholdComesFromTheEnvKnob) {
  const EnvGuard knob("CBM_STALE_THRESHOLD", "0.0");
  EXPECT_EQ(RuntimeConfig::from_env().stale_threshold, 0.0);
  const auto a = test::clustered_binary(24, 3, 6, 1, 3);
  serve::AdjacencyCache<float> cache(std::size_t{64} << 20);
  const auto key = serve::make_graph_key(a, 0, 0);
  cache.insert(key, CbmMatrix<float>::compress(a));
  const std::vector<EdgeUpdate> ins = {{0, 23}};
  const auto out = cache.mutate_or_invalidate(key, ins, {});
  using Action = serve::AdjacencyCache<float>::MutationOutcome::Action;
  EXPECT_EQ(out.action, Action::kRecompressed);
}

TEST(MutateServe, StaleThresholdKnobRejectsOutOfRangeValues) {
  const EnvGuard knob("CBM_STALE_THRESHOLD", "1.5");
  EXPECT_THROW(RuntimeConfig::from_env(), CbmError);
}

TEST(MutateServe, NonMutableKindIsInvalidated) {
  const auto a = test::clustered_binary(20, 2, 5, 1, 9);
  const auto diag = test::random_diagonal<float>(20, 1);
  serve::AdjacencyCache<float> cache(std::size_t{64} << 20);
  const auto key = serve::make_graph_key(
      a, static_cast<std::uint32_t>(CbmKind::kTwoSided), 0);
  cache.insert(key, CbmMatrix<float>::compress_two_sided(a, diag, diag));

  const std::vector<EdgeUpdate> ins = {{0, 19}};
  const auto out = cache.mutate_or_invalidate(key, ins, {});
  using Action = serve::AdjacencyCache<float>::MutationOutcome::Action;
  EXPECT_EQ(out.action, Action::kInvalidated);
  EXPECT_EQ(out.entry, nullptr);
  EXPECT_EQ(cache.lookup(key), nullptr);  // caller must rebuild
  EXPECT_GE(cache.stats().invalidations, 1u);
}

TEST(MutateServe, MutatingAMissIsAMiss) {
  serve::AdjacencyCache<float> cache(std::size_t{1} << 20);
  serve::GraphKey key;
  key.fingerprint = 0xDEAD;
  const std::vector<EdgeUpdate> ins = {{0, 1}};
  const auto out = cache.mutate_or_invalidate(key, ins, {});
  using Action = serve::AdjacencyCache<float>::MutationOutcome::Action;
  EXPECT_EQ(out.action, Action::kMiss);
  EXPECT_EQ(out.entry, nullptr);
}

// -------------------------------------------------- concurrent publishing

TEST(MutateConcurrent, CloneMutatePublishKeepsReadersConsistent) {
  // The supported concurrency pattern (mutate.hpp): readers multiply on a
  // shared_ptr snapshot while the writer clones, mutates the clone, and
  // publishes it — no reader ever observes a half-mutated matrix. Each
  // reader validates its result against the oracle of the exact snapshot
  // it grabbed, so a torn publish fails the comparison (and TSan flags any
  // data race on the nightly leg).
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = test::clustered_binary(32, 4, 7, 1, seed);

  std::mutex publish_mutex;
  auto published =
      std::make_shared<const CbmMatrix<float>>(CbmMatrix<float>::compress(a));
  const auto snapshot = [&] {
    const std::lock_guard<std::mutex> lock(publish_mutex);
    return published;
  };

  constexpr int kReaderRounds = 40;
  const auto b = check::random_dense<float>(32, 6, seed ^ 5);
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < kReaderRounds; ++i) {
        const auto snap = snapshot();
        DenseMatrix<float> c(32, 6);
        c.fill(-3.0f);
        snap->multiply(b, c, MultiplySchedule::fused(0));
        const auto oracle =
            check::dense_reference_multiply(snap->materialize(), b);
        const auto cmp =
            check::compare_allclose(c, oracle, kRtol, kAtol, kMaxUlps);
        EXPECT_TRUE(cmp.ok) << "reader round " << i << ": " << cmp.to_string();
      }
    });
  }

  RefPattern ref(a);
  Rng rng(seed ^ 0xC0C0);
  for (int round = 0; round < 10; ++round) {
    const Batch batch = draw_batch(ref, /*flips=*/6, rng);
    auto clone = std::make_shared<CbmMatrix<float>>(*snapshot());
    clone->mutate_edges(batch.inserts, batch.removes);
    apply_batch(ref, batch);
    {
      const std::lock_guard<std::mutex> lock(publish_mutex);
      published = std::move(clone);
    }
  }
  for (auto& r : readers) r.join();
  expect_matches_reference(*snapshot(), ref, "final published snapshot");
}

}  // namespace
}  // namespace cbm
