// Block-diagonal batch packing for GNN inference serving.
//
// Many small query graphs amortise poorly: each one is a short SpMM that
// cannot fill the machine. Packing them into one block-diagonal CBM matrix
//
//     A_batch = diag(A_1, ..., A_k),   B_batch = [B_1; ...; B_k]
//
// turns k tiny multiplies into a single fused SpMM over the whole batch —
// the compression trees concatenate (each part keeps its own virtual root
// semantics under a shared global root), the delta CSRs concatenate with a
// column shift, and the per-row scale diagonals concatenate. scatter_batch
// then slices the stacked output back into per-request responses.
#pragma once

#include <span>
#include <vector>

#include "cbm/cbm_matrix.hpp"
#include "dense/dense_matrix.hpp"

namespace cbm::serve {

/// One request's slot in a batch: its compressed adjacency (typically a
/// cache entry) and its feature operand. Both are borrowed; they must
/// outlive the pack/multiply.
template <typename T>
struct BatchItem {
  const CbmMatrix<T>* graph = nullptr;
  const DenseMatrix<T>* features = nullptr;
};

/// A packed batch ready for one fused multiply.
template <typename T>
struct PackedBatch {
  CbmMatrix<T> cbm;         ///< block-diagonal compressed adjacency
  DenseMatrix<T> features;  ///< vertically stacked feature operands
  /// Output-row ranges per item (size items+1): item i owns packed output
  /// rows [row_offsets[i], row_offsets[i+1]).
  std::vector<index_t> row_offsets;
};

/// Packs `items` into one block-diagonal CBM plus a stacked operand.
///
/// Requirements (violations throw CbmError with the offending item index):
///  - at least one item, all pointers non-null;
///  - every graph has the same CbmKind (mixed scaled/plain blocks would
///    need per-block update semantics the fused engine does not model);
///  - every features matrix has the same width (they stack into one
///    operand) and features->rows() == graph->cols().
///
/// Single-node graphs and empty delta matrices pack fine — each part's
/// rows whose parent is its local virtual root re-parent to the shared
/// global virtual root.
template <typename T>
PackedBatch<T> pack_batch(std::span<const BatchItem<T>> items);

/// Slices the packed multiply's output back into per-request outputs.
/// `outputs[i]` must already be shaped (row_offsets[i+1]-row_offsets[i]) x
/// packed_output.cols().
template <typename T>
void scatter_batch(const DenseMatrix<T>& packed_output,
                   std::span<const index_t> row_offsets,
                   std::span<DenseMatrix<T>* const> outputs);

extern template PackedBatch<float> pack_batch<float>(
    std::span<const BatchItem<float>>);
extern template PackedBatch<double> pack_batch<double>(
    std::span<const BatchItem<double>>);
extern template void scatter_batch<float>(const DenseMatrix<float>&,
                                          std::span<const index_t>,
                                          std::span<DenseMatrix<float>* const>);
extern template void scatter_batch<double>(
    const DenseMatrix<double>&, std::span<const index_t>,
    std::span<DenseMatrix<double>* const>);

}  // namespace cbm::serve
