#include "graph/graph.hpp"

#include <algorithm>

namespace cbm {

namespace {

Graph build_from_pairs(index_t num_nodes,
                       std::vector<std::pair<index_t, index_t>> pairs) {
  // Normalise to (min,max), drop self-loops, dedupe, then mirror.
  for (auto& [u, v] : pairs) {
    if (u > v) std::swap(u, v);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  CooMatrix<real_t> coo;
  coo.rows = num_nodes;
  coo.cols = num_nodes;
  coo.reserve(pairs.size() * 2);
  for (const auto& [u, v] : pairs) {
    if (u == v) continue;
    coo.push(u, v, 1.0f);
    coo.push(v, u, 1.0f);
  }
  return Graph::from_adjacency(CsrMatrix<real_t>::from_coo(coo));
}

}  // namespace

Graph Graph::from_edges(
    index_t num_nodes, const std::vector<std::pair<index_t, index_t>>& edges) {
  for (const auto& [u, v] : edges) {
    CBM_CHECK(u >= 0 && u < num_nodes && v >= 0 && v < num_nodes,
              "edge endpoint out of range");
  }
  return build_from_pairs(num_nodes, edges);
}

Graph Graph::from_coo_pattern(const CooMatrix<real_t>& coo) {
  CBM_CHECK(coo.rows == coo.cols, "adjacency pattern must be square");
  std::vector<std::pair<index_t, index_t>> pairs;
  pairs.reserve(coo.nnz());
  for (std::size_t k = 0; k < coo.nnz(); ++k) {
    pairs.emplace_back(coo.row_idx[k], coo.col_idx[k]);
  }
  return build_from_pairs(coo.rows, std::move(pairs));
}

Graph Graph::from_adjacency(CsrMatrix<real_t> adjacency) {
  CBM_CHECK(adjacency.rows() == adjacency.cols(),
            "adjacency must be square");
  CBM_CHECK(adjacency.is_binary(), "adjacency must be binary");
  CBM_CHECK(adjacency.has_sorted_unique_rows(),
            "adjacency rows must be sorted and duplicate-free");
  // Spot-check symmetry and empty diagonal in debug builds only: O(nnz log).
#ifndef NDEBUG
  for (index_t i = 0; i < adjacency.rows(); ++i) {
    for (const index_t j : adjacency.row_indices(i)) {
      CBM_DCHECK(i != j, "adjacency diagonal must be empty");
      CBM_DCHECK(adjacency.at(j, i) == 1.0f, "adjacency must be symmetric");
    }
  }
#endif
  return Graph(std::move(adjacency));
}

}  // namespace cbm
