// Pattern utilities: turning arbitrary sparse matrices into the binary,
// sorted-row form the CBM compressor requires.
#pragma once

#include "sparse/csr.hpp"

namespace cbm {

/// Returns the matrix with every stored value replaced by 1 (the paper's
/// treatment of weighted inputs like ogbn-proteins: "we ignored the edge
/// weights"). Structure is shared semantics-wise; arrays are copied.
template <typename T>
CsrMatrix<T> binarize(const CsrMatrix<T>& a);

/// Returns the symmetrised pattern max(A, Aᵀ) of a square matrix, binary,
/// with the diagonal removed — i.e. the adjacency matrix of the underlying
/// undirected simple graph.
template <typename T>
CsrMatrix<T> symmetrize_pattern(const CsrMatrix<T>& a);

/// Drops explicitly stored zeros.
template <typename T>
CsrMatrix<T> prune_zeros(const CsrMatrix<T>& a);

extern template CsrMatrix<float> binarize<float>(const CsrMatrix<float>&);
extern template CsrMatrix<double> binarize<double>(const CsrMatrix<double>&);
extern template CsrMatrix<float> symmetrize_pattern<float>(
    const CsrMatrix<float>&);
extern template CsrMatrix<double> symmetrize_pattern<double>(
    const CsrMatrix<double>&);
extern template CsrMatrix<float> prune_zeros<float>(const CsrMatrix<float>&);
extern template CsrMatrix<double> prune_zeros<double>(
    const CsrMatrix<double>&);

}  // namespace cbm
