#include "cbm/transpose.hpp"

#include "cbm/spmm_cbm.hpp"
#include "common/parallel.hpp"
#include "common/vectorops.hpp"
#include "sparse/spmm.hpp"

namespace cbm {

namespace {

/// Scales every row of the branch by the diagonal, then accumulates each row
/// into its parent in reverse topological order, restricted to the column
/// range [col0, col0+len). The pre-scaling must be a separate pass: a node's
/// accumulated child contributions are already scaled and must not be scaled
/// again.
template <typename T>
void reverse_branch(const CompressionTree& tree, bool row_scaled,
                    std::span<const T> diag, DenseMatrix<T>& c,
                    std::span<const index_t> branch, std::size_t col0,
                    std::size_t len) {
  if (row_scaled) {
    for (const index_t x : branch) {
      vec_scale(diag[x], c.row(x).subspan(col0, len));
    }
  }
  for (std::size_t i = branch.size(); i-- > 0;) {
    const index_t x = branch[i];
    const index_t p = tree.parent(x);
    if (p != tree.virtual_root()) {
      vec_add(std::span<const T>(c.row(x)).subspan(col0, len),
              c.row(p).subspan(col0, len));
    }
  }
}

}  // namespace

template <typename T>
void cbm_reverse_update_stage(const CompressionTree& tree, CbmKind kind,
                              std::span<const T> diag, DenseMatrix<T>& c,
                              UpdateSchedule schedule) {
  CBM_CHECK(c.rows() == tree.num_rows(),
            "reverse update: row count mismatch");
  const bool row_scaled = cbm_kind_row_scaled(kind);
  CBM_CHECK(!row_scaled ||
                diag.size() == static_cast<std::size_t>(tree.num_rows()),
            "reverse update: missing diagonal for row-scaled kind");

  const auto& branches = tree.branches();
  const auto nb = static_cast<std::int64_t>(branches.size());
  const auto cols = static_cast<std::size_t>(c.cols());
  switch (schedule) {
    case UpdateSchedule::kSequential: {
      for (std::int64_t b = 0; b < nb; ++b) {
        reverse_branch<T>(tree, row_scaled, diag, c, branches[b], 0, cols);
      }
      break;
    }
    case UpdateSchedule::kBranchDynamic: {
#pragma omp parallel for schedule(dynamic)
      for (std::int64_t b = 0; b < nb; ++b) {
        if (!row_scaled && branches[b].size() == 1) continue;
        reverse_branch<T>(tree, row_scaled, diag, c, branches[b], 0, cols);
      }
      break;
    }
    case UpdateSchedule::kBranchStatic: {
#pragma omp parallel for schedule(static)
      for (std::int64_t b = 0; b < nb; ++b) {
        if (!row_scaled && branches[b].size() == 1) continue;
        reverse_branch<T>(tree, row_scaled, diag, c, branches[b], 0, cols);
      }
      break;
    }
    case UpdateSchedule::kColumnSplit: {
#pragma omp parallel
      {
        const auto nth = static_cast<std::size_t>(team_size());
        const auto tid = static_cast<std::size_t>(thread_id());
        const std::size_t c0 = cols * tid / nth;
        const std::size_t c1 = cols * (tid + 1) / nth;
        if (c1 > c0) {
          for (std::int64_t b = 0; b < nb; ++b) {
            reverse_branch<T>(tree, row_scaled, diag, c, branches[b], c0,
                              c1 - c0);
          }
        }
      }
      break;
    }
  }
}

template <typename T>
CbmTranspose<T>::CbmTranspose(const CbmMatrix<T>& source)
    : kind_(source.kind()),
      tree_(source.tree()),
      delta_t_(source.delta_matrix().transpose()),
      diag_(source.diagonal().begin(), source.diagonal().end()) {}

template <typename T>
void CbmTranspose<T>::multiply(const DenseMatrix<T>& b, DenseMatrix<T>& c,
                               UpdateSchedule schedule) {
  CBM_CHECK(b.rows() == delta_t_.cols(),
            "transpose multiply: inner dimensions differ");
  CBM_CHECK(c.rows() == delta_t_.rows() && c.cols() == b.cols(),
            "transpose multiply: output shape mismatch");
  if (scratch_.rows() != b.rows() || scratch_.cols() != b.cols()) {
    scratch_ = DenseMatrix<T>(b.rows(), b.cols());
  }
  std::copy(b.data(), b.data() + b.size(), scratch_.data());
  cbm_reverse_update_stage(tree_, kind_, std::span<const T>(diag_), scratch_,
                           schedule);
  csr_spmm(delta_t_, scratch_, c);
}

template class CbmTranspose<float>;
template class CbmTranspose<double>;
template void cbm_reverse_update_stage<float>(const CompressionTree&, CbmKind,
                                              std::span<const float>,
                                              DenseMatrix<float>&,
                                              UpdateSchedule);
template void cbm_reverse_update_stage<double>(const CompressionTree&,
                                               CbmKind,
                                               std::span<const double>,
                                               DenseMatrix<double>&,
                                               UpdateSchedule);

}  // namespace cbm
