// Incremental CBM maintenance for dynamic graphs (ROADMAP item 3).
//
// Production graphs mutate; recompressing from scratch on every edge change
// pays the two phases that dominate CbmMatrix::compress — candidate-edge
// enumeration over all row pairs and the MCA solve — for a batch that
// touches a handful of rows. insert_edges / remove_edges (declared on
// CbmMatrix, implemented here) instead patch the format in place:
//
//  1. Delta patching. A mutated row x changes exactly two delta
//     neighbourhoods: its own row (re-diffed against its parent's pattern,
//     Eq. 2) and each child's row (patched entry-by-entry from x's change
//     list alone — a column x gained that a child's delta inserted is now
//     inherited, so the entry drops; a column x gained that the child never
//     had needs a new removal entry, and symmetrically for losses). No
//     other row's delta depends on x, so the work is proportional to the
//     batch's Hamming neighbourhood, not the matrix.
//
//  2. Arborescence repair. Every affected tree edge re-runs the
//     sign-corrected §V-C admissibility check |Δ(x)| < nnz(A_x) − α (the
//     same inequality the distance graph admitted it under). An edge that
//     no longer compresses is cut and the row re-attached to the virtual
//     root with its full pattern as the delta row — the local MST-repair
//     move; no solver runs. Property 1 (nnz(A') ≤ nnz(A)) survives by
//     construction: re-attached rows store exactly nnz(A_x) deltas and
//     surviving edges store strictly fewer.
//
//  3. Schedule maintenance. The FusedRowSchedule depends only on
//     (tree, kind, diag), so a batch that cuts no tree edge keeps it
//     untouched; a batch that does swaps in a rebuilt schedule (copies of
//     the matrix keep sharing the old one — mutation is copy-on-write at
//     the schedule level).
//
// Each batch bumps mutation_epoch() and updates the staleness bookkeeping:
// staleness() reports max(reparented-row fraction, compression gain lost
// versus the fresh-compress baseline), published as the cbm.mutate.staleness
// gauge. Past RuntimeConfig::stale_threshold (CBM_STALE_THRESHOLD) the
// caller should schedule a full background recompression — serve's
// AdjacencyCache::mutate_or_invalidate and bench_streaming both do.
//
// Supported kinds: kPlain and kSymScaled (their column scale — 1 or the
// stored diagonal — is recoverable; kColumnScaled/kTwoSided fold a diagonal
// the matrix no longer holds, so they throw). The diagonal itself is
// treated as fixed: mutating D·A·D edits A under the existing D. When D
// must track the mutation (e.g. GCN degree normalisation), recompress.
//
// Thread safety: mutation is NOT safe against concurrent multiplies on the
// same instance. Long-lived services mutate a private copy and publish it
// atomically (the serve cache's clone-patch-reinsert path); tests serialise.
//
// cbm::check::validate_mutation cross-checks a mutated matrix: the Eq. 2
// reconstruction against the expected pattern plus the staleness
// bookkeeping recomputed from first principles.
#pragma once

#include <algorithm>

#include "cbm/cbm_matrix.hpp"

namespace cbm {

// The mutation API itself lives on CbmMatrix / PartitionedCbmMatrix
// (EdgeUpdate, MutationResult, MutationBookkeeping, insert_edges,
// remove_edges, mutate_edges, staleness, mutation_epoch — see
// cbm_matrix.hpp and partitioned.hpp). This header documents the algorithm
// and hosts the pieces shared by the serving layer and the benches.

/// The staleness value implied by a bookkeeping snapshot and the current
/// delta count — the exact formula CbmMatrix::staleness() evaluates,
/// exposed so cbm::check can recompute it from reconstructed ground truth
/// and so tests can assert the published gauge. Returns 0 for epoch 0.
/// Header-inline on purpose: cbm::check sits below cbm_core in the link
/// graph and must not pull mutate.cpp's symbols.
inline double mutation_staleness(const MutationBookkeeping& state, index_t rows,
                                 std::int64_t current_deltas) {
  if (state.epoch == 0) return 0.0;
  const double reparented_frac =
      rows > 0 ? static_cast<double>(state.reparented_rows) /
                     static_cast<double>(rows)
               : 0.0;
  // Gain ratio 1 − nnz(A')/nnz(A): the fraction of the source nonzeros the
  // format avoids storing (and avoids streaming in the multiply stage).
  // Ratios rather than absolute counts so that the metric stays meaningful
  // when mutation changes nnz(A) itself.
  const auto gain = [](std::int64_t deltas, std::int64_t nnz) {
    return nnz > 0
               ? 1.0 - static_cast<double>(deltas) / static_cast<double>(nnz)
               : 0.0;
  };
  const double lost = gain(state.baseline_deltas, state.baseline_nnz) -
                      gain(current_deltas, state.source_nnz);
  return std::clamp(std::max(reparented_frac, std::max(0.0, lost)), 0.0, 1.0);
}

/// True when `kind` supports in-place mutation (see file comment).
[[nodiscard]] constexpr bool cbm_kind_mutable(CbmKind kind) {
  return kind == CbmKind::kPlain || kind == CbmKind::kSymScaled;
}

}  // namespace cbm
