#include "sparse/csr.hpp"

#include <algorithm>
#include <numeric>

namespace cbm {

template <typename T>
CsrMatrix<T>::CsrMatrix(index_t rows, index_t cols,
                        std::vector<offset_t> indptr,
                        std::vector<index_t> indices, std::vector<T> values)
    : rows_(rows),
      cols_(cols),
      indptr_(std::move(indptr)),
      indices_(std::move(indices)),
      values_(std::move(values)) {
  CBM_CHECK(rows_ >= 0 && cols_ >= 0, "negative dimensions");
  CBM_CHECK(indptr_.size() == static_cast<std::size_t>(rows_) + 1,
            "indptr must have rows+1 entries");
  CBM_CHECK(indptr_.front() == 0, "indptr must start at 0");
  CBM_CHECK(std::is_sorted(indptr_.begin(), indptr_.end()),
            "indptr must be nondecreasing");
  CBM_CHECK(indices_.size() == values_.size(),
            "indices/values length mismatch");
  CBM_CHECK(indptr_.back() == static_cast<offset_t>(indices_.size()),
            "indptr.back() must equal nnz");
  for (const index_t c : indices_) {
    CBM_CHECK(c >= 0 && c < cols_, "column index out of bounds");
  }
}

template <typename T>
CsrMatrix<T> CsrMatrix<T>::from_coo(const CooMatrix<T>& coo) {
  const std::size_t nnz_in = coo.nnz();
  // Sort a permutation by (row, col) instead of shuffling three arrays.
  std::vector<std::size_t> perm(nnz_in);
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    if (coo.row_idx[a] != coo.row_idx[b])
      return coo.row_idx[a] < coo.row_idx[b];
    return coo.col_idx[a] < coo.col_idx[b];
  });

  std::vector<offset_t> indptr(static_cast<std::size_t>(coo.rows) + 1, 0);
  std::vector<index_t> indices;
  std::vector<T> values;
  indices.reserve(nnz_in);
  values.reserve(nnz_in);

  index_t prev_r = -1;
  index_t prev_c = -1;
  for (const std::size_t k : perm) {
    const index_t r = coo.row_idx[k];
    const index_t c = coo.col_idx[k];
    if (r == prev_r && c == prev_c) {
      values.back() += coo.values[k];  // duplicate: accumulate
      continue;
    }
    indices.push_back(c);
    values.push_back(coo.values[k]);
    ++indptr[static_cast<std::size_t>(r) + 1];
    prev_r = r;
    prev_c = c;
  }
  std::partial_sum(indptr.begin(), indptr.end(), indptr.begin());
  return CsrMatrix(coo.rows, coo.cols, std::move(indptr), std::move(indices),
                   std::move(values));
}

template <typename T>
CsrMatrix<T> CsrMatrix<T>::identity(index_t n) {
  std::vector<offset_t> indptr(static_cast<std::size_t>(n) + 1);
  std::iota(indptr.begin(), indptr.end(), offset_t{0});
  std::vector<index_t> indices(static_cast<std::size_t>(n));
  std::iota(indices.begin(), indices.end(), index_t{0});
  std::vector<T> values(static_cast<std::size_t>(n), T{1});
  return CsrMatrix(n, n, std::move(indptr), std::move(indices),
                   std::move(values));
}

template <typename T>
T CsrMatrix<T>::at(index_t i, index_t j) const {
  CBM_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_, "at(): out of range");
  const auto cols = row_indices(i);
  const auto it = std::lower_bound(cols.begin(), cols.end(), j);
  if (it == cols.end() || *it != j) return T{0};
  return values_[indptr_[i] + (it - cols.begin())];
}

template <typename T>
CsrMatrix<T> CsrMatrix<T>::transpose() const {
  // Counting sort over destination rows (= source columns).
  std::vector<offset_t> tptr(static_cast<std::size_t>(cols_) + 1, 0);
  for (const index_t c : indices_) ++tptr[static_cast<std::size_t>(c) + 1];
  std::partial_sum(tptr.begin(), tptr.end(), tptr.begin());

  std::vector<index_t> tind(indices_.size());
  std::vector<T> tval(values_.size());
  std::vector<offset_t> cursor(tptr.begin(), tptr.end() - 1);
  for (index_t i = 0; i < rows_; ++i) {
    for (offset_t k = indptr_[i]; k < indptr_[i + 1]; ++k) {
      const index_t c = indices_[k];
      const offset_t dst = cursor[c]++;
      tind[dst] = i;  // source rows visited in order => sorted output rows
      tval[dst] = values_[k];
    }
  }
  return CsrMatrix(cols_, rows_, std::move(tptr), std::move(tind),
                   std::move(tval));
}

template <typename T>
CooMatrix<T> CsrMatrix<T>::to_coo() const {
  CooMatrix<T> coo;
  coo.rows = rows_;
  coo.cols = cols_;
  coo.reserve(static_cast<std::size_t>(nnz()));
  for (index_t i = 0; i < rows_; ++i) {
    for (offset_t k = indptr_[i]; k < indptr_[i + 1]; ++k) {
      coo.row_idx.push_back(i);
      coo.col_idx.push_back(indices_[k]);
      coo.values.push_back(values_[k]);
    }
  }
  return coo;
}

template <typename T>
bool CsrMatrix<T>::is_binary() const {
  return std::all_of(values_.begin(), values_.end(),
                     [](T v) { return v == T{1}; });
}

template <typename T>
bool CsrMatrix<T>::has_sorted_unique_rows() const {
  for (index_t i = 0; i < rows_; ++i) {
    const auto cols = row_indices(i);
    for (std::size_t k = 1; k < cols.size(); ++k) {
      if (cols[k] <= cols[k - 1]) return false;
    }
  }
  return true;
}

template class CsrMatrix<float>;
template class CsrMatrix<double>;

}  // namespace cbm
