// Table I — "Networks selected to evaluate the CBM format": nodes, edges,
// average degree, and CSR footprint, for the stand-in datasets, with the
// paper's reference values side by side.
#include "bench_common.hpp"

int main() {
  using namespace cbm;
  const auto config = BenchConfig::from_env();
  print_bench_header(config, "Table I — dataset statistics");
  BenchReport report("table1_datasets", config);

  TablePrinter table({"Graph", "#Nodes", "#Edges", "AvgDeg", "S_CSR [MiB]",
                      "paper #Nodes", "paper #Edges", "paper AvgDeg"});
  for (const auto& spec : dataset_registry()) {
    const Graph g = load_dataset(spec, config);
    table.add_row({spec.name, std::to_string(g.num_nodes()),
                   std::to_string(g.num_edges()),
                   fmt_double(g.average_degree(), 1),
                   fmt_mib(g.adjacency().bytes()),
                   std::to_string(spec.paper_nodes),
                   std::to_string(spec.paper_edges),
                   fmt_double(spec.paper_avg_degree, 1)});
    report.add_scalar("nodes", static_cast<double>(g.num_nodes()),
                      {{"graph", spec.name}});
    report.add_scalar("edges", static_cast<double>(g.num_edges()),
                      {{"graph", spec.name}});
    report.add_scalar("csr_bytes",
                      static_cast<double>(g.adjacency().bytes()),
                      {{"graph", spec.name}});
  }
  table.print();
  return 0;
}
