// Error handling: CBM_CHECK for recoverable precondition violations (throws),
// CBM_DCHECK for debug-only internal invariants (assert-like).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cbm {

/// Exception thrown on precondition violations in the public API.
class CbmError : public std::runtime_error {
 public:
  explicit CbmError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "CBM_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CbmError(os.str());
}

}  // namespace detail
}  // namespace cbm

/// Checks a precondition and throws cbm::CbmError with context on failure.
/// Enabled in all build types: public-API misuse must never silently corrupt.
#define CBM_CHECK(expr, msg)                                               \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::cbm::detail::throw_check_failure(#expr, __FILE__, __LINE__, msg);  \
    }                                                                      \
  } while (0)

/// Internal invariant check, compiled out in release builds.
#ifndef NDEBUG
#define CBM_DCHECK(expr, msg) CBM_CHECK(expr, msg)
#else
#define CBM_DCHECK(expr, msg) \
  do {                        \
  } while (0)
#endif
