#include "exec/numa.hpp"

#include <sched.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string_view>

namespace cbm::exec {

namespace {

/// Parses the kernel's cpulist format: comma-separated cpu ids and ranges,
/// e.g. "0-3,8,10-11". Malformed pieces are skipped (topology detection must
/// never throw — worst case is a node with fewer usable cpus).
std::vector<int> parse_cpulist(std::string_view text) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view item = text.substr(pos, end - pos);
    pos = end + 1;
    while (!item.empty() && (item.back() == '\n' || item.back() == ' ')) {
      item.remove_suffix(1);
    }
    while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
    if (item.empty()) continue;
    const std::size_t dash = item.find('-');
    int lo = -1;
    int hi = -1;
    const auto parse_int = [](std::string_view s, int& out) {
      if (s.empty()) return false;
      int value = 0;
      for (const char ch : s) {
        if (ch < '0' || ch > '9') return false;
        value = value * 10 + (ch - '0');
        if (value < 0) return false;  // overflow
      }
      out = value;
      return true;
    };
    if (dash == std::string_view::npos) {
      if (!parse_int(item, lo)) continue;
      hi = lo;
    } else {
      if (!parse_int(item.substr(0, dash), lo) ||
          !parse_int(item.substr(dash + 1), hi) || hi < lo) {
        continue;
      }
    }
    for (int cpu = lo; cpu <= hi; ++cpu) cpus.push_back(cpu);
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

}  // namespace

NumaTopology NumaTopology::from_sysfs(const std::string& root) {
  NumaTopology topology;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(root, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    if (name.rfind("node", 0) != 0) continue;
    const std::string_view digits = std::string_view(name).substr(4);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string_view::npos) {
      continue;
    }
    Node node;
    node.id = std::stoi(std::string(digits));
    std::ifstream in(entry.path() / "cpulist");
    if (in) {
      std::string line;
      std::getline(in, line);
      node.cpus = parse_cpulist(line);
    }
    topology.nodes.push_back(std::move(node));
  }
  std::sort(topology.nodes.begin(), topology.nodes.end(),
            [](const Node& a, const Node& b) { return a.id < b.id; });
  if (topology.nodes.empty()) {
    topology.nodes.push_back(Node{0, {}});  // single-node fallback
  }
  return topology;
}

const NumaTopology& NumaTopology::host() {
  static const NumaTopology topology =
      from_sysfs("/sys/devices/system/node");
  return topology;
}

int placement_node(const NumaTopology& topology, NumaMode mode,
                   std::size_t part_index) {
  if (mode == NumaMode::kOff || !topology.multi_node()) return -1;
  return topology.nodes[part_index % topology.nodes.size()].id;
}

NodeAffinityGuard::NodeAffinityGuard(const NumaTopology& topology, int node) {
  if (node < 0 || !topology.multi_node()) return;
  const auto it =
      std::find_if(topology.nodes.begin(), topology.nodes.end(),
                   [node](const NumaTopology::Node& n) { return n.id == node; });
  if (it == topology.nodes.end() || it->cpus.empty()) return;
  cpu_set_t target;
  CPU_ZERO(&target);
  bool any = false;
  for (const int cpu : it->cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) {
      CPU_SET(cpu, &target);
      any = true;
    }
  }
  if (!any) return;
  cpu_set_t previous;
  CPU_ZERO(&previous);
  if (sched_getaffinity(0, sizeof(previous), &previous) != 0) return;
  if (sched_setaffinity(0, sizeof(target), &target) != 0) return;
  saved_.resize(sizeof(previous));
  std::memcpy(saved_.data(), &previous, sizeof(previous));
  active_ = true;
}

NodeAffinityGuard::~NodeAffinityGuard() {
  if (!active_) return;
  cpu_set_t previous;
  std::memcpy(&previous, saved_.data(), sizeof(previous));
  sched_setaffinity(0, sizeof(previous), &previous);
}

}  // namespace cbm::exec
