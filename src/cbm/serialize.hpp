// Binary (de)serialisation of the CBM format.
//
// The paper's timing protocol assumes the graph "must first be made
// available in CBM format as a pre-processing step" (§VI-D); this module
// makes that workflow concrete: compress once, persist, and load at
// inference time without paying the O(n·nnz) construction cost again.
//
// It is also the persistence tier of the serving-layer adjacency cache
// (serve/cache.hpp), which loads entries written by earlier processes —
// hence the hardened header below: a versioned magic, an endianness
// sentinel, and actionable errors on truncation, so a stale or corrupt
// cache file degrades to a clean CbmError instead of undefined behaviour.
//
// Format (native-endian with an explicit sentinel, version 2):
//   magic    "CBMF"            4 bytes
//   version  u32               currently 2 (v1 files lack the sentinel and
//                              are rejected with an actionable error)
//   endian   u32               0x01020304 written natively; a reader on an
//                              opposite-endian host sees 0x04030201 and
//                              rejects the file instead of mis-reading it
//   kind     u32               CbmKind
//   value    u32               sizeof(T) — 4 (float) or 8 (double)
//   rows     i64, cols i64
//   parent   i32[rows]         compression tree (virtual root = rows)
//   nnz      i64
//   indptr   i64[rows+1], indices i32[nnz], values T[nnz]
//   diag_len i64, diag T[diag_len]
#pragma once

#include <iosfwd>
#include <string>

#include "cbm/cbm_matrix.hpp"

namespace cbm {

/// Writes a CbmMatrix to a binary stream. Throws CbmError on I/O failure.
template <typename T>
void save_cbm(std::ostream& out, const CbmMatrix<T>& m);

/// Reads a CbmMatrix from a binary stream. Validates magic, version,
/// endianness sentinel, value width and structural invariants; throws
/// CbmError with an actionable message (what was found, what was expected)
/// on any mismatch or truncation.
template <typename T>
CbmMatrix<T> load_cbm(std::istream& in);

/// File-path convenience wrappers. load_cbm_file prefixes any load error
/// with the offending path.
template <typename T>
void save_cbm_file(const std::string& path, const CbmMatrix<T>& m);
template <typename T>
CbmMatrix<T> load_cbm_file(const std::string& path);

extern template void save_cbm<float>(std::ostream&, const CbmMatrix<float>&);
extern template void save_cbm<double>(std::ostream&, const CbmMatrix<double>&);
extern template CbmMatrix<float> load_cbm<float>(std::istream&);
extern template CbmMatrix<double> load_cbm<double>(std::istream&);
extern template void save_cbm_file<float>(const std::string&,
                                          const CbmMatrix<float>&);
extern template void save_cbm_file<double>(const std::string&,
                                           const CbmMatrix<double>&);
extern template CbmMatrix<float> load_cbm_file<float>(const std::string&);
extern template CbmMatrix<double> load_cbm_file<double>(const std::string&);

}  // namespace cbm
