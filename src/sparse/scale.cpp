#include "sparse/scale.hpp"

#include <vector>

namespace cbm {

namespace {

template <typename T>
void check_diag(const CsrMatrix<T>& a, std::span<const T> d, bool rows) {
  const auto need = static_cast<std::size_t>(rows ? a.rows() : a.cols());
  CBM_CHECK(d.size() == need, "diagonal length mismatch");
}

}  // namespace

template <typename T>
CsrMatrix<T> scale_columns(const CsrMatrix<T>& a, std::span<const T> d) {
  check_diag(a, d, /*rows=*/false);
  std::vector<offset_t> indptr(a.indptr().begin(), a.indptr().end());
  std::vector<index_t> indices(a.indices().begin(), a.indices().end());
  std::vector<T> values(a.values().size());
  const auto src = a.values();
  const auto idx = a.indices();
  for (std::size_t k = 0; k < values.size(); ++k) {
    values[k] = src[k] * d[idx[k]];
  }
  return CsrMatrix<T>(a.rows(), a.cols(), std::move(indptr),
                      std::move(indices), std::move(values));
}

template <typename T>
CsrMatrix<T> scale_rows(const CsrMatrix<T>& a, std::span<const T> d) {
  check_diag(a, d, /*rows=*/true);
  std::vector<offset_t> indptr(a.indptr().begin(), a.indptr().end());
  std::vector<index_t> indices(a.indices().begin(), a.indices().end());
  std::vector<T> values(a.values().begin(), a.values().end());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (offset_t k = indptr[i]; k < indptr[i + 1]; ++k) values[k] *= d[i];
  }
  return CsrMatrix<T>(a.rows(), a.cols(), std::move(indptr),
                      std::move(indices), std::move(values));
}

template <typename T>
CsrMatrix<T> scale_both(const CsrMatrix<T>& a, std::span<const T> dl,
                        std::span<const T> dr) {
  check_diag(a, dl, /*rows=*/true);
  check_diag(a, dr, /*rows=*/false);
  std::vector<offset_t> indptr(a.indptr().begin(), a.indptr().end());
  std::vector<index_t> indices(a.indices().begin(), a.indices().end());
  std::vector<T> values(a.values().size());
  const auto src = a.values();
  for (index_t i = 0; i < a.rows(); ++i) {
    for (offset_t k = indptr[i]; k < indptr[i + 1]; ++k) {
      values[k] = dl[i] * src[k] * dr[indices[k]];
    }
  }
  return CsrMatrix<T>(a.rows(), a.cols(), std::move(indptr),
                      std::move(indices), std::move(values));
}

template <typename T>
CsrMatrix<T> add_identity(const CsrMatrix<T>& a) {
  CBM_CHECK(a.rows() == a.cols(), "add_identity requires a square matrix");
  const index_t n = a.rows();
  std::vector<offset_t> indptr;
  std::vector<index_t> indices;
  std::vector<T> values;
  indptr.reserve(static_cast<std::size_t>(n) + 1);
  indices.reserve(static_cast<std::size_t>(a.nnz()) + n);
  values.reserve(static_cast<std::size_t>(a.nnz()) + n);
  indptr.push_back(0);
  for (index_t i = 0; i < n; ++i) {
    const auto cols = a.row_indices(i);
    const auto vals = a.row_values(i);
    bool placed = false;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (!placed && cols[k] >= i) {
        if (cols[k] == i) {
          indices.push_back(i);
          values.push_back(vals[k] + T{1});
          placed = true;
          continue;
        }
        indices.push_back(i);
        values.push_back(T{1});
        placed = true;
      }
      indices.push_back(cols[k]);
      values.push_back(vals[k]);
    }
    if (!placed) {
      indices.push_back(i);
      values.push_back(T{1});
    }
    indptr.push_back(static_cast<offset_t>(indices.size()));
  }
  return CsrMatrix<T>(n, n, std::move(indptr), std::move(indices),
                      std::move(values));
}

template CsrMatrix<float> scale_columns<float>(const CsrMatrix<float>&,
                                               std::span<const float>);
template CsrMatrix<double> scale_columns<double>(const CsrMatrix<double>&,
                                                 std::span<const double>);
template CsrMatrix<float> scale_rows<float>(const CsrMatrix<float>&,
                                            std::span<const float>);
template CsrMatrix<double> scale_rows<double>(const CsrMatrix<double>&,
                                              std::span<const double>);
template CsrMatrix<float> scale_both<float>(const CsrMatrix<float>&,
                                            std::span<const float>,
                                            std::span<const float>);
template CsrMatrix<double> scale_both<double>(const CsrMatrix<double>&,
                                              std::span<const double>,
                                              std::span<const double>);
template CsrMatrix<float> add_identity<float>(const CsrMatrix<float>&);
template CsrMatrix<double> add_identity<double>(const CsrMatrix<double>&);

}  // namespace cbm
