// Graph Isomorphism Network layer (Xu et al., one of the message-passing
// architectures the paper's §II lists as CBM-accelerable):
//     H' = MLP( (1 + ε)·H + A·H )
// The aggregation A·H is the binary-adjacency SpMM that CBM targets; the MLP
// is two dense layers with ReLU.
#pragma once

#include "common/rng.hpp"
#include "gnn/adjacency_op.hpp"

namespace cbm {

template <typename T>
class GinLayer {
 public:
  /// MLP: in_features → hidden → out_features, Glorot initialised.
  GinLayer(index_t in_features, index_t hidden, index_t out_features,
           T epsilon, Rng& rng);

  struct Workspace {
    DenseMatrix<T> agg;  ///< n × in: (1+ε)H + A·H
    DenseMatrix<T> mid;  ///< n × hidden
    Workspace(index_t n, index_t in, index_t hidden)
        : agg(n, in), mid(n, hidden) {}
  };

  /// Forward into `out` (n × out_features).
  void forward(const AdjacencyOp<T>& adj, const DenseMatrix<T>& h,
               Workspace& ws, DenseMatrix<T>& out) const;

  [[nodiscard]] T epsilon() const { return epsilon_; }
  [[nodiscard]] const DenseMatrix<T>& w0() const { return w0_; }
  [[nodiscard]] const DenseMatrix<T>& w1() const { return w1_; }

 private:
  T epsilon_;
  DenseMatrix<T> w0_;
  DenseMatrix<T> w1_;
};

extern template class GinLayer<float>;
extern template class GinLayer<double>;

}  // namespace cbm
