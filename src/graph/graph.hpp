// Undirected, unweighted simple graph backed by a binary CSR adjacency
// matrix — the object the CBM format compresses.
#pragma once

#include <utility>
#include <vector>

#include "sparse/csr.hpp"

namespace cbm {

/// Simple undirected graph. The adjacency matrix is symmetric and binary with
/// an empty diagonal; every query view is CSR-backed.
class Graph {
 public:
  Graph() = default;

  /// Builds from an undirected edge list. Duplicate edges and self-loops are
  /// discarded; each surviving edge is stored in both directions.
  static Graph from_edges(index_t num_nodes,
                          const std::vector<std::pair<index_t, index_t>>& edges);

  /// Builds from a (possibly directed / weighted) COO matrix by
  /// symmetrising the pattern and dropping self-loops and weights. This is
  /// how the paper treats ogbn-proteins ("we ignored the edge weights").
  static Graph from_coo_pattern(const CooMatrix<real_t>& coo);

  /// Wraps an existing binary symmetric CSR adjacency (validated).
  static Graph from_adjacency(CsrMatrix<real_t> adjacency);

  [[nodiscard]] index_t num_nodes() const { return adj_.rows(); }

  /// Undirected edge count (half the number of stored nonzeros).
  [[nodiscard]] offset_t num_edges() const { return adj_.nnz() / 2; }

  [[nodiscard]] index_t degree(index_t v) const { return adj_.row_nnz(v); }

  /// Sorted neighbor list of v.
  [[nodiscard]] std::span<const index_t> neighbors(index_t v) const {
    return adj_.row_indices(v);
  }

  /// Binary CSR adjacency matrix (values all 1).
  [[nodiscard]] const CsrMatrix<real_t>& adjacency() const { return adj_; }

  [[nodiscard]] double average_degree() const {
    return num_nodes() == 0
               ? 0.0
               : static_cast<double>(adj_.nnz()) / num_nodes();
  }

 private:
  explicit Graph(CsrMatrix<real_t> adj) : adj_(std::move(adj)) {}
  CsrMatrix<real_t> adj_;
};

}  // namespace cbm
