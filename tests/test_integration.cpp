// Cross-module integration tests: dataset registry, compression-ratio
// ordering across graph families (the paper's headline empirical claim), and
// an end-to-end GCN pipeline on a stand-in dataset.
#include <gtest/gtest.h>

#include "bench_util/datasets.hpp"
#include "cbm/cbm_matrix.hpp"
#include "dense/ops.hpp"
#include "gnn/gcn.hpp"
#include "graph/laplacian.hpp"
#include "graph/metrics.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

TEST(DatasetRegistry, AllEightSpecsPresent) {
  const auto& reg = dataset_registry();
  ASSERT_EQ(reg.size(), 8u);
  EXPECT_EQ(reg.front().name, "cora");
  EXPECT_EQ(reg.back().name, "ogbn-proteins");
  for (const auto& spec : reg) {
    EXPECT_GT(spec.paper_nodes, 0);
    EXPECT_GT(spec.paper_ratio_alpha0, 0.99);
  }
}

TEST(DatasetRegistry, LookupByNameAndUnknownThrows) {
  EXPECT_EQ(dataset_spec("collab").paper_ratio_alpha0, 11.0);
  EXPECT_THROW(dataset_spec("no-such-graph"), CbmError);
}

TEST(DatasetRegistry, StandinsGenerateAtSmallScale) {
  for (const auto& spec : dataset_registry()) {
    const Graph g = make_standin(spec.name, 0.01);
    EXPECT_GT(g.num_nodes(), 0) << spec.name;
    EXPECT_GT(g.num_edges(), 0) << spec.name;
  }
}

TEST(DatasetRegistry, LoadDatasetFallsBackToStandin) {
  BenchConfig config;
  config.scale = 0.01;
  config.mtx_dir = "/nonexistent";
  const Graph g = load_dataset(dataset_spec("cora"), config);
  EXPECT_GT(g.num_nodes(), 0);
}

TEST(Integration, CompressionRatioOrderingMatchesPaperFamilies) {
  // §VI-D: collaboration graphs (clique-union regime) compress much better
  // than citation graphs (preferential-attachment regime); the PPI regime
  // sits in between. Evaluate at reduced scale.
  auto ratio = [](const Graph& g) {
    CbmStats stats;
    CbmMatrix<float>::compress(g.adjacency(), {.alpha = 0}, &stats);
    return static_cast<double>(g.adjacency().bytes()) / stats.bytes;
  };
  const double citation = ratio(make_standin("cora", 1.0));
  const double collab = ratio(make_standin("collab", 0.05));
  const double coauthor = ratio(make_standin("ca-hepph", 0.25));
  EXPECT_GT(collab, coauthor);
  EXPECT_GT(coauthor, citation);
  EXPECT_GT(collab, 2.0);   // strong compression in the clique regime
  EXPECT_LT(citation, 1.5); // near-parity in the citation regime
}

TEST(Integration, ClusteringCorrelatesWithCompression) {
  // Table V's qualitative claim on our stand-ins: the clique-union graph has
  // both higher clustering and higher compression than the BA graph.
  const Graph cliquey = make_standin("copapersciteseer", 0.03);
  const Graph citation = make_standin("pubmed", 0.3);
  CbmStats s_cliquey, s_citation;
  CbmMatrix<float>::compress(cliquey.adjacency(), {.alpha = 0}, &s_cliquey);
  CbmMatrix<float>::compress(citation.adjacency(), {.alpha = 0}, &s_citation);
  const double r_cliquey =
      static_cast<double>(cliquey.adjacency().bytes()) / s_cliquey.bytes;
  const double r_citation =
      static_cast<double>(citation.adjacency().bytes()) / s_citation.bytes;
  EXPECT_GT(average_clustering(cliquey), average_clustering(citation));
  EXPECT_GT(r_cliquey, r_citation);
}

TEST(Integration, EndToEndGcnPipelineOnStandin) {
  // Full pipeline: dataset → normalisation → CBM compression → two-layer GCN
  // inference → equivalence with the CSR pipeline (the Table IV experiment
  // in miniature).
  const Graph g = make_standin("ca-hepph", 0.05);
  const index_t n = g.num_nodes();

  CsrAdjacency<float> csr(gcn_normalized_adjacency<float>(g));
  const auto norm = gcn_normalization<float>(g);
  CbmAdjacency<float> cbm(CbmMatrix<float>::compress_scaled(
      norm.a_plus_i, std::span<const float>(norm.dinv_sqrt),
      CbmKind::kSymScaled, {.alpha = 4}));

  const Gcn2<float> model(32, 24, 8, 2026);
  const auto x = test::random_dense<float>(n, 32, 2027);
  Gcn2<float>::Workspace ws(n, 24, 8);
  DenseMatrix<float> out_csr(n, 8), out_cbm(n, 8);
  model.forward(csr, x, ws, out_csr);
  model.forward(cbm, x, ws, out_cbm);
  EXPECT_TRUE(allclose(out_cbm, out_csr, 1e-5, 1e-5));
  EXPECT_LE(cbm.bytes(), csr.bytes());  // compression achieved
}

TEST(Integration, Property2AcrossAllAlphasOnStandin) {
  // With the corrected pruning sense, every admitted edge saves ≥ α+1
  // deltas, so Property 2 holds for ALL α, not only α=0.
  const Graph g = make_standin("ca-astroph", 0.05);
  const auto& a = g.adjacency();
  std::size_t csr_ops = 0;
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto nnz = static_cast<std::size_t>(a.row_nnz(i));
    csr_ops += nnz > 0 ? 2 * nnz - 1 : 0;
  }
  for (const int alpha : {0, 1, 2, 4, 8, 16, 32}) {
    const auto cbm = CbmMatrix<float>::compress(a, {.alpha = alpha});
    EXPECT_LE(cbm.scalar_ops(1), csr_ops) << "alpha=" << alpha;
  }
}

}  // namespace
}  // namespace cbm
