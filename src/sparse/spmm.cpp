#include "sparse/spmm.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "common/vectorops.hpp"

namespace cbm {

namespace {

/// Computes one block of C rows: C[i,:] = sum_k A[i,k] * B[k,:] through the
/// dispatched register-blocked row kernel (one indirect call per row).
template <typename T>
inline void spmm_rows(const CsrMatrix<T>& a, const DenseMatrix<T>& b,
                      DenseMatrix<T>& c, index_t row_begin, index_t row_end) {
  const auto indptr = a.indptr();
  const auto indices = a.indices();
  const auto values = a.values();
  const index_t p = b.cols();
  const T* bdata = b.data();
  const auto ldb = static_cast<std::size_t>(b.cols());
  const auto& kern = simd::kernels<T>();
  for (index_t i = row_begin; i < row_end; ++i) {
    kern.spmm_row(bdata, ldb, indices.data(), values.data(), indptr[i],
                  indptr[i + 1], c.row(i).data(), p,
                  /*seed_row=*/nullptr, T{0}, /*av_scale=*/T{1});
  }
}

}  // namespace

template <typename T>
std::vector<index_t> nnz_balanced_bounds(const CsrMatrix<T>& a, int parts) {
  // Clamping (rather than padding with empty duplicate ranges) keeps every
  // returned range meaningful even when parts exceeds the number of rows —
  // the degenerate case of tiny delta matrices under many threads.
  const index_t m = a.rows();
  const int k = std::clamp(parts, 1, static_cast<int>(std::max<index_t>(m, 1)));
  const auto indptr = a.indptr();
  const offset_t total = a.nnz();
  std::vector<index_t> bounds;
  bounds.reserve(static_cast<std::size_t>(k) + 1);
  bounds.push_back(0);
  for (int t = 1; t < k; ++t) {
    const offset_t target = total * t / k;
    const auto it =
        std::lower_bound(indptr.begin() + 1, indptr.end(), target);
    auto row = static_cast<index_t>(it - indptr.begin() - 1);
    row = std::max(row, bounds.back());  // keep ranges nondecreasing
    bounds.push_back(row);
  }
  bounds.push_back(m);
  return bounds;
}

template <typename T>
void csr_spmm_range(const CsrMatrix<T>& a, const DenseMatrix<T>& b,
                    DenseMatrix<T>& c, index_t row_begin, index_t row_end,
                    index_t col_begin, index_t col_end) {
  CBM_CHECK(a.cols() == b.rows(), "csr_spmm_range: inner dimensions differ");
  CBM_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
            "csr_spmm_range: output shape mismatch");
  CBM_CHECK(0 <= row_begin && row_begin <= row_end && row_end <= a.rows(),
            "csr_spmm_range: row range out of bounds");
  CBM_CHECK(0 <= col_begin && col_begin <= col_end && col_end <= b.cols(),
            "csr_spmm_range: column range out of bounds");
  // A row's nonzeros are walked exactly once whatever the range width: the
  // scattered B-row reads are the expensive part of an SpMM, so they must
  // not be repeated per column block. The dispatched row kernel holds column
  // panels in registers across the nonzero sweep, so every element of C is
  // written exactly once whatever the width.
  const auto indptr = a.indptr();
  const auto indices = a.indices();
  const auto values = a.values();
  const index_t width = col_end - col_begin;
  if (width == 0) return;
  const T* bdata = b.data() + col_begin;
  const auto ldb = static_cast<std::size_t>(b.cols());
  const auto& kern = simd::kernels<T>();
  for (index_t i = row_begin; i < row_end; ++i) {
    kern.spmm_row(bdata, ldb, indices.data(), values.data(), indptr[i],
                  indptr[i + 1], c.row(i).data() + col_begin, width,
                  /*seed_row=*/nullptr, T{0}, /*av_scale=*/T{1});
  }
}

template <typename T>
void csr_spmm(const CsrMatrix<T>& a, const DenseMatrix<T>& b,
              DenseMatrix<T>& c, SpmmSchedule schedule) {
  CBM_CHECK(a.cols() == b.rows(), "csr_spmm: inner dimensions differ");
  CBM_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
            "csr_spmm: output shape mismatch");
  const index_t m = a.rows();

  switch (schedule) {
    case SpmmSchedule::kRowStatic: {
#pragma omp parallel for schedule(static)
      for (index_t i = 0; i < m; ++i) spmm_rows(a, b, c, i, i + 1);
      break;
    }
    case SpmmSchedule::kRowDynamic: {
#pragma omp parallel for schedule(dynamic, 64)
      for (index_t i = 0; i < m; ++i) spmm_rows(a, b, c, i, i + 1);
      break;
    }
    case SpmmSchedule::kNnzBalanced: {
      const auto bounds = nnz_balanced_bounds(a, max_threads());
      const int parts = static_cast<int>(bounds.size()) - 1;
#pragma omp parallel for schedule(static, 1)
      for (int t = 0; t < parts; ++t) {
        spmm_rows(a, b, c, bounds[t], bounds[t + 1]);
      }
      break;
    }
  }
}

template <typename T>
void csr_spmv(const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y) {
  CBM_CHECK(x.size() == static_cast<std::size_t>(a.cols()),
            "csr_spmv: x length mismatch");
  CBM_CHECK(y.size() == static_cast<std::size_t>(a.rows()),
            "csr_spmv: y length mismatch");
  const auto indptr = a.indptr();
  const auto indices = a.indices();
  const auto values = a.values();
  const index_t m = a.rows();
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < m; ++i) {
    T acc{0};
    for (offset_t k = indptr[i]; k < indptr[i + 1]; ++k) {
      acc += values[k] * x[indices[k]];
    }
    y[i] = acc;
  }
}

template <typename T>
void coo_spmm(const CooMatrix<T>& a, const DenseMatrix<T>& b,
              DenseMatrix<T>& c) {
  CBM_CHECK(a.cols == b.rows(), "coo_spmm: inner dimensions differ");
  CBM_CHECK(c.rows() == a.rows && c.cols() == b.cols(),
            "coo_spmm: output shape mismatch");
  c.fill(T{0});
  const index_t p = b.cols();
  // Sequential scatter over triplets; fine as a reference/ablation kernel.
  const auto& kern = simd::kernels<T>();
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    kern.axpy(a.values[k], b.row(a.col_idx[k]).data(),
              c.row(a.row_idx[k]).data(), static_cast<std::size_t>(p));
  }
}

template <typename T>
std::size_t csr_spmm_flops(const CsrMatrix<T>& a, index_t bcols) {
  return 2ull * static_cast<std::size_t>(a.nnz()) *
         static_cast<std::size_t>(bcols);
}

template void csr_spmm<float>(const CsrMatrix<float>&,
                              const DenseMatrix<float>&, DenseMatrix<float>&,
                              SpmmSchedule);
template void csr_spmm<double>(const CsrMatrix<double>&,
                               const DenseMatrix<double>&,
                               DenseMatrix<double>&, SpmmSchedule);
template void csr_spmm_range<float>(const CsrMatrix<float>&,
                                    const DenseMatrix<float>&,
                                    DenseMatrix<float>&, index_t, index_t,
                                    index_t, index_t);
template void csr_spmm_range<double>(const CsrMatrix<double>&,
                                     const DenseMatrix<double>&,
                                     DenseMatrix<double>&, index_t, index_t,
                                     index_t, index_t);
template std::vector<index_t> nnz_balanced_bounds<float>(
    const CsrMatrix<float>&, int);
template std::vector<index_t> nnz_balanced_bounds<double>(
    const CsrMatrix<double>&, int);
template void csr_spmv<float>(const CsrMatrix<float>&, std::span<const float>,
                              std::span<float>);
template void csr_spmv<double>(const CsrMatrix<double>&,
                               std::span<const double>, std::span<double>);
template void coo_spmm<float>(const CooMatrix<float>&,
                              const DenseMatrix<float>&, DenseMatrix<float>&);
template void coo_spmm<double>(const CooMatrix<double>&,
                               const DenseMatrix<double>&,
                               DenseMatrix<double>&);
template std::size_t csr_spmm_flops<float>(const CsrMatrix<float>&, index_t);
template std::size_t csr_spmm_flops<double>(const CsrMatrix<double>&, index_t);

}  // namespace cbm
