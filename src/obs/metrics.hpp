// Process-wide metrics registry: counters, gauges, and timing histograms.
//
// Writes go to thread-local shards (each guarded by a mutex that is only
// ever contended during a snapshot), so incrementing a counter inside an
// OpenMP region is safe and never serialises the team. metrics_snapshot()
// merges all shards into one consistent view.
//
// Recording is off unless CBM_METRICS is set (or set_metrics_enabled(true)
// is called — the bench writer does this when CBM_BENCH_JSON is set); when
// off, every recording call is one relaxed atomic load and a branch.
//
// Metric names must outlive the recording call (string literals in
// practice); values are keyed by name content, not pointer identity.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>

namespace cbm::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// True when metric writes are being recorded (relaxed atomic load).
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled);

/// Monotonic counter += delta. No-op while disabled.
void counter_add(const char* name, std::int64_t delta = 1);

/// Point-in-time value; last write (in snapshot merge order) wins.
void gauge_set(const char* name, double value);

/// Records one duration into `name`'s histogram. No-op while disabled.
void timing_record(const char* name, double seconds);

/// Log-spaced duration histogram: bucket i counts samples in
/// [2^i, 2^{i+1}) nanoseconds; the last bucket is unbounded above.
struct TimingSummary {
  static constexpr std::size_t kBuckets = 48;  // 1 ns .. ~78 h

  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kBuckets> buckets{};

  [[nodiscard]] double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  /// Histogram-resolution estimate of quantile q in [0,1] (0 when empty).
  ///
  /// Error bound: the estimate is the geometric midpoint of the factor-of-two
  /// bucket holding the target rank, so it is off from the true quantile by
  /// at most a factor of √2 in either direction — except that it is always
  /// clamped to the observed [min, max], so p50 can never exceed the
  /// recorded max (nor undershoot the min), and a single-sample histogram
  /// returns that sample exactly. Samples beyond the last bucket's lower
  /// edge (~39 h) saturate into it; the clamp keeps their estimate at the
  /// observed extremes rather than the bucket midpoint.
  [[nodiscard]] double quantile(double q) const;

  void add(double seconds);
  void merge(const TimingSummary& other);
};

/// Merged view of every shard at one point in time.
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, TimingSummary> timings;
};

MetricsSnapshot metrics_snapshot();

/// Zeroes every shard (tests / between bench sections).
void metrics_reset();

/// Serialises a snapshot as one JSON object.
std::string metrics_json(const MetricsSnapshot& snapshot);

}  // namespace cbm::obs
