// Partitioned CBM — the paper's §VIII scaling strategy, implemented:
// cluster similar rows, build an independent partial CBM per cluster.
//
// Benefits over the monolithic format (exactly the ones §VIII anticipates):
//  - the distance-graph/overlap computation is confined to each cluster, so
//    peak construction memory drops from O(candidate pairs of A) to the
//    largest cluster's share (the paper's Reddit blow-up);
//  - clusters compress and multiply independently — more parallelism in both
//    construction and the update stage;
//  - at a modest cost in compression ratio (cross-cluster similarity is not
//    exploited).
#pragma once

#include "cbm/cbm_matrix.hpp"
#include "graph/clustering.hpp"

namespace cbm {

struct PartitionedOptions {
  CbmOptions base;                                   ///< per-part options
  ClusterMethod method = ClusterMethod::kMinHash;
  index_t num_clusters = 16;
  std::uint64_t seed = 0x517Eull;
};

struct PartitionedStats {
  double build_seconds = 0.0;
  double cluster_seconds = 0.0;
  index_t num_parts = 0;
  index_t largest_part = 0;
  std::int64_t total_deltas = 0;
  std::int64_t source_nnz = 0;
  std::size_t bytes = 0;
  /// Peak candidate-edge count over the parts: the §VIII memory proxy
  /// (the monolithic builder's candidate count is the sum instead).
  std::size_t peak_candidate_edges = 0;
  std::size_t total_candidate_edges = 0;
};

/// A binary (or diagonally scaled) matrix stored as per-cluster partial CBM
/// formats. multiply() matches CbmMatrix::multiply bit-for-bit in semantics.
template <typename T>
class PartitionedCbmMatrix {
 public:
  PartitionedCbmMatrix() = default;

  /// Compresses A (kPlain).
  static PartitionedCbmMatrix compress(const CsrMatrix<T>& a,
                                       const PartitionedOptions& options = {},
                                       PartitionedStats* stats = nullptr);

  /// Compresses A·D or D·A·D (same contract as CbmMatrix::compress_scaled).
  static PartitionedCbmMatrix compress_scaled(
      const CsrMatrix<T>& a, std::span<const T> diag, CbmKind kind,
      const PartitionedOptions& options = {},
      PartitionedStats* stats = nullptr);

  /// C = op(A)·B — the consolidated entry point (mirrors
  /// CbmMatrix::multiply). Parts run through their own multiply and scatter
  /// into C; unlike CbmMatrix::multiply this needs a gather workspace (one
  /// dense block of the largest part's size per part), allocated lazily and
  /// reused.
  ///
  /// An engaged `options.plan` applies to every part; `auto_plan()` lets
  /// each part resolve the plan for its own shape (per-part tuning cache
  /// entries / probes) under one ambient SIMD level (the kernel table is
  /// process-global, so per-part SIMD switching inside concurrent tasks is
  /// not allowed). Executor choice and NUMA placement come from
  /// `options.runtime` (CBM_PART_EXEC / CBM_NUMA when null): the default
  /// task-graph mode runs all parts' column-panel multiplies (row scatter
  /// fused into each task) concurrently in one parallel region with no
  /// inter-part barriers; serial mode keeps the historical part-at-a-time
  /// loop as a baseline. Column panels (`options.col_begin/col_end`) are
  /// not supported here.
  void multiply(const DenseMatrix<T>& b, DenseMatrix<T>& c,
                const MultiplyOptions& options = {});

  /// Forwarding overload (docs-deprecated; prefer MultiplyOptions):
  /// two-stage plan built from `schedule`, applied to every part.
  void multiply(const DenseMatrix<T>& b, DenseMatrix<T>& c,
                UpdateSchedule schedule);

  /// Forwarding overload (docs-deprecated; prefer MultiplyOptions): one
  /// full execution plan applied to every part — the fused engine and
  /// tuned plans work here exactly as on a monolithic CbmMatrix.
  void multiply(const DenseMatrix<T>& b, DenseMatrix<T>& c,
                const MultiplySchedule& plan);

  /// Forwarding overload (docs-deprecated; prefer
  /// `multiply(b, c, MultiplyOptions::auto_plan())`).
  void multiply_auto(const DenseMatrix<T>& b, DenseMatrix<T>& c);

  // ----------------------------------------------------------- mutation --
  // Incremental maintenance, routed: each edge goes to the part owning its
  // global row (columns are global in every part) and the batch is applied
  // part-locally by CbmMatrix's mutation. kPlain only — the scaled
  // partitioned kinds build kTwoSided parts, which cannot be mutated
  // in place (recompress instead). Same thread-safety contract as
  // CbmMatrix: not safe against concurrent multiplies on this instance.

  /// Inserts edges (global coordinates). See CbmMatrix::insert_edges.
  MutationResult insert_edges(std::span<const EdgeUpdate> edges);

  /// Removes edges (global coordinates). See CbmMatrix::remove_edges.
  MutationResult remove_edges(std::span<const EdgeUpdate> edges);

  /// One batch of inserts + removes; results aggregated across parts.
  MutationResult mutate_edges(std::span<const EdgeUpdate> inserts,
                              std::span<const EdgeUpdate> removes);

  /// Aggregate staleness: the CbmMatrix formula evaluated over the summed
  /// per-part bookkeeping (reparented rows and gain ratios pool across
  /// parts; 0 while no part has been mutated).
  [[nodiscard]] double staleness() const;

  /// Sum of the parts' mutation epochs — moves on every effective batch.
  [[nodiscard]] std::uint64_t mutation_epoch() const;

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] index_t num_parts() const {
    return static_cast<index_t>(parts_.size());
  }
  [[nodiscard]] std::size_t bytes() const;

  /// The partial CBM of one part and the global rows it owns.
  struct Part {
    CbmMatrix<T> cbm;
    std::vector<index_t> rows;  ///< global row ids, ascending
    DenseMatrix<T> scratch;     ///< gather block, lazily sized by multiply()
  };
  [[nodiscard]] const std::vector<Part>& parts() const { return parts_; }

 private:
  static PartitionedCbmMatrix compress_impl(const CsrMatrix<T>& a,
                                            std::span<const T> diag,
                                            CbmKind kind,
                                            const PartitionedOptions& options,
                                            PartitionedStats* stats);

  /// Shared core of the multiply overloads: one (possibly per-part) plan per
  /// part, dispatched to the serial or task-graph executor per
  /// `config.part_exec`, with `config.numa` placement.
  void multiply_with_plans(const DenseMatrix<T>& b, DenseMatrix<T>& c,
                           std::span<const MultiplySchedule> plans,
                           const RuntimeConfig& config);

  /// Builds row_part_/row_local_ (global row → owning part and local row)
  /// on first mutation; parts never exchange rows, so it is built once.
  void ensure_row_index();

  std::vector<Part> parts_;
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<index_t> row_part_;   ///< global row → part (mutation routing)
  std::vector<index_t> row_local_;  ///< global row → row within its part
};

extern template class PartitionedCbmMatrix<float>;
extern template class PartitionedCbmMatrix<double>;

}  // namespace cbm
