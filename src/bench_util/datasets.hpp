// Registry of the paper's eight evaluation datasets (Table I) with synthetic
// stand-ins (DESIGN.md §2).
//
// Each spec records the paper's measured properties (node/edge counts,
// average degree, α=0 compression ratio, average clustering) so benches can
// print paper-vs-measured side by side, plus a generator producing a
// deterministic synthetic graph in the same structural regime, node-scaled
// to laptop budgets. When CBM_BENCH_MTX_DIR contains "<name>.mtx" the real
// graph is loaded instead.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bench_util/env.hpp"
#include "graph/graph.hpp"

namespace cbm {

struct DatasetSpec {
  std::string name;        ///< registry key, e.g. "cora"
  std::string family;      ///< citation | coauthor | collaboration | ppi
  // Paper-reported reference values (Tables I, II, V):
  index_t paper_nodes = 0;
  offset_t paper_edges = 0;
  double paper_avg_degree = 0.0;
  double paper_clustering = 0.0;     ///< Table V
  double paper_ratio_alpha0 = 0.0;   ///< Table II compression ratio, α=0
  // Best-α values used in Tables III/IV:
  int paper_best_alpha_seq = 4;
  int paper_best_alpha_par = 16;
};

/// All eight dataset specs in the paper's Table I order.
const std::vector<DatasetSpec>& dataset_registry();

/// Spec lookup by name; throws CbmError for unknown names.
const DatasetSpec& dataset_spec(const std::string& name);

/// Materialises the dataset: a real .mtx when available in config.mtx_dir,
/// otherwise the synthetic stand-in scaled by config.scale.
Graph load_dataset(const DatasetSpec& spec, const BenchConfig& config);

/// Generates the synthetic stand-in at the given scale factor (0, 1].
Graph make_standin(const std::string& name, double scale);

}  // namespace cbm
