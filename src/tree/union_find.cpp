#include "tree/union_find.hpp"

#include <numeric>

#include "common/error.hpp"

namespace cbm {

UnionFind::UnionFind(index_t n)
    : parent_(static_cast<std::size_t>(n)),
      size_(static_cast<std::size_t>(n), 1),
      sets_(n) {
  CBM_CHECK(n >= 0, "UnionFind size must be nonnegative");
  std::iota(parent_.begin(), parent_.end(), index_t{0});
}

index_t UnionFind::find(index_t x) {
  CBM_DCHECK(x >= 0 && x < static_cast<index_t>(parent_.size()),
             "find out of range");
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(index_t a, index_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --sets_;
  return true;
}

}  // namespace cbm
