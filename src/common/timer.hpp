// Wall-clock timing used by the benchmark harness.
#pragma once

#include <chrono>

namespace cbm {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace cbm
