// Autotuner tests (src/tune): shape fingerprints, mode parsing, the
// decide() probe/cache flow with a fake probe function, on-disk cache
// round-trips through the cbm-tune-v1 schema, corruption tolerance, and the
// end-to-end multiply_auto() path against the dense oracle.
//
// The Tuner is a process-wide singleton; every test that touches it points
// it at a private temp file (or disables persistence) and clear()s on the
// way in, so tests stay order-independent.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "cbm/cbm_matrix.hpp"
#include "check/check.hpp"
#include "common/error.hpp"
#include "test_util.hpp"
#include "tune/microjson.hpp"
#include "tune/tune.hpp"

namespace cbm::tune {
namespace {

using test::EnvGuard;

/// Points the singleton at a fresh temp cache file for one test and removes
/// the file (and in-memory state) afterwards.
class TunerSandbox {
 public:
  explicit TunerSandbox(const std::string& tag) {
    path_ = ::testing::TempDir() + "cbm-tune-test-" + tag + ".json";
    std::remove(path_.c_str());
    Tuner::instance().set_cache_path(path_);
  }
  ~TunerSandbox() {
    Tuner::instance().set_cache_path("");  // in-memory only between tests
    Tuner::instance().clear();
    std::remove(path_.c_str());
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

ShapeKey make_key() {
  ShapeKey key;
  key.rows = 100;
  key.cols = 100;
  key.bcols = 64;
  key.delta_nnz = 500;
  key.threads = 1;
  key.elem_bytes = 4;
  return key;
}

TEST(TuneMode, ParsesAndRejects) {
  {
    const EnvGuard env("CBM_TUNE", "off");
    EXPECT_EQ(tune_mode_from_env(), TuneMode::kOff);
  }
  {
    const EnvGuard env("CBM_TUNE", "on");
    EXPECT_EQ(tune_mode_from_env(), TuneMode::kOn);
  }
  {
    const EnvGuard env("CBM_TUNE", "force");
    EXPECT_EQ(tune_mode_from_env(), TuneMode::kForce);
  }
  {
    const EnvGuard env("CBM_TUNE", "");
    EXPECT_EQ(tune_mode_from_env(), TuneMode::kOff);
  }
  {
    const EnvGuard env("CBM_TUNE", "yes");
    EXPECT_THROW(tune_mode_from_env(), CbmError);
  }
}

TEST(ShapeKeyTest, FingerprintCoversEveryField) {
  ShapeKey key = make_key();
  const std::string base = key.fingerprint();
  EXPECT_EQ(base, "r100x100_p64_nnz500_t1_e4");
  ShapeKey other = make_key();
  other.bcols = 65;
  EXPECT_NE(other.fingerprint(), base);
  other = make_key();
  other.threads = 2;
  EXPECT_NE(other.fingerprint(), base);
  other = make_key();
  other.elem_bytes = 8;
  EXPECT_NE(other.fingerprint(), base);
}

TEST(CandidatePlans, CoverBothEnginesAtSupportedLevels) {
  const auto plans = candidate_plans(make_key());
  ASSERT_FALSE(plans.empty());
  bool saw_two_stage = false, saw_fused = false, saw_full_width = false;
  for (const Plan& plan : plans) {
    EXPECT_TRUE(simd_level_supported(plan.simd));
    saw_two_stage |= plan.schedule.path == MultiplyPath::kTwoStage;
    saw_fused |= plan.schedule.path == MultiplyPath::kFusedTiled;
    saw_full_width |= plan.schedule.path == MultiplyPath::kFusedTiled &&
                      plan.schedule.tile_cols == 64;
  }
  EXPECT_TRUE(saw_two_stage);
  EXPECT_TRUE(saw_fused);
  EXPECT_TRUE(saw_full_width);
}

TEST(CandidatePlans, Avx2TierProbedOnlyOnNarrowOperands) {
  if (simd_max_supported() != SimdLevel::kAvx512) {
    GTEST_SKIP() << "needs an AVX-512 host to expose the AVX2 fallback tier";
  }
  ShapeKey narrow = make_key();
  narrow.bcols = 32;
  bool saw_avx2 = false;
  for (const Plan& plan : candidate_plans(narrow)) {
    saw_avx2 |= plan.simd == SimdLevel::kAvx2;
  }
  EXPECT_TRUE(saw_avx2) << "masked tails dominate at p=32; probe AVX2 there";

  ShapeKey wide = make_key();
  wide.bcols = 128;
  for (const Plan& plan : candidate_plans(wide)) {
    EXPECT_EQ(plan.simd, SimdLevel::kAvx512)
        << "wide operands must not expose the slower tier to probe noise";
  }
}

TEST(TunerDecide, OffNeverProbes) {
  TunerSandbox sandbox("off");
  int probes = 0;
  const auto decision =
      Tuner::instance().decide(make_key(), TuneMode::kOff, [&](const Plan&) {
        ++probes;
        return 1.0;
      });
  EXPECT_FALSE(decision.tuned);
  EXPECT_EQ(probes, 0);
}

TEST(TunerDecide, OnProbesOnceThenHitsCache) {
  TunerSandbox sandbox("on");
  int probes = 0;
  // Fake probe: make the two-stage engine the unambiguous winner.
  const auto probe = [&](const Plan& plan) {
    ++probes;
    return plan.schedule.path == MultiplyPath::kTwoStage ? 0.5 : 2.0;
  };
  const auto first = Tuner::instance().decide(make_key(), TuneMode::kOn, probe);
  EXPECT_TRUE(first.tuned);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.plan.schedule.path, MultiplyPath::kTwoStage);
  EXPECT_GT(probes, 1);  // every candidate was timed

  const int probes_after_first = probes;
  const auto second =
      Tuner::instance().decide(make_key(), TuneMode::kOn, probe);
  EXPECT_TRUE(second.tuned);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(probes, probes_after_first);  // no re-probe
  EXPECT_EQ(second.plan.schedule.path, MultiplyPath::kTwoStage);
}

TEST(TunerDecide, ForceAlwaysReprobes) {
  TunerSandbox sandbox("force");
  int probes = 0;
  const auto probe = [&](const Plan&) {
    ++probes;
    return 1.0;
  };
  (void)Tuner::instance().decide(make_key(), TuneMode::kForce, probe);
  const int first = probes;
  (void)Tuner::instance().decide(make_key(), TuneMode::kForce, probe);
  EXPECT_EQ(probes, 2 * first);
}

TEST(TunerDecide, AllProbesFailingFallsBackToAnalytic) {
  TunerSandbox sandbox("fail");
  const auto decision = Tuner::instance().decide(
      make_key(), TuneMode::kOn, [](const Plan&) { return -1.0; });
  EXPECT_FALSE(decision.tuned);
}

TEST(TunerCache, RoundTripsThroughDisk) {
  TunerSandbox sandbox("roundtrip");
  const auto probe = [](const Plan& plan) {
    return plan.schedule.path == MultiplyPath::kFusedTiled &&
                   plan.schedule.tile_cols == 64
               ? 0.25
               : 1.0;
  };
  (void)Tuner::instance().decide(make_key(), TuneMode::kOn, probe);

  // The written document is valid cbm-tune-v1 JSON.
  std::ifstream in(sandbox.path());
  ASSERT_TRUE(in.good()) << "cache file missing: " << sandbox.path();
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = microjson::parse(buf.str());
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->get_string("schema").value_or(""), kCacheSchema);

  // A fresh load from the same file serves the entry without probing.
  Tuner::instance().set_cache_path(sandbox.path());  // clears memory
  int probes = 0;
  const auto decision =
      Tuner::instance().decide(make_key(), TuneMode::kOn, [&](const Plan&) {
        ++probes;
        return 1.0;
      });
  EXPECT_TRUE(decision.cache_hit);
  EXPECT_EQ(probes, 0);
  EXPECT_EQ(decision.plan.schedule.path, MultiplyPath::kFusedTiled);
  EXPECT_EQ(decision.plan.schedule.tile_cols, 64);
}

TEST(TunerCache, CorruptedFileDegradesToReprobe) {
  for (const char* corrupt : {
           "not json at all {{{",
           "{\"schema\":\"cbm-tune-v999\",\"entries\":{}}",
           "{\"schema\":\"cbm-tune-v1\",\"entries\":{\"k\":{\"path\":"
           "\"warp_drive\",\"spmm\":\"row_static\",\"update\":\"sequential\","
           "\"tile_cols\":0,\"simd\":\"scalar\"}}}",
           "{\"schema\":\"cbm-tune-v1\",\"entries\":42}",
       }) {
    TunerSandbox sandbox("corrupt");
    {
      std::ofstream out(sandbox.path());
      out << corrupt;
    }
    Tuner::instance().set_cache_path(sandbox.path());
    int probes = 0;
    const auto decision =
        Tuner::instance().decide(make_key(), TuneMode::kOn, [&](const Plan&) {
          ++probes;
          return 1.0;
        });
    EXPECT_TRUE(decision.tuned) << corrupt;
    EXPECT_FALSE(decision.cache_hit) << corrupt;
    EXPECT_GT(probes, 0) << corrupt;
  }
}

TEST(TunerCache, CpuModelKeyNamesTheSimdTier) {
  const std::string key = cpu_model_key();
  EXPECT_NE(key.find(simd_level_name(simd_max_supported())),
            std::string::npos)
      << key;
}

TEST(MultiplyAuto, MatchesOracleWithTuningOn) {
  TunerSandbox sandbox("auto");
  const EnvGuard env("CBM_TUNE", "on");
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = check::random_binary<float>(48, 0.08, seed);
  const auto b = check::random_dense<float>(48, 21, test::auto_seed(1));
  const auto oracle = check::dense_reference_multiply(a, b);
  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 2});

  DenseMatrix<float> c(48, 21);
  c.fill(-3.0f);
  cbm.multiply_auto(b, c);  // first contact: probes, persists
  auto cmp = check::compare_allclose(c, oracle, 1e-4, 1e-5, 32);
  EXPECT_TRUE(cmp.ok) << "probe run: " << cmp.to_string();

  const auto decision = cbm.resolve_plan(b, c);
  EXPECT_TRUE(decision.tuned);
  EXPECT_TRUE(decision.cache_hit);

  c.fill(-3.0f);
  cbm.multiply_auto(b, c);  // cached plan
  cmp = check::compare_allclose(c, oracle, 1e-4, 1e-5, 32);
  EXPECT_TRUE(cmp.ok) << "cached run: " << cmp.to_string();
}

TEST(MultiplyAuto, TuningOffUsesAnalyticPlan) {
  TunerSandbox sandbox("analytic");
  const EnvGuard env("CBM_TUNE", "off");
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = check::random_binary<float>(40, 0.1, seed);
  const auto b = check::random_dense<float>(40, 9, test::auto_seed(1));
  const auto oracle = check::dense_reference_multiply(a, b);
  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 2});

  DenseMatrix<float> c(40, 9);
  const auto decision = cbm.resolve_plan(b, c);
  EXPECT_FALSE(decision.tuned);
  EXPECT_EQ(decision.plan.schedule.path, MultiplyPath::kFusedTiled);

  c.fill(-3.0f);
  cbm.multiply_auto(b, c);
  const auto cmp = check::compare_allclose(c, oracle, 1e-4, 1e-5, 32);
  EXPECT_TRUE(cmp.ok) << cmp.to_string();
}

// ---------------------------------------------------------- plan naming --

TEST(PlanVocabulary, NamesRoundTripThroughParse) {
  for (const MultiplyPath p :
       {MultiplyPath::kTwoStage, MultiplyPath::kFusedTiled}) {
    EXPECT_EQ(parse_multiply_path(multiply_path_name(p)), p);
  }
  for (const SpmmSchedule s :
       {SpmmSchedule::kRowStatic, SpmmSchedule::kRowDynamic,
        SpmmSchedule::kNnzBalanced}) {
    EXPECT_EQ(parse_spmm_schedule(spmm_schedule_name(s)), s);
  }
  for (const UpdateSchedule u :
       {UpdateSchedule::kSequential, UpdateSchedule::kBranchDynamic,
        UpdateSchedule::kBranchStatic, UpdateSchedule::kColumnSplit}) {
    EXPECT_EQ(parse_update_schedule(update_schedule_name(u)), u);
  }
  EXPECT_THROW(parse_multiply_path("warp_drive"), CbmError);
  EXPECT_THROW(parse_spmm_schedule(""), CbmError);
  EXPECT_THROW(parse_update_schedule("Sequential"), CbmError);
}

// ------------------------------------------------------------- microjson --

TEST(MicroJson, ParsesScalarsStringsAndNesting) {
  const auto doc = microjson::parse(
      R"({"a": 1.5, "b": [true, null, "x\nA"], "c": {"d": -2e3}})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->get_number("a").value_or(0), 1.5);
  const auto* b = doc->find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->as_array().size(), 3u);
  EXPECT_TRUE(b->as_array()[0].is_bool());
  EXPECT_TRUE(b->as_array()[1].is_null());
  EXPECT_EQ(b->as_array()[2].as_string(), "x\nA");
  const auto* c = doc->find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->get_number("d").value_or(0), -2000.0);
}

TEST(MicroJson, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "{\"a\":1} trailing",
                          "\"unterminated", "nul", "+1", "{\"a\" 1}"}) {
    EXPECT_FALSE(microjson::parse(bad).has_value()) << bad;
  }
}

TEST(MicroJson, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(microjson::parse(deep).has_value());
}

}  // namespace
}  // namespace cbm::tune
