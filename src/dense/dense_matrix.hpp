// Row-major dense matrix container.
//
// This is the right-hand operand type of every SpMM in the paper (the node
// feature/embedding matrices X, W0, W1) and the output type of all kernels.
#pragma once

#include <span>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace cbm {

/// Row-major dense matrix with contiguous, 64-byte-aligned storage (the SpMM
/// microkernels rely on operands starting at a cache-line boundary).
template <typename T>
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// rows x cols matrix, zero-initialised.
  DenseMatrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              T{0}) {
    CBM_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be nonnegative");
  }

  /// Constructs from explicit row-major data (size must equal rows*cols).
  /// Copies into aligned storage.
  DenseMatrix(index_t rows, index_t cols, std::vector<T> data)
      : rows_(rows), cols_(cols), data_(data.begin(), data.end()) {
    CBM_CHECK(data_.size() == static_cast<std::size_t>(rows) *
                                  static_cast<std::size_t>(cols),
              "data size does not match dimensions");
  }

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }

  T& operator()(index_t i, index_t j) {
    CBM_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_, "index out of range");
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }
  const T& operator()(index_t i, index_t j) const {
    CBM_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_, "index out of range");
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }

  /// Mutable view of row i.
  [[nodiscard]] std::span<T> row(index_t i) {
    CBM_DCHECK(i >= 0 && i < rows_, "row index out of range");
    return {data_.data() + static_cast<std::size_t>(i) * cols_,
            static_cast<std::size_t>(cols_)};
  }
  /// Read-only view of row i.
  [[nodiscard]] std::span<const T> row(index_t i) const {
    CBM_DCHECK(i >= 0 && i < rows_, "row index out of range");
    return {data_.data() + static_cast<std::size_t>(i) * cols_,
            static_cast<std::size_t>(cols_)};
  }

  /// Sets every element to v.
  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Fills with uniform values in [lo, hi) from a deterministic stream. The
  /// paper's correctness protocol multiplies by random matrices in [0,1).
  void fill_uniform(Rng& rng, T lo = T{0}, T hi = T{1}) {
    for (auto& v : data_) {
      v = lo + static_cast<T>(rng.next_double()) * (hi - lo);
    }
  }

  /// Memory footprint in bytes (storage only; metadata excluded).
  [[nodiscard]] std::size_t bytes() const { return data_.size() * sizeof(T); }

  bool operator==(const DenseMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  AlignedVector<T> data_;
};

}  // namespace cbm
