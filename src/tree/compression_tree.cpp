#include "tree/compression_tree.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace cbm {

CompressionTree CompressionTree::from_parents(std::vector<index_t> parent) {
  const auto n = static_cast<index_t>(parent.size());
  for (const index_t p : parent) {
    CBM_CHECK(p >= 0 && p <= n, "parent index out of range");
  }

  CompressionTree tree;
  tree.parent_ = std::move(parent);

  // Children lists in CSR form (counts then bucket fill) over n+1 nodes,
  // the last being the virtual root. Kept on the tree (children() serves the
  // mutation layer); the locals below alias them.
  std::vector<index_t> child_count(static_cast<std::size_t>(n) + 1, 0);
  for (index_t x = 0; x < n; ++x) ++child_count[tree.parent_[x]];
  tree.child_ptr_.assign(static_cast<std::size_t>(n) + 2, 0);
  for (index_t v = 0; v <= n; ++v) {
    tree.child_ptr_[v + 1] = tree.child_ptr_[v] + child_count[v];
  }
  tree.child_.assign(static_cast<std::size_t>(n), 0);
  {
    std::vector<offset_t> cursor(tree.child_ptr_.begin(),
                                 tree.child_ptr_.end() - 1);
    for (index_t x = 0; x < n; ++x) tree.child_[cursor[tree.parent_[x]]++] = x;
  }
  const auto& child_ptr = tree.child_ptr_;
  const auto& child = tree.child_;
  tree.root_children_ = child_count[n];

  // BFS from the virtual root: gives the topological order and verifies that
  // every row is reachable (i.e. the parent array is acyclic).
  tree.topo_.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> depth(static_cast<std::size_t>(n), 0);
  std::vector<index_t> queue;
  queue.reserve(static_cast<std::size_t>(n));
  for (offset_t k = child_ptr[n]; k < child_ptr[n + 1]; ++k) {
    queue.push_back(child[k]);
    depth[child[k]] = 1;
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const index_t v = queue[head];
    tree.topo_.push_back(v);
    tree.max_depth_ = std::max(tree.max_depth_, depth[v]);
    for (offset_t k = child_ptr[v]; k < child_ptr[v + 1]; ++k) {
      depth[child[k]] = depth[v] + 1;
      queue.push_back(child[k]);
    }
  }
  CBM_CHECK(tree.topo_.size() == static_cast<std::size_t>(n),
            "parent array contains a cycle (not a tree)");
  tree.compressed_ = n - tree.root_children_;

  // Branch decomposition: BFS each root-child subtree. Singleton subtrees are
  // kept — the plain/AD update skips them in O(1), but the DAD update still
  // has to scale their rows (Eq. 6 applies to every row).
  tree.branches_.reserve(static_cast<std::size_t>(tree.root_children_));
  std::vector<index_t> sub;
  for (offset_t k = child_ptr[n]; k < child_ptr[n + 1]; ++k) {
    const index_t c = child[k];
    sub.clear();
    sub.push_back(c);
    for (std::size_t head = 0; head < sub.size(); ++head) {
      const index_t v = sub[head];
      for (offset_t q = child_ptr[v]; q < child_ptr[v + 1]; ++q) {
        sub.push_back(child[q]);
      }
    }
    tree.branches_.push_back(sub);
  }
  return tree;
}

std::span<const index_t> CompressionTree::children(index_t x) const {
  CBM_DCHECK(x >= 0 && x <= num_rows(), "children: node out of range");
  return {child_.data() + child_ptr_[x],
          static_cast<std::size_t>(child_ptr_[x + 1] - child_ptr_[x])};
}

CompressionTree CompressionTree::with_reparented_to_root(
    std::span<const index_t> rows) const {
  const index_t n = num_rows();
  std::vector<index_t> parent(parent_);
  for (const index_t x : rows) {
    CBM_CHECK(x >= 0 && x < n, "with_reparented_to_root: row out of range");
    parent[x] = n;
  }
  return from_parents(std::move(parent));
}

std::size_t CompressionTree::bytes() const {
  std::size_t total = parent_.size() * sizeof(index_t);
  for (const auto& b : branches_) total += b.size() * sizeof(index_t);
  return total;
}

}  // namespace cbm
