// Coordinate-list (COO) sparse matrix: the assembly format.
//
// Generators and file loaders produce COO triplets; CSR construction sorts
// and deduplicates them. Mirrors the role COO plays in PyTorch/PyG pipelines
// referenced by the paper.
#pragma once

#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cbm {

/// Unsorted triplet list (row, col, value).
template <typename T>
struct CooMatrix {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row_idx;
  std::vector<index_t> col_idx;
  std::vector<T> values;

  [[nodiscard]] std::size_t nnz() const { return values.size(); }

  /// Appends one entry; bounds-checked.
  void push(index_t r, index_t c, T v) {
    CBM_CHECK(r >= 0 && r < rows && c >= 0 && c < cols,
              "COO entry out of bounds");
    row_idx.push_back(r);
    col_idx.push_back(c);
    values.push_back(v);
  }

  void reserve(std::size_t n) {
    row_idx.reserve(n);
    col_idx.reserve(n);
    values.reserve(n);
  }
};

}  // namespace cbm
