// cbm::serve — batched, cached, concurrent GNN inference serving.
//
// ServeContext is the public face of the serving subsystem: callers submit
// (adjacency, features) requests and get back futures for op(A)·X. Behind
// the API sits the full pipeline the rest of src/serve/ provides:
//
//   submit() ──SPSC ring──► batching worker ──OpenMP──► fused SpMM
//                               │
//                               ├─ AdjacencyCache: fingerprint lookup; only
//                               │  first-seen graphs pay compression, and
//                               │  cached graphs reuse memoised plans
//                               └─ pack_batch: co-pending requests of one
//                                  feature width merge into a block-diagonal
//                                  CBM for a single batched multiply
//
// Every stage emits cbm.serve.* spans/counters, so a cbmprof report shows
// exactly where a request's latency went and whether the cache is doing its
// job (warm traffic must show no cbm.compress spans).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "cbm/cbm_matrix.hpp"
#include "common/envknobs.hpp"
#include "common/types.hpp"
#include "dense/dense_matrix.hpp"
#include "serve/cache.hpp"
#include "serve/spsc_queue.hpp"

namespace cbm::serve {

/// One inference request: aggregate `features` over `adjacency`.
/// The adjacency must be a binary, sorted-row CSR matrix (the compression
/// contract); with ServeOptions::gcn_normalize it must also be square.
struct Request {
  std::uint64_t id = 0;
  CsrMatrix<real_t> adjacency;
  DenseMatrix<real_t> features;
};

/// The served result plus the per-request telemetry a latency SLO needs.
struct Response {
  std::uint64_t id = 0;
  DenseMatrix<real_t> output;   ///< op(A)·X, adjacency.rows() x features.cols()
  bool cache_hit = false;       ///< adjacency came from the cache
  int batch_size = 0;           ///< requests fused into this multiply
  double queue_seconds = 0.0;   ///< submit → worker pickup
  double total_seconds = 0.0;   ///< submit → response ready
};

/// Context-wide configuration, resolved once at construction.
struct ServeOptions {
  /// Adjacency-cache byte budget (compressed payload bytes).
  std::size_t cache_bytes = std::size_t{256} << 20;
  /// Directory for the cache's persistence tier; empty disables it.
  std::string cache_dir;
  /// Max requests fused into one block-diagonal multiply.
  int max_batch = 16;
  /// SPSC ring capacity (rounded up to a power of two). submit() applies
  /// backpressure — blocks briefly, then retries — when the ring is full.
  std::size_t queue_capacity = 256;
  /// When true, serve D^-1/2 (A+I) D^-1/2 · X (the GCN propagation rule,
  /// compressed as kSymScaled) instead of raw A·X; adjacencies must be
  /// square.
  bool gcn_normalize = false;
  /// Compression recipe for cache misses; alpha participates in GraphKey.
  CbmOptions compress{};
  /// Execution knobs. Disengaged: snapshot the CBM_* environment once at
  /// construction (the serving path never re-reads env per request).
  std::optional<RuntimeConfig> runtime;
};

/// Aggregate context statistics (monotonic since construction).
struct ServeStats {
  std::uint64_t requests = 0;  ///< responses delivered (incl. failures)
  std::uint64_t batches = 0;   ///< fused multiplies executed
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_disk_hits = 0;
};

/// The serving engine. Owns the ingest ring, the batching worker thread,
/// and the adjacency cache; thread-safe for concurrent submit().
///
/// Failure isolation: a request whose adjacency violates the compression
/// contract (or whose shapes disagree) fails its own future with CbmError;
/// the batch it rode in on is unaffected.
class ServeContext {
 public:
  explicit ServeContext(ServeOptions options = {});
  /// Stops the worker after draining every submitted request.
  ~ServeContext();

  ServeContext(const ServeContext&) = delete;
  ServeContext& operator=(const ServeContext&) = delete;

  /// Enqueues a request; the future resolves when its batch completes.
  std::future<Response> submit(Request request);

  /// Synchronous convenience: submit + wait.
  Response infer(Request request);

  /// Blocks until every request submitted so far has been answered.
  void flush();

  [[nodiscard]] ServeStats stats() const;
  [[nodiscard]] const ServeOptions& options() const { return options_; }
  /// The execution config the context resolved at construction.
  [[nodiscard]] const RuntimeConfig& runtime() const { return runtime_; }

 private:
  struct Pending;

  void worker_loop();
  void process_batch(std::vector<Pending*>& batch);
  void process_group(std::vector<Pending*>& group);

  ServeOptions options_;
  RuntimeConfig runtime_;
  AdjacencyCache<real_t> cache_;
  SpscRing<Pending*> ring_;

  std::mutex submit_mutex_;  ///< serialises producers onto the SPSC ring
  std::counting_semaphore<> items_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::thread worker_;
};

}  // namespace cbm::serve
