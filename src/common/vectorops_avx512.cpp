// AVX-512F backend with masked tails (no remainder loops: sub-vector tails
// run as one masked operation). Compiled with -mavx512f regardless of the
// build's baseline -march; symbols are only called after the dispatcher has
// verified CPU support.
#include <immintrin.h>

#include "common/vectorops_backends.hpp"
#include "common/vectorops_simd_impl.hpp"

namespace cbm::simd::backend {

namespace {

struct TraitsF32 {
  using V = __m512;
  using M = __mmask16;
  static constexpr std::size_t kLanes = 16;
  static constexpr bool kHasMasks = true;
  static V load(const float* p) { return _mm512_loadu_ps(p); }
  static void store(float* p, V v) { _mm512_storeu_ps(p, v); }
  static V maskz_load(M m, const float* p) {
    return _mm512_maskz_loadu_ps(m, p);
  }
  static void mask_store(float* p, M m, V v) {
    _mm512_mask_storeu_ps(p, m, v);
  }
  static M tail_mask(std::size_t rem) {
    return static_cast<M>((1u << rem) - 1u);
  }
  static V set1(float a) { return _mm512_set1_ps(a); }
  static V zero() { return _mm512_setzero_ps(); }
  static V add(V a, V b) { return _mm512_add_ps(a, b); }
  static V mul(V a, V b) { return _mm512_mul_ps(a, b); }
  static V fmadd(V a, V b, V c) { return _mm512_fmadd_ps(a, b, c); }
  // Spill-and-sum instead of _mm512_reduce_add_ps: gcc 12's expansion of the
  // reduce intrinsic trips -Wuninitialized (PR105593), and the reduction runs
  // once per dot() call so it is nowhere near hot.
  static float reduce_add(V v) {
    alignas(64) float tmp[kLanes];
    _mm512_store_ps(tmp, v);
    float s = 0.0f;
    for (std::size_t i = 0; i < kLanes; ++i) s += tmp[i];
    return s;
  }
  static void prefetch(const void* p) {
    _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
  }
};

struct TraitsF64 {
  using V = __m512d;
  using M = __mmask8;
  static constexpr std::size_t kLanes = 8;
  static constexpr bool kHasMasks = true;
  static V load(const double* p) { return _mm512_loadu_pd(p); }
  static void store(double* p, V v) { _mm512_storeu_pd(p, v); }
  static V maskz_load(M m, const double* p) {
    return _mm512_maskz_loadu_pd(m, p);
  }
  static void mask_store(double* p, M m, V v) {
    _mm512_mask_storeu_pd(p, m, v);
  }
  static M tail_mask(std::size_t rem) {
    return static_cast<M>((1u << rem) - 1u);
  }
  static V set1(double a) { return _mm512_set1_pd(a); }
  static V zero() { return _mm512_setzero_pd(); }
  static V add(V a, V b) { return _mm512_add_pd(a, b); }
  static V mul(V a, V b) { return _mm512_mul_pd(a, b); }
  static V fmadd(V a, V b, V c) { return _mm512_fmadd_pd(a, b, c); }
  static double reduce_add(V v) {
    alignas(64) double tmp[kLanes];
    _mm512_store_pd(tmp, v);
    double s = 0.0;
    for (std::size_t i = 0; i < kLanes; ++i) s += tmp[i];
    return s;
  }
  static void prefetch(const void* p) {
    _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
  }
};

const KernelTable<float> kF32 = make_table<float, TraitsF32, KernelTable>();
const KernelTable<double> kF64 = make_table<double, TraitsF64, KernelTable>();

}  // namespace

const KernelTable<float>& avx512_f32() { return kF32; }
const KernelTable<double>& avx512_f64() { return kF64; }

}  // namespace cbm::simd::backend
