// Table II — compression analysis of the CBM format: build time (parallel),
// S_CSR, S_CBM and the compression ratio at α = 0 and α = 32, with the
// paper's measured ratio for reference.
#include "bench_common.hpp"

int main() {
  using namespace cbm;
  using namespace cbm::bench;
  const auto config = BenchConfig::from_env();
  print_bench_header(config, "Table II — CBM compression analysis");
  set_threads(config.threads);
  BenchReport report("table2_compression", config);

  TablePrinter table({"Graph", "Alpha", "Time [s]", "S_CSR [MiB]",
                      "S_CBM [MiB]", "Ratio", "paper Ratio(a=0)"});
  for (const auto& spec : dataset_registry()) {
    const Graph g = load_dataset(spec, config);
    for (const int alpha : {0, 32}) {
      // Build-time statistics over the configured repetition count.
      RunStats build;
      CbmStats stats;
      for (int rep = 0; rep < std::max(1, config.reps - 1); ++rep) {
        CbmMatrix<real_t>::compress(g.adjacency(), {.alpha = alpha}, &stats);
        build.add(stats.build_seconds);
      }
      const double ratio =
          static_cast<double>(g.adjacency().bytes()) / stats.bytes;
      const std::vector<std::pair<std::string, std::string>> labels = {
          {"graph", spec.name}, {"alpha", std::to_string(alpha)}};
      report.add("build_seconds", build, labels);
      report.add_scalar("compression_ratio", ratio, labels);
      report.add_scalar("distance_graph_seconds",
                        stats.distance_graph_seconds, labels);
      report.add_scalar("tree_solve_seconds", stats.tree_solve_seconds,
                        labels);
      report.add_scalar("delta_seconds", stats.delta_seconds, labels);
      table.add_row({spec.name, "a=" + std::to_string(alpha),
                     fmt_stats(build),
                     fmt_mib(g.adjacency().bytes()), fmt_mib(stats.bytes),
                     fmt_double(ratio, 2),
                     alpha == 0 ? fmt_double(spec.paper_ratio_alpha0, 2)
                                : std::string("-")});
    }
  }
  table.print();
  return 0;
}
