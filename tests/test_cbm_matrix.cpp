// End-to-end correctness of the CBM format: compress + multiply must equal
// the CSR baseline for A·X, AD·X and DAD·X under every schedule and α.
#include <gtest/gtest.h>

#include "cbm/cbm_matrix.hpp"
#include "common/parallel.hpp"
#include "dense/ops.hpp"
#include "sparse/scale.hpp"
#include "sparse/spmm.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

struct MultiplyCase {
  index_t n;
  int alpha;
  CbmKind kind;
  UpdateSchedule schedule;
  TreeAlgorithm algorithm;
};

class CbmMultiply : public ::testing::TestWithParam<MultiplyCase> {};

TEST_P(CbmMultiply, MatchesCsrBaseline) {
  const auto p = GetParam();
  // Per-test seeds (hashed from the parameterised test name, CBM_TEST_SEED
  // override): each case draws independent inputs instead of sharing one
  // literal across the whole suite.
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = test::clustered_binary(p.n, 5, 9, 2, seed);
  const auto diag = test::random_diagonal<float>(p.n, test::auto_seed(1));

  // Baseline operand in CSR (scaled explicitly when needed).
  CsrMatrix<float> baseline = a;
  std::span<const float> d(diag);
  if (p.kind == CbmKind::kColumnScaled) {
    baseline = scale_columns(a, d);
  } else if (p.kind == CbmKind::kSymScaled) {
    baseline = scale_both(a, d, d);
  }

  CbmOptions options;
  options.alpha = p.alpha;
  options.algorithm = p.algorithm;
  const auto cbm =
      p.kind == CbmKind::kPlain
          ? CbmMatrix<float>::compress(a, options)
          : CbmMatrix<float>::compress_scaled(a, d, p.kind, options);

  const auto b = test::random_dense<float>(p.n, 13, test::auto_seed(2));
  DenseMatrix<float> c_cbm(p.n, 13), c_csr(p.n, 13);
  cbm.multiply(b, c_cbm, p.schedule);
  csr_spmm(baseline, b, c_csr);
  EXPECT_TRUE(allclose(c_cbm, c_csr, 1e-4, 1e-5))
      << "max diff " << max_abs_diff(c_cbm, c_csr);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSchedules, CbmMultiply,
    ::testing::Values(
        MultiplyCase{40, 0, CbmKind::kPlain, UpdateSchedule::kSequential,
                     TreeAlgorithm::kMca},
        MultiplyCase{40, 0, CbmKind::kPlain, UpdateSchedule::kBranchDynamic,
                     TreeAlgorithm::kMca},
        MultiplyCase{40, 0, CbmKind::kPlain, UpdateSchedule::kBranchStatic,
                     TreeAlgorithm::kMca},
        MultiplyCase{40, 0, CbmKind::kPlain, UpdateSchedule::kSequential,
                     TreeAlgorithm::kMst},
        MultiplyCase{40, 0, CbmKind::kColumnScaled,
                     UpdateSchedule::kSequential, TreeAlgorithm::kMca},
        MultiplyCase{40, 0, CbmKind::kColumnScaled,
                     UpdateSchedule::kBranchDynamic, TreeAlgorithm::kMca},
        MultiplyCase{40, 0, CbmKind::kSymScaled, UpdateSchedule::kSequential,
                     TreeAlgorithm::kMca},
        MultiplyCase{40, 0, CbmKind::kSymScaled,
                     UpdateSchedule::kBranchDynamic, TreeAlgorithm::kMca},
        MultiplyCase{40, 0, CbmKind::kSymScaled,
                     UpdateSchedule::kBranchStatic, TreeAlgorithm::kMst}));

class CbmAlphaSweep : public ::testing::TestWithParam<int> {};

TEST_P(CbmAlphaSweep, AllKindsCorrectAtThisAlpha) {
  const int alpha = GetParam();
  const index_t n = 64;
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = test::clustered_binary(n, 6, 10, 3, seed);
  const auto diag = test::random_diagonal<float>(n, test::auto_seed(1));
  const auto b = test::random_dense<float>(n, 9, test::auto_seed(2));
  const std::span<const float> d(diag);

  for (const CbmKind kind :
       {CbmKind::kPlain, CbmKind::kColumnScaled, CbmKind::kSymScaled}) {
    CsrMatrix<float> baseline = a;
    if (kind == CbmKind::kColumnScaled) baseline = scale_columns(a, d);
    if (kind == CbmKind::kSymScaled) baseline = scale_both(a, d, d);

    const auto cbm =
        kind == CbmKind::kPlain
            ? CbmMatrix<float>::compress(a, {.alpha = alpha})
            : CbmMatrix<float>::compress_scaled(a, d, kind, {.alpha = alpha});
    DenseMatrix<float> c_cbm(n, 9), c_csr(n, 9);
    cbm.multiply(b, c_cbm);
    csr_spmm(baseline, b, c_csr);
    EXPECT_TRUE(allclose(c_cbm, c_csr, 1e-4, 1e-5))
        << "alpha=" << alpha << " kind=" << static_cast<int>(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, CbmAlphaSweep,
                         ::testing::Values(0, 1, 2, 4, 8, 16, 32));

TEST(CbmMatrix, WorksOnUnclusteredRandomMatrices) {
  // No row similarity at all: CBM degenerates towards CSR but must stay
  // correct.
  const auto a = test::random_binary(70, 0.07, 31);
  const auto cbm = CbmMatrix<float>::compress(a);
  const auto b = test::random_dense<float>(70, 6, 32);
  DenseMatrix<float> c_cbm(70, 6), c_csr(70, 6);
  cbm.multiply(b, c_cbm);
  csr_spmm(a, b, c_csr);
  EXPECT_TRUE(allclose(c_cbm, c_csr, 1e-4, 1e-5));
}

TEST(CbmMatrix, EmptyAndDiagonalMatrices) {
  // All-zero matrix.
  CooMatrix<float> zero;
  zero.rows = 5;
  zero.cols = 5;
  const auto z = CsrMatrix<float>::from_coo(zero);
  const auto cbm_z = CbmMatrix<float>::compress(z);
  const auto b = test::random_dense<float>(5, 3, 33);
  DenseMatrix<float> c(5, 3);
  c.fill(7.0f);
  cbm_z.multiply(b, c);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.data()[i], 0.0f);

  // Identity matrix: rows are pairwise distance-2 apart; compression keeps
  // correctness either way.
  const auto eye = CsrMatrix<float>::identity(5);
  const auto cbm_i = CbmMatrix<float>::compress(eye);
  DenseMatrix<float> ci(5, 3);
  cbm_i.multiply(b, ci);
  EXPECT_TRUE(allclose(ci, b, 1e-5, 1e-6));
}

TEST(CbmMatrix, SequentialAndParallelSchedulesAgreeBitwise) {
  const auto a = test::clustered_binary(90, 9, 11, 2, 35);
  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 4});
  const auto b = test::random_dense<float>(90, 8, 36);
  DenseMatrix<float> c_seq(90, 8), c_dyn(90, 8), c_sta(90, 8), c_col(90, 8);
  cbm.multiply(b, c_seq, UpdateSchedule::kSequential);
  cbm.multiply(b, c_dyn, UpdateSchedule::kBranchDynamic);
  cbm.multiply(b, c_sta, UpdateSchedule::kBranchStatic);
  cbm.multiply(b, c_col, UpdateSchedule::kColumnSplit);
  // Every schedule performs the same per-element operations in the same
  // order (per branch / per column slice), so results are bitwise identical.
  EXPECT_EQ(max_abs_diff(c_seq, c_dyn), 0.0);
  EXPECT_EQ(max_abs_diff(c_seq, c_sta), 0.0);
  EXPECT_EQ(max_abs_diff(c_seq, c_col), 0.0);
}

TEST(CbmMatrix, ColumnSplitHandlesAllKindsAndOddWidths) {
  // Column widths that don't divide evenly across threads, every kind.
  const index_t n = 60;
  const auto a = test::clustered_binary(n, 5, 9, 2, 46);
  const auto d = test::random_diagonal<float>(n, 47);
  for (const index_t p : {1, 3, 7}) {
    const auto b = test::random_dense<float>(n, p, 48 + p);
    for (const CbmKind kind :
         {CbmKind::kPlain, CbmKind::kColumnScaled, CbmKind::kSymScaled}) {
      const auto cbm =
          kind == CbmKind::kPlain
              ? CbmMatrix<float>::compress(a)
              : CbmMatrix<float>::compress_scaled(
                    a, std::span<const float>(d), kind);
      DenseMatrix<float> c_seq(n, p), c_col(n, p);
      cbm.multiply(b, c_seq, UpdateSchedule::kSequential);
      cbm.multiply(b, c_col, UpdateSchedule::kColumnSplit);
      EXPECT_EQ(max_abs_diff(c_seq, c_col), 0.0)
          << "p=" << p << " kind=" << static_cast<int>(kind);
    }
  }
}

TEST(CbmMatrix, MultiplyShapeValidation) {
  const auto a = test::clustered_binary(20, 2, 6, 1, 37);
  const auto cbm = CbmMatrix<float>::compress(a);
  DenseMatrix<float> b_bad(19, 4), c(20, 4);
  EXPECT_THROW(cbm.multiply(b_bad, c), CbmError);
  DenseMatrix<float> b(20, 4), c_bad(20, 5);
  EXPECT_THROW(cbm.multiply(b, c_bad), CbmError);
}

TEST(CbmMatrix, CompressValidation) {
  // Non-binary.
  CooMatrix<float> weighted;
  weighted.rows = 2;
  weighted.cols = 2;
  weighted.push(0, 0, 2.0f);
  EXPECT_THROW(
      CbmMatrix<float>::compress(CsrMatrix<float>::from_coo(weighted)),
      CbmError);
  // Diagonal length mismatch.
  const auto a = test::random_binary(4, 0.5, 38);
  const std::vector<float> short_diag = {1.0f, 2.0f};
  EXPECT_THROW(CbmMatrix<float>::compress_scaled(
                   a, std::span<const float>(short_diag),
                   CbmKind::kColumnScaled),
               CbmError);
  // Zero diagonal entry forbidden for DAD (division in Eq. 6).
  const std::vector<float> with_zero = {1.0f, 0.0f, 1.0f, 1.0f};
  EXPECT_THROW(CbmMatrix<float>::compress_scaled(
                   a, std::span<const float>(with_zero), CbmKind::kSymScaled),
               CbmError);
  // kPlain must not receive a diagonal.
  const std::vector<float> diag4 = {1.0f, 1.0f, 1.0f, 1.0f};
  EXPECT_THROW(
      CbmMatrix<float>::compress_scaled(a, std::span<const float>(diag4),
                                        CbmKind::kPlain),
      CbmError);
}

TEST(CbmMatrix, DoublePrecisionInstantiation) {
  CooMatrix<double> coo;
  coo.rows = 20;
  coo.cols = 20;
  const auto af = test::clustered_binary(20, 2, 6, 1, 39);
  for (index_t i = 0; i < 20; ++i) {
    for (const index_t j : af.row_indices(i)) coo.push(i, j, 1.0);
  }
  const auto a = CsrMatrix<double>::from_coo(coo);
  const auto cbm = CbmMatrix<double>::compress(a);
  const auto b = test::random_dense<double>(20, 5, 40);
  DenseMatrix<double> c_cbm(20, 5), c_csr(20, 5);
  cbm.multiply(b, c_cbm);
  csr_spmm(a, b, c_csr);
  EXPECT_TRUE(allclose(c_cbm, c_csr, 1e-10, 1e-12));
}

}  // namespace
}  // namespace cbm
