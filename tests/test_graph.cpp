// Tests for the Graph type and the synthetic dataset generators.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/metrics.hpp"

namespace cbm {
namespace {

/// Structural invariants every generator must satisfy: symmetric binary
/// adjacency, empty diagonal, sorted rows.
void expect_simple_undirected(const Graph& g) {
  const auto& adj = g.adjacency();
  EXPECT_TRUE(adj.is_binary());
  EXPECT_TRUE(adj.has_sorted_unique_rows());
  for (index_t v = 0; v < g.num_nodes(); ++v) {
    for (const index_t u : g.neighbors(v)) {
      EXPECT_NE(u, v) << "self loop at " << v;
      EXPECT_FLOAT_EQ(adj.at(u, v), 1.0f) << "asymmetry " << v << "→" << u;
    }
  }
}

TEST(Graph, FromEdgesDeduplicatesAndSymmetrises) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 0}, {0, 1}, {2, 3}, {3, 3}});
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 2);  // {0,1} and {2,3}; self loop dropped
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(3), 1);
  expect_simple_undirected(g);
}

TEST(Graph, FromEdgesRejectsOutOfRange) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 2}}), CbmError);
}

TEST(Graph, FromCooPatternSymmetrises) {
  CooMatrix<real_t> coo;
  coo.rows = 3;
  coo.cols = 3;
  coo.push(0, 1, 5.0f);  // weight ignored
  coo.push(2, 2, 1.0f);  // self loop dropped
  const Graph g = Graph::from_coo_pattern(coo);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 1);
  expect_simple_undirected(g);
}

TEST(Graph, AverageDegree) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0 * 3 / 4);
}

TEST(Generators, ErdosRenyiExactEdgeCount) {
  const Graph g = erdos_renyi(100, 250, 1);
  EXPECT_EQ(g.num_nodes(), 100);
  EXPECT_EQ(g.num_edges(), 250);
  expect_simple_undirected(g);
}

TEST(Generators, ErdosRenyiDeterministic) {
  const Graph a = erdos_renyi(50, 100, 7);
  const Graph b = erdos_renyi(50, 100, 7);
  EXPECT_EQ(a.adjacency(), b.adjacency());
}

TEST(Generators, ErdosRenyiRejectsTooManyEdges) {
  EXPECT_THROW(erdos_renyi(4, 7, 1), CbmError);
}

TEST(Generators, BarabasiAlbertDegreeFloor) {
  const Graph g = barabasi_albert(300, 3, 2);
  EXPECT_EQ(g.num_nodes(), 300);
  expect_simple_undirected(g);
  // Every non-seed node attaches with >= m edges (dedup can only merge with
  // seed clique edges, which only adds degree).
  for (index_t v = 4; v < 300; ++v) EXPECT_GE(g.degree(v), 3);
  // Preferential attachment produces a hub heavier than the mean.
  const auto stats = degree_stats(g);
  EXPECT_GT(stats.max, 3 * stats.mean);
}

TEST(Generators, WattsStrogatzRegularAtBetaZero) {
  const Graph g = watts_strogatz(60, 3, 0.0, 3);
  for (index_t v = 0; v < 60; ++v) EXPECT_EQ(g.degree(v), 6);
  expect_simple_undirected(g);
  // Ring lattice with k=3 has high clustering.
  EXPECT_GT(average_clustering(g), 0.5);
}

TEST(Generators, WattsStrogatzRewiringReducesClustering) {
  const Graph regular = watts_strogatz(200, 4, 0.0, 4);
  const Graph random = watts_strogatz(200, 4, 1.0, 4);
  EXPECT_LT(average_clustering(random), average_clustering(regular));
  expect_simple_undirected(random);
}

TEST(Generators, CliqueUnionIsClusteredAndDeterministic) {
  CliqueUnionParams p;
  p.num_nodes = 400;
  p.num_cliques = 500;
  p.clique_min = 3;
  p.clique_max = 8;
  p.reuse_prob = 0.7;
  const Graph g = clique_union(p, 5);
  expect_simple_undirected(g);
  EXPECT_GT(average_clustering(g), 0.4);  // cliques → high clustering
  const Graph g2 = clique_union(p, 5);
  EXPECT_EQ(g.adjacency(), g2.adjacency());
}

TEST(Generators, CliqueUnionValidation) {
  CliqueUnionParams p;
  p.num_nodes = 10;
  p.num_cliques = 1;
  p.clique_min = 5;
  p.clique_max = 3;  // invalid range
  EXPECT_THROW(clique_union(p, 1), CbmError);
}

TEST(Generators, SbmRespectsBlocks) {
  SbmParams p;
  p.num_nodes = 600;
  p.num_blocks = 6;
  p.expected_degree_in = 20.0;
  p.expected_degree_out = 2.0;
  const Graph g = stochastic_block_model(p, 6);
  expect_simple_undirected(g);
  // Count in-block vs cross-block adjacency: should be dominated by in-block.
  const index_t block = 100;
  offset_t in = 0, out = 0;
  for (index_t v = 0; v < g.num_nodes(); ++v) {
    for (const index_t u : g.neighbors(v)) {
      (u / block == v / block ? in : out) += 1;
    }
  }
  EXPECT_GT(in, 4 * out);
  EXPECT_NEAR(g.average_degree(), 22.0, 5.0);
}

TEST(Generators, NearDuplicateRowsSharesNeighborhoods) {
  const Graph g = near_duplicate_rows(200, 4, 12, 1, 8);
  expect_simple_undirected(g);
  // Rows in the same group overlap heavily: check two members of group 0.
  const auto r0 = g.neighbors(0);
  const auto r4 = g.neighbors(4);
  std::size_t i = 0, j = 0, common = 0;
  while (i < r0.size() && j < r4.size()) {
    if (r0[i] == r4[j]) {
      ++common;
      ++i;
      ++j;
    } else if (r0[i] < r4[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  EXPECT_GE(common, 8u);
}

}  // namespace
}  // namespace cbm
