#include "tree/arborescence.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace cbm {

namespace {

constexpr std::size_t kNoEdge = std::numeric_limits<std::size_t>::max();
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();

/// Bookkeeping of one contraction round, kept for edge recovery.
struct Round {
  index_t num_nodes = 0;
  index_t root = 0;
  std::vector<std::size_t> chosen;   ///< original edge id per round node
  std::vector<bool> in_cycle;        ///< round node was contracted this round
  std::vector<index_t> node_map;     ///< round node -> next round node
};

/// Working edge: endpoints live in the current round's node space, the
/// weight carries accumulated cycle adjustments, `orig` is the index into the
/// caller's edge list.
struct WorkEdge {
  index_t src;
  index_t dst;
  std::int64_t weight;
  std::size_t orig;
};

}  // namespace

ArborescenceResult chu_liu_edmonds(index_t num_nodes,
                                   const std::vector<WeightedEdge>& edges,
                                   index_t root) {
  CBM_CHECK(num_nodes >= 1, "arborescence needs at least one node");
  CBM_CHECK(root >= 0 && root < num_nodes, "root out of range");

  std::vector<WorkEdge> work;
  work.reserve(edges.size());
  for (std::size_t id = 0; id < edges.size(); ++id) {
    const auto& e = edges[id];
    CBM_CHECK(e.src >= 0 && e.src < num_nodes && e.dst >= 0 &&
                  e.dst < num_nodes,
              "edge endpoint out of range");
    if (e.src == e.dst) continue;
    work.push_back({e.src, e.dst, e.weight, id});
  }

  std::vector<Round> rounds;
  index_t n = num_nodes;
  index_t cur_root = root;

  // Contraction phase: pick min in-edges, contract all cycles, repeat.
  std::vector<std::size_t> final_chosen;  // acyclic round: original ids
  while (true) {
    // Min incoming work-edge per node.
    std::vector<std::size_t> best(static_cast<std::size_t>(n), kNoEdge);
    std::vector<std::int64_t> bestw(static_cast<std::size_t>(n), kInf);
    for (std::size_t k = 0; k < work.size(); ++k) {
      const auto& e = work[k];
      if (e.dst == cur_root) continue;
      if (e.weight < bestw[e.dst]) {
        bestw[e.dst] = e.weight;
        best[e.dst] = k;
      }
    }
    for (index_t v = 0; v < n; ++v) {
      CBM_CHECK(v == cur_root || best[v] != kNoEdge,
                "graph has no arborescence rooted at the requested node");
    }

    // Cycle detection on the functional graph v -> src(best[v]).
    // color: 0 unvisited, 1 on current path, 2 done.
    std::vector<std::uint8_t> color(static_cast<std::size_t>(n), 0);
    std::vector<index_t> cycle_id(static_cast<std::size_t>(n), -1);
    index_t num_cycles = 0;
    std::vector<index_t> path;
    for (index_t start = 0; start < n; ++start) {
      if (color[start] != 0) continue;
      path.clear();
      index_t v = start;
      while (v != cur_root && color[v] == 0) {
        color[v] = 1;
        path.push_back(v);
        v = work[best[v]].src;
      }
      if (v != cur_root && color[v] == 1) {
        // Found a new cycle: everything on the path from v onward is in it.
        const auto it = std::find(path.begin(), path.end(), v);
        for (auto p = it; p != path.end(); ++p) cycle_id[*p] = num_cycles;
        ++num_cycles;
      }
      for (const index_t u : path) color[u] = 2;
    }

    if (num_cycles == 0) {
      final_chosen.assign(static_cast<std::size_t>(n), kNoEdge);
      for (index_t v = 0; v < n; ++v) {
        if (v != cur_root) final_chosen[v] = work[best[v]].orig;
      }
      break;
    }

    // Contract: cycles get ids [0, num_cycles), the rest follow.
    Round round;
    round.num_nodes = n;
    round.root = cur_root;
    round.chosen.assign(static_cast<std::size_t>(n), kNoEdge);
    round.in_cycle.assign(static_cast<std::size_t>(n), false);
    round.node_map.assign(static_cast<std::size_t>(n), -1);
    for (index_t v = 0; v < n; ++v) {
      if (v != cur_root) round.chosen[v] = work[best[v]].orig;
      round.in_cycle[v] = cycle_id[v] >= 0;
    }
    index_t next_id = num_cycles;
    for (index_t v = 0; v < n; ++v) {
      round.node_map[v] = cycle_id[v] >= 0 ? cycle_id[v] : next_id++;
    }
    const index_t new_root = round.node_map[cur_root];
    const index_t new_n = next_id;

    // Rebuild the edge list in the contracted node space. Edges entering a
    // cycle are reduced by the weight of the cycle edge they would displace.
    std::vector<WorkEdge> next_work;
    next_work.reserve(work.size());
    for (const auto& e : work) {
      const index_t ns = round.node_map[e.src];
      const index_t nd = round.node_map[e.dst];
      if (ns == nd) continue;
      std::int64_t w = e.weight;
      if (cycle_id[e.dst] >= 0) w -= bestw[e.dst];
      next_work.push_back({ns, nd, w, e.orig});
    }
    rounds.push_back(std::move(round));
    work = std::move(next_work);
    n = new_n;
    cur_root = new_root;
    CBM_CHECK(rounds.size() <= static_cast<std::size_t>(num_nodes),
              "contraction failed to converge");
  }

  // Recovery phase: expand rounds in reverse. `selected` holds original edge
  // ids forming the arborescence of the current (expanded-so-far) round.
  std::vector<std::size_t> selected = std::move(final_chosen);
  selected.erase(std::remove(selected.begin(), selected.end(), kNoEdge),
                 selected.end());
  for (std::size_t r = rounds.size(); r-- > 0;) {
    const Round& round = rounds[r];
    std::vector<bool> covered(static_cast<std::size_t>(round.num_nodes),
                              false);
    // Edges selected at the contracted level keep their original identity;
    // mark the round-level node each one really enters.
    for (const std::size_t orig : selected) {
      index_t head = edges[orig].dst;
      for (std::size_t q = 0; q < r; ++q) head = rounds[q].node_map[head];
      CBM_DCHECK(!covered[head], "two selected edges entering one node");
      covered[head] = true;
    }
    // Cycle members not displaced by an entering edge keep their round edge.
    for (index_t v = 0; v < round.num_nodes; ++v) {
      if (v == round.root || covered[v] || !round.in_cycle[v]) continue;
      selected.push_back(round.chosen[v]);
    }
  }

  CBM_CHECK(selected.size() == static_cast<std::size_t>(num_nodes) - 1,
            "arborescence recovery produced wrong edge count");

  ArborescenceResult result;
  result.parent.assign(static_cast<std::size_t>(num_nodes), -1);
  result.chosen_edge.assign(static_cast<std::size_t>(num_nodes), kNoEdge);
  for (const std::size_t id : selected) {
    const auto& e = edges[id];
    CBM_CHECK(result.chosen_edge[e.dst] == kNoEdge,
              "arborescence recovery selected two in-edges for one node");
    result.parent[e.dst] = e.src;
    result.chosen_edge[e.dst] = id;
    result.total_weight += e.weight;
  }
  CBM_CHECK(result.chosen_edge[root] == kNoEdge,
            "arborescence recovery gave the root an in-edge");
  return result;
}

std::int64_t arborescence_cost_reference(index_t num_nodes,
                                         const std::vector<WeightedEdge>& edges,
                                         index_t root) {
  // Textbook recursive Chu–Liu/Edmonds (contract one round, recurse);
  // cost-only, O(V·E). Kept simple as a test oracle.
  std::vector<WeightedEdge> cur;
  for (const auto& e : edges) {
    if (e.src != e.dst) cur.push_back(e);
  }
  index_t n = num_nodes;
  index_t r = root;
  // Classic accounting: every round adds each node's min in-edge weight and
  // discounts *all* edges by the min in-edge of their head, so the sums
  // telescope to the true cost.
  std::int64_t total = 0;
  while (true) {
    std::vector<std::int64_t> bestw(static_cast<std::size_t>(n), kInf);
    std::vector<index_t> bestsrc(static_cast<std::size_t>(n), -1);
    for (const auto& e : cur) {
      if (e.dst != r && e.weight < bestw[e.dst]) {
        bestw[e.dst] = e.weight;
        bestsrc[e.dst] = e.src;
      }
    }
    for (index_t v = 0; v < n; ++v) {
      if (v == r) continue;
      CBM_CHECK(bestsrc[v] >= 0, "no arborescence (reference)");
      total += bestw[v];
    }
    // Find one cycle.
    std::vector<index_t> vis(static_cast<std::size_t>(n), -1);
    std::vector<index_t> id(static_cast<std::size_t>(n), -1);
    index_t cycles = 0;
    for (index_t v = 0; v < n; ++v) {
      if (v == r) continue;
      index_t u = v;
      while (u != r && vis[u] == -1) {
        vis[u] = v;
        u = bestsrc[u];
      }
      if (u != r && vis[u] == v && id[u] == -1) {
        // trace the cycle
        index_t w = u;
        do {
          id[w] = cycles;
          w = bestsrc[w];
        } while (w != u);
        ++cycles;
      }
    }
    if (cycles == 0) return total;
    index_t next = cycles;
    for (index_t v = 0; v < n; ++v) {
      if (id[v] == -1) id[v] = next++;
    }
    std::vector<WeightedEdge> nxt;
    for (const auto& e : cur) {
      const index_t ns = id[e.src];
      const index_t nd = id[e.dst];
      if (ns == nd) continue;
      // Discount by the head's chosen weight (root has none).
      const std::int64_t w =
          e.dst == r ? e.weight : e.weight - bestw[e.dst];
      nxt.push_back({ns, nd, w});
    }
    cur = std::move(nxt);
    r = id[r];
    n = next;
  }
}

}  // namespace cbm
