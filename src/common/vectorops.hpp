// Dense vector/row microkernels with runtime SIMD dispatch.
//
// The axpy family used by the CBM update stage (the paper offloads these to
// MKL's axpy) and the SpMM row kernel shared by the delta multiply, the
// fused column-tiled engine, and the CSR baselines all route through one
// per-scalar-type kernel table. Three implementations exist — portable
// scalar (compiler-autovectorised), explicit AVX2+FMA, and explicit
// AVX-512 with masked tails — selected once at runtime from CPUID, the
// CBM_SIMD environment knob (auto | avx512 | avx2 | scalar), or
// set_simd_level() (tests, tuner). Types other than float/double always use
// the portable path.
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <string_view>
#include <type_traits>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cbm {

/// Instruction-set tier of the dispatched kernels. Order is capability
/// order: a level is usable iff the CPU supports it and the build compiled
/// its kernels.
enum class SimdLevel : int {
  kScalar = 0,  ///< portable loops (autovectorised at build flags)
  kAvx2 = 1,    ///< explicit AVX2 + FMA intrinsics
  kAvx512 = 2,  ///< explicit AVX-512F intrinsics with masked tails
};

/// Stable lower-case name ("scalar" | "avx2" | "avx512").
const char* simd_level_name(SimdLevel level);

/// Highest level both compiled in and supported by this CPU.
SimdLevel simd_max_supported();

/// True iff `level` can be activated on this host/build.
bool simd_level_supported(SimdLevel level);

/// "auto" → simd_max_supported(); "avx512" / "avx2" / "scalar" → that level,
/// throwing CbmError when the host/build cannot run it; anything else throws
/// (a mistyped knob must not silently benchmark the wrong kernels).
SimdLevel parse_simd_level(std::string_view text);

/// Currently active level. First use reads CBM_SIMD (unset/empty = auto).
SimdLevel simd_level();

/// Activates `level` process-wide (throws if unsupported). Used by tests to
/// sweep levels and by the autotuner to apply a tuned kernel choice.
void set_simd_level(SimdLevel level);

/// RAII level override (tests / per-plan kernel selection).
class SimdScope {
 public:
  explicit SimdScope(SimdLevel level) : saved_(simd_level()) {
    set_simd_level(level);
  }
  ~SimdScope() { set_simd_level(saved_); }
  SimdScope(const SimdScope&) = delete;
  SimdScope& operator=(const SimdScope&) = delete;

 private:
  SimdLevel saved_;
};

/// Read-prefetch hint (software prefetch of parent rows / B rows).
inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

namespace simd {

/// Per-scalar-type kernel table; one instance per (type, SimdLevel).
template <typename T>
struct KernelTable {
  void (*add)(const T* x, T* y, std::size_t n);                   // y += x
  void (*axpy)(T a, const T* x, T* y, std::size_t n);             // y += a·x
  void (*scale)(T a, T* y, std::size_t n);                        // y *= a
  void (*fused_scale_add)(T a, T b, const T* x, T* y,
                          std::size_t n);                         // y = a(bx+y)
  T (*dot)(const T* x, const T* y, std::size_t n);
  /// Register-blocked SpMM row kernel:
  ///   crow[0:width) = (seed_row ? seed_scale·seed_row : 0)
  ///                 + Σ_{k∈[k0,k1)} (av_scale·values[k]) · B[indices[k]][0:width)
  /// where B rows start at b + indices[k]·ldb. Column panels stay in
  /// registers across the whole nonzero sweep, so each element of crow is
  /// written exactly once; the per-element accumulation order over k matches
  /// the scalar formulation (vectorisation is across columns only).
  void (*spmm_row)(const T* b, std::size_t ldb, const index_t* indices,
                   const T* values, offset_t k0, offset_t k1, T* crow,
                   index_t width, const T* seed_row, T seed_scale, T av_scale);
  /// Batched spmm_row over a precomputed row schedule, with the whole loop
  /// inside the ISA translation unit — one indirect call per tile instead of
  /// one per row (the call overhead dominates on graphs whose delta rows
  /// hold only a handful of nonzeros). For each item i, with x = order[i]
  /// and par = parents[i]:
  ///   ctile[x·ldc : +width) = (par >= 0 ? seed_scales[i]·ctile[par·ldc : +width) : 0)
  ///                         + Σ_{k∈[indptr[x],indptr[x+1])} (av_scales[i]·values[k]) · B[indices[k]][0:width)
  /// The caller orders items so every parent row is final before a child
  /// reads it; the next item's parent row is software-prefetched while the
  /// current product runs.
  void (*fused_rows)(const T* b, std::size_t ldb, const index_t* indices,
                     const T* values, const offset_t* indptr,
                     const index_t* order, const index_t* parents,
                     const T* seed_scales, const T* av_scales,
                     std::size_t nitems, T* ctile, std::size_t ldc,
                     index_t width);
};

namespace detail {

// Active tables, swapped atomically by set_simd_level(); initialised from
// CBM_SIMD on first use.
extern std::atomic<const KernelTable<float>*> g_table_f32;
extern std::atomic<const KernelTable<double>*> g_table_f64;
extern std::atomic<bool> g_initialized;
void init_from_env();  // idempotent

/// Portable reference bodies; also the kScalar dispatch targets and the
/// implementation for types without a table.
template <typename T>
inline void generic_add(const T* __restrict__ x, T* __restrict__ y,
                        std::size_t n) {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

template <typename T>
inline void generic_axpy(T a, const T* __restrict__ x, T* __restrict__ y,
                         std::size_t n) {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

template <typename T>
inline void generic_scale(T a, T* __restrict__ y, std::size_t n) {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) y[i] *= a;
}

template <typename T>
inline void generic_fused_scale_add(T a, T b, const T* __restrict__ x,
                                    T* __restrict__ y, std::size_t n) {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) y[i] = a * (b * x[i] + y[i]);
}

template <typename T>
inline T generic_dot(const T* __restrict__ x, const T* __restrict__ y,
                     std::size_t n) {
  T acc{0};
#pragma omp simd reduction(+ : acc)
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

template <typename T>
inline void generic_spmm_row(const T* b, std::size_t ldb,
                             const index_t* indices, const T* values,
                             offset_t k0, offset_t k1, T* crow, index_t width,
                             const T* seed_row, T seed_scale, T av_scale) {
  T* __restrict__ out = crow;
  if (seed_row != nullptr) {
    const T* __restrict__ sp = seed_row;
#pragma omp simd
    for (index_t j = 0; j < width; ++j) out[j] = seed_scale * sp[j];
  } else {
    for (index_t j = 0; j < width; ++j) out[j] = T{0};
  }
  for (offset_t k = k0; k < k1; ++k) {
    const T av = av_scale * values[k];
    const T* __restrict__ brow = b + static_cast<std::size_t>(indices[k]) * ldb;
#pragma omp simd
    for (index_t j = 0; j < width; ++j) out[j] += av * brow[j];
  }
}

template <typename T>
inline void generic_fused_rows(const T* b, std::size_t ldb,
                               const index_t* indices, const T* values,
                               const offset_t* indptr, const index_t* order,
                               const index_t* parents, const T* seed_scales,
                               const T* av_scales, std::size_t nitems,
                               T* ctile, std::size_t ldc, index_t width) {
  for (std::size_t i = 0; i < nitems; ++i) {
    const index_t x = order[i];
    // Pull the next item's parent row toward the core while this product
    // runs — parent rows are scattered across C, the one access pattern the
    // hardware prefetcher cannot predict.
    if (i + 1 < nitems && parents[i + 1] >= 0) {
      prefetch_read(ctile + static_cast<std::size_t>(parents[i + 1]) * ldc);
    }
    const index_t par = parents[i];
    const T* seed =
        par >= 0 ? ctile + static_cast<std::size_t>(par) * ldc : nullptr;
    generic_spmm_row(b, ldb, indices, values, indptr[x], indptr[x + 1],
                     ctile + static_cast<std::size_t>(x) * ldc, width, seed,
                     seed_scales[i], av_scales[i]);
  }
}

}  // namespace detail

/// Active kernel table for T (float/double only; other types have none and
/// must use the generic bodies — see the vec_* wrappers below).
template <typename T>
inline const KernelTable<T>& kernels() {
  static_assert(std::is_same_v<T, float> || std::is_same_v<T, double>,
                "kernel tables exist for float and double only");
  if (!detail::g_initialized.load(std::memory_order_acquire)) {
    detail::init_from_env();
  }
  if constexpr (std::is_same_v<T, float>) {
    return *detail::g_table_f32.load(std::memory_order_relaxed);
  } else {
    return *detail::g_table_f64.load(std::memory_order_relaxed);
  }
}

template <typename T>
inline constexpr bool kDispatched =
    std::is_same_v<T, float> || std::is_same_v<T, double>;

}  // namespace simd

/// y += x (element-wise). Sizes must match.
template <typename T>
inline void vec_add(std::span<const T> x, std::span<T> y) {
  CBM_DCHECK(x.size() == y.size(), "vec_add size mismatch");
  if constexpr (simd::kDispatched<T>) {
    simd::kernels<T>().add(x.data(), y.data(), y.size());
  } else {
    simd::detail::generic_add(x.data(), y.data(), y.size());
  }
}

/// y += a * x.
template <typename T>
inline void vec_axpy(T a, std::span<const T> x, std::span<T> y) {
  CBM_DCHECK(x.size() == y.size(), "vec_axpy size mismatch");
  if constexpr (simd::kDispatched<T>) {
    simd::kernels<T>().axpy(a, x.data(), y.data(), y.size());
  } else {
    simd::detail::generic_axpy(a, x.data(), y.data(), y.size());
  }
}

/// y = a * (b * x + y): the fused scale-and-update of the DADX update stage
/// (Eq. 6 of the paper), computed in one pass over y.
template <typename T>
inline void vec_fused_scale_add(T a, T b, std::span<const T> x,
                                std::span<T> y) {
  CBM_DCHECK(x.size() == y.size(), "vec_fused_scale_add size mismatch");
  if constexpr (simd::kDispatched<T>) {
    simd::kernels<T>().fused_scale_add(a, b, x.data(), y.data(), y.size());
  } else {
    simd::detail::generic_fused_scale_add(a, b, x.data(), y.data(), y.size());
  }
}

/// y *= a.
template <typename T>
inline void vec_scale(T a, std::span<T> y) {
  if constexpr (simd::kDispatched<T>) {
    simd::kernels<T>().scale(a, y.data(), y.size());
  } else {
    simd::detail::generic_scale(a, y.data(), y.size());
  }
}

/// y = x. (Straight copy — the compiler's memmove recognition beats any
/// hand dispatch, so this stays generic at every level.)
template <typename T>
inline void vec_copy(std::span<const T> x, std::span<T> y) {
  CBM_DCHECK(x.size() == y.size(), "vec_copy size mismatch");
  const T* __restrict__ xp = x.data();
  T* __restrict__ yp = y.data();
  const std::size_t n = y.size();
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) yp[i] = xp[i];
}

/// y = 0.
template <typename T>
inline void vec_zero(std::span<T> y) {
  T* __restrict__ yp = y.data();
  const std::size_t n = y.size();
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) yp[i] = T{0};
}

/// Dot product.
template <typename T>
inline T vec_dot(std::span<const T> x, std::span<const T> y) {
  CBM_DCHECK(x.size() == y.size(), "vec_dot size mismatch");
  if constexpr (simd::kDispatched<T>) {
    return simd::kernels<T>().dot(x.data(), y.data(), y.size());
  } else {
    return simd::detail::generic_dot(x.data(), y.data(), y.size());
  }
}

}  // namespace cbm
