// Delta-matrix construction (paper §V-A).
//
// Given the compression tree, row x of the delta matrix A' holds
//   +1 at the columns of Δ⁺(x, r_x)  (present in A_x, absent in A_{r_x})
//   −1 at the columns of Δ⁻(x, r_x)  (absent in A_x, present in A_{r_x})
// For rows hanging off the virtual root, A'_x = A_x (all +1).
// A' is exactly as computable-with as A: SpMM on A' + the tree update stage
// reproduces A·B.
#pragma once

#include <span>

#include "sparse/csr.hpp"
#include "tree/compression_tree.hpp"

namespace cbm {

/// Per-row delta counts (|Δ⁺| + |Δ⁻|), used for Property-1 accounting.
struct DeltaStats {
  std::int64_t total_deltas = 0;   ///< nnz(A')
  std::int64_t total_nnz = 0;      ///< nnz(A)
  std::int64_t saved = 0;          ///< nnz(A) − nnz(A')
};

/// Builds the delta matrix A' ∈ {−1,0,+1} for `pattern` under `tree`.
/// Optionally scales column j of the result by d[j] (the (AD)' matrix of the
/// paper; pass empty span for the unscaled A'). Parallelised over rows.
template <typename T>
CsrMatrix<T> build_delta_matrix(const CsrMatrix<T>& pattern,
                                const CompressionTree& tree,
                                std::span<const T> column_scale,
                                DeltaStats* stats = nullptr);

extern template CsrMatrix<float> build_delta_matrix<float>(
    const CsrMatrix<float>&, const CompressionTree&, std::span<const float>,
    DeltaStats*);
extern template CsrMatrix<double> build_delta_matrix<double>(
    const CsrMatrix<double>&, const CompressionTree&, std::span<const double>,
    DeltaStats*);

}  // namespace cbm
