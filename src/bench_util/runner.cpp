// Intentionally header-only (time_repetitions is a template); this TU keeps
// the library target non-empty and pins the header's compilation.
#include "bench_util/runner.hpp"

namespace cbm {}
