// Table III — performance of AX, ADX, and DADX with CSR vs CBM at each
// graph's best α, for 1 core and all cores.
//
// Beyond the paper's two columns, every configuration is also timed under
// the fused column-tiled engine (MultiplySchedule::fused); the closing
// geomean line summarises fused vs two-stage across all rows. CBM_TILE_COLS
// overrides the auto tile width for sweeps.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace cbm;
  using namespace cbm::bench;
  const auto config = BenchConfig::from_env();
  print_bench_header(config, "Table III — AX / ADX / DADX performance");
  BenchReport report("table3_matmul", config);

  TablePrinter table({"Graph", "Alpha(Cores)", "Op", "T_CSR [s]", "T_CBM [s]",
                      "T_Fused [s]", "T_Tuned [s]", "Plan", "Speedup",
                      "F-Speedup"});
  GeomeanAccumulator fused_vs_two_stage;
  GeomeanAccumulator tuned_vs_two_stage;
  for (const auto& spec : dataset_registry()) {
    const Graph g = load_dataset(spec, config);
    const auto b = make_dense_operand<real_t>(g.num_nodes(), config.cols);

    struct Mode {
      int alpha;
      int threads;
      UpdateSchedule schedule;
    };
    const Mode modes[] = {
        {spec.paper_best_alpha_seq, 1, UpdateSchedule::kSequential},
        {spec.paper_best_alpha_par, config.threads,
         UpdateSchedule::kBranchDynamic},
    };
    for (const auto& mode : modes) {
      for (const Workload w :
           {Workload::kAX, Workload::kADX, Workload::kDADX}) {
        const auto pair = make_operands<real_t>(g, w, mode.alpha);
        ThreadScope scope(mode.threads);
        const double nnz = static_cast<double>(pair.csr.nnz());
        const auto r = time_pair(pair, b, config, mode.schedule);
        const auto fused_timing =
            time_cbm(pair.cbm, b, config, MultiplySchedule::fused(), nnz);
        const RunStats& fused = fused_timing.stats;
        // Min-of-reps ratio: timing jitter is strictly additive, so the
        // minimum is the noise-robust estimator for a same-machine engine
        // comparison (the millisecond-scale rows are outlier-dominated).
        const double f_speedup =
            fused.min() > 0.0 ? r.cbm.min() / fused.min() : 0.0;
        fused_vs_two_stage.add(f_speedup);
        // Plan-resolved timing: the autotuner's pick when CBM_TUNE=on (first
        // contact probes, later runs hit the cache), the analytic fused plan
        // otherwise. Provenance rides along in the labels.
        const auto tuned = time_cbm_auto(pair.cbm, b, config, nnz);
        if (tuned.stats.min() > 0.0) {
          tuned_vs_two_stage.add(r.cbm.min() / tuned.stats.min());
        }
        const std::vector<std::pair<std::string, std::string>> labels = {
            {"graph", spec.name},
            {"op", workload_name(w)},
            {"alpha", std::to_string(mode.alpha)},
            {"threads", std::to_string(mode.threads)}};
        report.add("csr_seconds", r.csr, labels, r.csr_hw);
        report.add("cbm_seconds", r.cbm, labels, r.cbm_hw);
        report.add("cbm_fused_seconds", fused, labels, fused_timing.hw);
        auto tuned_labels = labels;
        for (auto& kv : tuned.plan_labels()) {
          tuned_labels.push_back(std::move(kv));
        }
        report.add("cbm_tuned_seconds", tuned.stats, tuned_labels, tuned.hw);
        const std::string plan_cell =
            std::string(tuned.decision.tuned ? "tuned" : "analytic") + ":" +
            multiply_path_name(tuned.decision.plan.schedule.path) + "/t" +
            std::to_string(tuned.decision.plan.schedule.tile_cols) + "/" +
            simd_level_name(tuned.decision.plan.simd);
        table.add_row({spec.name,
                       "a=" + std::to_string(mode.alpha) + " (" +
                           std::to_string(mode.threads) + ")",
                       workload_name(w), fmt_stats(r.csr), fmt_stats(r.cbm),
                       fmt_stats(fused), fmt_stats(tuned.stats), plan_cell,
                       fmt_double(r.speedup(), 3), fmt_double(f_speedup, 3)});
      }
    }
  }
  table.print();
  report.add_scalar("fused_geomean_speedup", fused_vs_two_stage.value(),
                    {{"baseline", "cbm_two_stage"}});
  report.add_scalar("tuned_geomean_speedup", tuned_vs_two_stage.value(),
                    {{"baseline", "cbm_two_stage"}});
  std::printf("fused vs two-stage geomean speedup: %.3fx over %d configs\n",
              fused_vs_two_stage.value(), fused_vs_two_stage.count());
  std::printf("tuned vs two-stage geomean speedup: %.3fx over %d configs\n",
              tuned_vs_two_stage.value(), tuned_vs_two_stage.count());
  return 0;
}
