// Core scalar and index types shared by every cbm4gnn module.
//
// Graphs evaluated in the paper reach ~40M edges and ~540k nodes, so 32-bit
// column/row indices suffice while row-pointer arrays use 64-bit offsets to
// stay safe for matrices whose nnz exceeds 2^31.
#pragma once

#include <cstdint>

namespace cbm {

/// Row/column index of a sparse or dense matrix.
using index_t = std::int32_t;

/// Offset into a nonzero array (CSR/CSC row pointers); 64-bit so that
/// matrices with more than 2^31 nonzeros remain representable.
using offset_t = std::int64_t;

/// Default real scalar. The paper evaluates in single precision; all kernels
/// are templated and also instantiated for double.
using real_t = float;

/// Number of bytes in one mebibyte; memory footprints are reported in MiB to
/// match the paper's tables.
inline constexpr double kMiB = 1024.0 * 1024.0;

}  // namespace cbm
