// Matrix-vector products (the paper's §IV formulation at p = 1): CSR SpMV vs
// CBM multiply_vector. With a single output column the update-stage traversal
// overhead is at its relative worst — this bench quantifies how much of the
// SpMM speedup survives.
#include "bench_common.hpp"

int main() {
  using namespace cbm;
  using namespace cbm::bench;
  const auto config = BenchConfig::from_env();
  print_bench_header(config, "SpMV — CSR vs CBM at p = 1");
  set_threads(config.threads);
  BenchReport report("spmv", config);

  TablePrinter table({"Graph", "Alpha", "T_CSR [s]", "T_CBM [s]", "Speedup"});
  for (const auto& spec : dataset_registry()) {
    const Graph g = load_dataset(spec, config);
    const auto pair = make_operands<real_t>(g, Workload::kAX,
                                            spec.paper_best_alpha_par);
    Rng rng(0x5B3Dull);
    std::vector<real_t> x(static_cast<std::size_t>(g.num_nodes()));
    for (auto& v : x) v = rng.next_float();
    std::vector<real_t> y(x.size());

    const auto t_csr = time_repetitions(
        [&] {
          csr_spmv(pair.csr, std::span<const real_t>(x), std::span<real_t>(y));
        },
        config.reps, config.warmup);
    const auto t_cbm = time_repetitions(
        [&] {
          pair.cbm.multiply_vector(std::span<const real_t>(x),
                                   std::span<real_t>(y));
        },
        config.reps, config.warmup);
    const std::vector<std::pair<std::string, std::string>> labels = {
        {"graph", spec.name},
        {"alpha", std::to_string(spec.paper_best_alpha_par)}};
    report.add("csr_seconds", t_csr, labels);
    report.add("cbm_seconds", t_cbm, labels);
    table.add_row({spec.name, std::to_string(spec.paper_best_alpha_par),
                   fmt_seconds(t_csr.mean()), fmt_seconds(t_cbm.mean()),
                   fmt_double(t_csr.mean() / t_cbm.mean(), 2)});
  }
  table.print();
  return 0;
}
