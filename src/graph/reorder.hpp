// Row/node reordering utilities.
//
// CBM's compression is permutation-invariant (the distance graph sees all
// row pairs), but orderings matter operationally: consecutive clustering of
// the partitioned format, cache locality of the SpMM right-hand side, and
// the branch layout of the update stage all improve when similar rows are
// adjacent. These helpers provide the standard orderings.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace cbm {

/// BFS (Cuthill–McKee-style) ordering from the lowest-degree node of each
/// component, neighbors visited in ascending degree. perm[new_id] = old_id.
std::vector<index_t> bfs_order(const Graph& g);

/// Nodes sorted by descending degree (hubs first); ties by id.
std::vector<index_t> degree_order(const Graph& g);

/// MinHash ordering: rows sorted by a 2-signature MinHash of their neighbor
/// sets, so near-duplicate rows become adjacent (the same signal the
/// partitioned format's kMinHash clustering uses).
std::vector<index_t> minhash_order(const Graph& g, std::uint64_t seed = 0x0DDull);

/// Validates that perm is a permutation of 0..n-1.
bool is_permutation(const std::vector<index_t>& perm, index_t n);

/// Relabels the graph: new node i = old node perm[i].
Graph apply_order(const Graph& g, const std::vector<index_t>& perm);

}  // namespace cbm
