// The CBM compression tree: a rooted tree over the matrix rows plus the
// virtual node (paper §III). Row x is reconstructed from its parent row
// parent(x); rows whose parent is the virtual node are stored directly
// (their deltas are their adjacency lists).
//
// Also precomputes what the multiplication kernels need:
//  - a topological order of rows (parents before children, paper §IV), and
//  - the branch decomposition: the subtrees hanging off the virtual root are
//    mutually independent in the update stage, so each is a unit of parallel
//    work (paper §V-B). Branches are stored pre-sorted in topological order.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace cbm {

class CompressionTree {
 public:
  CompressionTree() = default;

  /// Builds from a parent array over rows 0..n-1, where parent[x] is either
  /// another row or `n` (the virtual root). Validates acyclicity.
  static CompressionTree from_parents(std::vector<index_t> parent);

  /// Number of matrix rows (excluding the virtual root).
  [[nodiscard]] index_t num_rows() const {
    return static_cast<index_t>(parent_.size());
  }

  /// Index used for the virtual root in parent().
  [[nodiscard]] index_t virtual_root() const { return num_rows(); }

  /// Parent row of x (== virtual_root() when x is stored directly).
  [[nodiscard]] index_t parent(index_t x) const { return parent_[x]; }

  /// The whole parent array (virtual root encoded as num_rows()).
  [[nodiscard]] std::span<const index_t> parents() const { return parent_; }

  /// Direct children of row x (empty for leaves). Valid for x in
  /// [0, num_rows()); pass virtual_root() for the root's children.
  [[nodiscard]] std::span<const index_t> children(index_t x) const;

  /// New tree equal to this one with every row in `rows` re-attached to the
  /// virtual root — the incremental-mutation repair primitive: when a
  /// mutated row loses its admissible parent the arborescence is patched
  /// locally instead of re-solved. Rows already at the root are accepted
  /// (no-op). Derived structures (topological order, branches, depths) are
  /// rebuilt; re-attaching to the root can never create a cycle.
  [[nodiscard]] CompressionTree with_reparented_to_root(
      std::span<const index_t> rows) const;

  /// True when x hangs directly off the virtual root.
  [[nodiscard]] bool is_root_child(index_t x) const {
    return parent_[x] == virtual_root();
  }

  /// All rows, parents before children.
  [[nodiscard]] std::span<const index_t> topological_order() const {
    return topo_;
  }

  /// Rows with a real (non-virtual) parent — the edges the update stage must
  /// process.
  [[nodiscard]] index_t num_compressed_rows() const { return compressed_; }

  /// Branch decomposition: one entry per child of the virtual root, holding
  /// that subtree's rows in topological order (the subtree root first).
  /// Singleton branches are included (the DAD update must scale their rows).
  [[nodiscard]] const std::vector<std::vector<index_t>>& branches() const {
    return branches_;
  }

  /// Out-degree of the virtual root = available update-stage parallelism.
  [[nodiscard]] index_t root_out_degree() const { return root_children_; }

  /// Longest root-to-leaf path length (edges).
  [[nodiscard]] index_t max_depth() const { return max_depth_; }

  /// Heap bytes of the structures a multiplication kernel must keep resident
  /// (parent array + branch lists); part of the paper's S_CBM.
  [[nodiscard]] std::size_t bytes() const;

 private:
  std::vector<index_t> parent_;
  /// Children in CSR form over n+1 nodes (the last bucket is the virtual
  /// root's) — kept after construction so mutation can enumerate the rows
  /// whose deltas depend on a patched row without a full scan.
  std::vector<offset_t> child_ptr_;
  std::vector<index_t> child_;
  std::vector<index_t> topo_;
  std::vector<std::vector<index_t>> branches_;
  index_t root_children_ = 0;
  index_t compressed_ = 0;
  index_t max_depth_ = 0;
};

}  // namespace cbm
