// Tests for transposed CBM products: C = op(A)ᵀ·B must match the explicitly
// transposed CSR baseline for every kind, schedule and α.
#include <gtest/gtest.h>

#include "cbm/spmm_cbm.hpp"
#include "cbm/transpose.hpp"
#include "dense/ops.hpp"
#include "sparse/scale.hpp"
#include "sparse/spmm.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

struct TransposeCase {
  CbmKind kind;
  int alpha;
  UpdateSchedule schedule;
};

class CbmTransposeParam : public ::testing::TestWithParam<TransposeCase> {};

TEST_P(CbmTransposeParam, MatchesTransposedCsr) {
  const auto p = GetParam();
  const index_t n = 60;
  // Asymmetric binary matrix: transpose genuinely differs from the matrix.
  const auto a = test::clustered_binary(n, 5, 9, 2, 600 + p.alpha);
  const auto dl = test::random_diagonal<float>(n, 601);
  const auto dr = test::random_diagonal<float>(n, 602);

  CsrMatrix<float> baseline = a;
  CbmMatrix<float> cbm;
  switch (p.kind) {
    case CbmKind::kPlain:
      cbm = CbmMatrix<float>::compress(a, {.alpha = p.alpha});
      break;
    case CbmKind::kColumnScaled:
      baseline = scale_columns(a, std::span<const float>(dr));
      cbm = CbmMatrix<float>::compress_scaled(a, std::span<const float>(dr),
                                              CbmKind::kColumnScaled,
                                              {.alpha = p.alpha});
      break;
    case CbmKind::kSymScaled:
      baseline = scale_both(a, std::span<const float>(dl),
                            std::span<const float>(dl));
      cbm = CbmMatrix<float>::compress_scaled(a, std::span<const float>(dl),
                                              CbmKind::kSymScaled,
                                              {.alpha = p.alpha});
      break;
    case CbmKind::kTwoSided:
      baseline = scale_both(a, std::span<const float>(dl),
                            std::span<const float>(dr));
      cbm = CbmMatrix<float>::compress_two_sided(a, std::span<const float>(dl),
                                                 std::span<const float>(dr),
                                                 {.alpha = p.alpha});
      break;
  }

  CbmTranspose<float> cbm_t(cbm);
  const auto b = test::random_dense<float>(n, 9, 603);
  DenseMatrix<float> c_cbm(n, 9), c_csr(n, 9);
  cbm_t.multiply(b, c_cbm, p.schedule);
  csr_spmm(baseline.transpose(), b, c_csr);
  EXPECT_TRUE(allclose(c_cbm, c_csr, 1e-4, 1e-5))
      << "kind=" << static_cast<int>(p.kind) << " alpha=" << p.alpha
      << " max diff " << max_abs_diff(c_cbm, c_csr);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CbmTransposeParam,
    ::testing::Values(
        TransposeCase{CbmKind::kPlain, 0, UpdateSchedule::kSequential},
        TransposeCase{CbmKind::kPlain, 0, UpdateSchedule::kBranchDynamic},
        TransposeCase{CbmKind::kPlain, 4, UpdateSchedule::kBranchStatic},
        TransposeCase{CbmKind::kColumnScaled, 0, UpdateSchedule::kSequential},
        TransposeCase{CbmKind::kColumnScaled, 8,
                      UpdateSchedule::kBranchDynamic},
        TransposeCase{CbmKind::kSymScaled, 0, UpdateSchedule::kSequential},
        TransposeCase{CbmKind::kSymScaled, 2, UpdateSchedule::kBranchDynamic},
        TransposeCase{CbmKind::kTwoSided, 0, UpdateSchedule::kSequential},
        TransposeCase{CbmKind::kTwoSided, 4, UpdateSchedule::kBranchDynamic},
        TransposeCase{CbmKind::kPlain, 0, UpdateSchedule::kColumnSplit},
        TransposeCase{CbmKind::kSymScaled, 2,
                      UpdateSchedule::kColumnSplit}));

TEST(CbmTranspose, SymmetricMatrixTransposeEqualsForward) {
  // For a symmetric pattern, Aᵀ·B == A·B; the two code paths must agree.
  const index_t n = 50;
  // Symmetrise a clustered matrix.
  const auto raw = test::clustered_binary(n, 4, 8, 2, 610);
  CooMatrix<float> sym;
  sym.rows = n;
  sym.cols = n;
  for (index_t i = 0; i < n; ++i) {
    for (const index_t j : raw.row_indices(i)) {
      sym.push(i, j, 1.0f);
      sym.push(j, i, 1.0f);
    }
  }
  auto tmp = CsrMatrix<float>::from_coo(sym);
  std::vector<float> ones(tmp.values().size(), 1.0f);
  const CsrMatrix<float> a(n, n, {tmp.indptr().begin(), tmp.indptr().end()},
                           {tmp.indices().begin(), tmp.indices().end()},
                           std::move(ones));

  const auto cbm = CbmMatrix<float>::compress(a);
  CbmTranspose<float> cbm_t(cbm);
  const auto b = test::random_dense<float>(n, 6, 611);
  DenseMatrix<float> forward(n, 6), transposed(n, 6);
  cbm.multiply(b, forward);
  cbm_t.multiply(b, transposed);
  EXPECT_TRUE(allclose(transposed, forward, 1e-4, 1e-5));
}

TEST(CbmTranspose, ReverseUpdateIsAdjointOfForwardUpdate) {
  // ⟨L·u, v⟩ == ⟨u, Lᵀ·v⟩ for random u, v — the defining adjoint identity,
  // checked in double precision.
  const index_t n = 40;
  std::vector<index_t> parent(n);
  Rng rng(612);
  parent[0] = n;
  for (index_t x = 1; x < n; ++x) {
    // random parent among earlier rows or the root
    const auto pick = rng.next_below(static_cast<std::uint64_t>(x) + 1);
    parent[x] = pick == static_cast<std::uint64_t>(x) ? n
                                                      : static_cast<index_t>(pick);
  }
  const auto tree = CompressionTree::from_parents(parent);

  DenseMatrix<double> u(n, 3), v(n, 3);
  Rng r2(613);
  u.fill_uniform(r2);
  v.fill_uniform(r2);

  DenseMatrix<double> lu = u;
  cbm_update_stage<double>(tree, CbmKind::kPlain, {}, lu,
                           UpdateSchedule::kSequential);
  DenseMatrix<double> ltv = v;
  cbm_reverse_update_stage<double>(tree, CbmKind::kPlain, {}, ltv,
                                   UpdateSchedule::kSequential);

  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < lu.size(); ++i) {
    lhs += lu.data()[i] * v.data()[i];
    rhs += u.data()[i] * ltv.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-9 * std::abs(lhs));
}

TEST(CbmTranspose, ShapeValidation) {
  const auto a = test::clustered_binary(12, 2, 5, 1, 614);
  CbmTranspose<float> cbm_t(CbmMatrix<float>::compress(a));
  DenseMatrix<float> b_bad(11, 3), c(12, 3);
  EXPECT_THROW(cbm_t.multiply(b_bad, c), CbmError);
  DenseMatrix<float> b(12, 3), c_bad(12, 4);
  EXPECT_THROW(cbm_t.multiply(b, c_bad), CbmError);
}

}  // namespace
}  // namespace cbm
