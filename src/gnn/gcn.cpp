#include "gnn/gcn.hpp"

#include <cmath>

#include "dense/gemm.hpp"
#include "dense/ops.hpp"
#include "obs/obs.hpp"

namespace cbm {

namespace {

template <typename T>
DenseMatrix<T> glorot_uniform(index_t rows, index_t cols, Rng& rng) {
  DenseMatrix<T> w(rows, cols);
  const double limit = std::sqrt(6.0 / (static_cast<double>(rows) + cols));
  w.fill_uniform(rng, static_cast<T>(-limit), static_cast<T>(limit));
  return w;
}

}  // namespace

template <typename T>
GcnLayer<T>::GcnLayer(index_t in_features, index_t out_features, Rng& rng,
                      bool with_bias)
    : weight_(glorot_uniform<T>(in_features, out_features, rng)) {
  if (with_bias) bias_.assign(static_cast<std::size_t>(out_features), T{0});
}

template <typename T>
GcnLayer<T>::GcnLayer(DenseMatrix<T> weight, std::vector<T> bias)
    : weight_(std::move(weight)), bias_(std::move(bias)) {
  CBM_CHECK(bias_.empty() ||
                bias_.size() == static_cast<std::size_t>(weight_.cols()),
            "bias length must equal out_features");
}

template <typename T>
void GcnLayer<T>::forward(const AdjacencyOp<T>& adj, const DenseMatrix<T>& h,
                          DenseMatrix<T>& scratch, DenseMatrix<T>& out) const {
  CBM_CHECK(h.cols() == weight_.rows(), "GcnLayer: feature dim mismatch");
  CBM_CHECK(adj.cols() == h.rows(), "GcnLayer: adjacency/feature mismatch");
  CBM_CHECK(scratch.rows() == h.rows() && scratch.cols() == weight_.cols(),
            "GcnLayer: bad scratch shape");
  CBM_CHECK(out.rows() == adj.rows() && out.cols() == weight_.cols(),
            "GcnLayer: bad output shape");
  CBM_SPAN("gnn.gcn.layer");
  {
    // Dense-first association (H·W shrinks before the expensive SpMM).
    CBM_SPAN("gnn.gcn.layer.gemm");
    gemm(h, weight_, scratch);
  }
  {
    CBM_SPAN("gnn.gcn.layer.aggregate");
    adj.multiply(scratch, out);
  }
  if (!bias_.empty()) add_bias_inplace(out, std::span<const T>(bias_));
}

template <typename T>
Gcn2<T>::Gcn2(index_t feature_dim, index_t hidden_dim, index_t out_dim,
              std::uint64_t seed)
    : l0_([&] {
        Rng rng(seed);
        return GcnLayer<T>(feature_dim, hidden_dim, rng);
      }()),
      l1_([&] {
        Rng rng(seed + 0x9e3779b97f4a7c15ull);
        return GcnLayer<T>(hidden_dim, out_dim, rng);
      }()) {}

template <typename T>
void Gcn2<T>::forward(const AdjacencyOp<T>& adj, const DenseMatrix<T>& x,
                      Workspace& ws, DenseMatrix<T>& out) const {
  CBM_SPAN("gnn.gcn2.forward");
  l0_.forward(adj, x, ws.xw, ws.h1);
  relu_inplace(ws.h1);
  l1_.forward(adj, ws.h1, ws.hw, out);
}

template <typename T>
GcnStack<T>::GcnStack(const std::vector<index_t>& dims, std::uint64_t seed) {
  CBM_CHECK(dims.size() >= 2, "GcnStack needs at least input and output dims");
  layers_.reserve(dims.size() - 1);
  Rng rng(seed);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

template <typename T>
GcnStack<T>::Workspace::Workspace(index_t n,
                                  const std::vector<index_t>& dims) {
  CBM_CHECK(dims.size() >= 2, "GcnStack needs at least input and output dims");
  scratch.reserve(dims.size() - 1);
  act.reserve(dims.size() - 2);
  for (std::size_t i = 1; i < dims.size(); ++i) {
    scratch.emplace_back(n, dims[i]);
    if (i + 1 < dims.size()) act.emplace_back(n, dims[i]);
  }
}

template <typename T>
void GcnStack<T>::forward(const AdjacencyOp<T>& adj, const DenseMatrix<T>& x,
                          Workspace& ws, DenseMatrix<T>& out) const {
  CBM_CHECK(ws.scratch.size() == layers_.size() &&
                ws.act.size() + 1 == layers_.size(),
            "workspace does not match the layer stack");
  CBM_SPAN("gnn.gcn_stack.forward");
  const DenseMatrix<T>* h = &x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const bool last = i + 1 == layers_.size();
    DenseMatrix<T>& dst = last ? out : ws.act[i];
    layers_[i].forward(adj, *h, ws.scratch[i], dst);
    if (!last) {
      relu_inplace(dst);
      h = &dst;
    }
  }
}

template class GcnLayer<float>;
template class GcnLayer<double>;
template class Gcn2<float>;
template class Gcn2<double>;
template class GcnStack<float>;
template class GcnStack<double>;

}  // namespace cbm
