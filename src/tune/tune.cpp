#include "tune/tune.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "tune/microjson.hpp"

namespace cbm::tune {

namespace {

std::optional<SimdLevel> simd_from_name(const std::string& name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  return std::nullopt;
}

std::string default_cache_path() {
  const char* home = std::getenv("HOME");
  if (home != nullptr && *home != '\0') {
    return std::string(home) + "/.cache/cbm/tune-v1.json";
  }
  return "/tmp/cbm-tune-v1.json";
}

}  // namespace

TuneMode tune_mode_from_config(const RuntimeConfig& config) {
  const std::string_view s(config.tune_mode);
  if (s.empty() || s == "off") return TuneMode::kOff;
  if (s == "on") return TuneMode::kOn;
  if (s == "force") return TuneMode::kForce;
  throw CbmError("CBM_TUNE: unknown value '" + std::string(s) +
                 "' (expected off | on | force)");
}

TuneMode tune_mode_from_env() {
  return tune_mode_from_config(RuntimeConfig::from_env());
}

std::string ShapeKey::fingerprint() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "r%lldx%lld_p%lld_nnz%lld_t%d_e%zu",
                static_cast<long long>(rows), static_cast<long long>(cols),
                static_cast<long long>(bcols),
                static_cast<long long>(delta_nnz), threads, elem_bytes);
  return buf;
}

std::string cpu_model_key() {
  static const std::string key = [] {
    std::string model = "unknown-cpu";
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("model name", 0) == 0) {
        const auto colon = line.find(':');
        if (colon != std::string::npos) {
          auto start = colon + 1;
          while (start < line.size() && line[start] == ' ') ++start;
          if (start < line.size()) model = line.substr(start);
        }
        break;
      }
    }
    // A cache written by a build without AVX-512 kernels must not satisfy a
    // build that has them (and vice versa): fold capability into the key.
    return model + " [" + simd_level_name(simd_max_supported()) + "]";
  }();
  return key;
}

std::vector<Plan> candidate_plans(const ShapeKey& key) {
  std::vector<SimdLevel> levels{simd_max_supported()};
  if (levels.front() == SimdLevel::kAvx512 && key.bcols < 64) {
    // 512-bit kernels can lose to AVX2 on narrow operands where masked
    // tails dominate; worth one extra probe there. On wide operands the
    // 512-bit panels win by construction, and keeping AVX2 in the pool
    // only gives short-probe noise a chance to pick the slower tier.
    levels.push_back(SimdLevel::kAvx2);
  }

  std::vector<MultiplySchedule> schedules;
  schedules.push_back(MultiplySchedule::two_stage());
  if (key.threads > 1) {
    // Dependency-driven update sweep (cbm::exec): worth probing only when a
    // team exists — on one thread it is the sequential sweep plus task
    // bookkeeping, strictly dominated by the plain two-stage plan.
    schedules.push_back(
        MultiplySchedule::two_stage(UpdateSchedule::kTaskGraph));
  }
  schedules.push_back(MultiplySchedule::fused(0));  // analytic tile policy
  for (const index_t w : {index_t{64}, index_t{128}, index_t{256}}) {
    if (w < key.bcols) schedules.push_back(MultiplySchedule::fused(w));
  }
  if (key.bcols > 0) {
    schedules.push_back(MultiplySchedule::fused(key.bcols));  // full width
  }

  std::vector<Plan> plans;
  plans.reserve(schedules.size() * levels.size());
  for (const SimdLevel level : levels) {
    for (const MultiplySchedule& s : schedules) {
      plans.push_back(Plan{s, level});
    }
  }
  return plans;
}

Tuner& Tuner::instance() {
  static Tuner tuner;
  return tuner;
}

void Tuner::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  loaded_ = false;
}

void Tuner::set_cache_path(std::string path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  path_ = std::move(path);
  path_resolved_ = true;
  entries_.clear();
  loaded_ = false;
}

std::string Tuner::cache_path() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!path_resolved_) {
    const auto configured = RuntimeConfig::from_env().tune_cache;
    path_ = configured ? *configured : default_cache_path();
    path_resolved_ = true;
  }
  return path_;
}

void Tuner::ensure_loaded_locked() {
  if (loaded_) return;
  loaded_ = true;
  if (!path_resolved_) {
    const auto configured = RuntimeConfig::from_env().tune_cache;
    path_ = configured ? *configured : default_cache_path();
    path_resolved_ = true;
  }
  if (path_.empty()) return;
  std::ifstream in(path_);
  if (!in) return;  // no cache yet
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = microjson::parse(buf.str());
  // Anything malformed — syntax, schema mismatch, wrong shapes — degrades to
  // an empty cache: the tuner re-probes and rewrites the file.
  if (!doc || !doc->is_object()) return;
  const auto schema = doc->get_string("schema");
  if (!schema || *schema != kCacheSchema) return;
  const microjson::Value* entries = doc->find("entries");
  if (entries == nullptr || !entries->is_object()) return;
  for (const auto& [key, value] : entries->as_object()) {
    const auto path_name = value.get_string("path");
    const auto spmm_name = value.get_string("spmm");
    const auto update_name = value.get_string("update");
    const auto tile = value.get_number("tile_cols");
    const auto simd_name = value.get_string("simd");
    if (!path_name || !spmm_name || !update_name || !tile || !simd_name) {
      continue;
    }
    const auto simd = simd_from_name(*simd_name);
    if (!simd || !simd_level_supported(*simd)) continue;
    Entry entry;
    try {
      entry.plan.schedule.path = parse_multiply_path(*path_name);
      entry.plan.schedule.spmm = parse_spmm_schedule(*spmm_name);
      entry.plan.schedule.update = parse_update_schedule(*update_name);
    } catch (const CbmError&) {
      continue;  // unknown vocabulary (newer writer?) — skip the entry
    }
    if (*tile < 0) continue;
    entry.plan.schedule.tile_cols = static_cast<index_t>(*tile);
    entry.plan.simd = *simd;
    entry.probe.seconds = value.get_number("probe_seconds").value_or(0.0);
    // Counter attribution is additive: caches written before it existed (or
    // on hosts without counters) load with the "unknown" markers.
    entry.probe.ipc = value.get_number("probe_ipc").value_or(0.0);
    entry.probe.llc_miss_rate =
        value.get_number("probe_llc_miss_rate").value_or(-1.0);
    entries_.insert_or_assign(key, entry);
  }
}

void Tuner::save_locked() {
  if (path_.empty()) return;
  std::error_code ec;
  const std::filesystem::path target(path_);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  std::ostringstream out;
  obs::JsonWriter json(out);
  json.begin_object();
  json.value("schema", kCacheSchema);
  json.begin_object("entries");
  for (const auto& [key, entry] : entries_) {
    json.begin_object(key);
    json.value("path", multiply_path_name(entry.plan.schedule.path));
    json.value("spmm", spmm_schedule_name(entry.plan.schedule.spmm));
    json.value("update", update_schedule_name(entry.plan.schedule.update));
    json.value("tile_cols", static_cast<int>(entry.plan.schedule.tile_cols));
    json.value("simd", simd_level_name(entry.plan.simd));
    json.value("probe_seconds", entry.probe.seconds);
    if (entry.probe.ipc > 0.0) json.value("probe_ipc", entry.probe.ipc);
    if (entry.probe.llc_miss_rate >= 0.0) {
      json.value("probe_llc_miss_rate", entry.probe.llc_miss_rate);
    }
    json.end_object();
  }
  json.end_object();
  json.end_object();
  out << '\n';
  // Temp-file + rename so concurrent readers never observe a torn cache.
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) return;  // unwritable location: stay in-memory only
    file << out.str();
    if (!file.good()) return;
  }
  std::filesystem::rename(tmp, target, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

PlanDecision Tuner::decide(const ShapeKey& key, TuneMode mode,
                           const ProbeFn& probe) {
  if (mode == TuneMode::kOff) return {};
  const std::lock_guard<std::mutex> lock(mutex_);
  ensure_loaded_locked();
  const std::string entry_key = cpu_model_key() + "|" + key.fingerprint();
  if (mode == TuneMode::kOn) {
    const auto it = entries_.find(entry_key);
    if (it != entries_.end()) {
      CBM_COUNTER_ADD("cbm.tune.cache_hits", 1);
      return PlanDecision{it->second.plan, /*tuned=*/true, /*cache_hit=*/true,
                          it->second.probe};
    }
  }
  CBM_COUNTER_ADD("cbm.tune.cache_misses", 1);
  if (!probe) return {};

  CBM_SPAN("cbm.tune.probe");
  const auto plans = candidate_plans(key);
  Entry best;
  double best_seconds = -1.0;
  for (const Plan& plan : plans) {
    const ProbeSample sample = probe(plan);
    CBM_COUNTER_ADD("cbm.tune.probes", 1);
    if (sample.seconds >= 0.0 &&
        (best_seconds < 0.0 || sample.seconds < best_seconds)) {
      best_seconds = sample.seconds;
      best = Entry{plan, sample};
    }
  }
  if (best_seconds < 0.0) return {};  // every probe failed — analytic fallback
  entries_.insert_or_assign(entry_key, best);
  save_locked();
  return PlanDecision{best.plan, /*tuned=*/true, /*cache_hit=*/false,
                      best.probe};
}

}  // namespace cbm::tune
