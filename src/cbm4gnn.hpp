// Umbrella header: the full public API of the cbm4gnn library.
//
// Most users need only:
//   CbmMatrix<T>::compress / compress_scaled / compress_two_sided
//   CbmMatrix<T>::multiply / multiply_vector / materialize
//   CbmTranspose<T>, PartitionedCbmMatrix<T>, save_cbm / load_cbm
//   Graph, the generators, gcn_normalization
//   Gcn2 / GcnStack / GinLayer / SageLayer with CsrAdjacency / CbmAdjacency
#pragma once

#include "cbm/analyze.hpp"         // IWYU pragma: export
#include "cbm/cbm_matrix.hpp"      // IWYU pragma: export
#include "cbm/partitioned.hpp"     // IWYU pragma: export
#include "cbm/serialize.hpp"       // IWYU pragma: export
#include "cbm/transpose.hpp"       // IWYU pragma: export
#include "common/rng.hpp"          // IWYU pragma: export
#include "common/timer.hpp"        // IWYU pragma: export
#include "dense/dense_matrix.hpp"  // IWYU pragma: export
#include "dense/gemm.hpp"          // IWYU pragma: export
#include "dense/ops.hpp"           // IWYU pragma: export
#include "gnn/gcn.hpp"             // IWYU pragma: export
#include "gnn/gin.hpp"             // IWYU pragma: export
#include "gnn/sage.hpp"            // IWYU pragma: export
#include "gnn/train.hpp"           // IWYU pragma: export
#include "graph/generators.hpp"    // IWYU pragma: export
#include "graph/graph.hpp"         // IWYU pragma: export
#include "graph/laplacian.hpp"     // IWYU pragma: export
#include "graph/metrics.hpp"       // IWYU pragma: export
#include "graph/reorder.hpp"       // IWYU pragma: export
#include "sparse/io_edgelist.hpp"  // IWYU pragma: export
#include "sparse/io_mm.hpp"        // IWYU pragma: export
#include "sparse/scale.hpp"        // IWYU pragma: export
#include "sparse/spmm.hpp"         // IWYU pragma: export
#include "tree/arborescence.hpp"   // IWYU pragma: export
#include "tree/compression_tree.hpp"  // IWYU pragma: export
#include "tree/mst.hpp"            // IWYU pragma: export
