#include "bench_util/profdiff.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "bench_util/table.hpp"
#include "common/error.hpp"
#include "obs/json.hpp"
#include "tune/microjson.hpp"

namespace cbm::profdiff {

namespace {

/// Match identity: name|k1=v1,k2=v2 with label keys sorted and plan
/// provenance dropped (see the header).
std::string series_key(
    const std::string& name,
    const std::map<std::string, std::string>& labels) {
  std::string key = name;
  char sep = '|';
  for (const auto& [k, v] : labels) {  // std::map: already sorted
    if (k.rfind("plan", 0) == 0) continue;
    key += sep;
    key += k;
    key += '=';
    key += v;
    sep = ',';
  }
  return key;
}

double stat_value(const Series& s, Stat stat) {
  switch (stat) {
    case Stat::kMin: return s.min;
    case Stat::kMedian: return s.median;
    case Stat::kMean: return s.mean;
  }
  return s.min;
}

std::string fmt_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const char* stat_name(Stat stat) {
  switch (stat) {
    case Stat::kMin: return "min";
    case Stat::kMedian: return "median";
    case Stat::kMean: return "mean";
  }
  return "?";
}

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kPass: return "pass";
    case Verdict::kRegression: return "regression";
    case Verdict::kImprovement: return "improvement";
    case Verdict::kBaseOnly: return "base_only";
    case Verdict::kCurrentOnly: return "current_only";
    case Verdict::kSkipped: return "skipped";
  }
  return "?";
}

bool higher_is_better(const std::string& name) {
  for (const char* marker :
       {"speedup", "gflops", "throughput", "qps", "ratio"}) {
    if (name.find(marker) != std::string::npos) return true;
  }
  return false;
}

Report parse_report(const std::string& text) {
  const auto doc = microjson::parse(text);
  if (!doc || !doc->is_object()) {
    throw CbmError("cbmprof: not a JSON object");
  }
  const auto schema = doc->get_string("schema");
  if (!schema) throw CbmError("cbmprof: report has no \"schema\" field");
  if (*schema != kReportSchema) {
    throw CbmError("cbmprof: unsupported schema '" + *schema +
                   "' (expected " + kReportSchema + ")");
  }
  Report report;
  report.bench = doc->get_string("bench").value_or("");
  const microjson::Value* measurements = doc->find("measurements");
  if (measurements == nullptr || !measurements->is_array()) {
    throw CbmError("cbmprof: report has no \"measurements\" array");
  }
  for (const microjson::Value& m : measurements->as_array()) {
    const auto name = m.get_string("name");
    const auto min = m.get_number("min");
    const auto mean = m.get_number("mean");
    const auto median = m.get_number("median");
    const auto count = m.get_number("count");
    if (!name || !min || !mean || !median || !count) {
      throw CbmError("cbmprof: malformed measurement entry");
    }
    std::map<std::string, std::string> labels;
    if (const microjson::Value* l = m.find("labels");
        l != nullptr && l->is_object()) {
      for (const auto& [k, v] : l->as_object()) {
        if (v.is_string()) labels.emplace(k, v.as_string());
      }
    }
    Series s;
    s.name = *name;
    s.key = series_key(*name, labels);
    s.min = *min;
    s.mean = *mean;
    s.median = *median;
    s.count = static_cast<std::int64_t>(*count);
    report.series.push_back(std::move(s));
  }
  std::sort(report.series.begin(), report.series.end(),
            [](const Series& a, const Series& b) { return a.key < b.key; });
  return report;
}

Report load_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw CbmError("cbmprof: cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  try {
    return parse_report(buf.str());
  } catch (const CbmError& e) {
    throw CbmError(std::string(e.what()) + " [" + path + "]");
  }
}

DiffResult diff(const Report& base, const Report& current,
                const DiffOptions& options) {
  DiffResult result;
  const auto wanted = [&](const Series& s) {
    return options.filter.empty() ||
           s.name.find(options.filter) != std::string::npos;
  };

  // Both inputs are key-sorted: a single merge pass pairs them up.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < base.series.size() || j < current.series.size()) {
    const Series* b =
        i < base.series.size() ? &base.series[i] : nullptr;
    const Series* c =
        j < current.series.size() ? &current.series[j] : nullptr;
    if (b != nullptr && c != nullptr && b->key == c->key) {
      ++i;
      ++j;
      if (!wanted(*b)) continue;
      DiffEntry e;
      e.key = b->key;
      e.name = b->name;
      e.base = stat_value(*b, options.stat);
      e.current = stat_value(*c, options.stat);
      e.higher_is_better = higher_is_better(b->name);
      if (e.base <= 0.0 || e.current <= 0.0) {
        e.verdict = Verdict::kSkipped;
      } else {
        e.ratio = e.current / e.base;
        // Normalise so `bad > 1` always means "got worse": invert the ratio
        // for higher-is-better series, then apply the tolerance on that.
        const double bad = e.higher_is_better ? 1.0 / e.ratio : e.ratio;
        if (bad > 1.0 + options.tolerance) {
          e.verdict = Verdict::kRegression;
          ++result.regressions;
        } else if (bad < 1.0 - options.tolerance) {
          e.verdict = Verdict::kImprovement;
          ++result.improvements;
        } else {
          e.verdict = Verdict::kPass;
        }
        ++result.compared;
      }
      result.entries.push_back(std::move(e));
    } else if (c == nullptr || (b != nullptr && b->key < c->key)) {
      ++i;
      if (!wanted(*b)) continue;
      DiffEntry e;
      e.key = b->key;
      e.name = b->name;
      e.base = stat_value(*b, options.stat);
      e.higher_is_better = higher_is_better(b->name);
      e.verdict = Verdict::kBaseOnly;
      ++result.base_only;
      result.entries.push_back(std::move(e));
    } else {
      ++j;
      if (!wanted(*c)) continue;
      DiffEntry e;
      e.key = c->key;
      e.name = c->name;
      e.current = stat_value(*c, options.stat);
      e.higher_is_better = higher_is_better(c->name);
      e.verdict = Verdict::kCurrentOnly;
      ++result.current_only;
      result.entries.push_back(std::move(e));
    }
  }
  return result;
}

std::string diff_json(const DiffResult& result, const DiffOptions& options,
                      const std::string& base_path,
                      const std::string& current_path) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.value("schema", kDiffSchema);
  w.value("base", base_path);
  w.value("current", current_path);
  w.value("tolerance", options.tolerance);
  w.value("stat", stat_name(options.stat));
  if (!options.filter.empty()) w.value("filter", options.filter);
  w.begin_object("summary");
  w.value("compared", result.compared);
  w.value("regressions", result.regressions);
  w.value("improvements", result.improvements);
  w.value("base_only", result.base_only);
  w.value("current_only", result.current_only);
  w.value("ok", result.ok());
  w.end_object();
  w.begin_array("entries");
  for (const DiffEntry& e : result.entries) {
    w.begin_object();
    w.value("key", e.key);
    w.value("name", e.name);
    w.value("verdict", verdict_name(e.verdict));
    w.value("higher_is_better", e.higher_is_better);
    if (e.base > 0.0) w.value("base", e.base);
    if (e.current > 0.0) w.value("current", e.current);
    if (e.ratio > 0.0) w.value("ratio", e.ratio);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
  return os.str();
}

void print_diff(const DiffResult& result, const DiffOptions& options) {
  TablePrinter table({"Series", "Base", "Current", "Ratio", "Dir", "Verdict"});
  for (const DiffEntry& e : result.entries) {
    table.add_row({e.key, e.base > 0.0 ? fmt_value(e.base) : "-",
                   e.current > 0.0 ? fmt_value(e.current) : "-",
                   e.ratio > 0.0 ? fmt_double(e.ratio, 3) : "-",
                   e.higher_is_better ? "up" : "down",
                   verdict_name(e.verdict)});
  }
  table.print();
  std::printf(
      "cbmprof: %d compared (stat=%s, tol=%.0f%%): "
      "%d regression(s), %d improvement(s), %d base-only, %d new — %s\n",
      result.compared, stat_name(options.stat), options.tolerance * 100.0,
      result.regressions, result.improvements, result.base_only,
      result.current_only, result.ok() ? "OK" : "FAIL");
}

}  // namespace cbm::profdiff
