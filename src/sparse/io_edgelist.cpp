#include "sparse/io_edgelist.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace cbm {

CooMatrix<real_t> read_edge_list(std::istream& in, index_t num_nodes) {
  std::vector<std::pair<long long, long long>> pairs;
  long long max_id = -1;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream row(line);
    long long u = -1, v = -1;
    row >> u >> v;
    // Failed extraction zero-fills since C++11, so test the stream state too.
    CBM_CHECK(!row.fail() && u >= 0 && v >= 0,
              "edge list: malformed line: " + line);
    pairs.emplace_back(u, v);
    max_id = std::max(max_id, std::max(u, v));
  }
  const long long n = num_nodes > 0 ? num_nodes : max_id + 1;
  CBM_CHECK(max_id < n, "edge list: node id exceeds the forced dimension");
  CBM_CHECK(n <= (1ll << 31) - 1, "edge list: too many nodes for 32-bit ids");

  CooMatrix<real_t> coo;
  coo.rows = static_cast<index_t>(n);
  coo.cols = static_cast<index_t>(n);
  coo.reserve(pairs.size());
  for (const auto& [u, v] : pairs) {
    coo.push(static_cast<index_t>(u), static_cast<index_t>(v), 1.0f);
  }
  return coo;
}

CooMatrix<real_t> read_edge_list_file(const std::string& path,
                                      index_t num_nodes) {
  std::ifstream in(path);
  CBM_CHECK(in.good(), "cannot open edge list file: " + path);
  return read_edge_list(in, num_nodes);
}

void write_edge_list(std::ostream& out, const CooMatrix<real_t>& coo) {
  out << "# nodes " << coo.rows << " entries " << coo.nnz() << '\n';
  for (std::size_t k = 0; k < coo.nnz(); ++k) {
    out << coo.row_idx[k] << '\t' << coo.col_idx[k] << '\n';
  }
}

}  // namespace cbm
