// Tests for the benchmark-harness utilities: env parsing, table formatting,
// repetition timing, and the dataset registry's paper constants.
#include <gtest/gtest.h>

#include <cstdlib>

#include "bench_util/datasets.hpp"
#include "bench_util/env.hpp"
#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"

namespace cbm {
namespace {

TEST(Env, IntDoubleStringWithDefaults) {
  ::unsetenv("CBM_TEST_ENV_X");
  EXPECT_EQ(env_int("CBM_TEST_ENV_X", 7), 7);
  EXPECT_DOUBLE_EQ(env_double("CBM_TEST_ENV_X", 1.5), 1.5);
  EXPECT_EQ(env_string("CBM_TEST_ENV_X", "dflt"), "dflt");
  ::setenv("CBM_TEST_ENV_X", "42", 1);
  EXPECT_EQ(env_int("CBM_TEST_ENV_X", 7), 42);
  EXPECT_DOUBLE_EQ(env_double("CBM_TEST_ENV_X", 1.5), 42.0);
  EXPECT_EQ(env_string("CBM_TEST_ENV_X", "dflt"), "42");
  ::unsetenv("CBM_TEST_ENV_X");
}

TEST(Env, BenchConfigReadsOverrides) {
  ::setenv("CBM_BENCH_COLS", "99", 1);
  ::setenv("CBM_BENCH_SCALE", "0.25", 1);
  const auto config = BenchConfig::from_env();
  EXPECT_EQ(config.cols, 99);
  EXPECT_DOUBLE_EQ(config.scale, 0.25);
  EXPECT_GE(config.threads, 1);
  ::unsetenv("CBM_BENCH_COLS");
  ::unsetenv("CBM_BENCH_SCALE");
}

TEST(Table, RowWidthValidated) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CbmError);
  t.add_row({"x", "y"});  // fine
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_seconds(0.12345), "0.1235");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.14159, 0), "3");
  EXPECT_EQ(fmt_mib(1024 * 1024), "1.00");
  EXPECT_EQ(fmt_mib(3 * 1024 * 1024 / 2), "1.50");
  const auto ms = fmt_mean_std(0.5, 0.01);
  EXPECT_NE(ms.find("0.5000"), std::string::npos);
  EXPECT_NE(ms.find("0.0100"), std::string::npos);
}

TEST(Runner, CountsRepsNotWarmup) {
  int calls = 0;
  const auto stats = time_repetitions([&] { ++calls; }, 5, 2);
  EXPECT_EQ(calls, 7);
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_GE(stats.mean(), 0.0);
}

TEST(Datasets, RegistryMatchesPaperTableI) {
  // Spot-check the recorded paper constants against Table I/II/V.
  const auto& cora = dataset_spec("cora");
  EXPECT_EQ(cora.paper_nodes, 2708);
  EXPECT_EQ(cora.paper_edges, 10556);
  EXPECT_DOUBLE_EQ(cora.paper_clustering, 0.24);

  const auto& collab = dataset_spec("collab");
  EXPECT_EQ(collab.paper_nodes, 372474);
  EXPECT_DOUBLE_EQ(collab.paper_ratio_alpha0, 11.0);
  EXPECT_EQ(collab.paper_best_alpha_seq, 4);
  EXPECT_EQ(collab.paper_best_alpha_par, 16);

  const auto& proteins = dataset_spec("ogbn-proteins");
  EXPECT_DOUBLE_EQ(proteins.paper_avg_degree, 298.5);
  EXPECT_EQ(proteins.paper_best_alpha_seq, 8);
}

TEST(Datasets, StandinsAreDeterministic) {
  const Graph a = make_standin("ca-hepph", 0.05);
  const Graph b = make_standin("ca-hepph", 0.05);
  EXPECT_EQ(a.adjacency(), b.adjacency());
}

TEST(Datasets, ScaleShrinksGraphs) {
  const Graph small = make_standin("pubmed", 0.05);
  const Graph large = make_standin("pubmed", 0.2);
  EXPECT_LT(small.num_nodes(), large.num_nodes());
}

TEST(Datasets, InvalidScaleRejected) {
  EXPECT_THROW(make_standin("cora", 0.0), CbmError);
  EXPECT_THROW(make_standin("cora", 1.5), CbmError);
}

}  // namespace
}  // namespace cbm
