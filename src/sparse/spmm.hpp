// Sparse × dense multiplication kernels.
//
// csr_spmm is the baseline the paper benchmarks CBM against (there it is
// Intel MKL's mkl_sparse_s_mm; here an OpenMP kernel with the same role) and
// is also the multiply stage of the CBM product (A'B).
#pragma once

#include "dense/dense_matrix.hpp"
#include "sparse/csr.hpp"

namespace cbm {

/// Row-partitioning strategy for the parallel CSR SpMM.
enum class SpmmSchedule {
  kRowStatic,    // omp static over rows
  kRowDynamic,   // omp dynamic over row chunks
  kNnzBalanced,  // precomputed row ranges with equal nnz per thread
};

/// C = A * B, A sparse CSR (m×k), B dense (k×p), C dense (m×p, overwritten).
/// Parallelism follows the active OpenMP thread count; with 1 thread this is
/// the sequential kernel of the paper's serial experiments.
template <typename T>
void csr_spmm(const CsrMatrix<T>& a, const DenseMatrix<T>& b,
              DenseMatrix<T>& c,
              SpmmSchedule schedule = SpmmSchedule::kNnzBalanced);

/// y = A * x (matrix-vector).
template <typename T>
void csr_spmv(const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y);

/// C = A * B with A in row-sorted COO form; reference kernel for tests and
/// the format-comparison ablation bench.
template <typename T>
void coo_spmm(const CooMatrix<T>& a, const DenseMatrix<T>& b,
              DenseMatrix<T>& c);

/// Scalar multiply–add count of a CSR SpMM: 2 * nnz * cols(B). Used by the
/// op-count comparisons behind the paper's Property 2.
template <typename T>
[[nodiscard]] std::size_t csr_spmm_flops(const CsrMatrix<T>& a, index_t bcols);

extern template void csr_spmm<float>(const CsrMatrix<float>&,
                                     const DenseMatrix<float>&,
                                     DenseMatrix<float>&, SpmmSchedule);
extern template void csr_spmm<double>(const CsrMatrix<double>&,
                                      const DenseMatrix<double>&,
                                      DenseMatrix<double>&, SpmmSchedule);
extern template void csr_spmv<float>(const CsrMatrix<float>&,
                                     std::span<const float>, std::span<float>);
extern template void csr_spmv<double>(const CsrMatrix<double>&,
                                      std::span<const double>,
                                      std::span<double>);
extern template void coo_spmm<float>(const CooMatrix<float>&,
                                     const DenseMatrix<float>&,
                                     DenseMatrix<float>&);
extern template void coo_spmm<double>(const CooMatrix<double>&,
                                      const DenseMatrix<double>&,
                                      DenseMatrix<double>&);
extern template std::size_t csr_spmm_flops<float>(const CsrMatrix<float>&,
                                                  index_t);
extern template std::size_t csr_spmm_flops<double>(const CsrMatrix<double>&,
                                                   index_t);

}  // namespace cbm
