// Tests for cbm::obs::hw: CBM_PERF parsing, the disabled-by-default
// contract (no counter is ever touched unless asked), graceful degradation
// when the host refuses perf_event_open, and the derived-metric arithmetic
// that reports and the autotuner rely on.
//
// Counter *values* are deliberately never asserted: CI runners, containers,
// and VMs disagree about what perf exposes. What is asserted is the
// contract — a sample is either available with sane fields or unavailable
// with a reason, and never half-initialised.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "cbm/cbm_matrix.hpp"
#include "common/envknobs.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "dense/dense_matrix.hpp"
#include "obs/hw.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sparse/csr.hpp"

namespace cbm {
namespace {

/// Restores "sampling off, metrics off, clean registry" around each test so
/// ordering cannot leak state between them.
struct HwGuard {
  HwGuard() { reset(); }
  ~HwGuard() { reset(); }
  static void reset() {
    obs::hw::set_sampling_mode(PerfMode::kOff);
    obs::set_metrics_enabled(false);
    obs::metrics_reset();
  }
};

CbmMatrix<float> tiny_matrix() {
  std::vector<offset_t> indptr = {0, 3, 6, 9};
  std::vector<index_t> indices = {0, 1, 2, 0, 1, 2, 0, 1, 2};
  std::vector<float> values(9, 1.0f);
  const CsrMatrix<float> a(3, 3, std::move(indptr), std::move(indices),
                           std::move(values));
  return CbmMatrix<float>::compress(a, {.alpha = 0});
}

// ---------------------------------------------------------------------------
// CBM_PERF parsing

TEST(PerfMode, ParsesKnownValuesAndRejectsGarbage) {
  ::unsetenv("CBM_PERF");
  EXPECT_EQ(perf_mode_from_env(), PerfMode::kOff);
  ::setenv("CBM_PERF", "", 1);
  EXPECT_EQ(perf_mode_from_env(), PerfMode::kOff);
  ::setenv("CBM_PERF", "off", 1);
  EXPECT_EQ(perf_mode_from_env(), PerfMode::kOff);
  ::setenv("CBM_PERF", "on", 1);
  EXPECT_EQ(perf_mode_from_env(), PerfMode::kOn);
  ::setenv("CBM_PERF", "force", 1);
  EXPECT_EQ(perf_mode_from_env(), PerfMode::kForce);
  ::setenv("CBM_PERF", "yes", 1);
  EXPECT_THROW(perf_mode_from_env(), CbmError);
  ::unsetenv("CBM_PERF");
}

TEST(PerfMode, NamesRoundTrip) {
  EXPECT_STREQ(perf_mode_name(PerfMode::kOff), "off");
  EXPECT_STREQ(perf_mode_name(PerfMode::kOn), "on");
  EXPECT_STREQ(perf_mode_name(PerfMode::kForce), "force");
}

// ---------------------------------------------------------------------------
// Disabled-by-default contract

TEST(Hw, DisabledRegionReportsWhy) {
  HwGuard guard;
  obs::hw::HwRegion region;
  const obs::hw::HwSample sample = region.stop();
  EXPECT_FALSE(sample.available);
  EXPECT_NE(sample.reason.find("CBM_PERF"), std::string::npos);
  EXPECT_EQ(sample.cycles, -1);
  EXPECT_EQ(sample.task_clock_ns, -1);
  EXPECT_FALSE(obs::hw::thread_counters_available());
}

TEST(Hw, DisabledSamplingLeavesMultiplyCounterFree) {
  HwGuard guard;
  obs::set_metrics_enabled(true);  // metrics on, sampling off

  const auto m = tiny_matrix();
  DenseMatrix<float> b(3, 2), c(3, 2);
  Rng rng(7);
  b.fill_uniform(rng);
  m.multiply(b, c);

  // The multiply's CBM_SPAN_HW must not have produced any hw.* series — not
  // even the "unavailable" marker; with CBM_PERF=off the sampling point is
  // an atomic load and nothing else.
  const auto snap = obs::metrics_snapshot();
  for (const auto& [name, value] : snap.counters) {
    EXPECT_NE(name.rfind("hw.", 0), 0u) << "unexpected counter: " << name;
  }
  for (const auto& [name, value] : snap.gauges) {
    EXPECT_NE(name.rfind("hw.", 0), 0u) << "unexpected gauge: " << name;
  }
  EXPECT_GE(snap.counters.at("cbm.multiply.calls"), 1);
}

TEST(Hw, InertRegionNeverSamples) {
  HwGuard guard;
  obs::hw::set_sampling_mode(PerfMode::kOn);
  obs::hw::HwRegion region(/*request=*/false);
  const obs::hw::HwSample sample = region.stop();
  EXPECT_FALSE(sample.available || sample.cycles >= 0);
}

// ---------------------------------------------------------------------------
// Enabled sampling (robust to hosts without perf)

TEST(Hw, EnabledRegionIsAvailableOrExplains) {
  HwGuard guard;
  obs::hw::set_sampling_mode(PerfMode::kOn);
  obs::hw::HwRegion region;
  // A little work so any delivered counter has something to count.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  const obs::hw::HwSample sample = region.stop();
  if (sample.available) {
    // At least one family delivered; every delivered field is a sane delta.
    bool any = false;
    for (const std::int64_t v :
         {sample.cycles, sample.instructions, sample.llc_loads,
          sample.llc_misses, sample.stalled_cycles, sample.task_clock_ns,
          sample.page_faults, sample.context_switches}) {
      EXPECT_GE(v, -1);
      any = any || v >= 0;
    }
    EXPECT_TRUE(any);
    EXPECT_TRUE(obs::hw::thread_counters_available());
  } else {
    // Refused hosts must say why (paranoid level, missing PMU, ...).
    EXPECT_FALSE(sample.reason.empty());
    EXPECT_EQ(obs::hw::thread_counters_reason(), sample.reason);
  }
}

TEST(Hw, ScopedSampleRecordsMetricsSeries) {
  HwGuard guard;
  obs::hw::set_sampling_mode(PerfMode::kOn);
  obs::set_metrics_enabled(true);
  {
    obs::hw::ScopedHwSample scoped("test.region");
    volatile int sink = 0;
    for (int i = 0; i < 10000; ++i) sink += i;
  }
  // Exactly one of the two outcomes must have been recorded.
  const auto snap = obs::metrics_snapshot();
  const bool sampled = snap.counters.count("hw.test.region.samples") > 0;
  const bool unavailable =
      snap.counters.count("hw.test.region.unavailable") > 0;
  EXPECT_NE(sampled, unavailable);
  if (sampled) {
    // Whatever family delivered, at least one raw counter series rode along.
    bool any_field = false;
    for (const char* field : {"hw.test.region.cycles",
                              "hw.test.region.instructions",
                              "hw.test.region.task_clock_ns"}) {
      any_field = any_field || snap.counters.count(field) > 0;
    }
    EXPECT_TRUE(any_field);
  }
}

TEST(Hw, SpanHwMacroCompilesAndScopes) {
  HwGuard guard;
  obs::set_metrics_enabled(true);
  obs::hw::set_sampling_mode(PerfMode::kOn);
  { CBM_SPAN_HW("test.span_hw"); }
  const auto snap = obs::metrics_snapshot();
  EXPECT_TRUE(snap.counters.count("hw.test.span_hw.samples") > 0 ||
              snap.counters.count("hw.test.span_hw.unavailable") > 0);
}

// ---------------------------------------------------------------------------
// Derived metrics (pure arithmetic — host-independent)

TEST(HwSample, DerivedMetricsFromHandcraftedCounters) {
  obs::hw::HwSample s;
  s.available = true;
  s.cycles = 100;
  s.instructions = 250;
  s.llc_loads = 1000;
  s.llc_misses = 50;
  s.stalled_cycles = 40;
  EXPECT_DOUBLE_EQ(s.ipc(), 2.5);
  EXPECT_DOUBLE_EQ(s.llc_miss_rate(), 0.05);
  EXPECT_DOUBLE_EQ(s.stall_fraction(), 0.4);
}

TEST(HwSample, DerivedMetricsSignalMissingCounters) {
  obs::hw::HwSample s;  // everything at the -1 "not delivered" mark
  EXPECT_DOUBLE_EQ(s.ipc(), -1.0);
  EXPECT_DOUBLE_EQ(s.llc_miss_rate(), -1.0);
  EXPECT_DOUBLE_EQ(s.stall_fraction(), -1.0);

  s.cycles = 0;  // zero-cycle region: ratios are undefined, not inf
  s.instructions = 10;
  EXPECT_DOUBLE_EQ(s.ipc(), -1.0);

  // Multiplex scaling can nudge rates past their logical ceiling; the
  // accessors clamp instead of reporting >100%.
  s.llc_loads = 10;
  s.llc_misses = 12;
  EXPECT_DOUBLE_EQ(s.llc_miss_rate(), 1.0);
}

TEST(HwSample, AccumulateSumsDeliveredFieldsOnly) {
  obs::hw::HwSample a;
  a.available = true;
  a.cycles = 100;
  a.task_clock_ns = 5000;

  obs::hw::HwSample b;
  b.available = true;
  b.cycles = 50;
  b.instructions = 75;  // missing on `a`: treated as 0 there, not poisoned

  a.accumulate(b);
  EXPECT_EQ(a.cycles, 150);
  EXPECT_EQ(a.instructions, 75);
  EXPECT_EQ(a.task_clock_ns, 5000);
  EXPECT_EQ(a.llc_loads, -1);  // missing on both sides stays missing
}

}  // namespace
}  // namespace cbm
