// Benchmark configuration via environment variables.
//
// The paper's full protocol (500-column operands, 250 repetitions, 16 cores)
// is too heavy for arbitrary hosts, so every knob is overridable:
//   CBM_BENCH_COLS    columns of the dense operand X   (default 128; paper 500)
//   CBM_BENCH_REPS    timed repetitions per measurement (default 3; paper 250)
//   CBM_BENCH_WARMUP  untimed warmup runs               (default 1)
//   CBM_BENCH_THREADS parallel thread count             (default: all cores)
//   CBM_BENCH_SCALE   dataset size multiplier in (0,1]  (default 0.4)
//   CBM_BENCH_MTX_DIR directory with real .mtx datasets (optional; stand-ins
//                     are replaced by real graphs when the file exists)
#pragma once

#include <string>

namespace cbm {

struct BenchConfig {
  int cols = 128;
  int reps = 3;
  int warmup = 1;
  int threads = 0;  ///< 0 = all available
  double scale = 0.4;
  std::string mtx_dir;

  /// Reads the CBM_BENCH_* environment.
  static BenchConfig from_env();
};

/// Prints host/config context (threads, cols, reps, scale) so every bench
/// output is self-describing.
void print_bench_header(const BenchConfig& config, const std::string& title);

/// Integer environment variable with default.
int env_int(const char* name, int fallback);

/// Double environment variable with default.
double env_double(const char* name, double fallback);

/// String environment variable with default.
std::string env_string(const char* name, const std::string& fallback);

}  // namespace cbm
