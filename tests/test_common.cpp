// Unit tests for the common substrate: RNG, statistics, vector kernels,
// error handling, parallel helpers, cache detection, env-knob parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/cache_info.hpp"
#include "common/envknobs.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "common/vectorops.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

using test::EnvGuard;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), CbmError);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(3);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, FloatInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.next_float();
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(9);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.1);
}

TEST(Rng, SplitStreamsDecorrelated) {
  Rng parent(123);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent() == child());
  EXPECT_LT(same, 4);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(77);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RunStats, EmptyIsZero) {
  RunStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunStats, MeanAndStddev) {
  RunStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample stddev of that classic dataset: sqrt(32/7).
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunStats, MergeMatchesSequential) {
  RunStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-12);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunStats, MergeWithEmpty) {
  RunStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunStats, MergeEmptyWithEmpty) {
  RunStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.median(), 0.0);
}

TEST(RunStats, MergePropagatesMinMax) {
  RunStats a, b;
  a.add(5.0);
  b.add(-2.0);
  b.add(11.0);
  a.merge(b);
  EXPECT_EQ(a.min(), -2.0);
  EXPECT_EQ(a.max(), 11.0);
}

TEST(RunStats, MedianOddAndEven) {
  RunStats odd;
  for (const double x : {9.0, 1.0, 5.0}) odd.add(x);
  EXPECT_DOUBLE_EQ(odd.median(), 5.0);

  RunStats even;
  for (const double x : {4.0, 1.0, 3.0, 2.0}) even.add(x);
  EXPECT_DOUBLE_EQ(even.median(), 2.5);

  RunStats single;
  single.add(7.0);
  EXPECT_DOUBLE_EQ(single.median(), 7.0);
}

TEST(RunStats, MedianIgnoresOutlierUnlikeMean) {
  RunStats s;
  for (int i = 0; i < 9; ++i) s.add(1.0);
  s.add(1000.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.0);
  EXPECT_GT(s.mean(), 100.0);
}

TEST(RunStats, MedianSurvivesReservoirOverflowAndMerge) {
  // More samples than the reservoir holds: the median must stay in the
  // right ballpark (all values equal makes it exact).
  RunStats big;
  for (int i = 0; i < 5000; ++i) big.add(2.0);
  EXPECT_DOUBLE_EQ(big.median(), 2.0);

  RunStats other;
  for (int i = 0; i < 5000; ++i) other.add(2.0);
  big.merge(other);
  EXPECT_EQ(big.count(), 10000u);
  EXPECT_DOUBLE_EQ(big.median(), 2.0);
}

TEST(VectorOps, Add) {
  std::vector<float> x = {1, 2, 3}, y = {10, 20, 30};
  vec_add<float>(x, y);
  EXPECT_EQ(y, (std::vector<float>{11, 22, 33}));
}

TEST(VectorOps, Axpy) {
  std::vector<float> x = {1, 2, 3}, y = {1, 1, 1};
  vec_axpy(2.0f, std::span<const float>(x), std::span<float>(y));
  EXPECT_EQ(y, (std::vector<float>{3, 5, 7}));
}

TEST(VectorOps, FusedScaleAddMatchesComposition) {
  // y = a*(b*x + y), the DAD update kernel (Eq. 6).
  std::vector<double> x = {1, -2, 3}, y = {4, 5, -6};
  const double a = 0.5, b = 2.0;
  std::vector<double> expect(3);
  for (int i = 0; i < 3; ++i) expect[i] = a * (b * x[i] + y[i]);
  vec_fused_scale_add(a, b, std::span<const double>(x), std::span<double>(y));
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(y[i], expect[i]);
}

TEST(VectorOps, ScaleZeroCopyDot) {
  std::vector<float> y = {2, 4, 6};
  vec_scale(0.5f, std::span<float>(y));
  EXPECT_EQ(y, (std::vector<float>{1, 2, 3}));

  std::vector<float> dst(3);
  vec_copy(std::span<const float>(y), std::span<float>(dst));
  EXPECT_EQ(dst, y);

  EXPECT_FLOAT_EQ(vec_dot(std::span<const float>(y), std::span<const float>(y)),
                  1 + 4 + 9);

  vec_zero(std::span<float>(dst));
  EXPECT_EQ(dst, (std::vector<float>{0, 0, 0}));
}

TEST(Error, CheckThrowsWithContext) {
  try {
    CBM_CHECK(1 == 2, "one is not two");
    FAIL() << "expected CbmError";
  } catch (const CbmError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
  }
}

TEST(Parallel, ThreadScopeRestores) {
  const int before = max_threads();
  {
    ThreadScope scope(1);
    EXPECT_EQ(max_threads(), 1);
  }
  EXPECT_EQ(max_threads(), before);
}

// ------------------------------------------------------ CacheInfo / sysfs --

/// Builds a fake /sys/devices/system/cpu/cpu0-style tree on disk so
/// CacheInfo::detect(dir) can be exercised without the host's real sysfs.
class FakeSysfs {
 public:
  FakeSysfs() {
    root_ = std::filesystem::path(::testing::TempDir()) /
            ("cbm-sysfs-" +
             std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(root_ / "cache");
  }
  ~FakeSysfs() {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  void add_index(int index, const std::string& level, const std::string& type,
                 const std::string& size) {
    const auto dir = root_ / "cache" / ("index" + std::to_string(index));
    std::filesystem::create_directories(dir);
    write(dir / "level", level);
    write(dir / "type", type);
    write(dir / "size", size);
  }

  [[nodiscard]] std::string dir() const { return root_.string(); }

 private:
  static void write(const std::filesystem::path& p, const std::string& text) {
    std::ofstream(p) << text << '\n';
  }

  std::filesystem::path root_;
};

TEST(CacheInfoDetect, ParsesAFullTree) {
  FakeSysfs fs;
  fs.add_index(0, "1", "Data", "48K");
  fs.add_index(1, "1", "Instruction", "32K");
  fs.add_index(2, "2", "Unified", "2048K");
  fs.add_index(3, "3", "Unified", "36M");
  const CacheInfo info = CacheInfo::detect(fs.dir());
  EXPECT_EQ(info.l1d_bytes, 48u * 1024);
  EXPECT_EQ(info.l2_bytes, 2048u * 1024);
  EXPECT_EQ(info.llc_bytes, 36u * 1024 * 1024);
}

TEST(CacheInfoDetect, MissingTreeKeepsDefaults) {
  const CacheInfo fallback;
  const CacheInfo info = CacheInfo::detect("/nonexistent/cpu99");
  EXPECT_EQ(info.l1d_bytes, fallback.l1d_bytes);
  EXPECT_EQ(info.l2_bytes, fallback.l2_bytes);
  EXPECT_EQ(info.llc_bytes, fallback.llc_bytes);
}

TEST(CacheInfoDetect, PartialTreeBackfillsAndKeepsInvariant) {
  // Only an L2 entry (containers often hide the rest): the LLC must never
  // come out zero or smaller than L2.
  FakeSysfs fs;
  fs.add_index(0, "2", "Unified", "4096K");
  const CacheInfo info = CacheInfo::detect(fs.dir());
  EXPECT_GT(info.l1d_bytes, 0u);
  EXPECT_EQ(info.l2_bytes, 4096u * 1024);
  EXPECT_GE(info.llc_bytes, info.l2_bytes);
}

TEST(CacheInfoDetect, GarbageAttributesAreSkippedNotFatal) {
  FakeSysfs fs;
  fs.add_index(0, "not-a-level", "Data", "48K");
  fs.add_index(1, "2", "Unified", "chunky");  // unparsable size
  fs.add_index(2, "3", "Unified", "8M");
  CacheInfo info;
  EXPECT_NO_THROW(info = CacheInfo::detect(fs.dir()));
  EXPECT_GT(info.l1d_bytes, 0u);
  EXPECT_GT(info.l2_bytes, 0u);
  EXPECT_EQ(info.llc_bytes, 8u * 1024 * 1024);
  EXPECT_LE(info.l2_bytes, info.llc_bytes);
}

TEST(CacheInfoDetect, L2LargerThanNamedLlcWins) {
  // A malformed tree claiming LLC < L2 must be repaired, not trusted: the
  // tile policy divides by the LLC share.
  FakeSysfs fs;
  fs.add_index(0, "2", "Unified", "8192K");
  fs.add_index(1, "3", "Unified", "1024K");
  const CacheInfo info = CacheInfo::detect(fs.dir());
  EXPECT_GE(info.llc_bytes, info.l2_bytes);
}

TEST(CacheInfoDetect, HostDetectionSatisfiesInvariants) {
  const CacheInfo& info = CacheInfo::host();
  EXPECT_GT(info.l1d_bytes, 0u);
  EXPECT_GT(info.l2_bytes, 0u);
  EXPECT_GE(info.llc_bytes, info.l2_bytes);
}

// ------------------------------------------------------------- env knobs --

TEST(EnvKnobs, IntStrictParsesAndFallsBack) {
  {
    const EnvGuard env("CBM_TEST_KNOB", "42");
    EXPECT_EQ(env_int_strict("CBM_TEST_KNOB", 7), 42);
  }
  {
    const EnvGuard env("CBM_TEST_KNOB", "-3");
    EXPECT_EQ(env_int_strict("CBM_TEST_KNOB", 7), -3);
  }
  {
    const EnvGuard env("CBM_TEST_KNOB", "");
    EXPECT_EQ(env_int_strict("CBM_TEST_KNOB", 7), 7);
  }
  EXPECT_EQ(env_int_strict("CBM_TEST_KNOB_UNSET", 7), 7);
}

TEST(EnvKnobs, IntStrictRejectsGarbage) {
  for (const char* bad : {"12abc", "abc", "1.5", " 12 ", "0x10",
                          "99999999999999999999"}) {
    const EnvGuard env("CBM_TEST_KNOB", bad);
    EXPECT_THROW(env_int_strict("CBM_TEST_KNOB", 7), CbmError) << bad;
  }
  // The error names the variable so the operator can find the knob.
  const EnvGuard env("CBM_TEST_KNOB", "fast");
  try {
    (void)env_int_strict("CBM_TEST_KNOB", 7);
    FAIL() << "expected CbmError";
  } catch (const CbmError& e) {
    EXPECT_NE(std::string(e.what()).find("CBM_TEST_KNOB"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("fast"), std::string::npos);
  }
}

TEST(EnvKnobs, PositiveIntRejectsZeroAndNegative) {
  for (const char* bad : {"0", "-1", "-64"}) {
    const EnvGuard env("CBM_TEST_KNOB", bad);
    EXPECT_THROW(env_positive_int("CBM_TEST_KNOB", 7), CbmError) << bad;
  }
  const EnvGuard env("CBM_TEST_KNOB", "3");
  EXPECT_EQ(env_positive_int("CBM_TEST_KNOB", 7), 3);
}

TEST(EnvKnobs, DoubleStrictParsesAndRejects) {
  {
    const EnvGuard env("CBM_TEST_KNOB", "0.25");
    EXPECT_DOUBLE_EQ(env_double_strict("CBM_TEST_KNOB", 1.0), 0.25);
  }
  {
    const EnvGuard env("CBM_TEST_KNOB", "2e-3");
    EXPECT_DOUBLE_EQ(env_double_strict("CBM_TEST_KNOB", 1.0), 2e-3);
  }
  for (const char* bad : {"0.25x", "fast", "1e999"}) {
    const EnvGuard env("CBM_TEST_KNOB", bad);
    EXPECT_THROW(env_double_strict("CBM_TEST_KNOB", 1.0), CbmError) << bad;
  }
}

TEST(EnvKnobs, TileColsValidatedCentrally) {
  {
    const EnvGuard env("CBM_TILE_COLS", "");  // empty = unset
    EXPECT_EQ(env_tile_cols(), std::nullopt);
  }
  {
    const EnvGuard env("CBM_TILE_COLS", "128");
    EXPECT_EQ(env_tile_cols(), index_t{128});
  }
  for (const char* bad : {"0", "-8", "wide", "64cols"}) {
    const EnvGuard env("CBM_TILE_COLS", bad);
    EXPECT_THROW((void)env_tile_cols(), CbmError) << bad;
  }
}

TEST(RuntimeConfig, FromEnvDefaultsWhenUnset) {
  const EnvGuard e1("CBM_MULTIPLY_PATH");
  const EnvGuard e2("CBM_SPMM_SCHEDULE");
  const EnvGuard e3("CBM_UPDATE_SCHEDULE");
  const EnvGuard e4("CBM_TILE_COLS");
  const EnvGuard e5("CBM_TUNE");
  const EnvGuard e6("CBM_TUNE_CACHE");
  const EnvGuard e7("CBM_PART_EXEC");
  const EnvGuard e8("CBM_NUMA");
  const EnvGuard e9("CBM_EXEC_GRAIN");
  const EnvGuard e10("CBM_PERF");
  const RuntimeConfig cfg = RuntimeConfig::from_env();
  EXPECT_FALSE(cfg.multiply_path.has_value());
  EXPECT_FALSE(cfg.spmm_schedule.has_value());
  EXPECT_FALSE(cfg.update_schedule.has_value());
  EXPECT_FALSE(cfg.tile_cols.has_value());
  EXPECT_EQ(cfg.tune_mode, "off");
  EXPECT_FALSE(cfg.tune_cache.has_value());
  EXPECT_EQ(cfg.part_exec, PartExec::kTaskGraph);
  EXPECT_EQ(cfg.numa, NumaMode::kOff);
  EXPECT_EQ(cfg.exec_grain, 64);
  EXPECT_EQ(cfg.perf, PerfMode::kOff);
}

TEST(RuntimeConfig, FromEnvSnapshotsEveryKnob) {
  const EnvGuard e1("CBM_MULTIPLY_PATH", "two_stage");
  const EnvGuard e2("CBM_SPMM_SCHEDULE", "static");
  const EnvGuard e3("CBM_UPDATE_SCHEDULE", "branch_static");
  const EnvGuard e4("CBM_TILE_COLS", "96");
  const EnvGuard e5("CBM_TUNE", "on");
  const EnvGuard e6("CBM_TUNE_CACHE", "/tmp/plans.json");
  const EnvGuard e7("CBM_PART_EXEC", "serial");
  const EnvGuard e8("CBM_NUMA", "off");
  const EnvGuard e9("CBM_EXEC_GRAIN", "32");
  const RuntimeConfig cfg = RuntimeConfig::from_env();
  EXPECT_EQ(cfg.multiply_path, "two_stage");
  EXPECT_EQ(cfg.spmm_schedule, "static");
  EXPECT_EQ(cfg.update_schedule, "branch_static");
  EXPECT_EQ(cfg.tile_cols, index_t{96});
  EXPECT_EQ(cfg.tune_mode, "on");
  EXPECT_EQ(cfg.tune_cache, "/tmp/plans.json");
  EXPECT_EQ(cfg.part_exec, PartExec::kSerial);
  EXPECT_EQ(cfg.exec_grain, 32);
}

TEST(RuntimeConfig, EmptyTuneCacheIsMeaningful) {
  // CBM_TUNE_CACHE="" disables persistence — distinct from unset (default
  // path), so from_env must preserve the empty string rather than dropping
  // the knob.
  const EnvGuard env("CBM_TUNE_CACHE", "");
  const RuntimeConfig cfg = RuntimeConfig::from_env();
  ASSERT_TRUE(cfg.tune_cache.has_value());
  EXPECT_TRUE(cfg.tune_cache->empty());
}

TEST(RuntimeConfig, IsExplicitlyConstructible) {
  // The whole point of RuntimeConfig: callers can pin the execution
  // configuration in code with no environment involved.
  RuntimeConfig cfg;
  cfg.multiply_path = "fused_tiled";
  cfg.tile_cols = 64;
  cfg.exec_grain = 128;
  EXPECT_EQ(*cfg.multiply_path, "fused_tiled");
  EXPECT_EQ(*cfg.tile_cols, 64);
}

TEST(Timer, NonNegativeAndMonotonic) {
  Timer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.reset();
  EXPECT_GE(t.millis(), 0.0);
}

}  // namespace
}  // namespace cbm
