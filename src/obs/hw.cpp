#include "obs/hw.hpp"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <fstream>

#include "common/error.hpp"
#include "obs/metrics.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#define CBM_HW_HAVE_PERF 1
#endif

namespace cbm::obs::hw {

namespace detail {
std::atomic<int> g_mode{-1};

int init_mode() {
  const int parsed = static_cast<int>(perf_mode_from_env());
  g_mode.store(parsed, std::memory_order_relaxed);
  return parsed;
}
}  // namespace detail

void set_sampling_mode(PerfMode mode) {
  detail::g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

namespace {

enum EventIndex : std::size_t {
  kCycles = 0,
  kInstructions,
  kLlcLoads,
  kLlcMisses,
  kStalledCycles,
  kTaskClock,
  kPageFaults,
  kContextSwitches,
  kNumEvents,  // must stay <= the HwRegion::start_ capacity (8)
};
static_assert(kNumEvents <= 8, "HwRegion::start_ capacity");

#ifdef CBM_HW_HAVE_PERF

constexpr std::uint64_t hw_cache_config(std::uint64_t cache, std::uint64_t op,
                                        std::uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

const EventSpec kEvents[kNumEvents] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HW_CACHE,
     hw_cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                     PERF_COUNT_HW_CACHE_RESULT_ACCESS)},
    {PERF_TYPE_HW_CACHE,
     hw_cache_config(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
                     PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES},
};

int open_event(std::uint32_t type, std::uint64_t config, bool exclude_kernel) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  attr.exclude_hv = 1;
  attr.exclude_kernel = exclude_kernel ? 1 : 0;
  return static_cast<int>(
      ::syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                /*group_fd=*/-1, /*flags=*/0));
}

int read_paranoid() {
  std::ifstream in("/proc/sys/kernel/perf_event_paranoid");
  int v = -100;
  in >> v;
  return v;
}

/// Per-thread counter set, opened on first use after sampling is enabled.
/// Counters are opened individually (not as a perf group) so the hardware
/// family can be refused while the software family still delivers.
struct ThreadCounters {
  int fds[kNumEvents];
  bool valid[kNumEvents] = {};
  bool any = false;
  std::string reason;

  ThreadCounters() {
    int first_errno = 0;
    for (std::size_t i = 0; i < kNumEvents; ++i) {
      fds[i] = open_event(kEvents[i].type, kEvents[i].config,
                          /*exclude_kernel=*/false);
      if (fds[i] < 0 && (errno == EACCES || errno == EPERM)) {
        // perf_event_paranoid >= 2 forbids kernel-side counting; user-space
        // cycles/instructions are still fine.
        fds[i] = open_event(kEvents[i].type, kEvents[i].config,
                            /*exclude_kernel=*/true);
      }
      if (fds[i] < 0 && i == kStalledCycles) {
        // Backend-stall support is spotty; frontend stalls are the usual
        // fallback (what `perf stat` prints as stalled-cycles-frontend).
        fds[i] = open_event(PERF_TYPE_HARDWARE,
                            PERF_COUNT_HW_STALLED_CYCLES_FRONTEND,
                            /*exclude_kernel=*/true);
      }
      if (fds[i] >= 0) {
        valid[i] = true;
        any = true;
      } else if (first_errno == 0) {
        first_errno = errno;
      }
    }
    if (!any) {
      reason = std::string("perf_event_open failed: ") +
               std::strerror(first_errno) +
               " (perf_event_paranoid=" + std::to_string(read_paranoid()) +
               "; VMs and containers often expose no PMU)";
    }
  }

  ~ThreadCounters() {
    for (std::size_t i = 0; i < kNumEvents; ++i) {
      if (valid[i]) ::close(fds[i]);
    }
  }

  /// Multiplex-scaled absolute reading; false when the read fails.
  bool read_scaled(std::size_t i, double* out) const {
    if (!valid[i]) return false;
    std::uint64_t buf[3] = {};  // value, time_enabled, time_running
    if (::read(fds[i], buf, sizeof(buf)) != sizeof(buf)) return false;
    double value = static_cast<double>(buf[0]);
    if (buf[2] != 0 && buf[1] != buf[2]) {
      value *= static_cast<double>(buf[1]) / static_cast<double>(buf[2]);
    }
    *out = value;
    return true;
  }
};

ThreadCounters& local_counters() {
  thread_local ThreadCounters counters;
  return counters;
}

#endif  // CBM_HW_HAVE_PERF

std::int64_t delta_field(double begin, double end, bool valid) {
  if (!valid) return -1;
  const double d = end - begin;
  return d > 0.0 ? static_cast<std::int64_t>(std::llround(d)) : 0;
}

}  // namespace

double HwSample::ipc() const {
  if (instructions < 0 || cycles <= 0) return -1.0;
  return static_cast<double>(instructions) / static_cast<double>(cycles);
}

double HwSample::llc_miss_rate() const {
  if (llc_misses < 0 || llc_loads <= 0) return -1.0;
  const double rate =
      static_cast<double>(llc_misses) / static_cast<double>(llc_loads);
  return rate > 1.0 ? 1.0 : rate;  // scaling jitter can nudge past 1
}

double HwSample::stall_fraction() const {
  if (stalled_cycles < 0 || cycles <= 0) return -1.0;
  const double f =
      static_cast<double>(stalled_cycles) / static_cast<double>(cycles);
  return f > 1.0 ? 1.0 : f;
}

void HwSample::accumulate(const HwSample& other) {
  available = available || other.available;
  if (reason.empty()) reason = other.reason;
  const auto acc = [](std::int64_t& into, std::int64_t v) {
    if (v >= 0) into = (into >= 0 ? into : 0) + v;
  };
  acc(cycles, other.cycles);
  acc(instructions, other.instructions);
  acc(llc_loads, other.llc_loads);
  acc(llc_misses, other.llc_misses);
  acc(stalled_cycles, other.stalled_cycles);
  acc(task_clock_ns, other.task_clock_ns);
  acc(page_faults, other.page_faults);
  acc(context_switches, other.context_switches);
}

bool thread_counters_available() {
#ifdef CBM_HW_HAVE_PERF
  if (!sampling_enabled()) return false;
  return local_counters().any;
#else
  return false;
#endif
}

std::string thread_counters_reason() {
#ifdef CBM_HW_HAVE_PERF
  if (!sampling_enabled()) return "";
  return local_counters().reason;
#else
  return "perf_event_open is Linux-only";
#endif
}

HwRegion::HwRegion(bool request) {
  if (!request || !sampling_enabled()) return;
#ifdef CBM_HW_HAVE_PERF
  ThreadCounters& counters = local_counters();
  if (!counters.any) return;  // stop() reports the stored reason
  active_ = true;
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    if (!counters.read_scaled(i, &start_[i])) start_[i] = -1.0;
  }
#endif
}

HwSample HwRegion::stop() {
  HwSample sample;
  if (!sampling_enabled()) {
    sample.reason = "disabled (CBM_PERF=off)";
    return sample;
  }
#ifdef CBM_HW_HAVE_PERF
  ThreadCounters& counters = local_counters();
  if (!active_ || !counters.any) {
    sample.reason = counters.reason.empty()
                        ? "no perf counters opened on this thread"
                        : counters.reason;
    if (sampling_mode() == PerfMode::kForce) {
      throw CbmError("CBM_PERF=force but no perf counter is available: " +
                     sample.reason);
    }
    return sample;
  }
  std::int64_t* const fields[kNumEvents] = {
      &sample.cycles,        &sample.instructions,  &sample.llc_loads,
      &sample.llc_misses,    &sample.stalled_cycles, &sample.task_clock_ns,
      &sample.page_faults,   &sample.context_switches,
  };
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    double end = -1.0;
    const bool ok =
        start_[i] >= 0.0 && counters.read_scaled(i, &end) && end >= 0.0;
    *fields[i] = delta_field(start_[i], end, ok);
    if (ok) sample.available = true;
  }
  if (!sample.available) sample.reason = "perf counter reads failed";
  return sample;
#else
  sample.reason = "perf_event_open is Linux-only";
  if (sampling_mode() == PerfMode::kForce) {
    throw CbmError("CBM_PERF=force but no perf counter is available: " +
                   sample.reason);
  }
  return sample;
#endif
}

ScopedHwSample::ScopedHwSample(const char* name)
    : name_(sampling_enabled() && metrics_enabled() ? name : nullptr),
      region_(/*request=*/name_ != nullptr) {}

ScopedHwSample::~ScopedHwSample() {
  if (name_ == nullptr) return;
  const std::string prefix = std::string("hw.") + name_;
  // Destructors must not throw: report unavailability as a counter instead
  // of letting stop()'s CBM_PERF=force escalation propagate. The bench-rep
  // and probe HwRegions remain the force-enforcement points.
  if (!thread_counters_available()) {
    counter_add((prefix + ".unavailable").c_str(), 1);
    return;
  }
  const HwSample sample = region_.stop();
  if (!sample.available) {
    counter_add((prefix + ".unavailable").c_str(), 1);
    return;
  }
  counter_add((prefix + ".samples").c_str(), 1);
  const auto record = [&](const char* field, std::int64_t v) {
    if (v >= 0) counter_add((prefix + "." + field).c_str(), v);
  };
  record("cycles", sample.cycles);
  record("instructions", sample.instructions);
  record("llc_loads", sample.llc_loads);
  record("llc_misses", sample.llc_misses);
  record("stalled_cycles", sample.stalled_cycles);
  record("task_clock_ns", sample.task_clock_ns);
  record("page_faults", sample.page_faults);
  record("context_switches", sample.context_switches);
  if (sample.ipc() >= 0.0) gauge_set((prefix + ".ipc").c_str(), sample.ipc());
  if (sample.llc_miss_rate() >= 0.0) {
    gauge_set((prefix + ".llc_miss_rate").c_str(), sample.llc_miss_rate());
  }
}

}  // namespace cbm::obs::hw
