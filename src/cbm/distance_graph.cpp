#include "cbm/distance_graph.hpp"

#include <algorithm>

#include "common/parallel.hpp"
#include "obs/obs.hpp"

namespace cbm {

namespace {

/// Enumerates, for one row x, every row y with overlap(x, y) > 0 together
/// with the overlap count, using a dense accumulator + touched list.
/// `at` = transpose of the pattern (CSC view), so at.row(j) lists the rows
/// that contain column j.
template <typename T>
class OverlapScanner {
 public:
  explicit OverlapScanner(index_t n)
      : count_(static_cast<std::size_t>(n), 0) {}

  /// Calls fn(y, overlap) for each y != x with positive overlap.
  template <typename Fn>
  void scan(const CsrMatrix<T>& pattern, const CsrMatrix<T>& at, index_t x,
            Fn&& fn) {
    for (const index_t j : pattern.row_indices(x)) {
      for (const index_t y : at.row_indices(j)) {
        if (y == x) continue;
        if (count_[y]++ == 0) touched_.push_back(y);
      }
    }
    for (const index_t y : touched_) {
      fn(y, count_[y]);
      count_[y] = 0;
    }
    touched_.clear();
  }

 private:
  std::vector<index_t> count_;
  std::vector<index_t> touched_;
};

/// Keeps the `cap` candidates with the smallest weight (best compression).
void apply_cap(std::vector<WeightedEdge>& edges, std::size_t row_begin,
               index_t cap) {
  const std::size_t m = edges.size() - row_begin;
  if (cap <= 0 || m <= static_cast<std::size_t>(cap)) return;
  auto first = edges.begin() + static_cast<std::ptrdiff_t>(row_begin);
  std::nth_element(first, first + cap, edges.end(),
                   [](const WeightedEdge& a, const WeightedEdge& b) {
                     return a.weight < b.weight;
                   });
  edges.resize(row_begin + static_cast<std::size_t>(cap));
}

}  // namespace

template <typename T>
DistanceGraph build_distance_graph(const CsrMatrix<T>& pattern,
                                   const DistanceGraphOptions& options) {
  CBM_CHECK(options.alpha >= 0, "alpha must be nonnegative");
  const index_t n = pattern.rows();

  DistanceGraph g;
  g.num_nodes = n + 1;
  g.root = n;
  // Virtual edges first: tie-breaking in MST/MCA then prefers the root,
  // which is the Property-2 engineering of §IV.
  g.edges.reserve(static_cast<std::size_t>(n) * 2);
  for (index_t x = 0; x < n; ++x) {
    g.edges.push_back({n, x, pattern.row_nnz(x)});
  }

  const CsrMatrix<T> at = pattern.transpose();
  const int threads = max_threads();
  std::vector<std::vector<WeightedEdge>> local(
      static_cast<std::size_t>(threads));

#pragma omp parallel num_threads(threads)
  {
    const int tid = thread_id();
    OverlapScanner<T> scanner(n);
    auto& out = local[tid];
#pragma omp for schedule(dynamic, 64)
    for (index_t x = 0; x < n; ++x) {
      const std::size_t row_begin = out.size();
      const std::int64_t nnz_x = pattern.row_nnz(x);
      scanner.scan(pattern, at, x, [&](index_t y, index_t overlap) {
        const std::int64_t nnz_y = pattern.row_nnz(y);
        // Admission rule (§V-C): keep y→x only when compressing x against y
        // saves MORE than α deltas, i.e.
        //   deltas(x wrt y) − nnz(A_x) = nnz_y − 2·overlap < −α.
        // (The inequality as printed in the paper has the opposite sense,
        // which would make larger α admit more edges — contradicting its own
        // Table II and the "smaller amount of candidate edges" discussion.)
        if (nnz_y - 2 * static_cast<std::int64_t>(overlap) <
            -static_cast<std::int64_t>(options.alpha)) {
          out.push_back({y, x, nnz_x + nnz_y - 2 * overlap});
        }
      });
      apply_cap(out, row_begin, options.max_candidates_per_row);
      // Exercised from inside the OpenMP team on purpose: candidate counts
      // land in this thread's metrics shard without serialising the scan.
      CBM_COUNTER_ADD("cbm.distance_graph.rows_scanned", 1);
    }
  }

  for (auto& chunk : local) {
    g.candidate_edges += chunk.size();
    g.edges.insert(g.edges.end(), chunk.begin(), chunk.end());
  }
  CBM_COUNTER_ADD("cbm.distance_graph.candidate_edges",
                  static_cast<std::int64_t>(g.candidate_edges));
  return g;
}

template <typename T>
DistanceGraph build_full_distance_graph(const CsrMatrix<T>& pattern) {
  const index_t n = pattern.rows();

  DistanceGraph g;
  g.num_nodes = n + 1;
  g.root = n;
  for (index_t x = 0; x < n; ++x) {
    g.edges.push_back({n, x, pattern.row_nnz(x)});
  }

  const CsrMatrix<T> at = pattern.transpose();
  const int threads = max_threads();
  std::vector<std::vector<WeightedEdge>> local(
      static_cast<std::size_t>(threads));

#pragma omp parallel num_threads(threads)
  {
    const int tid = thread_id();
    OverlapScanner<T> scanner(n);
    auto& out = local[tid];
#pragma omp for schedule(dynamic, 64)
    for (index_t x = 0; x < n; ++x) {
      const std::int64_t nnz_x = pattern.row_nnz(x);
      scanner.scan(pattern, at, x, [&](index_t y, index_t overlap) {
        if (y < x) return;  // one undirected edge per pair
        const std::int64_t nnz_y = pattern.row_nnz(y);
        out.push_back({y, x, nnz_x + nnz_y - 2 * overlap});
      });
    }
  }

  for (auto& chunk : local) {
    g.candidate_edges += chunk.size();
    g.edges.insert(g.edges.end(), chunk.begin(), chunk.end());
  }
  return g;
}

template DistanceGraph build_distance_graph<float>(const CsrMatrix<float>&,
                                                   const DistanceGraphOptions&);
template DistanceGraph build_distance_graph<double>(
    const CsrMatrix<double>&, const DistanceGraphOptions&);
template DistanceGraph build_full_distance_graph<float>(
    const CsrMatrix<float>&);
template DistanceGraph build_full_distance_graph<double>(
    const CsrMatrix<double>&);

}  // namespace cbm
