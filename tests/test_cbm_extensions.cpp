// Tests for the CBM extensions beyond the paper's core experiments:
// matrix-vector products (§IV's native formulation), the two-sided D₁·A·D₂
// generalisation (§V-A), and rectangular (m×n) compression, which the
// partitioned format builds on.
#include <gtest/gtest.h>

#include "cbm/cbm_matrix.hpp"
#include "dense/ops.hpp"
#include "sparse/scale.hpp"
#include "sparse/spmm.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

class SpmvCase : public ::testing::TestWithParam<int> {};

TEST_P(SpmvCase, MultiplyVectorMatchesCsrSpmv) {
  const int alpha = GetParam();
  const index_t n = 80;
  const auto a = test::clustered_binary(n, 6, 10, 2, 500 + alpha);
  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = alpha});

  Rng rng(7);
  std::vector<float> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_float();
  std::vector<float> y_cbm(x.size()), y_csr(x.size());
  cbm.multiply_vector(std::span<const float>(x), std::span<float>(y_cbm));
  csr_spmv(a, std::span<const float>(x), std::span<float>(y_csr));
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y_cbm[i], y_csr[i], 1e-3f) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, SpmvCase, ::testing::Values(0, 2, 8, 32));

TEST(Spmv, AllKindsAndSchedules) {
  const index_t n = 60;
  const auto a = test::clustered_binary(n, 5, 9, 2, 61);
  const auto d = test::random_diagonal<float>(n, 62);
  Rng rng(63);
  std::vector<float> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_float();

  for (const CbmKind kind :
       {CbmKind::kPlain, CbmKind::kColumnScaled, CbmKind::kSymScaled}) {
    CsrMatrix<float> baseline = a;
    if (kind == CbmKind::kColumnScaled) {
      baseline = scale_columns(a, std::span<const float>(d));
    }
    if (kind == CbmKind::kSymScaled) {
      baseline = scale_both(a, std::span<const float>(d),
                            std::span<const float>(d));
    }
    const auto cbm =
        kind == CbmKind::kPlain
            ? CbmMatrix<float>::compress(a)
            : CbmMatrix<float>::compress_scaled(a, std::span<const float>(d),
                                                kind);
    std::vector<float> y_csr(x.size());
    csr_spmv(baseline, std::span<const float>(x), std::span<float>(y_csr));
    for (const UpdateSchedule schedule :
         {UpdateSchedule::kSequential, UpdateSchedule::kBranchDynamic,
          UpdateSchedule::kBranchStatic}) {
      std::vector<float> y(x.size());
      cbm.multiply_vector(std::span<const float>(x), std::span<float>(y),
                          schedule);
      for (index_t i = 0; i < n; ++i) {
        EXPECT_NEAR(y[i], y_csr[i], 1e-3f)
            << "kind " << static_cast<int>(kind) << " row " << i;
      }
    }
  }
}

TEST(Spmv, LengthValidation) {
  const auto a = test::clustered_binary(10, 2, 4, 1, 64);
  const auto cbm = CbmMatrix<float>::compress(a);
  std::vector<float> x(9), y(10);
  EXPECT_THROW(
      cbm.multiply_vector(std::span<const float>(x), std::span<float>(y)),
      CbmError);
  std::vector<float> x_ok(10), y_bad(11);
  EXPECT_THROW(cbm.multiply_vector(std::span<const float>(x_ok),
                                   std::span<float>(y_bad)),
               CbmError);
}

TEST(TwoSided, MatchesExplicitScaling) {
  const index_t n = 70;
  const auto a = test::clustered_binary(n, 6, 9, 2, 71);
  const auto dl = test::random_diagonal<float>(n, 72);
  const auto dr = test::random_diagonal<float>(n, 73);
  const auto baseline =
      scale_both(a, std::span<const float>(dl), std::span<const float>(dr));

  const auto cbm = CbmMatrix<float>::compress_two_sided(
      a, std::span<const float>(dl), std::span<const float>(dr),
      {.alpha = 2});
  EXPECT_EQ(cbm.kind(), CbmKind::kTwoSided);

  const auto b = test::random_dense<float>(n, 11, 74);
  DenseMatrix<float> c_cbm(n, 11), c_csr(n, 11);
  cbm.multiply(b, c_cbm);
  csr_spmm(baseline, b, c_csr);
  EXPECT_TRUE(allclose(c_cbm, c_csr, 1e-4, 1e-5));

  // Vector path too.
  Rng rng(75);
  std::vector<float> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next_float();
  std::vector<float> y_cbm(x.size()), y_csr(x.size());
  cbm.multiply_vector(std::span<const float>(x), std::span<float>(y_cbm));
  csr_spmv(baseline, std::span<const float>(x), std::span<float>(y_csr));
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(y_cbm[i], y_csr[i], 1e-3f);
}

TEST(TwoSided, ReducesToSymWhenDiagonalsEqual) {
  const index_t n = 40;
  const auto a = test::clustered_binary(n, 4, 8, 2, 81);
  const auto d = test::random_diagonal<float>(n, 82);
  const auto sym = CbmMatrix<float>::compress_scaled(
      a, std::span<const float>(d), CbmKind::kSymScaled);
  const auto two = CbmMatrix<float>::compress_two_sided(
      a, std::span<const float>(d), std::span<const float>(d));
  const auto b = test::random_dense<float>(n, 7, 83);
  DenseMatrix<float> c_sym(n, 7), c_two(n, 7);
  sym.multiply(b, c_sym);
  two.multiply(b, c_two);
  EXPECT_EQ(max_abs_diff(c_sym, c_two), 0.0);
}

TEST(TwoSided, Validation) {
  const auto a = test::clustered_binary(10, 2, 4, 1, 84);
  const std::vector<float> ok(10, 1.0f), bad(9, 1.0f);
  const std::vector<float> with_zero = [] {
    std::vector<float> v(10, 1.0f);
    v[3] = 0.0f;
    return v;
  }();
  EXPECT_THROW(CbmMatrix<float>::compress_two_sided(
                   a, std::span<const float>(bad), std::span<const float>(ok)),
               CbmError);
  EXPECT_THROW(CbmMatrix<float>::compress_two_sided(
                   a, std::span<const float>(ok), std::span<const float>(bad)),
               CbmError);
  // Zero entries are fatal on the left (update divides), fine on the right.
  EXPECT_THROW(
      CbmMatrix<float>::compress_two_sided(a, std::span<const float>(with_zero),
                                           std::span<const float>(ok)),
      CbmError);
  EXPECT_NO_THROW(CbmMatrix<float>::compress_two_sided(
      a, std::span<const float>(ok), std::span<const float>(with_zero)));
}

TEST(Rectangular, CompressAndMultiply) {
  // 30×50 binary matrix with duplicate-heavy rows.
  const index_t rows = 30, cols = 50;
  Rng rng(91);
  CooMatrix<float> coo;
  coo.rows = rows;
  coo.cols = cols;
  for (index_t i = 0; i < rows; ++i) {
    const std::uint64_t group_seed = 1000 + i % 3;  // 3 row templates
    Rng row_rng(group_seed);
    for (int k = 0; k < 12; ++k) {
      coo.push(i, static_cast<index_t>(row_rng.next_below(cols)), 1.0f);
    }
    // one private column per row
    coo.push(i, static_cast<index_t>(rng.next_below(cols)), 1.0f);
  }
  // from_coo sums duplicates → re-binarise.
  auto tmp = CsrMatrix<float>::from_coo(coo);
  std::vector<float> ones(tmp.values().begin(), tmp.values().end());
  for (auto& v : ones) v = 1.0f;
  const CsrMatrix<float> a(rows, cols,
                           {tmp.indptr().begin(), tmp.indptr().end()},
                           {tmp.indices().begin(), tmp.indices().end()},
                           std::move(ones));

  CbmStats stats;
  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 0}, &stats);
  EXPECT_LE(stats.total_deltas, stats.source_nnz);  // Property 1 holds

  const auto b = test::random_dense<float>(cols, 6, 92);
  DenseMatrix<float> c_cbm(rows, 6), c_csr(rows, 6);
  cbm.multiply(b, c_cbm);
  csr_spmm(a, b, c_csr);
  EXPECT_TRUE(allclose(c_cbm, c_csr, 1e-4, 1e-5));

  // Column-scaled rectangular: diagonal length = cols.
  const auto d = test::random_diagonal<float>(cols, 93);
  const auto scaled = CbmMatrix<float>::compress_scaled(
      a, std::span<const float>(d), CbmKind::kColumnScaled);
  const auto baseline = scale_columns(a, std::span<const float>(d));
  DenseMatrix<float> c2_cbm(rows, 6), c2_csr(rows, 6);
  scaled.multiply(b, c2_cbm);
  csr_spmm(baseline, b, c2_csr);
  EXPECT_TRUE(allclose(c2_cbm, c2_csr, 1e-4, 1e-5));
}

TEST(Rectangular, SymScaledStillRequiresSquare) {
  CooMatrix<float> coo;
  coo.rows = 3;
  coo.cols = 4;
  coo.push(0, 1, 1.0f);
  const auto a = CsrMatrix<float>::from_coo(coo);
  const std::vector<float> d(3, 1.0f);
  EXPECT_THROW(CbmMatrix<float>::compress_scaled(
                   a, std::span<const float>(d), CbmKind::kSymScaled),
               CbmError);
}

TEST(Materialize, RoundTripsPlainMatrix) {
  const auto a = test::clustered_binary(60, 5, 9, 2, 97);
  for (const int alpha : {0, 4, 32}) {
    const auto cbm = CbmMatrix<float>::compress(a, {.alpha = alpha});
    EXPECT_EQ(cbm.materialize(), a) << "alpha=" << alpha;
  }
}

TEST(Materialize, RoundTripsScaledKinds) {
  const index_t n = 45;
  const auto a = test::clustered_binary(n, 4, 8, 2, 98);
  const auto dl = test::random_diagonal<float>(n, 99);
  const auto dr = test::random_diagonal<float>(n, 100);
  const std::span<const float> l(dl), r(dr);
  {
    const auto cbm =
        CbmMatrix<float>::compress_scaled(a, r, CbmKind::kColumnScaled);
    const auto back = cbm.materialize();
    const auto expect = scale_columns(a, r);
    ASSERT_EQ(back.nnz(), expect.nnz());
    for (index_t i = 0; i < n; ++i) {
      for (const index_t j : a.row_indices(i)) {
        EXPECT_FLOAT_EQ(back.at(i, j), expect.at(i, j));
      }
    }
  }
  {
    const auto cbm = CbmMatrix<float>::compress_two_sided(a, l, r);
    const auto back = cbm.materialize();
    const auto expect = scale_both(a, l, r);
    for (index_t i = 0; i < n; ++i) {
      for (const index_t j : a.row_indices(i)) {
        EXPECT_NEAR(back.at(i, j), expect.at(i, j), 1e-5f);
      }
    }
  }
}

TEST(Materialize, RectangularRoundTrip) {
  CooMatrix<float> coo;
  coo.rows = 6;
  coo.cols = 9;
  for (const auto [i, j] : std::vector<std::pair<index_t, index_t>>{
           {0, 1}, {0, 7}, {1, 1}, {1, 7}, {2, 1}, {2, 7}, {2, 8}, {5, 0}}) {
    coo.push(i, j, 1.0f);
  }
  const auto a = CsrMatrix<float>::from_coo(coo);
  const auto cbm = CbmMatrix<float>::compress(a);
  EXPECT_EQ(cbm.materialize(), a);
}

TEST(FromParts, RoundTripsAndValidates) {
  const auto a = test::clustered_binary(25, 3, 7, 2, 95);
  const auto original = CbmMatrix<float>::compress(a, {.alpha = 1});
  std::vector<index_t> parent(25);
  for (index_t x = 0; x < 25; ++x) parent[x] = original.tree().parent(x);
  auto rebuilt = CbmMatrix<float>::from_parts(
      original.kind(), CompressionTree::from_parents(parent),
      original.delta_matrix(), {});
  const auto b = test::random_dense<float>(25, 5, 96);
  DenseMatrix<float> c1(25, 5), c2(25, 5);
  original.multiply(b, c1);
  rebuilt.multiply(b, c2);
  EXPECT_EQ(max_abs_diff(c1, c2), 0.0);

  // Mismatched tree/delta rejected.
  EXPECT_THROW(CbmMatrix<float>::from_parts(
                   CbmKind::kPlain, CompressionTree::from_parents({1, 2, 2}),
                   original.delta_matrix(), {}),
               CbmError);
  // Row-scaled kind without diagonal rejected.
  EXPECT_THROW(
      CbmMatrix<float>::from_parts(CbmKind::kSymScaled,
                                   CompressionTree::from_parents(
                                       std::vector<index_t>(parent)),
                                   original.delta_matrix(), {}),
      CbmError);
}

}  // namespace
}  // namespace cbm
