// Tests for the GCN training extension: numerical gradient checks, loss
// descent, and CSR/CBM training equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "dense/ops.hpp"
#include "gnn/train.hpp"
#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  DenseMatrix<float> logits(4, 3);  // all zeros → uniform softmax
  const std::vector<index_t> labels = {0, 1, 2, 0};
  DenseMatrix<float> grad(4, 3);
  const double loss =
      softmax_cross_entropy(logits, std::span<const index_t>(labels), grad);
  EXPECT_NEAR(loss, std::log(3.0), 1e-6);
  // Gradient: (1/3 − onehot)/n.
  EXPECT_NEAR(grad(0, 0), (1.0 / 3.0 - 1.0) / 4.0, 1e-6);
  EXPECT_NEAR(grad(0, 1), (1.0 / 3.0) / 4.0, 1e-6);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  auto logits = test::random_dense<float>(6, 5, 11);
  const std::vector<index_t> labels = {0, 4, 2, 1, 3, 0};
  DenseMatrix<float> grad(6, 5);
  softmax_cross_entropy(logits, std::span<const index_t>(labels), grad);
  for (index_t i = 0; i < 6; ++i) {
    float sum = 0.0f;
    for (index_t j = 0; j < 5; ++j) sum += grad(i, j);
    EXPECT_NEAR(sum, 0.0f, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, LabelValidation) {
  DenseMatrix<float> logits(2, 3), grad(2, 3);
  const std::vector<index_t> bad = {0, 3};
  EXPECT_THROW(
      softmax_cross_entropy(logits, std::span<const index_t>(bad), grad),
      CbmError);
}

/// Numerical gradient check in double precision on a tiny graph.
TEST(GcnTrainer, GradientsMatchFiniteDifferences) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});
  CsrAdjacency<double> adj(gcn_normalized_adjacency<double>(g));
  const auto x = test::random_dense<double>(5, 3, 21);
  const std::vector<index_t> labels = {0, 1, 0, 1, 0};

  Gcn2<double> model(3, 4, 2, 77);
  GcnTrainer<double> trainer(model, 5);
  // Step with lr = 0 → gradients computed, weights untouched.
  trainer.step(adj, x, std::span<const index_t>(labels), 0.0);

  // Loss as a function of the weights (forward only).
  auto loss_at = [&]() {
    Gcn2<double>::Workspace ws(5, 4, 2);
    DenseMatrix<double> out(5, 2);
    model.forward(adj, x, ws, out);
    DenseMatrix<double> scratch(5, 2);
    return softmax_cross_entropy(out, std::span<const index_t>(labels),
                                 scratch);
  };

  const double eps = 1e-6;
  // Check a sample of entries in both weight matrices.
  for (const auto [r, c] : {std::pair<index_t, index_t>{0, 0}, {1, 2}, {2, 3}}) {
    auto& w0 = model.layer0_mut().weight_mut();
    const double save = w0(r, c);
    w0(r, c) = save + eps;
    const double up = loss_at();
    w0(r, c) = save - eps;
    const double down = loss_at();
    w0(r, c) = save;
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(trainer.grad_w0()(r, c), numeric, 1e-4)
        << "w0(" << r << "," << c << ")";
  }
  for (const auto [r, c] : {std::pair<index_t, index_t>{0, 0}, {3, 1}}) {
    auto& w1 = model.layer1_mut().weight_mut();
    const double save = w1(r, c);
    w1(r, c) = save + eps;
    const double up = loss_at();
    w1(r, c) = save - eps;
    const double down = loss_at();
    w1(r, c) = save;
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(trainer.grad_w1()(r, c), numeric, 1e-4)
        << "w1(" << r << "," << c << ")";
  }
}

TEST(GcnTrainer, LossDecreasesOverEpochs) {
  // Homophilous node-classification task: labels constant along chains, so
  // the GCN's neighborhood smoothing preserves separability and plain SGD
  // must make steady progress.
  const index_t n = 60;
  std::vector<std::pair<index_t, index_t>> edges;
  for (index_t i = 0; i + 3 < n; ++i) edges.emplace_back(i, i + 3);
  const Graph g = Graph::from_edges(n, edges);
  CsrAdjacency<float> adj(gcn_normalized_adjacency<float>(g));
  const auto x = test::random_dense<float>(n, 8, 32);
  std::vector<index_t> labels(n);
  for (index_t i = 0; i < n; ++i) labels[i] = i % 3;

  Gcn2<float> model(8, 10, 3, 33);
  GcnTrainer<float> trainer(model, n);
  const double first =
      trainer.step(adj, x, std::span<const index_t>(labels), 0.5f);
  double last = first;
  for (int epoch = 0; epoch < 300; ++epoch) {
    last = trainer.step(adj, x, std::span<const index_t>(labels), 0.5f);
  }
  EXPECT_LT(last, first * 0.5) << "training failed to reduce loss";
}

TEST(GcnTrainer, CbmAndCsrTrainingTrajectoriesAgree) {
  const Graph g = clique_union(
      {.num_nodes = 50, .num_cliques = 70, .clique_min = 3, .clique_max = 6,
       .reuse_prob = 0.7, .size_exponent = 2.0},
      41);
  CsrAdjacency<float> csr(gcn_normalized_adjacency<float>(g));
  const auto norm = gcn_normalization<float>(g);
  CbmAdjacency<float> cbm(CbmMatrix<float>::compress_scaled(
      norm.a_plus_i, std::span<const float>(norm.dinv_sqrt),
      CbmKind::kSymScaled));

  const auto x = test::random_dense<float>(50, 6, 42);
  std::vector<index_t> labels(50);
  for (index_t i = 0; i < 50; ++i) labels[i] = i % 4;

  Gcn2<float> model_csr(6, 8, 4, 43), model_cbm(6, 8, 4, 43);
  GcnTrainer<float> t_csr(model_csr, 50), t_cbm(model_cbm, 50);
  for (int epoch = 0; epoch < 5; ++epoch) {
    const double l_csr =
        t_csr.step(csr, x, std::span<const index_t>(labels), 0.2f);
    const double l_cbm =
        t_cbm.step(cbm, x, std::span<const index_t>(labels), 0.2f);
    EXPECT_NEAR(l_cbm, l_csr, 1e-4) << "epoch " << epoch;
  }
  EXPECT_TRUE(allclose(model_cbm.layer0().weight(), model_csr.layer0().weight(),
                       1e-3, 1e-4));
}

}  // namespace
}  // namespace cbm
