#include "cbm/spmm_cbm.hpp"

#include <algorithm>

#include "cbm/update_kernels.hpp"
#include "common/envknobs.hpp"
#include "common/parallel.hpp"
#include "exec/task_graph.hpp"
#include "obs/obs.hpp"

namespace cbm {

namespace {

constexpr const char* schedule_counter_name(UpdateSchedule schedule) {
  switch (schedule) {
    case UpdateSchedule::kSequential: return "cbm.update.calls.sequential";
    case UpdateSchedule::kBranchDynamic:
      return "cbm.update.calls.branch_dynamic";
    case UpdateSchedule::kBranchStatic:
      return "cbm.update.calls.branch_static";
    case UpdateSchedule::kColumnSplit:
      return "cbm.update.calls.column_split";
    case UpdateSchedule::kTaskGraph:
      return "cbm.update.calls.task_graph";
  }
  return "cbm.update.calls.unknown";
}

/// Per-call counters behind the §V-B scheduling discussion: how many branch
/// work units a call has and how skewed they are (max branch size over mean
/// branch size — 1.0 is perfectly balanced). Only runs when metrics are on;
/// the O(#branches) sweep never taxes an uninstrumented multiply.
void record_update_metrics(const CompressionTree& tree,
                           UpdateSchedule schedule) {
  if (!obs::metrics_enabled()) return;
  const auto& branches = tree.branches();
  const std::size_t nb = branches.size();
  std::size_t max_branch = 0;
  std::size_t singletons = 0;
  std::size_t total = 0;
  for (const auto& branch : branches) {
    max_branch = std::max(max_branch, branch.size());
    singletons += branch.size() == 1 ? 1 : 0;
    total += branch.size();
  }
  obs::counter_add("cbm.update.calls", 1);
  obs::counter_add(schedule_counter_name(schedule), 1);
  obs::counter_add("cbm.update.branches", static_cast<std::int64_t>(nb));
  obs::counter_add("cbm.update.singleton_branches",
                   static_cast<std::int64_t>(singletons));
  obs::counter_add("cbm.update.row_ops",
                   static_cast<std::int64_t>(tree.num_compressed_rows()));
  if (nb > 0 && total > 0) {
    obs::gauge_set("cbm.update.branch_imbalance",
                   static_cast<double>(max_branch) *
                       static_cast<double>(nb) / static_cast<double>(total));
  }
}

/// Drives `apply(x)` over the tree under a branch-based schedule; the row
/// and vector kernels share this traversal logic. kColumnSplit is handled by
/// the matrix kernel directly (it needs the column dimension).
template <typename Apply>
void run_update(const CompressionTree& tree, bool row_scaled,
                UpdateSchedule schedule, Apply&& apply) {
  switch (schedule) {
    case UpdateSchedule::kSequential: {
      for (const index_t x : tree.topological_order()) apply(x);
      break;
    }
    case UpdateSchedule::kBranchDynamic: {
      const auto& branches = tree.branches();
      const auto nb = static_cast<std::int64_t>(branches.size());
#pragma omp parallel for schedule(dynamic)
      for (std::int64_t b = 0; b < nb; ++b) {
        // Unscaled singleton branches are no-ops; skip without touching c.
        if (!row_scaled && branches[b].size() == 1) continue;
        for (const index_t x : branches[b]) apply(x);
      }
      break;
    }
    case UpdateSchedule::kBranchStatic: {
      const auto& branches = tree.branches();
      const auto nb = static_cast<std::int64_t>(branches.size());
#pragma omp parallel for schedule(static)
      for (std::int64_t b = 0; b < nb; ++b) {
        if (!row_scaled && branches[b].size() == 1) continue;
        for (const index_t x : branches[b]) apply(x);
      }
      break;
    }
    case UpdateSchedule::kColumnSplit:
    case UpdateSchedule::kTaskGraph: {
      // Only reachable from the vector kernel (p = 1), where neither a
      // column split nor per-block task spawning can pay for itself; fall
      // back to the sequential sweep.
      for (const index_t x : tree.topological_order()) apply(x);
      break;
    }
  }
}

}  // namespace

UpdateTaskBlocks cbm_update_task_blocks(const CompressionTree& tree,
                                        bool row_scaled, index_t grain) {
  CBM_CHECK(grain > 0, "update task blocks: grain must be positive");
  const index_t n = tree.num_rows();
  const index_t vroot = tree.virtual_root();

  // Children adjacency (CSR over parents; the virtual root's children are
  // the DFS seeds).
  std::vector<index_t> child_off(static_cast<std::size_t>(n) + 2, 0);
  for (index_t x = 0; x < n; ++x) ++child_off[tree.parent(x) + 1];
  for (std::size_t i = 1; i < child_off.size(); ++i) {
    child_off[i] += child_off[i - 1];
  }
  std::vector<index_t> child(static_cast<std::size_t>(n));
  {
    std::vector<index_t> cursor(child_off.begin(), child_off.end() - 1);
    for (index_t x = 0; x < n; ++x) child[cursor[tree.parent(x)]++] = x;
  }

  UpdateTaskBlocks blocks;
  const auto grain_sz = static_cast<std::size_t>(grain);
  // Depth-first sweep. An item's block is where its tree parent landed
  // (kNoBlock for children of the virtual root, which depend on nothing);
  // it joins that block while there is room, else it opens a new block
  // depending on the parent's — so one overflowing subtree fans out into a
  // chain/tree of blocks mirroring its own shape.
  constexpr std::int32_t kNoBlock = -1;
  struct Item {
    index_t node;
    std::int32_t block;
  };
  std::vector<Item> stack;
  std::int32_t root_block = kNoBlock;  // rolling block shared by root rows
  for (index_t r = child_off[vroot]; r < child_off[vroot + 1]; ++r) {
    const index_t x = child[r];
    // An unscaled singleton branch is a no-op for the update stage.
    if (!row_scaled && child_off[x] == child_off[x + 1]) continue;
    stack.push_back(Item{x, kNoBlock});
  }
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    std::int32_t blk = item.block;
    if (blk == kNoBlock) {
      // Root rows share a rolling block: no dependencies between them, and
      // packing keeps singleton-heavy trees from spawning per-row tasks.
      if (root_block == kNoBlock ||
          blocks.rows[static_cast<std::size_t>(root_block)].size() >=
              grain_sz) {
        root_block = static_cast<std::int32_t>(blocks.rows.size());
        blocks.rows.emplace_back();
      }
      blk = root_block;
    } else if (blocks.rows[static_cast<std::size_t>(blk)].size() >=
               grain_sz) {
      const auto fresh = static_cast<std::int32_t>(blocks.rows.size());
      blocks.rows.emplace_back();
      blocks.edges.emplace_back(blk, fresh);
      blk = fresh;
    }
    blocks.rows[static_cast<std::size_t>(blk)].push_back(item.node);
    for (index_t k = child_off[item.node];
         k < child_off[item.node + 1]; ++k) {
      stack.push_back(Item{child[k], blk});
    }
  }
  return blocks;
}

template <typename T>
void cbm_update_stage(const CompressionTree& tree, CbmKind kind,
                      std::span<const T> diag, DenseMatrix<T>& c,
                      UpdateSchedule schedule) {
  CBM_CHECK(c.rows() == tree.num_rows(), "update stage: row count mismatch");
  CBM_CHECK(!cbm_kind_row_scaled(kind) ||
                diag.size() == static_cast<std::size_t>(tree.num_rows()),
            "update stage: missing diagonal for row-scaled kind");
  CBM_SPAN("cbm.update_stage");
  record_update_metrics(tree, schedule);
  if (schedule == UpdateSchedule::kTaskGraph) {
    // Dependency-driven sweep: subtree row blocks (× column panels) run as
    // tasks the moment their parent block finishes — one parallel region,
    // no level-wise barriers, and parallelism from the tree shape itself
    // rather than only the virtual root's fan-out.
    const bool row_scaled = cbm_kind_row_scaled(kind);
    const UpdateTaskBlocks blocks =
        cbm_update_task_blocks(tree, row_scaled, env_exec_grain());
    if (blocks.rows.empty()) return;
    const auto cols = static_cast<std::size_t>(c.cols());
    const std::size_t nblocks = blocks.rows.size();
    // Too few blocks (shallow tree or a coarse grain) cannot feed the team;
    // widen with column panels. Panels never mix columns, so panel p of a
    // block depends only on panel p of its parent block.
    std::size_t npanels = 1;
    const auto want = static_cast<std::size_t>(4 * max_threads());
    if (nblocks < want && cols >= 16) {
      npanels = std::max<std::size_t>(
          1, std::min((want + nblocks - 1) / nblocks, cols / 8));
    }
    exec::TaskGraph graph;
    for (std::size_t bi = 0; bi < nblocks; ++bi) {
      const std::vector<index_t>* rows = &blocks.rows[bi];
      for (std::size_t pi = 0; pi < npanels; ++pi) {
        const std::size_t c0 = cols * pi / npanels;
        const std::size_t len = cols * (pi + 1) / npanels - c0;
        graph.add_task([&tree, kind, diag, &c, rows, c0, len] {
          for (const index_t x : *rows) {
            detail::update_row(tree, kind, diag, c, x, c0, len);
          }
        });
      }
    }
    for (const auto& [parent, block] : blocks.edges) {
      for (std::size_t pi = 0; pi < npanels; ++pi) {
        graph.add_edge(static_cast<exec::TaskGraph::TaskId>(
                           static_cast<std::size_t>(parent) * npanels + pi),
                       static_cast<exec::TaskGraph::TaskId>(
                           static_cast<std::size_t>(block) * npanels + pi));
      }
    }
    graph.run();
    return;
  }
  if (schedule == UpdateSchedule::kColumnSplit) {
    // Each thread sweeps the entire tree restricted to one column slice:
    // no cross-thread dependencies (updates never mix columns), and the
    // available parallelism is p, not the root fan-out.
    const auto cols = static_cast<std::size_t>(c.cols());
#pragma omp parallel
    {
      const auto nth = static_cast<std::size_t>(team_size());
      const auto tid = static_cast<std::size_t>(thread_id());
      const std::size_t c0 = cols * tid / nth;
      const std::size_t c1 = cols * (tid + 1) / nth;
      if (c1 > c0) {
        for (const index_t x : tree.topological_order()) {
          detail::update_row(tree, kind, diag, c, x, c0, c1 - c0);
        }
      }
    }
    return;
  }
  const auto cols = static_cast<std::size_t>(c.cols());
  run_update(tree, cbm_kind_row_scaled(kind), schedule, [&](index_t x) {
    detail::update_row(tree, kind, diag, c, x, 0, cols);
  });
}

template <typename T>
void cbm_update_stage_vector(const CompressionTree& tree, CbmKind kind,
                             std::span<const T> diag, std::span<T> y,
                             UpdateSchedule schedule) {
  CBM_CHECK(y.size() == static_cast<std::size_t>(tree.num_rows()),
            "update stage: vector length mismatch");
  CBM_CHECK(!cbm_kind_row_scaled(kind) ||
                diag.size() == static_cast<std::size_t>(tree.num_rows()),
            "update stage: missing diagonal for row-scaled kind");
  CBM_SPAN("cbm.update_stage");
  record_update_metrics(tree, schedule);
  run_update(tree, cbm_kind_row_scaled(kind), schedule,
             [&](index_t x) { detail::update_entry(tree, kind, diag, y, x); });
}

index_t cbm_update_row_ops(const CompressionTree& tree) {
  return tree.num_compressed_rows();
}

template void cbm_update_stage<float>(const CompressionTree&, CbmKind,
                                      std::span<const float>,
                                      DenseMatrix<float>&, UpdateSchedule);
template void cbm_update_stage<double>(const CompressionTree&, CbmKind,
                                       std::span<const double>,
                                       DenseMatrix<double>&, UpdateSchedule);
template void cbm_update_stage_vector<float>(const CompressionTree&, CbmKind,
                                             std::span<const float>,
                                             std::span<float>,
                                             UpdateSchedule);
template void cbm_update_stage_vector<double>(const CompressionTree&, CbmKind,
                                              std::span<const double>,
                                              std::span<double>,
                                              UpdateSchedule);

}  // namespace cbm
