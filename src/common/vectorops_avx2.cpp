// AVX2 + FMA backend. This TU is compiled with -mavx2 -mfma regardless of
// the build's baseline -march; its symbols are only ever called after the
// dispatcher has verified CPU support, so no illegal instruction can leak
// onto an older host.
#include <immintrin.h>

#include "common/vectorops_backends.hpp"
#include "common/vectorops_simd_impl.hpp"

namespace cbm::simd::backend {

namespace {

struct TraitsF32 {
  using V = __m256;
  static constexpr std::size_t kLanes = 8;
  static constexpr bool kHasMasks = false;
  static V load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, V v) { _mm256_storeu_ps(p, v); }
  static V set1(float a) { return _mm256_set1_ps(a); }
  static V zero() { return _mm256_setzero_ps(); }
  static V add(V a, V b) { return _mm256_add_ps(a, b); }
  static V mul(V a, V b) { return _mm256_mul_ps(a, b); }
  static V fmadd(V a, V b, V c) { return _mm256_fmadd_ps(a, b, c); }
  static float reduce_add(V v) {
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    return _mm_cvtss_f32(s);
  }
  static void prefetch(const void* p) {
    _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
  }
};

struct TraitsF64 {
  using V = __m256d;
  static constexpr std::size_t kLanes = 4;
  static constexpr bool kHasMasks = false;
  static V load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, V v) { _mm256_storeu_pd(p, v); }
  static V set1(double a) { return _mm256_set1_pd(a); }
  static V zero() { return _mm256_setzero_pd(); }
  static V add(V a, V b) { return _mm256_add_pd(a, b); }
  static V mul(V a, V b) { return _mm256_mul_pd(a, b); }
  static V fmadd(V a, V b, V c) { return _mm256_fmadd_pd(a, b, c); }
  static double reduce_add(V v) {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    __m128d s = _mm_add_pd(lo, hi);
    s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
    return _mm_cvtsd_f64(s);
  }
  static void prefetch(const void* p) {
    _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
  }
};

const KernelTable<float> kF32 = make_table<float, TraitsF32, KernelTable>();
const KernelTable<double> kF64 = make_table<double, TraitsF64, KernelTable>();

}  // namespace

const KernelTable<float>& avx2_f32() { return kF32; }
const KernelTable<double>& avx2_f64() { return kF64; }

}  // namespace cbm::simd::backend
