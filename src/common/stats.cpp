#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace cbm {

std::uint64_t RunStats::next_u64() {
  // SplitMix64 step: deterministic, seeded identically in every RunStats, so
  // two equal sample streams always produce the same reservoir.
  lcg_ += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = lcg_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void RunStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  // Algorithm-R reservoir for the median.
  if (samples_.size() < kReservoirCap) {
    samples_.push_back(x);
  } else {
    const std::uint64_t j = next_u64() % n_;
    if (j < kReservoirCap) samples_[j] = x;
  }
}

double RunStats::mean() const { return n_ ? mean_ : 0.0; }

double RunStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double RunStats::min() const { return min_; }
double RunStats::max() const { return max_; }

double RunStats::median() const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  const std::size_t mid = sorted.size() / 2;
  std::nth_element(sorted.begin(), sorted.begin() + mid, sorted.end());
  const double upper = sorted[mid];
  if (sorted.size() % 2 == 1) return upper;
  const double lower =
      *std::max_element(sorted.begin(), sorted.begin() + mid);
  return 0.5 * (lower + upper);
}

void RunStats::merge(const RunStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ += delta * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
  // Concatenate reservoirs; past the cap, evict deterministically.
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  while (samples_.size() > kReservoirCap) {
    const std::uint64_t j = next_u64() % samples_.size();
    samples_[j] = samples_.back();
    samples_.pop_back();
  }
}

}  // namespace cbm
