// Matrix Market I/O tests.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/io_mm.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

TEST(MatrixMarket, ReadGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 2\n"
      "1 2 1.5\n"
      "3 1 -2.0\n");
  const auto coo = read_matrix_market<float>(in);
  EXPECT_EQ(coo.rows, 3);
  EXPECT_EQ(coo.cols, 3);
  ASSERT_EQ(coo.nnz(), 2u);
  const auto m = CsrMatrix<float>::from_coo(coo);
  EXPECT_FLOAT_EQ(m.at(0, 1), 1.5f);
  EXPECT_FLOAT_EQ(m.at(2, 0), -2.0f);
}

TEST(MatrixMarket, ReadPatternDefaultsToOne) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  const auto m = CsrMatrix<float>::from_coo(read_matrix_market<float>(in));
  EXPECT_TRUE(m.is_binary());
  EXPECT_EQ(m.nnz(), 2);
}

TEST(MatrixMarket, SymmetricExpandsBothTriangles) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n");
  const auto m = CsrMatrix<float>::from_coo(read_matrix_market<float>(in));
  EXPECT_FLOAT_EQ(m.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.at(0, 1), 1.0f);  // mirrored
  EXPECT_FLOAT_EQ(m.at(2, 2), 1.0f);  // diagonal stored once
  EXPECT_EQ(m.nnz(), 3);
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  const auto a = test::random_binary(25, 0.15, 21);
  std::stringstream buf;
  write_matrix_market(buf, a.to_coo());
  const auto back =
      CsrMatrix<float>::from_coo(read_matrix_market<float>(buf));
  EXPECT_EQ(back, a);
}

TEST(MatrixMarket, RejectsBadBanner) {
  std::istringstream in("%%NotMatrixMarket x y z w\n1 1 0\n");
  EXPECT_THROW(read_matrix_market<float>(in), CbmError);
}

TEST(MatrixMarket, RejectsUnsupportedField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate complex general\n1 1 0\n");
  EXPECT_THROW(read_matrix_market<float>(in), CbmError);
}

TEST(MatrixMarket, RejectsOutOfBoundsEntry) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
  EXPECT_THROW(read_matrix_market<float>(in), CbmError);
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market<float>(in), CbmError);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file<float>("/nonexistent/file.mtx"),
               CbmError);
}

}  // namespace
}  // namespace cbm
