// Graph fingerprints and cache keys for the serving layer.
//
// The adjacency cache (serve/cache.hpp) must recognise "the same graph
// again" across requests without holding the raw adjacency: a 64-bit FNV-1a
// digest over the CSR arrays is the recognition handle, and the full
// GraphKey — fingerprint plus the exact shape/nnz and the compression
// recipe — is the equality key, so a fingerprint collision degrades to a
// cache miss, never to serving the wrong graph's aggregation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace cbm::serve {

/// 64-bit FNV-1a over a byte range, chainable via `seed` (pass the previous
/// digest to extend it).
std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed = 0xCBF29CE484222325ull);

/// Digest of a CSR adjacency: shape, indptr, indices, and values. Two
/// structurally identical matrices fingerprint equally regardless of how
/// they were built.
template <typename T>
std::uint64_t graph_fingerprint(const CsrMatrix<T>& a);

/// Full identity of a cached compressed adjacency: the content digest plus
/// everything that changes the compressed artefact — shape, nnz, the CBM
/// kind the serving mode compresses to, and the pruning threshold α. All
/// fields participate in equality, so entries whose fingerprints collide
/// still resolve correctly (to a miss).
struct GraphKey {
  std::uint64_t fingerprint = 0;
  index_t rows = 0;
  index_t cols = 0;
  std::int64_t nnz = 0;
  std::uint32_t kind = 0;  ///< CbmKind the entry was compressed as
  std::int32_t alpha = 0;  ///< CbmOptions::alpha used for compression

  bool operator==(const GraphKey&) const = default;
};

/// Key for a request's adjacency under a given compression recipe.
template <typename T>
GraphKey make_graph_key(const CsrMatrix<T>& a, std::uint32_t kind,
                        std::int32_t alpha) {
  GraphKey key;
  key.fingerprint = graph_fingerprint(a);
  key.rows = a.rows();
  key.cols = a.cols();
  key.nnz = static_cast<std::int64_t>(a.nnz());
  key.kind = kind;
  key.alpha = alpha;
  return key;
}

struct GraphKeyHash {
  std::size_t operator()(const GraphKey& key) const {
    // The fingerprint already mixes the content; fold in the recipe fields
    // so distinct kinds of the same graph land in distinct buckets.
    std::uint64_t h = key.fingerprint;
    h = fnv1a64(&key.kind, sizeof(key.kind), h);
    h = fnv1a64(&key.alpha, sizeof(key.alpha), h);
    return static_cast<std::size_t>(h);
  }
};

extern template std::uint64_t graph_fingerprint<float>(
    const CsrMatrix<float>&);
extern template std::uint64_t graph_fingerprint<double>(
    const CsrMatrix<double>&);

}  // namespace cbm::serve
