// Ablation — update-stage scheduling (§V-B design choice): sequential sweep
// vs branch-parallel with static and dynamic OpenMP scheduling. The paper
// argues dynamic scheduling is needed because branch sizes are skewed.
#include <algorithm>

#include "bench_common.hpp"
#include "cbm/spmm_cbm.hpp"

int main() {
  using namespace cbm;
  using namespace cbm::bench;
  const auto config = BenchConfig::from_env();
  print_bench_header(config, "Ablation — update-stage schedule");
  BenchReport report("ablation_update_schedule", config);

  TablePrinter table({"Graph", "Alpha", "Branches", "UpdateSeq [s]",
                      "UpdateStatic [s]", "UpdateDynamic [s]",
                      "UpdateColSplit [s]", "UpdateTaskGraph [s]",
                      "BestVsSeq"});
  for (const std::string name :
       {"ca-hepph", "collab", "copapersciteseer", "ogbn-proteins"}) {
    const auto& spec = dataset_spec(name);
    const Graph g = load_dataset(spec, config);
    const auto b = make_dense_operand<real_t>(g.num_nodes(), config.cols);

    for (const int alpha : {0, 16}) {
      const auto pair = make_operands<real_t>(g, Workload::kAX, alpha);
      DenseMatrix<real_t> c(g.num_nodes(), config.cols);
      // Isolate the update stage: run the multiply once, then re-run only
      // the update on a scratch copy.
      csr_spmm(pair.cbm.delta_matrix(), b, c);
      DenseMatrix<real_t> scratch = c;

      auto time_update = [&](UpdateSchedule schedule, int threads) {
        ThreadScope scope(threads);
        return time_repetitions(
            [&] {
              scratch = c;  // reset (copy cost identical across schedules)
              cbm_update_stage<real_t>(pair.cbm.tree(), pair.cbm.kind(), {},
                                       scratch, schedule);
            },
            config.reps, config.warmup);
      };
      const auto seq = time_update(UpdateSchedule::kSequential, 1);
      const auto sta = time_update(UpdateSchedule::kBranchStatic,
                                   config.threads);
      const auto dyn = time_update(UpdateSchedule::kBranchDynamic,
                                   config.threads);
      const auto col = time_update(UpdateSchedule::kColumnSplit,
                                   config.threads);
      const auto tsk = time_update(UpdateSchedule::kTaskGraph,
                                   config.threads);
      const std::vector<std::pair<std::string, std::string>> labels = {
          {"graph", name}, {"alpha", std::to_string(alpha)}};
      report.add("update_sequential_seconds", seq, labels);
      report.add("update_branch_static_seconds", sta, labels);
      report.add("update_branch_dynamic_seconds", dyn, labels);
      report.add("update_column_split_seconds", col, labels);
      report.add("update_task_graph_seconds", tsk, labels);
      const double best =
          std::min({sta.mean(), dyn.mean(), col.mean(), tsk.mean()});
      table.add_row(
          {name, std::to_string(alpha),
           std::to_string(pair.cbm.tree().branches().size()),
           fmt_seconds(seq.mean()), fmt_seconds(sta.mean()),
           fmt_seconds(dyn.mean()), fmt_seconds(col.mean()),
           fmt_seconds(tsk.mean()),
           fmt_double(seq.mean() / std::max(best, 1e-12), 2)});
    }
  }
  table.print();
  return 0;
}
