// cbm::obs — umbrella header and instrumentation macros.
//
// Usage in hot paths:
//
//   void CbmMatrix<T>::multiply(...) {
//     CBM_SPAN("cbm.multiply");          // RAII trace span
//     ...
//     CBM_COUNTER_ADD("cbm.multiply.calls", 1);
//   }
//
// Both macros compile to a single relaxed-atomic-flag check when tracing /
// metrics are disabled (the default), so they are safe on paths measured by
// the benchmarks. See docs/observability.md for env vars and span naming.
#pragma once

#include "obs/hw.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#define CBM_OBS_CONCAT_INNER(a, b) a##b
#define CBM_OBS_CONCAT(a, b) CBM_OBS_CONCAT_INNER(a, b)

/// Opens a trace span covering the rest of the enclosing scope.
#define CBM_SPAN(name) \
  const ::cbm::obs::ScopedSpan CBM_OBS_CONCAT(cbm_obs_span_, __LINE__)(name)

/// CBM_SPAN plus hardware-counter attribution: when CBM_PERF=on|force and
/// metrics recording is active, the scope's counter deltas land in the
/// metrics registry as `hw.<name>.*` (obs/hw.hpp). Costs two relaxed atomic
/// loads when either switch is off.
#define CBM_SPAN_HW(name)                                                  \
  CBM_SPAN(name);                                                          \
  const ::cbm::obs::hw::ScopedHwSample CBM_OBS_CONCAT(cbm_obs_hw_,         \
                                                      __LINE__)(name)

/// Counter increment, guarded so arguments are not evaluated when disabled.
#define CBM_COUNTER_ADD(name, delta)                        \
  do {                                                      \
    if (::cbm::obs::metrics_enabled()) {                    \
      ::cbm::obs::counter_add((name), (delta));             \
    }                                                       \
  } while (0)

/// Gauge write, guarded like CBM_COUNTER_ADD.
#define CBM_GAUGE_SET(name, value)                          \
  do {                                                      \
    if (::cbm::obs::metrics_enabled()) {                    \
      ::cbm::obs::gauge_set((name), (value));               \
    }                                                       \
  } while (0)

/// Duration sample, guarded like CBM_COUNTER_ADD.
#define CBM_TIMING_RECORD(name, seconds)                    \
  do {                                                      \
    if (::cbm::obs::metrics_enabled()) {                    \
      ::cbm::obs::timing_record((name), (seconds));         \
    }                                                       \
  } while (0)
