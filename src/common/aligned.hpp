// Over-aligned allocation for kernel operand storage.
//
// The SpMM microkernels stream dense rows with omp-simd loops; starting every
// matrix at a 64-byte boundary keeps those accesses cache-line aligned and
// lets the compiler emit aligned vector moves where the row pitch allows it.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace cbm {

/// Cache-line / vector-register alignment used for dense kernel operands.
inline constexpr std::size_t kKernelAlignment = 64;

/// Minimal std::allocator replacement with a fixed over-alignment. All
/// instances are interchangeable (stateless), so containers swap/move freely.
template <typename T, std::size_t Alignment = kKernelAlignment>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "alignment must not weaken the type's natural alignment");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// std::vector with 64-byte-aligned storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace cbm
