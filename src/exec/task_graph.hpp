// cbm::exec — dependency-driven task execution for the CBM engines.
//
// The partitioned multiply and the two-stage update sweep both have far more
// parallelism than their historical loop structure exposes: parts are fully
// independent, and inside one compression tree the only true dependencies
// are the tree edges themselves. A TaskGraph captures exactly those
// dependencies (tasks = part×column-panel multiplies or subtree row blocks;
// edges = parent-before-child) and lowers them onto OpenMP tasks, so the
// whole product runs in a single parallel region with no barrier other than
// the final join — work that used to wait at a fork/join boundary now
// overlaps with whatever is still running.
//
// The executor is deliberately small: append tasks, append edges, run once.
// Scheduling is a per-task atomic pending counter — a finishing task
// decrements each successor and spawns the ones that hit zero — which keeps
// the happens-before edges explicit (acquire/release on the counter), so the
// executor is clean under TSan with a TSan-aware OpenMP runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace cbm::exec {

/// What one run() observed; also mirrored into cbm::obs as cbm.exec.*
/// counters/gauges so cbmprof and the Chrome trace can show the schedule.
struct RunMetrics {
  std::size_t tasks = 0;      ///< tasks executed
  std::size_t edges = 0;      ///< dependency edges honoured
  std::size_t max_ready = 0;  ///< peak ready-queue depth (spawned, not started)
  int threads = 1;            ///< team size the graph ran under
  double wall_seconds = 0.0;  ///< run() wall time
  double busy_seconds = 0.0;  ///< sum of task body times across all threads

  /// Fraction of the team's wall-clock capacity not spent in task bodies:
  /// 1 − busy/(wall·threads). High values mean the graph starved the team
  /// (too few ready tasks), not that tasks were slow.
  [[nodiscard]] double idle_fraction() const;
};

/// A run-once DAG of void() tasks. Not thread-safe to build concurrently;
/// run() executes every task exactly once, respecting all edges, and throws
/// CbmError if the edges contain a cycle (detected as a non-quiescent
/// graph — no deadlock).
class TaskGraph {
 public:
  using TaskId = std::int32_t;

  /// Appends a task; returns its id. The callable must be non-null and is
  /// invoked exactly once by run() (possibly on another thread).
  TaskId add_task(std::function<void()> fn);

  /// Declares that `before` must complete before `after` starts. Both ids
  /// must already exist; self-edges throw.
  void add_edge(TaskId before, TaskId after);

  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  /// Executes the graph — one OpenMP parallel region, tasks spawned as their
  /// dependencies resolve; a serial topological sweep when the team is one
  /// thread (or OpenMP is absent). A task throwing aborts nothing mid-run:
  /// the graph still drains, then the first exception is rethrown. Call at
  /// most once (pending counters are consumed).
  RunMetrics run();

 private:
  std::vector<std::function<void()>> tasks_;
  std::vector<std::pair<TaskId, TaskId>> edges_;
  bool ran_ = false;
};

}  // namespace cbm::exec
