// Weighted edge shared by the MST / MCA solvers.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace cbm {

/// Directed (src → dst) or undirected edge with integral weight (Hamming
/// distances / delta counts are integers).
struct WeightedEdge {
  index_t src = 0;
  index_t dst = 0;
  std::int64_t weight = 0;
};

}  // namespace cbm
