#include "tune/microjson.hpp"

#include <cctype>
#include <cstdlib>

namespace cbm::microjson {

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::optional<std::string> Value::get_string(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return v->as_string();
}

std::optional<double> Value::get_number(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->as_number();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run() {
    auto v = parse_value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  bool consume(char c) {
    if (eof() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<Value> parse_value() {
    if (depth_ > kMaxDepth) return std::nullopt;
    skip_ws();
    if (eof()) return std::nullopt;
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return Value(std::move(*s));
      }
      case 't':
        return consume_literal("true") ? std::optional<Value>(Value(true))
                                       : std::nullopt;
      case 'f':
        return consume_literal("false") ? std::optional<Value>(Value(false))
                                        : std::nullopt;
      case 'n':
        return consume_literal("null") ? std::optional<Value>(Value())
                                       : std::nullopt;
      default: return parse_number();
    }
  }

  std::optional<Value> parse_object() {
    ++depth_;
    if (!consume('{')) return std::nullopt;
    Object obj;
    skip_ws();
    if (consume('}')) {
      --depth_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      auto val = parse_value();
      if (!val) return std::nullopt;
      obj.insert_or_assign(std::move(*key), std::move(*val));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      return std::nullopt;
    }
    --depth_;
    return Value(std::move(obj));
  }

  std::optional<Value> parse_array() {
    ++depth_;
    if (!consume('[')) return std::nullopt;
    Array arr;
    skip_ws();
    if (consume(']')) {
      --depth_;
      return Value(std::move(arr));
    }
    while (true) {
      auto val = parse_value();
      if (!val) return std::nullopt;
      arr.push_back(std::move(*val));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      return std::nullopt;
    }
    --depth_;
    return Value(std::move(arr));
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (eof()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            // ASCII-only \uXXXX (the cache writer never emits more).
            if (pos_ + 4 > text_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return std::nullopt;
              }
            }
            if (code > 0x7F) return std::nullopt;
            out.push_back(static_cast<char>(code));
            break;
          }
          default: return std::nullopt;
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      out.push_back(c);
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
      // sign consumed
    }
    bool digits = false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
      digits = true;
    }
    if (consume('.')) {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
        digits = true;
      }
    }
    if (!digits) return std::nullopt;
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      bool exp_digits = false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) return std::nullopt;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return Value(d);
  }

  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace cbm::microjson
