// Dense GEMM: C = A * B (+ beta * C), row-major.
//
// Used by the GCN layers for the X·W products. Implemented as a cache-blocked
// OpenMP kernel — not MKL-class, but the same kernel is used for baseline and
// CBM pipelines, so relative comparisons (the paper's metric) are unaffected.
#pragma once

#include "dense/dense_matrix.hpp"

namespace cbm {

/// C = alpha * A * B + beta * C. Shapes: A is m×k, B is k×n, C is m×n.
/// Parallelised over row blocks of A with OpenMP; inner kernel is blocked
/// for L1/L2 reuse and vectorised.
template <typename T>
void gemm(const DenseMatrix<T>& a, const DenseMatrix<T>& b, DenseMatrix<T>& c,
          T alpha = T{1}, T beta = T{0});

/// Reference triple-loop GEMM used by tests to validate the blocked kernel.
template <typename T>
void gemm_naive(const DenseMatrix<T>& a, const DenseMatrix<T>& b,
                DenseMatrix<T>& c, T alpha = T{1}, T beta = T{0});

extern template void gemm<float>(const DenseMatrix<float>&,
                                 const DenseMatrix<float>&,
                                 DenseMatrix<float>&, float, float);
extern template void gemm<double>(const DenseMatrix<double>&,
                                  const DenseMatrix<double>&,
                                  DenseMatrix<double>&, double, double);
extern template void gemm_naive<float>(const DenseMatrix<float>&,
                                       const DenseMatrix<float>&,
                                       DenseMatrix<float>&, float, float);
extern template void gemm_naive<double>(const DenseMatrix<double>&,
                                        const DenseMatrix<double>&,
                                        DenseMatrix<double>&, double, double);

}  // namespace cbm
