// Minimal JSON reader for the tuning cache.
//
// The repo emits JSON in several places (obs::JsonWriter) but until the
// autotuner nothing needed to read any back. This is a small recursive-
// descent parser covering the full JSON grammar minus exotica (no \u
// surrogate pairs — the cache writer never emits non-ASCII). Malformed input
// yields std::nullopt rather than throwing: a corrupted cache file must
// degrade to "no cache", never take the process down.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace cbm::microjson {

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  Value() : v_(nullptr) {}
  explicit Value(bool b) : v_(b) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(Array a) : v_(std::move(a)) {}
  explicit Value(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v_);
  }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] double as_number() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(v_);
  }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(v_); }
  [[nodiscard]] const Object& as_object() const {
    return std::get<Object>(v_);
  }

  /// Object member lookup; nullptr when this is not an object or the key is
  /// absent. Chains without intermediate checks.
  [[nodiscard]] const Value* find(const std::string& key) const;

  /// Typed member accessors for the common "optional field with shape
  /// check" pattern; nullopt when absent or the wrong type.
  [[nodiscard]] std::optional<std::string> get_string(
      const std::string& key) const;
  [[nodiscard]] std::optional<double> get_number(const std::string& key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). std::nullopt on any syntax error.
std::optional<Value> parse(std::string_view text);

}  // namespace cbm::microjson
