#include "gnn/adjacency_op.hpp"

#include "sparse/spmm.hpp"

namespace cbm {

template <typename T>
void CsrAdjacency<T>::multiply(const DenseMatrix<T>& b,
                               DenseMatrix<T>& c) const {
  csr_spmm(m_, b, c);
}

template <typename T>
void CbmAdjacency<T>::multiply(const DenseMatrix<T>& b,
                               DenseMatrix<T>& c) const {
  m_.multiply(b, c, schedule_);
}

template class CsrAdjacency<float>;
template class CsrAdjacency<double>;
template class CbmAdjacency<float>;
template class CbmAdjacency<double>;

}  // namespace cbm
