#include "bench_util/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>

#include "graph/generators.hpp"
#include "sparse/io_mm.hpp"

namespace cbm {

namespace {

/// Scales a count, keeping a sane floor.
index_t scaled(index_t base, double scale, index_t floor_value = 64) {
  const auto v = static_cast<index_t>(std::llround(base * scale));
  return std::max(v, floor_value);
}

}  // namespace

const std::vector<DatasetSpec>& dataset_registry() {
  // Paper values: Table I (sizes), Table II (α=0 ratio), Table V
  // (clustering), Tables III/IV (best α per graph & core count).
  static const std::vector<DatasetSpec> registry = {
      {.name = "cora", .family = "citation", .paper_nodes = 2708,
       .paper_edges = 10556, .paper_avg_degree = 4.8,
       .paper_clustering = 0.24, .paper_ratio_alpha0 = 1.04,
       .paper_best_alpha_seq = 2, .paper_best_alpha_par = 4},
      {.name = "pubmed", .family = "citation", .paper_nodes = 19717,
       .paper_edges = 88648, .paper_avg_degree = 5.4,
       .paper_clustering = 0.06, .paper_ratio_alpha0 = 1.04,
       .paper_best_alpha_seq = 4, .paper_best_alpha_par = 16},
      {.name = "ca-astroph", .family = "coauthor", .paper_nodes = 18772,
       .paper_edges = 396160, .paper_avg_degree = 22.1,
       .paper_clustering = 0.63, .paper_ratio_alpha0 = 1.72,
       .paper_best_alpha_seq = 2, .paper_best_alpha_par = 8},
      {.name = "ca-hepph", .family = "coauthor", .paper_nodes = 12008,
       .paper_edges = 237010, .paper_avg_degree = 20.7,
       .paper_clustering = 0.61, .paper_ratio_alpha0 = 2.72,
       .paper_best_alpha_seq = 4, .paper_best_alpha_par = 1},
      {.name = "collab", .family = "collaboration", .paper_nodes = 372474,
       .paper_edges = 24572158, .paper_avg_degree = 65.9,
       .paper_clustering = 0.89, .paper_ratio_alpha0 = 11.0,
       .paper_best_alpha_seq = 4, .paper_best_alpha_par = 16},
      {.name = "copapersdblp", .family = "collaboration",
       .paper_nodes = 540486, .paper_edges = 30491458,
       .paper_avg_degree = 57.4, .paper_clustering = 0.80,
       .paper_ratio_alpha0 = 5.97, .paper_best_alpha_seq = 4,
       .paper_best_alpha_par = 32},
      {.name = "copapersciteseer", .family = "collaboration",
       .paper_nodes = 434102, .paper_edges = 32073440,
       .paper_avg_degree = 74.8, .paper_clustering = 0.83,
       .paper_ratio_alpha0 = 9.87, .paper_best_alpha_seq = 4,
       .paper_best_alpha_par = 32},
      {.name = "ogbn-proteins", .family = "ppi", .paper_nodes = 132534,
       .paper_edges = 39561252, .paper_avg_degree = 298.5,
       .paper_clustering = 0.28, .paper_ratio_alpha0 = 2.14,
       .paper_best_alpha_seq = 8, .paper_best_alpha_par = 16},
  };
  return registry;
}

const DatasetSpec& dataset_spec(const std::string& name) {
  for (const auto& spec : dataset_registry()) {
    if (spec.name == name) return spec;
  }
  throw CbmError("unknown dataset: " + name);
}

Graph make_standin(const std::string& name, double scale) {
  CBM_CHECK(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  // Citation stand-ins keep the paper's node counts (they are laptop-sized
  // already); collaboration/PPI graphs are node-scaled to ~1/10 so the full
  // bench suite stays in the minutes range (DESIGN.md §2, §7).
  if (name == "cora") {
    return barabasi_albert(scaled(2708, scale), 2, 0xC04Aull);
  }
  if (name == "pubmed") {
    return barabasi_albert(scaled(19717, scale), 3, 0x9B3Dull);
  }
  // Community parameters are derived from the per-node delta estimate
  // ratio ≈ (s + c) / (3 + 2c) for intra_prob = 1 (s = community size,
  // c = cross edges per node) and tuned against the paper's Table II/V
  // targets; see DESIGN.md §2.
  if (name == "ca-astroph") {
    CommunityParams p;
    p.num_nodes = scaled(18772, scale);
    p.team_min = 4;
    p.team_max = 56;
    p.size_exponent = 1.9;
    p.intra_prob = 0.95;
    p.cross_per_node = 7.5;
    return community_graph(p, 0xA57A0ull);
  }
  if (name == "ca-hepph") {
    CommunityParams p;
    p.num_nodes = scaled(12008, scale);
    p.team_min = 4;
    p.team_max = 72;
    p.size_exponent = 1.8;
    p.intra_prob = 0.97;
    p.cross_per_node = 4.0;
    return community_graph(p, 0x4E99ull);
  }
  if (name == "collab") {
    CommunityParams p;
    p.num_nodes = scaled(37000, scale);
    p.team_min = 24;
    p.team_max = 180;
    p.size_exponent = 1.8;
    p.intra_prob = 1.0;
    p.cross_per_node = 2.0;
    return community_graph(p, 0xC0BAull);
  }
  if (name == "copapersdblp") {
    CommunityParams p;
    p.num_nodes = scaled(54000, scale);
    p.team_min = 12;
    p.team_max = 140;
    p.size_exponent = 1.8;
    p.intra_prob = 1.0;
    p.cross_per_node = 4.0;
    return community_graph(p, 0xDB17ull);
  }
  if (name == "copapersciteseer") {
    CommunityParams p;
    p.num_nodes = scaled(43000, scale);
    p.team_min = 20;
    p.team_max = 170;
    p.size_exponent = 1.7;
    p.intra_prob = 1.0;
    p.cross_per_node = 3.0;
    return community_graph(p, 0xC17Eull);
  }
  if (name == "ogbn-proteins") {
    CommunityParams p;
    p.num_nodes = scaled(13000, scale);
    p.team_min = 200;
    p.team_max = 420;
    p.size_exponent = 1.6;
    p.intra_prob = 0.80;
    p.cross_per_node = 30.0;
    return community_graph(p, 0x90BAull);
  }
  throw CbmError("unknown dataset stand-in: " + name);
}

Graph load_dataset(const DatasetSpec& spec, const BenchConfig& config) {
  if (!config.mtx_dir.empty()) {
    const std::filesystem::path path =
        std::filesystem::path(config.mtx_dir) / (spec.name + ".mtx");
    if (std::filesystem::exists(path)) {
      return Graph::from_coo_pattern(
          read_matrix_market_file<real_t>(path.string()));
    }
  }
  return make_standin(spec.name, config.scale);
}

}  // namespace cbm
