// The CBM update stage (paper §IV, §V-A/B).
//
// After the multiply stage computes C = A'·B (a plain CSR SpMM on the delta
// matrix), the update stage turns C into A·B by sweeping the compression
// tree in topological order and accumulating each parent row into its
// children:            C_x += C_{r_x}                    (plain / AD)
//                      C_x  = d_x · (C_{r_x} / d_{r_x} + C_x)   (DAD, Eq. 6)
// Rows hanging off the virtual root are already final (plain / AD) or only
// need scaling by d_x (DAD).
//
// Parallel flavours process the branches of the compression tree (the
// subtrees of the virtual root) as independent work units (§V-B).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cbm/cbm_matrix.hpp"

namespace cbm {

/// True when the kind scales rows in the update stage (needs the diagonal).
constexpr bool cbm_kind_row_scaled(CbmKind kind) {
  return kind == CbmKind::kSymScaled || kind == CbmKind::kTwoSided;
}

/// Runs the update stage in place over c. `diag` is required (non-empty) iff
/// cbm_kind_row_scaled(kind).
template <typename T>
void cbm_update_stage(const CompressionTree& tree, CbmKind kind,
                      std::span<const T> diag, DenseMatrix<T>& c,
                      UpdateSchedule schedule);

/// Vector (p = 1) form of the update stage, for multiply_vector.
template <typename T>
void cbm_update_stage_vector(const CompressionTree& tree, CbmKind kind,
                             std::span<const T> diag, std::span<T> y,
                             UpdateSchedule schedule);

/// Number of row-axpy operations the update stage performs (== compressed
/// rows); used by op-count accounting and tests.
index_t cbm_update_row_ops(const CompressionTree& tree);

/// The kTaskGraph schedule's work decomposition: the tree's rows grouped
/// into blocks of ≤ grain rows, each block topologically ordered internally,
/// with an edge (parent block → child block) wherever a row's tree parent
/// lives in an earlier block. Blocks are built by a depth-first sweep, so a
/// subtree that outgrows one block fans out into dependent blocks — the
/// schedule's parallelism follows the tree shape instead of only the virtual
/// root's out-degree. When !row_scaled, singleton branches (update no-ops)
/// are dropped. Exposed for tests and the update-schedule ablation bench.
struct UpdateTaskBlocks {
  std::vector<std::vector<index_t>> rows;           ///< per-block row lists
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;  ///< block deps
};
UpdateTaskBlocks cbm_update_task_blocks(const CompressionTree& tree,
                                        bool row_scaled, index_t grain);

extern template void cbm_update_stage<float>(const CompressionTree&, CbmKind,
                                             std::span<const float>,
                                             DenseMatrix<float>&,
                                             UpdateSchedule);
extern template void cbm_update_stage<double>(const CompressionTree&, CbmKind,
                                              std::span<const double>,
                                              DenseMatrix<double>&,
                                              UpdateSchedule);
extern template void cbm_update_stage_vector<float>(const CompressionTree&,
                                                    CbmKind,
                                                    std::span<const float>,
                                                    std::span<float>,
                                                    UpdateSchedule);
extern template void cbm_update_stage_vector<double>(const CompressionTree&,
                                                     CbmKind,
                                                     std::span<const double>,
                                                     std::span<double>,
                                                     UpdateSchedule);

}  // namespace cbm
