// Thin OpenMP helpers so threading policy lives in one place.
#pragma once

namespace cbm {

/// Number of threads an upcoming parallel region will use.
int max_threads();

/// Calling thread's id inside a parallel region (0 outside).
int thread_id();

/// Size of the current parallel team (1 outside a parallel region).
int team_size();

/// Overrides the global OpenMP thread count (used by benches to compare
/// 1-core vs all-core configurations, mirroring the paper's tables).
void set_threads(int n);

/// RAII guard that sets the OpenMP thread count and restores it on scope
/// exit; benches use it to switch between serial and parallel measurements.
class ThreadScope {
 public:
  explicit ThreadScope(int n);
  ~ThreadScope();
  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  int saved_;
};

}  // namespace cbm
