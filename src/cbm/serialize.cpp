#include "cbm/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <vector>

#include "obs/obs.hpp"

namespace cbm {

namespace {

constexpr char kMagic[4] = {'C', 'B', 'M', 'F'};
constexpr std::uint32_t kVersion = 1;

template <typename V>
void write_pod(std::ostream& out, const V& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(V));
}

template <typename V>
void write_array(std::ostream& out, std::span<const V> data) {
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(V)));
}

template <typename V>
V read_pod(std::istream& in) {
  V v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(V));
  CBM_CHECK(in.good(), "cbm deserialisation: truncated stream");
  return v;
}

template <typename V>
std::vector<V> read_array(std::istream& in, std::size_t count,
                          std::size_t sanity_limit) {
  // Guard against hostile/corrupt length fields before allocating.
  CBM_CHECK(count <= sanity_limit, "cbm deserialisation: implausible length");
  std::vector<V> data(count);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(count * sizeof(V)));
  CBM_CHECK(in.good() || (in.eof() && in.gcount() ==
                              static_cast<std::streamsize>(count * sizeof(V))),
            "cbm deserialisation: truncated array");
  return data;
}

}  // namespace

template <typename T>
void save_cbm(std::ostream& out, const CbmMatrix<T>& m) {
  CBM_SPAN("cbm.serialize.save");
  CBM_COUNTER_ADD("cbm.serialize.saves", 1);
  CBM_COUNTER_ADD("cbm.serialize.saved_bytes",
                  static_cast<std::int64_t>(m.bytes()));
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint32_t>(m.kind()));
  write_pod(out, static_cast<std::uint32_t>(sizeof(T)));
  write_pod(out, static_cast<std::int64_t>(m.rows()));
  write_pod(out, static_cast<std::int64_t>(m.cols()));

  const auto& tree = m.tree();
  std::vector<index_t> parent(static_cast<std::size_t>(tree.num_rows()));
  for (index_t x = 0; x < tree.num_rows(); ++x) parent[x] = tree.parent(x);
  write_array(out, std::span<const index_t>(parent));

  const auto& delta = m.delta_matrix();
  write_pod(out, static_cast<std::int64_t>(delta.nnz()));
  write_array(out, delta.indptr());
  write_array(out, delta.indices());
  write_array(out, delta.values());

  write_pod(out, static_cast<std::int64_t>(m.diagonal().size()));
  write_array(out, m.diagonal());
  CBM_CHECK(out.good(), "cbm serialisation: write failure");
}

template <typename T>
CbmMatrix<T> load_cbm(std::istream& in) {
  CBM_SPAN("cbm.serialize.load");
  CBM_COUNTER_ADD("cbm.serialize.loads", 1);
  char magic[4];
  in.read(magic, sizeof(magic));
  CBM_CHECK(in.good() && std::equal(magic, magic + 4, kMagic),
            "cbm deserialisation: bad magic");
  CBM_CHECK(read_pod<std::uint32_t>(in) == kVersion,
            "cbm deserialisation: unsupported version");
  const auto kind = static_cast<CbmKind>(read_pod<std::uint32_t>(in));
  CBM_CHECK(kind == CbmKind::kPlain || kind == CbmKind::kColumnScaled ||
                kind == CbmKind::kSymScaled || kind == CbmKind::kTwoSided,
            "cbm deserialisation: unknown kind");
  CBM_CHECK(read_pod<std::uint32_t>(in) == sizeof(T),
            "cbm deserialisation: value-type width mismatch");
  const auto rows = read_pod<std::int64_t>(in);
  const auto cols = read_pod<std::int64_t>(in);
  CBM_CHECK(rows >= 0 && cols >= 0 && rows < (1ll << 31) && cols < (1ll << 31),
            "cbm deserialisation: bad dimensions");

  constexpr std::size_t kLimit = std::size_t{1} << 40;  // 1 TiB of entries
  auto parent = read_array<index_t>(in, static_cast<std::size_t>(rows),
                                    kLimit);
  auto tree = CompressionTree::from_parents(std::move(parent));

  const auto nnz = read_pod<std::int64_t>(in);
  CBM_CHECK(nnz >= 0, "cbm deserialisation: negative nnz");
  auto indptr = read_array<offset_t>(in, static_cast<std::size_t>(rows) + 1,
                                     kLimit);
  auto indices =
      read_array<index_t>(in, static_cast<std::size_t>(nnz), kLimit);
  auto values = read_array<T>(in, static_cast<std::size_t>(nnz), kLimit);
  // CsrMatrix's constructor revalidates the structure.
  CsrMatrix<T> delta(static_cast<index_t>(rows), static_cast<index_t>(cols),
                     std::move(indptr), std::move(indices),
                     std::move(values));

  const auto diag_len = read_pod<std::int64_t>(in);
  CBM_CHECK(diag_len >= 0, "cbm deserialisation: negative diagonal length");
  auto diag =
      read_array<T>(in, static_cast<std::size_t>(diag_len), kLimit);
  return CbmMatrix<T>::from_parts(kind, std::move(tree), std::move(delta),
                                  std::move(diag));
}

template <typename T>
void save_cbm_file(const std::string& path, const CbmMatrix<T>& m) {
  std::ofstream out(path, std::ios::binary);
  CBM_CHECK(out.good(), "cannot open file for writing: " + path);
  save_cbm(out, m);
}

template <typename T>
CbmMatrix<T> load_cbm_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CBM_CHECK(in.good(), "cannot open cbm file: " + path);
  return load_cbm<T>(in);
}

template void save_cbm<float>(std::ostream&, const CbmMatrix<float>&);
template void save_cbm<double>(std::ostream&, const CbmMatrix<double>&);
template CbmMatrix<float> load_cbm<float>(std::istream&);
template CbmMatrix<double> load_cbm<double>(std::istream&);
template void save_cbm_file<float>(const std::string&,
                                   const CbmMatrix<float>&);
template void save_cbm_file<double>(const std::string&,
                                    const CbmMatrix<double>&);
template CbmMatrix<float> load_cbm_file<float>(const std::string&);
template CbmMatrix<double> load_cbm_file<double>(const std::string&);

}  // namespace cbm
