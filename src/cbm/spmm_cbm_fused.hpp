// Fused column-tiled CBM multiply (the cache-aware execution engine).
//
// The two-stage product (spmm_cbm.hpp) makes two full passes over the n×p
// output C: the delta SpMM writes all of it, then the tree update re-reads
// and re-writes all of it. When C exceeds the cache the second pass streams
// from DRAM. This engine instead partitions the columns of B/C into tiles
// sized from the detected cache geometry and, for each tile, runs the delta
// SpMM restricted to that column range immediately followed by the
// topological tree update on the same range — one hot pass over every tile
// of C instead of two cold ones. Tiles never mix columns, so they are
// mutually independent work units; with fewer tiles than threads the engine
// switches to within-tile parallelism (nnz-balanced row ranges for the
// multiply, branches for the update) with only tile-local barriers.
//
// In tile-per-thread mode the engine goes further and fuses at row level:
// each row's accumulator is seeded from its (already-final) parent row and
// the Eq. 6 scaling folds into the per-nonzero multiply, so every element of
// C is produced by exactly one pass. That seeds the parent term first where
// the two-stage path adds it last, so results agree to rounding (allclose at
// 1e-5 relative — the acceptance tolerance), not bitwise.
#pragma once

#include "cbm/cbm_matrix.hpp"
#include "common/aligned.hpp"

namespace cbm {

/// Precomputed row schedule for the tile-per-thread fused engine: the row
/// visit order (directly-stored rows in ascending order, then compressed
/// rows topologically), each item's parent (-1 for direct rows) and its
/// Eq. 6 seed/value scales. Derived from (tree, kind, diag) only, so it is
/// valid for every multiply against the same CBM and every column tile —
/// CbmMatrix builds it once and reuses it, turning the engine's per-row
/// dispatch into one fused_rows kernel call per tile.
template <typename T>
struct FusedRowSchedule {
  AlignedVector<index_t> order;
  AlignedVector<index_t> parents;
  AlignedVector<T> seed_scales;
  AlignedVector<T> av_scales;
};

template <typename T>
FusedRowSchedule<T> build_fused_row_schedule(const CompressionTree& tree,
                                             CbmKind kind,
                                             std::span<const T> diag);

/// Runs the fused column-tiled product C = op(A)·B given a CBM's parts.
/// `tile_cols` ≤ 0 means auto: the CBM_TILE_COLS environment variable when
/// set, otherwise the cache-derived width of fused_tile_cols().
/// `schedule` may pass a prebuilt row schedule (must match tree/kind/diag);
/// nullptr builds one on the fly.
template <typename T>
void cbm_multiply_fused(const CompressionTree& tree, CbmKind kind,
                        std::span<const T> diag, const CsrMatrix<T>& delta,
                        const DenseMatrix<T>& b, DenseMatrix<T>& c,
                        index_t tile_cols = 0,
                        const FusedRowSchedule<T>* schedule = nullptr);

/// The tile width cbm_multiply_fused would use for an n-row product with
/// p-column operands (CBM_TILE_COLS override included). Exposed for tests,
/// benches, and capacity planning.
index_t cbm_fused_resolve_tile_cols(index_t rows, index_t bcols,
                                    std::size_t elem_bytes);

/// Sequential fused product restricted to columns [col0, col1): one
/// fused_rows kernel call over the panel, no parallel region. Column panels
/// never mix columns, so disjoint panels are independent — this is the task
/// body the partitioned task-graph executor schedules. `schedule` may be a
/// prebuilt row schedule (nullptr builds one on the fly).
template <typename T>
void cbm_multiply_fused_columns(const CompressionTree& tree, CbmKind kind,
                                std::span<const T> diag,
                                const CsrMatrix<T>& delta,
                                const DenseMatrix<T>& b, DenseMatrix<T>& c,
                                index_t col0, index_t col1,
                                const FusedRowSchedule<T>* schedule = nullptr);

extern template struct FusedRowSchedule<float>;
extern template struct FusedRowSchedule<double>;
extern template FusedRowSchedule<float> build_fused_row_schedule<float>(
    const CompressionTree&, CbmKind, std::span<const float>);
extern template FusedRowSchedule<double> build_fused_row_schedule<double>(
    const CompressionTree&, CbmKind, std::span<const double>);
extern template void cbm_multiply_fused<float>(
    const CompressionTree&, CbmKind, std::span<const float>,
    const CsrMatrix<float>&, const DenseMatrix<float>&, DenseMatrix<float>&,
    index_t, const FusedRowSchedule<float>*);
extern template void cbm_multiply_fused<double>(
    const CompressionTree&, CbmKind, std::span<const double>,
    const CsrMatrix<double>&, const DenseMatrix<double>&, DenseMatrix<double>&,
    index_t, const FusedRowSchedule<double>*);
extern template void cbm_multiply_fused_columns<float>(
    const CompressionTree&, CbmKind, std::span<const float>,
    const CsrMatrix<float>&, const DenseMatrix<float>&, DenseMatrix<float>&,
    index_t, index_t, const FusedRowSchedule<float>*);
extern template void cbm_multiply_fused_columns<double>(
    const CompressionTree&, CbmKind, std::span<const double>,
    const CsrMatrix<double>&, const DenseMatrix<double>&, DenseMatrix<double>&,
    index_t, index_t, const FusedRowSchedule<double>*);

}  // namespace cbm
