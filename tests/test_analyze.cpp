// Tests for the sampled compressibility probe (§VI-H alternative).
#include <gtest/gtest.h>

#include "bench_util/datasets.hpp"
#include "cbm/analyze.hpp"
#include "cbm/cbm_matrix.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

TEST(Analyze, FullSampleIsLowerBoundOnActualDeltas) {
  // Sampling every row gives the per-row optimal delta count — a lower bound
  // on what the arborescence (which must resolve cycles) achieves.
  const auto a = test::clustered_binary(80, 5, 10, 2, 0xA11ull);
  const auto est = estimate_compressibility(a, 80);
  EXPECT_EQ(est.samples, 80);
  CbmStats stats;
  CbmMatrix<float>::compress(a, {.alpha = 0}, &stats);
  const double actual_fraction =
      static_cast<double>(stats.total_deltas) / stats.source_nnz;
  EXPECT_LE(est.delta_fraction, actual_fraction + 1e-9);
  // ...and not absurdly far below it on a well-behaved matrix.
  EXPECT_GT(est.delta_fraction, actual_fraction * 0.5);
}

TEST(Analyze, SampledEstimateTracksFullEstimate) {
  const Graph g = make_standin("copapersdblp", 0.05);
  const auto& a = g.adjacency();
  const auto full = estimate_compressibility(a, a.rows());
  const auto sampled = estimate_compressibility(a, a.rows() / 8, 7);
  EXPECT_NEAR(sampled.delta_fraction, full.delta_fraction, 0.12);
}

TEST(Analyze, SeparatesCompressibleFromIncompressible) {
  const Graph collab = make_standin("collab", 0.05);
  const Graph citation = make_standin("pubmed", 0.2);
  const auto good =
      estimate_compressibility(collab.adjacency(), 400, 1);
  const auto poor =
      estimate_compressibility(citation.adjacency(), 400, 1);
  EXPECT_LT(good.delta_fraction, 0.35);   // strong compression predicted
  EXPECT_GT(poor.delta_fraction, 0.75);   // near-parity predicted
  EXPECT_GT(good.est_ratio, poor.est_ratio * 2);
}

TEST(Analyze, PredictedRatioCorrelatesWithRealRatio) {
  // Rank agreement between the probe and the actual builder across three
  // graph families.
  std::vector<std::pair<double, double>> points;  // (estimate, actual)
  for (const char* name : {"pubmed", "ca-hepph", "collab"}) {
    const Graph g = make_standin(name, 0.08);
    const auto est = estimate_compressibility(g.adjacency(), 300, 2);
    CbmStats stats;
    CbmMatrix<float>::compress(g.adjacency(), {.alpha = 0}, &stats);
    points.emplace_back(
        est.est_ratio,
        static_cast<double>(g.adjacency().bytes()) / stats.bytes);
  }
  // Orders must agree pairwise.
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      EXPECT_EQ(points[i].first < points[j].first,
                points[i].second < points[j].second)
          << i << " vs " << j;
    }
  }
}

TEST(Analyze, EmptyAndEdgeCases) {
  CooMatrix<float> empty;
  empty.rows = 4;
  empty.cols = 4;
  const auto a = CsrMatrix<float>::from_coo(empty);
  const auto est = estimate_compressibility(a, 4);
  EXPECT_DOUBLE_EQ(est.delta_fraction, 1.0);
  EXPECT_THROW(estimate_compressibility(a, 0), CbmError);

  // Identity: no overlaps anywhere → fraction exactly 1.
  const auto eye = CsrMatrix<float>::identity(16);
  const auto eye_est = estimate_compressibility(eye, 16);
  EXPECT_DOUBLE_EQ(eye_est.delta_fraction, 1.0);
}

TEST(Analyze, DeterministicPerSeed) {
  const auto a = test::clustered_binary(60, 4, 9, 2, 0xA12ull);
  const auto x = estimate_compressibility(a, 20, 99);
  const auto y = estimate_compressibility(a, 20, 99);
  EXPECT_DOUBLE_EQ(x.delta_fraction, y.delta_fraction);
}

}  // namespace
}  // namespace cbm
