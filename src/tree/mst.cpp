#include "tree/mst.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "tree/union_find.hpp"

namespace cbm {

MstResult kruskal_mst(index_t num_nodes, std::vector<WeightedEdge> edges) {
  CBM_CHECK(num_nodes >= 1, "MST needs at least one node");
  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return edges[a].weight < edges[b].weight;
                   });

  UnionFind uf(num_nodes);
  MstResult result;
  result.edge_ids.reserve(static_cast<std::size_t>(num_nodes) - 1);
  for (const std::size_t id : order) {
    const auto& e = edges[id];
    CBM_CHECK(e.src >= 0 && e.src < num_nodes && e.dst >= 0 &&
                  e.dst < num_nodes,
              "edge endpoint out of range");
    if (uf.unite(e.src, e.dst)) {
      result.edge_ids.push_back(id);
      result.total_weight += e.weight;
      if (uf.num_sets() == 1) break;
    }
  }
  CBM_CHECK(uf.num_sets() == 1, "MST input graph is disconnected");
  return result;
}

std::vector<index_t> root_tree(index_t num_nodes,
                               const std::vector<WeightedEdge>& edges,
                               const std::vector<std::size_t>& edge_ids,
                               index_t root) {
  CBM_CHECK(root >= 0 && root < num_nodes, "root out of range");
  // Adjacency of the forest.
  std::vector<std::vector<index_t>> adj(static_cast<std::size_t>(num_nodes));
  for (const std::size_t id : edge_ids) {
    adj[edges[id].src].push_back(edges[id].dst);
    adj[edges[id].dst].push_back(edges[id].src);
  }
  std::vector<index_t> parent(static_cast<std::size_t>(num_nodes), -2);
  std::vector<index_t> queue;
  queue.push_back(root);
  parent[root] = -1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const index_t v = queue[head];
    for (const index_t u : adj[v]) {
      if (parent[u] == -2) {
        parent[u] = v;
        queue.push_back(u);
      }
    }
  }
  CBM_CHECK(queue.size() == static_cast<std::size_t>(num_nodes),
            "spanning edges do not reach every node");
  return parent;
}

}  // namespace cbm
