#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace cbm::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

using clock = std::chrono::steady_clock;

clock::time_point trace_epoch() {
  static const clock::time_point epoch = clock::now();
  return epoch;
}

struct TraceEvent {
  const char* name;
  std::int64_t begin_ns;
  std::int64_t end_ns;
};

/// Single-writer (owning thread) / multi-reader ring buffer. The writer
/// publishes each slot with a release store of `head`; readers only look at
/// slots below an acquire load of `head`, so a flush taken while no span is
/// mid-record sees a consistent prefix.
struct ThreadBuffer {
  static constexpr std::size_t kCapacity = 1 << 14;  // 16384 events / thread

  ThreadBuffer(int tid, std::string label)
      : events(kCapacity), tid(tid), label(std::move(label)) {}

  void push(const char* name, std::int64_t begin_ns, std::int64_t end_ns) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    events[h % kCapacity] = {name, begin_ns, end_ns};
    head.store(h + 1, std::memory_order_release);
  }

  std::vector<TraceEvent> events;
  std::atomic<std::uint64_t> head{0};
  int tid;
  std::string label;  ///< exported as the chrome://tracing thread name
};

/// Human-readable name for the registering thread, resolved once at its
/// first span. Registration order makes tid 0 the main thread; workers that
/// first record inside an OpenMP region are named by their team rank, which
/// is what makes a multi-threaded update-stage trace readable.
std::string thread_label(int tid) {
  if (tid == 0) return "main";
#ifdef _OPENMP
  if (omp_in_parallel() != 0) {
    return "omp-worker-" + std::to_string(omp_get_thread_num());
  }
#endif
  return "thread-" + std::to_string(tid);
}

struct TraceState {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::string path;
  int next_tid = 0;
};

// Leaked on purpose: the atexit writer and late-exiting threads may touch
// the registry after static destruction would have run.
TraceState& state() {
  static TraceState* s = new TraceState;
  return *s;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    TraceState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    const int tid = s.next_tid++;
    auto b = std::make_shared<ThreadBuffer>(tid, thread_label(tid));
    s.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

/// Reads CBM_TRACE once at static-initialisation time so trace_enabled()
/// is true from the first instruction of main().
struct EnvInit {
  EnvInit() {
    trace_epoch();  // pin the epoch before any span
    const char* path = std::getenv("CBM_TRACE");
    if (path != nullptr && *path != '\0') enable_trace(path);
  }
} const env_init;

}  // namespace

namespace detail {

std::int64_t trace_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                              trace_epoch())
      .count();
}

void record_span(const char* name, std::int64_t begin_ns,
                 std::int64_t end_ns) {
  local_buffer().push(name, begin_ns, end_ns);
}

}  // namespace detail

void enable_trace(const std::string& path) {
  TraceState& s = state();
  bool register_atexit = false;
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    register_atexit = !path.empty() && s.path.empty();
    s.path = path;
  }
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
  if (register_atexit) std::atexit([] { trace_write(); });
}

void disable_trace() {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

std::string trace_path() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.path;
}

void trace_write_to(std::ostream& os) {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  JsonWriter w(os);
  w.begin_object();
  w.value("displayTimeUnit", "ms");
  w.begin_array("traceEvents");
  // Thread metadata first: names + a stable sort order so chrome://tracing
  // and Perfetto label the OpenMP workers instead of showing bare tids.
  for (const auto& buffer : s.buffers) {
    w.begin_object();
    w.value("name", "thread_name");
    w.value("ph", "M");
    w.value("pid", 1);
    w.value("tid", buffer->tid);
    w.begin_object("args");
    w.value("name", buffer->label);
    w.end_object();
    w.end_object();
    w.begin_object();
    w.value("name", "thread_sort_index");
    w.value("ph", "M");
    w.value("pid", 1);
    w.value("tid", buffer->tid);
    w.begin_object("args");
    w.value("sort_index", buffer->tid);
    w.end_object();
    w.end_object();
  }
  for (const auto& buffer : s.buffers) {
    const std::uint64_t head = buffer->head.load(std::memory_order_acquire);
    const std::uint64_t count = std::min<std::uint64_t>(
        head, ThreadBuffer::kCapacity);
    // Oldest retained event first (chronological within a thread).
    for (std::uint64_t i = head - count; i < head; ++i) {
      const TraceEvent& e = buffer->events[i % ThreadBuffer::kCapacity];
      w.begin_object();
      w.value("name", e.name);
      w.value("cat", "cbm");
      w.value("ph", "X");
      w.value("ts", static_cast<double>(e.begin_ns) / 1e3);
      w.value("dur", static_cast<double>(e.end_ns - e.begin_ns) / 1e3);
      w.value("pid", 1);
      w.value("tid", buffer->tid);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  os << '\n';
  os.flush();
}

void trace_write() {
  const std::string path = trace_path();
  if (path.empty()) return;
  std::ofstream os(path);
  if (!os) {
    // Warn but never throw: this runs from the atexit hook.
    std::fprintf(stderr, "CBM_TRACE: cannot open %s\n", path.c_str());
    return;
  }
  trace_write_to(os);
}

void trace_reset() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& buffer : s.buffers) {
    buffer->head.store(0, std::memory_order_release);
  }
}

std::size_t trace_dropped_events() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  std::size_t dropped = 0;
  for (const auto& buffer : s.buffers) {
    const std::uint64_t head = buffer->head.load(std::memory_order_acquire);
    if (head > ThreadBuffer::kCapacity) dropped += head - ThreadBuffer::kCapacity;
  }
  return dropped;
}

}  // namespace cbm::obs
