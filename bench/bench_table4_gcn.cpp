// Table IV — inference time of the two-layer GCN (Eq. 1) with Â in CSR vs
// CBM (DAD form), at each graph's best α, for 1 core and all cores.
//
// The paper uses 500-dimensional features/weights; CBM_BENCH_COLS scales the
// width (default 128) so the suite stays laptop-friendly.
#include "bench_common.hpp"
#include "gnn/gcn.hpp"

int main() {
  using namespace cbm;
  using namespace cbm::bench;
  const auto config = BenchConfig::from_env();
  print_bench_header(config, "Table IV — two-layer GCN inference");
  BenchReport report("table4_gcn", config);

  const index_t dim = config.cols;  // feature = hidden = output width
  TablePrinter table({"Graph", "Alpha(Cores)", "T_CSR [s]", "T_CBM [s]",
                      "Speedup"});
  for (const auto& spec : dataset_registry()) {
    const Graph g = load_dataset(spec, config);
    const index_t n = g.num_nodes();

    // Â = D^{-1/2}(A+I)D^{-1/2}: CSR materialised; CBM in DAD form.
    const auto norm = gcn_normalization<real_t>(g);
    const CsrAdjacency<real_t> csr_adj(
        scale_both<real_t>(norm.a_plus_i, norm.dinv_sqrt, norm.dinv_sqrt));

    const Gcn2<real_t> model(dim, dim, dim, /*seed=*/2025);
    const auto x = make_dense_operand<real_t>(n, dim, 0xFEEDull);
    Gcn2<real_t>::Workspace ws(n, dim, dim);
    DenseMatrix<real_t> out(n, dim);

    struct Mode {
      int alpha;
      int threads;
      UpdateSchedule schedule;
    };
    const Mode modes[] = {
        {spec.paper_best_alpha_seq, 1, UpdateSchedule::kSequential},
        {spec.paper_best_alpha_par, config.threads,
         UpdateSchedule::kBranchDynamic},
    };
    for (const auto& mode : modes) {
      const CbmAdjacency<real_t> cbm_adj(
          CbmMatrix<real_t>::compress_scaled(
              norm.a_plus_i, std::span<const real_t>(norm.dinv_sqrt),
              CbmKind::kSymScaled, {.alpha = mode.alpha}),
          mode.schedule);
      ThreadScope scope(mode.threads);
      const auto t_csr = time_repetitions(
          [&] { model.forward(csr_adj, x, ws, out); }, config.reps,
          config.warmup);
      const auto t_cbm = time_repetitions(
          [&] { model.forward(cbm_adj, x, ws, out); }, config.reps,
          config.warmup);
      const std::vector<std::pair<std::string, std::string>> labels = {
          {"graph", spec.name},
          {"alpha", std::to_string(mode.alpha)},
          {"threads", std::to_string(mode.threads)}};
      report.add("csr_seconds", t_csr, labels);
      report.add("cbm_seconds", t_cbm, labels);
      table.add_row({spec.name,
                     "a=" + std::to_string(mode.alpha) + " (" +
                         std::to_string(mode.threads) + ")",
                     fmt_stats(t_csr), fmt_stats(t_cbm),
                     fmt_double(t_csr.mean() / t_cbm.mean(), 3)});
    }
  }
  table.print();
  return 0;
}
