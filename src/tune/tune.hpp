// Empirical multiply-plan autotuner.
//
// The analytic LLC-share tile policy (common/cache_info.hpp) picks a plan
// from cache geometry alone; it cannot see nnz structure, SIMD throughput,
// or memory-parallelism effects. The tuner instead *measures*: on first
// contact with a matrix shape it times a small set of candidate plans
// (path × schedule × tile width × SIMD kernel) with short probes — real
// multiplies into the caller's output, so probing wastes no work — and
// persists the winner to an on-disk JSON cache (schema cbm-tune-v1) keyed by
// shape fingerprint + CPU model. Later runs, including later processes,
// reuse the winner without probing.
//
// Knobs:
//   CBM_TUNE        off (default) | on (probe on miss, reuse hits) |
//                   force (always re-probe, refresh the cache)
//   CBM_TUNE_CACHE  cache file path; default ~/.cache/cbm/tune-v1.json.
//                   An empty value disables persistence (in-memory only).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cbm/multiply_plan.hpp"
#include "common/envknobs.hpp"
#include "common/types.hpp"
#include "common/vectorops.hpp"

namespace cbm::tune {

inline constexpr const char* kCacheSchema = "cbm-tune-v1";

enum class TuneMode {
  kOff,    ///< never probe; callers fall back to the analytic policy
  kOn,     ///< probe on cache miss, reuse cached winners
  kForce,  ///< always probe, refreshing any cached entry
};

/// Tune mode named by a RuntimeConfig (off | on | force; empty = off).
/// Unknown values throw — a mistyped knob must not silently change what
/// gets benchmarked.
TuneMode tune_mode_from_config(const RuntimeConfig& config);

/// Reads CBM_TUNE: exactly `tune_mode_from_config(RuntimeConfig::from_env())`
/// — RuntimeConfig is the single point that touches the environment.
TuneMode tune_mode_from_env();

/// One candidate execution plan: the engine schedule plus the SIMD kernel
/// tier it runs under.
struct Plan {
  MultiplySchedule schedule;
  SimdLevel simd = SimdLevel::kScalar;
};

/// Identity of a tuning problem. Products with equal fingerprints get the
/// same plan; the fields are the shape properties plan performance actually
/// depends on (not the matrix content — probing tolerates that).
struct ShapeKey {
  index_t rows = 0;             ///< op(A) rows
  index_t cols = 0;             ///< op(A) cols
  index_t bcols = 0;            ///< dense operand width p
  std::int64_t delta_nnz = 0;   ///< nnz of the CBM delta matrix
  int threads = 1;              ///< active parallelism
  std::size_t elem_bytes = 4;   ///< sizeof(T)

  [[nodiscard]] std::string fingerprint() const;
};

/// One probe measurement: wall time plus the hardware-counter attribution of
/// the measured multiply (obs/hw.hpp; fields stay at their "unknown" marks
/// when CBM_PERF is off or counters are unavailable). Implicitly
/// constructible from bare seconds so counter-less probes stay one-liners.
struct ProbeSample {
  double seconds = -1.0;        ///< < 0: the probe failed
  double ipc = 0.0;             ///< instructions/cycle; 0 = unknown
  double llc_miss_rate = -1.0;  ///< LLC misses/loads; < 0 = unknown

  ProbeSample() = default;
  /*implicit*/ ProbeSample(double seconds) : seconds(seconds) {}
};

/// Outcome of Tuner::decide.
struct PlanDecision {
  Plan plan;
  bool tuned = false;      ///< false: caller should use its analytic policy
  bool cache_hit = false;  ///< plan came from the cache without probing
  /// Winner's probe measurement (seconds 0 when untimed) — the "why this
  /// plan won" record the cache persists next to the plan.
  ProbeSample probe{0.0};
};

/// Measures one plan; returns the probe sample for a representative multiply
/// (min-of-reps wall time, counters of the fastest rep). Supplied by the
/// caller so the tuner needs no dependency on CbmMatrix.
using ProbeFn = std::function<ProbeSample(const Plan&)>;

/// Candidate plans for a product of the given shape: the two-stage engine,
/// the fused engine at the analytic tile width, and the fused engine at a
/// few fixed tile widths — each under the supported SIMD tiers worth
/// separating (the maximum, plus AVX2 when AVX-512 is the maximum: wide
/// vectors can lose to downclocking and split loads).
std::vector<Plan> candidate_plans(const ShapeKey& key);

/// CPU identity for cache keying: "model name" from /proc/cpuinfo (or
/// "unknown-cpu"), with the build's maximum SIMD tier appended so caches
/// survive being shared between differently-capable builds.
std::string cpu_model_key();

/// Process-wide tuner with the on-disk cache behind it. Thread-safe.
class Tuner {
 public:
  static Tuner& instance();

  /// Resolves a plan for `key` under `mode`. kOff (or a null probe) never
  /// probes and reports tuned=false on a cache miss; kOn probes on miss;
  /// kForce always probes. Probed winners are persisted when a cache path
  /// is configured.
  PlanDecision decide(const ShapeKey& key, TuneMode mode,
                      const ProbeFn& probe);

  /// Drops every in-memory entry and forgets the load state (tests).
  void clear();

  /// Overrides the cache file path; empty string disables persistence.
  /// Clears in-memory state so the next decide() reads the new file.
  void set_cache_path(std::string path);

  /// Active cache file path (resolved from CBM_TUNE_CACHE / the default on
  /// first use).
  [[nodiscard]] std::string cache_path();

 private:
  struct Entry {
    Plan plan;
    ProbeSample probe{0.0};
  };

  Tuner() = default;

  void ensure_loaded_locked();
  void save_locked();

  std::mutex mutex_;
  bool path_resolved_ = false;
  bool loaded_ = false;
  std::string path_;
  std::unordered_map<std::string, Entry> entries_;  ///< key: cpu|fingerprint
};

}  // namespace cbm::tune
