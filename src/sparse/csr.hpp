// Compressed Sparse Row (CSR) matrix: the paper's baseline format and the
// storage of the CBM delta matrix A'.
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "sparse/coo.hpp"

namespace cbm {

/// CSR matrix with 64-bit row pointers and 32-bit column indices.
/// Column indices within each row are kept sorted (construction enforces it);
/// several CBM-builder kernels rely on sorted rows for linear merges.
template <typename T>
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Takes ownership of raw CSR arrays. Validates structure.
  CsrMatrix(index_t rows, index_t cols, std::vector<offset_t> indptr,
            std::vector<index_t> indices, std::vector<T> values);

  /// Builds from COO triplets: sorts by (row, col) and sums duplicates.
  static CsrMatrix from_coo(const CooMatrix<T>& coo);

  /// n×n identity.
  static CsrMatrix identity(index_t n);

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] offset_t nnz() const {
    return indptr_.empty() ? 0 : indptr_.back();
  }

  [[nodiscard]] std::span<const offset_t> indptr() const { return indptr_; }
  [[nodiscard]] std::span<const index_t> indices() const { return indices_; }
  [[nodiscard]] std::span<const T> values() const { return values_; }
  [[nodiscard]] std::span<T> values_mut() { return values_; }

  /// Number of nonzeros in row i.
  [[nodiscard]] index_t row_nnz(index_t i) const {
    CBM_DCHECK(i >= 0 && i < rows_, "row out of range");
    return static_cast<index_t>(indptr_[i + 1] - indptr_[i]);
  }

  /// Sorted column indices of row i.
  [[nodiscard]] std::span<const index_t> row_indices(index_t i) const {
    CBM_DCHECK(i >= 0 && i < rows_, "row out of range");
    return {indices_.data() + indptr_[i],
            static_cast<std::size_t>(indptr_[i + 1] - indptr_[i])};
  }

  /// Values of row i (parallel to row_indices).
  [[nodiscard]] std::span<const T> row_values(index_t i) const {
    CBM_DCHECK(i >= 0 && i < rows_, "row out of range");
    return {values_.data() + indptr_[i],
            static_cast<std::size_t>(indptr_[i + 1] - indptr_[i])};
  }

  /// Element lookup by binary search; returns 0 when absent. O(log row_nnz).
  [[nodiscard]] T at(index_t i, index_t j) const;

  /// Transpose (also functions as CSR→CSC conversion: the transpose's rows
  /// are this matrix's columns). Counting-sort based, O(nnz + rows + cols).
  [[nodiscard]] CsrMatrix transpose() const;

  /// Back to COO (row-sorted).
  [[nodiscard]] CooMatrix<T> to_coo() const;

  /// True when every stored value equals 1 (binary adjacency check).
  [[nodiscard]] bool is_binary() const;

  /// True when all rows have strictly increasing column indices.
  [[nodiscard]] bool has_sorted_unique_rows() const;

  /// Actual heap bytes of indptr + indices + values. This is the S_CSR
  /// quantity of the paper's Tables I/II (MiB = bytes / 2^20).
  [[nodiscard]] std::size_t bytes() const {
    return indptr_.size() * sizeof(offset_t) +
           indices_.size() * sizeof(index_t) + values_.size() * sizeof(T);
  }

  bool operator==(const CsrMatrix& other) const = default;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<offset_t> indptr_ = {0};
  std::vector<index_t> indices_;
  std::vector<T> values_;
};

extern template class CsrMatrix<float>;
extern template class CsrMatrix<double>;

}  // namespace cbm
