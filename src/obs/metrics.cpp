#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace cbm::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

namespace {

struct Shard {
  std::mutex mutex;  // owner-thread writes vs. snapshot/reset reads
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, TimingSummary> timings;
};

struct MetricsState {
  std::mutex mutex;
  std::vector<std::shared_ptr<Shard>> shards;
};

// Leaked on purpose (same reasoning as the trace registry): exit-time
// flushes and late thread destruction must find it alive.
MetricsState& state() {
  static MetricsState* s = new MetricsState;
  return *s;
}

Shard& local_shard() {
  thread_local std::shared_ptr<Shard> shard = [] {
    MetricsState& s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    auto sh = std::make_shared<Shard>();
    s.shards.push_back(sh);
    return sh;
  }();
  return *shard;
}

struct EnvInit {
  EnvInit() {
    const char* v = std::getenv("CBM_METRICS");
    if (v != nullptr && *v != '\0' && std::string_view(v) != "0") {
      set_metrics_enabled(true);
    }
  }
} const env_init;

std::size_t timing_bucket(double seconds) {
  const double ns = seconds * 1e9;
  if (ns < 1.0) return 0;
  const auto b = static_cast<std::size_t>(std::log2(ns));
  return std::min(b, TimingSummary::kBuckets - 1);
}

}  // namespace

void set_metrics_enabled(bool enabled) {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void counter_add(const char* name, std::int64_t delta) {
  if (!metrics_enabled()) return;
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.counters[name] += delta;
}

void gauge_set(const char* name, double value) {
  if (!metrics_enabled()) return;
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.gauges[name] = value;
}

void timing_record(const char* name, double seconds) {
  if (!metrics_enabled()) return;
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.timings[name].add(seconds);
}

void TimingSummary::add(double seconds) {
  if (count == 0) {
    min = max = seconds;
  } else {
    min = std::min(min, seconds);
    max = std::max(max, seconds);
  }
  ++count;
  sum += seconds;
  ++buckets[timing_bucket(seconds)];
}

void TimingSummary::merge(const TimingSummary& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
}

double TimingSummary::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= target && buckets[i] > 0) {
      // Geometric midpoint of [2^i, 2^{i+1}) ns, clamped to observed range.
      const double mid_ns = std::exp2(static_cast<double>(i) + 0.5);
      return std::clamp(mid_ns / 1e9, min, max);
    }
  }
  return max;
}

MetricsSnapshot metrics_snapshot() {
  MetricsSnapshot out;
  MetricsState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& shard : s.shards) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    for (const auto& [name, v] : shard->counters) out.counters[name] += v;
    for (const auto& [name, v] : shard->gauges) out.gauges[name] = v;
    for (const auto& [name, t] : shard->timings) out.timings[name].merge(t);
  }
  return out;
}

void metrics_reset() {
  MetricsState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& shard : s.shards) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    shard->counters.clear();
    shard->gauges.clear();
    shard->timings.clear();
  }
}

std::string metrics_json(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.begin_object("counters");
  for (const auto& [name, v] : snapshot.counters) w.value(name, v);
  w.end_object();
  w.begin_object("gauges");
  for (const auto& [name, v] : snapshot.gauges) w.value(name, v);
  w.end_object();
  w.begin_object("timings");
  for (const auto& [name, t] : snapshot.timings) {
    w.begin_object(name);
    w.value("count", static_cast<std::uint64_t>(t.count));
    w.value("sum_seconds", t.sum);
    w.value("min_seconds", t.min);
    w.value("max_seconds", t.max);
    w.value("mean_seconds", t.mean());
    w.value("p50_seconds", t.quantile(0.5));
    w.value("p99_seconds", t.quantile(0.99));
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return os.str();
}

}  // namespace cbm::obs
