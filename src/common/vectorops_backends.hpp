// Internal: kernel tables exported by the per-ISA backend TUs. Each getter
// is defined only when its TU is part of the build (x86 with a compiler
// accepting the -m flags); the dispatcher references them behind the
// matching CBM_HAVE_*_KERNELS macro.
#pragma once

#include "common/vectorops.hpp"

namespace cbm::simd::backend {

const KernelTable<float>& avx2_f32();
const KernelTable<double>& avx2_f64();
const KernelTable<float>& avx512_f32();
const KernelTable<double>& avx512_f64();

}  // namespace cbm::simd::backend
