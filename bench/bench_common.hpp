// Shared plumbing for the paper-table bench binaries.
#pragma once

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util/datasets.hpp"
#include "bench_util/env.hpp"
#include "bench_util/report.hpp"
#include "bench_util/runner.hpp"
#include "bench_util/table.hpp"
#include "cbm/cbm_matrix.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "dense/dense_matrix.hpp"
#include "graph/laplacian.hpp"
#include "sparse/scale.hpp"
#include "sparse/spmm.hpp"

namespace cbm::bench {

/// The three matrix-multiplication workloads of §VI-E/§VI-F.
enum class Workload { kAX, kADX, kDADX };

inline const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kAX: return "AX";
    case Workload::kADX: return "ADX";
    case Workload::kDADX: return "DADX";
  }
  return "?";
}

/// Matched CSR / CBM operands for one workload on one graph. Following
/// §VI-E, A is the raw adjacency matrix and D a single-precision positive
/// diagonal (deterministic pseudo-random, entries in [0.5, 1.5)).
template <typename T>
struct OperandPair {
  CsrMatrix<T> csr;
  CbmMatrix<T> cbm;
  CbmStats cbm_stats;
  std::vector<T> diag;
};

template <typename T>
OperandPair<T> make_operands(const Graph& g, Workload workload, int alpha) {
  OperandPair<T> pair;
  const auto& adj = g.adjacency();
  // Re-type the (float-backed) adjacency into T.
  std::vector<offset_t> indptr(adj.indptr().begin(), adj.indptr().end());
  std::vector<index_t> indices(adj.indices().begin(), adj.indices().end());
  std::vector<T> values(adj.values().size(), T{1});
  const CsrMatrix<T> a(adj.rows(), adj.cols(), std::move(indptr),
                       std::move(indices), std::move(values));

  Rng rng(0xD1A6ull);
  pair.diag.resize(static_cast<std::size_t>(a.rows()));
  for (auto& v : pair.diag) v = static_cast<T>(0.5 + rng.next_double());
  const std::span<const T> d(pair.diag);

  const CbmOptions options{.alpha = alpha};
  switch (workload) {
    case Workload::kAX:
      pair.csr = a;
      pair.cbm = CbmMatrix<T>::compress(a, options, &pair.cbm_stats);
      break;
    case Workload::kADX:
      pair.csr = scale_columns(a, d);
      pair.cbm = CbmMatrix<T>::compress_scaled(a, d, CbmKind::kColumnScaled,
                                               options, &pair.cbm_stats);
      break;
    case Workload::kDADX:
      pair.csr = scale_both(a, d, d);
      pair.cbm = CbmMatrix<T>::compress_scaled(a, d, CbmKind::kSymScaled,
                                               options, &pair.cbm_stats);
      break;
  }
  return pair;
}

/// Times C = op·B for both formats under the current thread count. The
/// RunStats carry the timing table; the HwBlocks carry the fastest rep's
/// hardware-counter attribution (obs/hw.hpp) plus flop/byte accounting so
/// reports can derive GFLOP/s and bytes-per-nnz per format.
template <typename T>
struct SpeedupResult {
  RunStats csr;
  RunStats cbm;
  HwBlock csr_hw;
  HwBlock cbm_hw;
  [[nodiscard]] double speedup() const {
    return cbm.mean() > 0.0 ? csr.mean() / cbm.mean() : 0.0;
  }
};

template <typename T>
SpeedupResult<T> time_pair(const OperandPair<T>& pair, const DenseMatrix<T>& b,
                           const BenchConfig& config,
                           UpdateSchedule schedule) {
  SpeedupResult<T> result;
  DenseMatrix<T> c(pair.csr.rows(), b.cols());
  const double nnz = static_cast<double>(pair.csr.nnz());
  const auto csr = time_repetitions_hw([&] { csr_spmm(pair.csr, b, c); },
                                       config.reps, config.warmup);
  result.csr = csr.stats;
  result.csr_hw = HwBlock::from(
      csr, static_cast<double>(csr_spmm_flops(pair.csr, b.cols())),
      static_cast<double>(pair.csr.bytes()), nnz);
  const auto cbm = time_repetitions_hw(
      [&] { pair.cbm.multiply(b, c, schedule); }, config.reps, config.warmup);
  result.cbm = cbm.stats;
  result.cbm_hw = HwBlock::from(
      cbm, static_cast<double>(pair.cbm.scalar_ops(b.cols())),
      static_cast<double>(pair.cbm.bytes()), nnz);
  return result;
}

/// Times C = cbm·B under an explicit execution plan (e.g. the fused
/// column-tiled engine) with the current thread count.
template <typename T>
struct CbmTiming {
  RunStats stats;
  HwBlock hw;
};

template <typename T>
CbmTiming<T> time_cbm(const CbmMatrix<T>& cbm, const DenseMatrix<T>& b,
                      const BenchConfig& config,
                      const MultiplySchedule& schedule,
                      double source_nnz = 0.0) {
  DenseMatrix<T> c(cbm.rows(), b.cols());
  const auto timed = time_repetitions_hw(
      [&] { cbm.multiply(b, c, schedule); }, config.reps, config.warmup);
  return {timed.stats,
          HwBlock::from(timed, static_cast<double>(cbm.scalar_ops(b.cols())),
                        static_cast<double>(cbm.bytes()), source_nnz)};
}

/// Times C = cbm·B under resolve_plan()'s choice (autotuner when CBM_TUNE is
/// on, analytic policy otherwise) and returns the timings together with the
/// decision, so benches can record plan provenance next to the numbers.
template <typename T>
struct TunedTiming {
  RunStats stats;
  HwBlock hw;
  tune::PlanDecision decision;

  /// Provenance labels for BenchReport: where the plan came from and what it
  /// was (engine path, tile width, SIMD tier).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>>
  plan_labels() const {
    return {{"plan", decision.tuned ? "tuned" : "analytic"},
            {"plan_source", decision.tuned
                                ? (decision.cache_hit ? "cache" : "probe")
                                : "env"},
            {"plan_path", multiply_path_name(decision.plan.schedule.path)},
            {"plan_tile_cols",
             std::to_string(decision.plan.schedule.tile_cols)},
            {"plan_simd", simd_level_name(decision.plan.simd)}};
  }
};

template <typename T>
TunedTiming<T> time_cbm_auto(const CbmMatrix<T>& cbm, const DenseMatrix<T>& b,
                             const BenchConfig& config,
                             double source_nnz = 0.0) {
  TunedTiming<T> result;
  DenseMatrix<T> c(cbm.rows(), b.cols());
  result.decision = cbm.resolve_plan(b, c);  // may probe (outside the timer)
  SimdScope scope(result.decision.plan.simd);
  const auto timed = time_repetitions_hw(
      [&] { cbm.multiply(b, c, result.decision.plan.schedule); }, config.reps,
      config.warmup);
  result.stats = timed.stats;
  result.hw =
      HwBlock::from(timed, static_cast<double>(cbm.scalar_ops(b.cols())),
                    static_cast<double>(cbm.bytes()), source_nnz);
  return result;
}

/// Accumulates speedup ratios and reports their geometric mean — the
/// cross-graph summary statistic the paper's tables use.
class GeomeanAccumulator {
 public:
  void add(double ratio) {
    if (ratio > 0.0) {
      log_sum_ += std::log(ratio);
      ++count_;
    }
  }
  [[nodiscard]] int count() const { return count_; }
  [[nodiscard]] double value() const {
    return count_ > 0 ? std::exp(log_sum_ / count_) : 0.0;
  }

 private:
  double log_sum_ = 0.0;
  int count_ = 0;
};

/// Random dense operand with `cols` columns, entries in [0,1) (§VI-B).
template <typename T>
DenseMatrix<T> make_dense_operand(index_t rows, index_t cols,
                                  std::uint64_t seed = 0xB0B0ull) {
  Rng rng(seed);
  DenseMatrix<T> b(rows, cols);
  b.fill_uniform(rng);
  return b;
}

}  // namespace cbm::bench
