#include "dense/gemm.hpp"

#include <algorithm>

namespace cbm {

namespace {

// Block sizes tuned for typical L1 (32 KiB) / L2 (≥512 KiB) caches with
// single-precision data; correctness does not depend on them.
constexpr index_t kBlockM = 64;
constexpr index_t kBlockK = 256;

}  // namespace

template <typename T>
void gemm(const DenseMatrix<T>& a, const DenseMatrix<T>& b, DenseMatrix<T>& c,
          T alpha, T beta) {
  CBM_CHECK(a.cols() == b.rows(), "gemm: inner dimensions differ");
  CBM_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
            "gemm: output shape mismatch");
  const index_t m = a.rows();
  const index_t k = a.cols();
  const index_t n = b.cols();

#pragma omp parallel for schedule(static)
  for (index_t i0 = 0; i0 < m; i0 += kBlockM) {
    const index_t i1 = std::min<index_t>(i0 + kBlockM, m);
    // Scale the C block by beta once, then accumulate A-panel × B-panel.
    for (index_t i = i0; i < i1; ++i) {
      T* __restrict__ crow = c.row(i).data();
      if (beta == T{0}) {
        for (index_t j = 0; j < n; ++j) crow[j] = T{0};
      } else if (beta != T{1}) {
        for (index_t j = 0; j < n; ++j) crow[j] *= beta;
      }
    }
    for (index_t p0 = 0; p0 < k; p0 += kBlockK) {
      const index_t p1 = std::min<index_t>(p0 + kBlockK, k);
      for (index_t i = i0; i < i1; ++i) {
        const T* __restrict__ arow = a.row(i).data();
        T* __restrict__ crow = c.row(i).data();
        for (index_t p = p0; p < p1; ++p) {
          const T av = alpha * arow[p];
          if (av == T{0}) continue;
          const T* __restrict__ brow = b.row(p).data();
#pragma omp simd
          for (index_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
}

template <typename T>
void gemm_naive(const DenseMatrix<T>& a, const DenseMatrix<T>& b,
                DenseMatrix<T>& c, T alpha, T beta) {
  CBM_CHECK(a.cols() == b.rows(), "gemm_naive: inner dimensions differ");
  CBM_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
            "gemm_naive: output shape mismatch");
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < b.cols(); ++j) {
      // Accumulate in double for a tighter test oracle.
      double acc = 0.0;
      for (index_t p = 0; p < a.cols(); ++p) {
        acc += static_cast<double>(a(i, p)) * static_cast<double>(b(p, j));
      }
      c(i, j) = static_cast<T>(alpha * acc + beta * c(i, j));
    }
  }
}

template void gemm<float>(const DenseMatrix<float>&, const DenseMatrix<float>&,
                          DenseMatrix<float>&, float, float);
template void gemm<double>(const DenseMatrix<double>&,
                           const DenseMatrix<double>&, DenseMatrix<double>&,
                           double, double);
template void gemm_naive<float>(const DenseMatrix<float>&,
                                const DenseMatrix<float>&, DenseMatrix<float>&,
                                float, float);
template void gemm_naive<double>(const DenseMatrix<double>&,
                                 const DenseMatrix<double>&,
                                 DenseMatrix<double>&, double, double);

}  // namespace cbm
