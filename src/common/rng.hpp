// Deterministic pseudo-random number generation.
//
// All dataset generators and randomized tests seed through this module so
// that every benchmark table is reproducible bit-for-bit across runs.
// xoshiro256** is used for speed; splitmix64 expands seeds.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace cbm {

/// splitmix64 step; used to expand a single 64-bit seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state);

/// Small, fast, deterministic PRNG (xoshiro256**).
///
/// Satisfies UniformRandomBitGenerator so it can be plugged into <random>
/// distributions, but also offers direct helpers that are stable across
/// platforms (std:: distributions are not guaranteed identical between
/// standard library implementations).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform integer in [0, bound), bound > 0. Uses Lemire reduction.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform float in [0, 1).
  float next_float();

  /// Bernoulli draw with probability p.
  bool next_bool(double p);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double next_gaussian();

  /// Derive an independent stream (for per-thread generators).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace cbm
