// Distance-graph construction for the CBM compression tree (paper §III and
// §V-C).
//
// Nodes are the matrix rows 0..n-1 plus the virtual root n (the null row).
// A candidate edge y→x carries the Hamming distance
//     h(x,y) = nnz(A_x) + nnz(A_y) − 2·overlap(x,y)
// and is admitted iff it saves MORE than α deltas over storing x directly:
//     h(x,y) − nnz(A_x) < −α   ⇔   nnz(A_y) − 2·overlap(x,y) < −α.
// Larger α therefore prunes more edges — fewer compressed rows, higher
// virtual-root fan-out (more update-stage parallelism), worse compression —
// matching the paper's §V-C discussion and Table II. (The inequality as
// printed in the paper, "< α", has the opposite sense and would contradict
// both.) The virtual edge root→x (weight nnz(A_x)) is always present,
// guaranteeing an arborescence exists (Property 1).
//
// Instead of materialising the paper's dense n² distance matrix we enumerate
// only row pairs with positive overlap, exactly like computing the sparsity
// pattern of A·Aᵀ (the paper's own implementation computes AAᵀ — §VIII).
// Zero-overlap pairs have h ≥ nnz(A_x) ≥ the virtual edge and can never
// improve the tree, so skipping them loses nothing.
#pragma once

#include <cstddef>
#include <vector>

#include "sparse/csr.hpp"
#include "tree/edge.hpp"

namespace cbm {

/// Controls candidate-edge enumeration.
struct DistanceGraphOptions {
  /// The paper's pruning threshold α ≥ 0. Candidate edge y→x is kept iff
  /// compressing x against y saves more than α deltas:
  /// nnz(A_y) − 2·overlap(x,y) < −α.
  int alpha = 0;

  /// Optional cap on candidate in-edges per row, keeping those with the
  /// largest savings. 0 = unlimited (faithful to the paper). A small cap
  /// bounds the memory blow-up the paper reports for Reddit (§VIII).
  index_t max_candidates_per_row = 0;
};

/// Result: directed candidate edges + the virtual edges, in an order where
/// virtual edges come first so that tie-breaking prefers the virtual root
/// (this enforces the Property-2 engineering of §IV).
struct DistanceGraph {
  index_t num_nodes = 0;  ///< n + 1 (rows plus virtual root)
  index_t root = 0;       ///< index of the virtual root (== n)
  std::vector<WeightedEdge> edges;
  std::size_t candidate_edges = 0;  ///< non-virtual edges admitted
};

/// Builds the pruned distance graph of a binary matrix. Parallelised over
/// rows (each thread owns a dense overlap accumulator, O(n) per thread).
/// `pattern` must have sorted, duplicate-free rows.
template <typename T>
DistanceGraph build_distance_graph(const CsrMatrix<T>& pattern,
                                   const DistanceGraphOptions& options);

/// Undirected variant used by the Kruskal/MST path: one edge per unordered
/// pair with positive overlap, no pruning (the paper's α=0 description).
/// Virtual edges are emitted first (tie-break toward the root).
template <typename T>
DistanceGraph build_full_distance_graph(const CsrMatrix<T>& pattern);

extern template DistanceGraph build_distance_graph<float>(
    const CsrMatrix<float>&, const DistanceGraphOptions&);
extern template DistanceGraph build_distance_graph<double>(
    const CsrMatrix<double>&, const DistanceGraphOptions&);
extern template DistanceGraph build_full_distance_graph<float>(
    const CsrMatrix<float>&);
extern template DistanceGraph build_full_distance_graph<double>(
    const CsrMatrix<double>&);

}  // namespace cbm
