#include "cbm/serialize.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace cbm {

namespace {

constexpr char kMagic[4] = {'C', 'B', 'M', 'F'};
constexpr std::uint32_t kVersion = 2;
/// Written natively; reads back byte-swapped on an opposite-endian host.
constexpr std::uint32_t kEndianSentinel = 0x01020304u;

std::uint32_t byte_swapped(std::uint32_t v) {
  return ((v & 0x000000FFu) << 24) | ((v & 0x0000FF00u) << 8) |
         ((v & 0x00FF0000u) >> 8) | ((v & 0xFF000000u) >> 24);
}

template <typename V>
void write_pod(std::ostream& out, const V& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(V));
}

template <typename V>
void write_array(std::ostream& out, std::span<const V> data) {
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(V)));
}

/// `what` names the field being read so a truncated stream reports where it
/// ended, not just that it did.
template <typename V>
V read_pod(std::istream& in, const char* what) {
  V v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(V));
  CBM_CHECK(in.good(), std::string("cbm deserialisation: truncated stream "
                                   "while reading ") +
                           what + " (file cut short or not a CBM file)");
  return v;
}

template <typename V>
std::vector<V> read_array(std::istream& in, std::size_t count,
                          std::size_t sanity_limit, const char* what) {
  // Guard against hostile/corrupt length fields before allocating.
  CBM_CHECK(count <= sanity_limit,
            std::string("cbm deserialisation: implausible ") + what +
                " length " + std::to_string(count) + " (corrupt header?)");
  std::vector<V> data(count);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(count * sizeof(V)));
  CBM_CHECK(in.good() || (in.eof() && in.gcount() ==
                              static_cast<std::streamsize>(count * sizeof(V))),
            std::string("cbm deserialisation: truncated ") + what +
                " array (expected " + std::to_string(count * sizeof(V)) +
                " bytes; file cut short)");
  return data;
}

}  // namespace

template <typename T>
void save_cbm(std::ostream& out, const CbmMatrix<T>& m) {
  CBM_SPAN("cbm.serialize.save");
  CBM_COUNTER_ADD("cbm.serialize.saves", 1);
  CBM_COUNTER_ADD("cbm.serialize.saved_bytes",
                  static_cast<std::int64_t>(m.bytes()));
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, kEndianSentinel);
  write_pod(out, static_cast<std::uint32_t>(m.kind()));
  write_pod(out, static_cast<std::uint32_t>(sizeof(T)));
  write_pod(out, static_cast<std::int64_t>(m.rows()));
  write_pod(out, static_cast<std::int64_t>(m.cols()));

  const auto& tree = m.tree();
  std::vector<index_t> parent(static_cast<std::size_t>(tree.num_rows()));
  for (index_t x = 0; x < tree.num_rows(); ++x) parent[x] = tree.parent(x);
  write_array(out, std::span<const index_t>(parent));

  const auto& delta = m.delta_matrix();
  write_pod(out, static_cast<std::int64_t>(delta.nnz()));
  write_array(out, delta.indptr());
  write_array(out, delta.indices());
  write_array(out, delta.values());

  write_pod(out, static_cast<std::int64_t>(m.diagonal().size()));
  write_array(out, m.diagonal());
  CBM_CHECK(out.good(), "cbm serialisation: write failure");
}

template <typename T>
CbmMatrix<T> load_cbm(std::istream& in) {
  CBM_SPAN("cbm.serialize.load");
  CBM_COUNTER_ADD("cbm.serialize.loads", 1);
  char magic[4];
  in.read(magic, sizeof(magic));
  CBM_CHECK(in.good() && std::equal(magic, magic + 4, kMagic),
            "cbm deserialisation: bad magic (not a CBM file — expected it to "
            "start with \"CBMF\")");
  const auto version = read_pod<std::uint32_t>(in, "version");
  if (version != kVersion) {
    // A byte-swapped current version means the writer ran on an
    // opposite-endian host — name that directly instead of reporting a
    // nonsense version number.
    CBM_CHECK(byte_swapped(version) != kVersion,
              "cbm deserialisation: endianness mismatch (file written on an "
              "opposite-endian host; re-save it on this architecture)");
    throw CbmError("cbm deserialisation: unsupported format version " +
                   std::to_string(version) + " (this build reads version " +
                   std::to_string(kVersion) +
                   "; re-save the matrix with this build)");
  }
  const auto endian = read_pod<std::uint32_t>(in, "endianness sentinel");
  if (endian != kEndianSentinel) {
    CBM_CHECK(byte_swapped(endian) != kEndianSentinel,
              "cbm deserialisation: endianness mismatch (file written on an "
              "opposite-endian host; re-save it on this architecture)");
    throw CbmError("cbm deserialisation: corrupt endianness sentinel (got 0x" +
                   [endian] {
                     char buf[16];
                     std::snprintf(buf, sizeof(buf), "%08x", endian);
                     return std::string(buf);
                   }() +
                   ", expected 0x01020304)");
  }
  const auto kind = static_cast<CbmKind>(read_pod<std::uint32_t>(in, "kind"));
  CBM_CHECK(kind == CbmKind::kPlain || kind == CbmKind::kColumnScaled ||
                kind == CbmKind::kSymScaled || kind == CbmKind::kTwoSided,
            "cbm deserialisation: unknown kind");
  const auto width = read_pod<std::uint32_t>(in, "value width");
  CBM_CHECK(width == sizeof(T),
            "cbm deserialisation: value-type width mismatch (file holds " +
                std::to_string(width) + "-byte values, loading as " +
                std::to_string(sizeof(T)) + "-byte)");
  const auto rows = read_pod<std::int64_t>(in, "rows");
  const auto cols = read_pod<std::int64_t>(in, "cols");
  CBM_CHECK(rows >= 0 && cols >= 0 && rows < (1ll << 31) && cols < (1ll << 31),
            "cbm deserialisation: bad dimensions");

  constexpr std::size_t kLimit = std::size_t{1} << 40;  // 1 TiB of entries
  auto parent = read_array<index_t>(in, static_cast<std::size_t>(rows),
                                    kLimit, "parent");
  auto tree = CompressionTree::from_parents(std::move(parent));

  const auto nnz = read_pod<std::int64_t>(in, "nnz");
  CBM_CHECK(nnz >= 0, "cbm deserialisation: negative nnz");
  auto indptr = read_array<offset_t>(in, static_cast<std::size_t>(rows) + 1,
                                     kLimit, "indptr");
  auto indices =
      read_array<index_t>(in, static_cast<std::size_t>(nnz), kLimit,
                          "indices");
  auto values =
      read_array<T>(in, static_cast<std::size_t>(nnz), kLimit, "values");
  // CsrMatrix's constructor revalidates the structure.
  CsrMatrix<T> delta(static_cast<index_t>(rows), static_cast<index_t>(cols),
                     std::move(indptr), std::move(indices),
                     std::move(values));

  const auto diag_len = read_pod<std::int64_t>(in, "diagonal length");
  CBM_CHECK(diag_len >= 0, "cbm deserialisation: negative diagonal length");
  auto diag = read_array<T>(in, static_cast<std::size_t>(diag_len), kLimit,
                            "diagonal");
  return CbmMatrix<T>::from_parts(kind, std::move(tree), std::move(delta),
                                  std::move(diag));
}

template <typename T>
void save_cbm_file(const std::string& path, const CbmMatrix<T>& m) {
  std::ofstream out(path, std::ios::binary);
  CBM_CHECK(out.good(), "cannot open file for writing: " + path);
  save_cbm(out, m);
}

template <typename T>
CbmMatrix<T> load_cbm_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CBM_CHECK(in.good(), "cannot open cbm file: " + path);
  try {
    return load_cbm<T>(in);
  } catch (const CbmError& e) {
    throw CbmError(path + ": " + e.what());
  }
}

template void save_cbm<float>(std::ostream&, const CbmMatrix<float>&);
template void save_cbm<double>(std::ostream&, const CbmMatrix<double>&);
template CbmMatrix<float> load_cbm<float>(std::istream&);
template CbmMatrix<double> load_cbm<double>(std::istream&);
template void save_cbm_file<float>(const std::string&,
                                   const CbmMatrix<float>&);
template void save_cbm_file<double>(const std::string&,
                                    const CbmMatrix<double>&);
template CbmMatrix<float> load_cbm_file<float>(const std::string&);
template CbmMatrix<double> load_cbm_file<double>(const std::string&);

}  // namespace cbm
