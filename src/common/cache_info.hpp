// Host cache-geometry detection for the cache-aware kernels.
//
// The fused column-tiled CBM multiply sizes its tiles so that one tile of C
// plus the matching tile of B stays resident across both stages of the
// product. That requires knowing the cache sizes of the machine we are on;
// this module reads them once from sysfs (Linux) and falls back to common
// desktop values anywhere else. Everything is overridable at the call site
// (tests) or via CBM_TILE_COLS (operators), so detection only has to be
// right in the common case.
#pragma once

#include <cstddef>
#include <string>

#include "common/types.hpp"

namespace cbm {

/// Per-core/shared cache capacities in bytes. Defaults model a mainstream
/// x86 part and are used wherever sysfs is unavailable.
struct CacheInfo {
  std::size_t l1d_bytes = 32 * 1024;        ///< per-core L1 data
  std::size_t l2_bytes = 1024 * 1024;       ///< per-core L2
  std::size_t llc_bytes = 16 * 1024 * 1024; ///< last-level (shared)

  /// Reads /sys/devices/system/cpu/cpu0/cache; missing or unparsable
  /// entries keep their defaults, so partial sysfs trees (containers,
  /// exotic kernels) degrade gracefully. The result always satisfies
  /// 0 < l1d, 0 < l2 <= llc. Never throws.
  static CacheInfo detect();

  /// Same detection against an arbitrary per-cpu sysfs directory (the part
  /// before "/cache/indexN") — lets tests fake the tree on disk.
  static CacheInfo detect(const std::string& sysfs_cpu_dir);

  /// Process-wide detection result (detect() run once, cached).
  static const CacheInfo& host();
};

/// Picks the column-tile width for the fused CBM multiply. Tiling re-streams
/// the delta CSR once per tile, so it only engages when it buys residency
/// the untiled pass cannot have: when one thread's share of B + C
/// (2 · rows · total_cols · elem_bytes) exceeds its LLC share and would
/// stream from DRAM. Then the widest tile fitting half that share is used,
/// capped at kMaxFusedTileCols and rounded down to a multiple of
/// kTileColsQuantum. Operands that are already LLC-resident — and tall
/// operands for which not even kMinFusedTileCols columns fit (narrow tiles
/// would only re-stream the delta with nothing resident in return) — run as
/// a single full-width tile, keeping only the row-level fusion benefit.
index_t fused_tile_cols(index_t rows, index_t total_cols,
                        std::size_t elem_bytes, int threads,
                        const CacheInfo& cache = CacheInfo::host());

inline constexpr index_t kMinFusedTileCols = 32;
inline constexpr index_t kMaxFusedTileCols = 512;
inline constexpr index_t kTileColsQuantum = 16;

}  // namespace cbm
