// Table V — compression ratio (α = 0) versus average clustering coefficient,
// the paper's proposed indicator for identifying compressible graphs.
#include "graph/metrics.hpp"

#include <algorithm>

#include "bench_common.hpp"

int main() {
  using namespace cbm;
  using namespace cbm::bench;
  const auto config = BenchConfig::from_env();
  print_bench_header(config, "Table V — clustering coefficient vs ratio");
  set_threads(config.threads);
  BenchReport report("table5_clustering", config);

  struct Row {
    std::string name;
    double avg_degree;
    double clustering;
    double ratio;
    double paper_clustering;
    double paper_ratio;
  };
  std::vector<Row> rows;
  for (const auto& spec : dataset_registry()) {
    const Graph g = load_dataset(spec, config);
    CbmStats stats;
    CbmMatrix<real_t>::compress(g.adjacency(), {.alpha = 0}, &stats);
    rows.push_back({spec.name, g.average_degree(), average_clustering(g),
                    static_cast<double>(g.adjacency().bytes()) / stats.bytes,
                    spec.paper_clustering, spec.paper_ratio_alpha0});
    report.add_scalar("avg_clustering", rows.back().clustering,
                      {{"graph", spec.name}});
    report.add_scalar("compression_ratio", rows.back().ratio,
                      {{"graph", spec.name}});
  }
  // The paper sorts Table V by compression ratio (ascending).
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.ratio < b.ratio; });

  TablePrinter table({"Graph", "AvgDeg", "AvgClustering", "Ratio",
                      "paper Clust", "paper Ratio"});
  for (const auto& r : rows) {
    table.add_row({r.name, fmt_double(r.avg_degree, 1),
                   fmt_double(r.clustering, 2), fmt_double(r.ratio, 2),
                   fmt_double(r.paper_clustering, 2),
                   fmt_double(r.paper_ratio, 2)});
  }
  table.print();

  // Rank correlation between clustering and ratio (the paper's qualitative
  // "positive correlation" claim, quantified).
  auto rank = [&](auto key) {
    std::vector<double> values;
    for (const auto& r : rows) values.push_back(key(r));
    std::vector<double> ranks(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      for (std::size_t j = 0; j < values.size(); ++j) {
        if (values[j] < values[i]) ranks[i] += 1.0;
      }
    }
    return ranks;
  };
  const auto rc = rank([](const Row& r) { return r.clustering; });
  const auto rr = rank([](const Row& r) { return r.ratio; });
  double d2 = 0.0;
  for (std::size_t i = 0; i < rc.size(); ++i) {
    d2 += (rc[i] - rr[i]) * (rc[i] - rr[i]);
  }
  const double n = static_cast<double>(rc.size());
  const double spearman = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
  report.add_scalar("spearman_clustering_vs_ratio", spearman);
  std::cout << "Spearman rank correlation (clustering vs ratio): "
            << fmt_double(spearman, 2) << "\n";
  return 0;
}
