#include "graph/laplacian.hpp"

#include <cmath>

#include "sparse/scale.hpp"

namespace cbm {

template <typename T>
GcnNormalization<T> gcn_normalization(const Graph& g) {
  GcnNormalization<T> out;
  // Convert the (binary, real_t-typed) adjacency to T and add self-loops.
  const auto& adj = g.adjacency();
  std::vector<offset_t> indptr(adj.indptr().begin(), adj.indptr().end());
  std::vector<index_t> indices(adj.indices().begin(), adj.indices().end());
  std::vector<T> values(adj.values().size(), T{1});
  CsrMatrix<T> a(adj.rows(), adj.cols(), std::move(indptr), std::move(indices),
                 std::move(values));
  out.a_plus_i = add_identity(a);

  const index_t n = g.num_nodes();
  out.dinv_sqrt.resize(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    // Degree of (A+I) is deg+1 ≥ 1, so the inverse square root is finite.
    out.dinv_sqrt[v] =
        static_cast<T>(1.0 / std::sqrt(static_cast<double>(g.degree(v)) + 1.0));
  }
  return out;
}

template <typename T>
CsrMatrix<T> gcn_normalized_adjacency(const Graph& g) {
  const auto norm = gcn_normalization<T>(g);
  return scale_both<T>(norm.a_plus_i, norm.dinv_sqrt, norm.dinv_sqrt);
}

template struct GcnNormalization<float>;
template struct GcnNormalization<double>;
template GcnNormalization<float> gcn_normalization<float>(const Graph&);
template GcnNormalization<double> gcn_normalization<double>(const Graph&);
template CsrMatrix<float> gcn_normalized_adjacency<float>(const Graph&);
template CsrMatrix<double> gcn_normalized_adjacency<double>(const Graph&);

}  // namespace cbm
