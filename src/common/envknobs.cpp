#include "common/envknobs.hpp"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "common/error.hpp"

namespace cbm {

namespace {

const char* lookup(const char* name) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? nullptr : v;
}

[[noreturn]] void bad_value(const char* name, const char* value,
                            const char* expected) {
  throw CbmError(std::string(name) + ": invalid value '" + value +
                 "' (expected " + expected + ")");
}

}  // namespace

int env_int_strict(const char* name, int fallback) {
  const char* v = lookup(name);
  if (v == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, /*base=*/10);
  if (end == v || *end != '\0') bad_value(name, v, "an integer");
  if (errno == ERANGE || parsed < std::numeric_limits<int>::min() ||
      parsed > std::numeric_limits<int>::max()) {
    bad_value(name, v, "an integer in int range");
  }
  return static_cast<int>(parsed);
}

int env_positive_int(const char* name, int fallback) {
  const int value = env_int_strict(name, fallback);
  if (const char* v = lookup(name); v != nullptr && value < 1) {
    bad_value(name, v, "a positive integer");
  }
  return value;
}

double env_double_strict(const char* name, double fallback) {
  const char* v = lookup(name);
  if (v == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') bad_value(name, v, "a number");
  if (errno == ERANGE) bad_value(name, v, "a number in double range");
  return parsed;
}

std::string env_string_knob(const char* name, const std::string& fallback) {
  const char* v = lookup(name);
  return v == nullptr ? fallback : std::string(v);
}

std::optional<index_t> env_tile_cols() {
  if (lookup("CBM_TILE_COLS") == nullptr) return std::nullopt;
  return static_cast<index_t>(env_positive_int("CBM_TILE_COLS", 0));
}

PerfMode perf_mode_from_env() {
  const char* v = lookup("CBM_PERF");
  if (v == nullptr) return PerfMode::kOff;
  const std::string_view s(v);
  if (s == "off") return PerfMode::kOff;
  if (s == "on") return PerfMode::kOn;
  if (s == "force") return PerfMode::kForce;
  bad_value("CBM_PERF", v, "off | on | force");
}

const char* perf_mode_name(PerfMode mode) {
  switch (mode) {
    case PerfMode::kOff: return "off";
    case PerfMode::kOn: return "on";
    case PerfMode::kForce: return "force";
  }
  return "?";
}

NumaMode numa_mode_from_env() {
  const char* v = lookup("CBM_NUMA");
  if (v == nullptr) return NumaMode::kOff;
  const std::string_view s(v);
  if (s == "off") return NumaMode::kOff;
  if (s == "interleave") return NumaMode::kInterleave;
  if (s == "bind") return NumaMode::kBind;
  bad_value("CBM_NUMA", v, "off | interleave | bind");
}

const char* numa_mode_name(NumaMode mode) {
  switch (mode) {
    case NumaMode::kOff: return "off";
    case NumaMode::kInterleave: return "interleave";
    case NumaMode::kBind: return "bind";
  }
  return "?";
}

PartExec part_exec_from_env() {
  const char* v = lookup("CBM_PART_EXEC");
  if (v == nullptr) return PartExec::kTaskGraph;
  const std::string_view s(v);
  if (s == "serial") return PartExec::kSerial;
  if (s == "taskgraph") return PartExec::kTaskGraph;
  bad_value("CBM_PART_EXEC", v, "serial | taskgraph");
}

const char* part_exec_name(PartExec exec) {
  switch (exec) {
    case PartExec::kSerial: return "serial";
    case PartExec::kTaskGraph: return "taskgraph";
  }
  return "?";
}

index_t env_exec_grain() {
  return static_cast<index_t>(env_positive_int("CBM_EXEC_GRAIN", 64));
}

RuntimeConfig RuntimeConfig::from_env() {
  RuntimeConfig cfg;
  if (const char* v = lookup("CBM_MULTIPLY_PATH")) cfg.multiply_path = v;
  if (const char* v = lookup("CBM_SPMM_SCHEDULE")) cfg.spmm_schedule = v;
  if (const char* v = lookup("CBM_UPDATE_SCHEDULE")) cfg.update_schedule = v;
  cfg.tile_cols = env_tile_cols();
  if (const char* v = lookup("CBM_TUNE")) cfg.tune_mode = v;
  // Unlike lookup()-based knobs, an explicitly empty CBM_TUNE_CACHE is
  // meaningful (it disables persistence), so read the raw variable.
  if (const char* v = std::getenv("CBM_TUNE_CACHE")) cfg.tune_cache = v;
  cfg.part_exec = part_exec_from_env();
  cfg.numa = numa_mode_from_env();
  cfg.exec_grain = env_exec_grain();
  cfg.perf = perf_mode_from_env();
  cfg.stale_threshold = env_double_strict("CBM_STALE_THRESHOLD", 0.5);
  if (const char* v = lookup("CBM_STALE_THRESHOLD");
      v != nullptr && (cfg.stale_threshold < 0.0 || cfg.stale_threshold > 1.0)) {
    bad_value("CBM_STALE_THRESHOLD", v, "a number in [0, 1]");
  }
  return cfg;
}

}  // namespace cbm
