// Sparse × dense multiplication kernels.
//
// csr_spmm is the baseline the paper benchmarks CBM against (there it is
// Intel MKL's mkl_sparse_s_mm; here an OpenMP kernel with the same role) and
// is also the multiply stage of the CBM product (A'B).
#pragma once

#include <vector>

#include "dense/dense_matrix.hpp"
#include "sparse/csr.hpp"

namespace cbm {

/// Row-partitioning strategy for the parallel CSR SpMM.
enum class SpmmSchedule {
  kRowStatic,    // omp static over rows
  kRowDynamic,   // omp dynamic over row chunks
  kNnzBalanced,  // precomputed row ranges with equal nnz per thread
};

/// C = A * B, A sparse CSR (m×k), B dense (k×p), C dense (m×p, overwritten).
/// Parallelism follows the active OpenMP thread count; with 1 thread this is
/// the sequential kernel of the paper's serial experiments.
template <typename T>
void csr_spmm(const CsrMatrix<T>& a, const DenseMatrix<T>& b,
              DenseMatrix<T>& c,
              SpmmSchedule schedule = SpmmSchedule::kNnzBalanced);

/// Ranged SpMM microkernel: overwrites the sub-block
/// C[row_begin:row_end, col_begin:col_end) with A[row_begin:row_end, :] ·
/// B[:, col_begin:col_end). Sequential by design — the fused column-tiled
/// CBM engine and other callers parallelize over ranges themselves. Each
/// row's nonzeros are walked exactly once regardless of range width (the
/// scattered B reads dominate an SpMM and must not repeat per block); the
/// dispatched row kernel keeps column panels in registers across the sweep
/// and writes each C element once. The per-element summation order matches
/// csr_spmm, so assembling a full product from ranges is bitwise identical
/// to the one-shot kernel.
template <typename T>
void csr_spmm_range(const CsrMatrix<T>& a, const DenseMatrix<T>& b,
                    DenseMatrix<T>& c, index_t row_begin, index_t row_end,
                    index_t col_begin, index_t col_end);

/// Splits A's rows into contiguous ranges of roughly equal nnz — how
/// MKL-class kernels balance the skewed degree distributions of power-law
/// graphs. Returns `k + 1` nondecreasing bounds covering [0, rows()) where
/// `k = clamp(parts, 1, max(rows, 1))`: asking for more parts than rows
/// would only manufacture empty duplicate ranges, so the request is clamped
/// instead (callers iterate bounds.size() - 1 ranges).
template <typename T>
std::vector<index_t> nnz_balanced_bounds(const CsrMatrix<T>& a, int parts);

/// y = A * x (matrix-vector).
template <typename T>
void csr_spmv(const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y);

/// C = A * B with A in row-sorted COO form; reference kernel for tests and
/// the format-comparison ablation bench.
template <typename T>
void coo_spmm(const CooMatrix<T>& a, const DenseMatrix<T>& b,
              DenseMatrix<T>& c);

/// Scalar multiply–add count of a CSR SpMM: 2 * nnz * cols(B). Used by the
/// op-count comparisons behind the paper's Property 2.
template <typename T>
[[nodiscard]] std::size_t csr_spmm_flops(const CsrMatrix<T>& a, index_t bcols);

extern template void csr_spmm<float>(const CsrMatrix<float>&,
                                     const DenseMatrix<float>&,
                                     DenseMatrix<float>&, SpmmSchedule);
extern template void csr_spmm<double>(const CsrMatrix<double>&,
                                      const DenseMatrix<double>&,
                                      DenseMatrix<double>&, SpmmSchedule);
extern template void csr_spmm_range<float>(const CsrMatrix<float>&,
                                           const DenseMatrix<float>&,
                                           DenseMatrix<float>&, index_t,
                                           index_t, index_t, index_t);
extern template void csr_spmm_range<double>(const CsrMatrix<double>&,
                                            const DenseMatrix<double>&,
                                            DenseMatrix<double>&, index_t,
                                            index_t, index_t, index_t);
extern template std::vector<index_t> nnz_balanced_bounds<float>(
    const CsrMatrix<float>&, int);
extern template std::vector<index_t> nnz_balanced_bounds<double>(
    const CsrMatrix<double>&, int);
extern template void csr_spmv<float>(const CsrMatrix<float>&,
                                     std::span<const float>, std::span<float>);
extern template void csr_spmv<double>(const CsrMatrix<double>&,
                                      std::span<const double>,
                                      std::span<double>);
extern template void coo_spmm<float>(const CooMatrix<float>&,
                                     const DenseMatrix<float>&,
                                     DenseMatrix<float>&);
extern template void coo_spmm<double>(const CooMatrix<double>&,
                                      const DenseMatrix<double>&,
                                      DenseMatrix<double>&);
extern template std::size_t csr_spmm_flops<float>(const CsrMatrix<float>&,
                                                  index_t);
extern template std::size_t csr_spmm_flops<double>(const CsrMatrix<double>&,
                                                   index_t);

}  // namespace cbm
