// The paper's own correctness protocol (§VI-B): multiply each graph's
// adjacency matrix, in CBM format, by randomly generated dense matrices and
// confirm the result matches the CSR baseline within relative tolerance
// 1e-5. Here: scaled-down operand sizes, all three matrix kinds, both the
// raw adjacency and the GCN-normalised form.
#include <gtest/gtest.h>

#include "bench_util/datasets.hpp"
#include "cbm/cbm_matrix.hpp"
#include "dense/ops.hpp"
#include "graph/laplacian.hpp"
#include "sparse/scale.hpp"
#include "sparse/spmm.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

class PaperProtocol : public ::testing::TestWithParam<const char*> {};

TEST_P(PaperProtocol, RandomMultiplyMatchesBaselineWithinTolerance) {
  // Small-scale stand-in of the named dataset family.
  const Graph g = make_standin(GetParam(), /*scale=*/0.02);
  const auto& a = g.adjacency();
  const index_t n = g.num_nodes();

  const auto cbm = CbmMatrix<float>::compress(a, {.alpha = 0});
  // Paper: 50 random matrices with 500 columns; here 5 × 40 columns.
  for (int trial = 0; trial < 5; ++trial) {
    const auto b =
        test::random_dense<float>(n, 40, 9000 + trial);
    DenseMatrix<float> c_cbm(n, 40), c_csr(n, 40);
    cbm.multiply(b, c_cbm);
    csr_spmm(a, b, c_csr);
    EXPECT_TRUE(allclose(c_cbm, c_csr, 1e-5, 1e-5))
        << GetParam() << " trial " << trial;
  }
}

TEST_P(PaperProtocol, NormalizedAdjacencyDadForm) {
  const Graph g = make_standin(GetParam(), /*scale=*/0.02);
  const auto norm = gcn_normalization<float>(g);
  const auto cbm = CbmMatrix<float>::compress_scaled(
      norm.a_plus_i, std::span<const float>(norm.dinv_sqrt),
      CbmKind::kSymScaled, {.alpha = 0});
  const auto baseline = gcn_normalized_adjacency<float>(g);

  const auto b = test::random_dense<float>(g.num_nodes(), 32, 8123);
  DenseMatrix<float> c_cbm(g.num_nodes(), 32), c_csr(g.num_nodes(), 32);
  cbm.multiply(b, c_cbm);
  csr_spmm(baseline, b, c_csr);
  EXPECT_TRUE(allclose(c_cbm, c_csr, 1e-5, 1e-5)) << GetParam();
}

TEST_P(PaperProtocol, ColumnScaledAdForm) {
  const Graph g = make_standin(GetParam(), /*scale=*/0.02);
  const auto& a = g.adjacency();
  const auto d = test::random_diagonal<float>(g.num_nodes(), 5150);
  const auto cbm = CbmMatrix<float>::compress_scaled(
      a, std::span<const float>(d), CbmKind::kColumnScaled, {.alpha = 2});
  const auto baseline = scale_columns(a, std::span<const float>(d));

  const auto b = test::random_dense<float>(g.num_nodes(), 24, 777);
  DenseMatrix<float> c_cbm(g.num_nodes(), 24), c_csr(g.num_nodes(), 24);
  cbm.multiply(b, c_cbm);
  csr_spmm(baseline, b, c_csr);
  EXPECT_TRUE(allclose(c_cbm, c_csr, 1e-5, 1e-5)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Datasets, PaperProtocol,
                         ::testing::Values("cora", "pubmed", "ca-hepph",
                                           "collab", "ogbn-proteins"));

}  // namespace
}  // namespace cbm
