#include "cbm/partitioned.hpp"

#include <algorithm>
#include <numeric>
#include <optional>

#include "cbm/mutate.hpp"
#include "cbm/spmm_cbm_fused.hpp"
#include "common/envknobs.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "common/vectorops.hpp"
#include "exec/numa.hpp"
#include "exec/task_graph.hpp"
#include "obs/obs.hpp"

namespace cbm {

namespace {

/// Extracts the rectangular submatrix of the given (ascending) global rows;
/// columns keep their global ids.
template <typename T>
CsrMatrix<T> extract_rows(const CsrMatrix<T>& a,
                          const std::vector<index_t>& rows) {
  std::vector<offset_t> indptr;
  indptr.reserve(rows.size() + 1);
  indptr.push_back(0);
  offset_t nnz = 0;
  for (const index_t r : rows) nnz += a.row_nnz(r);
  std::vector<index_t> indices;
  std::vector<T> values;
  indices.reserve(static_cast<std::size_t>(nnz));
  values.reserve(static_cast<std::size_t>(nnz));
  for (const index_t r : rows) {
    const auto cols = a.row_indices(r);
    const auto vals = a.row_values(r);
    indices.insert(indices.end(), cols.begin(), cols.end());
    values.insert(values.end(), vals.begin(), vals.end());
    indptr.push_back(static_cast<offset_t>(indices.size()));
  }
  return CsrMatrix<T>(static_cast<index_t>(rows.size()), a.cols(),
                      std::move(indptr), std::move(indices),
                      std::move(values));
}

}  // namespace

template <typename T>
PartitionedCbmMatrix<T> PartitionedCbmMatrix<T>::compress(
    const CsrMatrix<T>& a, const PartitionedOptions& options,
    PartitionedStats* stats) {
  return compress_impl(a, {}, CbmKind::kPlain, options, stats);
}

template <typename T>
PartitionedCbmMatrix<T> PartitionedCbmMatrix<T>::compress_scaled(
    const CsrMatrix<T>& a, std::span<const T> diag, CbmKind kind,
    const PartitionedOptions& options, PartitionedStats* stats) {
  CBM_CHECK(kind == CbmKind::kColumnScaled || kind == CbmKind::kSymScaled,
            "partitioned compression supports AD and DAD scaling");
  CBM_CHECK(diag.size() == static_cast<std::size_t>(a.rows()) &&
                a.rows() == a.cols(),
            "diagonal length must match the (square) matrix");
  return compress_impl(a, diag, kind, options, stats);
}

template <typename T>
PartitionedCbmMatrix<T> PartitionedCbmMatrix<T>::compress_impl(
    const CsrMatrix<T>& a, std::span<const T> diag, CbmKind kind,
    const PartitionedOptions& options, PartitionedStats* stats) {
  Timer total;
  PartitionedCbmMatrix<T> m;
  m.rows_ = a.rows();
  m.cols_ = a.cols();

  Timer cluster_timer;
  const auto assignment =
      cluster_rows(a, options.method, options.num_clusters, options.seed);
  const index_t k = num_clusters(assignment);
  const double cluster_seconds = cluster_timer.seconds();

  // Bucket rows per cluster (ascending global order preserved).
  std::vector<std::vector<index_t>> buckets(static_cast<std::size_t>(k));
  for (index_t r = 0; r < a.rows(); ++r) {
    buckets[assignment[r]].push_back(r);
  }

  PartitionedStats local;
  local.cluster_seconds = cluster_seconds;
  m.parts_.reserve(static_cast<std::size_t>(k));
  for (auto& rows : buckets) {
    if (rows.empty()) continue;
    const CsrMatrix<T> sub = extract_rows(a, rows);
    CbmStats part_stats;
    Part part;
    switch (kind) {
      case CbmKind::kPlain:
        part.cbm = CbmMatrix<T>::compress(sub, options.base, &part_stats);
        break;
      case CbmKind::kColumnScaled:
        part.cbm = CbmMatrix<T>::compress_scaled(
            sub, diag, CbmKind::kColumnScaled, options.base, &part_stats);
        break;
      case CbmKind::kSymScaled: {
        // A DAD part is rectangular: D₂ is the full diagonal (columns), D₁
        // its restriction to the part's rows.
        std::vector<T> left(rows.size());
        for (std::size_t i = 0; i < rows.size(); ++i) left[i] = diag[rows[i]];
        part.cbm = CbmMatrix<T>::compress_two_sided(
            sub, std::span<const T>(left), diag, options.base, &part_stats);
        break;
      }
      default:
        throw CbmError("unsupported kind for partitioned compression");
    }
    local.largest_part =
        std::max(local.largest_part, static_cast<index_t>(rows.size()));
    local.total_deltas += part_stats.total_deltas;
    local.source_nnz += part_stats.source_nnz;
    local.peak_candidate_edges =
        std::max(local.peak_candidate_edges, part_stats.candidate_edges);
    local.total_candidate_edges += part_stats.candidate_edges;
    part.rows = std::move(rows);
    m.parts_.push_back(std::move(part));
  }
  local.num_parts = static_cast<index_t>(m.parts_.size());
  local.bytes = m.bytes();
  local.build_seconds = total.seconds();
  if (stats != nullptr) *stats = local;
  return m;
}

template <typename T>
void PartitionedCbmMatrix<T>::multiply(const DenseMatrix<T>& b,
                                       DenseMatrix<T>& c,
                                       const MultiplyOptions& options) {
  CBM_CHECK(options.col_begin == 0 && options.col_end < 0,
            "partitioned multiply: column panels are not supported");
  const RuntimeConfig config =
      options.runtime != nullptr ? *options.runtime : RuntimeConfig::from_env();
  if (options.plan) {
    std::optional<SimdScope> scope;
    if (options.simd) scope.emplace(*options.simd);
    const std::vector<MultiplySchedule> plans(parts_.size(), *options.plan);
    multiply_with_plans(b, c, plans, config);
    return;
  }
  CBM_CHECK(b.rows() == cols_, "multiply: inner dimensions differ");
  CBM_CHECK(c.rows() == rows_ && c.cols() == b.cols(),
            "multiply: output shape mismatch");
  // Each part resolves the plan for its own shape (its own tuning-cache
  // entry; probes multiply into the part's scratch, so no probe work is
  // wasted). Resolution runs serially up front — probing is itself a timed
  // parallel multiply and must not race other parts.
  std::vector<MultiplySchedule> plans;
  plans.reserve(parts_.size());
  tune::PlanDecision first;
  for (auto& part : parts_) {
    if (part.scratch.rows() != part.cbm.rows() ||
        part.scratch.cols() != b.cols()) {
      part.scratch = DenseMatrix<T>(part.cbm.rows(), b.cols());
    }
    const tune::PlanDecision decision =
        part.cbm.resolve_plan(b, part.scratch, config);
    if (plans.empty()) first = decision;
    plans.push_back(decision.plan.schedule);
  }
  if (plans.empty()) return;
  // One ambient SIMD level for the whole product: the kernel table is
  // process-global, so per-part SIMD switching inside concurrent tasks would
  // race. The parts share one CPU; the first part's pick stands in for all.
  SimdScope scope(options.simd ? *options.simd : first.plan.simd);
  multiply_with_plans(b, c, plans, config);
}

template <typename T>
void PartitionedCbmMatrix<T>::multiply(const DenseMatrix<T>& b,
                                       DenseMatrix<T>& c,
                                       UpdateSchedule schedule) {
  multiply(b, c, MultiplySchedule::two_stage(schedule));
}

template <typename T>
void PartitionedCbmMatrix<T>::multiply(const DenseMatrix<T>& b,
                                       DenseMatrix<T>& c,
                                       const MultiplySchedule& plan) {
  multiply(b, c, MultiplyOptions::with_plan(plan));
}

template <typename T>
void PartitionedCbmMatrix<T>::multiply_auto(const DenseMatrix<T>& b,
                                            DenseMatrix<T>& c) {
  multiply(b, c, MultiplyOptions::auto_plan());
}

template <typename T>
void PartitionedCbmMatrix<T>::multiply_with_plans(
    const DenseMatrix<T>& b, DenseMatrix<T>& c,
    std::span<const MultiplySchedule> plans, const RuntimeConfig& config) {
  CBM_CHECK(b.rows() == cols_, "multiply: inner dimensions differ");
  CBM_CHECK(c.rows() == rows_ && c.cols() == b.cols(),
            "multiply: output shape mismatch");
  CBM_CHECK(plans.size() == parts_.size(),
            "multiply: one plan per part required");
  CBM_SPAN("cbm.part_multiply");
  CBM_COUNTER_ADD("cbm.part.calls", 1);
  const PartExec exec_mode = config.part_exec;
  const NumaMode numa_mode = config.numa;
  const exec::NumaTopology& topology = exec::NumaTopology::host();

  // Size each part's scratch, first-touching fresh blocks on the node that
  // will run the part (interleave/bind): DenseMatrix zero-fills at
  // construction, so allocating under the node's affinity faults the pages
  // there. Single-node hosts and CBM_NUMA=off make the guard a no-op.
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    Part& part = parts_[i];
    if (part.scratch.rows() != part.cbm.rows() ||
        part.scratch.cols() != b.cols()) {
      const exec::NodeAffinityGuard guard(
          topology, exec::placement_node(topology, numa_mode, i));
      part.scratch = DenseMatrix<T>(part.cbm.rows(), b.cols());
    }
  }
  if (b.cols() == 0) return;

  if (exec_mode == PartExec::kSerial) {
    // Historical baseline: parts one at a time, each part's multiply a full
    // fork/join, then a separate parallel scatter — two barriers per part.
    // Kept selectable (CBM_PART_EXEC=serial) as the comparison point for
    // the task-graph executor.
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      Part& part = parts_[i];
      part.cbm.multiply(b, part.scratch, plans[i]);
      const auto nrows = static_cast<index_t>(part.rows.size());
#pragma omp parallel for schedule(static)
      for (index_t r = 0; r < nrows; ++r) {
        vec_copy(std::span<const T>(part.scratch.row(r)),
                 c.row(part.rows[r]));
      }
    }
    return;
  }

  // Task-graph execution: every part splits into column-panel tasks, each
  // task computing its panel of the part's product and immediately
  // scattering those columns to the global C rows — the scatter rides in
  // the task while the panel is cache-hot, instead of a separate barrier-
  // bounded pass. Panels are mutually independent (no CBM stage mixes
  // columns and parts own disjoint row sets), so the graph is pure fan-out:
  // one parallel region, no inter-part barriers, dynamic load balance
  // across parts of uneven size.
  const index_t p = b.cols();
  const auto nparts = parts_.size();
  const auto nth =
      static_cast<std::size_t>(std::max(1, max_threads()));
  // Enough tasks to feed and balance the team, but no finer than needed.
  const std::size_t target_tasks = std::max(4 * nth, nparts);
  const std::size_t panels_per_part =
      std::max<std::size_t>(1, (target_tasks + nparts - 1) / nparts);
  exec::TaskGraph graph;
  for (std::size_t i = 0; i < nparts; ++i) {
    Part& part = parts_[i];
    const MultiplySchedule& plan = plans[i];
    index_t w;
    if (plan.path == MultiplyPath::kFusedTiled) {
      // Respect the fused engine's cache-derived (or plan-pinned) tile
      // width — a panel is exactly one fused tile.
      w = plan.tile_cols > 0
              ? std::min(plan.tile_cols, p)
              : cbm_fused_resolve_tile_cols(part.cbm.rows(), p, sizeof(T));
    } else {
      w = static_cast<index_t>((static_cast<std::size_t>(p) +
                                panels_per_part - 1) /
                               panels_per_part);
      w = std::max(w, std::min<index_t>(p, 8));  // no slivers
    }
    w = std::max<index_t>(w, 1);
    const int node = exec::placement_node(topology, numa_mode, i);
    const int pin_node = numa_mode == NumaMode::kBind ? node : -1;
    for (index_t c0 = 0; c0 < p; c0 += w) {
      const index_t c1 = std::min<index_t>(c0 + w, p);
      graph.add_task([&part, plan, &b, &c, c0, c1, &topology, pin_node] {
        const exec::NodeAffinityGuard guard(topology, pin_node);
        part.cbm.multiply_columns(b, part.scratch, c0, c1, plan);
        const auto lo = static_cast<std::size_t>(c0);
        const auto len = static_cast<std::size_t>(c1 - c0);
        for (std::size_t r = 0; r < part.rows.size(); ++r) {
          vec_copy(std::span<const T>(part.scratch.row(static_cast<index_t>(r)))
                       .subspan(lo, len),
                   c.row(part.rows[r]).subspan(lo, len));
        }
      });
    }
  }
  graph.run();
}

template <typename T>
void PartitionedCbmMatrix<T>::ensure_row_index() {
  if (static_cast<index_t>(row_part_.size()) == rows_ && rows_ > 0) return;
  row_part_.assign(static_cast<std::size_t>(rows_), -1);
  row_local_.assign(static_cast<std::size_t>(rows_), -1);
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    const auto& rows = parts_[i].rows;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      row_part_[rows[r]] = static_cast<index_t>(i);
      row_local_[rows[r]] = static_cast<index_t>(r);
    }
  }
}

template <typename T>
MutationResult PartitionedCbmMatrix<T>::insert_edges(
    std::span<const EdgeUpdate> edges) {
  return mutate_edges(edges, {});
}

template <typename T>
MutationResult PartitionedCbmMatrix<T>::remove_edges(
    std::span<const EdgeUpdate> edges) {
  return mutate_edges({}, edges);
}

template <typename T>
MutationResult PartitionedCbmMatrix<T>::mutate_edges(
    std::span<const EdgeUpdate> inserts, std::span<const EdgeUpdate> removes) {
  CBM_SPAN("cbm.part_mutate");
  ensure_row_index();
  // Route each edge to the part owning its row, translating to the part's
  // local row id (columns are global in every part, so they pass through).
  std::vector<std::vector<EdgeUpdate>> part_ins(parts_.size());
  std::vector<std::vector<EdgeUpdate>> part_rem(parts_.size());
  const auto route = [&](std::span<const EdgeUpdate> edges,
                         std::vector<std::vector<EdgeUpdate>>& buckets) {
    for (const EdgeUpdate& e : edges) {
      CBM_CHECK(e.row >= 0 && e.row < rows_, "mutation edge row out of range");
      buckets[row_part_[e.row]].push_back({row_local_[e.row], e.col});
    }
  };
  route(inserts, part_ins);
  route(removes, part_rem);
  MutationResult total;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (part_ins[i].empty() && part_rem[i].empty()) continue;
    const MutationResult r =
        parts_[i].cbm.mutate_edges(part_ins[i], part_rem[i]);
    total.inserted += r.inserted;
    total.removed += r.removed;
    total.duplicate_inserts += r.duplicate_inserts;
    total.noop_removes += r.noop_removes;
    total.touched_rows += r.touched_rows;
    total.reparented_rows += r.reparented_rows;
    total.delta_nnz_change += r.delta_nnz_change;
    total.tree_changed = total.tree_changed || r.tree_changed;
  }
  return total;
}

template <typename T>
double PartitionedCbmMatrix<T>::staleness() const {
  // The CbmMatrix staleness formula over pooled bookkeeping: reparented
  // rows against the global row count, gain ratios over summed delta and
  // source nonzeros. Any mutated part makes the pooled epoch nonzero.
  MutationBookkeeping pooled;
  std::int64_t current_deltas = 0;
  for (const auto& part : parts_) {
    const MutationBookkeeping& s = part.cbm.mutation_state();
    pooled.epoch += s.epoch;
    pooled.reparented_rows += s.reparented_rows;
    pooled.baseline_nnz += s.baseline_nnz;
    pooled.baseline_deltas += s.baseline_deltas;
    pooled.source_nnz += s.source_nnz;
    current_deltas += part.cbm.delta_matrix().nnz();
  }
  return mutation_staleness(pooled, rows_, current_deltas);
}

template <typename T>
std::uint64_t PartitionedCbmMatrix<T>::mutation_epoch() const {
  std::uint64_t total = 0;
  for (const auto& part : parts_) total += part.cbm.mutation_epoch();
  return total;
}

template <typename T>
std::size_t PartitionedCbmMatrix<T>::bytes() const {
  std::size_t total = 0;
  for (const auto& part : parts_) {
    total += part.cbm.bytes() + part.rows.size() * sizeof(index_t);
  }
  return total;
}

template class PartitionedCbmMatrix<float>;
template class PartitionedCbmMatrix<double>;

}  // namespace cbm
