// Tests for CBM binary (de)serialisation: round trips for every kind,
// and rejection of corrupted streams.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cbm/serialize.hpp"
#include "check/check.hpp"
#include "dense/ops.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

template <typename T>
void expect_equivalent(const CbmMatrix<T>& a, const CbmMatrix<T>& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(a.kind(), b.kind());
  EXPECT_EQ(a.delta_matrix(), b.delta_matrix());
  for (index_t x = 0; x < a.rows(); ++x) {
    EXPECT_EQ(a.tree().parent(x), b.tree().parent(x));
  }
  ASSERT_EQ(a.diagonal().size(), b.diagonal().size());
  for (std::size_t i = 0; i < a.diagonal().size(); ++i) {
    EXPECT_EQ(a.diagonal()[i], b.diagonal()[i]);
  }
}

TEST(Serialize, RoundTripPlain) {
  const auto a = test::clustered_binary(40, 4, 8, 2, 700);
  const auto original = CbmMatrix<float>::compress(a, {.alpha = 2});
  std::stringstream buf;
  save_cbm(buf, original);
  const auto loaded = load_cbm<float>(buf);
  expect_equivalent(original, loaded);

  // Loaded object multiplies identically.
  const auto b = test::random_dense<float>(40, 6, 701);
  DenseMatrix<float> c1(40, 6), c2(40, 6);
  original.multiply(b, c1);
  loaded.multiply(b, c2);
  EXPECT_EQ(max_abs_diff(c1, c2), 0.0);
}

TEST(Serialize, RoundTripScaledKinds) {
  const auto a = test::clustered_binary(30, 3, 7, 2, 702);
  const auto d = test::random_diagonal<float>(30, 703);
  const auto dr = test::random_diagonal<float>(30, 704);
  for (const auto& original : {
           CbmMatrix<float>::compress_scaled(a, std::span<const float>(d),
                                             CbmKind::kColumnScaled),
           CbmMatrix<float>::compress_scaled(a, std::span<const float>(d),
                                             CbmKind::kSymScaled),
           CbmMatrix<float>::compress_two_sided(a, std::span<const float>(d),
                                                std::span<const float>(dr)),
       }) {
    std::stringstream buf;
    save_cbm(buf, original);
    const auto loaded = load_cbm<float>(buf);
    expect_equivalent(original, loaded);
  }
}

TEST(Serialize, RoundTripDouble) {
  CooMatrix<double> coo;
  coo.rows = 20;
  coo.cols = 20;
  const auto af = test::clustered_binary(20, 2, 6, 1, 705);
  for (index_t i = 0; i < 20; ++i) {
    for (const index_t j : af.row_indices(i)) coo.push(i, j, 1.0);
  }
  const auto original =
      CbmMatrix<double>::compress(CsrMatrix<double>::from_coo(coo));
  std::stringstream buf;
  save_cbm(buf, original);
  expect_equivalent(original, load_cbm<double>(buf));
}

TEST(Serialize, FileRoundTrip) {
  const auto a = test::clustered_binary(25, 3, 6, 1, 706);
  const auto original = CbmMatrix<float>::compress(a);
  const auto path =
      (std::filesystem::temp_directory_path() / "cbm_serialize_test.cbmf")
          .string();
  save_cbm_file(path, original);
  const auto loaded = load_cbm_file<float>(path);
  expect_equivalent(original, loaded);
  std::remove(path.c_str());
}

TEST(Serialize, RoundTripUnderFullValidation) {
  // Satellite check for cbm::check: serialize → deserialize → multiply with
  // CBM_VALIDATE=full in force. load_cbm goes through from_parts, so the
  // loaded matrix passes the whole validator, and the product still matches
  // the dense oracle.
  const test::EnvGuard env("CBM_VALIDATE", "full");
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto a = test::clustered_binary(44, 4, 9, 2, seed);
  const auto d = test::random_diagonal<float>(44, test::auto_seed(1));
  for (const auto& original : {
           CbmMatrix<float>::compress(a, {.alpha = 2}),
           CbmMatrix<float>::compress_scaled(a, std::span<const float>(d),
                                             CbmKind::kSymScaled),
       }) {
    std::stringstream buf;
    save_cbm(buf, original);
    const auto loaded = load_cbm<float>(buf);  // validated inside from_parts
    const auto report = check::validate(loaded);
    EXPECT_TRUE(report.ok()) << report.summary();

    const auto b = test::random_dense<float>(44, 6, test::auto_seed(2));
    DenseMatrix<float> c1(44, 6), c2(44, 6);
    original.multiply(b, c1);
    loaded.multiply(b, c2);
    EXPECT_EQ(max_abs_diff(c1, c2), 0.0);
  }
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream buf;
  buf << "NOPE garbage";
  EXPECT_THROW(load_cbm<float>(buf), CbmError);
}

TEST(Serialize, RejectsWrongValueWidth) {
  const auto a = test::clustered_binary(10, 2, 4, 1, 707);
  const auto original = CbmMatrix<float>::compress(a);
  std::stringstream buf;
  save_cbm(buf, original);
  EXPECT_THROW(load_cbm<double>(buf), CbmError);  // float file, double reader
}

TEST(Serialize, RejectsTruncation) {
  const auto a = test::clustered_binary(20, 2, 5, 1, 708);
  const auto original = CbmMatrix<float>::compress(a);
  std::stringstream buf;
  save_cbm(buf, original);
  const std::string full = buf.str();
  // Chop the stream at several points; every prefix must be rejected.
  for (const std::size_t keep :
       {std::size_t{3}, std::size_t{9}, full.size() / 2, full.size() - 4}) {
    std::stringstream cut(full.substr(0, keep));
    EXPECT_THROW(load_cbm<float>(cut), CbmError) << "kept " << keep;
  }
}

TEST(Serialize, RejectsCorruptedTree) {
  const auto a = test::clustered_binary(15, 2, 5, 1, 709);
  const auto original = CbmMatrix<float>::compress(a);
  std::stringstream buf;
  save_cbm(buf, original);
  std::string data = buf.str();
  // Parent array begins after
  // magic(4)+version(4)+endian(4)+kind(4)+width(4)+dims(16).
  const std::size_t parent_off = 36;
  // Point row 0's parent at itself → cycle → CompressionTree must throw.
  index_t self = 0;
  std::memcpy(data.data() + parent_off, &self, sizeof(self));
  std::stringstream corrupted(data);
  EXPECT_THROW(load_cbm<float>(corrupted), CbmError);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_cbm_file<float>("/nonexistent/x.cbmf"), CbmError);
}

/// Extracts the message of the CbmError `body` throws (empty = no throw).
template <typename Fn>
std::string error_message(Fn&& body) {
  try {
    body();
  } catch (const CbmError& e) {
    return e.what();
  }
  return {};
}

TEST(Serialize, RejectsUnsupportedVersionActionably) {
  const auto a = test::clustered_binary(10, 2, 4, 1, 710);
  const auto original = CbmMatrix<float>::compress(a);
  std::stringstream buf;
  save_cbm(buf, original);
  std::string data = buf.str();
  const std::uint32_t old_version = 1;  // a v1 writer: no endian sentinel
  std::memcpy(data.data() + 4, &old_version, sizeof(old_version));
  std::stringstream stale(data);
  const std::string msg =
      error_message([&] { (void)load_cbm<float>(stale); });
  EXPECT_NE(msg.find("unsupported format version 1"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("version 2"), std::string::npos) << msg;
}

TEST(Serialize, RejectsByteSwappedVersionAsEndianness) {
  const auto a = test::clustered_binary(10, 2, 4, 1, 711);
  const auto original = CbmMatrix<float>::compress(a);
  std::stringstream buf;
  save_cbm(buf, original);
  std::string data = buf.str();
  // What an opposite-endian writer would have produced for version 2.
  const std::uint32_t swapped = 0x02000000u;
  std::memcpy(data.data() + 4, &swapped, sizeof(swapped));
  std::stringstream foreign(data);
  const std::string msg =
      error_message([&] { (void)load_cbm<float>(foreign); });
  EXPECT_NE(msg.find("endianness mismatch"), std::string::npos) << msg;
}

TEST(Serialize, RejectsByteSwappedSentinelAsEndianness) {
  const auto a = test::clustered_binary(10, 2, 4, 1, 712);
  const auto original = CbmMatrix<float>::compress(a);
  std::stringstream buf;
  save_cbm(buf, original);
  std::string data = buf.str();
  const std::uint32_t swapped = 0x04030201u;  // byte-swapped 0x01020304
  std::memcpy(data.data() + 8, &swapped, sizeof(swapped));
  std::stringstream foreign(data);
  const std::string msg =
      error_message([&] { (void)load_cbm<float>(foreign); });
  EXPECT_NE(msg.find("endianness mismatch"), std::string::npos) << msg;
}

TEST(Serialize, RejectsCorruptSentinel) {
  const auto a = test::clustered_binary(10, 2, 4, 1, 713);
  const auto original = CbmMatrix<float>::compress(a);
  std::stringstream buf;
  save_cbm(buf, original);
  std::string data = buf.str();
  const std::uint32_t junk = 0xDEADBEEFu;
  std::memcpy(data.data() + 8, &junk, sizeof(junk));
  std::stringstream corrupt(data);
  const std::string msg =
      error_message([&] { (void)load_cbm<float>(corrupt); });
  EXPECT_NE(msg.find("endianness sentinel"), std::string::npos) << msg;
  EXPECT_NE(msg.find("deadbeef"), std::string::npos) << msg;
}

TEST(Serialize, TruncationErrorsNameTheField) {
  const auto a = test::clustered_binary(20, 2, 5, 1, 714);
  const auto original = CbmMatrix<float>::compress(a);
  std::stringstream buf;
  save_cbm(buf, original);
  const std::string full = buf.str();
  // Cut inside the header: the version read must name itself.
  std::stringstream header_cut(full.substr(0, 6));
  const std::string header_msg =
      error_message([&] { (void)load_cbm<float>(header_cut); });
  EXPECT_NE(header_msg.find("version"), std::string::npos) << header_msg;
  // Cut inside the trailing arrays: a truncated-array error, not a crash.
  std::stringstream body_cut(full.substr(0, full.size() - 2));
  const std::string body_msg =
      error_message([&] { (void)load_cbm<float>(body_cut); });
  EXPECT_NE(body_msg.find("truncated"), std::string::npos) << body_msg;
}

TEST(Serialize, FileLoadErrorsNameThePath) {
  const auto dir = std::filesystem::temp_directory_path() / "cbm-serialize-t";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "garbage.cbmf").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "CBMF";  // valid magic, then nothing — truncated at version
  }
  const std::string msg =
      error_message([&] { (void)load_cbm_file<float>(path); });
  EXPECT_NE(msg.find(path), std::string::npos) << msg;
  EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
  std::filesystem::remove_all(dir);
}

TEST(Serialize, RoundTripSurvivesHardenedHeader) {
  // The belt-and-braces check that v2 files round-trip bit-for-bit through
  // the persistence tier the serving cache uses.
  const auto a = test::clustered_binary(30, 3, 6, 2, 715);
  const auto diag = test::random_diagonal<float>(30, 716);
  const auto original = CbmMatrix<float>::compress_scaled(
      a, std::span<const float>(diag), CbmKind::kSymScaled);
  const auto dir = std::filesystem::temp_directory_path() / "cbm-serialize-r";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "roundtrip.cbmf").string();
  save_cbm_file(path, original);
  const auto loaded = load_cbm_file<float>(path);
  expect_equivalent(original, loaded);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cbm
