// Tests for union–find and Kruskal MST (the α=0 compression-tree solver).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tree/mst.hpp"
#include "tree/union_find.hpp"

namespace cbm {
namespace {

TEST(UnionFind, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));  // already joined
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(0, 3));
  EXPECT_EQ(uf.num_sets(), 3);
}

TEST(UnionFind, FindIsIdempotent) {
  UnionFind uf(10);
  uf.unite(3, 7);
  const index_t r = uf.find(3);
  EXPECT_EQ(uf.find(7), r);
  EXPECT_EQ(uf.find(r), r);
}

TEST(Mst, KnownTriangle) {
  // Triangle with weights 1, 2, 3: MST = {1, 2}.
  const std::vector<WeightedEdge> edges = {{0, 1, 1}, {1, 2, 2}, {0, 2, 3}};
  const auto mst = kruskal_mst(3, edges);
  EXPECT_EQ(mst.total_weight, 3);
  EXPECT_EQ(mst.edge_ids.size(), 2u);
}

TEST(Mst, DisconnectedThrows) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1}};
  EXPECT_THROW(kruskal_mst(3, edges), CbmError);
}

TEST(Mst, SingleNode) {
  const auto mst = kruskal_mst(1, {});
  EXPECT_EQ(mst.total_weight, 0);
  EXPECT_TRUE(mst.edge_ids.empty());
}

TEST(Mst, TieBreakPrefersEarlierEdge) {
  // Two weight-1 ways to connect node 1; stable sort keeps input order, so
  // the first listed edge must win (this implements the paper's prefer-the-
  // virtual-root engineering when virtual edges are emitted first).
  const std::vector<WeightedEdge> edges = {{0, 1, 1}, {2, 1, 1}, {0, 2, 0}};
  const auto mst = kruskal_mst(3, edges);
  EXPECT_EQ(mst.total_weight, 1);
  EXPECT_TRUE(std::find(mst.edge_ids.begin(), mst.edge_ids.end(), 0u) !=
              mst.edge_ids.end());
}

TEST(Mst, MatchesPrimOnRandomGraphs) {
  // Cross-check Kruskal against an independent O(V^2) Prim oracle.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const index_t n = 2 + static_cast<index_t>(rng.next_below(30));
    std::vector<WeightedEdge> edges;
    // Random spanning path guarantees connectivity, then random extras.
    for (index_t v = 1; v < n; ++v) {
      edges.push_back({v - 1, v, static_cast<std::int64_t>(rng.next_below(50))});
    }
    const auto extra = rng.next_below(60);
    for (std::uint64_t e = 0; e < extra; ++e) {
      const auto u = static_cast<index_t>(rng.next_below(n));
      const auto v = static_cast<index_t>(rng.next_below(n));
      if (u != v) {
        edges.push_back({u, v, static_cast<std::int64_t>(rng.next_below(50))});
      }
    }
    // Prim oracle over an adjacency-matrix view.
    std::vector<std::vector<std::int64_t>> w(
        n, std::vector<std::int64_t>(n, 1 << 20));
    for (const auto& e : edges) {
      w[e.src][e.dst] = std::min(w[e.src][e.dst], e.weight);
      w[e.dst][e.src] = std::min(w[e.dst][e.src], e.weight);
    }
    std::vector<bool> used(n, false);
    std::vector<std::int64_t> dist(n, 1 << 20);
    dist[0] = 0;
    std::int64_t prim_total = 0;
    for (index_t it = 0; it < n; ++it) {
      index_t best = -1;
      for (index_t v = 0; v < n; ++v) {
        if (!used[v] && (best == -1 || dist[v] < dist[best])) best = v;
      }
      used[best] = true;
      prim_total += dist[best];
      for (index_t v = 0; v < n; ++v) {
        if (!used[v]) dist[v] = std::min(dist[v], w[best][v]);
      }
    }
    const auto mst = kruskal_mst(n, edges);
    EXPECT_EQ(mst.total_weight, prim_total) << "trial " << trial;
  }
}

TEST(RootTree, ParentArrayFromForest) {
  // Star around node 2 rooted at 0 through chain 0-1-2.
  const std::vector<WeightedEdge> edges = {
      {0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {2, 4, 1}};
  const std::vector<std::size_t> ids = {0, 1, 2, 3};
  const auto parent = root_tree(5, edges, ids, 0);
  EXPECT_EQ(parent[0], -1);
  EXPECT_EQ(parent[1], 0);
  EXPECT_EQ(parent[2], 1);
  EXPECT_EQ(parent[3], 2);
  EXPECT_EQ(parent[4], 2);
}

TEST(RootTree, UnreachableNodeThrows) {
  const std::vector<WeightedEdge> edges = {{0, 1, 1}};
  const std::vector<std::size_t> ids = {0};
  EXPECT_THROW(root_tree(3, edges, ids, 0), CbmError);
}

}  // namespace
}  // namespace cbm
