// Tests for the GCN normalisation Â = D^{-1/2}(A+I)D^{-1/2}.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/laplacian.hpp"
#include "sparse/scale.hpp"

namespace cbm {
namespace {

TEST(Laplacian, FactorsAreConsistent) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  const auto norm = gcn_normalization<float>(g);
  // A+I is binary with self-loops.
  EXPECT_TRUE(norm.a_plus_i.is_binary());
  for (index_t v = 0; v < 3; ++v) {
    EXPECT_FLOAT_EQ(norm.a_plus_i.at(v, v), 1.0f);
    EXPECT_FLOAT_EQ(norm.dinv_sqrt[v],
                    1.0f / std::sqrt(static_cast<float>(g.degree(v) + 1)));
  }
}

TEST(Laplacian, MaterialisedMatchesFactors) {
  const Graph g = barabasi_albert(60, 2, 11);
  const auto norm = gcn_normalization<float>(g);
  const auto direct = gcn_normalized_adjacency<float>(g);
  const auto composed =
      scale_both<float>(norm.a_plus_i, norm.dinv_sqrt, norm.dinv_sqrt);
  EXPECT_EQ(direct, composed);
}

TEST(Laplacian, KnownPathGraphValues) {
  // Path 0-1-2: degrees+1 = {2, 3, 2}.
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  const auto ahat = gcn_normalized_adjacency<double>(g);
  EXPECT_NEAR(ahat.at(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(ahat.at(1, 1), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(ahat.at(0, 1), 1.0 / std::sqrt(6.0), 1e-12);
  EXPECT_NEAR(ahat.at(1, 0), 1.0 / std::sqrt(6.0), 1e-12);
  EXPECT_NEAR(ahat.at(0, 2), 0.0, 1e-12);
}

TEST(Laplacian, SymmetricResult) {
  const Graph g = erdos_renyi(40, 80, 13);
  const auto ahat = gcn_normalized_adjacency<float>(g);
  for (index_t i = 0; i < 40; ++i) {
    for (const index_t j : ahat.row_indices(i)) {
      EXPECT_FLOAT_EQ(ahat.at(j, i), ahat.at(i, j));
    }
  }
}

TEST(Laplacian, IsolatedNodeHandled) {
  // Node 2 isolated: deg+1 = 1 → Â(2,2) = 1.
  const Graph g = Graph::from_edges(3, {{0, 1}});
  const auto ahat = gcn_normalized_adjacency<float>(g);
  EXPECT_FLOAT_EQ(ahat.at(2, 2), 1.0f);
}

}  // namespace
}  // namespace cbm
