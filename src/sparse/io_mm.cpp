#include "sparse/io_mm.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace cbm {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

template <typename T>
CooMatrix<T> read_matrix_market(std::istream& in) {
  std::string line;
  CBM_CHECK(static_cast<bool>(std::getline(in, line)),
            "matrix market: empty stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  CBM_CHECK(banner == "%%MatrixMarket", "matrix market: bad banner");
  CBM_CHECK(lower(object) == "matrix" && lower(format) == "coordinate",
            "matrix market: only 'matrix coordinate' supported");
  field = lower(field);
  symmetry = lower(symmetry);
  const bool pattern = field == "pattern";
  CBM_CHECK(pattern || field == "real" || field == "integer",
            "matrix market: unsupported field type " + field);
  const bool symmetric = symmetry == "symmetric";
  CBM_CHECK(symmetric || symmetry == "general",
            "matrix market: unsupported symmetry " + symmetry);

  // Skip comments, read size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size(line);
  long long rows = 0, cols = 0, entries = 0;
  size >> rows >> cols >> entries;
  CBM_CHECK(rows > 0 && cols > 0 && entries >= 0,
            "matrix market: bad size line");

  CooMatrix<T> coo;
  coo.rows = static_cast<index_t>(rows);
  coo.cols = static_cast<index_t>(cols);
  coo.reserve(static_cast<std::size_t>(symmetric ? 2 * entries : entries));
  for (long long e = 0; e < entries; ++e) {
    CBM_CHECK(static_cast<bool>(std::getline(in, line)),
              "matrix market: truncated entry list");
    std::istringstream row(line);
    long long i = 0, j = 0;
    double v = 1.0;
    row >> i >> j;
    if (!pattern) row >> v;
    CBM_CHECK(i >= 1 && i <= rows && j >= 1 && j <= cols,
              "matrix market: entry out of bounds");
    coo.push(static_cast<index_t>(i - 1), static_cast<index_t>(j - 1),
             static_cast<T>(v));
    if (symmetric && i != j) {
      coo.push(static_cast<index_t>(j - 1), static_cast<index_t>(i - 1),
               static_cast<T>(v));
    }
  }
  return coo;
}

template <typename T>
CooMatrix<T> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  CBM_CHECK(in.good(), "cannot open matrix market file: " + path);
  return read_matrix_market<T>(in);
}

template <typename T>
void write_matrix_market(std::ostream& out, const CooMatrix<T>& coo) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << coo.rows << ' ' << coo.cols << ' ' << coo.nnz() << '\n';
  for (std::size_t k = 0; k < coo.nnz(); ++k) {
    out << (coo.row_idx[k] + 1) << ' ' << (coo.col_idx[k] + 1) << ' '
        << coo.values[k] << '\n';
  }
}

template <typename T>
void write_matrix_market_file(const std::string& path,
                              const CooMatrix<T>& coo) {
  std::ofstream out(path);
  CBM_CHECK(out.good(), "cannot open file for writing: " + path);
  write_matrix_market(out, coo);
}

template CooMatrix<float> read_matrix_market<float>(std::istream&);
template CooMatrix<double> read_matrix_market<double>(std::istream&);
template CooMatrix<float> read_matrix_market_file<float>(const std::string&);
template CooMatrix<double> read_matrix_market_file<double>(const std::string&);
template void write_matrix_market<float>(std::ostream&,
                                         const CooMatrix<float>&);
template void write_matrix_market<double>(std::ostream&,
                                          const CooMatrix<double>&);
template void write_matrix_market_file<float>(const std::string&,
                                              const CooMatrix<float>&);
template void write_matrix_market_file<double>(const std::string&,
                                               const CooMatrix<double>&);

}  // namespace cbm
