// Binary (de)serialisation of the CBM format.
//
// The paper's timing protocol assumes the graph "must first be made
// available in CBM format as a pre-processing step" (§VI-D); this module
// makes that workflow concrete: compress once, persist, and load at
// inference time without paying the O(n·nnz) construction cost again.
//
// Format (little-endian, version 1):
//   magic   "CBMF"            4 bytes
//   version u32               currently 1
//   kind    u32               CbmKind
//   value   u32               sizeof(T) — 4 (float) or 8 (double)
//   rows    i64, cols i64
//   parent  i32[rows]         compression tree (virtual root = rows)
//   nnz     i64
//   indptr  i64[rows+1], indices i32[nnz], values T[nnz]
//   diag_len i64, diag T[diag_len]
#pragma once

#include <iosfwd>
#include <string>

#include "cbm/cbm_matrix.hpp"

namespace cbm {

/// Writes a CbmMatrix to a binary stream. Throws CbmError on I/O failure.
template <typename T>
void save_cbm(std::ostream& out, const CbmMatrix<T>& m);

/// Reads a CbmMatrix from a binary stream. Validates magic, version, value
/// width and structural invariants; throws CbmError on any mismatch.
template <typename T>
CbmMatrix<T> load_cbm(std::istream& in);

/// File-path convenience wrappers.
template <typename T>
void save_cbm_file(const std::string& path, const CbmMatrix<T>& m);
template <typename T>
CbmMatrix<T> load_cbm_file(const std::string& path);

extern template void save_cbm<float>(std::ostream&, const CbmMatrix<float>&);
extern template void save_cbm<double>(std::ostream&, const CbmMatrix<double>&);
extern template CbmMatrix<float> load_cbm<float>(std::istream&);
extern template CbmMatrix<double> load_cbm<double>(std::istream&);
extern template void save_cbm_file<float>(const std::string&,
                                          const CbmMatrix<float>&);
extern template void save_cbm_file<double>(const std::string&,
                                           const CbmMatrix<double>&);
extern template CbmMatrix<float> load_cbm_file<float>(const std::string&);
extern template CbmMatrix<double> load_cbm_file<double>(const std::string&);

}  // namespace cbm
