// Repetition-timing helper: warmup runs, then `reps` timed runs, collecting
// mean ± std exactly as the paper reports (§VI-B: averages over 250 runs).
#pragma once

#include "common/stats.hpp"
#include "common/timer.hpp"

namespace cbm {

/// Times fn() `reps` times after `warmup` untimed calls; returns seconds
/// statistics.
template <typename Fn>
RunStats time_repetitions(Fn&& fn, int reps, int warmup) {
  for (int i = 0; i < warmup; ++i) fn();
  RunStats stats;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    stats.add(t.seconds());
  }
  return stats;
}

}  // namespace cbm
