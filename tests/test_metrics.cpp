// Tests for graph metrics (clustering coefficient = the paper's Table V
// compressibility indicator, triangles, components, degree stats).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace cbm {
namespace {

Graph triangle_plus_tail() {
  // 0-1-2 triangle, 3 attached to 2, 4 isolated.
  return Graph::from_edges(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
}

TEST(Metrics, LocalClusteringKnownValues) {
  const Graph g = triangle_plus_tail();
  EXPECT_DOUBLE_EQ(local_clustering(g, 0), 1.0);  // both neighbors adjacent
  EXPECT_DOUBLE_EQ(local_clustering(g, 1), 1.0);
  // Node 2 has neighbors {0,1,3}: one adjacent pair of three.
  EXPECT_DOUBLE_EQ(local_clustering(g, 2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(local_clustering(g, 3), 0.0);  // degree 1
  EXPECT_DOUBLE_EQ(local_clustering(g, 4), 0.0);  // isolated
}

TEST(Metrics, AverageClusteringKnownGraph) {
  const Graph g = triangle_plus_tail();
  EXPECT_DOUBLE_EQ(average_clustering(g), (1.0 + 1.0 + 1.0 / 3.0) / 5.0);
}

TEST(Metrics, CompleteGraphClusteringIsOne) {
  std::vector<std::pair<index_t, index_t>> edges;
  for (index_t i = 0; i < 8; ++i) {
    for (index_t j = i + 1; j < 8; ++j) edges.emplace_back(i, j);
  }
  const Graph k8 = Graph::from_edges(8, edges);
  EXPECT_DOUBLE_EQ(average_clustering(k8), 1.0);
  EXPECT_EQ(triangle_count(k8), 56u);  // C(8,3)
}

TEST(Metrics, StarGraphClusteringIsZero) {
  std::vector<std::pair<index_t, index_t>> edges;
  for (index_t i = 1; i < 10; ++i) edges.emplace_back(0, i);
  const Graph star = Graph::from_edges(10, edges);
  EXPECT_DOUBLE_EQ(average_clustering(star), 0.0);
  EXPECT_EQ(triangle_count(star), 0u);
}

TEST(Metrics, TriangleCountKnownGraph) {
  EXPECT_EQ(triangle_count(triangle_plus_tail()), 1u);
}

TEST(Metrics, SampledClusteringApproximatesExact) {
  const Graph g = watts_strogatz(500, 5, 0.1, 17);
  const double exact = average_clustering(g);
  const double sampled = average_clustering_sampled(g, 400, 3);
  EXPECT_NEAR(sampled, exact, 0.08);
}

TEST(Metrics, ConnectedComponents) {
  const Graph g = Graph::from_edges(6, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_EQ(connected_components(g), 3);  // {0,1,2}, {3,4}, {5}
  const Graph connected = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(connected_components(connected), 1);
}

TEST(Metrics, DegreeStats) {
  const Graph g = triangle_plus_tail();
  const auto s = degree_stats(g);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 3);
  EXPECT_DOUBLE_EQ(s.mean, 8.0 / 5.0);
  EXPECT_GT(s.stddev, 0.0);
}

TEST(Metrics, CliqueFamilyOrderingMatchesPaper) {
  // The paper's Table V claim: clique-heavy graphs cluster more than
  // preferential-attachment graphs of similar size.
  CliqueUnionParams p;
  p.num_nodes = 500;
  p.num_cliques = 700;
  p.clique_min = 3;
  p.clique_max = 9;
  p.reuse_prob = 0.8;
  const Graph cliquey = clique_union(p, 9);
  const Graph citation = barabasi_albert(500, 3, 9);
  EXPECT_GT(average_clustering(cliquey), average_clustering(citation));
}

}  // namespace
}  // namespace cbm
