#include "check/oracle.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sparse/coo.hpp"

namespace cbm::check {

// ---------------------------------------------------------------- seeds --

std::optional<std::uint64_t> env_seed() {
  const char* v = std::getenv("CBM_TEST_SEED");
  if (v == nullptr || *v == '\0') return std::nullopt;
  char* end = nullptr;
  const std::uint64_t seed = std::strtoull(v, &end, /*base=*/0);
  CBM_CHECK(end != v && *end == '\0',
            std::string("CBM_TEST_SEED: not a number: '") + v + "'");
  return seed;
}

std::uint64_t seed_from_name(std::string_view name, std::uint64_t salt) {
  if (const auto fixed = env_seed()) return *fixed + salt;
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  std::uint64_t state = h ^ (salt * 0x9e3779b97f4a7c15ull);
  return splitmix64(state);
}

// ----------------------------------------------------------- generators --

template <typename T>
CsrMatrix<T> random_binary(index_t n, double density, std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix<T> coo;
  coo.rows = n;
  coo.cols = n;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (rng.next_bool(density)) coo.push(i, j, T{1});
    }
  }
  return CsrMatrix<T>::from_coo(coo);
}

template <typename T>
CsrMatrix<T> clustered_binary(index_t n, index_t groups, index_t base_nnz,
                              index_t flips, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<bool>> templates(
      groups, std::vector<bool>(static_cast<std::size_t>(n), false));
  for (auto& t : templates) {
    for (index_t k = 0; k < base_nnz; ++k) {
      t[rng.next_below(static_cast<std::uint64_t>(n))] = true;
    }
  }
  CooMatrix<T> coo;
  coo.rows = n;
  coo.cols = n;
  for (index_t i = 0; i < n; ++i) {
    auto row = templates[static_cast<std::size_t>(i) % groups];
    for (index_t f = 0; f < flips; ++f) {
      const auto j = rng.next_below(static_cast<std::uint64_t>(n));
      row[j] = !row[j];
    }
    for (index_t j = 0; j < n; ++j) {
      if (row[j]) coo.push(i, j, T{1});
    }
  }
  return CsrMatrix<T>::from_coo(coo);
}

template <typename T>
CsrMatrix<T> banded_binary(index_t n, index_t bandwidth, double density,
                           std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix<T> coo;
  coo.rows = n;
  coo.cols = n;
  for (index_t i = 0; i < n; ++i) {
    const index_t lo = i > bandwidth ? i - bandwidth : 0;
    const index_t hi = std::min<index_t>(n - 1, i + bandwidth);
    for (index_t j = lo; j <= hi; ++j) {
      if (rng.next_bool(density)) coo.push(i, j, T{1});
    }
  }
  return CsrMatrix<T>::from_coo(coo);
}

template <typename T>
CsrMatrix<T> power_law_binary(index_t n, index_t m, std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix<T> coo;
  coo.rows = n;
  coo.cols = n;
  std::vector<bool> mask(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    std::fill(mask.begin(), mask.end(), false);
    for (index_t k = 0; k < m; ++k) {
      // Inverse-CDF draw with pdf ∝ 1/(j+1): hub columns land in most rows.
      const double u = rng.next_double();
      auto j = static_cast<index_t>(
          std::pow(static_cast<double>(n), u)) - 1;
      j = std::clamp<index_t>(j, 0, n - 1);
      mask[j] = true;
    }
    for (index_t j = 0; j < n; ++j) {
      if (mask[j]) coo.push(i, j, T{1});
    }
  }
  return CsrMatrix<T>::from_coo(coo);
}

template <typename T>
CsrMatrix<T> empty_binary(index_t rows, index_t cols) {
  return CsrMatrix<T>(
      rows, cols,
      std::vector<offset_t>(static_cast<std::size_t>(rows) + 1, 0), {}, {});
}

template <typename T>
CsrMatrix<T> dense_binary(index_t rows, index_t cols) {
  CooMatrix<T> coo;
  coo.rows = rows;
  coo.cols = cols;
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) coo.push(i, j, T{1});
  }
  return CsrMatrix<T>::from_coo(coo);
}

template <typename T>
CsrMatrix<T> identical_rows_binary(index_t n, index_t row_nnz,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<bool> mask(static_cast<std::size_t>(n));
  for (index_t k = 0; k < row_nnz; ++k) {
    mask[rng.next_below(static_cast<std::uint64_t>(n))] = true;
  }
  CooMatrix<T> coo;
  coo.rows = n;
  coo.cols = n;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (mask[j]) coo.push(i, j, T{1});
    }
  }
  return CsrMatrix<T>::from_coo(coo);
}

template <typename T>
CsrMatrix<T> single_dense_row_binary(index_t n, index_t dense_row,
                                     double density, std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix<T> coo;
  coo.rows = n;
  coo.cols = n;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (i == dense_row || rng.next_bool(density)) coo.push(i, j, T{1});
    }
  }
  return CsrMatrix<T>::from_coo(coo);
}

template <typename T>
DenseMatrix<T> to_dense(const CsrMatrix<T>& a) {
  DenseMatrix<T> out(a.rows(), a.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_indices(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) out(i, cols[k]) = vals[k];
  }
  return out;
}

template <typename T>
DenseMatrix<T> random_dense(index_t rows, index_t cols, std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix<T> m(rows, cols);
  m.fill_uniform(rng);
  return m;
}

template <typename T>
std::vector<T> random_diagonal(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> d(static_cast<std::size_t>(n));
  for (auto& v : d) v = static_cast<T>(0.5 + rng.next_double());
  return d;
}

// ------------------------------------------------------ reference kernels --

template <typename T>
DenseMatrix<T> dense_reference_multiply(const CsrMatrix<T>& a,
                                        const DenseMatrix<T>& b) {
  CBM_CHECK(a.cols() == b.rows(), "oracle: inner dimensions differ");
  const DenseMatrix<T> ad = to_dense(a);
  DenseMatrix<T> c(a.rows(), b.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (index_t k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(ad(i, k)) * static_cast<double>(b(k, j));
      }
      c(i, j) = static_cast<T>(acc);
    }
  }
  return c;
}

template <typename T>
DenseMatrix<T> dense_reference_multiply_transposed(const CsrMatrix<T>& a,
                                                   const DenseMatrix<T>& b) {
  CBM_CHECK(a.rows() == b.rows(), "oracle: inner dimensions differ");
  const DenseMatrix<T> ad = to_dense(a);
  DenseMatrix<T> c(a.cols(), b.cols());
  for (index_t i = 0; i < a.cols(); ++i) {
    for (index_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (index_t k = 0; k < a.rows(); ++k) {
        acc += static_cast<double>(ad(k, i)) * static_cast<double>(b(k, j));
      }
      c(i, j) = static_cast<T>(acc);
    }
  }
  return c;
}

template <typename T>
std::vector<T> dense_reference_multiply_vector(const CsrMatrix<T>& a,
                                               std::span<const T> x) {
  CBM_CHECK(x.size() == static_cast<std::size_t>(a.cols()),
            "oracle: x length mismatch");
  const DenseMatrix<T> ad = to_dense(a);
  std::vector<T> y(static_cast<std::size_t>(a.rows()));
  for (index_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    for (index_t k = 0; k < a.cols(); ++k) {
      acc += static_cast<double>(ad(i, k)) * static_cast<double>(x[k]);
    }
    y[i] = static_cast<T>(acc);
  }
  return y;
}

// ------------------------------------------------------------ comparators --

namespace {

/// Maps a float onto the integer lattice where adjacent representable
/// values differ by 1 and the ordering matches <. ±0 both map to 0, so the
/// distance counts "through" zero.
std::int64_t float_lattice(float f) {
  const auto u = std::bit_cast<std::uint32_t>(f);
  const std::int64_t mag = u & 0x7fffffffu;
  return (u >> 31) != 0 ? -mag : mag;
}

std::int64_t double_lattice(double d) {
  const auto u = std::bit_cast<std::uint64_t>(d);
  const auto mag = static_cast<std::int64_t>(u & 0x7fffffffffffffffull);
  return (u >> 63) != 0 ? -mag : mag;
}

std::int64_t lattice_distance(std::int64_t ka, std::int64_t kb) {
  if ((ka < 0) == (kb < 0)) return ka < kb ? kb - ka : ka - kb;
  const std::int64_t abs_a = ka < 0 ? -ka : ka;
  const std::int64_t abs_b = kb < 0 ? -kb : kb;
  if (abs_a > std::numeric_limits<std::int64_t>::max() - abs_b) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return abs_a + abs_b;
}

}  // namespace

std::int64_t ulp_distance(float a, float b) {
  if (!std::isfinite(a) || !std::isfinite(b)) {
    return a == b ? 0 : std::numeric_limits<std::int64_t>::max();
  }
  return lattice_distance(float_lattice(a), float_lattice(b));
}

std::int64_t ulp_distance(double a, double b) {
  if (!std::isfinite(a) || !std::isfinite(b)) {
    return a == b ? 0 : std::numeric_limits<std::int64_t>::max();
  }
  return lattice_distance(double_lattice(a), double_lattice(b));
}

std::string CompareResult::to_string() const {
  if (ok) return "ok";
  std::ostringstream os;
  if (row < 0) {
    os << "shape mismatch";
    return os.str();
  }
  os << "row " << row << " col " << col << ": actual " << actual
     << " expected " << expected << " (abs " << max_abs_err << ", rel "
     << max_rel_err << ", " << max_ulp << " ulp)";
  return os.str();
}

namespace {

template <typename T>
CompareResult compare_impl(const T* actual, const T* expected, index_t rows,
                           index_t cols, double rtol, double atol,
                           std::int64_t max_ulps) {
  CompareResult r;
  double worst_badness = -1.0;
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) {
      const std::size_t k = static_cast<std::size_t>(i) *
                                static_cast<std::size_t>(cols) +
                            static_cast<std::size_t>(j);
      const double a = static_cast<double>(actual[k]);
      const double e = static_cast<double>(expected[k]);
      const double abs_err = std::abs(a - e);
      const double tol = atol + rtol * std::abs(e);
      const std::int64_t ulp = ulp_distance(actual[k], expected[k]);
      const bool pass = abs_err <= tol || ulp <= max_ulps;
      if (!pass) r.ok = false;
      // Track the worst element by how far it overshoots its tolerance, so
      // the reported coordinates are the most diagnostic ones.
      const double badness = tol > 0 ? abs_err / tol : abs_err;
      if (badness > worst_badness) {
        worst_badness = badness;
        r.row = i;
        r.col = j;
        r.actual = a;
        r.expected = e;
        r.max_ulp = ulp;
      }
      r.max_abs_err = std::max(r.max_abs_err, abs_err);
      const double denom = std::max(std::abs(e), 1e-300);
      r.max_rel_err = std::max(r.max_rel_err, abs_err / denom);
    }
  }
  return r;
}

}  // namespace

template <typename T>
CompareResult compare_allclose(const DenseMatrix<T>& actual,
                               const DenseMatrix<T>& expected, double rtol,
                               double atol, std::int64_t max_ulps) {
  if (actual.rows() != expected.rows() || actual.cols() != expected.cols()) {
    CompareResult r;
    r.ok = false;
    return r;
  }
  return compare_impl(actual.data(), expected.data(), actual.rows(),
                      actual.cols(), rtol, atol, max_ulps);
}

template <typename T>
CompareResult compare_allclose(std::span<const T> actual,
                               std::span<const T> expected, double rtol,
                               double atol, std::int64_t max_ulps) {
  if (actual.size() != expected.size()) {
    CompareResult r;
    r.ok = false;
    return r;
  }
  return compare_impl(actual.data(), expected.data(), 1,
                      static_cast<index_t>(actual.size()), rtol, atol,
                      max_ulps);
}

#define CBM_CHECK_ORACLE_INSTANTIATE(T)                                     \
  template CsrMatrix<T> random_binary<T>(index_t, double, std::uint64_t);   \
  template CsrMatrix<T> clustered_binary<T>(index_t, index_t, index_t,      \
                                            index_t, std::uint64_t);        \
  template CsrMatrix<T> banded_binary<T>(index_t, index_t, double,          \
                                         std::uint64_t);                    \
  template CsrMatrix<T> power_law_binary<T>(index_t, index_t,               \
                                            std::uint64_t);                 \
  template CsrMatrix<T> empty_binary<T>(index_t, index_t);                  \
  template CsrMatrix<T> dense_binary<T>(index_t, index_t);                  \
  template CsrMatrix<T> identical_rows_binary<T>(index_t, index_t,          \
                                                 std::uint64_t);            \
  template CsrMatrix<T> single_dense_row_binary<T>(index_t, index_t,        \
                                                   double, std::uint64_t);  \
  template DenseMatrix<T> to_dense<T>(const CsrMatrix<T>&);                 \
  template DenseMatrix<T> random_dense<T>(index_t, index_t, std::uint64_t); \
  template std::vector<T> random_diagonal<T>(index_t, std::uint64_t);       \
  template DenseMatrix<T> dense_reference_multiply<T>(const CsrMatrix<T>&,  \
                                                      const DenseMatrix<T>&); \
  template DenseMatrix<T> dense_reference_multiply_transposed<T>(           \
      const CsrMatrix<T>&, const DenseMatrix<T>&);                          \
  template std::vector<T> dense_reference_multiply_vector<T>(               \
      const CsrMatrix<T>&, std::span<const T>);                             \
  template CompareResult compare_allclose<T>(const DenseMatrix<T>&,         \
                                             const DenseMatrix<T>&, double, \
                                             double, std::int64_t);         \
  template CompareResult compare_allclose<T>(std::span<const T>,            \
                                             std::span<const T>, double,    \
                                             double, std::int64_t)

CBM_CHECK_ORACLE_INSTANTIATE(float);
CBM_CHECK_ORACLE_INSTANTIATE(double);
#undef CBM_CHECK_ORACLE_INSTANTIATE

}  // namespace cbm::check
