#include "serve/cache.hpp"

#include <cstdio>
#include <utility>
#include <vector>

#include "cbm/mutate.hpp"
#include "cbm/serialize.hpp"
#include "common/envknobs.hpp"
#include "obs/obs.hpp"

namespace cbm::serve {

template <typename T>
AdjacencyCache<T>::AdjacencyCache(std::size_t byte_budget,
                                  std::string persist_dir)
    : byte_budget_(byte_budget), persist_dir_(std::move(persist_dir)) {}

template <typename T>
std::string AdjacencyCache<T>::entry_path(const GraphKey& key) const {
  if (persist_dir_.empty()) return {};
  char name[64];
  std::snprintf(name, sizeof(name), "%016llx-%u-%d.cbmf",
                static_cast<unsigned long long>(key.fingerprint), key.kind,
                key.alpha);
  return persist_dir_ + "/" + name;
}

template <typename T>
typename AdjacencyCache<T>::EntryPtr AdjacencyCache<T>::lookup(
    const GraphKey& key) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      CBM_COUNTER_ADD("cbm.serve.cache.hits", 1);
      return *it->second;
    }
  }
  // In-memory miss: try the disk tier before making the caller recompress.
  if (!persist_dir_.empty()) {
    try {
      CbmMatrix<T> cbm = load_cbm_file<T>(entry_path(key));
      if (cbm.rows() == key.rows && cbm.cols() == key.cols &&
          static_cast<std::uint32_t>(cbm.kind()) == key.kind) {
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.disk_hits;
        }
        CBM_COUNTER_ADD("cbm.serve.cache.disk_hits", 1);
        return insert(key, std::move(cbm));
      }
      // Shape/kind disagree with the key: stale or colliding file. Treat as
      // a miss; the re-insert below will overwrite it.
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.disk_errors;
      CBM_COUNTER_ADD("cbm.serve.cache.disk_errors", 1);
    } catch (const CbmError&) {
      // Absent, truncated, or wrong-format file — all degrade to a miss.
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.misses;
  CBM_COUNTER_ADD("cbm.serve.cache.misses", 1);
  return nullptr;
}

template <typename T>
typename AdjacencyCache<T>::EntryPtr AdjacencyCache<T>::insert(
    const GraphKey& key, CbmMatrix<T> cbm) {
  auto entry = std::make_shared<CacheEntry<T>>(key, std::move(cbm));
  if (!persist_dir_.empty()) {
    try {
      save_cbm_file(entry_path(key), entry->cbm());
    } catch (const CbmError&) {
      // Persistence is an optimisation tier: an unwritable directory must
      // not fail the request that compressed the graph.
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.disk_errors;
      CBM_COUNTER_ADD("cbm.serve.cache.disk_errors", 1);
    }
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    // First writer wins: a concurrent compression of the same graph already
    // landed. Return the resident entry so plan memoisation stays shared.
    lru_.splice(lru_.begin(), lru_, it->second);
    return *it->second;
  }
  lru_.push_front(entry);
  index_.emplace(key, lru_.begin());
  bytes_ += entry->bytes();
  evict_over_budget_locked();
  stats_.entries = index_.size();
  stats_.bytes = bytes_;
  CBM_GAUGE_SET("cbm.serve.cache.bytes", static_cast<std::int64_t>(bytes_));
  CBM_GAUGE_SET("cbm.serve.cache.entries",
                static_cast<std::int64_t>(index_.size()));
  return entry;
}

template <typename T>
void AdjacencyCache<T>::evict_over_budget_locked() {
  // Never evict the MRU entry (the one just inserted/touched): a single
  // over-budget graph still has to be servable.
  while (bytes_ > byte_budget_ && lru_.size() > 1) {
    const EntryPtr& victim = lru_.back();
    bytes_ -= victim->bytes();
    index_.erase(victim->key());
    lru_.pop_back();
    ++stats_.evictions;
    CBM_COUNTER_ADD("cbm.serve.cache.evictions", 1);
  }
}

template <typename T>
bool AdjacencyCache<T>::invalidate(const GraphKey& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  bytes_ -= (*it->second)->bytes();
  lru_.erase(it->second);
  index_.erase(it);
  ++stats_.invalidations;
  stats_.entries = index_.size();
  stats_.bytes = bytes_;
  CBM_COUNTER_ADD("cbm.serve.cache.invalidations", 1);
  CBM_GAUGE_SET("cbm.serve.cache.bytes", static_cast<std::int64_t>(bytes_));
  CBM_GAUGE_SET("cbm.serve.cache.entries",
                static_cast<std::int64_t>(index_.size()));
  return true;
}

template <typename T>
typename AdjacencyCache<T>::MutationOutcome
AdjacencyCache<T>::mutate_or_invalidate(const GraphKey& key,
                                        std::span<const EdgeUpdate> inserts,
                                        std::span<const EdgeUpdate> removes,
                                        double stale_threshold) {
  CBM_SPAN("cbm.serve.mutate");
  MutationOutcome out;
  out.new_key = key;
  // lookup (not a raw index probe) so a disk-resident entry is mutable too;
  // the hit/miss accounting it does reflects a real access.
  const EntryPtr entry = lookup(key);
  if (entry == nullptr) return out;
  if (!cbm_kind_mutable(entry->cbm().kind())) {
    invalidate(key);
    out.action = MutationOutcome::Action::kInvalidated;
    CBM_COUNTER_ADD("cbm.serve.cache.mutation_invalidations", 1);
    return out;
  }

  // Clone-patch-publish: in-flight multiplies keep the old snapshot via
  // their shared_ptr; only the clone is ever mutated.
  CbmMatrix<T> clone = entry->cbm();
  out.mutation = clone.mutate_edges(inserts, removes);
  out.staleness = clone.staleness();

  // Canonical key of the mutated graph: the binary pattern a fresh request
  // for it would fingerprint (values of scaled kinds are D's business).
  CsrMatrix<T> pattern = clone.materialize();
  if (clone.kind() != CbmKind::kPlain) {
    for (auto& v : pattern.values_mut()) v = T{1};
  }
  out.new_key = make_graph_key(pattern, key.kind, key.alpha);

  double threshold = stale_threshold;
  if (threshold < 0.0) threshold = RuntimeConfig::from_env().stale_threshold;
  if (out.staleness >= threshold) {
    // Staleness crossed the line: the incremental patch has degraded the
    // format enough that a full recompression pays for itself.
    CbmOptions opts;
    opts.alpha = key.alpha;
    if (clone.kind() == CbmKind::kPlain) {
      clone = CbmMatrix<T>::compress(pattern, opts);
    } else {
      const auto diag_span = clone.diagonal();
      const std::vector<T> diag(diag_span.begin(), diag_span.end());
      clone = CbmMatrix<T>::compress_scaled(pattern, diag, clone.kind(), opts);
    }
    out.staleness = clone.staleness();
    out.action = MutationOutcome::Action::kRecompressed;
    CBM_COUNTER_ADD("cbm.serve.cache.recompressions", 1);
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.recompressions;
  } else {
    out.action = MutationOutcome::Action::kPatched;
  }

  invalidate(key);  // the pre-mutation version is superseded
  out.entry = insert(out.new_key, std::move(clone));
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.mutations;
  }
  CBM_COUNTER_ADD("cbm.serve.cache.mutations", 1);
  CBM_GAUGE_SET("cbm.serve.cache.staleness_milli",
                static_cast<std::int64_t>(out.staleness * 1000.0));
  return out;
}

template <typename T>
void AdjacencyCache<T>::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  stats_.entries = 0;
  stats_.bytes = 0;
  CBM_GAUGE_SET("cbm.serve.cache.bytes", 0);
  CBM_GAUGE_SET("cbm.serve.cache.entries", 0);
}

template <typename T>
typename AdjacencyCache<T>::Stats AdjacencyCache<T>::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

template class CacheEntry<float>;
template class CacheEntry<double>;
template class AdjacencyCache<float>;
template class AdjacencyCache<double>;

}  // namespace cbm::serve
