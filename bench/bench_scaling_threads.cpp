// Thread-scaling study backing the §VI-E cache discussion: CSR vs CBM AX
// across thread counts, on one well-compressed and one poorly-compressed
// graph.
#include "bench_common.hpp"

int main() {
  using namespace cbm;
  using namespace cbm::bench;
  const auto config = BenchConfig::from_env();
  print_bench_header(config, "Thread scaling — CSR vs CBM (AX)");
  BenchReport report("scaling_threads", config);

  TablePrinter table({"Graph", "Threads", "T_CSR [s]", "T_CBM [s]", "Speedup",
                      "CSR scaling", "CBM scaling"});
  for (const std::string name : {"pubmed", "collab"}) {
    const auto& spec = dataset_spec(name);
    const Graph g = load_dataset(spec, config);
    const auto b = make_dense_operand<real_t>(g.num_nodes(), config.cols);
    const auto pair =
        make_operands<real_t>(g, Workload::kAX, spec.paper_best_alpha_par);

    double csr_base = 0.0, cbm_base = 0.0;
    for (int threads = 1; threads <= config.threads; ++threads) {
      ThreadScope scope(threads);
      const auto r = time_pair(pair, b, config,
                               threads == 1 ? UpdateSchedule::kSequential
                                            : UpdateSchedule::kBranchDynamic);
      if (threads == 1) {
        csr_base = r.csr.mean();
        cbm_base = r.cbm.mean();
      }
      const std::vector<std::pair<std::string, std::string>> labels = {
          {"graph", name}, {"threads", std::to_string(threads)}};
      report.add("csr_seconds", r.csr, labels, r.csr_hw);
      report.add("cbm_seconds", r.cbm, labels, r.cbm_hw);
      table.add_row({name, std::to_string(threads), fmt_seconds(r.csr.mean()),
                     fmt_seconds(r.cbm.mean()), fmt_double(r.speedup(), 2),
                     fmt_double(csr_base / r.csr.mean(), 2),
                     fmt_double(cbm_base / r.cbm.mean(), 2)});
    }
  }
  table.print();
  return 0;
}
