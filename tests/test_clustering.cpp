// Tests for the row-clustering strategies behind the partitioned CBM format.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/clustering.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

void expect_valid_assignment(const std::vector<index_t>& assignment,
                             index_t rows, index_t max_clusters) {
  ASSERT_EQ(assignment.size(), static_cast<std::size_t>(rows));
  const index_t k = num_clusters(assignment);
  EXPECT_GE(k, 1);
  EXPECT_LE(k, max_clusters);
  // Ids must be dense: every id in [0, k) appears.
  std::vector<bool> seen(static_cast<std::size_t>(k), false);
  for (const index_t c : assignment) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, k);
    seen[c] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Clustering, ConsecutiveChunksEvenly) {
  const auto a = test::random_binary(100, 0.05, 1);
  const auto assignment =
      cluster_rows(a, ClusterMethod::kConsecutive, 4);
  expect_valid_assignment(assignment, 100, 4);
  EXPECT_EQ(assignment[0], 0);
  EXPECT_EQ(assignment[24], 0);
  EXPECT_EQ(assignment[25], 1);
  EXPECT_EQ(assignment[99], 3);
}

TEST(Clustering, MinHashGroupsIdenticalRows) {
  // Rows i and i+groups share a template (clustered_binary construction);
  // with zero flips rows of the same group are identical and must share a
  // MinHash signature, hence (with k = groups) usually a cluster.
  const index_t n = 60, groups = 3;
  const auto a = test::clustered_binary(n, groups, 10, 0, 2);
  const auto assignment = cluster_rows(a, ClusterMethod::kMinHash, groups);
  expect_valid_assignment(assignment, n, groups);
  // All rows of a template have equal column sets → identical signatures →
  // adjacent in the sort → same chunk (chunks are n/groups = group size).
  for (index_t g = 0; g < groups; ++g) {
    for (index_t i = g; i < n; i += groups) {
      EXPECT_EQ(assignment[i], assignment[g]) << "row " << i;
    }
  }
}

TEST(Clustering, MinHashDeterministicPerSeed) {
  const auto a = test::clustered_binary(80, 4, 9, 2, 3);
  const auto x = cluster_rows(a, ClusterMethod::kMinHash, 8, 42);
  const auto y = cluster_rows(a, ClusterMethod::kMinHash, 8, 42);
  EXPECT_EQ(x, y);
}

TEST(Clustering, LabelPropagationFindsPlantedCommunities) {
  // Planted disjoint cliques: label propagation must converge to one label
  // per clique (up to the target cap).
  const Graph g = community_graph(
      {.num_nodes = 200, .team_min = 20, .team_max = 20, .size_exponent = 2.0,
       .intra_prob = 1.0, .cross_per_node = 0.0},
      4);
  const auto assignment =
      cluster_rows(g.adjacency(), ClusterMethod::kLabelPropagation, 50);
  expect_valid_assignment(assignment, 200, 50);
  // Every team (consecutive 20 rows) is a clique; all members must agree.
  for (index_t team = 0; team < 10; ++team) {
    const index_t label = assignment[team * 20];
    for (index_t i = 0; i < 20; ++i) {
      EXPECT_EQ(assignment[team * 20 + i], label) << "team " << team;
    }
  }
}

TEST(Clustering, LabelPropagationRespectsTargetCap) {
  const Graph g = community_graph(
      {.num_nodes = 300, .team_min = 10, .team_max = 10, .size_exponent = 2.0,
       .intra_prob = 1.0, .cross_per_node = 0.0},
      5);
  // 30 natural communities, capped at 8 clusters.
  const auto assignment =
      cluster_rows(g.adjacency(), ClusterMethod::kLabelPropagation, 8);
  expect_valid_assignment(assignment, 300, 8);
}

TEST(Clustering, TargetLargerThanRowsIsClamped) {
  const auto a = test::random_binary(5, 0.4, 6);
  const auto assignment = cluster_rows(a, ClusterMethod::kConsecutive, 100);
  expect_valid_assignment(assignment, 5, 5);
}

TEST(Clustering, SingleClusterAlwaysWorks) {
  const auto a = test::random_binary(30, 0.1, 7);
  for (const auto method :
       {ClusterMethod::kConsecutive, ClusterMethod::kMinHash,
        ClusterMethod::kLabelPropagation}) {
    const auto assignment = cluster_rows(a, method, 1);
    EXPECT_EQ(num_clusters(assignment), 1) << static_cast<int>(method);
  }
}

TEST(Clustering, EmptyMatrix) {
  CooMatrix<float> coo;
  coo.rows = 0;
  coo.cols = 0;
  const auto a = CsrMatrix<float>::from_coo(coo);
  EXPECT_TRUE(cluster_rows(a, ClusterMethod::kMinHash, 4).empty());
}

TEST(Clustering, InvalidTargetRejected) {
  const auto a = test::random_binary(10, 0.2, 8);
  EXPECT_THROW(cluster_rows(a, ClusterMethod::kConsecutive, 0), CbmError);
}

}  // namespace
}  // namespace cbm
