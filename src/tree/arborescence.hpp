// Minimum-cost arborescence (directed MST) rooted at a fixed node.
//
// With edge pruning (α > 0, paper §V-C) the CBM distance graph becomes
// directed, and the compression tree is the minimum-cost arborescence rooted
// at the virtual node. This is the Chu–Liu/Edmonds algorithm, implemented in
// the round-contraction form with full edge recovery; each round contracts
// every cycle of the chosen-edge functional graph at once, so the round count
// stays logarithmic on real inputs (worst case O(V) rounds, O(E) per round).
#pragma once

#include <vector>

#include "tree/edge.hpp"

namespace cbm {

/// Result of an arborescence computation on n nodes.
struct ArborescenceResult {
  std::int64_t total_weight = 0;
  /// parent[v] = chosen predecessor; parent[root] = -1.
  std::vector<index_t> parent;
  /// chosen_edge[v] = index into the input edge list of v's in-edge;
  /// SIZE_MAX for the root.
  std::vector<std::size_t> chosen_edge;
};

/// Computes the minimum arborescence of a directed multigraph rooted at
/// `root`. Self-loops are ignored. Throws CbmError when some node has no
/// incoming path from the root side (cannot happen for CBM distance graphs:
/// the virtual root has an edge to every row).
ArborescenceResult chu_liu_edmonds(index_t num_nodes,
                                   const std::vector<WeightedEdge>& edges,
                                   index_t root);

/// O(V·E) reference implementation (single cycle per recursion step), used by
/// tests to validate the production solver on random digraphs. Returns only
/// the optimal cost.
std::int64_t arborescence_cost_reference(index_t num_nodes,
                                         const std::vector<WeightedEdge>& edges,
                                         index_t root);

}  // namespace cbm
