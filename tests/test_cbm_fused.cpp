// Property tests for the fused column-tiled CBM multiply engine: for every
// kind × tile width × operand width × thread count, the fused engine must
// match both the dense oracle and the two-stage engine (acceptance: 1e-5
// relative), and the schedule/env plumbing must resolve exactly as
// documented.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "cbm/cbm_matrix.hpp"
#include "cbm/spmm_cbm_fused.hpp"
#include "common/cache_info.hpp"
#include "common/parallel.hpp"
#include "dense/gemm.hpp"
#include "dense/ops.hpp"
#include "sparse/scale.hpp"
#include "sparse/spmm.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

using test::EnvGuard;

struct FusedCase {
  CbmKind kind;
  index_t tile_cols;  // 0 = auto
  index_t bcols;
  int threads;
};

/// Builds the CBM operand and its explicit CSR equivalent for one kind.
struct KindFixture {
  CbmMatrix<float> cbm;
  CsrMatrix<float> baseline;
};

KindFixture make_kind_fixture(CbmKind kind, index_t n, int alpha,
                              std::uint64_t seed) {
  const auto a = test::clustered_binary(n, 6, 11, 2, seed);
  const auto d1 = test::random_diagonal<float>(n, seed + 1);
  const auto d2 = test::random_diagonal<float>(n, seed + 2);
  const std::span<const float> s1(d1), s2(d2);
  const CbmOptions options{.alpha = alpha};
  KindFixture f;
  switch (kind) {
    case CbmKind::kPlain:
      f.baseline = a;
      f.cbm = CbmMatrix<float>::compress(a, options);
      break;
    case CbmKind::kColumnScaled:
      f.baseline = scale_columns(a, s1);
      f.cbm = CbmMatrix<float>::compress_scaled(a, s1, kind, options);
      break;
    case CbmKind::kSymScaled:
      f.baseline = scale_both(a, s1, s1);
      f.cbm = CbmMatrix<float>::compress_scaled(a, s1, kind, options);
      break;
    case CbmKind::kTwoSided:
      f.baseline = scale_both(a, s1, s2);
      f.cbm = CbmMatrix<float>::compress_two_sided(a, s1, s2, options);
      break;
  }
  return f;
}

class FusedMultiply : public ::testing::TestWithParam<FusedCase> {};

TEST_P(FusedMultiply, MatchesOracleAndTwoStage) {
  const auto p = GetParam();
  const index_t n = 72;
  // Per-test seed (hashed from the parameterised test name, CBM_TEST_SEED
  // override): every case draws an independent matrix/operand pair.
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto f = make_kind_fixture(p.kind, n, /*alpha=*/2, seed);
  const auto b = test::random_dense<float>(n, p.bcols, test::auto_seed(1));

  // Dense oracle.
  DenseMatrix<float> c_oracle(n, p.bcols);
  gemm_naive(test::to_dense(f.baseline), b, c_oracle);

  ThreadScope scope(p.threads);
  DenseMatrix<float> c_fused(n, p.bcols), c_two_stage(n, p.bcols);
  c_fused.fill(-7.0f);  // fused must fully overwrite C
  f.cbm.multiply(b, c_fused, MultiplySchedule::fused(p.tile_cols));
  f.cbm.multiply(b, c_two_stage, MultiplySchedule::two_stage());

  EXPECT_TRUE(allclose(c_fused, c_oracle, 1e-4, 1e-5))
      << "vs oracle, max diff " << max_abs_diff(c_fused, c_oracle);
  EXPECT_TRUE(allclose(c_fused, c_two_stage, 1e-5, 1e-6))
      << "vs two-stage, max diff " << max_abs_diff(c_fused, c_two_stage);
}

INSTANTIATE_TEST_SUITE_P(
    KindsTilesWidthsThreads, FusedMultiply,
    ::testing::Values(
        // Tile width sweep: 1 (degenerate), smaller than p, larger than p,
        // non-multiple of p, auto.
        FusedCase{CbmKind::kPlain, 1, 13, 1},
        FusedCase{CbmKind::kPlain, 4, 13, 1},
        FusedCase{CbmKind::kPlain, 16, 13, 1},
        FusedCase{CbmKind::kPlain, 0, 13, 1},
        // p = 1 (vector-shaped) and p below any tile quantum.
        FusedCase{CbmKind::kPlain, 0, 1, 2},
        FusedCase{CbmKind::kColumnScaled, 4, 1, 1},
        FusedCase{CbmKind::kColumnScaled, 0, 5, 2},
        FusedCase{CbmKind::kColumnScaled, 8, 64, 4},
        // Row-scaled kinds exercise the Eq. 6 update per tile.
        FusedCase{CbmKind::kSymScaled, 1, 5, 2},
        FusedCase{CbmKind::kSymScaled, 4, 13, 4},
        FusedCase{CbmKind::kSymScaled, 0, 64, 2},
        FusedCase{CbmKind::kTwoSided, 4, 13, 1},
        FusedCase{CbmKind::kTwoSided, 16, 64, 4},
        FusedCase{CbmKind::kTwoSided, 0, 5, 2}));

TEST(FusedMultiply, UncompressibleMatrixStaysCorrect) {
  // No row similarity: the tree degenerates but tiling must still cover C.
  const auto a = test::random_binary(60, 0.08, 77);
  const auto cbm = CbmMatrix<float>::compress(a);
  const auto b = test::random_dense<float>(60, 24, 78);
  DenseMatrix<float> c_fused(60, 24), c_csr(60, 24);
  cbm.multiply(b, c_fused, MultiplySchedule::fused(7));
  csr_spmm(a, b, c_csr);
  EXPECT_TRUE(allclose(c_fused, c_csr, 1e-4, 1e-5));
}

TEST(FusedMultiply, TileColsEnvOverridesAuto) {
  const EnvGuard env("CBM_TILE_COLS", "3");
  const auto f = make_kind_fixture(CbmKind::kSymScaled, 48, 2, 555);
  const auto b = test::random_dense<float>(48, 10, 556);
  DenseMatrix<float> c_fused(48, 10), c_two_stage(48, 10);
  // tile_cols = 0 defers to the env override.
  f.cbm.multiply(b, c_fused, MultiplySchedule::fused(0));
  f.cbm.multiply(b, c_two_stage, MultiplySchedule::two_stage());
  EXPECT_TRUE(allclose(c_fused, c_two_stage, 1e-5, 1e-6));
  EXPECT_EQ(cbm_fused_resolve_tile_cols(48, 10, sizeof(float)), 3);
}

TEST(FusedMultiply, TileColsEnvRejectsGarbage) {
  for (const char* bad : {"0", "-4", "wide"}) {
    const EnvGuard env("CBM_TILE_COLS", bad);
    EXPECT_THROW(cbm_fused_resolve_tile_cols(48, 10, sizeof(float)), CbmError)
        << "CBM_TILE_COLS=" << bad;
  }
}

TEST(MultiplySchedule, FromEnvDefaults) {
  // With no knobs set, from_env() must equal the default two-stage plan.
  // Clear the knobs explicitly: the forced-schedule CI jobs pin them
  // ambiently, and this test is about the defaults, not the pins.
  const EnvGuard path("CBM_MULTIPLY_PATH");
  const EnvGuard spmm("CBM_SPMM_SCHEDULE");
  const EnvGuard update("CBM_UPDATE_SCHEDULE");
  const EnvGuard tile("CBM_TILE_COLS");
  const auto s = MultiplySchedule::from_env();
  EXPECT_EQ(s.path, MultiplyPath::kTwoStage);
  EXPECT_EQ(s.spmm, SpmmSchedule::kNnzBalanced);
  EXPECT_EQ(s.update, UpdateSchedule::kBranchDynamic);
  EXPECT_EQ(s.tile_cols, 0);
}

TEST(MultiplySchedule, FromEnvParsesAllKnobs) {
  const EnvGuard path("CBM_MULTIPLY_PATH", "fused");
  const EnvGuard spmm("CBM_SPMM_SCHEDULE", "row_dynamic");
  const EnvGuard update("CBM_UPDATE_SCHEDULE", "column_split");
  const EnvGuard tile("CBM_TILE_COLS", "48");
  const auto s = MultiplySchedule::from_env();
  EXPECT_EQ(s.path, MultiplyPath::kFusedTiled);
  EXPECT_EQ(s.spmm, SpmmSchedule::kRowDynamic);
  EXPECT_EQ(s.update, UpdateSchedule::kColumnSplit);
  EXPECT_EQ(s.tile_cols, 48);
}

TEST(MultiplySchedule, FromEnvThrowsOnUnknownValue) {
  {
    const EnvGuard path("CBM_MULTIPLY_PATH", "warp");
    EXPECT_THROW(MultiplySchedule::from_env(), CbmError);
  }
  {
    const EnvGuard spmm("CBM_SPMM_SCHEDULE", "chunked");
    EXPECT_THROW(MultiplySchedule::from_env(), CbmError);
  }
  {
    const EnvGuard update("CBM_UPDATE_SCHEDULE", "bfs");
    EXPECT_THROW(MultiplySchedule::from_env(), CbmError);
  }
}

TEST(MultiplySchedule, FromConfigUsesCarriedStringsWithoutEnv) {
  // from_config must resolve entirely from the explicit RuntimeConfig —
  // poison the ambient env to prove it is never consulted.
  const EnvGuard path("CBM_MULTIPLY_PATH", "not-a-path");
  RuntimeConfig config;
  config.multiply_path = "fused";
  config.spmm_schedule = "row_dynamic";
  config.update_schedule = "column_split";
  config.tile_cols = 48;
  const auto s = MultiplySchedule::from_config(config);
  EXPECT_EQ(s.path, MultiplyPath::kFusedTiled);
  EXPECT_EQ(s.spmm, SpmmSchedule::kRowDynamic);
  EXPECT_EQ(s.update, UpdateSchedule::kColumnSplit);
  EXPECT_EQ(s.tile_cols, 48);
}

TEST(MultiplySchedule, FromConfigRejectsUnknownVocab) {
  RuntimeConfig config;
  config.multiply_path = "warp";
  EXPECT_THROW(MultiplySchedule::from_config(config), CbmError);
}

TEST(MultiplyOptions, DefaultOptionsEqualLegacyDefaultMultiply) {
  const index_t n = 72;
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto f = make_kind_fixture(CbmKind::kSymScaled, n, 2, seed);
  const auto b = test::random_dense<float>(n, 10, test::auto_seed(1));
  DenseMatrix<float> c_options(n, 10), c_legacy(n, 10);
  f.cbm.multiply(b, c_options);  // binds to the MultiplyOptions overload
  f.cbm.multiply(b, c_legacy, MultiplySchedule::two_stage());
  EXPECT_TRUE(allclose(c_options, c_legacy, 1e-6, 1e-7));
}

TEST(MultiplyOptions, ColumnsFactoryEqualsMultiplyColumns) {
  const index_t n = 72;
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  const auto f = make_kind_fixture(CbmKind::kPlain, n, 2, seed);
  const auto b = test::random_dense<float>(n, 12, test::auto_seed(1));
  const auto plan = MultiplySchedule::two_stage();
  DenseMatrix<float> c_options(n, 12), c_legacy(n, 12);
  f.cbm.multiply(b, c_options, MultiplyOptions::columns(3, 9, plan));
  f.cbm.multiply_columns(b, c_legacy, 3, 9, plan);
  EXPECT_TRUE(allclose(c_options, c_legacy, 1e-6, 1e-7));
  // Only the panel is written.
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < 12; ++j) {
      if (j < 3 || j >= 9) EXPECT_EQ(c_options(i, j), 0.0f);
    }
  }
}

TEST(MultiplyOptions, AutoPlanEqualsMultiplyAuto) {
  const EnvGuard tune("CBM_TUNE");  // analytic policy on both paths
  const EnvGuard path("CBM_MULTIPLY_PATH");
  const index_t n = 72;
  const auto f = make_kind_fixture(CbmKind::kPlain, n, 2, test::auto_seed());
  const auto b = test::random_dense<float>(n, 10, test::auto_seed(1));
  DenseMatrix<float> c_options(n, 10), c_auto(n, 10), c_ref(n, 10);
  f.cbm.multiply(b, c_options, MultiplyOptions::auto_plan());
  f.cbm.multiply_auto(b, c_auto);
  f.cbm.multiply(b, c_ref, MultiplySchedule::two_stage());
  EXPECT_TRUE(allclose(c_options, c_auto, 1e-6, 1e-7));
  EXPECT_TRUE(allclose(c_options, c_ref, 1e-5, 1e-6));
}

TEST(MultiplyOptions, ExplicitRuntimeConfigBypassesAmbientEnv) {
  // An auto-resolving multiply carrying its own RuntimeConfig must succeed
  // even when the ambient environment holds a value that would make
  // from_env() throw — proof the serving layer's resolve-once contract
  // holds on the multiply path.
  const EnvGuard poison("CBM_MULTIPLY_PATH", "not-a-path");
  const index_t n = 48;
  const auto f = make_kind_fixture(CbmKind::kPlain, n, 2, test::auto_seed());
  const auto b = test::random_dense<float>(n, 8, test::auto_seed(1));
  DenseMatrix<float> c(n, 8), c_ref(n, 8);
  RuntimeConfig config;  // defaults; never reads env
  MultiplyOptions options = MultiplyOptions::auto_plan();
  options.runtime = &config;
  f.cbm.multiply(b, c, options);
  f.cbm.multiply(b, c_ref, MultiplySchedule::two_stage());
  EXPECT_TRUE(allclose(c, c_ref, 1e-5, 1e-6));
}

TEST(MultiplyOptions, FullValidationPassesOnSoundMatrix) {
  const index_t n = 48;
  const auto f = make_kind_fixture(CbmKind::kSymScaled, n, 2,
                                   test::auto_seed());
  const auto b = test::random_dense<float>(n, 8, test::auto_seed(1));
  DenseMatrix<float> c(n, 8);
  MultiplyOptions options;
  options.validate = MultiplyValidate::kFull;
  EXPECT_NO_THROW(f.cbm.multiply(b, c, options));
}

TEST(CacheInfo, DetectReportsPositiveSizes) {
  const CacheInfo& info = CacheInfo::host();
  EXPECT_GT(info.l1d_bytes, 0u);
  EXPECT_GT(info.l2_bytes, 0u);
  EXPECT_GE(info.llc_bytes, info.l2_bytes);
}

TEST(CacheInfo, TilePolicyRespectsBounds) {
  const CacheInfo cache{.l1d_bytes = 32u << 10, .l2_bytes = 1u << 20,
                        .llc_bytes = 16u << 20};
  for (const index_t rows : {100, 10'000, 1'000'000}) {
    for (const index_t total : {1, 17, 64, 500, 4096}) {
      for (const int threads : {1, 4, 48}) {
        const index_t w =
            fused_tile_cols(rows, total, sizeof(float), threads, cache);
        EXPECT_GE(w, 1);
        EXPECT_LE(w, total);
        if (w != total) {
          // A real tile: quantised, within bounds, and only chosen when the
          // untiled operand would overflow this thread's LLC share.
          EXPECT_GE(w, kMinFusedTileCols);
          EXPECT_LE(w, kMaxFusedTileCols);
          EXPECT_EQ(w % kTileColsQuantum, 0);
          const auto untiled = 2 * static_cast<std::size_t>(rows) *
                               static_cast<std::size_t>(total) * sizeof(float);
          EXPECT_GT(untiled, cache.llc_bytes /
                                 static_cast<std::size_t>(threads));
        }
      }
    }
  }
  // LLC-resident operand: stays a single full-width tile.
  EXPECT_EQ(fused_tile_cols(10'000, 64, sizeof(float), 1, cache), 64);
  // Short-fat DRAM-bound operand: the regime where tiling engages.
  const index_t w = fused_tile_cols(10'000, 4096, sizeof(float), 1, cache);
  EXPECT_LT(w, 4096);
  EXPECT_GE(w, kMinFusedTileCols);
  // Tall DRAM-bound operand where no worthwhile tile fits: untiled.
  EXPECT_EQ(fused_tile_cols(10'000'000, 4096, sizeof(float), 1, cache), 4096);
}

}  // namespace
}  // namespace cbm
