// Row-clustering strategies for the partitioned CBM format (the paper's
// §VIII future work: "clustering similar rows of the graph's adjacency
// matrix and subsequently computing a partial CBM format for each cluster").
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace cbm {

enum class ClusterMethod {
  kConsecutive,       ///< contiguous chunks in row order (baseline; optimal
                      ///< when similar rows are already adjacent)
  kMinHash,           ///< group rows by MinHash signatures of their column
                      ///< sets, so near-duplicate rows land together even
                      ///< when scattered across the matrix
  kLabelPropagation,  ///< community detection on the graph (synchronous
                      ///< label propagation); requires a symmetric pattern
};

/// Assigns each row a cluster id in [0, k). `target_clusters` is an upper
/// bound for kConsecutive/kMinHash (exact unless n < target); for
/// kLabelPropagation the community structure decides and small communities
/// are merged until at most `target_clusters` remain.
template <typename T>
std::vector<index_t> cluster_rows(const CsrMatrix<T>& pattern,
                                  ClusterMethod method,
                                  index_t target_clusters,
                                  std::uint64_t seed = 0x517Eull);

/// Number of distinct cluster ids in an assignment (= max + 1; ids dense).
index_t num_clusters(const std::vector<index_t>& assignment);

extern template std::vector<index_t> cluster_rows<float>(
    const CsrMatrix<float>&, ClusterMethod, index_t, std::uint64_t);
extern template std::vector<index_t> cluster_rows<double>(
    const CsrMatrix<double>&, ClusterMethod, index_t, std::uint64_t);

}  // namespace cbm
