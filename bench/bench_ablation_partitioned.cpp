// Ablation — monolithic vs partitioned CBM (§VIII future work): build time,
// peak candidate-edge working set (the §VIII memory proxy), compression
// ratio and AX multiply time, across clustering methods. A second section
// ablates the part executor itself: serial part loop vs the cbm::exec
// task-graph fan-out, across parts × threads, with parallel efficiency and a
// cross-graph geomean of the task-graph speedup at full thread count.
#include <cstdlib>

#include "cbm/partitioned.hpp"

#include "bench_common.hpp"

int main() {
  using namespace cbm;
  using namespace cbm::bench;
  const auto config = BenchConfig::from_env();
  print_bench_header(config, "Ablation — monolithic vs partitioned CBM");
  set_threads(config.threads);
  BenchReport report("ablation_partitioned", config);

  TablePrinter table({"Graph", "Variant", "Build [s]", "PeakCand", "Ratio",
                      "Parts", "T_AX [s]"});
  for (const std::string name : {"ca-hepph", "collab", "copapersdblp"}) {
    const auto& spec = dataset_spec(name);
    const Graph g = load_dataset(spec, config);
    const auto& a = g.adjacency();
    const auto b = make_dense_operand<real_t>(g.num_nodes(), config.cols);
    DenseMatrix<real_t> c(g.num_nodes(), config.cols);

    {
      CbmStats stats;
      const auto cbm = CbmMatrix<real_t>::compress(a, {.alpha = 0}, &stats);
      const auto t = time_repetitions([&] { cbm.multiply(b, c); },
                                      config.reps, config.warmup);
      report.add("ax_seconds", t,
                 {{"graph", name}, {"variant", "monolithic"}});
      report.add_scalar("build_seconds", stats.build_seconds,
                        {{"graph", name}, {"variant", "monolithic"}});
      table.add_row({name, "monolithic", fmt_seconds(stats.build_seconds),
                     std::to_string(stats.candidate_edges),
                     fmt_double(static_cast<double>(a.bytes()) / stats.bytes,
                                2),
                     "1", fmt_seconds(t.mean())});
    }
    for (const auto& [method, label] :
         {std::pair{ClusterMethod::kConsecutive, "part/consecutive"},
          std::pair{ClusterMethod::kMinHash, "part/minhash"},
          std::pair{ClusterMethod::kLabelPropagation, "part/labelprop"}}) {
      PartitionedOptions options;
      options.method = method;
      options.num_clusters = 16;
      PartitionedStats stats;
      auto part = PartitionedCbmMatrix<real_t>::compress(a, options, &stats);
      const auto t = time_repetitions([&] { part.multiply(b, c); },
                                      config.reps, config.warmup);
      report.add("ax_seconds", t, {{"graph", name}, {"variant", label}});
      report.add_scalar("build_seconds", stats.build_seconds,
                        {{"graph", name}, {"variant", label}});
      table.add_row({name, label, fmt_seconds(stats.build_seconds),
                     std::to_string(stats.peak_candidate_edges),
                     fmt_double(static_cast<double>(a.bytes()) / stats.bytes,
                                2),
                     std::to_string(stats.num_parts), fmt_seconds(t.mean())});
    }
  }
  table.print();

  // ---- executor ablation: serial part loop vs task-graph, parts × threads.
  TablePrinter exec_table({"Graph", "Parts", "Threads", "T_serial [s]",
                           "T_taskgraph [s]", "TG speedup", "TG par-eff"});
  GeomeanAccumulator tg_geomean;  // serial/taskgraph at full thread count
  for (const std::string name : {"ca-hepph", "collab", "copapersdblp"}) {
    const auto& spec = dataset_spec(name);
    const Graph g = load_dataset(spec, config);
    const auto& a = g.adjacency();
    const auto b = make_dense_operand<real_t>(g.num_nodes(), config.cols);
    DenseMatrix<real_t> c(g.num_nodes(), config.cols);

    for (const index_t parts : {index_t{4}, index_t{16}}) {
      PartitionedOptions options;
      options.num_clusters = parts;
      auto part = PartitionedCbmMatrix<real_t>::compress(a, options);
      double tg_single = 0.0;
      for (int threads = 1; threads <= config.threads; threads *= 2) {
        ThreadScope scope(threads);
        RunStats timings[2];
        int slot = 0;
        for (const char* exec_mode : {"serial", "taskgraph"}) {
          setenv("CBM_PART_EXEC", exec_mode, 1);
          const auto timed = time_repetitions_hw(
              [&] { part.multiply(b, c); }, config.reps, config.warmup);
          timings[slot] = timed.stats;
          report.add("exec_seconds", timed.stats,
                     {{"graph", name},
                      {"parts", std::to_string(parts)},
                      {"threads", std::to_string(threads)},
                      {"part_exec", exec_mode}},
                     HwBlock::from(timed, 0.0, 0.0,
                                   static_cast<double>(a.nnz())));
          ++slot;
        }
        unsetenv("CBM_PART_EXEC");
        const double serial_s = timings[0].mean();
        const double tg_s = std::max(timings[1].mean(), 1e-12);
        if (threads == 1) tg_single = tg_s;
        // Parallel efficiency of the task-graph path against its own
        // single-thread time: (t1 / tN) / N.
        const double par_eff = tg_single / tg_s / threads;
        if (threads == config.threads) tg_geomean.add(serial_s / tg_s);
        exec_table.add_row({name, std::to_string(parts),
                            std::to_string(threads), fmt_seconds(serial_s),
                            fmt_seconds(tg_s), fmt_double(serial_s / tg_s, 2),
                            fmt_double(par_eff, 2)});
      }
    }
  }
  std::cout << "\nPart executor — serial loop vs task-graph (AX, consecutive "
               "clustering)\n";
  exec_table.print();
  report.add_scalar("taskgraph_speedup_geomean", tg_geomean.value(),
                    {{"threads", std::to_string(config.threads)}});
  std::cout << "\nTask-graph speedup geomean at " << config.threads
            << " threads: " << fmt_double(tg_geomean.value(), 3) << " ("
            << tg_geomean.count() << " configs)\n";
  return 0;
}
