#include "dense/ops.hpp"

#include <algorithm>
#include <cmath>

namespace cbm {

template <typename T>
void relu_inplace(DenseMatrix<T>& x) {
  T* __restrict__ p = x.data();
  const std::size_t n = x.size();
#pragma omp parallel for simd schedule(static)
  for (std::size_t i = 0; i < n; ++i) p[i] = p[i] > T{0} ? p[i] : T{0};
}

template <typename T>
void add_bias_inplace(DenseMatrix<T>& x, std::span<const T> bias) {
  CBM_CHECK(bias.size() == static_cast<std::size_t>(x.cols()),
            "bias length must equal column count");
  const index_t rows = x.rows();
  const index_t cols = x.cols();
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < rows; ++i) {
    T* __restrict__ row = x.row(i).data();
    const T* __restrict__ b = bias.data();
#pragma omp simd
    for (index_t j = 0; j < cols; ++j) row[j] += b[j];
  }
}

template <typename T>
DenseMatrix<T> transpose(const DenseMatrix<T>& x) {
  DenseMatrix<T> out(x.cols(), x.rows());
  constexpr index_t kTile = 32;  // cache-friendly tiled transpose
  const index_t rows = x.rows();
  const index_t cols = x.cols();
#pragma omp parallel for collapse(2) schedule(static)
  for (index_t i0 = 0; i0 < rows; i0 += kTile) {
    for (index_t j0 = 0; j0 < cols; j0 += kTile) {
      const index_t i1 = std::min<index_t>(i0 + kTile, rows);
      const index_t j1 = std::min<index_t>(j0 + kTile, cols);
      for (index_t i = i0; i < i1; ++i) {
        for (index_t j = j0; j < j1; ++j) out(j, i) = x(i, j);
      }
    }
  }
  return out;
}

template <typename T>
double max_abs_diff(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  CBM_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
            "max_abs_diff shape mismatch");
  double worst = 0.0;
  const T* pa = a.data();
  const T* pb = b.data();
#pragma omp parallel for reduction(max : worst) schedule(static)
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(pa[i]) -
                                     static_cast<double>(pb[i])));
  }
  return worst;
}

template <typename T>
bool allclose(const DenseMatrix<T>& a, const DenseMatrix<T>& b, double rtol,
              double atol) {
  CBM_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
            "allclose shape mismatch");
  const T* pa = a.data();
  const T* pb = b.data();
  bool ok = true;
#pragma omp parallel for reduction(&& : ok) schedule(static)
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = pa[i];
    const double db = pb[i];
    ok = ok && (std::abs(da - db) <= atol + rtol * std::abs(db));
  }
  return ok;
}

template <typename T>
double frobenius_norm(const DenseMatrix<T>& a) {
  double acc = 0.0;
  const T* p = a.data();
#pragma omp parallel for reduction(+ : acc) schedule(static)
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(p[i]) * static_cast<double>(p[i]);
  }
  return std::sqrt(acc);
}

template void relu_inplace<float>(DenseMatrix<float>&);
template void relu_inplace<double>(DenseMatrix<double>&);
template void add_bias_inplace<float>(DenseMatrix<float>&,
                                      std::span<const float>);
template void add_bias_inplace<double>(DenseMatrix<double>&,
                                       std::span<const double>);
template DenseMatrix<float> transpose<float>(const DenseMatrix<float>&);
template DenseMatrix<double> transpose<double>(const DenseMatrix<double>&);
template double max_abs_diff<float>(const DenseMatrix<float>&,
                                    const DenseMatrix<float>&);
template double max_abs_diff<double>(const DenseMatrix<double>&,
                                     const DenseMatrix<double>&);
template bool allclose<float>(const DenseMatrix<float>&,
                              const DenseMatrix<float>&, double, double);
template bool allclose<double>(const DenseMatrix<double>&,
                               const DenseMatrix<double>&, double, double);
template double frobenius_norm<float>(const DenseMatrix<float>&);
template double frobenius_norm<double>(const DenseMatrix<double>&);

}  // namespace cbm
