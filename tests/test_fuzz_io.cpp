// Failure-injection / fuzz-style tests for the I/O paths: random garbage
// must either parse cleanly or throw CbmError — never crash, hang, or
// produce structurally invalid matrices.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cbm/serialize.hpp"
#include "common/rng.hpp"
#include "sparse/io_edgelist.hpp"
#include "sparse/io_mm.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

std::string random_text(Rng& rng, std::size_t length) {
  static constexpr char alphabet[] =
      "0123456789 \t\n%#-+.eE abcdefXYZ";
  std::string s;
  s.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    s.push_back(alphabet[rng.next_below(sizeof(alphabet) - 1)]);
  }
  return s;
}

TEST(FuzzIo, MatrixMarketGarbageNeverCrashes) {
  Rng rng(0xF422ull);
  for (int trial = 0; trial < 200; ++trial) {
    std::istringstream in(random_text(rng, 1 + rng.next_below(300)));
    try {
      const auto coo = read_matrix_market<float>(in);
      // If it parsed, it must be structurally sound.
      CsrMatrix<float>::from_coo(coo);
    } catch (const CbmError&) {
      // expected for garbage
    }
  }
}

TEST(FuzzIo, MatrixMarketGarbageAfterValidHeader) {
  Rng rng(0xF423ull);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = "%%MatrixMarket matrix coordinate real general\n";
    text += random_text(rng, 1 + rng.next_below(200));
    std::istringstream in(text);
    try {
      const auto coo = read_matrix_market<float>(in);
      CsrMatrix<float>::from_coo(coo);
    } catch (const CbmError&) {
    }
  }
}

TEST(FuzzIo, EdgeListGarbageNeverCrashes) {
  Rng rng(0xF424ull);
  for (int trial = 0; trial < 200; ++trial) {
    std::istringstream in(random_text(rng, 1 + rng.next_below(300)));
    try {
      const auto coo = read_edge_list(in);
      CsrMatrix<float>::from_coo(coo);
    } catch (const CbmError&) {
    }
  }
}

TEST(FuzzIo, CbmFileBitFlipsNeverCrash) {
  // Serialize a real matrix, flip random bytes, and confirm the loader
  // either throws or — when the flip lands in a value — returns a matrix
  // with intact structure.
  const auto a = test::clustered_binary(30, 3, 7, 2, 0xF425ull);
  const auto original = CbmMatrix<float>::compress(a, {.alpha = 1});
  std::stringstream buf;
  save_cbm(buf, original);
  const std::string clean = buf.str();

  Rng rng(0xF426ull);
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupted = clean;
    const std::size_t pos = rng.next_below(corrupted.size());
    corrupted[pos] = static_cast<char>(rng.next_below(256));
    std::stringstream in(corrupted);
    try {
      const auto loaded = load_cbm<float>(in);
      // Whatever loads passed the full structural revalidation; exercising
      // a multiply on it must be safe (shape-correct, no OOB indices).
      DenseMatrix<float> b(loaded.cols(), 2), c(loaded.rows(), 2);
      loaded.multiply(b, c);
    } catch (const CbmError&) {
      // expected for most flips
    }
  }
}

TEST(FuzzIo, CbmTruncationsAlwaysThrow) {
  const auto a = test::clustered_binary(25, 2, 6, 1, 0xF427ull);
  const auto original = CbmMatrix<float>::compress(a);
  std::stringstream buf;
  save_cbm(buf, original);
  const std::string clean = buf.str();
  Rng rng(0xF428ull);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t keep = rng.next_below(clean.size());  // strict prefix
    std::stringstream in(clean.substr(0, keep));
    EXPECT_THROW(load_cbm<float>(in), CbmError) << "kept " << keep;
  }
}

}  // namespace
}  // namespace cbm
