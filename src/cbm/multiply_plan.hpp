// Execution-plan types for the CBM product C = op(A)·B.
//
// Extracted from cbm_matrix.hpp so the empirical autotuner (src/tune) can
// describe, serialise, and compare plans without depending on the CbmMatrix
// implementation — cbm_core links the tuner, not the other way round. The
// names here are the serialisation vocabulary of the tuning cache
// (cbm-tune-v1) and of bench telemetry, so they are stable strings.
#pragma once

#include <string_view>

#include "common/types.hpp"
#include "sparse/spmm.hpp"

namespace cbm {

/// Update-stage execution policy (§V-B).
enum class UpdateSchedule {
  kSequential,     ///< single-threaded topological sweep
  kBranchDynamic,  ///< OpenMP dynamic over branches (the paper's choice)
  kBranchStatic,   ///< OpenMP static over branches (ablation)
  kColumnSplit,    ///< every thread sweeps the whole tree over its own slice
                   ///< of B's columns — parallelism independent of the
                   ///< virtual root's fan-out (wins when the tree has few
                   ///< branches, where the paper's scheme has no work units)
  kTaskGraph,      ///< dependency-driven: subtree row blocks × column panels
                   ///< as tasks on cbm::exec, each depending only on its
                   ///< parent block — no level-wise barriers, parallelism
                   ///< from both the tree shape and the column dimension
};

/// How multiply() executes the two-stage product.
enum class MultiplyPath {
  kTwoStage,    ///< delta SpMM over all of C, then the tree update (§IV)
  kFusedTiled,  ///< column-tiled: both stages per tile while it is hot
};

/// Full execution plan for one C = op(A)·B product: which engine runs, and
/// the per-stage schedules the two-stage engine uses. The fused engine takes
/// only the tile width (its stage interleaving replaces both schedules).
struct MultiplySchedule {
  MultiplyPath path = MultiplyPath::kTwoStage;
  SpmmSchedule spmm = SpmmSchedule::kNnzBalanced;
  UpdateSchedule update = UpdateSchedule::kBranchDynamic;
  index_t tile_cols = 0;  ///< fused tile width; 0 = auto (CBM_TILE_COLS env
                          ///< override, else detected cache geometry)

  /// Two-stage plan with the given stage schedules (the historical default).
  static MultiplySchedule two_stage(
      UpdateSchedule update = UpdateSchedule::kBranchDynamic,
      SpmmSchedule spmm = SpmmSchedule::kNnzBalanced);

  /// Fused column-tiled plan; tile_cols 0 = auto.
  static MultiplySchedule fused(index_t tile_cols = 0);

  /// Reads CBM_MULTIPLY_PATH (two_stage | fused), CBM_SPMM_SCHEDULE
  /// (row_static | row_dynamic | nnz_balanced), CBM_UPDATE_SCHEDULE
  /// (sequential | branch_dynamic | branch_static | column_split |
  /// task_graph) and CBM_TILE_COLS. Unset variables keep the defaults above;
  /// unknown values throw (a mistyped knob must not silently benchmark the
  /// wrong engine).
  static MultiplySchedule from_env();
};

/// Stable lower-case names — the serialisation vocabulary of the tuning
/// cache and of bench telemetry.
const char* multiply_path_name(MultiplyPath path);
const char* spmm_schedule_name(SpmmSchedule schedule);
const char* update_schedule_name(UpdateSchedule schedule);

/// Inverse of the *_name functions; unknown text throws CbmError naming the
/// offending value (a corrupt cache entry must not select a random engine).
MultiplyPath parse_multiply_path(std::string_view text);
SpmmSchedule parse_spmm_schedule(std::string_view text);
UpdateSchedule parse_update_schedule(std::string_view text);

}  // namespace cbm
