#include "sparse/spmm.hpp"

#include <algorithm>

#include "common/parallel.hpp"

namespace cbm {

namespace {

/// Computes one block of C rows: C[i,:] = sum_k A[i,k] * B[k,:].
template <typename T>
inline void spmm_rows(const CsrMatrix<T>& a, const DenseMatrix<T>& b,
                      DenseMatrix<T>& c, index_t row_begin, index_t row_end) {
  const auto indptr = a.indptr();
  const auto indices = a.indices();
  const auto values = a.values();
  const index_t p = b.cols();
  for (index_t i = row_begin; i < row_end; ++i) {
    T* __restrict__ crow = c.row(i).data();
    for (index_t j = 0; j < p; ++j) crow[j] = T{0};
    for (offset_t k = indptr[i]; k < indptr[i + 1]; ++k) {
      const T av = values[k];
      const T* __restrict__ brow = b.row(indices[k]).data();
#pragma omp simd
      for (index_t j = 0; j < p; ++j) crow[j] += av * brow[j];
    }
  }
}

/// Splits rows into `parts` contiguous ranges with roughly equal nnz. This is
/// how MKL-class kernels balance skewed degree distributions (common in the
/// power-law graphs the paper evaluates).
template <typename T>
std::vector<index_t> nnz_balanced_bounds(const CsrMatrix<T>& a, int parts) {
  const auto indptr = a.indptr();
  const offset_t total = a.nnz();
  std::vector<index_t> bounds;
  bounds.reserve(static_cast<std::size_t>(parts) + 1);
  bounds.push_back(0);
  for (int t = 1; t < parts; ++t) {
    const offset_t target = total * t / parts;
    const auto it =
        std::lower_bound(indptr.begin() + 1, indptr.end(), target);
    auto row = static_cast<index_t>(it - indptr.begin() - 1);
    row = std::max(row, bounds.back());  // keep ranges nondecreasing
    bounds.push_back(row);
  }
  bounds.push_back(a.rows());
  return bounds;
}

}  // namespace

template <typename T>
void csr_spmm(const CsrMatrix<T>& a, const DenseMatrix<T>& b,
              DenseMatrix<T>& c, SpmmSchedule schedule) {
  CBM_CHECK(a.cols() == b.rows(), "csr_spmm: inner dimensions differ");
  CBM_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
            "csr_spmm: output shape mismatch");
  const index_t m = a.rows();

  switch (schedule) {
    case SpmmSchedule::kRowStatic: {
#pragma omp parallel for schedule(static)
      for (index_t i = 0; i < m; ++i) spmm_rows(a, b, c, i, i + 1);
      break;
    }
    case SpmmSchedule::kRowDynamic: {
#pragma omp parallel for schedule(dynamic, 64)
      for (index_t i = 0; i < m; ++i) spmm_rows(a, b, c, i, i + 1);
      break;
    }
    case SpmmSchedule::kNnzBalanced: {
      const int parts = max_threads();
      const auto bounds = nnz_balanced_bounds(a, parts);
#pragma omp parallel for schedule(static, 1)
      for (int t = 0; t < parts; ++t) {
        spmm_rows(a, b, c, bounds[t], bounds[t + 1]);
      }
      break;
    }
  }
}

template <typename T>
void csr_spmv(const CsrMatrix<T>& a, std::span<const T> x, std::span<T> y) {
  CBM_CHECK(x.size() == static_cast<std::size_t>(a.cols()),
            "csr_spmv: x length mismatch");
  CBM_CHECK(y.size() == static_cast<std::size_t>(a.rows()),
            "csr_spmv: y length mismatch");
  const auto indptr = a.indptr();
  const auto indices = a.indices();
  const auto values = a.values();
  const index_t m = a.rows();
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < m; ++i) {
    T acc{0};
    for (offset_t k = indptr[i]; k < indptr[i + 1]; ++k) {
      acc += values[k] * x[indices[k]];
    }
    y[i] = acc;
  }
}

template <typename T>
void coo_spmm(const CooMatrix<T>& a, const DenseMatrix<T>& b,
              DenseMatrix<T>& c) {
  CBM_CHECK(a.cols == b.rows(), "coo_spmm: inner dimensions differ");
  CBM_CHECK(c.rows() == a.rows && c.cols() == b.cols(),
            "coo_spmm: output shape mismatch");
  c.fill(T{0});
  const index_t p = b.cols();
  // Sequential scatter over triplets; fine as a reference/ablation kernel.
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    T* __restrict__ crow = c.row(a.row_idx[k]).data();
    const T* __restrict__ brow = b.row(a.col_idx[k]).data();
    const T av = a.values[k];
#pragma omp simd
    for (index_t j = 0; j < p; ++j) crow[j] += av * brow[j];
  }
}

template <typename T>
std::size_t csr_spmm_flops(const CsrMatrix<T>& a, index_t bcols) {
  return 2ull * static_cast<std::size_t>(a.nnz()) *
         static_cast<std::size_t>(bcols);
}

template void csr_spmm<float>(const CsrMatrix<float>&,
                              const DenseMatrix<float>&, DenseMatrix<float>&,
                              SpmmSchedule);
template void csr_spmm<double>(const CsrMatrix<double>&,
                               const DenseMatrix<double>&,
                               DenseMatrix<double>&, SpmmSchedule);
template void csr_spmv<float>(const CsrMatrix<float>&, std::span<const float>,
                              std::span<float>);
template void csr_spmv<double>(const CsrMatrix<double>&,
                               std::span<const double>, std::span<double>);
template void coo_spmm<float>(const CooMatrix<float>&,
                              const DenseMatrix<float>&, DenseMatrix<float>&);
template void coo_spmm<double>(const CooMatrix<double>&,
                               const DenseMatrix<double>&,
                               DenseMatrix<double>&);
template std::size_t csr_spmm_flops<float>(const CsrMatrix<float>&, index_t);
template std::size_t csr_spmm_flops<double>(const CsrMatrix<double>&, index_t);

}  // namespace cbm
