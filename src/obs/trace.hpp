// Scoped-span tracing with Chrome trace-event JSON export.
//
// Spans record into fixed-capacity per-thread ring buffers (no allocation,
// no locking on the hot path) and are exported as "ph":"X" complete events
// loadable in chrome://tracing or Perfetto. Tracing is off unless the
// process was started with CBM_TRACE=<path> (the file is written at exit)
// or enabled programmatically; when off, a span costs exactly one relaxed
// atomic load and a predictable branch.
//
// Span names must be string literals (or otherwise outlive the process):
// buffers store the pointer, not a copy.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>

namespace cbm::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;

/// Nanoseconds since the process-wide trace epoch (monotonic).
std::int64_t trace_now_ns();

void record_span(const char* name, std::int64_t begin_ns,
                 std::int64_t end_ns);
}  // namespace detail

/// True when spans are being recorded. Hot-path check: relaxed atomic load.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Enables tracing and sets the file trace_write() / the atexit hook write
/// to. An empty path enables recording without an output file (tests use
/// trace_write_to directly).
void enable_trace(const std::string& path);

/// Stops recording (buffered events are kept until trace_reset()).
void disable_trace();

/// Path set via enable_trace / CBM_TRACE ("" when none).
std::string trace_path();

/// Writes the Chrome trace-event JSON for everything recorded so far.
void trace_write_to(std::ostream& os);

/// Writes to trace_path(); no-op when no path is set. Called automatically
/// at process exit when CBM_TRACE is set.
void trace_write();

/// Drops all buffered events (and the dropped-event count).
void trace_reset();

/// Events lost to ring-buffer wrap-around since the last trace_reset().
std::size_t trace_dropped_events();

/// RAII span: records [construction, destruction) under `name`.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name)
      : name_(trace_enabled() ? name : nullptr),
        begin_ns_(name_ != nullptr ? detail::trace_now_ns() : 0) {}

  ~ScopedSpan() {
    if (name_ != nullptr) {
      detail::record_span(name_, begin_ns_, detail::trace_now_ns());
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::int64_t begin_ns_;
};

}  // namespace cbm::obs
