// Per-row / per-entry update kernels of the CBM update stage (Eqs. 4–6),
// shared by the two-stage scheduler (spmm_cbm.cpp) and the fused
// column-tiled engine (spmm_cbm_fused.cpp). Internal header.
#pragma once

#include <span>

#include "cbm/spmm_cbm.hpp"
#include "common/vectorops.hpp"

namespace cbm::detail {

/// Applies the update for one row given its parent, restricted to the column
/// range [col0, col0+len); shared by every schedule (branch schedules pass
/// the full row). Parent rows are guaranteed final for the processed columns
/// when this runs: topological order within a branch / within a column
/// slice, independence across branches and across column slices.
template <typename T>
inline void update_row(const CompressionTree& tree, CbmKind kind,
                       std::span<const T> diag, DenseMatrix<T>& c, index_t x,
                       std::size_t col0, std::size_t len) {
  const index_t p = tree.parent(x);
  if (p == tree.virtual_root()) {
    if (cbm_kind_row_scaled(kind)) {
      vec_scale(diag[x], c.row(x).subspan(col0, len));
    }
    return;
  }
  if (cbm_kind_row_scaled(kind)) {
    // Eq. 6, fused: C_x = d_x * (C_p / d_p + C_x) in one pass over the row.
    vec_fused_scale_add(diag[x], T{1} / diag[p],
                        std::span<const T>(c.row(p)).subspan(col0, len),
                        c.row(x).subspan(col0, len));
  } else {
    vec_add(std::span<const T>(c.row(p)).subspan(col0, len),
            c.row(x).subspan(col0, len));
  }
}

/// Scalar (single-column) version for matrix-vector products.
template <typename T>
inline void update_entry(const CompressionTree& tree, CbmKind kind,
                         std::span<const T> diag, std::span<T> y, index_t x) {
  const index_t p = tree.parent(x);
  if (p == tree.virtual_root()) {
    if (cbm_kind_row_scaled(kind)) y[x] *= diag[x];
    return;
  }
  if (cbm_kind_row_scaled(kind)) {
    y[x] = diag[x] * (y[p] / diag[p] + y[x]);
  } else {
    y[x] += y[p];
  }
}

}  // namespace cbm::detail
