#include "exec/task_graph.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "obs/obs.hpp"

namespace cbm::exec {

double RunMetrics::idle_fraction() const {
  const double capacity = wall_seconds * static_cast<double>(threads);
  if (capacity <= 0.0) return 0.0;
  return std::clamp(1.0 - busy_seconds / capacity, 0.0, 1.0);
}

TaskGraph::TaskId TaskGraph::add_task(std::function<void()> fn) {
  CBM_CHECK(fn != nullptr, "task graph: task callable must be non-null");
  tasks_.push_back(std::move(fn));
  return static_cast<TaskId>(tasks_.size() - 1);
}

void TaskGraph::add_edge(TaskId before, TaskId after) {
  const auto n = static_cast<TaskId>(tasks_.size());
  CBM_CHECK(before >= 0 && before < n && after >= 0 && after < n,
            "task graph: edge references an unknown task");
  CBM_CHECK(before != after, "task graph: self-edge");
  edges_.emplace_back(before, after);
}

namespace {

/// Shared executor state: successor CSR + atomic pending counters. A task
/// that finishes releases each successor with fetch_sub(acq_rel); the thread
/// that drops a counter to zero acquires everything its predecessors wrote,
/// so task bodies need no further synchronisation of their own.
struct Executor {
  const std::vector<std::function<void()>>& tasks;
  std::vector<std::int32_t> succ_off;
  std::vector<std::int32_t> succ;
  std::vector<std::atomic<std::int32_t>> pending;
  std::atomic<std::size_t> executed{0};
  std::atomic<std::int64_t> busy_ns{0};
  std::atomic<std::int32_t> ready_now{0};
  std::atomic<std::int32_t> max_ready{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  explicit Executor(const std::vector<std::function<void()>>& t,
                    const std::vector<std::pair<TaskGraph::TaskId,
                                                TaskGraph::TaskId>>& edges)
      : tasks(t),
        succ_off(t.size() + 1, 0),
        succ(edges.size(), 0),
        pending(t.size()) {
    for (const auto& [before, after] : edges) {
      ++succ_off[static_cast<std::size_t>(before) + 1];
      pending[static_cast<std::size_t>(after)].fetch_add(
          1, std::memory_order_relaxed);
    }
    for (std::size_t i = 1; i < succ_off.size(); ++i) {
      succ_off[i] += succ_off[i - 1];
    }
    std::vector<std::int32_t> cursor(succ_off.begin(), succ_off.end() - 1);
    for (const auto& [before, after] : edges) {
      succ[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(before)]++)] = after;
    }
  }

  void note_ready(std::int32_t count) {
    const std::int32_t now =
        ready_now.fetch_add(count, std::memory_order_relaxed) + count;
    std::int32_t seen = max_ready.load(std::memory_order_relaxed);
    while (now > seen && !max_ready.compare_exchange_weak(
                             seen, now, std::memory_order_relaxed)) {
    }
  }

  /// Runs one task body and releases its successors; returns the successors
  /// that became ready (for the caller to spawn/queue).
  template <typename OnReady>
  void run_task(std::int32_t id, OnReady&& on_ready) {
    ready_now.fetch_sub(1, std::memory_order_relaxed);
    Timer timer;
    try {
      CBM_SPAN("cbm.exec.task");
      tasks[static_cast<std::size_t>(id)]();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
    busy_ns.fetch_add(static_cast<std::int64_t>(timer.seconds() * 1e9),
                      std::memory_order_relaxed);
    executed.fetch_add(1, std::memory_order_relaxed);
    for (std::int32_t k = succ_off[static_cast<std::size_t>(id)];
         k < succ_off[static_cast<std::size_t>(id) + 1]; ++k) {
      const std::int32_t next = succ[static_cast<std::size_t>(k)];
      if (pending[static_cast<std::size_t>(next)].fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        note_ready(1);
        on_ready(next);
      }
    }
  }
};

}  // namespace

RunMetrics TaskGraph::run() {
  CBM_CHECK(!ran_, "task graph: run() may be called only once");
  ran_ = true;
  RunMetrics metrics;
  metrics.tasks = tasks_.size();
  metrics.edges = edges_.size();
  metrics.threads = std::max(1, max_threads());
  if (tasks_.empty()) return metrics;

  CBM_SPAN("cbm.exec.run");
  Timer wall;
  Executor ex(tasks_, edges_);

  std::vector<std::int32_t> initial;
  initial.reserve(tasks_.size());
  const auto n = static_cast<std::int32_t>(tasks_.size());
  for (std::int32_t id = 0; id < n; ++id) {
    if (ex.pending[static_cast<std::size_t>(id)].load(
            std::memory_order_relaxed) == 0) {
      initial.push_back(id);
    }
  }
  ex.note_ready(static_cast<std::int32_t>(initial.size()));

#ifdef _OPENMP
  const bool parallel = metrics.threads > 1;
#else
  const bool parallel = false;
#endif
  if (!parallel) {
    // Serial drain: LIFO so a just-released child runs while its parent's
    // output is still hot — the order a depth-first sweep would use.
    std::vector<std::int32_t> stack(initial.rbegin(), initial.rend());
    while (!stack.empty()) {
      const std::int32_t id = stack.back();
      stack.pop_back();
      ex.run_task(id, [&](std::int32_t next) { stack.push_back(next); });
    }
  } else {
#ifdef _OPENMP
    // One parallel region for the whole graph. The single thread seeds the
    // initially-ready tasks; every finishing task spawns the successors it
    // releases as nested tasks. The region's closing barrier is the only
    // join — idle threads steal queued tasks there, so there is no point at
    // which the team waits on a partially-finished wavefront.
    struct Spawner {
      Executor* ex;  // pointer, not reference: firstprivate must copy the
                     // handle, never the executor state behind it
      void operator()(std::int32_t id) const {
        Executor* e = ex;
#pragma omp task firstprivate(id, e)
        e->run_task(id, Spawner{e});
      }
    };
    const Spawner spawn{&ex};
#pragma omp parallel
#pragma omp single nowait
    for (const std::int32_t id : initial) spawn(id);
#endif
  }

  metrics.wall_seconds = wall.seconds();
  metrics.busy_seconds =
      static_cast<double>(ex.busy_ns.load(std::memory_order_relaxed)) * 1e-9;
  metrics.max_ready = static_cast<std::size_t>(
      std::max<std::int32_t>(0, ex.max_ready.load(std::memory_order_relaxed)));

  CBM_COUNTER_ADD("cbm.exec.graphs", 1);
  CBM_COUNTER_ADD("cbm.exec.tasks",
                  static_cast<std::int64_t>(metrics.tasks));
  CBM_COUNTER_ADD("cbm.exec.edges",
                  static_cast<std::int64_t>(metrics.edges));
  CBM_GAUGE_SET("cbm.exec.max_ready", static_cast<double>(metrics.max_ready));
  CBM_GAUGE_SET("cbm.exec.idle_fraction", metrics.idle_fraction());
  CBM_TIMING_RECORD("cbm.exec.run_seconds", metrics.wall_seconds);

  if (ex.first_error) std::rethrow_exception(ex.first_error);
  const std::size_t executed = ex.executed.load(std::memory_order_relaxed);
  CBM_CHECK(executed == tasks_.size(),
            "task graph: cycle detected (graph did not drain)");
  return metrics;
}

}  // namespace cbm::exec
