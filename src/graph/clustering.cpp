#include "graph/clustering.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/rng.hpp"

namespace cbm {

namespace {

/// Mixes a 64-bit value (splitmix64 finaliser) — the per-column hash of the
/// MinHash signatures.
inline std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename T>
std::vector<index_t> consecutive_clusters(const CsrMatrix<T>& pattern,
                                          index_t k) {
  const index_t n = pattern.rows();
  const index_t chunk = (n + k - 1) / k;
  std::vector<index_t> out(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) out[i] = i / chunk;
  return out;
}

template <typename T>
std::vector<index_t> minhash_clusters(const CsrMatrix<T>& pattern, index_t k,
                                      std::uint64_t seed) {
  const index_t n = pattern.rows();
  // Two independent MinHash signatures per row: rows with identical column
  // sets get identical signatures, similar rows collide often; sorting by
  // the signature pair therefore places similar rows adjacently.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sig(
      static_cast<std::size_t>(n),
      {~std::uint64_t{0}, ~std::uint64_t{0}});
#pragma omp parallel for schedule(static)
  for (index_t i = 0; i < n; ++i) {
    for (const index_t j : pattern.row_indices(i)) {
      const auto ju = static_cast<std::uint64_t>(j);
      sig[i].first = std::min(sig[i].first, mix(ju ^ seed));
      sig[i].second = std::min(sig[i].second, mix(ju ^ (seed * 0x9e37ull)));
    }
  }
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(),
            [&](index_t a, index_t b) { return sig[a] < sig[b]; });

  const index_t chunk = (n + k - 1) / k;
  std::vector<index_t> out(static_cast<std::size_t>(n));
  for (index_t pos = 0; pos < n; ++pos) out[order[pos]] = pos / chunk;
  return out;
}

template <typename T>
std::vector<index_t> label_propagation_clusters(const CsrMatrix<T>& pattern,
                                                index_t target,
                                                std::uint64_t seed) {
  const index_t n = pattern.rows();
  std::vector<index_t> label(static_cast<std::size_t>(n));
  std::iota(label.begin(), label.end(), index_t{0});

  // Synchronous label propagation; ties broken toward the smaller label so
  // the process is deterministic. A handful of rounds suffices for the
  // community structures CBM targets.
  std::vector<index_t> next(label);
  std::unordered_map<index_t, index_t> counts;
  Rng rng(seed);
  for (int round = 0; round < 6; ++round) {
    bool changed = false;
    for (index_t v = 0; v < n; ++v) {
      const auto neigh = pattern.row_indices(v);
      if (neigh.empty()) continue;
      counts.clear();
      index_t best = label[v];
      index_t best_count = 0;
      for (const index_t u : neigh) {
        const index_t c = ++counts[label[u]];
        if (c > best_count || (c == best_count && label[u] < best)) {
          best_count = c;
          best = label[u];
        }
      }
      next[v] = best;
      changed |= best != label[v];
    }
    label.swap(next);
    if (!changed) break;
  }

  // Densify labels, then merge the smallest communities until at most
  // `target` remain (partial CBMs over tiny clusters waste tree overhead).
  std::unordered_map<index_t, index_t> dense;
  for (const index_t l : label) dense.emplace(l, dense.size());
  std::vector<index_t> size(dense.size(), 0);
  for (auto& l : label) {
    l = dense[l];
    ++size[l];
  }
  auto clusters = static_cast<index_t>(dense.size());
  if (clusters > target) {
    // Map the (clusters - target + 1) smallest communities to one bucket.
    std::vector<index_t> by_size(clusters);
    std::iota(by_size.begin(), by_size.end(), index_t{0});
    std::sort(by_size.begin(), by_size.end(), [&](index_t a, index_t b) {
      return size[a] != size[b] ? size[a] < size[b] : a < b;
    });
    std::vector<index_t> remap(clusters);
    const index_t merged = clusters - target + 1;
    for (index_t rank = 0; rank < clusters; ++rank) {
      remap[by_size[rank]] = rank < merged ? 0 : rank - merged + 1;
    }
    for (auto& l : label) l = remap[l];
  }
  return label;
}

}  // namespace

template <typename T>
std::vector<index_t> cluster_rows(const CsrMatrix<T>& pattern,
                                  ClusterMethod method,
                                  index_t target_clusters,
                                  std::uint64_t seed) {
  CBM_CHECK(target_clusters >= 1, "need at least one cluster");
  const index_t k =
      std::min<index_t>(target_clusters, std::max<index_t>(1, pattern.rows()));
  if (pattern.rows() == 0) return {};
  switch (method) {
    case ClusterMethod::kConsecutive:
      return consecutive_clusters(pattern, k);
    case ClusterMethod::kMinHash:
      return minhash_clusters(pattern, k, seed);
    case ClusterMethod::kLabelPropagation:
      return label_propagation_clusters(pattern, k, seed);
  }
  throw CbmError("unknown cluster method");
}

index_t num_clusters(const std::vector<index_t>& assignment) {
  index_t max_id = -1;
  for (const index_t c : assignment) max_id = std::max(max_id, c);
  return max_id + 1;
}

template std::vector<index_t> cluster_rows<float>(const CsrMatrix<float>&,
                                                  ClusterMethod, index_t,
                                                  std::uint64_t);
template std::vector<index_t> cluster_rows<double>(const CsrMatrix<double>&,
                                                   ClusterMethod, index_t,
                                                   std::uint64_t);

}  // namespace cbm
