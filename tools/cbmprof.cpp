// cbmprof — compare two cbm-bench-v1 reports and gate on regressions.
//
// Usage:
//   cbmprof diff <base.json> <current.json>
//       [--tolerance R]        relative tolerance (default 0.10 = 10%)
//       [--stat min|median|mean]  statistic compared (default min)
//       [--filter SUBSTR]      only series whose name contains SUBSTR
//       [--json PATH]          also write the cbmprof-diff-v1 document
//
// Exit codes: 0 = no regression, 1 = regression(s) beyond tolerance,
// 2 = usage / unreadable input / schema mismatch. CI treats nonzero as a
// failed perf gate (see .github/workflows/ci.yml and docs/observability.md).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "bench_util/profdiff.hpp"
#include "common/error.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: cbmprof diff <base.json> <current.json>\n"
               "         [--tolerance R] [--stat min|median|mean]\n"
               "         [--filter SUBSTR] [--json PATH]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cbm;
  if (argc < 4 || std::string(argv[1]) != "diff") return usage();
  const std::string base_path = argv[2];
  const std::string current_path = argv[3];

  profdiff::DiffOptions options;
  std::string json_path;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--tolerance") {
      const char* v = next();
      if (v == nullptr) return usage();
      char* end = nullptr;
      options.tolerance = std::strtod(v, &end);
      if (end == v || options.tolerance < 0.0) return usage();
    } else if (arg == "--stat") {
      const char* v = next();
      if (v == nullptr) return usage();
      const std::string s = v;
      if (s == "min") {
        options.stat = profdiff::Stat::kMin;
      } else if (s == "median") {
        options.stat = profdiff::Stat::kMedian;
      } else if (s == "mean") {
        options.stat = profdiff::Stat::kMean;
      } else {
        return usage();
      }
    } else if (arg == "--filter") {
      const char* v = next();
      if (v == nullptr) return usage();
      options.filter = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return usage();
      json_path = v;
    } else {
      return usage();
    }
  }

  try {
    const profdiff::Report base = profdiff::load_report(base_path);
    const profdiff::Report current = profdiff::load_report(current_path);
    const profdiff::DiffResult result =
        profdiff::diff(base, current, options);
    profdiff::print_diff(result, options);
    if (!json_path.empty()) {
      std::ofstream os(json_path);
      if (!os) {
        std::fprintf(stderr, "cbmprof: cannot write %s\n", json_path.c_str());
        return 2;
      }
      os << profdiff::diff_json(result, options, base_path, current_path);
    }
    return result.ok() ? 0 : 1;
  } catch (const CbmError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
