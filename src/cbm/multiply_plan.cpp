#include "cbm/multiply_plan.hpp"

#include <string>
#include <utility>

#include "common/error.hpp"

namespace cbm {

namespace {

template <typename Enum, std::size_t N>
Enum parse_enum(const char* what,
                const std::pair<const char*, Enum> (&table)[N],
                std::string_view text) {
  for (const auto& [name, value] : table) {
    if (text == name) return value;
  }
  throw CbmError(std::string(what) + ": unknown value '" + std::string(text) +
                 "'");
}

constexpr std::pair<const char*, MultiplyPath> kPaths[] = {
    {"two_stage", MultiplyPath::kTwoStage},
    {"fused", MultiplyPath::kFusedTiled},
};
constexpr std::pair<const char*, SpmmSchedule> kSpmm[] = {
    {"row_static", SpmmSchedule::kRowStatic},
    {"row_dynamic", SpmmSchedule::kRowDynamic},
    {"nnz_balanced", SpmmSchedule::kNnzBalanced},
};
constexpr std::pair<const char*, UpdateSchedule> kUpdate[] = {
    {"sequential", UpdateSchedule::kSequential},
    {"branch_dynamic", UpdateSchedule::kBranchDynamic},
    {"branch_static", UpdateSchedule::kBranchStatic},
    {"column_split", UpdateSchedule::kColumnSplit},
    {"task_graph", UpdateSchedule::kTaskGraph},
};

}  // namespace

MultiplySchedule MultiplySchedule::two_stage(UpdateSchedule update,
                                             SpmmSchedule spmm) {
  MultiplySchedule s;
  s.path = MultiplyPath::kTwoStage;
  s.update = update;
  s.spmm = spmm;
  return s;
}

MultiplySchedule MultiplySchedule::fused(index_t tile_cols) {
  MultiplySchedule s;
  s.path = MultiplyPath::kFusedTiled;
  s.tile_cols = tile_cols;
  return s;
}

MultiplySchedule MultiplySchedule::from_config(const RuntimeConfig& config) {
  MultiplySchedule s;
  if (config.multiply_path) {
    s.path = parse_enum("CBM_MULTIPLY_PATH", kPaths, *config.multiply_path);
  }
  if (config.spmm_schedule) {
    s.spmm = parse_enum("CBM_SPMM_SCHEDULE", kSpmm, *config.spmm_schedule);
  }
  if (config.update_schedule) {
    s.update =
        parse_enum("CBM_UPDATE_SCHEDULE", kUpdate, *config.update_schedule);
  }
  if (config.tile_cols) s.tile_cols = *config.tile_cols;
  return s;
}

MultiplySchedule MultiplySchedule::from_env() {
  return from_config(RuntimeConfig::from_env());
}

const char* multiply_path_name(MultiplyPath path) {
  switch (path) {
    case MultiplyPath::kTwoStage: return "two_stage";
    case MultiplyPath::kFusedTiled: return "fused";
  }
  return "?";
}

const char* spmm_schedule_name(SpmmSchedule schedule) {
  switch (schedule) {
    case SpmmSchedule::kRowStatic: return "row_static";
    case SpmmSchedule::kRowDynamic: return "row_dynamic";
    case SpmmSchedule::kNnzBalanced: return "nnz_balanced";
  }
  return "?";
}

const char* update_schedule_name(UpdateSchedule schedule) {
  switch (schedule) {
    case UpdateSchedule::kSequential: return "sequential";
    case UpdateSchedule::kBranchDynamic: return "branch_dynamic";
    case UpdateSchedule::kBranchStatic: return "branch_static";
    case UpdateSchedule::kColumnSplit: return "column_split";
    case UpdateSchedule::kTaskGraph: return "task_graph";
  }
  return "?";
}

MultiplyPath parse_multiply_path(std::string_view text) {
  return parse_enum("multiply path", kPaths, text);
}

SpmmSchedule parse_spmm_schedule(std::string_view text) {
  return parse_enum("spmm schedule", kSpmm, text);
}

UpdateSchedule parse_update_schedule(std::string_view text) {
  return parse_enum("update schedule", kUpdate, text);
}

}  // namespace cbm
