// Graph-compression survey: compresses all eight stand-in datasets, printing
// the structural metrics the paper relates to compressibility (§VI-D, §VI-H):
// average degree, clustering coefficient, compression ratio, tree shape.
//
//   ./graph_compression [scale]
#include <cstdio>

#include "bench_util/datasets.hpp"
#include "cbm/cbm_matrix.hpp"
#include "graph/metrics.hpp"

int main(int argc, char** argv) {
  using namespace cbm;
  BenchConfig config = BenchConfig::from_env();
  if (argc > 1) config.scale = std::atof(argv[1]);

  std::printf("%-18s %8s %8s %6s %7s %8s %8s %7s %6s\n", "graph", "nodes",
              "avgdeg", "clust", "ratio", "deltas%", "fanout", "depth",
              "build");
  for (const auto& spec : dataset_registry()) {
    const Graph g = load_dataset(spec, config);
    CbmStats stats;
    CbmMatrix<real_t>::compress(g.adjacency(), {.alpha = 0}, &stats);
    const double ratio =
        static_cast<double>(g.adjacency().bytes()) / stats.bytes;
    const double delta_frac =
        100.0 * stats.total_deltas / std::max<std::int64_t>(1, stats.source_nnz);
    std::printf("%-18s %8d %8.1f %6.2f %6.2fx %7.1f%% %8d %7d %5.2fs\n",
                spec.name.c_str(), g.num_nodes(), g.average_degree(),
                average_clustering(g), ratio, delta_frac,
                stats.root_out_degree, stats.max_depth, stats.build_seconds);
  }
  std::printf(
      "\ndeltas%% = nnz(A')/nnz(A): the share of nonzeros the CBM delta\n"
      "matrix retains; low values mean highly compressible rows (Property "
      "1\nguarantees it never exceeds 100%%).\n");
  return 0;
}
