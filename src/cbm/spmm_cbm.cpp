#include "cbm/spmm_cbm.hpp"

#include <algorithm>

#include "cbm/update_kernels.hpp"
#include "common/parallel.hpp"
#include "obs/obs.hpp"

namespace cbm {

namespace {

constexpr const char* schedule_counter_name(UpdateSchedule schedule) {
  switch (schedule) {
    case UpdateSchedule::kSequential: return "cbm.update.calls.sequential";
    case UpdateSchedule::kBranchDynamic:
      return "cbm.update.calls.branch_dynamic";
    case UpdateSchedule::kBranchStatic:
      return "cbm.update.calls.branch_static";
    case UpdateSchedule::kColumnSplit:
      return "cbm.update.calls.column_split";
  }
  return "cbm.update.calls.unknown";
}

/// Per-call counters behind the §V-B scheduling discussion: how many branch
/// work units a call has and how skewed they are (max branch size over mean
/// branch size — 1.0 is perfectly balanced). Only runs when metrics are on;
/// the O(#branches) sweep never taxes an uninstrumented multiply.
void record_update_metrics(const CompressionTree& tree,
                           UpdateSchedule schedule) {
  if (!obs::metrics_enabled()) return;
  const auto& branches = tree.branches();
  const std::size_t nb = branches.size();
  std::size_t max_branch = 0;
  std::size_t singletons = 0;
  std::size_t total = 0;
  for (const auto& branch : branches) {
    max_branch = std::max(max_branch, branch.size());
    singletons += branch.size() == 1 ? 1 : 0;
    total += branch.size();
  }
  obs::counter_add("cbm.update.calls", 1);
  obs::counter_add(schedule_counter_name(schedule), 1);
  obs::counter_add("cbm.update.branches", static_cast<std::int64_t>(nb));
  obs::counter_add("cbm.update.singleton_branches",
                   static_cast<std::int64_t>(singletons));
  obs::counter_add("cbm.update.row_ops",
                   static_cast<std::int64_t>(tree.num_compressed_rows()));
  if (nb > 0 && total > 0) {
    obs::gauge_set("cbm.update.branch_imbalance",
                   static_cast<double>(max_branch) *
                       static_cast<double>(nb) / static_cast<double>(total));
  }
}

/// Drives `apply(x)` over the tree under a branch-based schedule; the row
/// and vector kernels share this traversal logic. kColumnSplit is handled by
/// the matrix kernel directly (it needs the column dimension).
template <typename Apply>
void run_update(const CompressionTree& tree, bool row_scaled,
                UpdateSchedule schedule, Apply&& apply) {
  switch (schedule) {
    case UpdateSchedule::kSequential: {
      for (const index_t x : tree.topological_order()) apply(x);
      break;
    }
    case UpdateSchedule::kBranchDynamic: {
      const auto& branches = tree.branches();
      const auto nb = static_cast<std::int64_t>(branches.size());
#pragma omp parallel for schedule(dynamic)
      for (std::int64_t b = 0; b < nb; ++b) {
        // Unscaled singleton branches are no-ops; skip without touching c.
        if (!row_scaled && branches[b].size() == 1) continue;
        for (const index_t x : branches[b]) apply(x);
      }
      break;
    }
    case UpdateSchedule::kBranchStatic: {
      const auto& branches = tree.branches();
      const auto nb = static_cast<std::int64_t>(branches.size());
#pragma omp parallel for schedule(static)
      for (std::int64_t b = 0; b < nb; ++b) {
        if (!row_scaled && branches[b].size() == 1) continue;
        for (const index_t x : branches[b]) apply(x);
      }
      break;
    }
    case UpdateSchedule::kColumnSplit: {
      // Only reachable from the vector kernel (p = 1), where a column split
      // cannot help; fall back to the sequential sweep.
      for (const index_t x : tree.topological_order()) apply(x);
      break;
    }
  }
}

}  // namespace

template <typename T>
void cbm_update_stage(const CompressionTree& tree, CbmKind kind,
                      std::span<const T> diag, DenseMatrix<T>& c,
                      UpdateSchedule schedule) {
  CBM_CHECK(c.rows() == tree.num_rows(), "update stage: row count mismatch");
  CBM_CHECK(!cbm_kind_row_scaled(kind) ||
                diag.size() == static_cast<std::size_t>(tree.num_rows()),
            "update stage: missing diagonal for row-scaled kind");
  CBM_SPAN("cbm.update_stage");
  record_update_metrics(tree, schedule);
  if (schedule == UpdateSchedule::kColumnSplit) {
    // Each thread sweeps the entire tree restricted to one column slice:
    // no cross-thread dependencies (updates never mix columns), and the
    // available parallelism is p, not the root fan-out.
    const auto cols = static_cast<std::size_t>(c.cols());
#pragma omp parallel
    {
      const auto nth = static_cast<std::size_t>(team_size());
      const auto tid = static_cast<std::size_t>(thread_id());
      const std::size_t c0 = cols * tid / nth;
      const std::size_t c1 = cols * (tid + 1) / nth;
      if (c1 > c0) {
        for (const index_t x : tree.topological_order()) {
          detail::update_row(tree, kind, diag, c, x, c0, c1 - c0);
        }
      }
    }
    return;
  }
  const auto cols = static_cast<std::size_t>(c.cols());
  run_update(tree, cbm_kind_row_scaled(kind), schedule, [&](index_t x) {
    detail::update_row(tree, kind, diag, c, x, 0, cols);
  });
}

template <typename T>
void cbm_update_stage_vector(const CompressionTree& tree, CbmKind kind,
                             std::span<const T> diag, std::span<T> y,
                             UpdateSchedule schedule) {
  CBM_CHECK(y.size() == static_cast<std::size_t>(tree.num_rows()),
            "update stage: vector length mismatch");
  CBM_CHECK(!cbm_kind_row_scaled(kind) ||
                diag.size() == static_cast<std::size_t>(tree.num_rows()),
            "update stage: missing diagonal for row-scaled kind");
  CBM_SPAN("cbm.update_stage");
  record_update_metrics(tree, schedule);
  run_update(tree, cbm_kind_row_scaled(kind), schedule,
             [&](index_t x) { detail::update_entry(tree, kind, diag, y, x); });
}

index_t cbm_update_row_ops(const CompressionTree& tree) {
  return tree.num_compressed_rows();
}

template void cbm_update_stage<float>(const CompressionTree&, CbmKind,
                                      std::span<const float>,
                                      DenseMatrix<float>&, UpdateSchedule);
template void cbm_update_stage<double>(const CompressionTree&, CbmKind,
                                       std::span<const double>,
                                       DenseMatrix<double>&, UpdateSchedule);
template void cbm_update_stage_vector<float>(const CompressionTree&, CbmKind,
                                             std::span<const float>,
                                             std::span<float>,
                                             UpdateSchedule);
template void cbm_update_stage_vector<double>(const CompressionTree&, CbmKind,
                                              std::span<const double>,
                                              std::span<double>,
                                              UpdateSchedule);

}  // namespace cbm
