// Single-producer/single-consumer lock-free ring buffer.
//
// The serving pipeline's hand-off: the ingest thread pushes accepted
// requests, the batching worker pops them. One atomic load+store per
// operation, acquire/release pairing only (no seq_cst, no CAS), with the
// head and tail counters on separate cache lines so the producer and
// consumer never false-share.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace cbm::serve {

/// Bounded SPSC ring of `T`. Capacity is rounded up to a power of two so
/// the slot index is a mask, not a modulo. Exactly one thread may call
/// try_push and exactly one may call try_pop; wrap the producer side in a
/// mutex (as ServeContext does) to admit multiple submitters.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    CBM_CHECK(capacity > 0, "SpscRing: capacity must be positive");
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Actual (rounded-up) capacity.
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false when the ring is full.
  bool try_push(T value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    // Cursors run free (never wrap to the mask), so tail-head is the exact
    // element count and all capacity() slots are usable.
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Racy size estimate — exact only when called from the producer or
  /// consumer thread; advisory elsewhere (queue-depth gauge).
  [[nodiscard]] std::size_t size_approx() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  [[nodiscard]] bool empty_approx() const { return size_approx() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
};

}  // namespace cbm::serve
