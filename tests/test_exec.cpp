// cbm::exec — task-graph executor semantics, NUMA topology parsing, and the
// CBM_NUMA / CBM_PART_EXEC / CBM_EXEC_GRAIN knobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/envknobs.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "exec/numa.hpp"
#include "exec/task_graph.hpp"
#include "test_util.hpp"

namespace cbm {
namespace {

using exec::NodeAffinityGuard;
using exec::NumaTopology;
using exec::TaskGraph;
using test::EnvGuard;

// ------------------------------------------------------------- TaskGraph --

TEST(TaskGraph, EmptyGraphRuns) {
  TaskGraph graph;
  const auto metrics = graph.run();
  EXPECT_EQ(metrics.tasks, 0u);
  EXPECT_EQ(metrics.edges, 0u);
}

TEST(TaskGraph, ExecutesEveryTaskExactlyOnce) {
  for (const int threads : {1, 4}) {
    ThreadScope scope(threads);
    TaskGraph graph;
    std::vector<std::atomic<int>> hits(64);
    for (int i = 0; i < 64; ++i) {
      graph.add_task([&hits, i] { hits[i].fetch_add(1); });
    }
    const auto metrics = graph.run();
    EXPECT_EQ(metrics.tasks, 64u);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(TaskGraph, EdgesForceOrder) {
  // A chain 0 → 1 → … → 31 must execute in exactly that order, whatever the
  // team size.
  for (const int threads : {1, 4}) {
    ThreadScope scope(threads);
    TaskGraph graph;
    std::vector<int> order;
    std::mutex mutex;
    for (int i = 0; i < 32; ++i) {
      graph.add_task([&order, &mutex, i] {
        const std::lock_guard<std::mutex> lock(mutex);
        order.push_back(i);
      });
    }
    for (int i = 0; i + 1 < 32; ++i) graph.add_edge(i, i + 1);
    graph.run();
    ASSERT_EQ(order.size(), 32u);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
  }
}

TEST(TaskGraph, DiamondDependenciesRespected) {
  // 0 → {1, 2} → 3: the join must see both sides done.
  ThreadScope scope(4);
  TaskGraph graph;
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::atomic<bool> join_ok{false};
  graph.add_task([&a] { a.store(1); });
  graph.add_task([&a, &b] { EXPECT_EQ(a.load(), 1); b.fetch_add(1); });
  graph.add_task([&a, &b] { EXPECT_EQ(a.load(), 1); b.fetch_add(1); });
  graph.add_task([&b, &join_ok] { join_ok.store(b.load() == 2); });
  graph.add_edge(0, 1);
  graph.add_edge(0, 2);
  graph.add_edge(1, 3);
  graph.add_edge(2, 3);
  graph.run();
  EXPECT_TRUE(join_ok.load());
}

TEST(TaskGraph, RandomDagRespectsAllEdges) {
  // Random DAG (edges only forward), verified by recording a completion
  // stamp per task and checking every edge start finished first.
  const std::uint64_t seed = test::auto_seed();
  SCOPED_TRACE(test::seed_trace(seed));
  Rng rng(seed);
  for (const int threads : {1, 4}) {
    ThreadScope scope(threads);
    constexpr int kTasks = 200;
    TaskGraph graph;
    std::atomic<std::int64_t> clock{0};
    std::vector<std::atomic<std::int64_t>> stamp(kTasks);
    for (int i = 0; i < kTasks; ++i) {
      graph.add_task([&clock, &stamp, i] {
        stamp[i].store(clock.fetch_add(1) + 1);
      });
    }
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < kTasks; ++i) {
      const int fanout = static_cast<int>(rng.next_below(3));
      for (int k = 0; k < fanout; ++k) {
        const int to = i + 1 +
                       static_cast<int>(rng.next_below(
                           static_cast<std::uint64_t>(kTasks - i)));
        if (to < kTasks) {
          graph.add_edge(i, to);
          edges.emplace_back(i, to);
        }
      }
    }
    const auto metrics = graph.run();
    EXPECT_EQ(metrics.tasks, static_cast<std::size_t>(kTasks));
    for (const auto& [from, to] : edges) {
      EXPECT_LT(stamp[from].load(), stamp[to].load())
          << "edge " << from << " -> " << to << " violated";
    }
  }
}

TEST(TaskGraph, CycleThrowsInsteadOfDeadlocking) {
  TaskGraph graph;
  for (int i = 0; i < 3; ++i) graph.add_task([] {});
  graph.add_edge(0, 1);
  graph.add_edge(1, 2);
  graph.add_edge(2, 0);
  EXPECT_THROW(graph.run(), CbmError);
}

TEST(TaskGraph, SelfEdgeAndUnknownTaskThrow) {
  TaskGraph graph;
  graph.add_task([] {});
  EXPECT_THROW(graph.add_edge(0, 0), CbmError);
  EXPECT_THROW(graph.add_edge(0, 7), CbmError);
  EXPECT_THROW(graph.add_edge(-1, 0), CbmError);
}

TEST(TaskGraph, TaskExceptionPropagatesAfterDrain) {
  ThreadScope scope(4);
  TaskGraph graph;
  std::atomic<int> ran{0};
  graph.add_task([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 8; ++i) {
    graph.add_task([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(graph.run(), std::runtime_error);
  // The graph still drained: independent tasks were not abandoned.
  EXPECT_EQ(ran.load(), 8);
}

TEST(TaskGraph, RunTwiceThrows) {
  TaskGraph graph;
  graph.add_task([] {});
  graph.run();
  EXPECT_THROW(graph.run(), CbmError);
}

TEST(TaskGraph, MetricsAccountForWork) {
  ThreadScope scope(2);
  TaskGraph graph;
  for (int i = 0; i < 16; ++i) {
    graph.add_task([] {
      volatile double x = 0;
      for (int k = 0; k < 1000; ++k) x = x + 1.0;
    });
  }
  graph.add_edge(0, 1);
  const auto metrics = graph.run();
  EXPECT_EQ(metrics.tasks, 16u);
  EXPECT_EQ(metrics.edges, 1u);
  EXPECT_GE(metrics.max_ready, 1u);
  EXPECT_GT(metrics.wall_seconds, 0.0);
  EXPECT_GE(metrics.busy_seconds, 0.0);
  EXPECT_GE(metrics.idle_fraction(), 0.0);
  EXPECT_LE(metrics.idle_fraction(), 1.0);
}

// --------------------------------------------------- NumaTopology / sysfs --

/// Fake /sys/devices/system/node tree for parser tests.
class FakeNodeSysfs {
 public:
  FakeNodeSysfs() {
    root_ = std::filesystem::path(::testing::TempDir()) /
            ("cbm-numa-" +
             std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::create_directories(root_);
  }
  ~FakeNodeSysfs() {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  void add_node(int id, const std::string& cpulist) {
    const auto dir = root_ / ("node" + std::to_string(id));
    std::filesystem::create_directories(dir);
    std::ofstream(dir / "cpulist") << cpulist << '\n';
  }

  [[nodiscard]] std::string dir() const { return root_.string(); }

 private:
  std::filesystem::path root_;
};

TEST(NumaTopology, ParsesNodesAndCpulists) {
  FakeNodeSysfs fs;
  fs.add_node(0, "0-3,16-19");
  fs.add_node(1, "4-7");
  const NumaTopology topo = NumaTopology::from_sysfs(fs.dir());
  ASSERT_EQ(topo.num_nodes(), 2);
  EXPECT_TRUE(topo.multi_node());
  EXPECT_EQ(topo.nodes[0].id, 0);
  EXPECT_EQ(topo.nodes[0].cpus,
            (std::vector<int>{0, 1, 2, 3, 16, 17, 18, 19}));
  EXPECT_EQ(topo.nodes[1].id, 1);
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<int>{4, 5, 6, 7}));
}

TEST(NumaTopology, SingleCpuAndMalformedPiecesAreTolerated) {
  FakeNodeSysfs fs;
  fs.add_node(0, "5");
  fs.add_node(2, "bogus,7,3-x, 9 ");
  const NumaTopology topo = NumaTopology::from_sysfs(fs.dir());
  ASSERT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.nodes[0].cpus, (std::vector<int>{5}));
  // node ids keep their sysfs numbering even when sparse
  EXPECT_EQ(topo.nodes[1].id, 2);
  EXPECT_EQ(topo.nodes[1].cpus, (std::vector<int>{7, 9}));
}

TEST(NumaTopology, MissingTreeFallsBackToSingleNode) {
  const NumaTopology topo =
      NumaTopology::from_sysfs("/nonexistent/cbm-test-path");
  ASSERT_EQ(topo.num_nodes(), 1);
  EXPECT_FALSE(topo.multi_node());
  EXPECT_EQ(topo.nodes[0].id, 0);
}

TEST(NumaTopology, HostDetectionNeverFails) {
  const NumaTopology& topo = NumaTopology::host();
  EXPECT_GE(topo.num_nodes(), 1);
}

TEST(NumaPlacement, OffOrSingleNodeMeansNoPreference) {
  FakeNodeSysfs fs;
  fs.add_node(0, "0-3");
  const NumaTopology single = NumaTopology::from_sysfs(fs.dir());
  EXPECT_EQ(exec::placement_node(single, NumaMode::kBind, 0), -1);
  fs.add_node(1, "4-7");
  const NumaTopology dual = NumaTopology::from_sysfs(fs.dir());
  EXPECT_EQ(exec::placement_node(dual, NumaMode::kOff, 0), -1);
  // Round-robin across the nodes for interleave/bind.
  EXPECT_EQ(exec::placement_node(dual, NumaMode::kInterleave, 0), 0);
  EXPECT_EQ(exec::placement_node(dual, NumaMode::kInterleave, 1), 1);
  EXPECT_EQ(exec::placement_node(dual, NumaMode::kBind, 2), 0);
}

TEST(NumaAffinity, GuardIsInactiveWhenPlacementCannotApply) {
  FakeNodeSysfs fs;
  fs.add_node(0, "0");
  const NumaTopology single = NumaTopology::from_sysfs(fs.dir());
  // Single node → no-op regardless of the requested node.
  const NodeAffinityGuard a(single, 0);
  EXPECT_FALSE(a.active());
  fs.add_node(1, "");
  const NumaTopology dual = NumaTopology::from_sysfs(fs.dir());
  // node -1 = no preference; node without cpus cannot be pinned to.
  const NodeAffinityGuard b(dual, -1);
  EXPECT_FALSE(b.active());
  const NodeAffinityGuard c(dual, 1);
  EXPECT_FALSE(c.active());
  // Unknown node id: graceful no-op.
  const NodeAffinityGuard d(dual, 9);
  EXPECT_FALSE(d.active());
}

// ----------------------------------------------------------------- knobs --

TEST(ExecKnobs, NumaModeParsesAndRejects) {
  {
    const EnvGuard cleared("CBM_NUMA");  // CI may pin it ambiently
    EXPECT_EQ(numa_mode_from_env(), NumaMode::kOff);  // unset default
  }
  {
    const EnvGuard env("CBM_NUMA", "off");
    EXPECT_EQ(numa_mode_from_env(), NumaMode::kOff);
  }
  {
    const EnvGuard env("CBM_NUMA", "interleave");
    EXPECT_EQ(numa_mode_from_env(), NumaMode::kInterleave);
  }
  {
    const EnvGuard env("CBM_NUMA", "bind");
    EXPECT_EQ(numa_mode_from_env(), NumaMode::kBind);
  }
  {
    const EnvGuard env("CBM_NUMA", "local");
    EXPECT_THROW(numa_mode_from_env(), CbmError);
  }
  EXPECT_STREQ(numa_mode_name(NumaMode::kOff), "off");
  EXPECT_STREQ(numa_mode_name(NumaMode::kInterleave), "interleave");
  EXPECT_STREQ(numa_mode_name(NumaMode::kBind), "bind");
}

TEST(ExecKnobs, PartExecParsesAndRejects) {
  {
    const EnvGuard cleared("CBM_PART_EXEC");  // CI may pin it ambiently
    EXPECT_EQ(part_exec_from_env(), PartExec::kTaskGraph);  // unset default
  }
  {
    const EnvGuard env("CBM_PART_EXEC", "serial");
    EXPECT_EQ(part_exec_from_env(), PartExec::kSerial);
  }
  {
    const EnvGuard env("CBM_PART_EXEC", "taskgraph");
    EXPECT_EQ(part_exec_from_env(), PartExec::kTaskGraph);
  }
  {
    const EnvGuard env("CBM_PART_EXEC", "parallel");
    EXPECT_THROW(part_exec_from_env(), CbmError);
  }
  EXPECT_STREQ(part_exec_name(PartExec::kSerial), "serial");
  EXPECT_STREQ(part_exec_name(PartExec::kTaskGraph), "taskgraph");
}

TEST(ExecKnobs, ExecGrainValidation) {
  {
    const EnvGuard cleared("CBM_EXEC_GRAIN");  // CI may pin it ambiently
    EXPECT_EQ(env_exec_grain(), 64);           // unset default
  }
  {
    const EnvGuard env("CBM_EXEC_GRAIN", "7");
    EXPECT_EQ(env_exec_grain(), 7);
  }
  for (const char* bad : {"0", "-4", "many", "12abc"}) {
    const EnvGuard env("CBM_EXEC_GRAIN", bad);
    EXPECT_THROW(env_exec_grain(), CbmError) << bad;
  }
}

}  // namespace
}  // namespace cbm
