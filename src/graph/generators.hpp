// Deterministic random-graph generators.
//
// These produce the synthetic stand-ins for the paper's eight datasets
// (DESIGN.md §2). Each family targets a different point on the
// clustering/degree spectrum, which §VI-H of the paper identifies as the
// driver of CBM compression:
//   - preferential attachment  → citation graphs (low degree, ratio ≈ 1×)
//   - co-authorship clique-union → ca-AstroPh/ca-HepPh (ratio 2–3×)
//   - ego/community clique-union → COLLAB, coPapers (ratio ≫ 5×)
//   - degree-corrected SBM      → ogbn-proteins (dense, modest clustering)
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace cbm {

/// Erdős–Rényi G(n, m): m distinct uniform edges.
Graph erdos_renyi(index_t n, offset_t m, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m_per_node` existing nodes proportionally to degree. Models citation
/// networks (Cora/PubMed stand-ins): low average degree, weak row similarity.
Graph barabasi_albert(index_t n, index_t m_per_node, std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with k nearest neighbours per
/// side, each edge rewired with probability beta.
Graph watts_strogatz(index_t n, index_t k, double beta, std::uint64_t seed);

/// Parameters of the co-authorship / collaboration generator.
struct CliqueUnionParams {
  index_t num_nodes = 0;      ///< authors / researchers
  index_t num_cliques = 0;    ///< papers / ego groups
  index_t clique_min = 2;     ///< smallest group size
  index_t clique_max = 8;     ///< largest group size (power-law tail)
  double reuse_prob = 0.6;    ///< prob. of drawing a member from the anchor's
                              ///< previous collaborators (drives row
                              ///< similarity and clustering)
  double size_exponent = 2.0; ///< power-law exponent of group sizes
};

/// Union of cliques with collaborator reuse. Produces the highly clustered,
/// high-row-similarity regime where CBM compresses best (coPapers/COLLAB).
Graph clique_union(const CliqueUnionParams& params, std::uint64_t seed);

/// Parameters of the stochastic block model.
struct SbmParams {
  index_t num_nodes = 0;
  index_t num_blocks = 1;
  double expected_degree_in = 8.0;   ///< expected within-block degree
  double expected_degree_out = 2.0;  ///< expected cross-block degree
};

/// Degree-corrected-ish SBM sampled in expected-edge-count form; the
/// ogbn-proteins stand-in (high degree, moderate clustering).
Graph stochastic_block_model(const SbmParams& params, std::uint64_t seed);

/// Parameters of the planted-community generator.
struct CommunityParams {
  index_t num_nodes = 0;
  index_t team_min = 4;        ///< smallest community
  index_t team_max = 64;       ///< largest community (power-law tail)
  double size_exponent = 2.0;  ///< community-size power-law exponent
  double intra_prob = 1.0;     ///< probability of each within-community edge
  double cross_per_node = 2.0; ///< expected uniform cross edges per node
};

/// R-MAT / Kronecker-style recursive generator (Chakrabarti et al.): each
/// edge recursively picks a quadrant with probabilities (a, b, c, d). The
/// standard scale-free benchmark family in graph processing; produces skewed
/// degrees and weak row similarity (a hard case for CBM, useful in tests and
/// comparisons). `scale` = log2 of the node count.
struct RmatParams {
  int scale = 12;              ///< n = 2^scale nodes
  double edges_per_node = 8.0;
  double a = 0.57, b = 0.19, c = 0.19;  ///< d = 1 − a − b − c
};
Graph rmat(const RmatParams& params, std::uint64_t seed);

/// Planted communities: nodes are partitioned into power-law-sized teams;
/// each within-team pair is linked with `intra_prob`, plus sparse uniform
/// cross edges. With intra_prob = 1 the rows of one team are identical up to
/// the cross noise — exactly the regime where the CBM delta representation
/// collapses (COLLAB/coPapers stand-ins); lower intra_prob dilutes both
/// clustering and row similarity (ogbn-proteins stand-in).
Graph community_graph(const CommunityParams& params, std::uint64_t seed);

/// Convenience: graph whose rows are highly redundant by construction —
/// `groups` groups of rows sharing one neighborhood template with `flips`
/// per-row perturbations. Used by tests/benches to pin down compression
/// behaviour precisely.
Graph near_duplicate_rows(index_t n, index_t groups, index_t base_degree,
                          index_t flips, std::uint64_t seed);

}  // namespace cbm
