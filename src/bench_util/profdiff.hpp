// Diffing of cbm-bench-v1 reports (the cbmprof engine).
//
// A BenchReport document is a set of measurement series keyed by name +
// labels. This module loads two such documents, matches their series, and
// classifies each matched pair as pass / regression / improvement under a
// relative tolerance — the comparison the CI perf gate runs against the
// committed baselines under bench/results/, and what `cbmprof diff` exposes
// on the command line.
//
// Matching deliberately ignores labels whose key starts with "plan": plan
// provenance (cache vs probe, tile width the tuner picked) legitimately
// flips between runs and must not make series unpairable.
//
// Direction is inferred from the series name: names containing "speedup",
// "gflops", "throughput", "qps", or "ratio" are higher-is-better; everything
// else (seconds, bytes, ...) is lower-is-better.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"

namespace cbm::profdiff {

inline constexpr const char* kReportSchema = "cbm-bench-v1";
inline constexpr const char* kDiffSchema = "cbmprof-diff-v1";

/// One measurement series pulled out of a report document.
struct Series {
  std::string name;
  std::string key;  ///< name + sorted non-plan labels; the match identity
  double min = 0.0;
  double mean = 0.0;
  double median = 0.0;
  std::int64_t count = 0;
};

/// A loaded cbm-bench-v1 document, reduced to what diffing needs.
struct Report {
  std::string bench;
  std::vector<Series> series;  ///< sorted by key, unique
};

/// Parses a cbm-bench-v1 document. Throws CbmError on JSON syntax errors,
/// a missing/mismatched "schema" field (reports written by an incompatible
/// version must be rejected, not silently compared), or malformed
/// measurements.
Report parse_report(const std::string& text);

/// parse_report over a file's contents. Throws CbmError when unreadable.
Report load_report(const std::string& path);

/// Which statistic of each series to compare. Min is the default: timing
/// noise is strictly additive, so min-of-reps is the noise-robust estimator
/// for same-machine comparisons.
enum class Stat { kMin, kMedian, kMean };

const char* stat_name(Stat stat);

struct DiffOptions {
  double tolerance = 0.10;  ///< relative; 0.10 = 10% change is significant
  Stat stat = Stat::kMin;
  std::string filter;  ///< substring on series names; empty = everything
};

enum class Verdict {
  kPass,         ///< within tolerance
  kRegression,   ///< worse than base beyond tolerance
  kImprovement,  ///< better than base beyond tolerance
  kBaseOnly,     ///< series vanished from the current report
  kCurrentOnly,  ///< series new in the current report
  kSkipped,      ///< non-positive value on either side; ratio undefined
};

const char* verdict_name(Verdict verdict);

/// One matched (or unmatched) series pair.
struct DiffEntry {
  std::string key;
  std::string name;
  double base = 0.0;
  double current = 0.0;
  double ratio = 0.0;  ///< current / base (0 when either side is missing)
  bool higher_is_better = false;
  Verdict verdict = Verdict::kSkipped;
};

struct DiffResult {
  std::vector<DiffEntry> entries;  ///< sorted by key
  int compared = 0;
  int regressions = 0;
  int improvements = 0;
  int base_only = 0;
  int current_only = 0;

  /// The gate predicate: no regression beyond tolerance.
  [[nodiscard]] bool ok() const { return regressions == 0; }
};

/// True when larger values of a series named `name` are better.
bool higher_is_better(const std::string& name);

DiffResult diff(const Report& base, const Report& current,
                const DiffOptions& options);

/// Serialises a diff as one cbmprof-diff-v1 JSON document.
std::string diff_json(const DiffResult& result, const DiffOptions& options,
                      const std::string& base_path,
                      const std::string& current_path);

/// Prints the human-readable verdict table + summary line to stdout.
void print_diff(const DiffResult& result, const DiffOptions& options);

}  // namespace cbm::profdiff
